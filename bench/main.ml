(* Reproduction harness for every table and figure of the paper's
   evaluation (§V).  Run everything:

     dune exec bench/main.exe

   or individual experiments:

     dune exec bench/main.exe -- fig7 fig10 table4 micro
     dune exec bench/main.exe -- --quick all     # skip the slow real-crypto
                                                 # and Transpiler-MNIST parts
     dune exec bench/main.exe -- micro --smoke   # tiny-parameter micro run
                                                 # (the @bench-smoke alias)

   Absolute numbers come from the calibrated cost models in
   Backend.Cost_model (see DESIGN.md for the substitution rationale); the
   program DAGs, schedules and gate counts are real.  EXPERIMENTS.md records
   paper-vs-measured for each experiment. *)

module Rng = Pytfhe_util.Rng
module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate
module Stats = Pytfhe_circuit.Stats
module Levelize = Pytfhe_circuit.Levelize
module Cost_model = Pytfhe_backend.Cost_model
module Sched_cpu = Pytfhe_backend.Sched_cpu
module Sched_gpu = Pytfhe_backend.Sched_gpu
module Par_eval = Pytfhe_backend.Par_eval
module Plain_eval = Pytfhe_backend.Plain_eval
module Executor = Pytfhe_backend.Executor
module Trace = Pytfhe_obs.Trace
module Json = Pytfhe_util.Json
module Profile = Pytfhe_frameworks.Profile
module W = Pytfhe_vipbench.Workload
module Suite = Pytfhe_vipbench.Suite
open Pytfhe_core
open Pytfhe_tfhe

let cost = Cost_model.paper_cpu
let quick = ref false

let header title =
  Format.printf "@.==============================================================@.";
  Format.printf "%s@." title;
  Format.printf "==============================================================@."

let human_time t =
  if t < 1e-3 then Printf.sprintf "%.1f us" (t *. 1e6)
  else if t < 1.0 then Printf.sprintf "%.1f ms" (t *. 1e3)
  else if t < 120.0 then Printf.sprintf "%.1f s" t
  else if t < 7200.0 then Printf.sprintf "%.1f min" (t /. 60.0)
  else if t < 48.0 *. 3600.0 then Printf.sprintf "%.1f h" (t /. 3600.0)
  else Printf.sprintf "%.1f days" (t /. 86400.0)

(* ------------------------------------------------------------------ *)
(* Shared compiled programs (memoized: some figures share workloads).  *)
(* ------------------------------------------------------------------ *)

let compiled_cache : (string, Pipeline.compiled) Hashtbl.t = Hashtbl.create 32

let compiled (w : W.t) =
  match Hashtbl.find_opt compiled_cache w.W.name with
  | Some c -> c
  | None ->
    Format.printf "  [compiling %s ...]@?" w.W.name;
    let t0 = Unix.gettimeofday () in
    let c = Pipeline.compile_workload w in
    Format.printf " %d gates, %.1fs@." c.Pipeline.stats.Stats.bootstraps (Unix.gettimeofday () -. t0);
    Hashtbl.add compiled_cache w.W.name c;
    c

let bench_set () = if !quick then List.filter (fun w -> not w.W.heavy) Suite.paper_set else Suite.paper_set

(* The MNIST_S architecture shared by the framework-comparison figures. *)
let mnist_arch = Pytfhe_vipbench.Networks.mnist_model ~seed:101 ~image:28 ~conv_ch:1
let mnist_input_shape = [| 1; 28; 28 |]

let framework_cache : (string, Netlist.t) Hashtbl.t = Hashtbl.create 8

let framework_netlist (p : Profile.t) =
  match Hashtbl.find_opt framework_cache p.Profile.name with
  | Some n -> n
  | None ->
    Format.printf "  [lowering MNIST_S with the %s model ...]@?" p.Profile.name;
    let t0 = Unix.gettimeofday () in
    let n = Profile.build_model p mnist_arch ~input_shape:mnist_input_shape in
    Format.printf " %d gates, %.1fs@." (Netlist.bootstrap_count n) (Unix.gettimeofday () -. t0);
    Hashtbl.add framework_cache p.Profile.name n;
    n

let estimate_by_gate_count net =
  (* The paper's footnote 1: baseline runtime = gate count / single-core
     throughput of the TFHE library. *)
  float_of_int (Netlist.bootstrap_count net) *. cost.Cost_model.gate_time

(* ------------------------------------------------------------------ *)
(* Fig. 7 — profile of one bootstrapped gate on a single CPU core       *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  header "Fig. 7 — single-core TFHE gate profile (blind rotation / key switch / communication)";
  let paper_gate = cost.Cost_model.gate_time in
  Format.printf "paper platform (Xeon Gold 5215, TFHE C++ library):@.";
  Format.printf "  blind rotation     %8s  (%.1f%%)@."
    (human_time (paper_gate *. cost.Cost_model.blind_rotation_fraction))
    (100.0 *. cost.Cost_model.blind_rotation_fraction);
  Format.printf "  key switching      %8s  (%.1f%%)@."
    (human_time (paper_gate *. cost.Cost_model.key_switch_fraction))
    (100.0 *. cost.Cost_model.key_switch_fraction);
  Format.printf "  communication      %8s  (%.3f%%)  [2.46 KB ciphertext on a 1 Gb NIC]@."
    (human_time cost.Cost_model.comm_time)
    (100.0 *. cost.Cost_model.comm_time /. paper_gate);
  Format.printf "  total              %8s@." (human_time paper_gate);
  Format.printf "  ciphertext size: %d bytes@." (Lwe.ciphertext_bytes ~n:630);
  if !quick then Format.printf "@.(--quick: skipping the live measurement of this repository's TFHE implementation)@."
  else begin
    Format.printf "@.this repository's OCaml TFHE at default-128 parameters (live measurement):@.";
    let rng = Rng.create ~seed:7001 () in
    let t0 = Unix.gettimeofday () in
    let sk, ck = Gates.key_gen rng Params.default_128 in
    Format.printf "  key generation     %8s@." (human_time (Unix.gettimeofday () -. t0));
    let a = Gates.encrypt_bit rng sk true and b = Gates.encrypt_bit rng sk false in
    let p = Params.default_128 in
    let combined = Lwe.add (Lwe.add (Lwe.trivial ~n:p.Params.lwe.Params.n (Torus.mod_switch_to 7 ~msize:8)) a) b in
    let n_iters = 4 in
    let t0 = Unix.gettimeofday () in
    let ext = ref (Bootstrap.bootstrap_wo_keyswitch p ck.Gates.bootstrap_key ~mu:(Params.mu p) combined) in
    for _ = 2 to n_iters do
      ext := Bootstrap.bootstrap_wo_keyswitch p ck.Gates.bootstrap_key ~mu:(Params.mu p) combined
    done;
    let t_br = (Unix.gettimeofday () -. t0) /. float_of_int n_iters in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n_iters do
      ignore (Keyswitch.apply ck.Gates.keyswitch_key !ext)
    done;
    let t_ks = (Unix.gettimeofday () -. t0) /. float_of_int n_iters in
    let total = t_br +. t_ks in
    Format.printf "  blind rotation     %8s  (%.1f%%)@." (human_time t_br) (100.0 *. t_br /. total);
    Format.printf "  key switching      %8s  (%.1f%%)@." (human_time t_ks) (100.0 *. t_ks /. total);
    Format.printf "  total per gate     %8s@." (human_time total);
    Format.printf
      "  -> same shape as the paper: blind rotation dominates; the absolute gap@.";
    Format.printf
      "     (%.0fx) is OCaml-vs-AVX2 FFT, and divides out of every speedup figure.@."
      (total /. paper_gate)
  end

(* ------------------------------------------------------------------ *)
(* Figs. 8 & 9 — GPU execution timelines                                *)
(* ------------------------------------------------------------------ *)

let four_gate_chain () =
  let net = Netlist.create ~hash_consing:false ~fold_constants:false () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let g1 = Netlist.gate net Gate.And a b in
  let g2 = Netlist.gate net Gate.Xor g1 b in
  let g3 = Netlist.gate net Gate.Or g2 a in
  let g4 = Netlist.gate net Gate.Nand g3 b in
  Netlist.mark_output net "o" g4;
  net

let print_timeline segments =
  List.iter
    (fun s ->
      Format.printf "  %8.2f ms  ->  %8.2f ms   %s@." (s.Sched_gpu.t_start *. 1e3)
        (s.Sched_gpu.t_end *. 1e3) s.Sched_gpu.label)
    segments

let fig8 () =
  header "Fig. 8 — cuFHE backend: per-gate H2D / kernel / D2H, fully serialized";
  let sched = Levelize.run (four_gate_chain ()) in
  let r = Sched_gpu.simulate_cufhe Cost_model.gpu_a5000 ~cpu:cost sched in
  print_timeline r.Sched_gpu.timeline;
  Format.printf "  total: %s for 4 gates — the CPU thread blocks on every call@."
    (human_time r.Sched_gpu.makespan)

let fig9 () =
  header "Fig. 9 — PyTFHE GPU backend: CUDA-Graph batch, overlapped construction";
  let sched = Levelize.run (four_gate_chain ()) in
  let r = Sched_gpu.simulate_pytfhe Cost_model.gpu_a5000 ~cpu:cost sched in
  print_timeline r.Sched_gpu.timeline;
  Format.printf "  total: %s — one graph launch; the next batch builds while this one runs@."
    (human_time r.Sched_gpu.makespan)

(* ------------------------------------------------------------------ *)
(* Fig. 10 — distributed CPU vs single-threaded CPU on VIP-Bench        *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  header "Fig. 10 — PyTFHE distributed CPU vs single-threaded CPU (speedups; sorted by gate count)";
  let rows =
    List.map
      (fun w ->
        let c = compiled w in
        let r1 = Sched_cpu.simulate { Sched_cpu.nodes = 1; cost } c.Pipeline.schedule in
        let r4 = Sched_cpu.simulate { Sched_cpu.nodes = 4; cost } c.Pipeline.schedule in
        (w.W.name, c.Pipeline.stats.Stats.bootstraps, r1, r4))
      (bench_set ())
  in
  let rows = List.sort (fun (_, a, _, _) (_, b, _, _) -> compare a b) rows in
  Format.printf "@.%-20s %10s %12s | %10s | %10s@." "WORKLOAD" "GATES" "1-THREAD" "1 NODE" "4 NODES";
  Format.printf "%-20s %10s %12s | %10s | %10s@." "" "" "" "(ideal 18)" "(ideal 72)";
  List.iter
    (fun (name, gates, r1, r4) ->
      Format.printf "%-20s %10d %12s | %9.1fx | %9.1fx@." name gates
        (human_time r1.Sched_cpu.single_thread_time)
        r1.Sched_cpu.speedup r4.Sched_cpu.speedup)
    rows;
  Format.printf
    "@.paper: 17.4x of ideal 18 on one node and 60.5x of ideal 72 on four nodes for the@.";
  Format.printf
    "large MNIST networks; small/serial benchmarks (NRSolver, Euler, Parrondo) do not scale.@."

(* ------------------------------------------------------------------ *)
(* Fig. 11 — PyTFHE GPU vs cuFHE                                        *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  header "Fig. 11 — PyTFHE GPU backend vs cuFHE (speedup over cuFHE on the same GPU)";
  let rows =
    List.map
      (fun w ->
        let c = compiled w in
        let a5000 = Sched_gpu.speedup_over_cufhe Cost_model.gpu_a5000 ~cpu:cost c.Pipeline.schedule in
        let r4090 = Sched_gpu.speedup_over_cufhe Cost_model.gpu_4090 ~cpu:cost c.Pipeline.schedule in
        (w.W.name, c.Pipeline.stats.Stats.bootstraps, a5000, r4090))
      (bench_set ())
  in
  let rows = List.sort (fun (_, a, _, _) (_, b, _, _) -> compare a b) rows in
  Format.printf "@.%-20s %10s %12s %12s@." "WORKLOAD" "GATES" "A5000" "RTX 4090";
  List.iter
    (fun (name, gates, a, b) -> Format.printf "%-20s %10d %11.1fx %11.1fx@." name gates a b)
    rows;
  let best = List.fold_left (fun acc (_, _, a, _) -> Float.max acc a) 0.0 rows in
  Format.printf "@.peak speedup over cuFHE: %.1fx (paper: up to 61.5x); serial benchmarks@." best;
  Format.printf "(Parrondo, Euler, NRSolver) show modest gains, as in the paper.@."

(* ------------------------------------------------------------------ *)
(* Figs. 12/13/14 and Table IV — framework comparison on MNIST_S        *)
(* ------------------------------------------------------------------ *)

let mnist_pytfhe () = compiled (Option.get (Suite.find "mnist_s"))

let fig12 () =
  header "Fig. 12 — Google Transpiler vs PyTFHE on MNIST_S (frontend x backend matrix)";
  if !quick then Format.printf "(--quick: skipped — requires the 30M-gate Transpiler lowering)@."
  else begin
    let gt_net = framework_netlist Profile.transpiler in
    let gt_sched = Levelize.run gt_net in
    let pyt = mnist_pytfhe () in
    let gt_gc = estimate_by_gate_count gt_net in
    let gt_pyt_cpu = (Sched_cpu.simulate { Sched_cpu.nodes = 4; cost } gt_sched).Sched_cpu.makespan in
    let gt_pyt_a5000 = (Sched_gpu.simulate_pytfhe Cost_model.gpu_a5000 ~cpu:cost gt_sched).Sched_gpu.makespan in
    let gt_pyt_4090 = (Sched_gpu.simulate_pytfhe Cost_model.gpu_4090 ~cpu:cost gt_sched).Sched_gpu.makespan in
    let pyt_cpu = Server.estimate (Server.Distributed { nodes = 4 }) pyt in
    let pyt_a5000 = Server.estimate (Server.Gpu Cost_model.gpu_a5000) pyt in
    let pyt_4090 = Server.estimate (Server.Gpu Cost_model.gpu_4090) pyt in
    Format.printf "@.%-34s %12s %10s@." "FRONTEND + BACKEND" "RUNTIME" "SPEEDUP";
    let row name t = Format.printf "%-34s %12s %9.1fx@." name (human_time t) (gt_gc /. t) in
    row "GT + GC (Transpiler end-to-end)" gt_gc;
    row "GT + PyT CPU (4 nodes)" gt_pyt_cpu;
    row "GT + PyT GPU (A5000)" gt_pyt_a5000;
    row "GT + PyT GPU (4090)" gt_pyt_4090;
    row "PyT + PyT CPU (4 nodes)" pyt_cpu;
    row "PyT + PyT GPU (A5000)" pyt_a5000;
    row "PyT + PyT GPU (4090)" pyt_4090;
    Format.printf
      "@.paper: GT+GC takes days; GT+PyT gains 52x (CPU) / 69-89x (GPU); swapping in the@.";
    Format.printf "ChiselTorch frontend (PyT+PyT) improves the speedup further (28x-3369x overall).@."
  end

let fig13 () =
  header "Fig. 13 — runtime of MNIST_S across frameworks";
  if !quick then Format.printf "(--quick: skipped)@."
  else begin
    let pyt = mnist_pytfhe () in
    Format.printf "@.%-34s %12s@." "FRAMEWORK / BACKEND" "RUNTIME";
    let row name t = Format.printf "%-34s %12s@." name (human_time t) in
    row "E3 (single core, est.)" (estimate_by_gate_count (framework_netlist Profile.e3));
    row "Cingulata (single core, est.)" (estimate_by_gate_count (framework_netlist Profile.cingulata));
    row "Transpiler (single core, est.)" (estimate_by_gate_count (framework_netlist Profile.transpiler));
    row "PyTFHE single core" (Server.estimate Server.Single_core pyt);
    row "PyTFHE 1 node (18 workers)" (Server.estimate (Server.Distributed { nodes = 1 }) pyt);
    row "PyTFHE 4 nodes (72 workers)" (Server.estimate (Server.Distributed { nodes = 4 }) pyt);
    row "PyTFHE GPU (A5000)" (Server.estimate (Server.Gpu Cost_model.gpu_a5000) pyt);
    row "PyTFHE GPU (4090)" (Server.estimate (Server.Gpu Cost_model.gpu_4090) pyt);
    Format.printf
      "@.(baseline runtimes are gate count / single-core throughput, the paper's own footnote-1@.";
    Format.printf "methodology for Cingulata, E3 and Transpiler)@."
  end

let fig14 () =
  header "Fig. 14 — gate distribution of the MNIST_S network per framework";
  if !quick then Format.printf "(--quick: skipped)@."
  else begin
    let pyt = mnist_pytfhe () in
    let entries =
      List.map (fun p -> (p.Profile.name, framework_netlist p)) [ Profile.e3; Profile.cingulata; Profile.transpiler ]
      @ [ ("PyTFHE", pyt.Pipeline.netlist) ]
    in
    List.iter
      (fun (name, net) ->
        let s = Stats.compute net in
        Format.printf "@.%s: %d gates (%d bootstrapped)@." name s.Stats.gates s.Stats.bootstraps;
        Format.printf "%a" Stats.pp_distribution s)
      entries;
    let pyt_b = Netlist.bootstrap_count pyt.Pipeline.netlist in
    Format.printf "@.gate-count ratios (PyTFHE = 1.00):@.";
    List.iter
      (fun (name, net) ->
        Format.printf "  %-12s %6.2fx   (PyTFHE is %.1f%% of %s)@." name
          (float_of_int (Netlist.bootstrap_count net) /. float_of_int pyt_b)
          (100.0 *. float_of_int pyt_b /. float_of_int (Netlist.bootstrap_count net))
          name)
      entries;
    Format.printf
      "@.paper: PyTFHE emits 65.3%% of Cingulata's gates and 53.6%% of E3's; Transpiler is@.";
    Format.printf
      "far larger because the total-order C lowering emits gates even for Flatten.@."
  end

let table4 () =
  header "Table IV — speedup of PyTFHE over E3, Cingulata and Transpiler (MNIST_S)";
  if !quick then Format.printf "(--quick: skipped)@."
  else begin
    let pyt = mnist_pytfhe () in
    let baselines =
      [
        ("E3", estimate_by_gate_count (framework_netlist Profile.e3));
        ("Cingulata", estimate_by_gate_count (framework_netlist Profile.cingulata));
        ("Transpiler", estimate_by_gate_count (framework_netlist Profile.transpiler));
      ]
    in
    let pytfhe_rows =
      [
        ("PyTFHE Single Core", Server.estimate Server.Single_core pyt);
        ("PyTFHE 1 Node", Server.estimate (Server.Distributed { nodes = 1 }) pyt);
        ("PyTFHE 4 Nodes", Server.estimate (Server.Distributed { nodes = 4 }) pyt);
        ("PyTFHE A5000 GPU", Server.estimate (Server.Gpu Cost_model.gpu_a5000) pyt);
        ("PyTFHE 4090 GPU", Server.estimate (Server.Gpu Cost_model.gpu_4090) pyt);
      ]
    in
    Format.printf "@.%-22s" "";
    List.iter (fun (name, _) -> Format.printf "%12s" name) baselines;
    Format.printf "@.";
    List.iter
      (fun (row_name, t) ->
        Format.printf "%-22s" row_name;
        List.iter (fun (_, base) -> Format.printf "%11.1fx" (base /. t)) baselines;
        Format.printf "@.")
      pytfhe_rows;
    Format.printf "@.paper:                       E3   Cingulata  Transpiler@.";
    Format.printf "  Single Core             1.5x        1.8x       28.4x@.";
    Format.printf "  1 Node                 23.0x       28.1x      427.9x@.";
    Format.printf "  4 Nodes                80.6x       98.2x     1497.4x@.";
    Format.printf "  A5000 GPU             108.7x      132.4x     2019.8x@.";
    Format.printf "  4090 GPU              218.9x      266.9x     4070.5x@."
  end

(* ------------------------------------------------------------------ *)
(* `micro` — per-primitive timings and allocated words per gate         *)
(* ------------------------------------------------------------------ *)

let smoke = ref false

(* Deliberately undersized (and insecure) parameters: key generation and a
   handful of gate iterations finish well under a second, so the smoke run
   can sit on a dune alias and catch hot-path allocation regressions without
   the multi-second test-parameter run. *)
let smoke_params =
  Params.custom ~name:"micro-smoke" ~n:8 ~lwe_stdev:(2.0 ** -20.0) ~ring_n:64 ~k:1
    ~tlwe_stdev:(2.0 ** -30.0) ~l:2 ~bg_bit:6 ~ks_t:4 ~ks_base_bit:2 ()

(* Wall time and allocated words per call.  A short warmup keeps one-time
   setup (FFT table construction, lazy initialization) out of the
   measurement; allocation is the [Gc.allocated_bytes] delta.  The explicit
   [Gc.minor] around the loop matters: the runtime only folds the live
   minor-heap region into its allocation counters at collection time, so
   without the flush short loops under-report by up to a minor heap. *)
let measure ?(warmup = 2) ~iters f =
  for _ = 1 to warmup do
    f ()
  done;
  Gc.minor ();
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  let wall = (Unix.gettimeofday () -. t0) /. float_of_int iters in
  Gc.minor ();
  let words =
    (Gc.allocated_bytes () -. a0) /. float_of_int (Sys.word_size / 8) /. float_of_int iters
  in
  (wall, words)

let micro () =
  header "micro — per-primitive gate profile and allocated words per bootstrapped gate";
  let open Pytfhe_fft in
  let p = if !smoke then smoke_params else Params.test in
  let iters = if !smoke then 50 else 20 in
  let fft_iters = if !smoke then 200 else 2000 in
  let n = p.Params.tlwe.Params.ring_n in
  Format.printf "parameters: %a@." Params.pp p;
  let rng = Rng.create ~seed:8001 () in
  let tlwe_key = Tlwe.key_gen rng p in
  let ws = Tgsw.workspace_create p in
  let g = Tgsw.to_fft p (Tgsw.encrypt_int rng p tlwe_key 1) in
  let c = Tlwe.encrypt_poly rng p tlwe_key (Array.make n 0) in
  Format.printf "  [generating keys ...]@?";
  let t0 = Unix.gettimeofday () in
  let sk, ck = Gates.key_gen (Rng.create ~seed:8002 ()) p in
  Format.printf " %.1fs@." (Unix.gettimeofday () -. t0);
  let bit_a = Gates.encrypt_bit rng sk true in
  let bit_b = Gates.encrypt_bit rng sk false in
  let bit_s = Gates.encrypt_bit rng sk true in
  let ctx = Gates.context ck in
  let bkey = ck.Gates.bootstrap_key in
  let mu = Params.mu p in
  (* Caller-owned buffers for the in-place paths. *)
  let poly = Array.init n (fun _ -> Rng.float rng -. 0.5) in
  let spec = Negacyclic.spectrum_create n in
  let back = Array.make n 0.0 in
  let prod = Tlwe.trivial p (Poly.zero n) in
  let acc = Tlwe.trivial p (Poly.zero n) in
  let testvect = Array.make n mu in
  let combined = Lwe.add bit_a bit_b in
  let ext = Bootstrap.bootstrap_wo_keyswitch p bkey ~mu bit_a in
  let ks_a = Array.make p.Params.lwe.Params.n 0 in
  (* The pre-optimization gate: allocating CMux chain, fresh test vector,
     allocating key switch.  Measured with the same harness so the
     words-per-gate reduction stays regression-tracked. *)
  let legacy_gate () =
    let tv = Array.make n mu in
    let rotated = Bootstrap.blind_rotate_reference p ws bkey ~testvect:tv combined in
    ignore (Keyswitch.apply ck.Gates.keyswitch_key (Tlwe.extract_lwe p rotated))
  in
  let cases =
    [
      ("fft/forward", fft_iters, fun () -> Negacyclic.forward_into spec poly);
      ("fft/backward", fft_iters, fun () -> Negacyclic.backward_into back spec);
      ("tfhe/external-product-into", iters, fun () -> Tgsw.external_product_into p ws g c ~dst:prod);
      ("tfhe/external-product-alloc", iters, fun () -> ignore (Tgsw.external_product p ws g c));
      ( "tfhe/blind-rotate-into",
        iters,
        fun () -> Bootstrap.blind_rotate_into p ws bkey ~testvect ~acc combined );
      ( "tfhe/blind-rotate-reference",
        iters,
        fun () -> ignore (Bootstrap.blind_rotate_reference p ws bkey ~testvect combined) );
      ( "tfhe/keyswitch-into",
        iters,
        fun () -> ignore (Keyswitch.apply_into ck.Gates.keyswitch_key ext ~a:ks_a) );
      ("tfhe/gate-nand", iters, fun () -> ignore (Gates.nand_gate_in ctx bit_a bit_b));
      ("tfhe/gate-nand-legacy", iters, legacy_gate);
      (* MUX = two blind rotations + one key switch through the context
         scratch; roughly 2x a binary gate's time and allocation. *)
      ("tfhe/gate-mux", iters, fun () -> ignore (Gates.mux_gate_in ctx bit_s bit_a bit_b));
    ]
  in
  Format.printf "@.%-34s %12s %16s@." "PRIMITIVE" "TIME/OP" "ALLOC WORDS/OP";
  let results =
    List.map
      (fun (name, iters, f) ->
        let wall, words = measure ~iters f in
        Format.printf "%-34s %12s %16.0f@." name (human_time wall) words;
        (name, wall, words))
      cases
  in
  let find name =
    let _, wall, words = List.find (fun (n, _, _) -> n = name) results in
    (wall, words)
  in
  let gate_wall, gate_words = find "tfhe/gate-nand" in
  let legacy_wall, legacy_words = find "tfhe/gate-nand-legacy" in
  let mux_wall, mux_words = find "tfhe/gate-mux" in
  let reduction = legacy_words /. Float.max gate_words 1.0 in
  Format.printf "@.allocated words per bootstrapped gate: %.0f (in-place) vs %.0f (pre-change)@."
    gate_words legacy_words;
  Format.printf "allocated words per MUX (two rotations, context scratch): %.0f@." mux_words;
  (* At the smoke parameters the mandatory output ciphertexts dominate the
     tiny per-gate totals, so the 10x target only applies to the real run. *)
  Format.printf "allocation reduction: %.1fx%s@." reduction
    (if !smoke then ""
     else if reduction >= 10.0 then "  (meets the 10x target)"
     else "  (BELOW the 10x target!)");
  if !smoke then Format.printf "(--smoke: skipping BENCH_gate_micro.json)@."
  else begin
    let json =
      Json.Obj
        [
          ("params", Json.String p.Params.name);
          ("ring_n", Json.Number (float_of_int n));
          ("lwe_n", Json.Number (float_of_int p.Params.lwe.Params.n));
          ( "primitives",
            Json.List
              (List.map
                 (fun (name, wall, words) ->
                   Json.Obj
                     [
                       ("name", Json.String name);
                       ("time_s", Json.Number wall);
                       ("alloc_words", Json.Number words);
                     ])
                 results) );
          ("gate_time_s", Json.Number gate_wall);
          ("gate_time_legacy_s", Json.Number legacy_wall);
          ("gate_alloc_words", Json.Number gate_words);
          ("gate_alloc_words_legacy", Json.Number legacy_words);
          ("mux_time_s", Json.Number mux_wall);
          ("mux_alloc_words", Json.Number mux_words);
          ("alloc_reduction", Json.Number reduction);
        ]
    in
    let path = "BENCH_gate_micro.json" in
    Out_channel.with_open_text path (fun oc -> output_string oc (Json.to_string ~indent:true json));
    Format.printf "@.wrote %s@." path
  end

(* ------------------------------------------------------------------ *)
(* `ntt` — exact double-prime NTT vs complex FFT                        *)
(* ------------------------------------------------------------------ *)

let ntt_bench () =
  header "ntt — double-prime NTT vs complex FFT: transform micro, full gates, exactness";
  let open Pytfhe_fft in
  (* (a) Transform micro at the production ring size: one forward, one
     backward, one full negacyclic product per backend.  The NTT pays two
     modular passes (one per prime) against the FFT's single complex pass;
     the interesting question is the constant, not the asymptotics. *)
  let n = 1024 in
  let iters = if !smoke then 100 else 2000 in
  let rng = Rng.create ~seed:4242 () in
  Negacyclic.precompute n;
  Ntt.precompute n;
  let ipoly = Array.init n (fun _ -> Rng.int rng 64 - 32) in
  let tpoly = Array.init n (fun _ -> Rng.int rng (1 lsl 30) - (1 lsl 29)) in
  let fa = Array.map float_of_int ipoly in
  let fb = Array.map float_of_int tpoly in
  let fpoly = Array.init n (fun _ -> Rng.float rng -. 0.5) in
  let fspec = Negacyclic.spectrum_create n in
  let fback = Array.make n 0.0 in
  let nspec = Ntt.spectrum_create n in
  let nback = Array.make n 0 in
  let micro_cases =
    [
      ("fft/forward", fun () -> Negacyclic.forward_into fspec fpoly);
      ("fft/backward", fun () -> Negacyclic.backward_into fback fspec);
      ("fft/polymul", fun () -> ignore (Negacyclic.polymul fa fb));
      ("ntt/forward", fun () -> Ntt.forward_into nspec ipoly);
      ("ntt/backward", fun () -> Ntt.backward_into nback nspec);
      ("ntt/polymul", fun () -> ignore (Ntt.polymul ipoly tpoly));
    ]
  in
  Format.printf "@.transform micro at N = %d:@." n;
  Format.printf "%-20s %12s@." "PRIMITIVE" "TIME/OP";
  let micro_results =
    List.map
      (fun (name, f) ->
        let wall, _ = measure ~iters f in
        Format.printf "%-20s %12s@." name (human_time wall);
        (name, wall))
      micro_cases
  in
  (* (b) Exactness: the NTT product must equal the schoolbook reference
     coefficient for coefficient — including gadget-scale magnitudes. *)
  let exact_vs_naive =
    Ntt.polymul ipoly tpoly = Ntt.polymul_naive ipoly tpoly
  in
  Format.printf "@.ntt/polymul == schoolbook at gadget magnitudes: %b@." exact_vs_naive;
  (* (c) Full bootstrapped gates under both transforms.  Keys are grown
     from the same seed, so the FFT and NTT runs see identical key
     material and identical input ciphertexts; at these magnitudes the
     FFT's products round to exact integers, so the two gate outputs must
     be bit-identical — that equality is the [ntt_ok] CI gate. *)
  let gate_runs = ref [] in
  let ntt_ok = ref true in
  let gate_under (base : Params.t) =
    let iters = if !smoke then 1 else 10 in
    let outputs =
      List.map
        (fun kind ->
          let p = Params.with_transform base kind in
          let rng = Rng.create ~seed:9090 () in
          Format.printf "  [%s/%s: generating keys ...]@?" base.Params.name
            (Transform.kind_name kind);
          let t0 = Unix.gettimeofday () in
          let sk, ck = Gates.key_gen rng p in
          Format.printf " %.1fs@." (Unix.gettimeofday () -. t0);
          let a = Gates.encrypt_bit rng sk true in
          let b = Gates.encrypt_bit rng sk false in
          let ctx = Gates.context ck in
          ignore (Gates.nand_gate_in ctx a b);
          let wall, _ = measure ~warmup:0 ~iters (fun () -> ignore (Gates.nand_gate_in ctx a b)) in
          Format.printf "  %s/%s NAND: %s/gate@." base.Params.name
            (Transform.kind_name kind) (human_time wall);
          let out = Gates.nand_gate_in ctx a b in
          if not (Gates.decrypt_bit sk out) then begin
            Format.printf "  %s/%s NAND DECRYPTS WRONG@." base.Params.name
              (Transform.kind_name kind);
            ntt_ok := false
          end;
          gate_runs :=
            (base.Params.name, Transform.kind_name kind, wall) :: !gate_runs;
          (kind, out))
        [ Transform.Fft; Transform.Ntt ]
    in
    match outputs with
    | [ (_, off); (_, ont) ] ->
      let equal = off.Lwe.a = ont.Lwe.a && off.Lwe.b = ont.Lwe.b in
      Format.printf "  %s: FFT and NTT gate outputs bit-equal: %b@." base.Params.name equal;
      if not equal then ntt_ok := false
    | _ -> assert false
  in
  gate_under Params.test;
  gate_under Params.default_128;
  let ntt_ok = !ntt_ok && exact_vs_naive in
  let micro_time name = List.assoc name micro_results in
  let gate_time pname kname =
    let _, _, w = List.find (fun (p, k, _) -> p = pname && k = kname) !gate_runs in
    w
  in
  let json =
    Json.Obj
      [
        ("smoke", Json.Bool !smoke);
        ("ring_n", Json.Number (float_of_int n));
        ( "micro",
          Json.List
            (List.map
               (fun (name, wall) ->
                 Json.Obj [ ("name", Json.String name); ("time_s", Json.Number wall) ])
               micro_results) );
        ("ntt_polymul_exact", Json.Bool exact_vs_naive);
        ( "gates",
          Json.List
            (List.map
               (fun (pname, kname, wall) ->
                 Json.Obj
                   [
                     ("params", Json.String pname);
                     ("transform", Json.String kname);
                     ("gate_time_s", Json.Number wall);
                   ])
               (List.rev !gate_runs)) );
        ( "ntt_vs_fft_polymul_slowdown",
          Json.Number (micro_time "ntt/polymul" /. Float.max (micro_time "fft/polymul") 1e-12) );
        ( "ntt_vs_fft_gate_slowdown_test",
          Json.Number
            (gate_time Params.test.Params.name "ntt"
            /. Float.max (gate_time Params.test.Params.name "fft") 1e-12) );
        (* CI smoke gate: the NTT path must be exact against the schoolbook
           reference, decrypt correctly, and produce gate outputs bit-equal
           to the FFT's under both parameter sets. *)
        ("ntt_ok", Json.Bool ntt_ok);
      ]
  in
  (* Written in smoke mode too: CI runs `ntt --smoke` and uploads it. *)
  let path = "BENCH_ntt.json" in
  Out_channel.with_open_text path (fun oc -> output_string oc (Json.to_string ~indent:true json));
  Format.printf "@.wrote %s@." path;
  (* Exactness is deterministic — a mismatch is a correctness bug, not
     jitter — so it fails the bench run outright (after the artifact is on
     disk for debugging). *)
  if not ntt_ok then exit 1

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices DESIGN.md calls out                  *)
(* ------------------------------------------------------------------ *)

let ablation () =
  header "Ablations — adder architecture, scheduler policy, GPU batching, synthesis passes";

  (* (a) Adder architecture: gate count vs depth, and what each backend
     makes of the trade. *)
  Format.printf "@.(a) adder architecture on a 16-element 32-bit vector sum:@.";
  let build_sum adder =
    let net = Netlist.create () in
    let xs = Array.init 16 (fun i -> Pytfhe_hdl.Bus.input net (Printf.sprintf "x%d" i) 32) in
    let total = Array.fold_left (fun acc x -> adder net acc x) xs.(0) (Array.sub xs 1 15) in
    Pytfhe_hdl.Bus.output net "sum" total;
    net
  in
  let build_single adder =
    let net = Netlist.create () in
    let a = Pytfhe_hdl.Bus.input net "a" 64 in
    let b = Pytfhe_hdl.Bus.input net "b" 64 in
    Pytfhe_hdl.Bus.output net "s" (adder net a b);
    net
  in
  let adders =
    [
      ("ripple-carry", fun net a b -> Pytfhe_hdl.Arith.add net a b);
      ("kogge-stone", fun net a b -> Pytfhe_hdl.Arith.add_fast net a b);
    ]
  in
  Format.printf "%-14s %10s %8s %7s %14s %14s@." "ADDER" "SHAPE" "GATES" "DEPTH" "4-NODE EST" "A5000 EST";
  List.iter
    (fun (shape, build) ->
      List.iter
        (fun (name, adder) ->
          let net = build adder in
          let sched = Levelize.run net in
          let dist = (Sched_cpu.simulate { Sched_cpu.nodes = 4; cost } sched).Sched_cpu.makespan in
          let gpu = (Sched_gpu.simulate_pytfhe Cost_model.gpu_a5000 ~cpu:cost sched).Sched_gpu.makespan in
          Format.printf "%-14s %10s %8d %7d %14s %14s@." name shape (Netlist.bootstrap_count net)
            sched.Levelize.depth (human_time dist) (human_time gpu))
        adders)
    [ ("single", build_single); ("chained", build_sum) ];
  Format.printf
    "-> the prefix adder wins depth (latency) on an isolated add, but loses everywhere in a@.";
  Format.printf
    "   chained accumulation: successive ripple carries overlap wave-by-wave, so the cheaper@.";
  Format.printf "   adder also ends up no deeper.  Gate count (= single-core time) always favours ripple.@.";

  (* (b) Scheduler policy: Algorithm 1's wave barriers vs event-driven ASAP. *)
  Format.printf "@.(b) wave-synchronous (Algorithm 1) vs event-driven ASAP dispatch, 4 nodes:@.";
  Format.printf "%-20s %12s %12s %9s@." "WORKLOAD" "BARRIER" "ASAP" "GAIN";
  let sched_workloads = [ "nr_solver"; "rc_edge_detection"; "box_blur"; "mnist_tiny" ] in
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some w ->
        let net = (compiled w).Pipeline.netlist in
        let config = { Sched_cpu.nodes = 4; cost } in
        let barrier = Sched_cpu.simulate config (Levelize.run net) in
        let asap = Sched_cpu.simulate_asap config net in
        Format.printf "%-20s %12s %12s %8.2fx@." name
          (human_time barrier.Sched_cpu.makespan)
          (human_time asap.Sched_cpu.makespan)
          (barrier.Sched_cpu.makespan /. asap.Sched_cpu.makespan))
    sched_workloads;

  (* (c) GPU batching policy. *)
  Format.printf "@.(c) GPU execution policy (A5000):@.";
  Format.printf "%-20s %14s %14s %14s@." "WORKLOAD" "PER-GATE" "TYPE-BATCHED" "CUDA GRAPHS";
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some w ->
        let c = compiled w in
        let net = c.Pipeline.netlist in
        let per_gate = Sched_gpu.simulate_cufhe Cost_model.gpu_a5000 ~cpu:cost c.Pipeline.schedule in
        let batched = Sched_gpu.simulate_cufhe_batched Cost_model.gpu_a5000 ~cpu:cost net in
        let graphs = Sched_gpu.simulate_pytfhe Cost_model.gpu_a5000 ~cpu:cost c.Pipeline.schedule in
        Format.printf "%-20s %14s %14s %14s@." name
          (human_time per_gate.Sched_gpu.makespan)
          (human_time batched.Sched_gpu.makespan)
          (human_time graphs.Sched_gpu.makespan))
    sched_workloads;

  (* (d) Synthesis passes. *)
  Format.printf "@.(d) synthesis optimization (bootstrapped gates before -> after):@.";
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> ()
      | Some w ->
        let raw = w.W.circuit () in
        let optimized, report = Pytfhe_synth.Opt.optimize raw in
        ignore optimized;
        Format.printf "  %-20s %a@." name Pytfhe_synth.Opt.pp_report report)
    [ "dot_product"; "nr_solver"; "primality"; "mnist_tiny"; "attention_tiny" ]

(* ------------------------------------------------------------------ *)
(* Parameter design space (§II-D: why the default set looks like that)  *)
(* ------------------------------------------------------------------ *)

let params_explorer () =
  header "Parameter explorer — gadget decomposition (l, log2 Bg) vs noise and gate cost";
  Format.printf
    "n=630, N=1024, sigma_lwe=2^-15, sigma_bk=2^-25 fixed; per-gate cost scales with l@.";
  Format.printf "(each blind-rotation step runs (k+1)(l+1) FFTs: l forward per component + inverses)@.@.";
  Format.printf "%4s %8s %14s %16s %10s@." "l" "log2 Bg" "decomp bits" "gate failure" "rel. cost";
  List.iter
    (fun (l, bg_bit) ->
      if l * bg_bit <= 32 then begin
        let p =
          Params.custom ~name:(Printf.sprintf "l%d-bg%d" l bg_bit) ~n:630
            ~lwe_stdev:(2.0 ** -15.0) ~ring_n:1024 ~k:1 ~tlwe_stdev:(2.0 ** -25.0) ~l ~bg_bit
            ~ks_t:8 ~ks_base_bit:2 ()
        in
        let prob = Noise.gate_failure_probability p in
        let marker =
          match Noise.check p with `Ok _ -> "" | `Unsafe _ -> "  <- UNSAFE"
        in
        Format.printf "%4d %8d %14d %16.2e %9.2fx%s@." l bg_bit (l * bg_bit) prob
          (float_of_int l /. 3.0) marker
      end)
    [ (1, 16); (2, 8); (2, 12); (3, 7); (3, 9); (4, 6); (4, 8); (6, 5) ];
  Format.printf
    "@.the shipped default (l=3, Bg=2^7) sits at the knee: one less level is unsafe,@.";
  Format.printf "one more costs a third more FFT work for no useful noise headroom.@."

(* ------------------------------------------------------------------ *)
(* Par_eval — real multicore execution vs the Sched_cpu cost model      *)
(* ------------------------------------------------------------------ *)

let par () =
  header "Par — real multicore TFHE execution (Par_eval) vs the Sched_cpu cost model";
  if !quick then Format.printf "(--quick: skipped — runs real crypto for every worker count)@."
  else begin
    let w = Option.get (Suite.find "hamming_distance") in
    let c = compiled w in
    let sched = c.Pipeline.schedule in
    let seed = 4242 in
    Format.printf "  [generating keys (test parameters) ...]@?";
    let t0 = Unix.gettimeofday () in
    let client, cloud = Client.keygen ~params:Params.test ~seed () in
    Format.printf " %.1fs@." (Unix.gettimeofday () -. t0);
    let rng = Rng.create ~seed:(seed + 1) () in
    let n_in = Netlist.input_count c.Pipeline.netlist in
    let ins = Array.init n_in (fun _ -> Rng.bool rng) in
    let cts = Client.encrypt_bits client ins in
    Format.printf "  [sequential reference (Tfhe_eval) ...]@?";
    let seq_out, seq_stats = Server.run Server.Cpu cloud c cts in
    let seq_wall = seq_stats.Executor.wall_time in
    let bootstraps = seq_stats.Executor.bootstraps_executed in
    Format.printf " %s (%d bootstraps)@." (human_time seq_wall) bootstraps;
    let bits = Client.decrypt_bits client seq_out in
    let expected = Plain_eval.run c.Pipeline.netlist ins in
    let plain_ok = List.for_all2 (fun (_, e) g -> e = g) expected (Array.to_list bits) in
    (* Calibrate the distributed-CPU simulator to this machine's measured
       gate time, then strip the cluster overheads (no NIC, no Ray scheduler
       here) so it predicts pure shared-memory wave execution. *)
    let measured_gate_time = seq_wall /. float_of_int (max 1 bootstraps) in
    let base = Cost_model.calibrated_cpu ~measured_gate_time in
    let local_cost =
      { base with Cost_model.comm_time = 0.0; submit_time = 0.0; sync_time = 0.0;
        startup_time = 0.0; workers_per_node = 1 }
    in
    let worker_counts = [ 1; 2; 4; 8 ] in
    let rows =
      List.map
        (fun workers ->
          let outs, est = Server.run (Server.Multicore { workers }) cloud c cts in
          let st =
            match est.Executor.detail with
            | Executor.Multicore_stats p -> p
            | _ -> assert false
          in
          let exact = outs = seq_out in
          let measured = seq_wall /. st.Par_eval.wall_time in
          let simulated =
            (Sched_cpu.simulate { Sched_cpu.nodes = workers; cost = local_cost } sched)
              .Sched_cpu.speedup
          in
          (workers, st, exact, measured, simulated))
        worker_counts
    in
    Format.printf "@.%-8s %10s %10s %11s %8s %10s@."
      "WORKERS" "WALL" "MEASURED" "SIMULATED" "IDEAL" "BIT-EXACT";
    List.iter
      (fun (workers, st, exact, measured, simulated) ->
        Format.printf "%-8d %10s %9.2fx %10.2fx %7.2fx %10s@." workers
          (human_time st.Par_eval.wall_time) measured simulated st.Par_eval.ideal_speedup
          (if exact then "yes" else "NO"))
      rows;
    let host_domains = Domain.recommended_domain_count () in
    Format.printf "@.host offers %d domain%s; with fewer cores than workers the measured@."
      host_domains (if host_domains = 1 then "" else "s");
    Format.printf
      "column saturates at the core count while SIMULATED/IDEAL show what the@.";
    Format.printf "same wave schedule yields once real cores exist (paper Fig. 10).@.";
    if not plain_ok then Format.printf "WARNING: decryption disagrees with Plain_eval!@.";
    let all_exact = List.for_all (fun (_, _, e, _, _) -> e) rows in
    if not all_exact then Format.printf "WARNING: parallel output differs from Tfhe_eval!@.";
    let json =
      Json.Obj
        [
          ("workload", Json.String w.W.name);
          ("params", Json.String "test");
          ("bootstraps", Json.Number (float_of_int bootstraps));
          ("depth", Json.Number (float_of_int sched.Levelize.depth));
          ("sequential_wall_s", Json.Number seq_wall);
          ("measured_gate_time_s", Json.Number measured_gate_time);
          ("host_domains", Json.Number (float_of_int host_domains));
          ("plain_eval_agrees", Json.Bool plain_ok);
          ( "runs",
            Json.List
              (List.map
                 (fun (workers, st, exact, measured, simulated) ->
                   Json.Obj
                     [
                       ("workers", Json.Number (float_of_int workers));
                       ("wall_s", Json.Number st.Par_eval.wall_time);
                       ("measured_speedup", Json.Number measured);
                       ("simulated_speedup", Json.Number simulated);
                       ("ideal_speedup", Json.Number st.Par_eval.ideal_speedup);
                       ("achieved_speedup", Json.Number st.Par_eval.achieved_speedup);
                       ("bit_exact", Json.Bool exact);
                       ( "per_domain_bootstraps",
                         Json.List
                           (Array.to_list
                              (Array.map
                                 (fun b -> Json.Number (float_of_int b))
                                 st.Par_eval.per_domain_bootstraps)) );
                     ])
                 rows) );
        ]
    in
    let path = "BENCH_par_eval.json" in
    Out_channel.with_open_text path (fun oc -> output_string oc (Json.to_string ~indent:true json));
    Format.printf "@.wrote %s@." path
  end

(* ------------------------------------------------------------------ *)
(* Dist_eval — real multi-process execution: measured dispatch/transfer/
   compute split vs the Sched_cpu modelled split for the same workload    *)
(* ------------------------------------------------------------------ *)

module Dist_eval = Pytfhe_backend.Dist_eval

let dist () =
  header "Dist — real multi-process TFHE execution (Dist_eval) vs the Sched_cpu cost model";
  if !quick then Format.printf "(--quick: skipped — runs real crypto across worker processes)@."
  else begin
    let w = Option.get (Suite.find "hamming_distance") in
    let c = compiled w in
    let sched = c.Pipeline.schedule in
    let seed = 5252 in
    Format.printf "  [generating keys (test parameters) ...]@?";
    let t0 = Unix.gettimeofday () in
    let client, cloud = Client.keygen ~params:Params.test ~seed () in
    Format.printf " %.1fs@." (Unix.gettimeofday () -. t0);
    let rng = Rng.create ~seed:(seed + 1) () in
    let n_in = Netlist.input_count c.Pipeline.netlist in
    let ins = Array.init n_in (fun _ -> Rng.bool rng) in
    let cts = Client.encrypt_bits client ins in
    Format.printf "  [sequential reference (Tfhe_eval) ...]@?";
    let seq_out, seq_stats = Server.run Server.Cpu cloud c cts in
    let seq_wall = seq_stats.Executor.wall_time in
    let bootstraps = seq_stats.Executor.bootstraps_executed in
    Format.printf " %s (%d bootstraps)@." (human_time seq_wall) bootstraps;
    (* The modelled counterpart: the same wave schedule priced by Sched_cpu
       with this machine's measured gate time, one worker per node so
       nodes = worker processes. *)
    let measured_gate_time = seq_wall /. float_of_int (max 1 bootstraps) in
    let base = Cost_model.calibrated_cpu ~measured_gate_time in
    let model_cost = { base with Cost_model.workers_per_node = 1 } in
    let run_once ?(faults = []) workers =
      let cfg = Dist_eval.config ~faults workers in
      let outs, est =
        Server.run (Server.Multiprocess { workers; config = Some cfg }) cloud c cts
      in
      let st =
        match est.Executor.detail with
        | Executor.Multiprocess_stats d -> d
        | _ -> assert false
      in
      (outs = seq_out, st)
    in
    let worker_counts = [ 1; 2; 4 ] in
    let rows =
      List.map
        (fun workers ->
          let exact, st = run_once workers in
          let model = Sched_cpu.simulate { Sched_cpu.nodes = workers; cost = model_cost } sched in
          (workers, st, exact, model))
        worker_counts
    in
    Format.printf "@.%-8s %10s %10s %10s %10s %10s %10s@." "WORKERS" "WALL" "DISPATCH"
      "TRANSFER" "COMPUTE" "SHIPPED" "BIT-EXACT";
    List.iter
      (fun (workers, st, exact, _) ->
        Format.printf "%-8d %10s %10s %10s %10s %9dK %10s@." workers
          (human_time st.Dist_eval.wall_time)
          (human_time st.Dist_eval.dispatch_time)
          (human_time st.Dist_eval.transfer_time)
          (human_time st.Dist_eval.compute_time)
          ((st.Dist_eval.bytes_to_workers + st.Dist_eval.bytes_from_workers) / 1024)
          (if exact then "yes" else "NO"))
      rows;
    Format.printf "@.measured vs modelled split (fraction of busy time per category):@.";
    Format.printf "%-8s %26s %26s@." "" "MEASURED (disp/xfer/comp)" "MODELLED (disp/sync/comp)";
    List.iter
      (fun (workers, st, _, model) ->
        let m_total =
          Float.max 1e-9
            (st.Dist_eval.dispatch_time +. st.Dist_eval.transfer_time +. st.Dist_eval.compute_time)
        in
        let s_total =
          Float.max 1e-9
            (model.Sched_cpu.dispatch_time +. model.Sched_cpu.sync_time
           +. model.Sched_cpu.compute_time)
        in
        Format.printf "%-8d %8.1f%% /%5.1f%% /%5.1f%% %9.1f%% /%5.1f%% /%5.1f%%@." workers
          (100.0 *. st.Dist_eval.dispatch_time /. m_total)
          (100.0 *. st.Dist_eval.transfer_time /. m_total)
          (100.0 *. st.Dist_eval.compute_time /. m_total)
          (100.0 *. model.Sched_cpu.dispatch_time /. s_total)
          (100.0 *. model.Sched_cpu.sync_time /. s_total)
          (100.0 *. model.Sched_cpu.compute_time /. s_total))
      rows;
    (* Fault drill: kill one of three workers mid-run; the survivors must
       absorb its shard and the outputs must stay bit-exact. *)
    Format.printf "@.  [fault drill: SIGKILL worker 1 of 3 mid-wave ...]@?";
    let fault_exact, fault_st =
      run_once ~faults:[ { Dist_eval.victim = 1; after_requests = 2; action = Dist_eval.Crash } ] 3
    in
    Format.printf " %s, %d lost, %d reassigned, bit-exact: %s@."
      (human_time fault_st.Dist_eval.wall_time)
      fault_st.Dist_eval.workers_lost fault_st.Dist_eval.reassignments
      (if fault_exact then "yes" else "NO");
    let all_exact = fault_exact && List.for_all (fun (_, _, e, _) -> e) rows in
    if not all_exact then Format.printf "WARNING: distributed output differs from Tfhe_eval!@.";
    let split_json (st : Dist_eval.stats) =
      [
        ("wall_s", Json.Number st.Dist_eval.wall_time);
        ("startup_s", Json.Number st.Dist_eval.startup_time);
        ("dispatch_s", Json.Number st.Dist_eval.dispatch_time);
        ("transfer_s", Json.Number st.Dist_eval.transfer_time);
        ("compute_s", Json.Number st.Dist_eval.compute_time);
        ("requests", Json.Number (float_of_int st.Dist_eval.requests_sent));
        ("retries", Json.Number (float_of_int st.Dist_eval.retries));
        ("reassignments", Json.Number (float_of_int st.Dist_eval.reassignments));
        ("workers_lost", Json.Number (float_of_int st.Dist_eval.workers_lost));
        ("keyset_bytes", Json.Number (float_of_int st.Dist_eval.keyset_bytes));
        ("bytes_to_workers", Json.Number (float_of_int st.Dist_eval.bytes_to_workers));
        ("bytes_from_workers", Json.Number (float_of_int st.Dist_eval.bytes_from_workers));
      ]
    in
    let json =
      Json.Obj
        [
          ("workload", Json.String w.W.name);
          ("params", Json.String "test");
          ("bootstraps", Json.Number (float_of_int bootstraps));
          ("depth", Json.Number (float_of_int sched.Levelize.depth));
          ("sequential_wall_s", Json.Number seq_wall);
          ("measured_gate_time_s", Json.Number measured_gate_time);
          ( "runs",
            Json.List
              (List.map
                 (fun (workers, st, exact, model) ->
                   Json.Obj
                     ([
                        ("workers", Json.Number (float_of_int workers));
                        ("bit_exact", Json.Bool exact);
                        ( "modelled",
                          Json.Obj
                            [
                              ("makespan_s", Json.Number model.Sched_cpu.makespan);
                              ("dispatch_s", Json.Number model.Sched_cpu.dispatch_time);
                              ("sync_s", Json.Number model.Sched_cpu.sync_time);
                              ("compute_s", Json.Number model.Sched_cpu.compute_time);
                            ] );
                      ]
                     @ split_json st))
                 rows) );
          ( "fault_run",
            Json.Obj
              ([ ("workers", Json.Number 3.0); ("bit_exact", Json.Bool fault_exact) ]
              @ split_json fault_st) );
        ]
    in
    let path = "BENCH_dist_eval.json" in
    Out_channel.with_open_text path (fun oc -> output_string oc (Json.to_string ~indent:true json));
    Format.printf "@.wrote %s@." path
  end

(* ------------------------------------------------------------------ *)
(* Obs — overhead of the observability layer on the sequential executor *)
(* ------------------------------------------------------------------ *)

let obs_bench () =
  header "Obs — tracing overhead: uninstrumented loop vs disabled sink vs enabled sink";
  let p = if !smoke then smoke_params else Params.test in
  let chain = if !smoke then 48 else 200 in
  let reps = if !smoke then 3 else 5 in
  (* A pure serial chain is the worst case for per-gate probe overhead:
     nothing amortizes it, and every gate is its own wave when traced. *)
  let net = Netlist.create ~hash_consing:false ~fold_constants:false () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let kinds = [| Gate.And; Gate.Xor; Gate.Or; Gate.Nand |] in
  let cur = ref a in
  for i = 0 to chain - 1 do
    cur := Netlist.gate net kinds.(i mod Array.length kinds) !cur b
  done;
  Netlist.mark_output net "o" !cur;
  Format.printf "parameters: %a; %d-gate serial chain, best of %d reps@." Params.pp p chain reps;
  Format.printf "  [generating keys ...]@?";
  let t0 = Unix.gettimeofday () in
  let rng = Rng.create ~seed:6061 () in
  let sk, cloud = Gates.key_gen rng p in
  Format.printf " %.1fs@." (Unix.gettimeofday () -. t0);
  let ins = [| Gates.encrypt_bit rng sk true; Gates.encrypt_bit rng sk false |] in
  (* The pre-observability executor, re-created verbatim: an id-order walk
     with no sink, no flag check, no stats beyond what the loop needs. *)
  let baseline () =
    let ctx = Gates.default_context cloud in
    let n = Netlist.node_count net in
    let values : Lwe.sample option array = Array.make n None in
    List.iteri (fun i (_, id) -> values.(id) <- Some ins.(i)) (Netlist.inputs net);
    for id = 0 to n - 1 do
      match Netlist.kind net id with
      | Netlist.Input _ -> ()
      | Netlist.Const bv -> values.(id) <- Some (Gates.constant cloud bv)
      | Netlist.Gate (g, x, y) ->
        let vx = Option.get values.(x) and vy = Option.get values.(y) in
        values.(id) <- Some (Pytfhe_backend.Tfhe_eval.apply_gate ctx g vx vy)
      | Netlist.Lut _ -> assert false (* the chain generator emits no LUT cells *)
    done
  in
  let best f =
    let m = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      m := Float.min !m (Unix.gettimeofday () -. t0)
    done;
    !m
  in
  let t_base = best baseline in
  let t_null = best (fun () -> ignore (Pytfhe_backend.Tfhe_eval.run cloud net ins)) in
  let last_sink = ref Trace.null in
  let t_traced =
    best (fun () ->
        let s = Trace.create () in
        last_sink := s;
        ignore
          (Pytfhe_backend.Tfhe_eval.run
             ~opts:(Pytfhe_backend.Exec_opts.of_flags ~obs:s ())
             cloud net ins))
  in
  let evs = Trace.events !last_sink in
  let nevents = List.length evs in
  let nspans = List.length (List.filter (function Trace.Span _ -> true | _ -> false) evs) in
  let disabled_overhead = (t_null -. t_base) /. t_base in
  let enabled_overhead = (t_traced -. t_base) /. t_base in
  Format.printf "@.%-36s %12s %10s@." "EXECUTOR" "WALL" "OVERHEAD";
  Format.printf "%-36s %12s %10s@." "uninstrumented id-order loop" (human_time t_base) "-";
  Format.printf "%-36s %12s %+9.2f%%@." "Tfhe_eval.run, sink disabled" (human_time t_null)
    (100.0 *. disabled_overhead);
  Format.printf "%-36s %12s %+9.2f%%@." "Tfhe_eval.run, sink enabled" (human_time t_traced)
    (100.0 *. enabled_overhead);
  Format.printf "enabled run captured %d events (%d spans over %d waves)@." nevents nspans chain;
  Format.printf "disabled-sink overhead %s the 2%% budget%s@."
    (if disabled_overhead < 0.02 then "meets" else "EXCEEDS")
    (if !smoke then "  (smoke parameters: gate time is tiny, expect jitter)" else "");
  let json =
    Json.Obj
      [
        ("params", Json.String p.Params.name);
        ("smoke", Json.Bool !smoke);
        ("chain_gates", Json.Number (float_of_int chain));
        ("reps", Json.Number (float_of_int reps));
        ("baseline_wall_s", Json.Number t_base);
        ("disabled_sink_wall_s", Json.Number t_null);
        ("enabled_sink_wall_s", Json.Number t_traced);
        ("disabled_overhead_fraction", Json.Number disabled_overhead);
        ("enabled_overhead_fraction", Json.Number enabled_overhead);
        ("events", Json.Number (float_of_int nevents));
        ("spans", Json.Number (float_of_int nspans));
      ]
  in
  let path = "BENCH_obs_overhead.json" in
  Out_channel.with_open_text path (fun oc -> output_string oc (Json.to_string ~indent:true json));
  Format.printf "@.wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Batch — key-streaming batched bootstrap kernel vs per-gate execution
   (the CPU analog of the paper's Fig. 9 CUDA-Graph wave batching)        *)
(* ------------------------------------------------------------------ *)

let batch_bench () =
  header "Batch — wave-batched key-streaming bootstrap kernel vs per-gate execution";
  let p = if !smoke then smoke_params else Params.test in
  let width = if !smoke then 14 else 24 in
  let depth = if !smoke then 3 else 3 in
  (* Individual runs jitter by several percent on a loaded machine — more
     than the effect under measurement — so take the best of several. *)
  let reps = 8 in
  (* A wide layered circuit: every layer is one wave of [width] independent
     bootstrapped gates — the shape wave batching exists for. *)
  let net = Netlist.create ~hash_consing:false ~fold_constants:false () in
  let ins_ids = Array.init (width + 1) (fun i -> Netlist.input net (Printf.sprintf "i%d" i)) in
  let kinds = [| Gate.Xor; Gate.And; Gate.Or; Gate.Nand; Gate.Xnor |] in
  let cur = ref (Array.sub ins_ids 0 width) in
  for d = 0 to depth - 1 do
    cur :=
      Array.mapi
        (fun j v -> Netlist.gate net kinds.((d + j) mod Array.length kinds) v ins_ids.(width))
        !cur
  done;
  Array.iteri (fun j v -> Netlist.mark_output net (Printf.sprintf "o%d" j) v) !cur;
  let sched = Levelize.run net in
  Format.printf "parameters: %a; %d waves x %d gates, best of %d reps@." Params.pp p depth
    width reps;
  Format.printf "  [generating keys ...]@?";
  let t0 = Unix.gettimeofday () in
  let rng = Rng.create ~seed:7077 () in
  let sk, cloud = Gates.key_gen rng p in
  Format.printf " %.1fs@." (Unix.gettimeofday () -. t0);
  ignore sk;
  let cts = Array.init (width + 1) (fun _ -> Gates.encrypt_bit rng sk (Rng.bool rng)) in
  let best f =
    let m = ref infinity and out = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      m := Float.min !m (Unix.gettimeofday () -. t0);
      out := Some r
    done;
    (Option.get !out, !m)
  in
  let module Tfhe_eval = Pytfhe_backend.Tfhe_eval in
  let (scalar_out, _), scalar_wall = best (fun () -> Tfhe_eval.run cloud net cts) in
  let bootstraps = width * depth in
  Format.printf "  per-gate (scalar): %s  (%.1f gates/s)@." (human_time scalar_wall)
    (float_of_int bootstraps /. scalar_wall);
  let batch_sizes = [ 1; 4; 8 ] in
  (* Three code paths over the identical schedule and ciphertexts: the
     scalar walk (above), the record-per-gate batched walk, and the
     struct-of-arrays batched walk — so the SoA layout change is attributed
     separately from the key-streaming effect.  Every wall time is the best
     of [reps] runs; comparing best-of-N against best-of-N keeps scheduler
     jitter out of the throughput verdict. *)
  let layouts = [ (false, "record"); (true, "soa") ] in
  let rows =
    List.concat_map
      (fun (soa, label) ->
        List.map
          (fun b ->
            let (outs, st), wall =
              best (fun () ->
                  Tfhe_eval.run
                    ~opts:(Pytfhe_backend.Exec_opts.of_flags ~batch:b ~soa ())
                    cloud net cts)
            in
            let exact = outs = scalar_out in
            let bsk_per_gate =
              float_of_int st.Tfhe_eval.bsk_bytes_streamed /. float_of_int (max 1 bootstraps)
            in
            let ks_per_gate =
              float_of_int st.Tfhe_eval.ks_bytes_streamed /. float_of_int (max 1 bootstraps)
            in
            (soa, label, b, wall, exact, st, bsk_per_gate, ks_per_gate))
          batch_sizes)
      layouts
  in
  let row ~soa b = List.find (fun (s, _, b', _, _, _, _, _) -> s = soa && b' = b) rows in
  let wall_at ~soa b =
    let _, _, _, w, _, _, _, _ = row ~soa b in
    w
  in
  let bsk_at ~soa b =
    let _, _, _, _, _, _, v, _ = row ~soa b in
    v
  in
  Format.printf "@.%-8s %-7s %10s %12s %16s %16s %10s@." "LAYOUT" "BATCH" "WALL" "GATES/S"
    "BSK BYTES/GATE" "KS BYTES/GATE" "BIT-EXACT";
  List.iter
    (fun (_soa, label, b, wall, exact, _st, bsk_pg, ks_pg) ->
      Format.printf "%-8s %-7d %10s %12.1f %16.0f %16.0f %10s@." label b (human_time wall)
        (float_of_int bootstraps /. wall)
        bsk_pg ks_pg
        (if exact then "yes" else "NO"))
    rows;
  let reduction4 = bsk_at ~soa:true 1 /. Float.max (bsk_at ~soa:true 4) 1.0 in
  let wall1 = wall_at ~soa:true 1 in
  let wall4 = wall_at ~soa:true 4 in
  let wall8 = wall_at ~soa:true 8 in
  let record_wall4 = wall_at ~soa:false 4 in
  let all_exact = List.for_all (fun (_, _, _, _, e, _, _, _) -> e) rows in
  (* Both sides of the throughput criterion are best-of-[reps] wall times:
     the SoA batch=4 run must beat both the scalar walk and the per-gate
     batch=1 run (same code path, keys streamed once per gate), so the
     verdict reflects the layout + key-streaming effect rather than a lucky
     or unlucky single sample. *)
  let throughput_ok = wall4 <= Float.min wall1 scalar_wall *. 1.02 in
  let speedup4 = scalar_wall /. wall4 in
  let speedup8 = scalar_wall /. wall8 in
  Format.printf "@.bootstrap-key traffic at batch 4: %.2fx less than per-gate%s@." reduction4
    (if reduction4 >= 2.0 then "  (meets the 2x target)" else "  (BELOW the 2x target!)");
  Format.printf
    "SoA batched throughput: %.2fx vs scalar (x8: %.2fx), %.2fx vs per-gate batch=1, %.2fx vs \
     record batch=4%s@."
    speedup4 speedup8 (wall1 /. wall4) (record_wall4 /. wall4)
    (if throughput_ok then "" else "  (batched run is SLOWER than per-gate!)");
  if not all_exact then Format.printf "ERROR: batched output differs from the scalar path!@.";
  (* The Fig. 9 analog on the model side: the same wave schedule priced as
     cuFHE per-gate launches vs fused CUDA-Graph batches. *)
  let gpu = Cost_model.gpu_a5000 in
  let cufhe = Sched_gpu.simulate_cufhe gpu ~cpu:cost sched in
  let graph = Sched_gpu.simulate_pytfhe gpu ~cpu:cost sched in
  Format.printf "@.Sched_gpu model on this schedule: cuFHE per-gate %s vs CUDA-Graph %s (%.1fx)@."
    (human_time cufhe.Sched_gpu.makespan) (human_time graph.Sched_gpu.makespan)
    (cufhe.Sched_gpu.makespan /. Float.max graph.Sched_gpu.makespan 1e-12);
  let json =
    Json.Obj
      [
        ("params", Json.String p.Params.name);
        ("smoke", Json.Bool !smoke);
        ("wave_width", Json.Number (float_of_int width));
        ("waves", Json.Number (float_of_int depth));
        ("bootstraps", Json.Number (float_of_int bootstraps));
        ("reps", Json.Number (float_of_int reps));
        ("scalar_wall_s", Json.Number scalar_wall);
        ("scalar_gates_per_s", Json.Number (float_of_int bootstraps /. scalar_wall));
        ( "runs",
          Json.List
            (List.map
               (fun (soa, _label, b, wall, exact, st, bsk_pg, ks_pg) ->
                 Json.Obj
                   [
                     ("batch", Json.Number (float_of_int b));
                     ("soa", Json.Bool soa);
                     ("wall_s", Json.Number wall);
                     ("gates_per_s", Json.Number (float_of_int bootstraps /. wall));
                     ("bit_exact", Json.Bool exact);
                     ("batch_launches", Json.Number (float_of_int st.Tfhe_eval.batch_launches));
                     ("bsk_bytes_streamed", Json.Number (float_of_int st.Tfhe_eval.bsk_bytes_streamed));
                     ("ks_bytes_streamed", Json.Number (float_of_int st.Tfhe_eval.ks_bytes_streamed));
                     ("bsk_bytes_per_gate", Json.Number bsk_pg);
                     ("ks_bytes_per_gate", Json.Number ks_pg);
                   ])
               rows) );
        ("bsk_traffic_reduction_at_4", Json.Number reduction4);
        ("bsk_reduction_meets_2x", Json.Bool (reduction4 >= 2.0));
        (* best-of-N on both sides of every ratio below *)
        ("batched_speedup_x4", Json.Number speedup4);
        ("batched_speedup_x8", Json.Number speedup8);
        ("soa_vs_record_x4", Json.Number (record_wall4 /. wall4));
        ("throughput_margin", Json.Number speedup4);
        ("batched_throughput_ge_scalar", Json.Bool (wall4 <= scalar_wall));
        ("batched_throughput_ge_pergate", Json.Bool (wall4 <= wall1));
        ("all_bit_exact", Json.Bool all_exact);
        (* CI smoke gate: SoA must be bit-exact and not slower than scalar
           (10% jitter allowance — smoke parameters run in milliseconds). *)
        ("soa_ok", Json.Bool (all_exact && wall4 <= scalar_wall *. 1.10));
        ( "gpu_model",
          Json.Obj
            [
              ("cufhe_makespan_s", Json.Number cufhe.Sched_gpu.makespan);
              ("cuda_graph_makespan_s", Json.Number graph.Sched_gpu.makespan);
              ( "graph_speedup",
                Json.Number (cufhe.Sched_gpu.makespan /. Float.max graph.Sched_gpu.makespan 1e-12) );
            ] );
      ]
  in
  (* Written in smoke mode too: CI runs `batch --smoke` and uploads it. *)
  let path = "BENCH_batch.json" in
  Out_channel.with_open_text path (fun oc -> output_string oc (Json.to_string ~indent:true json));
  Format.printf "@.wrote %s@." path;
  (* Bit-exactness is deterministic — a mismatch is a correctness bug, not
     jitter — so it fails the bench run outright (after the artifact is on
     disk for debugging). *)
  if not all_exact then exit 1

(* ------------------------------------------------------------------ *)
(* Lut — programmable LUT covering: bootstrap counts on the VIP-Bench
   kernels plus an encrypted end-to-end correctness gate                *)
(* ------------------------------------------------------------------ *)

let lut_bench () =
  header "LUT — programmable 2-/3-input LUT covering vs the classic gate library";
  let module Opt = Pytfhe_synth.Opt in
  (* Smoke covers three representative kernels; the full run sweeps every
     light VIP-Bench workload.  Both are pure compile-time measurements —
     the covering pass never touches ciphertexts — so the bootstrap counts
     are exact, not sampled. *)
  let kernels =
    if !smoke then
      List.filter_map Suite.find [ "hamming_distance"; "bubble_sort"; "dot_product" ]
    else Suite.light
  in
  let rows =
    List.map
      (fun (w : W.t) ->
        let net = w.W.circuit () in
        let base, _ = Opt.optimize net in
        let cov, _ = Opt.lut_cover net in
        let sb = Stats.compute base and sc = Stats.compute cov in
        (* Plain-domain equivalence of the covered netlist against the
           optimized baseline (exhaustive up to 16 inputs). *)
        let equiv = Opt.equivalent base cov in
        let reduction =
          float_of_int sb.Stats.bootstraps /. float_of_int (max 1 sc.Stats.bootstraps)
        in
        (w.W.name, sb, sc, equiv, reduction))
      kernels
  in
  Format.printf "@.%-20s %11s %12s %10s %9s %7s %7s %6s@." "KERNEL" "BOOTSTRAPS"
    "LUT-COVERED" "REDUCTION" "LUT CELLS" "GROUPS" "REENC" "EQUIV";
  List.iter
    (fun (name, sb, sc, equiv, reduction) ->
      Format.printf "%-20s %11d %12d %9.2fx %9d %7d %7d %6s@." name sb.Stats.bootstraps
        sc.Stats.bootstraps reduction sc.Stats.luts sc.Stats.lut_groups sc.Stats.reencodes
        (if equiv then "yes" else "NO"))
    rows;
  let all_equiv = List.for_all (fun (_, _, _, e, _) -> e) rows in
  let target = 1.3 in
  let wins = List.length (List.filter (fun (_, _, _, _, r) -> r >= target) rows) in
  Format.printf "@.%d of %d kernels at or above the %.1fx reduction target@." wins
    (List.length rows) target;
  if not all_equiv then Format.printf "ERROR: a covered netlist is NOT equivalent to its baseline!@.";
  (* The end-to-end gate: compile one kernel with the covering pass, run it
     for real on TFHE ciphertexts, and check the decryption against the
     plain evaluation of the ORIGINAL (uncovered) circuit.  This exercises
     the whole chain — lutdom encoding, reencode cells, rotation sharing,
     classic views at the outputs — under real noise. *)
  let enc_w = List.hd kernels in
  let p = Params.test in
  Format.printf "@.encrypted check on %s (%a)@." enc_w.W.name Params.pp p;
  Format.printf "  [generating keys ...]@?";
  let t0 = Unix.gettimeofday () in
  let client, cloud = Client.keygen ~params:p ~seed:4242 () in
  Format.printf " %.1fs@." (Unix.gettimeofday () -. t0);
  let covered = Pipeline.compile ~lut_cover:true ~name:enc_w.W.name (enc_w.W.circuit ()) in
  let rng = Rng.create ~seed:9090 () in
  let n = Netlist.input_count covered.Pipeline.netlist in
  let ins = Array.init n (fun _ -> Rng.bool rng) in
  let cts = Client.encrypt_bits client ins in
  let t0 = Unix.gettimeofday () in
  let outs, stats = Server.run Server.Cpu cloud covered cts in
  let enc_wall = Unix.gettimeofday () -. t0 in
  let bits = Client.decrypt_bits client outs in
  let expected = Plain_eval.run (enc_w.W.circuit ()) ins in
  let enc_match = List.for_all2 (fun (_, e) g -> e = g) expected (Array.to_list bits) in
  let enc_boots = stats.Executor.bootstraps_executed in
  Format.printf "  %d bootstraps in %s (%.1f ms/rotation), outputs %s@." enc_boots
    (human_time enc_wall)
    (1000.0 *. enc_wall /. float_of_int (max 1 enc_boots))
    (if enc_match then "MATCH the uncovered plaintext reference" else "MISMATCH!");
  (* CI smoke gate: every covered kernel equivalent, the encrypted run
     correct, and the paper-style win — at least two VIP-Bench kernels at
     >= 1.3x fewer bootstraps — present. *)
  let lut_ok = all_equiv && enc_match && wins >= 2 in
  let json =
    Json.Obj
      [
        ("params", Json.String p.Params.name);
        ("smoke", Json.Bool !smoke);
        ("reduction_target", Json.Number target);
        ( "kernels",
          Json.List
            (List.map
               (fun (name, sb, sc, equiv, reduction) ->
                 Json.Obj
                   [
                     ("name", Json.String name);
                     ("gates_opt", Json.Number (float_of_int sb.Stats.gates));
                     ("bootstraps_opt", Json.Number (float_of_int sb.Stats.bootstraps));
                     ("gates_lut", Json.Number (float_of_int sc.Stats.gates));
                     ("bootstraps_lut", Json.Number (float_of_int sc.Stats.bootstraps));
                     ("lut_cells", Json.Number (float_of_int sc.Stats.luts));
                     ("lut_groups", Json.Number (float_of_int sc.Stats.lut_groups));
                     ("reencodes", Json.Number (float_of_int sc.Stats.reencodes));
                     ("reduction", Json.Number reduction);
                     ("equivalent", Json.Bool equiv);
                   ])
               rows) );
        ("kernels_at_or_above_target", Json.Number (float_of_int wins));
        ("all_equivalent", Json.Bool all_equiv);
        ( "encrypted",
          Json.Obj
            [
              ("kernel", Json.String enc_w.W.name);
              ("backend", Json.String "cpu");
              ("bootstraps_executed", Json.Number (float_of_int enc_boots));
              ("wall_s", Json.Number enc_wall);
              ("match", Json.Bool enc_match);
            ] );
        ("lut_ok", Json.Bool lut_ok);
      ]
  in
  (* Written in smoke mode too: CI runs `lut --smoke` and uploads it. *)
  let path = "BENCH_lut.json" in
  Out_channel.with_open_text path (fun oc -> output_string oc (Json.to_string ~indent:true json));
  Format.printf "@.wrote %s@." path;
  (* Equivalence and encrypted correctness are deterministic — a failure is
     a covering-pass bug, not jitter — so it fails the bench run outright
     (after the artifact is on disk for debugging). *)
  if not lut_ok then exit 1

(* ------------------------------------------------------------------ *)
(* Service — FHE-as-a-service load generator: open-loop arrivals at
   swept offered load against the persistent server, measuring p50/p99
   latency, throughput and cross-request batch fill                      *)
(* ------------------------------------------------------------------ *)

module Service = Pytfhe_service.Service
module Service_client = Pytfhe_service.Service_client
module Quantile = Pytfhe_obs.Quantile

(* A fully serial XOR chain exposes exactly one ready gate per wave, so a
   batch fill above 1.0 on chain-only traffic is reachable only by the
   scheduler packing gates of concurrent requests into one launch — the
   acceptance gate this bench asserts. *)
let service_chain ~depth =
  let net = Netlist.create ~hash_consing:false ~fold_constants:false () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let rec go x n = if n = 0 then x else go (Netlist.gate net Gate.Xor x b) (n - 1) in
  Netlist.mark_output net "o" (go a depth);
  net

let service_wide ~width ~depth =
  let net = Netlist.create ~hash_consing:false ~fold_constants:false () in
  let inputs = Array.init (width + 1) (fun i -> Netlist.input net (Printf.sprintf "i%d" i)) in
  let layer = ref (Array.init width (fun i -> inputs.(i))) in
  for _ = 1 to depth do
    layer :=
      Array.mapi (fun i x -> Netlist.gate net Gate.Xor x inputs.((i + 1) mod (width + 1))) !layer
  done;
  Array.iteri (fun i x -> Netlist.mark_output net (Printf.sprintf "o%d" i) x) !layer;
  net

let service_bench () =
  header "service — persistent server under open-loop load (cross-request packing)";
  let p = if !smoke then smoke_params else Params.test in
  let chain_depth = if !smoke then 12 else 96 in
  let wide_depth = if !smoke then 2 else 6 in
  Format.printf "parameters: %a@." Params.pp p;
  Format.printf "  [generating keys ...]@?";
  let t0 = Unix.gettimeofday () in
  let client, cloud = Client.keygen ~params:p ~seed:7001 () in
  Format.printf " %.1fs@." (Unix.gettimeofday () -. t0);
  let client_id = Client.client_id client in
  let chain_c =
    Pipeline.compile ~optimize:false ~name:"svc-chain" (service_chain ~depth:chain_depth)
  in
  let wide_c =
    Pipeline.compile ~optimize:false ~name:"svc-wide" (service_wide ~width:4 ~depth:wide_depth)
  in
  let rng = Rng.create ~seed:7002 () in
  (* Calibrate the per-request service time once, standalone, to anchor the
     offered-load sweep in multiples of the server's nominal capacity. *)
  let time_one compiled =
    let n = Netlist.input_count compiled.Pipeline.netlist in
    let cts = Client.encrypt_bits client (Array.init n (fun _ -> Rng.bool rng)) in
    let t0 = Unix.gettimeofday () in
    let _ = Server.run Server.Cpu cloud compiled cts in
    Unix.gettimeofday () -. t0
  in
  let t_req = 0.5 *. (time_one chain_c +. time_one wide_c) in
  let nominal_rps = 1.0 /. t_req in
  Format.printf "calibration: %.1f ms/request standalone (nominal %.1f req/s)@." (1000.0 *. t_req)
    nominal_rps;
  (* One server per load level, so the joined stats (latency quantiles,
     batch fill, queue high-water) cover exactly that level. *)
  let run_level ~label ~rate progs =
    let count = Array.length progs in
    let prepared =
      Array.map
        (fun compiled ->
          let n = Netlist.input_count compiled.Pipeline.netlist in
          let ins = Array.init n (fun _ -> Rng.bool rng) in
          (compiled, ins, Client.encrypt_bits client ins))
        progs
    in
    let port = Atomic.make 0 in
    let dom =
      Domain.spawn (fun () ->
          Service.serve
            ~config:{ Service.default_config with port = 0 }
            ~ready:(fun bound -> Atomic.set port bound)
            ())
    in
    while Atomic.get port = 0 do
      Unix.sleepf 0.001
    done;
    let c = Service_client.connect ~port:(Atomic.get port) () in
    Service_client.register c ~client_id cloud;
    let sid = Service_client.open_session c ~client_id p in
    (* Open-loop arrival: request i is due at t0 + i/rate whether or not
       the server is keeping up; [None] is a burst (all due at t0). *)
    let t0 = Unix.gettimeofday () in
    let reqs =
      Array.mapi
        (fun i (compiled, _, cts) ->
          (match rate with
          | Some r ->
            let due = t0 +. (float_of_int i /. r) in
            let slack = due -. Unix.gettimeofday () in
            if slack > 0.0 then Unix.sleepf slack
          | None -> ());
          Service_client.submit c ~session:sid ~name:compiled.Pipeline.prog_name
            ~program:compiled.Pipeline.binary ~inputs:cts)
        prepared
    in
    let outcomes = Array.map (fun req -> Service_client.await ~timeout:300.0 c req) reqs in
    let wall = Unix.gettimeofday () -. t0 in
    Service_client.shutdown c;
    Service_client.close c;
    let stats = Domain.join dom in
    (* Correctness on every request: the reply decrypts to the plaintext
       evaluation AND is ciphertext-bit-exact with a direct per-tenant
       Server.run of the same program on the same inputs. *)
    let ok = ref true in
    Array.iteri
      (fun i outcome ->
        match outcome with
        | Service_client.Failed { code; message } ->
          ok := false;
          Format.printf "  request %d FAILED (%s: %s)@." i
            (Service.string_of_error_code code)
            message
        | Service_client.Done { outputs; _ } ->
          let compiled, ins, cts = prepared.(i) in
          let ref_out, _ = Server.run Server.Cpu cloud compiled cts in
          let expected =
            Array.of_list (List.map snd (Plain_eval.run compiled.Pipeline.netlist ins))
          in
          if outputs <> ref_out then begin
            ok := false;
            Format.printf "  request %d NOT bit-exact with Server.run@." i
          end;
          if Client.decrypt_bits client outputs <> expected then begin
            ok := false;
            Format.printf "  request %d decrypts WRONG@." i
          end)
      outcomes;
    let throughput = float_of_int stats.Service.requests_completed /. wall in
    let lat = stats.Service.latency in
    Format.printf
      "%-12s %3d reqs at %s: %6.2f req/s  p50 %s  p99 %s  fill %.2f (%d launches, peak queue %d)%s@."
      label count
      (match rate with Some r -> Printf.sprintf "%6.2f req/s offered" r | None -> "burst")
      throughput (human_time lat.Quantile.p50) (human_time lat.Quantile.p99)
      stats.Service.batch_fill stats.Service.batch_launches stats.Service.max_queue_depth
      (if !ok then "" else "  [CORRECTNESS FAILURE]");
    let json =
      Json.Obj
        [
          ("label", Json.String label);
          ("offered_rps", match rate with Some r -> Json.Number r | None -> Json.Null);
          ("requests", Json.Number (float_of_int count));
          ("completed", Json.Number (float_of_int stats.Service.requests_completed));
          ("failed", Json.Number (float_of_int stats.Service.requests_failed));
          ("wall_s", Json.Number wall);
          ("throughput_rps", Json.Number throughput);
          ("latency", Quantile.summary_json lat);
          ("batch_launches", Json.Number (float_of_int stats.Service.batch_launches));
          ("batched_gates", Json.Number (float_of_int stats.Service.batched_gates));
          ("batch_fill", Json.Number stats.Service.batch_fill);
          ("max_queue_depth", Json.Number (float_of_int stats.Service.max_queue_depth));
        ]
    in
    (json, stats, throughput, !ok)
  in
  let reqs_per_level = if !smoke then 6 else 16 in
  let mixed n = Array.init n (fun i -> if i mod 2 = 0 then chain_c else wide_c) in
  let sweep = if !smoke then [ 0.5; 2.0 ] else [ 0.25; 0.5; 1.0; 2.0 ] in
  let swept =
    List.map
      (fun mult ->
        run_level
          ~label:(Printf.sprintf "mixed-%.2gx" mult)
          ~rate:(Some (mult *. nominal_rps))
          (mixed reqs_per_level))
      sweep
  in
  (* The acceptance gate: a burst of serial chains from one keyset.  Each
     chain contributes one ready gate per wave, so any fill above 1.0 here
     is cross-request packing and nothing else. *)
  let burst_n = if !smoke then 4 else 8 in
  let burst_json, burst_stats, burst_tp, burst_ok =
    run_level ~label:"chain-burst" ~rate:None (Array.make burst_n chain_c)
  in
  let all_ok = burst_ok && List.for_all (fun (_, _, _, ok) -> ok) swept in
  let p99 = burst_stats.Service.latency.Quantile.p99 in
  let fill_ok = burst_stats.Service.batch_fill > 1.0 in
  let service_ok =
    all_ok && burst_tp > 0.0 && Float.is_finite p99 && fill_ok
    && burst_stats.Service.requests_failed = 0
  in
  Format.printf "@.chain-burst fill %.2f with %d concurrent same-keyset requests: %s@."
    burst_stats.Service.batch_fill burst_n
    (if fill_ok then "cross-request packing confirmed"
     else "NO cross-request packing (gate FAILS)");
  let json =
    Json.Obj
      [
        ("params", Json.String p.Params.name);
        ("smoke", Json.Bool !smoke);
        ("backend", Json.String burst_stats.Service.backend);
        ("calibration_s_per_request", Json.Number t_req);
        ("nominal_rps", Json.Number nominal_rps);
        ("levels", Json.List (List.map (fun (j, _, _, _) -> j) swept @ [ burst_json ]));
        ("burst_batch_fill", Json.Number burst_stats.Service.batch_fill);
        ("burst_concurrency", Json.Number (float_of_int burst_n));
        ("service_ok", Json.Bool service_ok);
      ]
  in
  (* Written in smoke mode too: CI runs `service --smoke` and uploads it. *)
  let path = "BENCH_service.json" in
  Out_channel.with_open_text path (fun oc -> output_string oc (Json.to_string ~indent:true json));
  Format.printf "@.wrote %s@." path;
  (* Correctness and the packing win are deterministic; latency jitter is
     not part of the gate.  Fail the run outright after the artifact is on
     disk for debugging. *)
  if not service_ok then exit 1

(* ------------------------------------------------------------------ *)
(* e2e — streaming compilation at paper scale: an MNIST convolution
   layer and a BERT attention head compiled incrementally (windowed CSE,
   template reuse, binary emitted as construction proceeds), checked
   byte-for-byte and bit-for-bit against the one-shot compiler, with the
   peak-heap comparison the streaming path exists for                    *)
(* ------------------------------------------------------------------ *)

module Tensor = Pytfhe_chiseltorch.Tensor
module Nn = Pytfhe_chiseltorch.Nn
module Attention = Pytfhe_chiseltorch.Attention
module Dtype = Pytfhe_chiseltorch.Dtype
module Stream_exec = Pytfhe_backend.Stream_exec

let e2e_bench () =
  header "e2e — streaming compilation: MNIST conv layer + BERT attention head end to end";
  let p = if !smoke then smoke_params else Params.test in
  let window = if !smoke then 64 else 512 in
  (* Workload builders close over fixed weights so the streaming and the
     one-shot compiler lower the identical program. *)
  let conv_builder ~image ~in_ch ~out_ch ~kernel ~dtype =
    let rngw = Rng.create ~seed:31337 () in
    let weights =
      Array.init (out_ch * in_ch * kernel * kernel) (fun _ -> Rng.float rngw -. 0.5)
    in
    let bias = Array.init out_ch (fun _ -> Rng.float rngw -. 0.5) in
    fun net ->
      let x = Tensor.input net "x" dtype [| in_ch; image; image |] in
      let layer =
        Nn.Conv2d { in_ch; out_ch; kernel; stride = 1; padding = 1; weights; bias = Some bias }
      in
      Tensor.output net "y" (Nn.apply ~reuse:true net layer x)
  in
  let attn_builder ~seq_len ~hidden ~dtype =
    let cfg = { Attention.seq_len; hidden } in
    let w = Attention.random_weights (Rng.create ~seed:41414 ()) cfg in
    fun net ->
      let x = Tensor.input net "x" dtype [| seq_len; hidden |] in
      Tensor.output net "y" (Attention.build ~reuse:true net cfg w x)
  in
  let dtype = Dtype.Fixed { width = (if !smoke then 4 else 6); frac = 2 } in
  let workloads =
    [
      ( "mnist_conv",
        conv_builder
          ~image:(if !smoke then 5 else 10)
          ~in_ch:1
          ~out_ch:(if !smoke then 2 else 3)
          ~kernel:3 ~dtype );
      ( "bert_attention",
        attn_builder ~seq_len:(if !smoke then 2 else 4) ~hidden:(if !smoke then 3 else 8) ~dtype );
    ]
  in
  (* Heap cost of a compile.  Two numbers: the chunk-level growth of the
     mapped heap during the run ([heap_words] is monotone between
     compactions, so the post-run sample is the run's high-water mark —
     but chunk-granular, meaningful only at scale), and the word-exact
     live data the compile leaves behind ([live_words] delta with the
     result retained) — the memory a pipelined caller holds while the
     binary executes.  The one-shot compiler retains the whole netlist,
     the full CSE tables and the resident binary; the streaming path
     retains only the report. *)
  let measure_compile f =
    Gc.compact ();
    let s0 = Gc.stat () in
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let wall = Unix.gettimeofday () -. t0 in
    let peak = (Gc.quick_stat ()).Gc.heap_words - s0.Gc.heap_words in
    Gc.full_major ();
    let resident = (Gc.stat ()).Gc.live_words - s0.Gc.live_words in
    (r, wall, max 0 peak, max 0 resident)
  in
  let read_file path =
    In_channel.with_open_bin path (fun ic -> In_channel.input_all ic) |> Bytes.of_string
  in
  let gpu = Cost_model.gpu_a5000 in
  let rows =
    List.map
      (fun (name, builder) ->
        Format.printf "@.%s:@." name;
        (* (a) Streamed, windowed, straight to a file — the bounded-memory
           path — measured first so its heap numbers cannot inherit chunks
           mapped by the one-shot run. *)
        let path = Filename.temp_file "pytfhe_e2e_" ".bin" in
        let report, stream_wall, stream_peak, stream_res =
          measure_compile (fun () ->
              Pipeline.compile_stream_to_file ~window ~name ~path builder)
        in
        Format.printf
          "  streamed:   %d gates, %d waves, %d bytes in %s (window %d, CSE peak %d, evicted %d)@."
          report.Pipeline.gates report.Pipeline.depth report.Pipeline.bytes_emitted
          (human_time stream_wall) window report.Pipeline.cse_peak report.Pipeline.cse_evicted;
        (* (b) One-shot: materialize the netlist, then compile. *)
        let compiled, oneshot_wall, oneshot_peak, oneshot_res =
          measure_compile (fun () ->
              let net = Netlist.create () in
              builder net;
              Pipeline.compile ~optimize:false ~name net)
        in
        Format.printf "  one-shot:   %d bootstraps, %d bytes in %s@."
          compiled.Pipeline.stats.Stats.bootstraps
          (Bytes.length compiled.Pipeline.binary)
          (human_time oneshot_wall);
        let heap_ratio = float_of_int stream_res /. float_of_int (max 1 oneshot_res) in
        let heap_ok = stream_res < oneshot_res in
        Format.printf
          "  heap:       %d KW resident streamed vs %d KW one-shot (%.3fx; mapped-chunk peak %d vs %d KW)%s@."
          (stream_res / 1024) (oneshot_res / 1024) heap_ratio (stream_peak / 1024)
          (oneshot_peak / 1024)
          (if heap_ok then "" else "  (streaming retained MORE heap!)");
        (* (c) An unwindowed stream must reproduce the one-shot binary
           byte for byte (same construction-time optimizations, no
           synthesis on either side). *)
        let unwindowed, _ = Pipeline.compile_stream_to_bytes ~name builder in
        let byte_identical = Bytes.equal unwindowed compiled.Pipeline.binary in
        (* (d) The windowed stream may duplicate evicted subexpressions —
           more gates — but must stay functionally identical. *)
        let streamed = read_file path in
        Sys.remove path;
        let n_in = Netlist.input_count compiled.Pipeline.netlist in
        let rngi = Rng.create ~seed:515 () in
        let ins = Array.init n_in (fun _ -> Rng.bool rngi) in
        let sbits = Stream_exec.run_bits streamed ins in
        let expected = Plain_eval.run compiled.Pipeline.netlist ins in
        let plain_match =
          List.for_all2 (fun (_, e) g -> e = g) expected (Array.to_list sbits)
        in
        Format.printf "  unwindowed stream byte-identical: %b; windowed stream plain-exact: %b@."
          byte_identical plain_match;
        (* (e) The incremental schedule feeds the GPU cost model directly:
           per-gate cuFHE launches vs one fused CUDA-Graph batch per wave
           over the streamed waves. *)
        let sched = report.Pipeline.stream_schedule in
        let cufhe = Sched_gpu.simulate_cufhe gpu ~cpu:cost sched in
        let graph = Sched_gpu.simulate_pytfhe gpu ~cpu:cost sched in
        let gpu_speedup =
          cufhe.Sched_gpu.makespan /. Float.max graph.Sched_gpu.makespan 1e-12
        in
        Format.printf "  Sched_gpu on the streamed schedule: per-gate %s vs CUDA-Graph %s (%.1fx)@."
          (human_time cufhe.Sched_gpu.makespan)
          (human_time graph.Sched_gpu.makespan)
          gpu_speedup;
        let json =
          Json.Obj
            [
              ("name", Json.String name);
              ("window", Json.Number (float_of_int window));
              ("gates", Json.Number (float_of_int report.Pipeline.gates));
              ("bootstraps", Json.Number (float_of_int report.Pipeline.bootstraps));
              ("depth", Json.Number (float_of_int report.Pipeline.depth));
              ("max_width", Json.Number (float_of_int report.Pipeline.max_width));
              ("node_count", Json.Number (float_of_int report.Pipeline.node_count));
              ("bytes_emitted", Json.Number (float_of_int report.Pipeline.bytes_emitted));
              ("cse_peak", Json.Number (float_of_int report.Pipeline.cse_peak));
              ("cse_evicted", Json.Number (float_of_int report.Pipeline.cse_evicted));
              ("stream_wall_s", Json.Number stream_wall);
              ("stream_peak_heap_words", Json.Number (float_of_int stream_peak));
              ("stream_resident_heap_words", Json.Number (float_of_int stream_res));
              ( "oneshot_bootstraps",
                Json.Number (float_of_int compiled.Pipeline.stats.Stats.bootstraps) );
              ("oneshot_binary_bytes", Json.Number (float_of_int (Bytes.length compiled.Pipeline.binary)));
              ("oneshot_wall_s", Json.Number oneshot_wall);
              ("oneshot_peak_heap_words", Json.Number (float_of_int oneshot_peak));
              ("oneshot_resident_heap_words", Json.Number (float_of_int oneshot_res));
              ("heap_ratio", Json.Number heap_ratio);
              ("heap_ok", Json.Bool heap_ok);
              ("byte_identical", Json.Bool byte_identical);
              ("plain_match", Json.Bool plain_match);
              ( "gpu_model",
                Json.Obj
                  [
                    ("cufhe_makespan_s", Json.Number cufhe.Sched_gpu.makespan);
                    ("cuda_graph_makespan_s", Json.Number graph.Sched_gpu.makespan);
                    ("graph_speedup", Json.Number gpu_speedup);
                  ] );
            ]
        in
        (name, json, byte_identical && plain_match, heap_ok))
      workloads
  in
  (* (f) End to end under real ciphertexts: scaled-down instances of both
     shapes, compiled through the windowed streaming path and executed by
     the streaming CPU executor (no netlist ever materialized server
     side), decrypted and checked against the plaintext reference. *)
  Format.printf "@.encrypted end-to-end (%a):@." Params.pp p;
  Format.printf "  [generating keys ...]@?";
  let t0 = Unix.gettimeofday () in
  let client, cloud = Client.keygen ~params:p ~seed:6464 () in
  Format.printf " %.1fs@." (Unix.gettimeofday () -. t0);
  let enc_dtype = Dtype.Fixed { width = 4; frac = 2 } in
  let enc_workloads =
    [
      ("mnist_conv", conv_builder ~image:3 ~in_ch:1 ~out_ch:1 ~kernel:3 ~dtype:enc_dtype);
      ("bert_attention", attn_builder ~seq_len:2 ~hidden:2 ~dtype:enc_dtype);
    ]
  in
  let source_of_bytes ?(chunk = 4096) b =
    let pos = ref 0 in
    fun () ->
      if !pos >= Bytes.length b then None
      else begin
        let len = min chunk (Bytes.length b - !pos) in
        let s = Bytes.sub b !pos len in
        pos := !pos + len;
        Some s
      end
  in
  let module Cpu = (val Executor.cpu) in
  let enc_rows =
    List.map
      (fun (name, builder) ->
        let bytes, report =
          Pipeline.compile_stream_to_bytes ~window:32 ~name:(name ^ "_enc") builder
        in
        let net = Netlist.create () in
        builder net;
        let n_in = Netlist.input_count net in
        let rng = Rng.create ~seed:727 () in
        let ins = Array.init n_in (fun _ -> Rng.bool rng) in
        let cts = Client.encrypt_bits client ins in
        let t0 = Unix.gettimeofday () in
        let outs, stats = Cpu.run_stream cloud (source_of_bytes bytes) cts in
        let wall = Unix.gettimeofday () -. t0 in
        let bits = Client.decrypt_bits client outs in
        let expected = Plain_eval.run net ins in
        let enc_match = List.for_all2 (fun (_, e) g -> e = g) expected (Array.to_list bits) in
        Format.printf "  %-16s %4d bootstraps in %8s: %s@." name
          stats.Executor.bootstraps_executed (human_time wall)
          (if enc_match then "decrypts to the plaintext reference"
           else "DECRYPTS WRONG");
        let json =
          Json.Obj
            [
              ("name", Json.String name);
              ("backend", Json.String "cpu-stream");
              ("gates", Json.Number (float_of_int report.Pipeline.gates));
              ( "bootstraps_executed",
                Json.Number (float_of_int stats.Executor.bootstraps_executed) );
              ("wall_s", Json.Number wall);
              ("match", Json.Bool enc_match);
            ]
        in
        (json, enc_match))
      enc_workloads
  in
  let compile_ok = List.for_all (fun (_, _, ok, _) -> ok) rows in
  let heap_ok = List.for_all (fun (_, _, _, ok) -> ok) rows in
  let enc_ok = List.for_all (fun (_, ok) -> ok) enc_rows in
  let e2e_ok = compile_ok && heap_ok && enc_ok in
  Format.printf "@.streaming == one-shot: %b; heap bounded: %b; encrypted end-to-end: %b@."
    compile_ok heap_ok enc_ok;
  let json =
    Json.Obj
      [
        ("params", Json.String p.Params.name);
        ("smoke", Json.Bool !smoke);
        ("window", Json.Number (float_of_int window));
        ("workloads", Json.List (List.map (fun (_, j, _, _) -> j) rows));
        ("encrypted", Json.List (List.map fst enc_rows));
        ("compile_ok", Json.Bool compile_ok);
        ("heap_ok", Json.Bool heap_ok);
        ("encrypted_ok", Json.Bool enc_ok);
        ("e2e_ok", Json.Bool e2e_ok);
      ]
  in
  (* Written in smoke mode too: CI runs `e2e --smoke` and uploads it. *)
  let path = "BENCH_e2e.json" in
  Out_channel.with_open_text path (fun oc -> output_string oc (Json.to_string ~indent:true json));
  Format.printf "@.wrote %s@." path;
  (* Byte identity, plain-domain equality and encrypted correctness are
     deterministic — a mismatch is a compiler bug, not jitter — so it
     fails the bench run outright (after the artifact is on disk). *)
  if not e2e_ok then exit 1

let all_experiments =
  [
    ("fig7", fig7); ("fig8", fig8); ("fig9", fig9); ("fig10", fig10); ("fig11", fig11);
    ("fig12", fig12); ("fig13", fig13); ("fig14", fig14); ("table4", table4); ("ablation", ablation);
    ("params", params_explorer); ("micro", micro); ("ntt", ntt_bench); ("par", par);
    ("dist", dist); ("obs", obs_bench); ("batch", batch_bench); ("lut", lut_bench);
    ("service", service_bench); ("e2e", e2e_bench);
  ]

let () =
  (* In a process spawned by Dist_eval this serves gates and never returns. *)
  Dist_eval.worker_entry ();
  let args = List.tl (Array.to_list Sys.argv) in
  quick := List.mem "--quick" args;
  smoke := List.mem "--smoke" args;
  let targets = List.filter (fun a -> a <> "--quick" && a <> "--smoke") args in
  let targets = if targets = [] || List.mem "all" targets then List.map fst all_experiments else targets in
  Format.printf "PyTFHE evaluation harness — cost model: %a@." Cost_model.pp_cpu cost;
  List.iter
    (fun t ->
      match List.assoc_opt t all_experiments with
      | Some f -> f ()
      | None -> Format.printf "unknown experiment %S (known: %s)@." t (String.concat ", " (List.map fst all_experiments)))
    targets
