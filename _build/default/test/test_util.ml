module Rng = Pytfhe_util.Rng
module Growable = Pytfhe_util.Growable

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 () in
  let b = Rng.create ~seed:42 () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_changes_stream () =
  let a = Rng.create ~seed:1 () in
  let b = Rng.create ~seed:2 () in
  let differs = ref false in
  for _ = 1 to 16 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_rng_copy_independent () =
  let a = Rng.create ~seed:7 () in
  let b = Rng.copy a in
  let x = Rng.bits64 a in
  let y = Rng.bits64 b in
  Alcotest.(check int64) "copy starts from same state" x y;
  ignore (Rng.bits64 a);
  (* advancing a must not affect b *)
  let a' = Rng.copy a in
  Alcotest.(check bool) "states diverge after advance" true (Rng.bits64 a' <> Rng.bits64 b || true)

let test_rng_split_diverges () =
  let a = Rng.create ~seed:3 () in
  let child = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 32 do
    if Rng.bits64 a = Rng.bits64 child then incr same
  done;
  Alcotest.(check bool) "split stream is distinct" true (!same < 4)

let test_rng_int_bounds () =
  let rng = Rng.create () in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_range () =
  let rng = Rng.create () in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_gaussian_moments () =
  let rng = Rng.create ~seed:5 () in
  let n = 20000 in
  let stdev = 0.25 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian rng ~stdev in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.01);
  Alcotest.(check bool) "variance near stdev^2" true (Float.abs (var -. (stdev *. stdev)) < 0.01)

let test_growable_push_get () =
  let v = Growable.create () in
  for i = 0 to 999 do
    Growable.push v (i * 3)
  done;
  Alcotest.(check int) "length" 1000 (Growable.length v);
  for i = 0 to 999 do
    Alcotest.(check int) "element" (i * 3) (Growable.get v i)
  done

let test_growable_set () =
  let v = Growable.create ~capacity:2 () in
  Growable.push v 1;
  Growable.push v 2;
  Growable.set v 0 42;
  Alcotest.(check int) "set took" 42 (Growable.get v 0)

let test_growable_bounds () =
  let v = Growable.create () in
  Growable.push v 0;
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Growable.get") (fun () ->
      ignore (Growable.get v 1));
  Alcotest.check_raises "set out of bounds" (Invalid_argument "Growable.set") (fun () ->
      Growable.set v (-1) 0)

let test_growable_to_array_clear () =
  let v = Growable.create () in
  List.iter (Growable.push v) [ 5; 6; 7 ];
  Alcotest.(check (array int)) "snapshot" [| 5; 6; 7 |] (Growable.to_array v);
  Growable.clear v;
  Alcotest.(check int) "cleared" 0 (Growable.length v);
  Growable.push v 9;
  Alcotest.(check (array int)) "reusable" [| 9 |] (Growable.to_array v)

let qcheck_int_uniformish =
  QCheck.Test.make ~name:"rng int never escapes bound" ~count:500
    QCheck.(int_range 1 10000)
    (fun bound ->
      let rng = Rng.create ~seed:bound () in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)


module Wire = Pytfhe_util.Wire

let test_wire_scalar_roundtrip () =
  let buf = Buffer.create 64 in
  Wire.write_magic buf "TEST";
  Wire.write_u8 buf 200;
  Wire.write_i64 buf (-123456789);
  Wire.write_u32 buf 0xDEADBEEF;
  Wire.write_f64 buf 3.14159;
  Wire.write_bool buf true;
  Wire.write_string buf "hello";
  let r = Wire.reader_of_string (Buffer.contents buf) in
  Wire.read_magic r "TEST";
  Alcotest.(check int) "u8" 200 (Wire.read_u8 r);
  Alcotest.(check int) "i64" (-123456789) (Wire.read_i64 r);
  Alcotest.(check int) "u32" 0xDEADBEEF (Wire.read_u32 r);
  Alcotest.(check (float 0.0)) "f64 bit-exact" 3.14159 (Wire.read_f64 r);
  Alcotest.(check bool) "bool" true (Wire.read_bool r);
  Alcotest.(check string) "string" "hello" (Wire.read_string r);
  Alcotest.(check int) "fully consumed" 0 (Wire.remaining r)

let test_wire_arrays_roundtrip () =
  let buf = Buffer.create 64 in
  let ints = [| 0; 1; 0xFFFFFFFF; 12345 |] in
  let floats = [| 0.0; -1.5; Float.pi; 1e-300 |] in
  Wire.write_u32_array buf ints;
  Wire.write_f64_array buf floats;
  Wire.write_array buf Wire.write_string [| "a"; "bc"; "" |];
  let r = Wire.reader_of_string (Buffer.contents buf) in
  Alcotest.(check (array int)) "u32 array" ints (Wire.read_u32_array r);
  let fs = Wire.read_f64_array r in
  Array.iteri (fun i f -> Alcotest.(check (float 0.0)) "f64 elem" floats.(i) f) fs;
  Alcotest.(check (array string)) "string array" [| "a"; "bc"; "" |] (Wire.read_array r Wire.read_string)

let test_wire_rejects_corruption () =
  let buf = Buffer.create 16 in
  Wire.write_magic buf "GOOD";
  let r = Wire.reader_of_string (Buffer.contents buf) in
  Alcotest.check_raises "bad magic" (Wire.Corrupt {|bad magic: expected "EVIL", got "GOOD"|})
    (fun () -> Wire.read_magic r "EVIL");
  let r2 = Wire.reader_of_string "ab" in
  Alcotest.(check bool) "truncated" true
    (try ignore (Wire.read_i64 r2); false with Wire.Corrupt _ -> true);
  (* implausible length *)
  let buf = Buffer.create 16 in
  Wire.write_i64 buf 999999;
  let r3 = Wire.reader_of_string (Buffer.contents buf) in
  Alcotest.(check bool) "implausible length" true
    (try ignore (Wire.read_u32_array r3); false with Wire.Corrupt _ -> true)

let test_wire_file_roundtrip () =
  let path = Filename.temp_file "pytfhe" ".wire" in
  let buf = Buffer.create 16 in
  Wire.write_string buf "persisted";
  Wire.to_file path buf;
  let r = Wire.of_file path in
  Alcotest.(check string) "file roundtrip" "persisted" (Wire.read_string r);
  Sys.remove path


module Json = Pytfhe_util.Json

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("name", Json.String "half \"adder\"");
        ("bits", Json.List [ Json.Number 2.0; Json.Number 3.0; Json.String "0" ]);
        ("ok", Json.Bool true);
        ("nothing", Json.Null);
        ("nested", Json.Obj [ ("x", Json.Number (-1.5)) ]);
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
      ]
  in
  List.iter
    (fun indent ->
      let text = Json.to_string ~indent doc in
      Alcotest.(check bool) "roundtrip" true (Json.parse text = doc))
    [ true; false ]

let test_json_parses_standard_forms () =
  Alcotest.(check bool) "numbers" true (Json.parse "[1, -2.5, 1e3]" = Json.List [ Json.Number 1.0; Json.Number (-2.5); Json.Number 1000.0 ]);
  Alcotest.(check bool) "escapes" true (Json.parse {|"a\nb\u0041"|} = Json.String "a\nbA");
  Alcotest.(check bool) "whitespace" true (Json.parse "  { \"a\" :\n[ ] }  " = Json.Obj [ ("a", Json.List []) ])

let test_json_rejects_garbage () =
  List.iter
    (fun src ->
      Alcotest.(check bool) (src ^ " rejected") true
        (try ignore (Json.parse src); false with Json.Parse_error _ -> true))
    [ "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\" 1}"; "[] trailing"; "" ]

let test_json_accessors () =
  let doc = Json.parse {|{"a": 5, "b": "x", "c": [1]}|} in
  Alcotest.(check (option int)) "int" (Some 5) (Option.bind (Json.member "a" doc) Json.to_int);
  Alcotest.(check (option string)) "str" (Some "x") (Option.bind (Json.member "b" doc) Json.to_str);
  Alcotest.(check bool) "list" true (Option.bind (Json.member "c" doc) Json.to_list <> None);
  Alcotest.(check bool) "missing" true (Json.member "zz" doc = None)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed changes stream" `Quick test_rng_seed_changes_stream;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split_diverges;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          QCheck_alcotest.to_alcotest qcheck_int_uniformish;
        ] );
      ( "wire",
        [
          Alcotest.test_case "scalar roundtrip" `Quick test_wire_scalar_roundtrip;
          Alcotest.test_case "array roundtrip" `Quick test_wire_arrays_roundtrip;
          Alcotest.test_case "rejects corruption" `Quick test_wire_rejects_corruption;
          Alcotest.test_case "file roundtrip" `Quick test_wire_file_roundtrip;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "standard forms" `Quick test_json_parses_standard_forms;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "growable",
        [
          Alcotest.test_case "push/get" `Quick test_growable_push_get;
          Alcotest.test_case "set" `Quick test_growable_set;
          Alcotest.test_case "bounds" `Quick test_growable_bounds;
          Alcotest.test_case "to_array/clear" `Quick test_growable_to_array_clear;
        ] );
    ]
