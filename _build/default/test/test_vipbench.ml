module Rng = Pytfhe_util.Rng
module W = Pytfhe_vipbench.Workload
module Suite = Pytfhe_vipbench.Suite
module Stats = Pytfhe_circuit.Stats
module Levelize = Pytfhe_circuit.Levelize

let verify_case (w : W.t) () =
  let rng = Rng.create ~seed:(Hashtbl.hash w.W.name) () in
  Alcotest.(check bool) (w.W.name ^ " circuit matches reference") true (w.W.verify rng)

let test_registry_names_unique () =
  let names = List.map (fun w -> w.W.name) Suite.all in
  let sorted = List.sort_uniq compare names in
  Alcotest.(check int) "no duplicate names" (List.length names) (List.length sorted)

let test_registry_find () =
  Alcotest.(check bool) "finds mnist_s" true (Suite.find "mnist_s" <> None);
  Alcotest.(check bool) "unknown is None" true (Suite.find "nope" = None)

let test_paper_set_contents () =
  let names = List.map (fun w -> w.W.name) Suite.paper_set in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " in paper set") true (List.mem expected names))
    [ "hamming_distance"; "nr_solver"; "parrondo"; "rc_edge_detection"; "mnist_s"; "mnist_m";
      "mnist_l"; "attention_s"; "attention_l"; "eulers_approx"; "dot_product" ];
  Alcotest.(check bool) "tiny variants excluded" true (not (List.mem "mnist_tiny" names));
  Alcotest.(check bool) "at least 18 VIP workloads + networks" true (List.length names >= 18)

let test_workloads_have_io () =
  List.iter
    (fun w ->
      let net = w.W.circuit () in
      Alcotest.(check bool) (w.W.name ^ " has inputs") true (Pytfhe_circuit.Netlist.input_count net > 0);
      Alcotest.(check bool) (w.W.name ^ " has outputs") true
        (List.length (Pytfhe_circuit.Netlist.outputs net) > 0))
    Suite.light

let test_serial_benchmarks_are_narrow () =
  (* The paper attributes poor distributed/GPU scaling of NRSolver-style
     benchmarks to their serial dataflow; check our instances reproduce the
     structural property. *)
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> Alcotest.failf "%s missing" name
      | Some w ->
        let sched = Levelize.run (w.W.circuit ()) in
        (* narrow = cannot even saturate the 72 workers of the 4-node
           cluster at any wave *)
        Alcotest.(check bool) (name ^ " is narrow") true (Levelize.max_width sched < 100))
    [ "nr_solver"; "eulers_approx"; "gradient_descent"; "parrondo" ]

let test_wide_benchmarks_are_wide () =
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> Alcotest.failf "%s missing" name
      | Some w ->
        let sched = Levelize.run (w.W.circuit ()) in
        Alcotest.(check bool) (name ^ " is wide") true (Levelize.max_width sched > 100))
    [ "rc_edge_detection"; "box_blur"; "mnist_tiny" ]

let test_circuits_are_deterministic () =
  List.iter
    (fun name ->
      match Suite.find name with
      | None -> Alcotest.failf "%s missing" name
      | Some w ->
        let a = Stats.compute (w.W.circuit ()) in
        let b = Stats.compute (w.W.circuit ()) in
        Alcotest.(check int) (name ^ " same gates") a.Stats.gates b.Stats.gates;
        Alcotest.(check int) (name ^ " same depth") a.Stats.depth b.Stats.depth)
    [ "dot_product"; "mnist_tiny"; "attention_tiny" ]

let test_mnist_s_structure () =
  (* Heavy but important: the headline workload has the documented shape. *)
  match Suite.find "mnist_s" with
  | None -> Alcotest.fail "mnist_s missing"
  | Some w ->
    let net = w.W.circuit () in
    Alcotest.(check int) "28x28 inputs of 8 bits" (28 * 28 * 8)
      (Pytfhe_circuit.Netlist.input_count net);
    Alcotest.(check int) "10 outputs of 8 bits" 80
      (List.length (Pytfhe_circuit.Netlist.outputs net));
    let s = Stats.compute net in
    Alcotest.(check bool) "hundreds of thousands of gates" true (s.Stats.gates > 100_000)


(* Gate-count regression: the raw (pre-synthesis) bootstrap counts of every
   light workload.  A change here is not necessarily wrong — builder or
   arithmetic changes legitimately move these — but it must be noticed and
   re-recorded deliberately. *)
let golden_bootstraps =
  [
    ("hamming_distance", 224); ("dot_product", 5379); ("bubble_sort", 2408);
    ("merge_sort", 1634); ("distinctness", 447); ("edit_distance", 2255); ("eulers_approx", 6321);
    ("nr_solver", 12578); ("gradient_descent", 1127); ("parrondo", 617);
    ("rc_edge_detection", 9800); ("box_blur", 15300); ("filtered_query", 863);
    ("knn", 2217); ("linear_regression", 1139); ("string_search", 896);
    ("primality", 510); ("tea_cipher", 6655); ("psi", 1050); ("fann_inference", 1416);
    ("mnist_tiny", 29148); ("attention_tiny", 14386);
  ]

let test_golden_gate_counts () =
  List.iter
    (fun (name, expected) ->
      match Suite.find name with
      | None -> Alcotest.failf "golden workload %s missing" name
      | Some w ->
        let s = Stats.compute (w.W.circuit ()) in
        Alcotest.(check int) (name ^ " bootstrap count") expected s.Stats.bootstraps)
    golden_bootstraps;
  (* every light workload is covered by the golden list *)
  Alcotest.(check int) "golden list covers the light set" (List.length Suite.light)
    (List.length golden_bootstraps)

let () =
  let functional =
    List.map
      (fun w -> Alcotest.test_case w.W.name `Quick (verify_case w))
      (List.filter (fun w -> not w.W.heavy) Suite.all)
  in
  Alcotest.run "vipbench"
    [
      ("functional", functional);
      ( "registry",
        [
          Alcotest.test_case "names unique" `Quick test_registry_names_unique;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "paper set" `Quick test_paper_set_contents;
          Alcotest.test_case "all have I/O" `Quick test_workloads_have_io;
        ] );
      ( "structure",
        [
          Alcotest.test_case "serial benchmarks are narrow" `Quick test_serial_benchmarks_are_narrow;
          Alcotest.test_case "wide benchmarks are wide" `Quick test_wide_benchmarks_are_wide;
          Alcotest.test_case "deterministic circuits" `Quick test_circuits_are_deterministic;
          Alcotest.test_case "mnist_s structure" `Slow test_mnist_s_structure;
          Alcotest.test_case "golden gate counts" `Quick test_golden_gate_counts;
        ] );
    ]
