module Rng = Pytfhe_util.Rng
module Netlist = Pytfhe_circuit.Netlist
open Pytfhe_hdl

(* Harness: build a circuit over integer inputs, evaluate it on plaintext
   bits, read back buses as integers. *)

let to_bits v w = Array.init w (fun i -> (v asr i) land 1 = 1)

let of_bits_u bits = Array.to_list bits |> List.rev |> List.fold_left (fun acc b -> (acc * 2) + Bool.to_int b) 0

let of_bits_s bits =
  let w = Array.length bits in
  let u = of_bits_u bits in
  if w > 0 && bits.(w - 1) then u - (1 lsl w) else u

let read_bus values (bus : Bus.t) = Array.map (fun id -> values.(id)) bus

(* Run [f net inputs] where inputs are fresh buses of the given widths, and
   evaluate on the given integer values. Returns the node-value array and
   the built circuit. *)
let run widths values f =
  let net = Netlist.create () in
  let buses = List.mapi (fun i w -> Bus.input net (Printf.sprintf "x%d" i) w) widths in
  let result = f net buses in
  let bits = List.concat_map (fun (v, w) -> Array.to_list (to_bits v w)) (List.combine values widths) in
  let node_values = Netlist.eval net (Array.of_list bits) in
  (node_values, result)

let signed_range w = QCheck.int_range (-(1 lsl (w - 1))) ((1 lsl (w - 1)) - 1)
let unsigned_range w = QCheck.int_range 0 ((1 lsl w) - 1)

let wrap_s v w =
  let m = 1 lsl w in
  let r = ((v mod m) + m) mod m in
  if r >= m / 2 then r - m else r

(* ------------------------------------------------------------------ *)
(* Bus                                                                 *)
(* ------------------------------------------------------------------ *)

let test_bus_const_and_slice () =
  let values, bus =
    run [ 1 ] [ 0 ] (fun net _ ->
        let c = Bus.const net ~width:8 0xA5 in
        Bus.concat (Bus.slice c ~lo:0 ~hi:3) (Bus.slice c ~lo:4 ~hi:7))
  in
  Alcotest.(check int) "slice+concat identity" 0xA5 (of_bits_u (read_bus values bus))

let test_bus_extends () =
  let values, (z, s) =
    run [ 4 ] [ 0b1010 ] (fun net -> function
      | [ x ] -> (Bus.zero_extend net x 8, Bus.sign_extend net x 8)
      | _ -> assert false)
  in
  Alcotest.(check int) "zero extend" 0b1010 (of_bits_u (read_bus values z));
  Alcotest.(check int) "sign extend" (-6) (of_bits_s (read_bus values s))

let test_bus_shifts () =
  let values, (l, r, a) =
    run [ 8 ] [ -50 ] (fun net -> function
      | [ x ] ->
        ( Bus.shift_left net x 2,
          Bus.shift_right_logical net x 2,
          Bus.shift_right_arith net x 2 )
      | _ -> assert false)
  in
  Alcotest.(check int) "shl" (wrap_s (-50 * 4) 8) (of_bits_s (read_bus values l));
  Alcotest.(check int) "shr logical" ((-50 land 0xFF) lsr 2) (of_bits_u (read_bus values r));
  Alcotest.(check int) "shr arith" (-13) (of_bits_s (read_bus values a))

let test_bus_bitwise () =
  let values, (x_and, x_or, x_xor, x_not) =
    run [ 8; 8 ] [ 0xCC; 0xAA ] (fun net -> function
      | [ a; b ] -> (Bus.band net a b, Bus.bor net a b, Bus.bxor net a b, Bus.bnot net a)
      | _ -> assert false)
  in
  Alcotest.(check int) "and" 0x88 (of_bits_u (read_bus values x_and));
  Alcotest.(check int) "or" 0xEE (of_bits_u (read_bus values x_or));
  Alcotest.(check int) "xor" 0x66 (of_bits_u (read_bus values x_xor));
  Alcotest.(check int) "not" 0x33 (of_bits_u (read_bus values x_not))

let test_bus_reduce () =
  List.iter
    (fun (v, expect_and, expect_or, expect_xor) ->
      let values, (ra, ro, rx) =
        run [ 4 ] [ v ] (fun net -> function
          | [ x ] -> (Bus.reduce_and net x, Bus.reduce_or net x, Bus.reduce_xor net x)
          | _ -> assert false)
      in
      Alcotest.(check bool) "reduce and" expect_and values.(ra);
      Alcotest.(check bool) "reduce or" expect_or values.(ro);
      Alcotest.(check bool) "reduce xor" expect_xor values.(rx))
    [ (0xF, true, true, false); (0x0, false, false, false); (0x7, false, true, true) ]

let test_bus_mux () =
  List.iter
    (fun (s, expected) ->
      let values, bus =
        run [ 1; 4; 4 ] [ s; 0x3; 0xC ] (fun net -> function
          | [ sel; x; y ] -> Bus.mux net (Bus.bit sel 0) x y
          | _ -> assert false)
      in
      Alcotest.(check int) "mux" expected (of_bits_u (read_bus values bus)))
    [ (1, 0x3); (0, 0xC) ]

(* ------------------------------------------------------------------ *)
(* Arithmetic: qcheck against native ints                              *)
(* ------------------------------------------------------------------ *)

let w = 8

let binop_test name f reference =
  QCheck.Test.make ~name ~count:100
    QCheck.(pair (signed_range w) (signed_range w))
    (fun (a, b) ->
      let values, bus =
        run [ w; w ] [ a; b ] (fun net -> function
          | [ x; y ] -> f net x y
          | _ -> assert false)
      in
      of_bits_s (read_bus values bus) = wrap_s (reference a b) w)

let cmp_test name f reference =
  QCheck.Test.make ~name ~count:100
    QCheck.(pair (signed_range w) (signed_range w))
    (fun (a, b) ->
      let values, wire =
        run [ w; w ] [ a; b ] (fun net -> function
          | [ x; y ] -> f net x y
          | _ -> assert false)
      in
      values.(wire) = reference a b)

let qcheck_add = binop_test "add matches int add" Arith.add ( + )
let qcheck_sub = binop_test "sub matches int sub" Arith.sub ( - )
let qcheck_min = binop_test "min_s" Arith.min_s min
let qcheck_max = binop_test "max_s" Arith.max_s max

let qcheck_neg =
  QCheck.Test.make ~name:"neg matches int neg" ~count:100 (signed_range w) (fun a ->
      let values, bus =
        run [ w ] [ a ] (fun net -> function [ x ] -> Arith.neg net x | _ -> assert false)
      in
      of_bits_s (read_bus values bus) = wrap_s (-a) w)

let qcheck_abs =
  QCheck.Test.make ~name:"abs matches int abs" ~count:100 (signed_range w) (fun a ->
      let values, bus =
        run [ w ] [ a ] (fun net -> function [ x ] -> Arith.abs net x | _ -> assert false)
      in
      of_bits_s (read_bus values bus) = wrap_s (abs a) w)

let qcheck_eq = cmp_test "eq" Arith.eq ( = )
let qcheck_ne = cmp_test "ne" Arith.ne ( <> )
let qcheck_lt_s = cmp_test "lt_s" Arith.lt_s ( < )
let qcheck_le_s = cmp_test "le_s" Arith.le_s ( <= )
let qcheck_gt_s = cmp_test "gt_s" Arith.gt_s ( > )
let qcheck_ge_s = cmp_test "ge_s" Arith.ge_s ( >= )

let qcheck_lt_u =
  QCheck.Test.make ~name:"lt_u" ~count:100
    QCheck.(pair (unsigned_range w) (unsigned_range w))
    (fun (a, b) ->
      let values, wire =
        run [ w; w ] [ a; b ] (fun net -> function
          | [ x; y ] -> Arith.lt_u net x y
          | _ -> assert false)
      in
      values.(wire) = (a < b))

let qcheck_mul_u =
  QCheck.Test.make ~name:"mul_u full width" ~count:100
    QCheck.(pair (unsigned_range w) (unsigned_range w))
    (fun (a, b) ->
      let values, bus =
        run [ w; w ] [ a; b ] (fun net -> function
          | [ x; y ] -> Arith.mul_u net ~out_width:(2 * w) x y
          | _ -> assert false)
      in
      of_bits_u (read_bus values bus) = a * b)

let qcheck_mul_s =
  QCheck.Test.make ~name:"mul_s full width" ~count:100
    QCheck.(pair (signed_range w) (signed_range w))
    (fun (a, b) ->
      let values, bus =
        run [ w; w ] [ a; b ] (fun net -> function
          | [ x; y ] -> Arith.mul_s net ~out_width:(2 * w) x y
          | _ -> assert false)
      in
      of_bits_s (read_bus values bus) = a * b)

let qcheck_mul_const recoding name =
  QCheck.Test.make ~name ~count:100
    QCheck.(pair (signed_range w) (int_range (-100) 100))
    (fun (a, c) ->
      let values, bus =
        run [ w ] [ a ] (fun net -> function
          | [ x ] -> Arith.mul_const_s net ~recoding ~out_width:16 x c
          | _ -> assert false)
      in
      of_bits_s (read_bus values bus) = wrap_s (a * c) 16)

let qcheck_mul_const_csd = qcheck_mul_const `Csd "mul_const CSD"
let qcheck_mul_const_bin = qcheck_mul_const `Binary "mul_const binary"

let qcheck_div_u =
  QCheck.Test.make ~name:"div_u quotient and remainder" ~count:60
    QCheck.(pair (unsigned_range w) (int_range 1 ((1 lsl w) - 1)))
    (fun (a, b) ->
      let values, (q, r) =
        run [ w; w ] [ a; b ] (fun net -> function
          | [ x; y ] -> Arith.div_u net x y
          | _ -> assert false)
      in
      of_bits_u (read_bus values q) = a / b && of_bits_u (read_bus values r) = a mod b)


let qcheck_add_fast =
  QCheck.Test.make ~name:"kogge-stone add matches int add" ~count:200
    QCheck.(pair (signed_range w) (signed_range w))
    (fun (a, b) ->
      let values, bus =
        run [ w; w ] [ a; b ] (fun net -> function
          | [ x; y ] -> Arith.add_fast net x y
          | _ -> assert false)
      in
      of_bits_s (read_bus values bus) = wrap_s (a + b) w)

let qcheck_add_fast_carry =
  QCheck.Test.make ~name:"kogge-stone add with carry-in" ~count:200
    QCheck.(pair (unsigned_range w) (unsigned_range w))
    (fun (a, b) ->
      let values, bus =
        run [ w; w ] [ a; b ] (fun net -> function
          | [ x; y ] -> Arith.add_fast net ~cin:(Pytfhe_circuit.Netlist.const net true) x y
          | _ -> assert false)
      in
      of_bits_u (read_bus values bus) = (a + b + 1) land ((1 lsl w) - 1))

let test_add_fast_depth_advantage () =
  (* The point of the prefix adder: logarithmic depth at a gate-count
     premium — the knob parallel backends care about. *)
  let build adder =
    let net = Netlist.create () in
    let a = Bus.input net "a" 32 in
    let b = Bus.input net "b" 32 in
    Bus.output net "s" (adder net a b);
    net
  in
  let ripple = build (fun net a b -> Arith.add net a b) in
  let fast = build (fun net a b -> Arith.add_fast net a b) in
  let depth n = (Pytfhe_circuit.Levelize.run n).Pytfhe_circuit.Levelize.depth in
  Alcotest.(check bool) "kogge-stone much shallower" true (depth fast * 2 < depth ripple);
  Alcotest.(check bool) "kogge-stone pays gates" true
    (Netlist.gate_count fast > Netlist.gate_count ripple)

let qcheck_shift_left_var =
  QCheck.Test.make ~name:"variable left shift" ~count:200
    QCheck.(pair (unsigned_range w) (int_range 0 15))
    (fun (a, k) ->
      let values, bus =
        run [ w; 4 ] [ a; k ] (fun net -> function
          | [ x; amt ] -> Arith.shift_left_var net x amt
          | _ -> assert false)
      in
      let expected = if k >= w then 0 else (a lsl k) land ((1 lsl w) - 1) in
      of_bits_u (read_bus values bus) = expected)

let qcheck_shift_right_var =
  QCheck.Test.make ~name:"variable right shift" ~count:200
    QCheck.(pair (unsigned_range w) (int_range 0 15))
    (fun (a, k) ->
      let values, bus =
        run [ w; 4 ] [ a; k ] (fun net -> function
          | [ x; amt ] -> Arith.shift_right_var net x amt
          | _ -> assert false)
      in
      let expected = if k >= w then 0 else a lsr k in
      of_bits_u (read_bus values bus) = expected)


let qcheck_mul_const_vs_generic =
  QCheck.Test.make ~name:"constant multiplier = generic multiplier on consts" ~count:100
    QCheck.(pair (signed_range w) (int_range (-100) 100))
    (fun (a, c) ->
      let values, (fast, generic) =
        run [ w ] [ a ] (fun net -> function
          | [ x ] ->
            let fast = Arith.mul_const_s net ~out_width:16 x c in
            let c_bus = Bus.const net ~width:16 c in
            let generic = Arith.mul_s net ~out_width:16 (Bus.sign_extend net x 16) c_bus in
            (fast, generic)
          | _ -> assert false)
      in
      of_bits_s (read_bus values fast) = of_bits_s (read_bus values generic))

let test_csd_digits () =
  List.iter
    (fun c ->
      let digits = Arith.csd_digits c in
      let total = List.fold_left (fun acc (shift, sign) -> acc + (sign * (1 lsl shift))) 0 digits in
      Alcotest.(check int) (Printf.sprintf "csd reconstructs %d" c) c total;
      (* Canonical property: no two adjacent nonzero digits. *)
      let shifts = List.map fst digits in
      let rec adjacent = function
        | a :: b :: rest -> a + 1 = b || adjacent (b :: rest)
        | _ -> false
      in
      Alcotest.(check bool) "nonadjacent" false (adjacent shifts))
    [ 0; 1; -1; 7; -7; 15; 23; 255; -255; 1000; -999 ]

let test_csd_fewer_terms () =
  (* 255 = 2^8 - 1: CSD needs 2 terms, binary needs 8. *)
  Alcotest.(check int) "csd(255) has 2 digits" 2 (List.length (Arith.csd_digits 255))

let test_mul_const_gate_advantage () =
  let count recoding =
    let net = Netlist.create () in
    let x = Bus.input net "x" 8 in
    let p = Arith.mul_const_s net ~recoding ~out_width:16 x 255 in
    Bus.output net "p" p;
    Netlist.gate_count net
  in
  Alcotest.(check bool) "CSD beats binary recoding on 255" true (count `Csd < count `Binary)

(* ------------------------------------------------------------------ *)
(* Float                                                               *)
(* ------------------------------------------------------------------ *)

let fmt = { Float_unit.e = 5; m = 6 }

let enc v = Float_repr.encode ~e:fmt.Float_unit.e ~m:fmt.Float_unit.m v
let dec bits = Float_repr.decode ~e:fmt.Float_unit.e ~m:fmt.Float_unit.m bits

let test_float_repr_roundtrip () =
  List.iter
    (fun v ->
      let back = dec (enc v) in
      let ulp = Float_repr.ulp_at ~e:fmt.Float_unit.e ~m:fmt.Float_unit.m v in
      Alcotest.(check bool)
        (Printf.sprintf "%g encodes within 1 ulp (got %g)" v back)
        true
        (Float.abs (back -. v) <= ulp))
    [ 0.0; 1.0; -1.0; 0.5; 3.14159; -2.71828; 100.0; -0.0625; 1023.0 ]

let test_float_repr_zero_and_saturation () =
  Alcotest.(check int) "zero encodes as 0" 0 (enc 0.0);
  Alcotest.(check (float 1e-9)) "decode 0 = 0" 0.0 (dec 0);
  let huge = dec (enc 1e30) in
  Alcotest.(check (float 1.0)) "saturates to max"
    (Float_repr.max_value ~e:fmt.Float_unit.e ~m:fmt.Float_unit.m)
    huge;
  Alcotest.(check (float 1e-12)) "underflow flushes" 0.0 (dec (enc 1e-30))

let float_width = Float_unit.width fmt

let run_float_binop op a b =
  let values, bus =
    run [ float_width; float_width ] [ enc a; enc b ] (fun net -> function
      | [ x; y ] -> op net fmt x y
      | _ -> assert false)
  in
  dec (of_bits_u (read_bus values bus))

let float_case_ok op reference a b =
  let got = run_float_binop op a b in
  (* Project the real-arithmetic reference through the format: flush-to-zero
     and saturation are part of the Float(e,m) semantics. *)
  let expected = dec (enc (reference a b)) in
  let tol =
    3.0 *. Float_repr.ulp_at ~e:fmt.Float_unit.e ~m:fmt.Float_unit.m expected
    +. 3.0 *. Float_repr.ulp_at ~e:fmt.Float_unit.e ~m:fmt.Float_unit.m (Float.max (Float.abs a) (Float.abs b))
  in
  Float.abs (got -. expected) <= tol

let float_gen =
  QCheck.map
    (fun bits -> dec (bits land ((1 lsl float_width) - 1)))
    (QCheck.int_range 0 ((1 lsl float_width) - 1))

let qcheck_float_add =
  QCheck.Test.make ~name:"float add tracks real add" ~count:200 (QCheck.pair float_gen float_gen)
    (fun (a, b) -> float_case_ok Float_unit.add ( +. ) a b)

let qcheck_float_sub =
  QCheck.Test.make ~name:"float sub tracks real sub" ~count:200 (QCheck.pair float_gen float_gen)
    (fun (a, b) -> float_case_ok Float_unit.sub ( -. ) a b)

let qcheck_float_mul =
  QCheck.Test.make ~name:"float mul tracks real mul" ~count:200 (QCheck.pair float_gen float_gen)
    (fun (a, b) ->
      let expected = dec (enc (a *. b)) in
      let got = run_float_binop Float_unit.mul a b in
      let tol = 4.0 *. Float_repr.ulp_at ~e:fmt.Float_unit.e ~m:fmt.Float_unit.m expected in
      Float.abs (got -. expected) <= tol)

let test_float_add_exact_cases () =
  List.iter
    (fun (a, b) ->
      let got = run_float_binop Float_unit.add a b in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "%g + %g" a b) (a +. b) got)
    [ (1.0, 1.0); (2.0, -1.0); (0.0, 3.5); (-4.0, 0.0); (1.5, 2.5); (8.0, -8.0) ]

let test_float_mul_exact_cases () =
  List.iter
    (fun (a, b) ->
      let got = run_float_binop Float_unit.mul a b in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "%g * %g" a b) (a *. b) got)
    [ (1.0, 1.0); (2.0, -3.0); (0.0, 5.0); (-4.0, 0.0); (0.5, 0.25); (-1.5, -2.0) ]

let test_float_relu () =
  List.iter
    (fun v ->
      let values, bus =
        run [ float_width ] [ enc v ] (fun net -> function
          | [ x ] -> Float_unit.relu net fmt x
          | _ -> assert false)
      in
      let got = dec (of_bits_u (read_bus values bus)) in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "relu %g" v) (Float.max v 0.0) got)
    [ 1.5; -1.5; 0.0; -0.001; 42.0 ]

let qcheck_float_lt =
  QCheck.Test.make ~name:"float lt matches real <" ~count:200 (QCheck.pair float_gen float_gen)
    (fun (a, b) ->
      let values, wire =
        run [ float_width; float_width ] [ enc a; enc b ] (fun net -> function
          | [ x; y ] -> Float_unit.lt net fmt x y
          | _ -> assert false)
      in
      values.(wire) = (a < b))

let qcheck_float_max =
  QCheck.Test.make ~name:"float max matches real max" ~count:100 (QCheck.pair float_gen float_gen)
    (fun (a, b) -> run_float_binop Float_unit.max_f a b = Float.max a b)

let test_float_neg () =
  List.iter
    (fun v ->
      let values, bus =
        run [ float_width ] [ enc v ] (fun net -> function
          | [ x ] -> Float_unit.neg net fmt x
          | _ -> assert false)
      in
      Alcotest.(check (float 1e-9)) "neg" (-.v) (dec (of_bits_u (read_bus values bus))))
    [ 2.5; -3.0; 0.5 ]

let test_float_const () =
  let values, bus =
    run [ 1 ] [ 0 ] (fun net _ -> Float_unit.const net fmt 3.25)
  in
  Alcotest.(check (float 1e-9)) "const" 3.25 (dec (of_bits_u (read_bus values bus)))


let qcheck_float_recip =
  QCheck.Test.make ~name:"float reciprocal within tolerance" ~count:200 float_gen (fun v ->
      if Float.abs v < 0.01 || Float.abs v > 100.0 then true
      else
        let values, bus =
          run [ float_width ] [ enc v ] (fun net -> function
            | [ x ] -> Float_unit.recip net fmt x
            | _ -> assert false)
        in
        let got = dec (of_bits_u (read_bus values bus)) in
        Float.abs (got -. (1.0 /. v)) <= 0.05 *. Float.abs (1.0 /. v) +. 1e-6)

let qcheck_float_div =
  QCheck.Test.make ~name:"float division within tolerance" ~count:200
    (QCheck.pair float_gen float_gen)
    (fun (a, b) ->
      if Float.abs b < 0.01 || Float.abs b > 100.0 || Float.abs a > 100.0 then true
      else
        let expected = dec (enc (a /. b)) in
        let got = run_float_binop Float_unit.div a b in
        Float.abs (got -. expected) <= (0.05 *. Float.abs expected) +. 1e-4)

let test_float_div_exact_cases () =
  List.iter
    (fun (a, b) ->
      let got = run_float_binop Float_unit.div a b in
      let expected = a /. b in
      Alcotest.(check bool)
        (Printf.sprintf "%g / %g = %g (got %g)" a b expected got)
        true
        (Float.abs (got -. expected) <= 0.02 *. Float.abs expected +. 1e-6))
    [ (1.0, 2.0); (3.0, 1.5); (-8.0, 4.0); (10.0, -5.0); (1.0, 3.0); (7.5, 2.5) ]

let () =
  Alcotest.run "hdl"
    [
      ( "bus",
        [
          Alcotest.test_case "const/slice/concat" `Quick test_bus_const_and_slice;
          Alcotest.test_case "extends" `Quick test_bus_extends;
          Alcotest.test_case "shifts" `Quick test_bus_shifts;
          Alcotest.test_case "bitwise" `Quick test_bus_bitwise;
          Alcotest.test_case "reductions" `Quick test_bus_reduce;
          Alcotest.test_case "mux" `Quick test_bus_mux;
        ] );
      ( "arith",
        [
          QCheck_alcotest.to_alcotest qcheck_add;
          QCheck_alcotest.to_alcotest qcheck_sub;
          QCheck_alcotest.to_alcotest qcheck_neg;
          QCheck_alcotest.to_alcotest qcheck_abs;
          QCheck_alcotest.to_alcotest qcheck_eq;
          QCheck_alcotest.to_alcotest qcheck_ne;
          QCheck_alcotest.to_alcotest qcheck_lt_s;
          QCheck_alcotest.to_alcotest qcheck_le_s;
          QCheck_alcotest.to_alcotest qcheck_gt_s;
          QCheck_alcotest.to_alcotest qcheck_ge_s;
          QCheck_alcotest.to_alcotest qcheck_lt_u;
          QCheck_alcotest.to_alcotest qcheck_min;
          QCheck_alcotest.to_alcotest qcheck_max;
          QCheck_alcotest.to_alcotest qcheck_mul_u;
          QCheck_alcotest.to_alcotest qcheck_mul_s;
          QCheck_alcotest.to_alcotest qcheck_mul_const_csd;
          QCheck_alcotest.to_alcotest qcheck_mul_const_bin;
          QCheck_alcotest.to_alcotest qcheck_div_u;
          QCheck_alcotest.to_alcotest qcheck_add_fast;
          QCheck_alcotest.to_alcotest qcheck_add_fast_carry;
          Alcotest.test_case "prefix adder depth" `Quick test_add_fast_depth_advantage;
          QCheck_alcotest.to_alcotest qcheck_shift_left_var;
          QCheck_alcotest.to_alcotest qcheck_shift_right_var;
          QCheck_alcotest.to_alcotest qcheck_mul_const_vs_generic;
          Alcotest.test_case "csd digits" `Quick test_csd_digits;
          Alcotest.test_case "csd is shorter" `Quick test_csd_fewer_terms;
          Alcotest.test_case "csd multiplier is smaller" `Quick test_mul_const_gate_advantage;
        ] );
      ( "float",
        [
          Alcotest.test_case "repr roundtrip" `Quick test_float_repr_roundtrip;
          Alcotest.test_case "repr zero/saturation" `Quick test_float_repr_zero_and_saturation;
          Alcotest.test_case "add exact cases" `Quick test_float_add_exact_cases;
          Alcotest.test_case "mul exact cases" `Quick test_float_mul_exact_cases;
          Alcotest.test_case "relu" `Quick test_float_relu;
          Alcotest.test_case "neg" `Quick test_float_neg;
          Alcotest.test_case "const" `Quick test_float_const;
          QCheck_alcotest.to_alcotest qcheck_float_add;
          QCheck_alcotest.to_alcotest qcheck_float_sub;
          QCheck_alcotest.to_alcotest qcheck_float_mul;
          QCheck_alcotest.to_alcotest qcheck_float_lt;
          QCheck_alcotest.to_alcotest qcheck_float_max;
          QCheck_alcotest.to_alcotest qcheck_float_recip;
          QCheck_alcotest.to_alcotest qcheck_float_div;
          Alcotest.test_case "div exact-ish cases" `Quick test_float_div_exact_cases;
        ] );
    ]
