test/test_tfhe.ml: Alcotest Array Bool Bootstrap Buffer Float Fun Gates Keyswitch Lazy List Lwe Noise Params Poly Printf Pytfhe_tfhe Pytfhe_util QCheck QCheck_alcotest Tgsw Tlwe Torus
