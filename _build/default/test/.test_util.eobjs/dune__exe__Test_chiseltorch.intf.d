test/test_chiseltorch.mli:
