test/test_fft.ml: Alcotest Array Float Gen List Printf Pytfhe_fft Pytfhe_util QCheck QCheck_alcotest
