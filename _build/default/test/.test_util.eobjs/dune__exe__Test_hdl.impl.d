test/test_hdl.ml: Alcotest Arith Array Bool Bus Float Float_repr Float_unit List Printf Pytfhe_circuit Pytfhe_hdl Pytfhe_util QCheck QCheck_alcotest
