test/test_backend.ml: Alcotest Array Bytes Cost_model Float Lazy List Plain_eval Printf Pytfhe_backend Pytfhe_circuit Pytfhe_tfhe Pytfhe_util Sched_cpu Sched_gpu Str Stream_exec String Tfhe_eval Vcd
