test/test_circuit.ml: Alcotest Array Binary Bool Bytes Dot Format Gate Levelize List Netlist Printf Pytfhe_circuit Pytfhe_synth Pytfhe_util QCheck QCheck_alcotest Stats Str String
