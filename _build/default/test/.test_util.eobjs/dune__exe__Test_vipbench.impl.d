test/test_vipbench.ml: Alcotest Hashtbl List Pytfhe_circuit Pytfhe_util Pytfhe_vipbench
