test/test_util.ml: Alcotest Array Buffer Filename Float List Option Pytfhe_util QCheck QCheck_alcotest Sys
