test/test_tfhe.mli:
