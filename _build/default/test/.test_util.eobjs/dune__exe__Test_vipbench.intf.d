test/test_vipbench.mli:
