test/test_chiseltorch.ml: Alcotest Array Bool Dtype Float Format List Nn Printf Pytfhe_chiseltorch Pytfhe_circuit Pytfhe_hdl Pytfhe_util QCheck QCheck_alcotest Scalar Tensor
