module Rng = Pytfhe_util.Rng
module Netlist = Pytfhe_circuit.Netlist
open Pytfhe_chiseltorch

(* ------------------------------------------------------------------ *)
(* Dtype                                                               *)
(* ------------------------------------------------------------------ *)

let test_dtype_widths () =
  Alcotest.(check int) "uint" 5 (Dtype.width (Dtype.UInt 5));
  Alcotest.(check int) "sint" 8 (Dtype.width (Dtype.SInt 8));
  Alcotest.(check int) "fixed" 12 (Dtype.width (Dtype.Fixed { width = 12; frac = 4 }));
  Alcotest.(check int) "float(8,8) is 17 bits" 17 (Dtype.width (Dtype.Float { e = 8; m = 8 }))

let test_dtype_roundtrip () =
  let cases =
    [
      (Dtype.UInt 8, [ 0.0; 1.0; 255.0; 100.0 ]);
      (Dtype.SInt 8, [ 0.0; -1.0; 127.0; -128.0; 42.0 ]);
      (Dtype.Fixed { width = 8; frac = 4 }, [ 0.0; 1.5; -2.25; 7.9375; -8.0 ]);
      (Dtype.Float { e = 5; m = 6 }, [ 0.0; 1.0; -3.5; 0.125 ]);
    ]
  in
  List.iter
    (fun (dt, values) ->
      List.iter
        (fun v ->
          let back = Dtype.decode dt (Dtype.encode dt v) in
          Alcotest.(check (float 1e-9)) (Format.asprintf "%a %g" Dtype.pp dt v) v back)
        values)
    cases

let test_dtype_clamps () =
  Alcotest.(check (float 1e-9)) "uint8 clamps high" 255.0
    (Dtype.decode (Dtype.UInt 8) (Dtype.encode (Dtype.UInt 8) 300.0));
  Alcotest.(check (float 1e-9)) "uint8 clamps low" 0.0
    (Dtype.decode (Dtype.UInt 8) (Dtype.encode (Dtype.UInt 8) (-5.0)));
  Alcotest.(check (float 1e-9)) "sint8 clamps" 127.0
    (Dtype.decode (Dtype.SInt 8) (Dtype.encode (Dtype.SInt 8) 1000.0));
  Alcotest.(check (float 1e-9)) "fixed clamps" (-8.0)
    (Dtype.decode (Dtype.Fixed { width = 8; frac = 4 }) (Dtype.encode (Dtype.Fixed { width = 8; frac = 4 }) (-100.0)))

let test_dtype_of_string () =
  let check s expected =
    match (Dtype.of_string s, expected) with
    | Some got, Some e -> Alcotest.(check string) s (Format.asprintf "%a" Dtype.pp e) (Format.asprintf "%a" Dtype.pp got)
    | None, None -> ()
    | Some _, None -> Alcotest.failf "%s should not parse" s
    | None, Some _ -> Alcotest.failf "%s should parse" s
  in
  check "sint8" (Some (Dtype.SInt 8));
  check "uint4" (Some (Dtype.UInt 4));
  check "fixed8.4" (Some (Dtype.Fixed { width = 8; frac = 4 }));
  check "float8.8" (Some (Dtype.Float { e = 8; m = 8 }));
  check "float5.11" (Some (Dtype.Float { e = 5; m = 11 }));
  check "banana" None;
  check "sint0" None

(* ------------------------------------------------------------------ *)
(* Scalar circuit vs reference                                         *)
(* ------------------------------------------------------------------ *)

let eval_scalar_binop dtype op a_pat b_pat =
  let w = Dtype.width dtype in
  let net = Netlist.create () in
  let a = Pytfhe_hdl.Bus.input net "a" w in
  let b = Pytfhe_hdl.Bus.input net "b" w in
  let r = op net dtype a b in
  let ins = Array.init (2 * w) (fun i -> if i < w then (a_pat asr i) land 1 = 1 else (b_pat asr (i - w)) land 1 = 1) in
  let values = Netlist.eval net ins in
  Array.fold_left (fun acc id -> (acc lsl 1) lor Bool.to_int values.(id)) 0
    (Array.of_list (List.rev (Array.to_list r)))

let eval_scalar_unop dtype op a_pat =
  let w = Dtype.width dtype in
  let net = Netlist.create () in
  let a = Pytfhe_hdl.Bus.input net "a" w in
  let r = op net dtype a in
  let ins = Array.init w (fun i -> (a_pat asr i) land 1 = 1) in
  let values = Netlist.eval net ins in
  Array.fold_left (fun acc id -> (acc lsl 1) lor Bool.to_int values.(id)) 0
    (Array.of_list (List.rev (Array.to_list r)))

let int_dtypes =
  [ Dtype.UInt 8; Dtype.SInt 8; Dtype.Fixed { width = 8; frac = 4 }; Dtype.Fixed { width = 10; frac = 3 } ]

let scalar_binop_test name circuit reference =
  QCheck.Test.make ~name ~count:200
    QCheck.(triple (int_range 0 3) (int_range 0 1023) (int_range 0 1023))
    (fun (di, a, b) ->
      let dtype = List.nth int_dtypes di in
      let m = (1 lsl Dtype.width dtype) - 1 in
      let a = a land m and b = b land m in
      eval_scalar_binop dtype circuit a b = reference dtype a b)

let qcheck_scalar_add = scalar_binop_test "scalar add = ref_add" Scalar.add Scalar.ref_add
let qcheck_scalar_sub = scalar_binop_test "scalar sub = ref_sub" Scalar.sub Scalar.ref_sub
let qcheck_scalar_mul = scalar_binop_test "scalar mul = ref_mul" Scalar.mul Scalar.ref_mul

let qcheck_scalar_max =
  scalar_binop_test "scalar max = ref_max" Scalar.max_ (fun dt a b -> Scalar.ref_max dt a b)

let qcheck_scalar_relu =
  QCheck.Test.make ~name:"scalar relu = ref_relu" ~count:200
    QCheck.(pair (int_range 0 3) (int_range 0 1023))
    (fun (di, a) ->
      let dtype = List.nth int_dtypes di in
      let a = a land ((1 lsl Dtype.width dtype) - 1) in
      eval_scalar_unop dtype Scalar.relu a = Scalar.ref_relu dtype a)

let qcheck_scalar_mul_scalar =
  QCheck.Test.make ~name:"scalar mul_scalar = ref_mul_scalar" ~count:200
    QCheck.(triple (int_range 0 3) (int_range 0 1023) (float_range (-10.0) 10.0))
    (fun (di, a, c) ->
      let dtype = List.nth int_dtypes di in
      let a = a land ((1 lsl Dtype.width dtype) - 1) in
      eval_scalar_unop dtype (fun net dt x -> Scalar.mul_scalar net dt x c) a
      = Scalar.ref_mul_scalar dtype a c)

let qcheck_scalar_div_const =
  QCheck.Test.make ~name:"scalar div_const = ref_div_const" ~count:200
    QCheck.(triple (int_range 0 3) (int_range 0 1023) (int_range 1 16))
    (fun (di, a, n) ->
      let dtype = List.nth int_dtypes di in
      let a = a land ((1 lsl Dtype.width dtype) - 1) in
      eval_scalar_unop dtype (fun net dt x -> Scalar.div_const net dt x n) a
      = Scalar.ref_div_const dtype a n)

let qcheck_scalar_lt =
  QCheck.Test.make ~name:"scalar lt = ref_lt" ~count:200
    QCheck.(triple (int_range 0 3) (int_range 0 1023) (int_range 0 1023))
    (fun (di, a, b) ->
      let dtype = List.nth int_dtypes di in
      let w = Dtype.width dtype in
      let a = a land ((1 lsl w) - 1) and b = b land ((1 lsl w) - 1) in
      let net = Netlist.create () in
      let ba = Pytfhe_hdl.Bus.input net "a" w in
      let bb = Pytfhe_hdl.Bus.input net "b" w in
      let wire = Scalar.lt net dtype ba bb in
      let ins = Array.init (2 * w) (fun i -> if i < w then (a asr i) land 1 = 1 else (b asr (i - w)) land 1 = 1) in
      (Netlist.eval net ins).(wire) = Scalar.ref_lt dtype a b)


let qcheck_scalar_div =
  QCheck.Test.make ~name:"scalar div = ref_div" ~count:200
    QCheck.(triple (int_range 0 3) (int_range 0 1023) (int_range 0 1023))
    (fun (di, a, b) ->
      let dtype = List.nth int_dtypes di in
      let m = (1 lsl Dtype.width dtype) - 1 in
      let a = a land m and b = b land m in
      eval_scalar_binop dtype Scalar.div a b = Scalar.ref_div dtype a b)

let test_scalar_div_known_cases () =
  let check dtype a b expected =
    Alcotest.(check int)
      (Format.asprintf "%a: %d / %d" Dtype.pp dtype a b)
      expected
      (eval_scalar_binop dtype Scalar.div a b)
  in
  check (Dtype.UInt 8) 100 7 14;
  check (Dtype.SInt 8) (0x100 - 100) 7 (0x100 - 14);
  (* -100 / 7 = -14 *)
  check (Dtype.SInt 8) 100 (0x100 - 7) (0x100 - 14);
  (* fixed 8.4: 3.0 / 1.5 = 2.0 -> pattern 2 * 16 = 32 *)
  check (Dtype.Fixed { width = 8; frac = 4 }) 48 24 32

let test_scalar_div_float_close () =
  (* Float division is approximate (Newton-Raphson reciprocal); check it
     lands within a percent of the real quotient. *)
  let dtype = Dtype.Float { e = 5; m = 6 } in
  List.iter
    (fun (a, b) ->
      let pa = Dtype.encode dtype a and pb = Dtype.encode dtype b in
      let got = Dtype.decode dtype (eval_scalar_binop dtype Scalar.div pa pb) in
      Alcotest.(check bool)
        (Printf.sprintf "%g / %g -> %g" a b got)
        true
        (Float.abs (got -. (a /. b)) <= 0.02 *. Float.abs (a /. b) +. 1e-6))
    [ (1.0, 2.0); (-6.0, 1.5); (10.0, -4.0); (0.75, 3.0) ]

(* ------------------------------------------------------------------ *)
(* Tensor                                                              *)
(* ------------------------------------------------------------------ *)

let dt8 = Dtype.SInt 8

let eval_tensor net patterns tensor =
  let w = Dtype.width (Tensor.dtype tensor) in
  let ins =
    Array.concat
      (List.map (fun p -> Array.init 8 (fun i -> (p asr i) land 1 = 1)) (Array.to_list patterns))
  in
  let values = Netlist.eval net ins in
  Array.init (Tensor.numel tensor) (fun i ->
      let bus = Tensor.get_flat tensor i in
      let v = ref 0 in
      Array.iteri (fun b id -> if values.(id) then v := !v lor (1 lsl b)) bus;
      ignore w;
      !v)

let test_tensor_div () =
  let net = Netlist.create () in
  let x = Tensor.input net "x" (Dtype.UInt 8) [| 3 |] in
  let y = Tensor.input net "y" (Dtype.UInt 8) [| 3 |] in
  let q = Tensor.div net x y in
  let got = eval_tensor net [| 100; 81; 7; 7; 9; 2 |] q in
  Alcotest.(check (array int)) "elementwise division" [| 14; 9; 3 |] got

let test_tensor_shape_ops_are_free () =
  let net = Netlist.create () in
  let x = Tensor.input net "x" dt8 [| 2; 3 |] in
  let before = Netlist.gate_count net in
  let _ = Tensor.reshape x [| 3; 2 |] in
  let _ = Tensor.flatten x in
  let _ = Tensor.transpose x in
  Alcotest.(check int) "no gates for shape ops" before (Netlist.gate_count net)

let test_tensor_reshape_rejects () =
  let net = Netlist.create () in
  let x = Tensor.input net "x" dt8 [| 2; 3 |] in
  Alcotest.check_raises "bad reshape" (Invalid_argument "Tensor.reshape: element count mismatch")
    (fun () -> ignore (Tensor.reshape x [| 4; 2 |]))

let test_tensor_transpose_values () =
  let net = Netlist.create () in
  let x = Tensor.input net "x" dt8 [| 2; 3 |] in
  let xt = Tensor.transpose x in
  Alcotest.(check (array int)) "shape" [| 3; 2 |] (Tensor.shape xt);
  let patterns = [| 1; 2; 3; 4; 5; 6 |] in
  let got = eval_tensor net patterns xt in
  Alcotest.(check (array int)) "transposed" [| 1; 4; 2; 5; 3; 6 |] got

let test_tensor_add_mul () =
  let net = Netlist.create () in
  let x = Tensor.input net "x" dt8 [| 4 |] in
  let y = Tensor.input net "y" dt8 [| 4 |] in
  let s = Tensor.add net x y in
  let p = Tensor.mul net x y in
  let xp = [| 3; 250; 7; 130 |] and yp = [| 5; 10; 256 - 3; 130 |] in
  let patterns = Array.append xp yp in
  let ws = eval_tensor net patterns s in
  let wp = eval_tensor net patterns p in
  Array.iteri
    (fun i v -> Alcotest.(check int) "add" (Scalar.ref_add dt8 xp.(i) yp.(i)) v)
    ws;
  Array.iteri
    (fun i v -> Alcotest.(check int) "mul" (Scalar.ref_mul dt8 xp.(i) yp.(i)) v)
    wp

let test_tensor_matmul () =
  let net = Netlist.create () in
  let a = Tensor.input net "a" dt8 [| 2; 2 |] in
  let b = Tensor.input net "b" dt8 [| 2; 2 |] in
  let c = Tensor.matmul net a b in
  (* [1 2; 3 4] x [5 6; 7 8] = [19 22; 43 50] *)
  let got = eval_tensor net [| 1; 2; 3; 4; 5; 6; 7; 8 |] c in
  Alcotest.(check (array int)) "matmul" [| 19; 22; 43; 50 |] got

let test_tensor_sum_and_dot () =
  let net = Netlist.create () in
  let x = Tensor.input net "x" dt8 [| 4 |] in
  let y = Tensor.input net "y" dt8 [| 4 |] in
  let s = Tensor.sum net x in
  let d = Tensor.dot net x y in
  let patterns = [| 1; 2; 3; 4; 2; 2; 2; 2 |] in
  Alcotest.(check int) "sum" 10 (eval_tensor net patterns s).(0);
  Alcotest.(check int) "dot" 20 (eval_tensor net patterns d).(0)

let test_tensor_argmax () =
  let net = Netlist.create () in
  let x = Tensor.input net "x" dt8 [| 5 |] in
  let am = Tensor.argmax net x in
  let check patterns expected =
    let got = eval_tensor net patterns am in
    Alcotest.(check int) "argmax" expected got.(0)
  in
  (* signed: 0x80 = -128 *)
  check [| 1; 9; 3; 9; 0 |] 1;
  (* ties keep the first *)
  check [| 0x80; 0; 1; 2; 3 |] 4

let test_tensor_argmin () =
  let net = Netlist.create () in
  let x = Tensor.input net "x" dt8 [| 4 |] in
  let am = Tensor.argmin net x in
  let got = eval_tensor net [| 5; 0x80; 3; 0 |] am in
  Alcotest.(check int) "argmin picks -128" 1 got.(0)

let test_tensor_pad2d () =
  let net = Netlist.create () in
  let x = Tensor.input net "x" dt8 [| 1; 2; 2 |] in
  let p = Tensor.pad2d net x 1 0.0 in
  Alcotest.(check (array int)) "padded shape" [| 1; 4; 4 |] (Tensor.shape p);
  let got = eval_tensor net [| 1; 2; 3; 4 |] p in
  Alcotest.(check (array int)) "padding zeros"
    [| 0; 0; 0; 0; 0; 1; 2; 0; 0; 3; 4; 0; 0; 0; 0; 0 |]
    got

let test_tensor_comparisons () =
  let net = Netlist.create () in
  let x = Tensor.input net "x" dt8 [| 3 |] in
  let y = Tensor.input net "y" dt8 [| 3 |] in
  let lt = Tensor.lt_t net x y in
  Alcotest.(check bool) "result dtype UInt(1)" true (Tensor.dtype lt = Dtype.UInt 1);
  let patterns = [| 1; 5; 0xFF; 2; 5; 1 |] in
  (* signed: 0xFF = -1 < 1 *)
  let got = eval_tensor net patterns lt in
  Alcotest.(check (array int)) "lt results" [| 1; 0; 1 |] got


let test_matmul_const_matches_matmul () =
  (* Multiplying by a constant-weight matrix must equal multiplying by the
     same matrix materialised as a constant tensor. *)
  let dtype = Dtype.Fixed { width = 8; frac = 4 } in
  let weights = [| [| 0.5; -1.25 |]; [| 2.0; 0.75 |]; [| -0.5; 1.5 |] |] in
  let rng = Rng.create ~seed:88 () in
  for _ = 1 to 5 do
    let patterns = Array.init 6 (fun _ -> Rng.int rng 256) in
    let build use_const =
      let net = Netlist.create () in
      let x = Tensor.input net "x" dtype [| 2; 3 |] in
      let y =
        if use_const then Tensor.matmul_const net x weights
        else
          let flat = Array.concat (Array.to_list (Array.map Array.copy weights)) in
          Tensor.matmul net x (Tensor.of_consts net dtype [| 3; 2 |] flat)
      in
      let ins =
        Array.concat
          (List.map (fun p -> Array.init 8 (fun i -> (p asr i) land 1 = 1)) (Array.to_list patterns))
      in
      let values = Netlist.eval net ins in
      Array.init (Tensor.numel y) (fun i ->
          let bus = Tensor.get_flat y i in
          let v = ref 0 in
          Array.iteri (fun b id -> if values.(id) then v := !v lor (1 lsl b)) bus;
          !v)
    in
    Alcotest.(check (array int)) "const path = tensor path" (build false) (build true)
  done

(* ------------------------------------------------------------------ *)
(* Nn layers: circuit matches reference                                *)
(* ------------------------------------------------------------------ *)

let layer_roundtrip ?(dtype = Dtype.Fixed { width = 8; frac = 4 }) ~shape model seed =
  let rng = Rng.create ~seed () in
  let net = Netlist.create () in
  let x = Tensor.input net "x" dtype shape in
  let y = Nn.run net model x in
  let n = Array.fold_left ( * ) 1 shape in
  let w = Dtype.width dtype in
  let patterns = Array.init n (fun _ -> Rng.int rng (1 lsl w)) in
  let expected = Nn.reference model dtype shape patterns in
  let ins =
    Array.concat
      (List.map (fun p -> Array.init w (fun i -> (p asr i) land 1 = 1)) (Array.to_list patterns))
  in
  let values = Netlist.eval net ins in
  let got =
    Array.init (Tensor.numel y) (fun i ->
        let bus = Tensor.get_flat y i in
        let v = ref 0 in
        Array.iteri (fun b id -> if values.(id) then v := !v lor (1 lsl b)) bus;
        !v)
  in
  Alcotest.(check (array int)) "circuit = reference" expected got

let rng_weights seed n = Array.init n (let rng = Rng.create ~seed () in fun _ -> Rng.float rng -. 0.5)

let test_nn_conv2d () =
  layer_roundtrip ~shape:[| 1; 5; 5 |]
    [ Nn.Conv2d { in_ch = 1; out_ch = 2; kernel = 3; stride = 1; padding = 0; weights = rng_weights 1 18; bias = Some (rng_weights 2 2) } ]
    11

let test_nn_conv2d_padding_stride () =
  layer_roundtrip ~shape:[| 2; 6; 6 |]
    [ Nn.Conv2d { in_ch = 2; out_ch = 1; kernel = 3; stride = 2; padding = 1; weights = rng_weights 3 18; bias = None } ]
    12

let test_nn_conv1d () =
  layer_roundtrip ~shape:[| 2; 8 |]
    [ Nn.Conv1d { in_ch = 2; out_ch = 2; kernel = 3; stride = 1; weights = rng_weights 4 12; bias = Some (rng_weights 5 2) } ]
    13

let test_nn_linear () =
  layer_roundtrip ~shape:[| 6 |]
    [ Nn.Linear { in_features = 6; out_features = 4; weights = rng_weights 6 24; bias = Some (rng_weights 7 4) } ]
    14

let test_nn_relu_pools () =
  layer_roundtrip ~shape:[| 1; 6; 6 |] [ Nn.Relu; Nn.MaxPool2d { kernel = 2; stride = 2 } ] 15;
  layer_roundtrip ~shape:[| 1; 6; 6 |] [ Nn.AvgPool2d { kernel = 2; stride = 2 } ] 16;
  layer_roundtrip ~shape:[| 2; 8 |] [ Nn.MaxPool1d { kernel = 2; stride = 2 } ] 17;
  layer_roundtrip ~shape:[| 2; 8 |] [ Nn.AvgPool1d { kernel = 2; stride = 2 } ] 18

let test_nn_hard_activations () =
  layer_roundtrip ~shape:[| 2; 4 |] [ Nn.Hardtanh ] 23;
  layer_roundtrip ~shape:[| 2; 4 |] [ Nn.Hardsigmoid ] 24;
  layer_roundtrip ~dtype:(Dtype.Fixed { width = 10; frac = 6 }) ~shape:[| 8 |]
    [ Nn.Hardtanh; Nn.Hardsigmoid ] 25

let test_nn_hardtanh_semantics () =
  (* Check the actual saturation values, not just circuit-vs-reference. *)
  let dtype = Dtype.Fixed { width = 8; frac = 4 } in
  List.iter
    (fun (v, expected) ->
      let pattern = Dtype.encode dtype v in
      let out = Nn.reference [ Nn.Hardtanh ] dtype [| 1 |] [| pattern |] in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "hardtanh %g" v) expected
        (Dtype.decode dtype out.(0)))
    [ (0.5, 0.5); (3.0, 1.0); (-2.5, -1.0); (1.0, 1.0); (-1.0, -1.0) ]

let test_nn_batchnorm () =
  layer_roundtrip ~shape:[| 2; 3; 3 |]
    [ Nn.BatchNorm2d { gamma = [| 1.5; 0.5 |]; beta = [| 0.25; -0.25 |]; mean = [| 0.5; -0.5 |]; var = [| 1.0; 4.0 |]; eps = 1e-5 } ]
    19;
  layer_roundtrip ~shape:[| 2; 4 |]
    [ Nn.BatchNorm1d { gamma = [| 1.0; 2.0 |]; beta = [| 0.0; 1.0 |]; mean = [| 0.0; 0.0 |]; var = [| 1.0; 1.0 |]; eps = 1e-5 } ]
    20

let test_nn_full_model () =
  layer_roundtrip ~shape:[| 1; 6; 6 |]
    [
      Nn.Conv2d { in_ch = 1; out_ch = 1; kernel = 3; stride = 1; padding = 0; weights = rng_weights 8 9; bias = None };
      Nn.Relu;
      Nn.MaxPool2d { kernel = 2; stride = 1 };
      Nn.Flatten;
      Nn.Linear { in_features = 9; out_features = 3; weights = rng_weights 9 27; bias = Some (rng_weights 10 3) };
    ]
    21

let test_nn_model_uint_dtype () =
  layer_roundtrip ~dtype:(Dtype.UInt 8) ~shape:[| 1; 4; 4 |]
    [ Nn.Relu; Nn.MaxPool2d { kernel = 2; stride = 2 } ]
    22

let test_nn_output_shapes () =
  Alcotest.(check (array int)) "conv2d"
    [| 4; 26; 26 |]
    (Nn.output_shape
       (Nn.Conv2d { in_ch = 1; out_ch = 4; kernel = 3; stride = 1; padding = 0; weights = [||]; bias = None })
       [| 1; 28; 28 |]);
  Alcotest.(check (array int)) "maxpool"
    [| 1; 24; 24 |]
    (Nn.output_shape (Nn.MaxPool2d { kernel = 3; stride = 1 }) [| 1; 26; 26 |]);
  Alcotest.(check (array int)) "flatten" [| 576 |] (Nn.output_shape Nn.Flatten [| 1; 24; 24 |]);
  Alcotest.(check (array int)) "mnist_s end to end" [| 10 |]
    (Nn.model_output_shape
       [
         Nn.Conv2d { in_ch = 1; out_ch = 1; kernel = 3; stride = 1; padding = 0; weights = [||]; bias = None };
         Nn.Relu;
         Nn.MaxPool2d { kernel = 3; stride = 1 };
         Nn.Flatten;
         Nn.Linear { in_features = 576; out_features = 10; weights = [||]; bias = None };
       ]
       [| 1; 28; 28 |])

let test_nn_rejects_bad_shapes () =
  Alcotest.(check bool) "linear needs 1-D" true
    (try
       ignore (Nn.output_shape (Nn.Linear { in_features = 4; out_features = 2; weights = [||]; bias = None }) [| 2; 2 |]);
       false
     with Invalid_argument _ -> true)

(* Float dtype through a small model: tolerance-based. *)
let test_nn_float_dtype_close () =
  let dtype = Dtype.Float { e = 5; m = 6 } in
  let model =
    [ Nn.Linear { in_features = 3; out_features = 2; weights = [| 0.5; -1.0; 2.0; 1.0; 0.25; -0.5 |]; bias = Some [| 0.125; -0.125 |] } ]
  in
  let net = Netlist.create () in
  let x = Tensor.input net "x" dtype [| 3 |] in
  let y = Nn.run net model x in
  let w = Dtype.width dtype in
  let inputs = [| 1.5; -2.0; 0.5 |] in
  let patterns = Array.map (Dtype.encode dtype) inputs in
  let ins =
    Array.concat
      (List.map (fun p -> Array.init w (fun i -> (p asr i) land 1 = 1)) (Array.to_list patterns))
  in
  let values = Netlist.eval net ins in
  let got =
    Array.init (Tensor.numel y) (fun i ->
        let bus = Tensor.get_flat y i in
        let v = ref 0 in
        Array.iteri (fun b id -> if values.(id) then v := !v lor (1 lsl b)) bus;
        Dtype.decode dtype !v)
  in
  let expected = [| (0.5 *. 1.5) +. (-1.0 *. -2.0) +. (2.0 *. 0.5) +. 0.125;
                    (1.0 *. 1.5) +. (0.25 *. -2.0) +. (-0.5 *. 0.5) -. 0.125 |] in
  Array.iteri
    (fun i e ->
      Alcotest.(check bool)
        (Printf.sprintf "output %d: %g vs %g" i got.(i) e)
        true
        (Float.abs (got.(i) -. e) < 0.15))
    expected

let () =
  Alcotest.run "chiseltorch"
    [
      ( "dtype",
        [
          Alcotest.test_case "widths" `Quick test_dtype_widths;
          Alcotest.test_case "roundtrip" `Quick test_dtype_roundtrip;
          Alcotest.test_case "clamps" `Quick test_dtype_clamps;
          Alcotest.test_case "of_string" `Quick test_dtype_of_string;
        ] );
      ( "scalar",
        [
          QCheck_alcotest.to_alcotest qcheck_scalar_add;
          QCheck_alcotest.to_alcotest qcheck_scalar_sub;
          QCheck_alcotest.to_alcotest qcheck_scalar_mul;
          QCheck_alcotest.to_alcotest qcheck_scalar_max;
          QCheck_alcotest.to_alcotest qcheck_scalar_relu;
          QCheck_alcotest.to_alcotest qcheck_scalar_mul_scalar;
          QCheck_alcotest.to_alcotest qcheck_scalar_div_const;
          QCheck_alcotest.to_alcotest qcheck_scalar_lt;
          QCheck_alcotest.to_alcotest qcheck_scalar_div;
          Alcotest.test_case "div known cases" `Quick test_scalar_div_known_cases;
          Alcotest.test_case "div float approximate" `Quick test_scalar_div_float_close;
        ] );
      ( "tensor",
        [
          Alcotest.test_case "shape ops are free" `Quick test_tensor_shape_ops_are_free;
          Alcotest.test_case "reshape validates" `Quick test_tensor_reshape_rejects;
          Alcotest.test_case "transpose" `Quick test_tensor_transpose_values;
          Alcotest.test_case "add/mul" `Quick test_tensor_add_mul;
          Alcotest.test_case "matmul" `Quick test_tensor_matmul;
          Alcotest.test_case "sum/dot" `Quick test_tensor_sum_and_dot;
          Alcotest.test_case "argmax" `Quick test_tensor_argmax;
          Alcotest.test_case "argmin" `Quick test_tensor_argmin;
          Alcotest.test_case "pad2d" `Quick test_tensor_pad2d;
          Alcotest.test_case "comparisons" `Quick test_tensor_comparisons;
          Alcotest.test_case "division" `Quick test_tensor_div;
          Alcotest.test_case "matmul_const = matmul" `Quick test_matmul_const_matches_matmul;
        ] );
      ( "nn",
        [
          Alcotest.test_case "conv2d" `Quick test_nn_conv2d;
          Alcotest.test_case "conv2d stride+padding" `Quick test_nn_conv2d_padding_stride;
          Alcotest.test_case "conv1d" `Quick test_nn_conv1d;
          Alcotest.test_case "linear" `Quick test_nn_linear;
          Alcotest.test_case "relu + pools" `Quick test_nn_relu_pools;
          Alcotest.test_case "hard activations" `Quick test_nn_hard_activations;
          Alcotest.test_case "hardtanh semantics" `Quick test_nn_hardtanh_semantics;
          Alcotest.test_case "batchnorm" `Quick test_nn_batchnorm;
          Alcotest.test_case "full model" `Quick test_nn_full_model;
          Alcotest.test_case "uint dtype" `Quick test_nn_model_uint_dtype;
          Alcotest.test_case "output shapes" `Quick test_nn_output_shapes;
          Alcotest.test_case "rejects bad shapes" `Quick test_nn_rejects_bad_shapes;
          Alcotest.test_case "float dtype model" `Quick test_nn_float_dtype_close;
        ] );
    ]
