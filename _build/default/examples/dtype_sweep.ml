(* The quantization knob (paper §IV-B): ChiselTorch's parameterizable data
   types change the generated TFHE program size by large factors.  Sweep a
   small CNN over integer, fixed-point and float types and report the gate
   count and estimated runtime of each.

     dune exec examples/dtype_sweep.exe  *)

module Stats = Pytfhe_circuit.Stats
open Pytfhe_core
open Pytfhe_chiseltorch

(* Integer data types cannot represent sub-unit weights, so the weights are
   pre-scaled by the dtype's quantization factor — exactly what a PyTorch
   int8 quantizer does before export. *)
let model weight_scale =
  let rng = Pytfhe_util.Rng.create ~seed:31 () in
  let rf n =
    Array.init n (fun _ -> (Pytfhe_util.Rng.float rng -. 0.5) /. 2.0 *. weight_scale)
  in
  [
    Nn.Conv2d { in_ch = 1; out_ch = 1; kernel = 3; stride = 1; padding = 0; weights = rf 9; bias = None };
    Nn.Relu;
    Nn.MaxPool2d { kernel = 2; stride = 2 };
    Nn.Flatten;
    Nn.Linear { in_features = 49; out_features = 4; weights = rf 196; bias = Some (rf 4) };
  ]

let () =
  let dtypes =
    [
      Dtype.SInt 4;
      Dtype.SInt 8;
      Dtype.SInt 12;
      Dtype.Fixed { width = 8; frac = 4 };
      Dtype.Fixed { width = 12; frac = 6 };
      Dtype.Float { e = 5; m = 6 };
      Dtype.Float { e = 8; m = 8 };  (* the paper's bfloat16-style example *)
      Dtype.Float { e = 5; m = 11 };  (* half precision *)
    ]
  in
  Format.printf "dtype sweep over a 16x16 CNN (Conv3x3 -> ReLU -> MaxPool2 -> Linear):@.@.";
  Format.printf "%-14s %10s %10s %8s %14s@." "DTYPE" "GATES" "BOOTSTRAP" "DEPTH" "1-NODE EST (s)";
  List.iter
    (fun dtype ->
      let weight_scale =
        match dtype with Dtype.UInt _ | Dtype.SInt _ -> 16.0 | Dtype.Fixed _ | Dtype.Float _ -> 1.0
      in
      let compiled =
        Pipeline.compile_model
          ~name:(Format.asprintf "cnn-%a" Dtype.pp dtype)
          ~dtype ~input_shape:[| 1; 16; 16 |] (model weight_scale)
      in
      let est = Server.estimate (Server.Distributed { nodes = 1 }) compiled in
      Format.printf "%-14s %10d %10d %8d %14.1f@."
        (Format.asprintf "%a" Dtype.pp dtype)
        compiled.Pipeline.stats.Stats.gates compiled.Pipeline.stats.Stats.bootstraps
        compiled.Pipeline.stats.Stats.depth est)
    dtypes;
  Format.printf
    "@.Cheaper data types shrink the TFHE program by orders of magnitude — the@.quantization/performance trade-off the frontend exposes (paper Fig. 4).@."
