examples/quickstart.ml: Arith Array Bus Client Format Pipeline Pytfhe_backend Pytfhe_circuit Pytfhe_core Pytfhe_hdl Pytfhe_tfhe Server Sys Unix
