examples/mnist_inference.ml: Array Dtype Format List Pipeline Printf Pytfhe_backend Pytfhe_chiseltorch Pytfhe_circuit Pytfhe_core Pytfhe_util Pytfhe_vipbench Server String Sys Unix
