examples/private_query.mli:
