examples/mnist_inference.mli:
