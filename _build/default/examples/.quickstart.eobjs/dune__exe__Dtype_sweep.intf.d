examples/dtype_sweep.mli:
