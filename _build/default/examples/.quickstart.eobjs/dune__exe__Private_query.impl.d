examples/private_query.ml: Array Client Format List Option Pipeline Pytfhe_backend Pytfhe_circuit Pytfhe_core Pytfhe_tfhe Pytfhe_vipbench Server Unix
