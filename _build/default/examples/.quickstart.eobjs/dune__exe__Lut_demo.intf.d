examples/lut_demo.mli:
