examples/vip_tour.mli:
