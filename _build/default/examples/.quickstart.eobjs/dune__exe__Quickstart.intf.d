examples/quickstart.mli:
