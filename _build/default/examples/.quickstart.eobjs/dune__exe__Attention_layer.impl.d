examples/attention_layer.ml: Array Attention Dtype Format List Pipeline Printf Pytfhe_backend Pytfhe_chiseltorch Pytfhe_circuit Pytfhe_core Pytfhe_util Server Sys Tensor Unix
