examples/vip_tour.ml: Format List Pytfhe_circuit Pytfhe_util Pytfhe_vipbench
