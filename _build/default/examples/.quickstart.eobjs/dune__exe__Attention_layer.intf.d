examples/attention_layer.mli:
