examples/lut_demo.ml: Array Format Gates Params Pytfhe_tfhe Pytfhe_util
