examples/dtype_sweep.ml: Array Dtype Format List Nn Pipeline Pytfhe_chiseltorch Pytfhe_circuit Pytfhe_core Pytfhe_util Server
