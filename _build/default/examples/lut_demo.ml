(* Programmable bootstrapping (paper §II-B): TFHE's bootstrap can apply an
   arbitrary lookup table while refreshing noise — the primitive behind
   "bit-wise schemes are flexible enough for non-linear operations" and the
   reason word-wise schemes struggle with ReLU/argmax (paper §II-C).

     dune exec examples/lut_demo.exe

   A client encrypts a 3-bit message; the server applies a chain of
   table lookups (square, then a ReLU-like threshold) — each one a single
   bootstrapping — without learning anything about the value. *)

open Pytfhe_tfhe
module Rng = Pytfhe_util.Rng

let () =
  let params = Params.test in
  let msize = 8 in
  Format.printf "= Programmable bootstrapping / LUT demo (messages mod %d) =@." msize;
  let rng = Rng.create ~seed:2024 () in
  let sk, ck = Gates.key_gen rng params in
  let square = Array.init msize (fun v -> v * v mod msize) in
  let thresh = Array.init msize (fun v -> if v >= 4 then v - 4 else 0) in
  Format.printf "%6s %10s %16s %26s@." "v" "enc(v)" "LUT: v^2 mod 8" "then max(v-4, 0)";
  for v = 0 to msize - 1 do
    let c = Gates.encrypt_message rng sk ~msize v in
    let c2 = Gates.apply_lut ck ~msize ~table:square c in
    let c3 = Gates.apply_lut ck ~msize ~table:thresh c2 in
    let d2 = Gates.decrypt_message sk ~msize c2 in
    let d3 = Gates.decrypt_message sk ~msize c3 in
    let expected2 = v * v mod msize in
    let expected3 = max (expected2 - 4) 0 in
    Format.printf "%6d %10s %13d %s %23d %s@." v "ok" d2
      (if d2 = expected2 then "(=)" else "(!)")
      d3
      (if d3 = expected3 then "(=)" else "(!)")
  done;
  Format.printf
    "@.each lookup is one bootstrapping: noise is refreshed at every step, so@.";
  Format.printf "chains of arbitrary non-linear tables compose indefinitely.@."
