(* A tour of the VIP-Bench workload suite: verify every light benchmark
   against its plaintext reference and print the program shape that drives
   the paper's scheduling results (gate count, depth, width profile).

     dune exec examples/vip_tour.exe  *)

module W = Pytfhe_vipbench.Workload
module Stats = Pytfhe_circuit.Stats
module Levelize = Pytfhe_circuit.Levelize
module Rng = Pytfhe_util.Rng

let () =
  Format.printf "%-20s %-9s %9s %7s %8s %8s  %s@." "WORKLOAD" "CLASS" "GATES" "DEPTH" "MAXWIDTH"
    "AVGWIDTH" "VERIFY";
  List.iter
    (fun w ->
      let rng = Rng.create ~seed:99 () in
      let ok = w.W.verify rng in
      let net = w.W.circuit () in
      let s = Stats.compute net in
      let cls =
        match w.W.parallelism with W.Wide -> "wide" | W.Serial -> "serial" | W.Mixed -> "mixed"
      in
      Format.printf "%-20s %-9s %9d %7d %8d %8.1f  %s@." w.W.name cls s.Stats.gates s.Stats.depth
        s.Stats.max_width s.Stats.average_width
        (if ok then "PASS" else "FAIL"))
    Pytfhe_vipbench.Suite.light;
  Format.printf "@.(heavy workloads — mnist_s/m/l, attention_s/l — are exercised by the bench harness)@."
