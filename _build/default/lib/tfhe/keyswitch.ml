module Rng = Pytfhe_util.Rng

type key = {
  ks_t : int;
  base_bit : int;
  out_n : int;
  in_n : int;
  table : Lwe.sample array array array;  (* in_n × t × base *)
}

let key_gen rng (p : Params.t) ~in_key ~out_key =
  let ks_t = p.ks.t in
  let base_bit = p.ks.base_bit in
  let base = 1 lsl base_bit in
  let in_n = in_key.Lwe.key_n in
  let stdev = p.lwe.lwe_stdev in
  let entry i j u =
    (* Encryption of u · s_in[i] / 2^{(j+1)·base_bit}. *)
    let message =
      Torus.mul_int (u * in_key.Lwe.bits.(i)) (1 lsl (32 - ((j + 1) * base_bit)) land 0xFFFFFFFF)
    in
    Lwe.encrypt rng out_key ~stdev message
  in
  let table =
    Array.init in_n (fun i -> Array.init ks_t (fun j -> Array.init base (fun u -> entry i j u)))
  in
  { ks_t; base_bit; out_n = out_key.Lwe.key_n; in_n; table }

let apply key (s : Lwe.sample) =
  let base = 1 lsl key.base_bit in
  let prec_offset = 1 lsl (32 - 1 - (key.base_bit * key.ks_t)) in
  let acc_a = Array.make key.out_n 0 in
  let acc_b = ref s.b in
  for i = 0 to key.in_n - 1 do
    let ai = (s.a.(i) + prec_offset) land 0xFFFFFFFF in
    for j = 0 to key.ks_t - 1 do
      let aij = (ai lsr (32 - ((j + 1) * key.base_bit))) land (base - 1) in
      if aij <> 0 then begin
        let e = key.table.(i).(j).(aij) in
        for u = 0 to key.out_n - 1 do
          acc_a.(u) <- Torus.sub acc_a.(u) e.Lwe.a.(u)
        done;
        acc_b := Torus.sub !acc_b e.Lwe.b
      end
    done
  done;
  { Lwe.a = acc_a; b = !acc_b }

let table_bytes key =
  let base = 1 lsl key.base_bit in
  key.in_n * key.ks_t * base * 4 * (key.out_n + 1)

module Wire = Pytfhe_util.Wire

let write buf k =
  Wire.write_magic buf "KSWK";
  Wire.write_i64 buf k.ks_t;
  Wire.write_i64 buf k.base_bit;
  Wire.write_i64 buf k.out_n;
  Wire.write_i64 buf k.in_n;
  Wire.write_array buf
    (fun buf row -> Wire.write_array buf (fun buf col -> Wire.write_array buf Lwe.write_sample col) row)
    k.table

let read r =
  Wire.read_magic r "KSWK";
  let ks_t = Wire.read_i64 r in
  let base_bit = Wire.read_i64 r in
  let out_n = Wire.read_i64 r in
  let in_n = Wire.read_i64 r in
  let table =
    Wire.read_array r (fun r -> Wire.read_array r (fun r -> Wire.read_array r Lwe.read_sample))
  in
  if Array.length table <> in_n then raise (Wire.Corrupt "key-switch table size mismatch");
  { ks_t; base_bit; out_n; in_n; table }
