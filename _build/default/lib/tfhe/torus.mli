(** Discretised torus arithmetic.

    TFHE works over the real torus 𝕋 = ℝ/ℤ, discretised to 32 bits: a torus
    element is an integer in [0, 2³²) standing for the fraction t/2³².  We
    carry these in native OCaml [int]s (63-bit) masked to 32 bits, so torus
    arrays are unboxed and arithmetic is branch-free. *)

type t = int
(** A torus element; invariant: [0 <= t < 2^32]. *)

val zero : t

val add : t -> t -> t
(** Addition modulo 1. *)

val sub : t -> t -> t
(** Subtraction modulo 1. *)

val neg : t -> t
(** Negation modulo 1. *)

val mul_int : int -> t -> t
(** [mul_int k t] is the external product [k · t] for a (possibly negative)
    integer [k]. *)

val of_double : float -> t
(** Nearest torus element to the real number (taken modulo 1). *)

val to_double : t -> float
(** Centred representative in [-1/2, 1/2). *)

val of_signed : int -> t
(** Reduce an arbitrary (two's complement) integer into the torus range;
    used when converting FFT results back to torus coefficients. *)

val to_signed : t -> int
(** Centred integer representative in [-2^31, 2^31). *)

val mod_switch_to : int -> msize:int -> t
(** [mod_switch_to mu ~msize] embeds message [mu ∈ ℤ/msize] as the torus
    element [mu/msize] (TFHE's modSwitchToTorus32). *)

val mod_switch_from : t -> msize:int -> int
(** [mod_switch_from t ~msize] rounds [t] to the nearest multiple of
    [1/msize] and returns its index in [0, msize) (modSwitchFromTorus32). *)

val approx_phase : t -> msize:int -> t
(** Round to the nearest element of the [msize]-element message space. *)

val add_gaussian : Pytfhe_util.Rng.t -> stdev:float -> t -> t
(** Add centred Gaussian noise of the given standard deviation (as a
    fraction of the torus). *)

val distance : t -> t -> float
(** Torus distance |a − b| as a real in [0, 1/2]; used by tests to check
    that decrypted phases sit near their expected message. *)
