(** LWE samples over the discretised torus.

    An LWE sample under key s ∈ {0,1}ⁿ is (a, b) with b = ⟨a, s⟩ + μ + e.
    These are the ciphertexts that flow between bootstrapped gates. *)

type key = { key_n : int; bits : int array }
(** Binary secret key. *)

type sample = { a : int array; b : Torus.t }
(** Mask vector and body.  The mask length equals the key dimension. *)

val key_gen : Pytfhe_util.Rng.t -> n:int -> key
(** Sample a uniform binary key of dimension [n]. *)

val encrypt : Pytfhe_util.Rng.t -> key -> stdev:float -> Torus.t -> sample
(** Encrypt the torus message with fresh Gaussian noise. *)

val trivial : n:int -> Torus.t -> sample
(** Noiseless sample (0, μ) — encodes a public constant. *)

val phase : key -> sample -> Torus.t
(** b − ⟨a, s⟩: the message plus noise. *)

val decrypt : key -> msize:int -> sample -> int
(** Round the phase to the nearest of [msize] equispaced messages. *)

val decrypt_bit : key -> sample -> bool
(** Gate-bootstrapping convention: phase near +1/8 is [true], near −1/8 is
    [false] (sign of the centred phase). *)

val add : sample -> sample -> sample
(** Homomorphic addition of phases. *)

val sub : sample -> sample -> sample
(** Homomorphic subtraction of phases. *)

val neg : sample -> sample
(** Homomorphic negation (implements the noiseless NOT gate). *)

val add_to : sample -> sample -> sample
(** Functional alias of {!add} kept for symmetry with the C API. *)

val scale : int -> sample -> sample
(** Integer scaling of the phase. *)

val ciphertext_bytes : n:int -> int
(** Serialized size of a sample at 32 bits per torus element — the 2.46 KB
    figure of the paper's Fig. 7 communication analysis. *)

val write_key : Pytfhe_util.Wire.writer -> key -> unit
val read_key : Pytfhe_util.Wire.reader -> key

val write_sample : Pytfhe_util.Wire.writer -> sample -> unit
(** 4 bytes per torus element: the on-the-wire ciphertext of Fig. 7. *)

val read_sample : Pytfhe_util.Wire.reader -> sample
