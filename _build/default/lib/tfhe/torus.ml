type t = int

let mask = 0xFFFFFFFF
let two32 = 4294967296.0

let zero = 0
let add a b = (a + b) land mask
let sub a b = (a - b) land mask
let neg a = -a land mask
let mul_int k t = k * t land mask

let of_double d =
  (* Round d·2^32 to the nearest integer; Int64 conversion handles the
     negative case, after which masking reduces modulo 2^32. *)
  Int64.to_int (Int64.of_float (Float.round (d *. two32))) land mask

let to_double t =
  let centred = if t >= 0x80000000 then t - 0x100000000 else t in
  float_of_int centred /. two32

let of_signed v = v land mask

let to_signed t = if t >= 0x80000000 then t - 0x100000000 else t

let mod_switch_to mu ~msize =
  let interval = 0x100000000 / msize in
  mu * interval land mask

let mod_switch_from t ~msize =
  (* round(t · msize / 2^32) mod msize, computed exactly in 63-bit ints when
     possible and via Int64 otherwise. *)
  let product = Int64.add (Int64.mul (Int64.of_int t) (Int64.of_int msize)) 0x80000000L in
  Int64.to_int (Int64.shift_right_logical product 32) mod msize

let approx_phase t ~msize =
  let interval = 0x100000000 / msize in
  let half = interval / 2 in
  (t + half) / interval * interval land mask

let add_gaussian rng ~stdev t =
  let noise = Pytfhe_util.Rng.gaussian rng ~stdev in
  add t (of_double noise)

let distance a b =
  let d = Float.abs (to_double (sub a b)) in
  Float.min d (1.0 -. d)
