module Negacyclic = Pytfhe_fft.Negacyclic

type torus_poly = int array
type int_poly = int array

let zero n = Array.make n 0

let add a b = Array.map2 Torus.add a b

let add_to dst src =
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- Torus.add dst.(i) src.(i)
  done

let sub a b = Array.map2 Torus.sub a b

let sub_to dst src =
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- Torus.sub dst.(i) src.(i)
  done

let neg a = Array.map Torus.neg a

let mul_by_xai a p =
  let n = Array.length p in
  if a < 0 || a >= 2 * n then invalid_arg "Poly.mul_by_xai: exponent out of [0, 2N)";
  let out = Array.make n 0 in
  if a < n then begin
    (* Coefficient j of p lands at j + a; wrapping past N flips sign. *)
    for j = 0 to n - 1 - a do
      out.(j + a) <- p.(j)
    done;
    for j = n - a to n - 1 do
      if j >= 0 then out.(j + a - n) <- Torus.neg p.(j)
    done
  end
  else begin
    let a' = a - n in
    for j = 0 to n - 1 - a' do
      out.(j + a') <- Torus.neg p.(j)
    done;
    for j = n - a' to n - 1 do
      if j >= 0 then out.(j + a' - n) <- p.(j)
    done
  end;
  out

let mul_by_xai_minus_one a p =
  let rotated = mul_by_xai a p in
  sub rotated p

let to_floats ~centred p =
  if centred then Array.map (fun v -> float_of_int (Torus.to_signed v)) p
  else Array.map float_of_int p

let of_floats f =
  Array.map
    (fun x ->
      let r = Float.rem (Float.round x) 4294967296.0 in
      Torus.of_signed (Int64.to_int (Int64.of_float r)))
    f

let mul_int_torus ip tp =
  let a = to_floats ~centred:false ip in
  let b = to_floats ~centred:true tp in
  of_floats (Negacyclic.polymul a b)

let mul_int_torus_naive ip tp =
  let n = Array.length ip in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    if ip.(i) <> 0 then
      for j = 0 to n - 1 do
        let k = i + j in
        let term = Torus.mul_int ip.(i) tp.(j) in
        if k < n then out.(k) <- Torus.add out.(k) term
        else out.(k - n) <- Torus.sub out.(k - n) term
      done
  done;
  out
