lib/tfhe/lwe.ml: Array Pytfhe_util Torus
