lib/tfhe/noise.ml: Float Params
