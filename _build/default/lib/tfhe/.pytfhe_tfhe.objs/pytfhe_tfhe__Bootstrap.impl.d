lib/tfhe/bootstrap.ml: Array Lwe Params Poly Pytfhe_util Tgsw Tlwe Torus
