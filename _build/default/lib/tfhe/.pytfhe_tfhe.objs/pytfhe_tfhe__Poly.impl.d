lib/tfhe/poly.ml: Array Float Int64 Pytfhe_fft Torus
