lib/tfhe/gates.mli: Bootstrap Keyswitch Lwe Params Pytfhe_util Tlwe
