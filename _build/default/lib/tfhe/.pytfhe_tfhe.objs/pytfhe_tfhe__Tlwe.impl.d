lib/tfhe/tlwe.ml: Array Lwe Params Poly Pytfhe_util Torus
