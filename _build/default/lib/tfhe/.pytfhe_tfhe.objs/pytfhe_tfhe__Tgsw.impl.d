lib/tfhe/tgsw.ml: Array Params Poly Pytfhe_fft Pytfhe_util Tlwe Torus
