lib/tfhe/torus.mli: Pytfhe_util
