lib/tfhe/keyswitch.mli: Lwe Params Pytfhe_util
