lib/tfhe/noise.mli: Params
