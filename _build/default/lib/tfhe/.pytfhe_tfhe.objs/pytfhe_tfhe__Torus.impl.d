lib/tfhe/torus.ml: Float Int64 Pytfhe_util
