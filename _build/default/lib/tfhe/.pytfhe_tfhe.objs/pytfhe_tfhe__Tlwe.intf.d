lib/tfhe/tlwe.mli: Lwe Params Poly Pytfhe_util
