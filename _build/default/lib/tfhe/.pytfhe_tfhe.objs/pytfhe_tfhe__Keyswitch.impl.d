lib/tfhe/keyswitch.ml: Array Lwe Params Pytfhe_util Torus
