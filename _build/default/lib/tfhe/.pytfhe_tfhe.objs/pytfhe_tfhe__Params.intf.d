lib/tfhe/params.mli: Format Pytfhe_util Torus
