lib/tfhe/lwe.mli: Pytfhe_util Torus
