lib/tfhe/tgsw.mli: Params Poly Pytfhe_util Tlwe
