lib/tfhe/gates.ml: Array Bootstrap Keyswitch Lwe Params Pytfhe_util Tlwe Torus
