lib/tfhe/params.ml: Format Pytfhe_util Torus
