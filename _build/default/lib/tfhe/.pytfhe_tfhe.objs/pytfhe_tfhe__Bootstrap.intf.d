lib/tfhe/bootstrap.mli: Lwe Params Poly Pytfhe_util Tlwe Torus
