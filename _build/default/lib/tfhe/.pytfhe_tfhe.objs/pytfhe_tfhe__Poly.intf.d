lib/tfhe/poly.mli:
