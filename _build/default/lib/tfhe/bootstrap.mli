(** Programmable bootstrapping: blind rotation + sample extraction.

    The bootstrapping key encrypts each bit of the LWE key as a TGSW sample;
    blind rotation then homomorphically rotates a test polynomial by the
    (mod-switched) phase of the input ciphertext, refreshing its noise while
    applying a negacyclic lookup table. *)

type key
(** Bootstrapping key: n TGSW encryptions (stored in FFT form) of the LWE
    key bits under the ring key, plus a reusable workspace. *)

val key_gen : Pytfhe_util.Rng.t -> Params.t -> lwe_key:Lwe.key -> tlwe_key:Tlwe.key -> key

val blind_rotate : Params.t -> key -> testvect:Poly.torus_poly -> Lwe.sample -> Tlwe.sample
(** Rotate [testvect] by X^{−phase·2N} under encryption. *)

val bootstrap_wo_keyswitch : Params.t -> key -> mu:Torus.t -> Lwe.sample -> Lwe.sample
(** Refresh a ciphertext to an encryption of ±[mu] (sign of the input
    phase) under the *extracted* key of dimension k·N. *)

val key_bytes : Params.t -> int
(** Serialized size of the bootstrapping key at 32 bits per torus element. *)

val write : Pytfhe_util.Wire.writer -> key -> unit
val read : Params.t -> Pytfhe_util.Wire.reader -> key
(** The parameter set recreates the scratch workspace on load. *)

val programmable :
  Params.t -> key -> msize:int -> (int -> Torus.t) -> Lwe.sample -> Lwe.sample
(** Programmable bootstrapping (paper §II-B): refresh the ciphertext while
    applying an arbitrary lookup table.  The input must encrypt a message
    μ ∈ [0, msize) in the half-torus encoding μ/(2·msize); the result (under
    the extracted key) carries the torus value [f μ].  [msize] must divide
    the ring degree N. *)
