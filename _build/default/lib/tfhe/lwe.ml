module Rng = Pytfhe_util.Rng

type key = { key_n : int; bits : int array }
type sample = { a : int array; b : Torus.t }

let key_gen rng ~n = { key_n = n; bits = Array.init n (fun _ -> if Rng.bool rng then 1 else 0) }

let encrypt rng key ~stdev mu =
  let a = Array.init key.key_n (fun _ -> Rng.bits32 rng) in
  let dot = ref 0 in
  for i = 0 to key.key_n - 1 do
    if key.bits.(i) = 1 then dot := Torus.add !dot a.(i)
  done;
  let b = Torus.add_gaussian rng ~stdev (Torus.add !dot mu) in
  { a; b }

let trivial ~n mu = { a = Array.make n 0; b = mu }

let phase key s =
  let dot = ref 0 in
  for i = 0 to key.key_n - 1 do
    if key.bits.(i) = 1 then dot := Torus.add !dot s.a.(i)
  done;
  Torus.sub s.b !dot

let decrypt key ~msize s = Torus.mod_switch_from (phase key s) ~msize

let decrypt_bit key s = Torus.to_double (phase key s) > 0.0

let add x y = { a = Array.map2 Torus.add x.a y.a; b = Torus.add x.b y.b }
let sub x y = { a = Array.map2 Torus.sub x.a y.a; b = Torus.sub x.b y.b }
let neg x = { a = Array.map Torus.neg x.a; b = Torus.neg x.b }
let add_to = add
let scale k x = { a = Array.map (Torus.mul_int k) x.a; b = Torus.mul_int k x.b }

let ciphertext_bytes ~n = 4 * (n + 1)

module Wire = Pytfhe_util.Wire

let write_key buf k =
  Wire.write_magic buf "LKEY";
  Wire.write_u32_array buf k.bits

let read_key r =
  Wire.read_magic r "LKEY";
  let bits = Wire.read_u32_array r in
  Array.iter (fun b -> if b <> 0 && b <> 1 then raise (Wire.Corrupt "LWE key bit out of range")) bits;
  { key_n = Array.length bits; bits }

let write_sample buf s =
  Wire.write_magic buf "LSMP";
  Wire.write_u32_array buf s.a;
  Wire.write_u32 buf s.b

let read_sample r =
  Wire.read_magic r "LSMP";
  let a = Wire.read_u32_array r in
  let b = Wire.read_u32 r in
  { a; b }
