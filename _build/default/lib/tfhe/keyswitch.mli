(** LWE key switching.

    After blind rotation and sample extraction, ciphertexts live under the
    large extracted key (dimension k·N); the key-switch brings them back to
    the small in/out key (dimension n) so gates compose. *)

type key
(** Key-switching material from an input key to an output key. *)

val key_gen :
  Pytfhe_util.Rng.t -> Params.t -> in_key:Lwe.key -> out_key:Lwe.key -> key
(** Encrypt every input key bit at every decomposition position under the
    output key. *)

val apply : key -> Lwe.sample -> Lwe.sample
(** Re-encrypt a sample from the input key to the output key. *)

val table_bytes : key -> int
(** Serialized size of the key-switch table at 32 bits per torus element;
    part of the public "cloud key" the client ships to the server. *)

val write : Pytfhe_util.Wire.writer -> key -> unit
val read : Pytfhe_util.Wire.reader -> key
