module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate

type recoding = [ `Csd | `Binary ]

let full_adder net a b c =
  let axb = Netlist.gate net Gate.Xor a b in
  let sum = Netlist.gate net Gate.Xor axb c in
  let carry = Netlist.gate net Gate.Or (Netlist.gate net Gate.And a b) (Netlist.gate net Gate.And axb c) in
  (sum, carry)

let add_carry net ?cin a b =
  let w = Bus.width a in
  if Bus.width b <> w then invalid_arg "Arith.add_carry: width mismatch";
  let carry = ref (match cin with Some c -> c | None -> Netlist.const net false) in
  let sum =
    Array.init w (fun i ->
        let s, c = full_adder net a.(i) b.(i) !carry in
        carry := c;
        s)
  in
  (sum, !carry)

let add net a b = fst (add_carry net a b)

let sub net a b =
  let nb = Bus.bnot net b in
  fst (add_carry net ~cin:(Netlist.const net true) a nb)

let neg net a = sub net (Bus.const net ~width:(Bus.width a) 0) a

let eq net a b =
  if Bus.width a <> Bus.width b then invalid_arg "Arith.eq: width mismatch";
  let xnors = Array.map2 (fun x y -> Netlist.gate net Gate.Xnor x y) a b in
  Bus.reduce_and net xnors

let ne net a b = Netlist.not_ net (eq net a b)

(* a < b computed as the sign of the (width+1)-bit difference. *)
let lt_with extend net a b =
  let w = Bus.width a + 1 in
  let a' = extend net a w and b' = extend net b w in
  Bus.msb (sub net a' b')

let lt_u net a b = lt_with Bus.zero_extend net a b
let lt_s net a b = lt_with Bus.sign_extend net a b
let gt_s net a b = lt_s net b a
let le_s net a b = Netlist.not_ net (gt_s net a b)
let ge_s net a b = Netlist.not_ net (lt_s net a b)

let min_s net a b = Bus.mux net (lt_s net a b) a b
let max_s net a b = Bus.mux net (lt_s net a b) b a

let abs net a =
  let negated = neg net a in
  Bus.mux net (Bus.msb a) negated a

let partial_product net ~out_width multiplicand bit shift =
  (* (multiplicand AND bit) << shift, truncated; the builder's constant
     folding trims the zero-filled low bits out of the adders. *)
  let gated = Array.map (fun w -> Netlist.gate net Gate.And w bit) multiplicand in
  Bus.shift_left net (Bus.resize_u net gated out_width) shift

let mul_generic net ~out_width a_ext b_ext =
  let acc = ref (Bus.const net ~width:out_width 0) in
  Array.iteri
    (fun i bit -> if i < out_width then acc := add net !acc (partial_product net ~out_width a_ext bit i))
    b_ext;
  !acc

let mul_u net ~out_width a b =
  mul_generic net ~out_width (Bus.resize_u net a out_width) (Bus.resize_u net b out_width)

let mul_s net ~out_width a b =
  mul_generic net ~out_width (Bus.resize_s net a out_width) (Bus.resize_s net b out_width)

let csd_digits c =
  let rec go c shift acc =
    if c = 0 then List.rev acc
    else if c land 1 = 0 then go (c asr 1) (shift + 1) acc
    else
      let digit = if c land 3 = 1 then 1 else -1 in
      go ((c - digit) asr 1) (shift + 1) ((shift, digit) :: acc)
  in
  go c 0 []

let binary_digits c =
  (* Plain binary recoding of |c| with a global sign. *)
  let sign = if c < 0 then -1 else 1 in
  let rec go c shift acc =
    if c = 0 then List.rev acc
    else if c land 1 = 1 then go (c asr 1) (shift + 1) ((shift, sign) :: acc)
    else go (c asr 1) (shift + 1) acc
  in
  go (Stdlib.abs c) 0 []

let mul_const_s net ?(recoding = `Csd) ~out_width a c =
  let digits = match recoding with `Csd -> csd_digits c | `Binary -> binary_digits c in
  let a_ext = Bus.resize_s net a out_width in
  let zero = Bus.const net ~width:out_width 0 in
  List.fold_left
    (fun acc (shift, sign) ->
      let term = Bus.shift_left net a_ext shift in
      if sign > 0 then add net acc term else sub net acc term)
    zero digits

let div_u net a b =
  let w = Bus.width a in
  if Bus.width b <> w then invalid_arg "Arith.div_u: width mismatch";
  (* Restoring division: shift the dividend in MSB-first, subtract, keep the
     difference when it does not borrow. *)
  let zero = Bus.const net ~width:w 0 in
  let quotient = Array.make w (Netlist.const net false) in
  let remainder = ref zero in
  for i = w - 1 downto 0 do
    let shifted = Array.append [| a.(i) |] (Array.sub !remainder 0 (w - 1)) in
    let wide_r = Bus.zero_extend net shifted (w + 1) in
    let wide_b = Bus.zero_extend net b (w + 1) in
    let diff = sub net wide_r wide_b in
    let no_borrow = Netlist.not_ net (Bus.msb diff) in
    quotient.(i) <- no_borrow;
    remainder := Bus.mux net no_borrow (Array.sub diff 0 w) shifted
  done;
  (quotient, !remainder)

let add_fast net ?cin a b =
  let w = Bus.width a in
  if Bus.width b <> w then invalid_arg "Arith.add_fast: width mismatch";
  (* Generate/propagate pairs, combined with the Kogge-Stone prefix tree:
     (G2, P2) o (G1, P1) = (G2 | P2 & G1, P2 & P1). *)
  let g = Array.init w (fun i -> Netlist.gate net Gate.And a.(i) b.(i)) in
  let p = Array.init w (fun i -> Netlist.gate net Gate.Xor a.(i) b.(i)) in
  let gk = Array.copy g and pk = Array.copy p in
  (* Fold the carry-in into position 0 before the prefix pass. *)
  (match cin with
  | Some c ->
    gk.(0) <- Netlist.gate net Gate.Or gk.(0) (Netlist.gate net Gate.And pk.(0) c);
    pk.(0) <- Netlist.const net false
  | None -> ());
  let dist = ref 1 in
  while !dist < w do
    for i = w - 1 downto !dist do
      let j = i - !dist in
      gk.(i) <- Netlist.gate net Gate.Or gk.(i) (Netlist.gate net Gate.And pk.(i) gk.(j));
      pk.(i) <- Netlist.gate net Gate.And pk.(i) pk.(j)
    done;
    dist := !dist * 2
  done;
  (* Bit i's carry-in is the prefix generate below it (or the external
     carry for bit 0). *)
  Array.init w (fun i ->
      let carry_in =
        if i = 0 then match cin with Some c -> c | None -> Netlist.const net false
        else gk.(i - 1)
      in
      Netlist.gate net Gate.Xor p.(i) carry_in)

let shift_var direction net a amount =
  let w = Bus.width a in
  let result = ref a in
  let too_big = ref (Netlist.const net false) in
  Array.iteri
    (fun i bit ->
      if 1 lsl i >= w then too_big := Netlist.gate net Gate.Or !too_big bit
      else
        let shifted =
          match direction with
          | `Left -> Bus.shift_left net !result (1 lsl i)
          | `Right -> Bus.shift_right_logical net !result (1 lsl i)
        in
        result := Bus.mux net bit shifted !result)
    amount;
  Bus.mux net !too_big (Bus.const net ~width:w 0) !result

let shift_left_var net a amount = shift_var `Left net a amount
let shift_right_var net a amount = shift_var `Right net a amount

let div_s net a b =
  let abs_a = abs net a and abs_b = abs net b in
  let q, _ = div_u net abs_a abs_b in
  let sign = Netlist.gate net Gate.Xor (Bus.msb a) (Bus.msb b) in
  Bus.mux net sign (neg net q) q
