let total_width ~e ~m = e + m + 1
let bias ~e = (1 lsl (e - 1)) - 1

let max_exp_field ~e = (1 lsl e) - 1

let max_value ~e ~m =
  let exp = max_exp_field ~e - bias ~e in
  let mant = 2.0 -. (1.0 /. float_of_int (1 lsl m)) in
  mant *. (2.0 ** float_of_int exp)

let encode ~e ~m v =
  let sign = if v < 0.0 || (v = 0.0 && 1.0 /. v < 0.0) then 1 else 0 in
  let av = Float.abs v in
  if av = 0.0 || Float.is_nan v then 0
  else if av >= max_value ~e ~m then
    (* Saturate to the largest finite value. *)
    (sign lsl (e + m)) lor (max_exp_field ~e lsl m) lor ((1 lsl m) - 1)
  else begin
    let frac, exp2 = Float.frexp av in
    (* frexp: av = frac · 2^exp2 with frac ∈ [0.5, 1); normalise to
       [1, 2) · 2^{exp2 - 1}. *)
    let exponent = exp2 - 1 in
    let field = exponent + bias ~e in
    if field <= 0 then 0 (* flush to zero *)
    else begin
      let mant = int_of_float (Float.of_int (1 lsl (m + 1)) *. frac) - (1 lsl m) in
      let mant = max 0 (min mant ((1 lsl m) - 1)) in
      (sign lsl (e + m)) lor (field lsl m) lor mant
    end
  end

let decode ~e ~m bits =
  let sign = (bits lsr (e + m)) land 1 in
  let field = (bits lsr m) land max_exp_field ~e in
  let mant = bits land ((1 lsl m) - 1) in
  if field = 0 then 0.0
  else
    let value =
      (1.0 +. (float_of_int mant /. float_of_int (1 lsl m)))
      *. (2.0 ** float_of_int (field - bias ~e))
    in
    if sign = 1 then -.value else value

let ulp_at ~e ~m v =
  let av = Float.abs v in
  if av = 0.0 then 2.0 ** float_of_int (1 - bias ~e)
  else
    let _, exp2 = Float.frexp av in
    2.0 ** float_of_int (exp2 - 1 - m)
