(** Plaintext encoding of the parametric Float(e, m) format.

    Layout (LSB first on a bus): m mantissa bits, e exponent bits, 1 sign
    bit — total e+m+1.  Biased exponent with bias 2^{e−1}−1, hidden leading
    one, no subnormals (flush to zero), no NaN/infinity (saturate), truncation
    rounding.  [Float (5, 11)] is an IEEE-half-like format; [Float (8, 8)]
    matches the paper's bfloat16-style example.

    These functions are the reference semantics: the circuit datapath in
    {!Float_unit} is tested against them. *)

val total_width : e:int -> m:int -> int
(** e + m + 1. *)

val bias : e:int -> int

val encode : e:int -> m:int -> float -> int
(** Nearest representable bit pattern (truncation; saturates on overflow,
    flushes to zero on underflow). *)

val decode : e:int -> m:int -> int -> float
(** Real value of a bit pattern. *)

val max_value : e:int -> m:int -> float
(** Largest finite representable magnitude. *)

val ulp_at : e:int -> m:int -> float -> float
(** The spacing of representable values around [v] — the tolerance tests
    use when comparing against real-arithmetic references. *)
