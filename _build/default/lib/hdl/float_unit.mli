(** Combinational datapaths for the parametric Float(e, m) format.

    Semantics follow {!Float_repr}: hidden leading one, flush-to-zero,
    saturation instead of infinity, truncation rounding.  These are the
    pre-built modules behind ChiselTorch's [Float (e, m)] data type. *)

type fmt = { e : int; m : int }

val width : fmt -> int
(** Bus width of a value in this format. *)

val const : Pytfhe_circuit.Netlist.t -> fmt -> float -> Bus.t
(** Encode a public constant. *)

val neg : Pytfhe_circuit.Netlist.t -> fmt -> Bus.t -> Bus.t
(** Sign flip; one gate. *)

val add : Pytfhe_circuit.Netlist.t -> fmt -> Bus.t -> Bus.t -> Bus.t
val sub : Pytfhe_circuit.Netlist.t -> fmt -> Bus.t -> Bus.t -> Bus.t
val mul : Pytfhe_circuit.Netlist.t -> fmt -> Bus.t -> Bus.t -> Bus.t

val mul_const : Pytfhe_circuit.Netlist.t -> fmt -> Bus.t -> float -> Bus.t
(** Multiply by a public constant: the exponent addition folds away and the
    mantissa product becomes a constant multiplier. *)

val relu : Pytfhe_circuit.Netlist.t -> fmt -> Bus.t -> Bus.t
(** max(x, 0): zero out negative inputs. *)

val is_zero : Pytfhe_circuit.Netlist.t -> fmt -> Bus.t -> Pytfhe_circuit.Netlist.id

val lt : Pytfhe_circuit.Netlist.t -> fmt -> Bus.t -> Bus.t -> Pytfhe_circuit.Netlist.id
(** Signed-magnitude comparison; −0 and +0 compare equal. *)

val max_f : Pytfhe_circuit.Netlist.t -> fmt -> Bus.t -> Bus.t -> Bus.t
val min_f : Pytfhe_circuit.Netlist.t -> fmt -> Bus.t -> Bus.t -> Bus.t

val recip : Pytfhe_circuit.Netlist.t -> fmt -> Bus.t -> Bus.t
(** Approximate reciprocal by Newton-Raphson iteration on the mantissa
    (three iterations from a linear seed; relative error well below 1e-4,
    i.e. a few ulp for mantissas up to ~11 bits).  Division by zero and
    reciprocals overflowing the exponent range saturate/flush per the
    format's semantics. *)

val div : Pytfhe_circuit.Netlist.t -> fmt -> Bus.t -> Bus.t -> Bus.t
(** x / y as x · recip y. *)
