(** Combinational integer arithmetic over buses.

    These are the pre-built, validated building blocks the ChiselTorch
    frontend instantiates (paper §IV-B).  Everything is two's complement;
    unsigned variants exist where the semantics differ.

    The constant multiplier is the frontend's key gate-count optimization:
    model weights are public, so a multiplication by a weight lowers to a
    canonical-signed-digit shift-add network instead of a full array
    multiplier.  The [`Binary] recoding and the generic multiplier are kept
    for the baseline framework models (Fig. 14's ablation). *)

type recoding = [ `Csd  (** Canonical signed digit: fewest add/subs. *) | `Binary ]

val add : Pytfhe_circuit.Netlist.t -> Bus.t -> Bus.t -> Bus.t
(** Ripple-carry addition; equal widths; wraps. *)

val add_carry :
  Pytfhe_circuit.Netlist.t -> ?cin:Pytfhe_circuit.Netlist.id -> Bus.t -> Bus.t ->
  Bus.t * Pytfhe_circuit.Netlist.id
(** Sum and carry-out. *)

val sub : Pytfhe_circuit.Netlist.t -> Bus.t -> Bus.t -> Bus.t
val neg : Pytfhe_circuit.Netlist.t -> Bus.t -> Bus.t

val abs : Pytfhe_circuit.Netlist.t -> Bus.t -> Bus.t
(** |a| for a signed bus (two's complement; min-int maps to itself). *)

val eq : Pytfhe_circuit.Netlist.t -> Bus.t -> Bus.t -> Pytfhe_circuit.Netlist.id
val ne : Pytfhe_circuit.Netlist.t -> Bus.t -> Bus.t -> Pytfhe_circuit.Netlist.id

val lt_u : Pytfhe_circuit.Netlist.t -> Bus.t -> Bus.t -> Pytfhe_circuit.Netlist.id
val lt_s : Pytfhe_circuit.Netlist.t -> Bus.t -> Bus.t -> Pytfhe_circuit.Netlist.id
val le_s : Pytfhe_circuit.Netlist.t -> Bus.t -> Bus.t -> Pytfhe_circuit.Netlist.id
val gt_s : Pytfhe_circuit.Netlist.t -> Bus.t -> Bus.t -> Pytfhe_circuit.Netlist.id
val ge_s : Pytfhe_circuit.Netlist.t -> Bus.t -> Bus.t -> Pytfhe_circuit.Netlist.id

val min_s : Pytfhe_circuit.Netlist.t -> Bus.t -> Bus.t -> Bus.t
val max_s : Pytfhe_circuit.Netlist.t -> Bus.t -> Bus.t -> Bus.t

val mul_u : Pytfhe_circuit.Netlist.t -> out_width:int -> Bus.t -> Bus.t -> Bus.t
(** Unsigned array multiplier, truncated to [out_width]. *)

val mul_s : Pytfhe_circuit.Netlist.t -> out_width:int -> Bus.t -> Bus.t -> Bus.t
(** Signed multiplier (operands sign-extended to [out_width]). *)

val mul_const_s :
  Pytfhe_circuit.Netlist.t -> ?recoding:recoding -> out_width:int -> Bus.t -> int -> Bus.t
(** Multiply a signed bus by a public integer constant via shift-add. *)

val div_u : Pytfhe_circuit.Netlist.t -> Bus.t -> Bus.t -> Bus.t * Bus.t
(** Restoring division: (quotient, remainder).  Division by zero yields
    all-ones quotient, as in hardware dividers. *)

val csd_digits : int -> (int * int) list
(** CSD recoding of a constant: (shift, ±1) terms, exposed for tests. *)

val add_fast : Pytfhe_circuit.Netlist.t -> ?cin:Pytfhe_circuit.Netlist.id -> Bus.t -> Bus.t -> Bus.t
(** Kogge-Stone parallel-prefix addition: O(w log w) gates but O(log w)
    depth, against the ripple adder's O(w) gates and O(w) depth.  TFHE
    runtime on a single core tracks gate count, but the distributed and GPU
    backends track *depth* — the ablation bench quantifies the trade. *)

val shift_left_var : Pytfhe_circuit.Netlist.t -> Bus.t -> Bus.t -> Bus.t
(** Barrel shifter: shift [a] left by the unsigned amount bus; amounts at or
    beyond the width yield zero. *)

val shift_right_var : Pytfhe_circuit.Netlist.t -> Bus.t -> Bus.t -> Bus.t
(** Logical right barrel shift with the same saturation. *)

val div_s : Pytfhe_circuit.Netlist.t -> Bus.t -> Bus.t -> Bus.t
(** Signed division with truncation toward zero (C semantics); division by
    zero yields the all-ones pattern of {!div_u} with the quotient's sign
    applied. *)
