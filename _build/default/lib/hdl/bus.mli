(** Buses: ordered bundles of netlist wires, LSB first.

    This is the combinational hardware-construction layer standing in for
    Chisel: everything ChiselTorch emits is built from these primitives.
    Shape manipulations (slice, concat, extend, constant shifts) are pure
    wiring and cost zero gates — the property that lets the frontend compile
    [Flatten]/[reshape] away (paper §V-C). *)

type t = Pytfhe_circuit.Netlist.id array
(** Bit [0] is the least significant. *)

val width : t -> int

val input : Pytfhe_circuit.Netlist.t -> string -> int -> t
(** [input net name w] declares a [w]-bit primary input; individual wires
    are named [name.[i]]. *)

val output : Pytfhe_circuit.Netlist.t -> string -> t -> unit
(** Mark every bit of the bus as a primary output. *)

val const : Pytfhe_circuit.Netlist.t -> width:int -> int -> t
(** Two's-complement constant, truncated to [width] bits. *)

val bit : t -> int -> Pytfhe_circuit.Netlist.id
(** [bit b i] extracts wire [i]. *)

val msb : t -> Pytfhe_circuit.Netlist.id
(** The top (sign) bit. *)

val slice : t -> lo:int -> hi:int -> t
(** Wires [lo..hi] inclusive; free. *)

val concat : t -> t -> t
(** [concat low high]; free. *)

val zero_extend : Pytfhe_circuit.Netlist.t -> t -> int -> t
val sign_extend : Pytfhe_circuit.Netlist.t -> t -> int -> t

val resize_u : Pytfhe_circuit.Netlist.t -> t -> int -> t
(** Zero-extend or truncate to the requested width. *)

val resize_s : Pytfhe_circuit.Netlist.t -> t -> int -> t
(** Sign-extend or truncate to the requested width. *)

val bnot : Pytfhe_circuit.Netlist.t -> t -> t
val band : Pytfhe_circuit.Netlist.t -> t -> t -> t
val bor : Pytfhe_circuit.Netlist.t -> t -> t -> t
val bxor : Pytfhe_circuit.Netlist.t -> t -> t -> t

val reduce_and : Pytfhe_circuit.Netlist.t -> t -> Pytfhe_circuit.Netlist.id
val reduce_or : Pytfhe_circuit.Netlist.t -> t -> Pytfhe_circuit.Netlist.id
val reduce_xor : Pytfhe_circuit.Netlist.t -> t -> Pytfhe_circuit.Netlist.id

val mux : Pytfhe_circuit.Netlist.t -> Pytfhe_circuit.Netlist.id -> t -> t -> t
(** [mux net s x y] selects [x] when [s] is true, bitwise. *)

val shift_left : Pytfhe_circuit.Netlist.t -> t -> int -> t
(** Constant left shift within the same width (zeros in, free wiring). *)

val shift_right_logical : Pytfhe_circuit.Netlist.t -> t -> int -> t
val shift_right_arith : Pytfhe_circuit.Netlist.t -> t -> int -> t
