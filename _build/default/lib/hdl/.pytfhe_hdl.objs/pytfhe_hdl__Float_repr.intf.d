lib/hdl/float_repr.mli:
