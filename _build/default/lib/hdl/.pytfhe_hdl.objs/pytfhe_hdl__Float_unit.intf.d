lib/hdl/float_unit.mli: Bus Pytfhe_circuit
