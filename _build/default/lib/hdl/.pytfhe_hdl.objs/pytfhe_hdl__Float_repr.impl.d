lib/hdl/float_repr.ml: Float
