lib/hdl/bus.ml: Array Printf Pytfhe_circuit
