lib/hdl/bus.mli: Pytfhe_circuit
