lib/hdl/float_unit.ml: Arith Array Bus Float_repr List Pytfhe_circuit
