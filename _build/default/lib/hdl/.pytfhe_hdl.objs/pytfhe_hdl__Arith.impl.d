lib/hdl/arith.ml: Array Bus List Pytfhe_circuit Stdlib
