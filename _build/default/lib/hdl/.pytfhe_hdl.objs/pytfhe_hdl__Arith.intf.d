lib/hdl/arith.mli: Bus Pytfhe_circuit
