module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate

type fmt = { e : int; m : int }

let width fmt = fmt.e + fmt.m + 1

let const net fmt v = Bus.const net ~width:(width fmt) (Float_repr.encode ~e:fmt.e ~m:fmt.m v)

let sign_bit fmt (x : Bus.t) = x.(fmt.e + fmt.m)
let exp_field fmt x = Bus.slice x ~lo:fmt.m ~hi:(fmt.m + fmt.e - 1)
let mant_field fmt x = Bus.slice x ~lo:0 ~hi:(fmt.m - 1)

let is_zero net fmt x = Netlist.not_ net (Bus.reduce_or net (exp_field fmt x))

let neg net fmt x =
  Array.mapi (fun i w -> if i = fmt.e + fmt.m then Netlist.not_ net w else w) x

(* Significand with the hidden bit: m mantissa bits plus ¬zero on top. *)
let significand net fmt x =
  let hidden = Bus.reduce_or net (exp_field fmt x) in
  Array.append (mant_field fmt x) [| hidden |]

(* Clamp a signed extended exponent and assemble the final value.
   zero_flag forces the canonical zero encoding; underflow flushes to zero;
   overflow saturates to the largest finite value. *)
let finalize net fmt ~sign ~exp_s ~mant ~zero_flag =
  let e = fmt.e in
  let underflow = Arith.lt_s net exp_s (Bus.const net ~width:(Bus.width exp_s) 1) in
  let overflow = Arith.ge_s net exp_s (Bus.const net ~width:(Bus.width exp_s) (1 lsl e)) in
  let dead = Netlist.gate net Gate.Or zero_flag underflow in
  let field = Bus.slice exp_s ~lo:0 ~hi:(e - 1) in
  let ones_e = Bus.const net ~width:e ((1 lsl e) - 1) in
  let zeros_e = Bus.const net ~width:e 0 in
  let field = Bus.mux net overflow ones_e field in
  let field = Bus.mux net dead zeros_e field in
  let ones_m = Bus.const net ~width:fmt.m ((1 lsl fmt.m) - 1) in
  let zeros_m = Bus.const net ~width:fmt.m 0 in
  let mant = Bus.mux net overflow ones_m mant in
  let mant = Bus.mux net dead zeros_m mant in
  Array.append mant (Array.append field [| sign |])

(* Variable logical right shift, saturating to zero once the amount reaches
   the bus width. *)
let shift_right_var net value amount =
  let w = Bus.width value in
  let result = ref value in
  let too_big = ref (Netlist.const net false) in
  Array.iteri
    (fun i bit ->
      if 1 lsl i >= w then too_big := Netlist.gate net Gate.Or !too_big bit
      else result := Bus.mux net bit (Bus.shift_right_logical net !result (1 lsl i)) !result)
    amount;
  Bus.mux net !too_big (Bus.const net ~width:w 0) !result

(* Left-normalize so the MSB carries the leading one (for nonzero input);
   returns the normalized value and the shift amount. *)
let normalize net value =
  let w = Bus.width value in
  let stages =
    let rec powers k acc = if 1 lsl k >= w then acc else powers (k + 1) (k :: acc) in
    powers 0 []  (* descending *)
  in
  let lz_width = List.length stages + 1 in
  let lz = Array.make lz_width (Netlist.const net false) in
  let value = ref value in
  List.iter
    (fun k ->
      let s = 1 lsl k in
      let top = Bus.slice !value ~lo:(w - s) ~hi:(w - 1) in
      let cond = Netlist.not_ net (Bus.reduce_or net top) in
      lz.(k) <- cond;
      value := Bus.mux net cond (Bus.shift_left net !value s) !value)
    stages;
  (!value, lz)

let guard = 2

let add net fmt x y =
  let e = fmt.e and m = fmt.m in
  let sx = sign_bit fmt x and sy = sign_bit fmt y in
  let ex = exp_field fmt x and ey = exp_field fmt y in
  let fx = significand net fmt x and fy = significand net fmt y in
  (* Order the operands by magnitude: the concatenated (mantissa, exponent)
     field compares like the magnitude for normalized values. *)
  let key_x = Bus.slice x ~lo:0 ~hi:(e + m - 1) in
  let key_y = Bus.slice y ~lo:0 ~hi:(e + m - 1) in
  let swap = Arith.lt_u net key_x key_y in
  let e_large = Bus.mux net swap ey ex in
  let e_small = Bus.mux net swap ex ey in
  let f_large = Bus.mux net swap fy fx in
  let f_small = Bus.mux net swap fx fy in
  let s_large = Netlist.mux net swap sy sx in
  let s_small = Netlist.mux net swap sx sy in
  let ediff = Arith.sub net e_large e_small in
  let wl = m + 1 + guard in
  let widen f = Array.append (Array.make guard (Netlist.const net false)) f in
  let fl = widen f_large in
  let fs = shift_right_var net (widen f_small) ediff in
  let fl1 = Bus.zero_extend net fl (wl + 1) in
  let fs1 = Bus.zero_extend net fs (wl + 1) in
  let different = Netlist.gate net Gate.Xor s_large s_small in
  let mag = Bus.mux net different (Arith.sub net fl1 fs1) (Arith.add net fl1 fs1) in
  let w2 = wl + 1 in
  let norm, lz = normalize net mag in
  (* Value = mag · 2^{e_large − bias − m − guard}; after normalization the
     leading one sits at bit w2−1, so the exponent is e_large + 1 − lz. *)
  let exp_w = e + 2 in
  let exp_s =
    Arith.sub net
      (Arith.add net (Bus.zero_extend net e_large exp_w) (Bus.const net ~width:exp_w 1))
      (Bus.resize_u net lz exp_w)
  in
  let mant = Bus.slice norm ~lo:(w2 - 1 - m) ~hi:(w2 - 2) in
  let zero_flag = Netlist.not_ net (Bus.reduce_or net mag) in
  finalize net fmt ~sign:s_large ~exp_s ~mant ~zero_flag

let sub net fmt x y = add net fmt x (neg net fmt y)

let mul net fmt x y =
  let e = fmt.e and m = fmt.m in
  let sx = sign_bit fmt x and sy = sign_bit fmt y in
  let zx = is_zero net fmt x and zy = is_zero net fmt y in
  let fx = significand net fmt x and fy = significand net fmt y in
  let w2 = 2 * (m + 1) in
  let product = Arith.mul_u net ~out_width:w2 fx fy in
  let top = Bus.bit product (w2 - 1) in
  let mant_hi = Bus.slice product ~lo:(w2 - 1 - m) ~hi:(w2 - 2) in
  let mant_lo = Bus.slice product ~lo:(w2 - 2 - m) ~hi:(w2 - 3) in
  let mant = Bus.mux net top mant_hi mant_lo in
  let exp_w = e + 2 in
  let bias = Float_repr.bias ~e in
  let exp_sum = Arith.add net (Bus.zero_extend net (exp_field fmt x) exp_w)
      (Bus.zero_extend net (exp_field fmt y) exp_w) in
  let exp_sum = Arith.sub net exp_sum (Bus.const net ~width:exp_w bias) in
  let top_bus = Bus.zero_extend net [| top |] exp_w in
  let exp_s = Arith.add net exp_sum top_bus in
  let zero_flag = Netlist.gate net Gate.Or zx zy in
  let sign = Netlist.gate net Gate.Xor sx sy in
  finalize net fmt ~sign ~exp_s ~mant ~zero_flag

let mul_const net fmt x c = mul net fmt x (const net fmt c)

let relu net fmt x =
  let zero = const net fmt 0.0 in
  Bus.mux net (sign_bit fmt x) zero x

let lt net fmt x y =
  let e = fmt.e and m = fmt.m in
  let sx = sign_bit fmt x and sy = sign_bit fmt y in
  let key_x = Bus.slice x ~lo:0 ~hi:(e + m - 1) in
  let key_y = Bus.slice y ~lo:0 ~hi:(e + m - 1) in
  let lt_mag = Arith.lt_u net key_x key_y in
  let gt_mag = Arith.lt_u net key_y key_x in
  let zx = is_zero net fmt x and zy = is_zero net fmt y in
  let both_zero = Netlist.gate net Gate.And zx zy in
  let signs_differ = Netlist.gate net Gate.Xor sx sy in
  (* Signs differ: x < y iff x is the negative one (unless both zero).
     Same sign: compare magnitudes, flipped when both negative. *)
  let when_differ = Netlist.gate net Gate.Andyn sx both_zero in
  let when_same = Netlist.mux net sx gt_mag lt_mag in
  Netlist.mux net signs_differ when_differ when_same

let max_f net fmt x y = Bus.mux net (lt net fmt x y) y x
let min_f net fmt x y = Bus.mux net (lt net fmt x y) x y

let recip net fmt x =
  let e = fmt.e and m = fmt.m in
  let bias = Float_repr.bias ~e in
  (* Write x = s · m' · 2^{E+1} with m' ∈ [0.5, 1): the mantissa with its
     exponent field forced to bias − 1. *)
  let mant_half =
    Array.concat
      [ mant_field fmt x; Bus.const net ~width:e (bias - 1); [| Netlist.const net false |] ]
  in
  (* Newton-Raphson for 1/m': y <- y (2 - m' y), seeded with the classic
     linear estimate 48/17 − 32/17·m' (max relative error 1/17 on
     [0.5, 1]). *)
  let y0 =
    sub net fmt (const net fmt (48.0 /. 17.0)) (mul_const net fmt mant_half (32.0 /. 17.0))
  in
  let two = const net fmt 2.0 in
  let iterate y = mul net fmt y (sub net fmt two (mul net fmt mant_half y)) in
  let y = iterate (iterate (iterate y0)) in
  (* Scale by 2^{−E−1}: a power of two whose exponent field is
     2·bias − 1 − field(x).  finalize clamps the out-of-range cases (x = 0
     -> overflow saturation, huge x -> flush to zero). *)
  let exp_w = e + 2 in
  let scale_exp =
    Arith.sub net
      (Bus.const net ~width:exp_w ((2 * bias) - 1))
      (Bus.zero_extend net (exp_field fmt x) exp_w)
  in
  let zero_flag = is_zero net fmt x in
  let scale =
    finalize net fmt ~sign:(Netlist.const net false) ~exp_s:scale_exp
      ~mant:(Bus.const net ~width:m 0) ~zero_flag
  in
  let magnitude = mul net fmt y scale in
  (* reapply the sign of x *)
  Array.mapi (fun i w -> if i = e + m then sign_bit fmt x else w) magnitude

let div net fmt x y = mul net fmt x (recip net fmt y)
