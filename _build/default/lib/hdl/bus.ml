module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate

type t = Netlist.id array

let width = Array.length

let input net name w =
  Array.init w (fun i -> Netlist.input net (Printf.sprintf "%s[%d]" name i))

let output net name b =
  Array.iteri (fun i wire -> Netlist.mark_output net (Printf.sprintf "%s[%d]" name i) wire) b

let const net ~width v = Array.init width (fun i -> Netlist.const net ((v asr i) land 1 = 1))

let bit b i = b.(i)
let msb b = b.(Array.length b - 1)

let slice b ~lo ~hi =
  if lo < 0 || hi >= Array.length b || lo > hi then invalid_arg "Bus.slice";
  Array.sub b lo (hi - lo + 1)

let concat low high = Array.append low high

let zero_extend net b w =
  if w < width b then invalid_arg "Bus.zero_extend: narrower than the bus";
  Array.init w (fun i -> if i < width b then b.(i) else Netlist.const net false)

let sign_extend net b w =
  if w < width b then invalid_arg "Bus.sign_extend: narrower than the bus";
  ignore net;
  Array.init w (fun i -> if i < width b then b.(i) else msb b)

let resize_u net b w = if w <= width b then Array.sub b 0 w else zero_extend net b w
let resize_s net b w = if w <= width b then Array.sub b 0 w else sign_extend net b w

let bnot net b = Array.map (fun wire -> Netlist.not_ net wire) b

let map2 net g a b =
  if width a <> width b then invalid_arg "Bus: width mismatch";
  Array.map2 (fun x y -> Netlist.gate net g x y) a b

let band net = map2 net Gate.And
let bor net = map2 net Gate.Or
let bxor net = map2 net Gate.Xor

let reduce net g b =
  if width b = 0 then invalid_arg "Bus.reduce: empty bus";
  (* Balanced tree keeps the depth logarithmic. *)
  let rec level wires =
    match wires with
    | [ single ] -> single
    | _ ->
      let rec pair = function
        | a :: b :: rest -> Netlist.gate net g a b :: pair rest
        | [ a ] -> [ a ]
        | [] -> []
      in
      level (pair wires)
  in
  level (Array.to_list b)

let reduce_and net b = reduce net Gate.And b
let reduce_or net b = reduce net Gate.Or b
let reduce_xor net b = reduce net Gate.Xor b

let mux net s x y =
  if width x <> width y then invalid_arg "Bus.mux: width mismatch";
  Array.map2 (fun xb yb -> Netlist.mux net s xb yb) x y

let shift_left net b k =
  let w = width b in
  Array.init w (fun i -> if i < k then Netlist.const net false else b.(i - k))

let shift_right_logical net b k =
  let w = width b in
  Array.init w (fun i -> if i + k < w then b.(i + k) else Netlist.const net false)

let shift_right_arith net b k =
  ignore net;
  let w = width b in
  Array.init w (fun i -> if i + k < w then b.(i + k) else msb b)
