(** A minimal JSON reader/writer — enough for Yosys netlist interchange.

    Numbers are carried as floats (Yosys bit indices are small integers, so
    this is lossless in practice); object member order is preserved. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of { pos : int; message : string }

val parse : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val to_string : ?indent:bool -> t -> string

val member : string -> t -> t option
(** Object field lookup; [None] on missing field or non-object. *)

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
