type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of { pos : int; message : string }

let fail pos fmt = Printf.ksprintf (fun message -> raise (Parse_error { pos; message })) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some got when got = c -> st.pos <- st.pos + 1
  | Some got -> fail st.pos "expected %C, found %C" c got
  | None -> fail st.pos "expected %C, found end of input" c

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos "invalid literal"

let parse_string_raw st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then fail st.pos "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
      if st.pos >= String.length st.src then fail st.pos "unterminated escape";
      let e = st.src.[st.pos] in
      st.pos <- st.pos + 1;
      match e with
      | '"' -> Buffer.add_char buf '"'; go ()
      | '\\' -> Buffer.add_char buf '\\'; go ()
      | '/' -> Buffer.add_char buf '/'; go ()
      | 'n' -> Buffer.add_char buf '\n'; go ()
      | 't' -> Buffer.add_char buf '\t'; go ()
      | 'r' -> Buffer.add_char buf '\r'; go ()
      | 'b' -> Buffer.add_char buf '\b'; go ()
      | 'f' -> Buffer.add_char buf '\012'; go ()
      | 'u' ->
        if st.pos + 4 > String.length st.src then fail st.pos "bad unicode escape";
        let hex = String.sub st.src st.pos 4 in
        st.pos <- st.pos + 4;
        (match int_of_string_opt ("0x" ^ hex) with
        | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
        | Some _ -> Buffer.add_char buf '?' (* non-ASCII: placeholder *)
        | None -> fail st.pos "bad unicode escape");
        go ()
      | _ -> fail st.pos "unknown escape \\%c" e)
    | _ -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> Number f
  | None -> fail start "invalid number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let key = parse_string_raw st in
        skip_ws st;
        expect st ':';
        let value = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          members ((key, value) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev ((key, value) :: acc)
        | _ -> fail st.pos "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let rec elements acc =
        let value = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          elements (value :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (value :: acc)
        | _ -> fail st.pos "expected ',' or ']'"
      in
      List (elements [])
    end
  | Some '"' -> String (parse_string_raw st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail st.pos "trailing garbage";
  v

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = false) v =
  let buf = Buffer.create 1024 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let number f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%g" f
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Number f -> Buffer.add_string buf (number f)
    | String s -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (escape s))
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl ();
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl ();
          pad (depth + 1);
          Buffer.add_string buf (Printf.sprintf "\"%s\": " (escape k));
          go (depth + 1) v)
        members;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let member key = function Obj members -> List.assoc_opt key members | _ -> None

let to_int = function
  | Number f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
