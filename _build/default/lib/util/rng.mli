(** Deterministic pseudo-random number generation.

    All randomness in the framework flows through this module so that every
    experiment is reproducible from a seed.  The generator is xoshiro256++
    seeded through splitmix64, which is fast and has no measurable bias for
    the purposes of this simulator (cryptographic quality is irrelevant for a
    reproduction: the security of TFHE is not under evaluation here). *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a fresh generator.  The default seed is a fixed
    constant, so two runs of the same program draw identical streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams of
    the parent and child are independent for practical purposes. *)

val bits64 : t -> int64
(** 64 uniformly random bits. *)

val bits32 : t -> int
(** 32 uniformly random bits in the range [0, 2^32). *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be
    positive. *)

val bool : t -> bool
(** A uniformly random boolean. *)

val float : t -> float
(** Uniform in [0, 1). *)

val gaussian : t -> stdev:float -> float
(** A sample from a centred normal distribution with standard deviation
    [stdev] (Box–Muller). *)
