type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (max capacity 1) 0; len = 0 }

let length t = t.len

let check t i name = if i < 0 || i >= t.len then invalid_arg ("Growable." ^ name)

let get t i =
  check t i "get";
  Array.unsafe_get t.data i

let set t i x =
  check t i "set";
  Array.unsafe_set t.data i x

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) 0 in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t;
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let to_array t = Array.sub t.data 0 t.len

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (Array.unsafe_get t.data i)
  done

let clear t = t.len <- 0
