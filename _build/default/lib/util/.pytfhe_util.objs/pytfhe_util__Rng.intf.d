lib/util/rng.mli:
