lib/util/growable.mli:
