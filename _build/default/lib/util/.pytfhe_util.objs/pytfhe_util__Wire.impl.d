lib/util/wire.ml: Array Bool Buffer Bytes Char Fun Int32 Int64 Printf String Sys
