lib/util/json.mli:
