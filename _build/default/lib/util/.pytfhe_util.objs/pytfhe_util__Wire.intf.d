lib/util/wire.mli: Buffer
