(** Growable arrays of unboxed integers.

    The netlist representation stores millions of gates; a struct-of-arrays
    layout over these vectors keeps it compact and cache-friendly. *)

type t
(** A growable [int] vector. *)

val create : ?capacity:int -> unit -> t
(** Fresh empty vector. *)

val length : t -> int
(** Number of elements currently stored. *)

val get : t -> int -> int
(** [get v i] reads element [i]; raises [Invalid_argument] out of bounds. *)

val set : t -> int -> int -> unit
(** [set v i x] writes element [i]; raises [Invalid_argument] out of bounds. *)

val push : t -> int -> unit
(** Append one element, growing the backing store as needed. *)

val to_array : t -> int array
(** Snapshot of the contents as a fresh array. *)

val iteri : (int -> int -> unit) -> t -> unit
(** [iteri f v] applies [f index value] in index order. *)

val clear : t -> unit
(** Remove all elements (capacity is retained). *)
