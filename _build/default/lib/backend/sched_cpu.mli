(** The distributed CPU backend (paper §IV-D, Fig. 10).

    Implements the BFS wave schedule of Algorithm 1 over a simulated Ray
    cluster: every wave's ready gates are dispatched to [nodes ×
    workers_per_node] workers; dispatch is serialized through the central
    scheduler ([submit_time] per task, the effect that caps the measured
    60.5× below the ideal 72× on four nodes), each task pays the ciphertext
    transfer of Fig. 7, and each wave ends with a barrier.

    The simulation runs over the *real* levelized DAG, so serial workloads
    (NRSolver and friends) show exactly the poor scaling the paper
    reports. *)

type config = {
  nodes : int;
  cost : Cost_model.cpu;
}

type result = {
  workers : int;  (** nodes × workers_per_node. *)
  single_thread_time : float;  (** Seconds: bootstraps × gate time. *)
  makespan : float;  (** Simulated distributed execution time. *)
  speedup : float;  (** single_thread_time / makespan. *)
  ideal_speedup : float;  (** = workers. *)
  compute_time : float;  (** Portion of makespan doing gate compute. *)
  dispatch_time : float;  (** Portion bound by serialized submission. *)
  sync_time : float;  (** Barrier time across waves. *)
  startup_time : float;
}

val simulate : config -> Pytfhe_circuit.Levelize.schedule -> result
(** Pure cost simulation over a levelized DAG. *)

val run :
  config -> Pytfhe_circuit.Netlist.t -> bool array -> (string * bool) list * result
(** Execute the program functionally (bit-level) while accounting simulated
    time — what the real backend does, with the cluster replaced by the
    cost model. *)

val pp_result : Format.formatter -> result -> unit

val simulate_asap : config -> Pytfhe_circuit.Netlist.t -> result
(** Ablation of Algorithm 1's wave barriers: an event-driven list scheduler
    that starts every gate as soon as its fan-ins are done and a worker is
    free (still paying the serialized dispatch and per-task communication).
    The gap between this and {!simulate} is the price of the BFS barrier. *)
