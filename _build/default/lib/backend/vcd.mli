(** Value-change-dump (VCD) export of circuit evaluations.

    Evaluates a netlist over a sequence of input vectors and renders the
    input/output activity as a standard VCD waveform (viewable in GTKWave),
    one timestep per vector — the conventional way to debug a combinational
    design that is about to be burned into a few million bootstrapped
    gates. *)

val of_evaluation : Pytfhe_circuit.Netlist.t -> bool array list -> string
(** [of_evaluation net vectors] runs the circuit on each input vector (in
    declaration order) and dumps the primary inputs and outputs.  Raises
    [Invalid_argument] on an arity mismatch or an empty vector list. *)
