module Netlist = Pytfhe_circuit.Netlist
module Binary = Pytfhe_circuit.Binary

let run net ins = Netlist.eval_outputs net ins

let run_binary bytes ins =
  let net = Binary.parse bytes in
  List.map snd (Netlist.eval_outputs net ins) |> Array.of_list

let run_named net bindings =
  let ins =
    List.map
      (fun (name, _) ->
        match List.assoc_opt name bindings with
        | Some v -> v
        | None -> raise Not_found)
      (Netlist.inputs net)
  in
  Netlist.eval_outputs net (Array.of_list ins)
