(** Functional (plaintext) execution of TFHE programs.

    The simulated backends use this evaluator for the values while the cost
    model accounts for the time; it is also the reference the encrypted
    backend is checked against.  Works on netlists and on assembled PyTFHE
    binaries. *)

val run : Pytfhe_circuit.Netlist.t -> bool array -> (string * bool) list
(** Evaluate a netlist on inputs in declaration order. *)

val run_binary : bytes -> bool array -> bool array
(** Execute an assembled PyTFHE binary: inputs in instruction order, outputs
    in output-instruction order. *)

val run_named : Pytfhe_circuit.Netlist.t -> (string * bool) list -> (string * bool) list
(** Evaluate with inputs given by name; raises [Not_found] if an input is
    missing from the bindings. *)
