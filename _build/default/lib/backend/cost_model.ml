type cpu = {
  gate_time : float;
  blind_rotation_fraction : float;
  key_switch_fraction : float;
  comm_time : float;
  submit_time : float;
  sync_time : float;
  startup_time : float;
  workers_per_node : int;
}

type gpu = {
  gpu_name : string;
  slots : int;
  kernel_time : float;
  h2d_time : float;
  d2h_time : float;
  launch_time : float;
  graph_node_time : float;
}

(* Fig. 7: ~15 ms per gate on a Xeon Gold 5215 core, blind rotation
   dominating, key switching most of the rest, communication 0.094 %. *)
let paper_cpu =
  {
    gate_time = 14.8e-3;
    blind_rotation_fraction = 0.81;
    key_switch_fraction = 0.18;
    comm_time = 14e-6;
    submit_time = 0.20e-3;
    sync_time = 0.5e-3;
    startup_time = 1.5;
    workers_per_node = 18;
  }

let calibrated_cpu ~measured_gate_time = { paper_cpu with gate_time = measured_gate_time }

(* The GPU constants are fitted to the paper's speedups: Table IV gives the
   A5000 at ~71x and the 4090 at ~143x a single CPU core on MNIST_S, and
   Fig. 11 tops out around 61.5x over the per-gate cuFHE executor. *)
let gpu_a5000 =
  {
    gpu_name = "NVIDIA RTX A5000";
    slots = 64;
    kernel_time = 13.3e-3;
    h2d_time = 0.4e-3;
    d2h_time = 0.4e-3;
    launch_time = 0.1e-3;
    graph_node_time = 2.0e-6;
  }

let gpu_4090 =
  {
    gpu_name = "NVIDIA RTX 4090";
    slots = 128;
    kernel_time = 13.3e-3;
    h2d_time = 0.3e-3;
    d2h_time = 0.3e-3;
    launch_time = 0.1e-3;
    graph_node_time = 1.0e-6;
  }

let single_core_throughput cpu = 1.0 /. cpu.gate_time

let pp_cpu fmt c =
  Format.fprintf fmt
    "cpu model: gate=%.2f ms (blind rotation %.0f%%, key switch %.0f%%), comm=%.0f us, submit=%.0f us, %d workers/node"
    (c.gate_time *. 1e3)
    (100.0 *. c.blind_rotation_fraction)
    (100.0 *. c.key_switch_fraction)
    (c.comm_time *. 1e6) (c.submit_time *. 1e6) c.workers_per_node

let pp_gpu fmt g =
  Format.fprintf fmt "%s: %d slots, kernel=%.2f ms, h2d=%.2f ms, d2h=%.2f ms" g.gpu_name g.slots
    (g.kernel_time *. 1e3) (g.h2d_time *. 1e3) (g.d2h_time *. 1e3)
