(** Timing models for the execution backends.

    No Xeon cluster, A5000/4090 GPU or gigabit fabric exists in this
    container, so the distributed-CPU and GPU backends are discrete-event
    simulators over the real program DAG.  The constants here are the
    calibration: the defaults come from the paper's own measurements
    (Fig. 7: ≈15 ms per bootstrapped gate on one Xeon core with 0.094 %
    communication overhead; Fig. 8: serialized H2D/kernel/D2H in cuFHE;
    Table II/III platforms).  [calibrated_cpu] instead derives the gate time
    from a live measurement of this repository's own TFHE implementation, so
    every simulated figure can also be reproduced against real local
    numbers. *)

type cpu = {
  gate_time : float;  (** Seconds per bootstrapped gate on one core. *)
  blind_rotation_fraction : float;  (** Share of [gate_time] (Fig. 7). *)
  key_switch_fraction : float;
  comm_time : float;  (** Per-task ciphertext transfer time (Fig. 7). *)
  submit_time : float;  (** Central scheduler dispatch cost per task. *)
  sync_time : float;  (** Per-wave barrier latency. *)
  startup_time : float;  (** Actor launch + public-key broadcast. *)
  workers_per_node : int;  (** 18 usable workers per node (Fig. 10). *)
}

type gpu = {
  gpu_name : string;
  slots : int;  (** Concurrent bootstrapping slots (≈ SMs). *)
  kernel_time : float;  (** Seconds per bootstrapping kernel. *)
  h2d_time : float;  (** Host-to-device copy per ciphertext set. *)
  d2h_time : float;  (** Device-to-host copy per result. *)
  launch_time : float;  (** Per-launch driver overhead. *)
  graph_node_time : float;  (** CUDA-Graph build cost per node. *)
}

val paper_cpu : cpu
(** Calibrated to the paper's Xeon Gold 5215 platform. *)

val calibrated_cpu : measured_gate_time:float -> cpu
(** [paper_cpu] with the gate time replaced by a local measurement. *)

val gpu_a5000 : gpu
val gpu_4090 : gpu

val single_core_throughput : cpu -> float
(** Bootstrapped gates per second on one core. *)

val pp_cpu : Format.formatter -> cpu -> unit
val pp_gpu : Format.formatter -> gpu -> unit
