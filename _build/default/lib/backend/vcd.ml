module Netlist = Pytfhe_circuit.Netlist

(* Short printable VCD identifiers starting at '!' (code 33), switching to
   two-character codes past 94 signals. *)
let ident k =
  let alphabet = 94 in
  let rec go k acc =
    let c = Char.chr (33 + (k mod alphabet)) in
    let acc = String.make 1 c ^ acc in
    if k < alphabet then acc else go ((k / alphabet) - 1) acc
  in
  go k ""

let of_evaluation net vectors =
  (match vectors with [] -> invalid_arg "Vcd.of_evaluation: no input vectors" | _ -> ());
  let inputs = Netlist.inputs net in
  let outputs = Netlist.outputs net in
  let signals =
    List.mapi (fun i (name, _) -> (name, `Input i)) inputs
    @ List.mapi (fun i (name, _) -> (name, `Output i)) outputs
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date pytfhe $end\n$timescale 1ns $end\n$scope module top $end\n";
  List.iteri
    (fun k (name, _) ->
      Buffer.add_string buf (Printf.sprintf "$var wire 1 %s %s $end\n" (ident k) name))
    signals;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let previous : bool option array = Array.make (List.length signals) None in
  List.iteri
    (fun step ins ->
      let out_values = Netlist.eval_outputs net ins in
      let values =
        List.mapi
          (fun k (_, role) ->
            match role with
            | `Input i ->
              if i >= Array.length ins then invalid_arg "Vcd.of_evaluation: arity mismatch";
              (k, ins.(i))
            | `Output i -> (k, snd (List.nth out_values i)))
          signals
      in
      let changes = List.filter (fun (k, v) -> previous.(k) <> Some v) values in
      if changes <> [] || step = 0 then begin
        Buffer.add_string buf (Printf.sprintf "#%d\n" step);
        List.iter
          (fun (k, v) ->
            previous.(k) <- Some v;
            Buffer.add_string buf (Printf.sprintf "%d%s\n" (Bool.to_int v) (ident k)))
          changes
      end)
    vectors;
  Buffer.contents buf
