lib/backend/tfhe_eval.ml: Array Gates List Lwe Option Pytfhe_circuit Pytfhe_tfhe Unix
