lib/backend/tfhe_eval.mli: Pytfhe_circuit Pytfhe_tfhe
