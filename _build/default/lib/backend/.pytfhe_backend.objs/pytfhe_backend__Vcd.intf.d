lib/backend/vcd.mli: Pytfhe_circuit
