lib/backend/sched_gpu.ml: Array Cost_model Float Format Fun Hashtbl List Option Pytfhe_circuit
