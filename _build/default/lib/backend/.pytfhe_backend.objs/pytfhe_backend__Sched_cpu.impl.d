lib/backend/sched_cpu.ml: Array Cost_model Float Format Pytfhe_circuit
