lib/backend/vcd.ml: Array Bool Buffer Char List Printf Pytfhe_circuit String
