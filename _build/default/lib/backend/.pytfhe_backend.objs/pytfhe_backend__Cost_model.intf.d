lib/backend/cost_model.mli: Format
