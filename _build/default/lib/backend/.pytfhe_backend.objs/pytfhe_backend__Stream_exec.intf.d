lib/backend/stream_exec.mli: Pytfhe_circuit Pytfhe_tfhe
