lib/backend/sched_gpu.mli: Cost_model Format Pytfhe_circuit
