lib/backend/stream_exec.ml: Array List Pytfhe_circuit Tfhe_eval
