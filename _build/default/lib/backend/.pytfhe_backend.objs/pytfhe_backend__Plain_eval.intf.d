lib/backend/plain_eval.mli: Pytfhe_circuit
