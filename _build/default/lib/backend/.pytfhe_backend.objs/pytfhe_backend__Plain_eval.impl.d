lib/backend/plain_eval.ml: Array List Pytfhe_circuit
