lib/backend/sched_cpu.mli: Cost_model Format Pytfhe_circuit
