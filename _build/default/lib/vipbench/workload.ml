module Netlist = Pytfhe_circuit.Netlist

type parallelism = Wide | Serial | Mixed

type t = {
  name : string;
  description : string;
  parallelism : parallelism;
  heavy : bool;
  circuit : unit -> Netlist.t;
  verify : Pytfhe_util.Rng.t -> bool;
}

let make ~name ~description ~parallelism ?(heavy = false) ~circuit ~verify () =
  { name; description; parallelism; heavy; circuit; verify }

let pack ~widths values =
  if List.length widths <> List.length values then invalid_arg "Workload.pack: arity mismatch";
  let bits =
    List.concat_map
      (fun (w, v) -> List.init w (fun i -> (v asr i) land 1 = 1))
      (List.combine widths values)
  in
  Array.of_list bits

let unpack ~widths outputs =
  let bits = List.map snd outputs in
  let rec take n l =
    if n = 0 then ([], l)
    else
      match l with
      | [] -> invalid_arg "Workload.unpack: not enough output bits"
      | x :: rest ->
        let taken, remaining = take (n - 1) rest in
        (x :: taken, remaining)
  in
  let rec go widths bits =
    match widths with
    | [] -> if bits = [] then [] else invalid_arg "Workload.unpack: leftover output bits"
    | w :: rest ->
      let taken, remaining = take w bits in
      (* bits are LSB first: fold from the MSB end *)
      let value = List.fold_left (fun acc b -> (acc * 2) + Bool.to_int b) 0 (List.rev taken) in
      value :: go rest remaining
  in
  go widths bits

let eval_packed net ~in_widths ~in_values ~out_widths =
  let ins = pack ~widths:in_widths in_values in
  unpack ~widths:out_widths (Netlist.eval_outputs net ins)
