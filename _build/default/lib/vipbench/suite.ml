let kernels = Kernels.all
let networks = Networks.all

let all = kernels @ networks

let light = List.filter (fun w -> not w.Workload.heavy) all

let paper_set =
  (* The instances the paper's figures evaluate: drop the test-only _tiny
     variants and the extension workloads that are not in the paper. *)
  let excluded w =
    let n = w.Workload.name in
    n = "lenet"
    || (String.length n > 5 && String.sub n (String.length n - 5) 5 = "_tiny")
  in
  kernels @ List.filter (fun w -> not (excluded w)) networks

let find name = List.find_opt (fun w -> w.Workload.name = name) all
