(** The benchmark registry: 17 VIP-Bench-style kernels, the MNIST_S/M/L
    CNNs, the Attention_S/L layers, and scaled-down [_tiny] variants for
    fast functional testing. *)

val kernels : Workload.t list
val networks : Workload.t list

val all : Workload.t list
(** Every workload. *)

val light : Workload.t list
(** Workloads cheap enough for the unit-test sweep. *)

val paper_set : Workload.t list
(** The instances the paper's Figs. 10/11 evaluate (kernels + MNIST S/M/L +
    Attention S/L, no [_tiny] variants). *)

val find : string -> Workload.t option
(** Look a workload up by name. *)
