(** Workload registry for the evaluation (paper §V-A).

    Every benchmark is a circuit generator paired with a plaintext reference
    implementation; [verify] builds the circuit, drives it with random
    inputs, and compares every output bit against the reference — the same
    methodology as the pre-built/validated Chisel modules of §IV-B. *)

type parallelism =
  | Wide  (** Scales across workers/SMs (e.g. image filters, NNs). *)
  | Serial  (** Mostly sequential dataflow (e.g. NRSolver, Parrondo). *)
  | Mixed

type t = {
  name : string;
  description : string;
  parallelism : parallelism;
  heavy : bool;  (** Too large for the default unit-test sweep. *)
  circuit : unit -> Pytfhe_circuit.Netlist.t;
  verify : Pytfhe_util.Rng.t -> bool;
      (** Build + run on random inputs, compare with the reference. *)
}

val make :
  name:string -> description:string -> parallelism:parallelism -> ?heavy:bool ->
  circuit:(unit -> Pytfhe_circuit.Netlist.t) -> verify:(Pytfhe_util.Rng.t -> bool) -> unit -> t

(** Bit-packing helpers shared by benchmark verifiers. *)

val pack : widths:int list -> int list -> bool array
(** Pack integer values into input bits (LSB first per value, values in
    declaration order). *)

val unpack : widths:int list -> (string * bool) list -> int list
(** Group evaluated output bits back into unsigned integers. *)

val eval_packed :
  Pytfhe_circuit.Netlist.t -> in_widths:int list -> in_values:int list -> out_widths:int list ->
  int list
(** Convenience: pack, evaluate, unpack. *)
