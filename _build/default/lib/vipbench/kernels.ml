(* The non-neural VIP-Bench workloads: each pairs a circuit generator with a
   plaintext reference used by [verify].  Sizes are chosen to span the same
   orders of magnitude as the paper's Fig. 10/11 x-axis. *)

module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate
open Pytfhe_hdl
open Pytfhe_chiseltorch
module Rng = Pytfhe_util.Rng

let mask w v = v land ((1 lsl w) - 1)

let trials = 4

let check_cases rng ~net ~in_widths ~out_widths ~gen ~reference =
  let ok = ref true in
  for _ = 1 to trials do
    let in_values = gen rng in
    let got = Workload.eval_packed net ~in_widths ~in_values ~out_widths in
    if got <> reference in_values then ok := false
  done;
  !ok

(* Unsigned compare-and-swap, the bubble-sort cell. *)
let min_max_u net a b =
  let lt = Arith.lt_u net a b in
  (Bus.mux net lt a b, Bus.mux net lt b a)

let popcount net bus =
  let rec level = function
    | [ single ] -> single
    | items ->
      let rec pair = function
        | a :: b :: rest ->
          let w = max (Bus.width a) (Bus.width b) + 1 in
          Arith.add net (Bus.zero_extend net a w) (Bus.zero_extend net b w) :: pair rest
        | [ a ] -> [ a ]
        | [] -> []
      in
      level (pair items)
  in
  level (Array.to_list (Array.map (fun bit -> [| bit |]) bus))

(* ------------------------------------------------------------------ *)

let hamming_distance =
  let n = 32 in
  let circuit () =
    let net = Netlist.create () in
    let a = Bus.input net "a" n in
    let b = Bus.input net "b" n in
    Bus.output net "dist" (popcount net (Bus.bxor net a b));
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net ~in_widths:[ n; n ]
      ~out_widths:[ 6 ]
      ~gen:(fun rng -> [ Rng.int rng (1 lsl n); Rng.int rng (1 lsl n) ])
      ~reference:(fun vs ->
        match vs with
        | [ a; b ] ->
          let x = a lxor b in
          let rec pop v = if v = 0 then 0 else (v land 1) + pop (v lsr 1) in
          [ pop x ]
        | _ -> assert false)
  in
  Workload.make ~name:"hamming_distance" ~description:"popcount of the XOR of two 32-bit vectors"
    ~parallelism:Workload.Wide ~circuit ~verify ()

let dot_product =
  let n = 8 and w = 8 and out = 16 in
  let circuit () =
    let net = Netlist.create () in
    let xs = Array.init n (fun i -> Bus.input net (Printf.sprintf "x%d" i) w) in
    let ys = Array.init n (fun i -> Bus.input net (Printf.sprintf "y%d" i) w) in
    let products = Array.map2 (fun x y -> Arith.mul_s net ~out_width:out x y) xs ys in
    let total = Array.fold_left (fun acc p -> Arith.add net acc p) (Bus.const net ~width:out 0) products in
    Bus.output net "dot" total;
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net
      ~in_widths:(List.init (2 * n) (fun _ -> w))
      ~out_widths:[ out ]
      ~gen:(fun rng -> List.init (2 * n) (fun _ -> Rng.int rng (1 lsl w)))
      ~reference:(fun vs ->
        let signed v = if v >= 1 lsl (w - 1) then v - (1 lsl w) else v in
        let xs = List.filteri (fun i _ -> i < n) vs in
        let ys = List.filteri (fun i _ -> i >= n) vs in
        [ mask out (List.fold_left2 (fun acc x y -> acc + (signed x * signed y)) 0 xs ys) ])
  in
  Workload.make ~name:"dot_product" ~description:"inner product of two 8-element SInt(8) vectors"
    ~parallelism:Workload.Wide ~circuit ~verify ()

let bubble_sort =
  let n = 8 and w = 8 in
  let circuit () =
    let net = Netlist.create () in
    let xs = Array.init n (fun i -> Bus.input net (Printf.sprintf "x%d" i) w) in
    for i = 0 to n - 2 do
      for j = 0 to n - 2 - i do
        let lo, hi = min_max_u net xs.(j) xs.(j + 1) in
        xs.(j) <- lo;
        xs.(j + 1) <- hi
      done
    done;
    Array.iteri (fun i x -> Bus.output net (Printf.sprintf "s%d" i) x) xs;
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net
      ~in_widths:(List.init n (fun _ -> w))
      ~out_widths:(List.init n (fun _ -> w))
      ~gen:(fun rng -> List.init n (fun _ -> Rng.int rng (1 lsl w)))
      ~reference:(fun vs -> List.sort compare vs)
  in
  Workload.make ~name:"bubble_sort" ~description:"bubble sort network over 8 UInt(8) values"
    ~parallelism:Workload.Mixed ~circuit ~verify ()

let distinctness =
  let n = 8 and w = 8 in
  let circuit () =
    let net = Netlist.create () in
    let xs = Array.init n (fun i -> Bus.input net (Printf.sprintf "x%d" i) w) in
    let dup = ref (Netlist.const net false) in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        dup := Netlist.gate net Gate.Or !dup (Arith.eq net xs.(i) xs.(j))
      done
    done;
    Netlist.mark_output net "dup" !dup;
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net
      ~in_widths:(List.init n (fun _ -> w))
      ~out_widths:[ 1 ]
      ~gen:(fun rng -> List.init n (fun _ -> Rng.int rng 16))
      (* narrow range to actually hit duplicates *)
      ~reference:(fun vs ->
        let sorted = List.sort compare vs in
        let rec has_dup = function
          | a :: b :: rest -> a = b || has_dup (b :: rest)
          | _ -> false
        in
        [ Bool.to_int (has_dup sorted) ])
  in
  Workload.make ~name:"distinctness" ~description:"detect duplicates among 8 UInt(8) values"
    ~parallelism:Workload.Wide ~circuit ~verify ()

let edit_distance =
  let n = 6 and sym_w = 2 and cell_w = 4 in
  let circuit () =
    let net = Netlist.create () in
    let s = Array.init n (fun i -> Bus.input net (Printf.sprintf "s%d" i) sym_w) in
    let t = Array.init n (fun i -> Bus.input net (Printf.sprintf "t%d" i) sym_w) in
    let const v = Bus.const net ~width:cell_w v in
    let one = const 1 in
    let min3 a b c =
      let m1 = Bus.mux net (Arith.lt_u net a b) a b in
      Bus.mux net (Arith.lt_u net m1 c) m1 c
    in
    let d = Array.make_matrix (n + 1) (n + 1) (const 0) in
    for i = 0 to n do
      d.(i).(0) <- const i;
      d.(0).(i) <- const i
    done;
    for i = 1 to n do
      for j = 1 to n do
        let subst_cost = Bus.zero_extend net [| Arith.ne net s.(i - 1) t.(j - 1) |] cell_w in
        let del = Arith.add net d.(i - 1).(j) one in
        let ins = Arith.add net d.(i).(j - 1) one in
        let sub = Arith.add net d.(i - 1).(j - 1) subst_cost in
        d.(i).(j) <- min3 del ins sub
      done
    done;
    Bus.output net "dist" d.(n).(n);
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net
      ~in_widths:(List.init (2 * n) (fun _ -> sym_w))
      ~out_widths:[ cell_w ]
      ~gen:(fun rng -> List.init (2 * n) (fun _ -> Rng.int rng 4))
      ~reference:(fun vs ->
        let s = Array.of_list (List.filteri (fun i _ -> i < n) vs) in
        let t = Array.of_list (List.filteri (fun i _ -> i >= n) vs) in
        let d = Array.make_matrix (n + 1) (n + 1) 0 in
        for i = 0 to n do
          d.(i).(0) <- i;
          d.(0).(i) <- i
        done;
        for i = 1 to n do
          for j = 1 to n do
            let cost = if s.(i - 1) = t.(j - 1) then 0 else 1 in
            d.(i).(j) <- min (min (d.(i - 1).(j) + 1) (d.(i).(j - 1) + 1)) (d.(i - 1).(j - 1) + cost)
          done
        done;
        [ d.(n).(n) ])
  in
  Workload.make ~name:"edit_distance" ~description:"Levenshtein DP over two length-6 strings"
    ~parallelism:Workload.Mixed ~circuit ~verify ()

(* Shared by the iterative fixed-point benchmarks. *)
let fixed = Dtype.Fixed { width = 16; frac = 8 }
let fixed_w = 16

let eulers_approx =
  (* e^x by a degree-7 Taylor series in Horner form: a long serial chain of
     encrypted multiplications, matching the paper's "mostly serial". *)
  let degree = 7 in
  let coeff k =
    let rec fact n = if n <= 1 then 1.0 else float_of_int n *. fact (n - 1) in
    1.0 /. fact k
  in
  let circuit () =
    let net = Netlist.create () in
    let x = Bus.input net "x" fixed_w in
    let acc = ref (Scalar.const net fixed (coeff degree)) in
    for k = degree - 1 downto 0 do
      acc := Scalar.add net fixed (Scalar.mul net fixed !acc x) (Scalar.const net fixed (coeff k))
    done;
    Bus.output net "exp" !acc;
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net ~in_widths:[ fixed_w ] ~out_widths:[ fixed_w ]
      ~gen:(fun rng -> [ Rng.int rng (1 lsl fixed_w) ])
      ~reference:(fun vs ->
        match vs with
        | [ x ] ->
          let acc = ref (Dtype.encode fixed (coeff degree)) in
          for k = degree - 1 downto 0 do
            acc := Scalar.ref_add fixed (Scalar.ref_mul fixed !acc x) (Dtype.encode fixed (coeff k))
          done;
          [ !acc ]
        | _ -> assert false)
  in
  Workload.make ~name:"eulers_approx" ~description:"e^x Taylor approximation in Fixed(16,8)"
    ~parallelism:Workload.Serial ~circuit ~verify ()

let nr_solver =
  (* Newton-Raphson reciprocal: x <- x (2 - a x), five iterations. *)
  let iters = 5 in
  let circuit () =
    let net = Netlist.create () in
    let a = Bus.input net "a" fixed_w in
    let two = Scalar.const net fixed 2.0 in
    let x = ref (Scalar.const net fixed 1.0) in
    for _ = 1 to iters do
      let ax = Scalar.mul net fixed a !x in
      x := Scalar.mul net fixed !x (Scalar.sub net fixed two ax)
    done;
    Bus.output net "recip" !x;
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net ~in_widths:[ fixed_w ] ~out_widths:[ fixed_w ]
      ~gen:(fun rng -> [ Rng.int rng (1 lsl fixed_w) ])
      ~reference:(fun vs ->
        match vs with
        | [ a ] ->
          let two = Dtype.encode fixed 2.0 in
          let x = ref (Dtype.encode fixed 1.0) in
          for _ = 1 to iters do
            let ax = Scalar.ref_mul fixed a !x in
            x := Scalar.ref_mul fixed !x (Scalar.ref_sub fixed two ax)
          done;
          [ !x ]
        | _ -> assert false)
  in
  Workload.make ~name:"nr_solver" ~description:"Newton-Raphson reciprocal, 5 iterations"
    ~parallelism:Workload.Serial ~circuit ~verify ()

let gradient_descent =
  let iters = 8 in
  let rate = 0.25 in
  let circuit () =
    let net = Netlist.create () in
    let target = Bus.input net "t" fixed_w in
    let x = ref (Scalar.const net fixed 0.0) in
    for _ = 1 to iters do
      let diff = Scalar.sub net fixed target !x in
      x := Scalar.add net fixed !x (Scalar.mul_scalar net fixed diff rate)
    done;
    Bus.output net "x" !x;
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net ~in_widths:[ fixed_w ] ~out_widths:[ fixed_w ]
      ~gen:(fun rng -> [ Rng.int rng (1 lsl fixed_w) ])
      ~reference:(fun vs ->
        match vs with
        | [ t ] ->
          let x = ref (Dtype.encode fixed 0.0) in
          for _ = 1 to iters do
            let diff = Scalar.ref_sub fixed t !x in
            x := Scalar.ref_add fixed !x (Scalar.ref_mul_scalar fixed diff rate)
          done;
          [ !x ]
        | _ -> assert false)
  in
  Workload.make ~name:"gradient_descent" ~description:"gradient descent on a quadratic, 8 steps"
    ~parallelism:Workload.Serial ~circuit ~verify ()

let parrondo =
  let rounds = 16 and w = 8 in
  let circuit () =
    let net = Netlist.create () in
    let coins = Bus.input net "coins" rounds in
    let capital = ref (Bus.const net ~width:w 0) in
    for r = 0 to rounds - 1 do
      let coin = Bus.bit coins r in
      let delta =
        if r mod 2 = 0 then
          (* game A: win +1, lose -1 *)
          Bus.mux net coin (Bus.const net ~width:w 1) (Bus.const net ~width:w (-1))
        else begin
          (* game B: payout depends on the capital's parity *)
          let even = Netlist.not_ net (Bus.bit !capital 0) in
          let if_even = Bus.mux net coin (Bus.const net ~width:w 2) (Bus.const net ~width:w (-1)) in
          let if_odd = Bus.mux net coin (Bus.const net ~width:w 1) (Bus.const net ~width:w (-2)) in
          Bus.mux net even if_even if_odd
        end
      in
      capital := Arith.add net !capital delta
    done;
    Bus.output net "capital" !capital;
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net ~in_widths:[ rounds ] ~out_widths:[ w ]
      ~gen:(fun rng -> [ Rng.int rng (1 lsl rounds) ])
      ~reference:(fun vs ->
        match vs with
        | [ coins ] ->
          let capital = ref 0 in
          for r = 0 to rounds - 1 do
            let coin = (coins asr r) land 1 = 1 in
            let delta =
              if r mod 2 = 0 then if coin then 1 else -1
              else if mask w !capital land 1 = 0 then if coin then 2 else -1
              else if coin then 1
              else -2
            in
            capital := mask w (!capital + delta)
          done;
          [ !capital ]
        | _ -> assert false)
  in
  Workload.make ~name:"parrondo" ~description:"Parrondo's paradox over 16 encrypted coin flips"
    ~parallelism:Workload.Serial ~circuit ~verify ()

let image_dim = 8

let rc_edge_detection =
  let d = image_dim and w = 8 in
  let circuit () =
    let net = Netlist.create () in
    let px = Array.init (d * d) (fun i -> Bus.input net (Printf.sprintf "p%d" i) w) in
    let at i j = px.((i * d) + j) in
    for i = 0 to d - 2 do
      for j = 0 to d - 2 do
        let wide b = Bus.zero_extend net b (w + 1) in
        let gx = Arith.abs net (Arith.sub net (wide (at i j)) (wide (at (i + 1) (j + 1)))) in
        let gy = Arith.abs net (Arith.sub net (wide (at (i + 1) j)) (wide (at i (j + 1)))) in
        let mag = Arith.add net (Bus.zero_extend net gx (w + 2)) (Bus.zero_extend net gy (w + 2)) in
        Bus.output net (Printf.sprintf "e_%d_%d" i j) mag
      done
    done;
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net
      ~in_widths:(List.init (d * d) (fun _ -> w))
      ~out_widths:(List.init ((d - 1) * (d - 1)) (fun _ -> w + 2))
      ~gen:(fun rng -> List.init (d * d) (fun _ -> Rng.int rng (1 lsl w)))
      ~reference:(fun vs ->
        let px = Array.of_list vs in
        let at i j = px.((i * d) + j) in
        List.concat
          (List.init (d - 1) (fun i ->
               List.init (d - 1) (fun j ->
                   abs (at i j - at (i + 1) (j + 1)) + abs (at (i + 1) j - at i (j + 1))))))
  in
  Workload.make ~name:"rc_edge_detection"
    ~description:"Roberts-Cross edge detection on an 8x8 UInt(8) image" ~parallelism:Workload.Wide
    ~circuit ~verify ()

let box_blur =
  let d = image_dim and w = 8 and out_w = 12 in
  let circuit () =
    let net = Netlist.create () in
    let px = Array.init (d * d) (fun i -> Bus.input net (Printf.sprintf "p%d" i) w) in
    let at i j = Bus.zero_extend net px.((i * d) + j) out_w in
    for i = 0 to d - 3 do
      for j = 0 to d - 3 do
        let acc = ref (Bus.const net ~width:out_w 0) in
        for di = 0 to 2 do
          for dj = 0 to 2 do
            acc := Arith.add net !acc (at (i + di) (j + dj))
          done
        done;
        Bus.output net (Printf.sprintf "b_%d_%d" i j) (Scalar.div_const net (Dtype.UInt out_w) !acc 9)
      done
    done;
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net
      ~in_widths:(List.init (d * d) (fun _ -> w))
      ~out_widths:(List.init ((d - 2) * (d - 2)) (fun _ -> out_w))
      ~gen:(fun rng -> List.init (d * d) (fun _ -> Rng.int rng (1 lsl w)))
      ~reference:(fun vs ->
        let px = Array.of_list vs in
        List.concat
          (List.init (d - 2) (fun i ->
               List.init (d - 2) (fun j ->
                   let sum = ref 0 in
                   for di = 0 to 2 do
                     for dj = 0 to 2 do
                       sum := !sum + px.(((i + di) * d) + j + dj)
                     done
                   done;
                   Scalar.ref_div_const (Dtype.UInt out_w) !sum 9))))
  in
  Workload.make ~name:"box_blur" ~description:"3x3 box blur over an 8x8 UInt(8) image"
    ~parallelism:Workload.Wide ~circuit ~verify ()

let filtered_query =
  let n = 16 and vw = 8 and cw = 3 and out_w = 12 in
  let circuit () =
    let net = Netlist.create () in
    let values = Array.init n (fun i -> Bus.input net (Printf.sprintf "v%d" i) vw) in
    let cats = Array.init n (fun i -> Bus.input net (Printf.sprintf "c%d" i) cw) in
    let query = Bus.input net "q" cw in
    let zero = Bus.const net ~width:out_w 0 in
    let acc = ref zero in
    for i = 0 to n - 1 do
      let hit = Arith.eq net cats.(i) query in
      let contrib = Bus.mux net hit (Bus.zero_extend net values.(i) out_w) zero in
      acc := Arith.add net !acc contrib
    done;
    Bus.output net "sum" !acc;
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net
      ~in_widths:(List.init n (fun _ -> vw) @ List.init n (fun _ -> cw) @ [ cw ])
      ~out_widths:[ out_w ]
      ~gen:(fun rng ->
        List.init n (fun _ -> Rng.int rng (1 lsl vw))
        @ List.init n (fun _ -> Rng.int rng (1 lsl cw))
        @ [ Rng.int rng (1 lsl cw) ])
      ~reference:(fun vs ->
        let arr = Array.of_list vs in
        let q = arr.((2 * n)) in
        let sum = ref 0 in
        for i = 0 to n - 1 do
          if arr.(n + i) = q then sum := !sum + arr.(i)
        done;
        [ mask out_w !sum ])
  in
  Workload.make ~name:"filtered_query" ~description:"sum of matching records in a 16-row table"
    ~parallelism:Workload.Wide ~circuit ~verify ()

let knn =
  let n = 8 and w = 8 in
  let circuit () =
    let net = Netlist.create () in
    let pts = Array.init n (fun i ->
        (* explicit sequencing: tuple components evaluate right-to-left *)
        let x = Bus.input net (Printf.sprintf "x%d" i) w in
        let y = Bus.input net (Printf.sprintf "y%d" i) w in
        (x, y))
    in
    let qx = Bus.input net "qx" w in
    let qy = Bus.input net "qy" w in
    let dist (x, y) =
      let wide b = Bus.sign_extend net b (w + 1) in
      let dx = Arith.abs net (Arith.sub net (wide x) (wide qx)) in
      let dy = Arith.abs net (Arith.sub net (wide y) (wide qy)) in
      Arith.add net (Bus.zero_extend net dx (w + 2)) (Bus.zero_extend net dy (w + 2))
    in
    let dists = Array.map dist pts in
    let best = ref dists.(0) in
    let best_idx = ref (Bus.const net ~width:3 0) in
    for i = 1 to n - 1 do
      let closer = Arith.lt_u net dists.(i) !best in
      best := Bus.mux net closer dists.(i) !best;
      best_idx := Bus.mux net closer (Bus.const net ~width:3 i) !best_idx
    done;
    Bus.output net "nn" !best_idx;
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net
      ~in_widths:(List.concat (List.init n (fun _ -> [ w; w ])) @ [ w; w ])
      ~out_widths:[ 3 ]
      ~gen:(fun rng -> List.init ((2 * n) + 2) (fun _ -> Rng.int rng (1 lsl w)))
      ~reference:(fun vs ->
        let arr = Array.of_list vs in
        let signed v = if v >= 1 lsl (w - 1) then v - (1 lsl w) else v in
        let qx = signed arr.(2 * n) and qy = signed arr.((2 * n) + 1) in
        let best = ref max_int and best_i = ref 0 in
        for i = 0 to n - 1 do
          let d = abs (signed arr.(2 * i) - qx) + abs (signed arr.((2 * i) + 1) - qy) in
          if d < !best then begin
            best := d;
            best_i := i
          end
        done;
        [ !best_i ])
  in
  Workload.make ~name:"knn" ~description:"1-nearest-neighbour among 8 SInt(8) points (L1)"
    ~parallelism:Workload.Mixed ~circuit ~verify ()

let linear_regression =
  let n = 8 and w = 8 and out_w = 12 in
  let circuit () =
    let net = Netlist.create () in
    let ys = Array.init n (fun i -> Bus.input net (Printf.sprintf "y%d" i) w) in
    (* x_i = i; slope numerator = sum (2 x_i - (n-1)) y_i (doubled to stay
       integral), intercept numerator = sum y_i. *)
    let num = ref (Bus.const net ~width:out_w 0) in
    let total = ref (Bus.const net ~width:out_w 0) in
    Array.iteri
      (fun i y ->
        let c = (2 * i) - (n - 1) in
        num := Arith.add net !num (Arith.mul_const_s net ~out_width:out_w y c);
        total := Arith.add net !total (Bus.sign_extend net y out_w))
      ys;
    Bus.output net "slope_num" !num;
    Bus.output net "sum" !total;
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net
      ~in_widths:(List.init n (fun _ -> w))
      ~out_widths:[ out_w; out_w ]
      ~gen:(fun rng -> List.init n (fun _ -> Rng.int rng (1 lsl w)))
      ~reference:(fun vs ->
        let signed v = if v >= 1 lsl (w - 1) then v - (1 lsl w) else v in
        let num = ref 0 and total = ref 0 in
        List.iteri
          (fun i y ->
            num := !num + (((2 * i) - (n - 1)) * signed y);
            total := !total + signed y)
          vs;
        [ mask out_w !num; mask out_w !total ])
  in
  Workload.make ~name:"linear_regression"
    ~description:"least-squares slope/intercept numerators over 8 samples" ~parallelism:Workload.Wide
    ~circuit ~verify ()

let string_search =
  let hay = 16 and needle = 4 and w = 8 in
  let circuit () =
    let net = Netlist.create () in
    let h = Array.init hay (fun i -> Bus.input net (Printf.sprintf "h%d" i) w) in
    let nd = Array.init needle (fun i -> Bus.input net (Printf.sprintf "n%d" i) w) in
    let windows = hay - needle + 1 in
    let matches =
      Array.init windows (fun o ->
          let eqs = Array.init needle (fun k -> Arith.eq net h.(o + k) nd.(k)) in
          Bus.reduce_and net eqs)
    in
    let found = Bus.reduce_or net matches in
    let idx = ref (Bus.const net ~width:4 15) in
    for o = windows - 1 downto 0 do
      idx := Bus.mux net matches.(o) (Bus.const net ~width:4 o) !idx
    done;
    Netlist.mark_output net "found" found;
    Bus.output net "index" !idx;
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net
      ~in_widths:(List.init (hay + needle) (fun _ -> w))
      ~out_widths:[ 1; 4 ]
      ~gen:(fun rng ->
        (* Small alphabet so matches actually occur. *)
        List.init (hay + needle) (fun _ -> Rng.int rng 3))
      ~reference:(fun vs ->
        let arr = Array.of_list vs in
        let h = Array.sub arr 0 hay and nd = Array.sub arr hay needle in
        let found = ref false and idx = ref 15 in
        for o = hay - needle downto 0 do
          let m = Array.for_all2 ( = ) (Array.sub h o needle) nd in
          if m then begin
            found := true;
            idx := o
          end
        done;
        [ Bool.to_int !found; !idx ])
  in
  Workload.make ~name:"string_search" ~description:"find a 4-byte needle in a 16-byte haystack"
    ~parallelism:Workload.Wide ~circuit ~verify ()

let primality =
  let w = 7 in
  let divisors = [ 2; 3; 5; 7; 11 ] in
  let circuit () =
    let net = Netlist.create () in
    let n = Bus.input net "n" w in
    let mod_const p =
      let pw =
        let rec bits v = if v = 0 then 0 else 1 + bits (v / 2) in
        bits p
      in
      let r = ref (Bus.const net ~width:(pw + 1) 0) in
      for i = w - 1 downto 0 do
        let shifted = Array.append [| Bus.bit n i |] (Array.sub !r 0 pw) in
        let ge = Netlist.not_ net (Arith.lt_u net shifted (Bus.const net ~width:(pw + 1) p)) in
        let reduced = Arith.sub net shifted (Bus.const net ~width:(pw + 1) p) in
        r := Bus.mux net ge reduced shifted
      done;
      !r
    in
    let two = Bus.const net ~width:w 2 in
    let ge2 = Netlist.not_ net (Arith.lt_u net n two) in
    let checks =
      List.map
        (fun p ->
          let rem = mod_const p in
          let divisible = Arith.eq net rem (Bus.const net ~width:(Bus.width rem) 0) in
          let is_p = Arith.eq net n (Bus.const net ~width:w p) in
          Netlist.gate net Gate.Orny divisible is_p)
        divisors
    in
    let all_pass = Bus.reduce_and net (Array.of_list checks) in
    Netlist.mark_output net "prime" (Netlist.gate net Gate.And ge2 all_pass);
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net ~in_widths:[ w ] ~out_widths:[ 1 ]
      ~gen:(fun rng -> [ Rng.int rng (1 lsl w) ])
      ~reference:(fun vs ->
        match vs with
        | [ n ] ->
          let prime =
            n >= 2 && List.for_all (fun p -> n = p || n mod p <> 0) divisors
          in
          [ Bool.to_int prime ]
        | _ -> assert false)
  in
  Workload.make ~name:"primality" ~description:"trial-division primality test of a UInt(7)"
    ~parallelism:Workload.Mixed ~circuit ~verify ()

let tea_cipher =
  let rounds = 8 in
  let w = 32 in
  let key = [| 0x1234ABCD; 0x00F0F0F0; 0xDEADBEEF; 0x0BADF00D |] in
  let delta = 0x9E3779B9 in
  let circuit () =
    let net = Netlist.create () in
    let v0 = ref (Bus.input net "v0" w) in
    let v1 = ref (Bus.input net "v1" w) in
    let const v = Bus.const net ~width:w v in
    let feistel v sum k0 k1 =
      let a = Arith.add net (Bus.shift_left net v 4) (const k0) in
      let b = Arith.add net v (const sum) in
      let c = Arith.add net (Bus.shift_right_logical net v 5) (const k1) in
      Bus.bxor net (Bus.bxor net a b) c
    in
    let sum = ref 0 in
    for _ = 1 to rounds do
      sum := mask w (!sum + delta);
      v0 := Arith.add net !v0 (feistel !v1 !sum key.(0) key.(1));
      v1 := Arith.add net !v1 (feistel !v0 !sum key.(2) key.(3))
    done;
    Bus.output net "c0" !v0;
    Bus.output net "c1" !v1;
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net ~in_widths:[ w; w ] ~out_widths:[ w; w ]
      ~gen:(fun rng -> [ Rng.int rng (1 lsl w); Rng.int rng (1 lsl w) ])
      ~reference:(fun vs ->
        match vs with
        | [ a; b ] ->
          let v0 = ref a and v1 = ref b and sum = ref 0 in
          let feistel v sum k0 k1 =
            mask w ((mask w ((v lsl 4) + key.(k0))) lxor (mask w (v + sum)) lxor (mask w ((v lsr 5) + key.(k1))))
          in
          for _ = 1 to rounds do
            sum := mask w (!sum + delta);
            v0 := mask w (!v0 + feistel !v1 !sum 0 1);
            v1 := mask w (!v1 + feistel !v0 !sum 2 3)
          done;
          [ !v0; !v1 ]
        | _ -> assert false)
  in
  Workload.make ~name:"tea_cipher" ~description:"8 TEA rounds over two encrypted 32-bit halves"
    ~parallelism:Workload.Serial ~circuit ~verify ()


let private_set_intersection =
  (* Count how many of the client's 8 encrypted items occur in the server's
     encrypted 8-item set (VIP-Bench-style privacy workload). *)
  let n = 8 and w = 8 in
  let circuit () =
    let net = Netlist.create () in
    let xs = Array.init n (fun i -> Bus.input net (Printf.sprintf "a%d" i) w) in
    let ys = Array.init n (fun i -> Bus.input net (Printf.sprintf "b%d" i) w) in
    let hits =
      Array.map
        (fun x ->
          let eqs = Array.map (fun y -> Arith.eq net x y) ys in
          Bus.reduce_or net eqs)
        xs
    in
    Bus.output net "count" (popcount net hits);
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net
      ~in_widths:(List.init (2 * n) (fun _ -> w))
      ~out_widths:[ 4 ]
      ~gen:(fun rng -> List.init (2 * n) (fun _ -> Rng.int rng 12))
      ~reference:(fun vs ->
        let arr = Array.of_list vs in
        let xs = Array.sub arr 0 n and ys = Array.sub arr n n in
        [ Array.fold_left (fun acc x -> acc + Bool.to_int (Array.mem x ys)) 0 xs ])
  in
  Workload.make ~name:"psi" ~description:"private set intersection cardinality (8 vs 8 items)"
    ~parallelism:Workload.Wide ~circuit ~verify ()

let fann_inference =
  (* VIP-Bench's FANN benchmark: a small fully-connected network, here
     4 -> 6 -> 2 with ReLU, in Fixed(8,4) via the ChiselTorch layers. *)
  let dtype = Dtype.Fixed { width = 8; frac = 4 } in
  let dwidth = Dtype.width dtype in
  let model =
    let rng = Rng.create ~seed:771 () in
    let rf n = Array.init n (fun _ -> (Rng.float rng -. 0.5) /. 2.0) in
    Nn.[
      Linear { in_features = 4; out_features = 6; weights = rf 24; bias = Some (rf 6) };
      Relu;
      Linear { in_features = 6; out_features = 2; weights = rf 12; bias = Some (rf 2) };
    ]
  in
  let circuit () =
    let net = Netlist.create () in
    let x = Tensor.input net "x" dtype [| 4 |] in
    Tensor.output net "y" (Nn.run net model x);
    net
  in
  let verify rng =
    let net = circuit () in
    let patterns = Array.init 4 (fun _ -> Rng.int rng (1 lsl dwidth)) in
    let expected = Nn.reference model dtype [| 4 |] patterns in
    let got =
      Workload.eval_packed net
        ~in_widths:(List.init 4 (fun _ -> dwidth))
        ~in_values:(Array.to_list patterns)
        ~out_widths:(List.init (Array.length expected) (fun _ -> dwidth))
    in
    got = Array.to_list expected
  in
  Workload.make ~name:"fann_inference" ~description:"tiny fully-connected network (FANN), 4-6-2"
    ~parallelism:Workload.Mixed ~circuit ~verify ()


let merge_sort =
  (* Batcher's odd-even mergesort: same function as bubble_sort but with a
     log^2-depth network — the sorting counterpart of the Kogge-Stone
     ablation (wide and shallow vs narrow and deep). *)
  let n = 8 and w = 8 in
  let circuit () =
    let net = Netlist.create () in
    let xs = Array.init n (fun i -> Bus.input net (Printf.sprintf "x%d" i) w) in
    let compare_swap i j =
      let lo, hi = min_max_u net xs.(i) xs.(j) in
      xs.(i) <- lo;
      xs.(j) <- hi
    in
    (* Classic index-based odd-even merge over power-of-two spans. *)
    let rec odd_even_merge lo len r =
      let step = r * 2 in
      if step < len then begin
        odd_even_merge lo len step;
        odd_even_merge (lo + r) len step;
        let i = ref (lo + r) in
        while !i + r < lo + len do
          compare_swap !i (!i + r);
          i := !i + step
        done
      end
      else compare_swap lo (lo + r)
    in
    let rec sort lo len =
      if len > 1 then begin
        let half = len / 2 in
        sort lo half;
        sort (lo + half) half;
        odd_even_merge lo len 1
      end
    in
    sort 0 n;
    Array.iteri (fun i x -> Bus.output net (Printf.sprintf "s%d" i) x) xs;
    net
  in
  let verify rng =
    let net = circuit () in
    check_cases rng ~net
      ~in_widths:(List.init n (fun _ -> w))
      ~out_widths:(List.init n (fun _ -> w))
      ~gen:(fun rng -> List.init n (fun _ -> Rng.int rng (1 lsl w)))
      ~reference:(fun vs -> List.sort compare vs)
  in
  Workload.make ~name:"merge_sort" ~description:"Batcher odd-even mergesort over 8 UInt(8) values"
    ~parallelism:Workload.Wide ~circuit ~verify ()

let all =
  [
    hamming_distance;
    dot_product;
    bubble_sort;
    merge_sort;
    distinctness;
    edit_distance;
    eulers_approx;
    nr_solver;
    gradient_descent;
    parrondo;
    rc_edge_detection;
    box_blur;
    filtered_query;
    knn;
    linear_regression;
    string_search;
    primality;
    tea_cipher;
    private_set_intersection;
    fann_inference;
  ]
