lib/vipbench/suite.mli: Workload
