lib/vipbench/workload.ml: Array Bool List Pytfhe_circuit Pytfhe_util
