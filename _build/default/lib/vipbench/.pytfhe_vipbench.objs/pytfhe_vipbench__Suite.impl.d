lib/vipbench/suite.ml: Kernels List Networks String Workload
