lib/vipbench/kernels.ml: Arith Array Bool Bus Dtype List Nn Printf Pytfhe_chiseltorch Pytfhe_circuit Pytfhe_hdl Pytfhe_util Scalar Tensor Workload
