lib/vipbench/workload.mli: Pytfhe_circuit Pytfhe_util
