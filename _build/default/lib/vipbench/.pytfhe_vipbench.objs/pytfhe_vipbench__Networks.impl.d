lib/vipbench/networks.ml: Array Attention Dtype List Nn Pytfhe_chiseltorch Pytfhe_circuit Pytfhe_util Scalar Tensor Workload
