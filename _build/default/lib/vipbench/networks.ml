(* Neural-network workloads: the three MNIST CNNs of §V-A (MNIST_S from
   VIP-Bench plus the larger MNIST_M/MNIST_L variants) and the two BERT-style
   self-attention layers (Attention_S/Attention_L).  Weights are synthetic
   (seeded PRNG): every reported quantity depends only on shapes and dtypes.

   The [_tiny] variants are scaled-down instances used by the fast unit-test
   sweep; the paper-size instances are flagged [heavy]. *)

module Netlist = Pytfhe_circuit.Netlist
module Rng = Pytfhe_util.Rng
open Pytfhe_chiseltorch

let dtype = Dtype.Fixed { width = 8; frac = 4 }
let dwidth = Dtype.width dtype

let random_floats rng n scale = Array.init n (fun _ -> (Rng.float rng -. 0.5) *. 2.0 *. scale)

(* The VIP-Bench MNIST model shape (paper Fig. 4): Conv -> ReLU ->
   MaxPool2d(3,1) -> Flatten -> Linear(..., 10). *)
let mnist_model ~seed ~image ~conv_ch =
  let rng = Rng.create ~seed () in
  let conv_out = image - 2 in
  let pool_out = conv_out - 2 in
  let features = conv_ch * pool_out * pool_out in
  [
    Nn.Conv2d
      {
        in_ch = 1;
        out_ch = conv_ch;
        kernel = 3;
        stride = 1;
        padding = 0;
        weights = random_floats rng (conv_ch * 9) 0.5;
        bias = Some (random_floats rng conv_ch 0.25);
      };
    Nn.Relu;
    Nn.MaxPool2d { kernel = 3; stride = 1 };
    Nn.Flatten;
    Nn.Linear
      {
        in_features = features;
        out_features = 10;
        weights = random_floats rng (features * 10) 0.25;
        bias = Some (random_floats rng 10 0.25);
      };
  ]

let nn_workload ~name ~description ~heavy ~model ~input_shape =
  let circuit () =
    let net = Netlist.create () in
    let x = Tensor.input net "x" dtype input_shape in
    Tensor.output net "y" (Nn.run net model x);
    net
  in
  let verify rng =
    let net = circuit () in
    let n = Array.fold_left ( * ) 1 input_shape in
    let ok = ref true in
    for _ = 1 to 2 do
      let patterns = Array.init n (fun _ -> Rng.int rng (1 lsl dwidth)) in
      let expected = Nn.reference model dtype input_shape patterns in
      let got =
        Workload.eval_packed net
          ~in_widths:(List.init n (fun _ -> dwidth))
          ~in_values:(Array.to_list patterns)
          ~out_widths:(List.init (Array.length expected) (fun _ -> dwidth))
      in
      if got <> Array.to_list expected then ok := false
    done;
    !ok
  in
  Workload.make ~name ~description ~parallelism:Workload.Wide ~heavy ~circuit ~verify ()

let mnist_s =
  nn_workload ~name:"mnist_s" ~description:"VIP-Bench MNIST CNN (1 conv kernel, 28x28)" ~heavy:true
    ~model:(mnist_model ~seed:101 ~image:28 ~conv_ch:1)
    ~input_shape:[| 1; 28; 28 |]

let mnist_m =
  nn_workload ~name:"mnist_m" ~description:"MNIST CNN with 2 conv kernels" ~heavy:true
    ~model:(mnist_model ~seed:102 ~image:28 ~conv_ch:2)
    ~input_shape:[| 1; 28; 28 |]

let mnist_l =
  nn_workload ~name:"mnist_l" ~description:"MNIST CNN with 3 conv kernels" ~heavy:true
    ~model:(mnist_model ~seed:103 ~image:28 ~conv_ch:3)
    ~input_shape:[| 1; 28; 28 |]

let mnist_tiny =
  nn_workload ~name:"mnist_tiny" ~description:"scaled-down MNIST CNN for fast functional checks"
    ~heavy:false
    ~model:(mnist_model ~seed:104 ~image:8 ~conv_ch:1)
    ~input_shape:[| 1; 8; 8 |]

(* ------------------------------------------------------------------ *)
(* Self-attention                                                      *)
(* ------------------------------------------------------------------ *)

let ref_fixed_sum terms =
  match terms with
  | [] -> invalid_arg "ref_fixed_sum"
  | first :: rest -> List.fold_left (fun acc t -> Scalar.ref_add dtype acc t) first rest

let ref_attention (cfg : Attention.config) (w : Attention.weights) patterns =
  let s = cfg.Attention.seq_len and h = cfg.Attention.hidden in
  let x i k = patterns.((i * h) + k) in
  let project weights i j =
    ref_fixed_sum (List.init h (fun k -> Scalar.ref_mul_scalar dtype (x i k) weights.(k).(j)))
  in
  let q = Array.init s (fun i -> Array.init h (project w.Attention.wq i)) in
  let k_m = Array.init s (fun i -> Array.init h (project w.Attention.wk i)) in
  let v = Array.init s (fun i -> Array.init h (project w.Attention.wv i)) in
  let scores =
    Array.init s (fun i ->
        Array.init s (fun j ->
            ref_fixed_sum (List.init h (fun x -> Scalar.ref_mul dtype q.(i).(x) k_m.(j).(x)))))
  in
  let scale = 1.0 /. sqrt (float_of_int h) in
  let attn =
    Array.map (Array.map (fun p -> Scalar.ref_relu dtype (Scalar.ref_mul_scalar dtype p scale))) scores
  in
  Array.init (s * h) (fun flat ->
      let i = flat / h and j = flat mod h in
      ref_fixed_sum (List.init s (fun x -> Scalar.ref_mul dtype attn.(i).(x) v.(x).(j))))

let attention_workload ~name ~description ~heavy ~seed ~seq_len ~hidden =
  let cfg = { Attention.seq_len; hidden } in
  let weights = Attention.random_weights (Rng.create ~seed ()) cfg in
  let circuit () =
    let net = Netlist.create () in
    let x = Tensor.input net "x" dtype [| seq_len; hidden |] in
    Tensor.output net "y" (Attention.build net cfg weights x);
    net
  in
  let verify rng =
    let net = circuit () in
    let n = seq_len * hidden in
    let patterns = Array.init n (fun _ -> Rng.int rng (1 lsl dwidth)) in
    let expected = ref_attention cfg weights patterns in
    let got =
      Workload.eval_packed net
        ~in_widths:(List.init n (fun _ -> dwidth))
        ~in_values:(Array.to_list patterns)
        ~out_widths:(List.init (Array.length expected) (fun _ -> dwidth))
    in
    got = Array.to_list expected
  in
  Workload.make ~name ~description ~parallelism:Workload.Wide ~heavy ~circuit ~verify ()

let attention_s =
  attention_workload ~name:"attention_s" ~description:"BERT-style self-attention, hidden 32"
    ~heavy:true ~seed:201 ~seq_len:8 ~hidden:32

let attention_l =
  attention_workload ~name:"attention_l" ~description:"BERT-style self-attention, hidden 64"
    ~heavy:true ~seed:202 ~seq_len:8 ~hidden:64

let attention_tiny =
  attention_workload ~name:"attention_tiny"
    ~description:"scaled-down self-attention for fast functional checks" ~heavy:false ~seed:203
    ~seq_len:2 ~hidden:4


(* A LeNet-style two-conv CNN — an extension workload beyond the paper's
   MNIST_S/M/L family, exercising stacked conv + average-pool stages. *)
let lenet_model =
  let rng = Rng.create ~seed:301 () in
  let rf n s = Array.init n (fun _ -> (Rng.float rng -. 0.5) *. 2.0 *. s) in
  [
    Nn.Conv2d { in_ch = 1; out_ch = 2; kernel = 5; stride = 1; padding = 0;
                weights = rf (2 * 25) 0.4; bias = Some (rf 2 0.2) };
    Nn.Relu;
    Nn.AvgPool2d { kernel = 2; stride = 2 };
    Nn.Conv2d { in_ch = 2; out_ch = 4; kernel = 5; stride = 1; padding = 0;
                weights = rf (4 * 2 * 25) 0.4; bias = Some (rf 4 0.2) };
    Nn.Relu;
    Nn.AvgPool2d { kernel = 2; stride = 2 };
    Nn.Flatten;
    Nn.Linear { in_features = 64; out_features = 10; weights = rf 640 0.3; bias = Some (rf 10 0.2) };
  ]

let lenet =
  nn_workload ~name:"lenet" ~description:"LeNet-style CNN (2 conv + 2 avg-pool stages, 28x28)"
    ~heavy:true ~model:lenet_model ~input_shape:[| 1; 28; 28 |]

let all = [ mnist_tiny; mnist_s; mnist_m; mnist_l; attention_tiny; attention_s; attention_l; lenet ]
