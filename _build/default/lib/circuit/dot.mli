(** Graphviz export of TFHE program DAGs.

    Renders a netlist in DOT format for visual inspection of the structures
    the schedulers exploit (wave widths, serial chains).  Intended for small
    circuits; [max_nodes] guards against accidentally dumping an MNIST-scale
    graph. *)

val export : ?max_nodes:int -> ?graph_name:string -> Netlist.t -> string
(** Raises [Invalid_argument] if the netlist exceeds [max_nodes]
    (default 5000). *)
