(** BFS levelization of a TFHE program DAG — the paper's Algorithm 1.

    Nodes whose fan-ins are all ready form the next wave of computable
    gates; the wave index is the node's level.  Level widths are the
    parallelism profile every backend scheduler consumes: wide levels scale
    across workers or streaming multiprocessors, narrow ones are the serial
    tail the paper blames for the modest speedups of NRSolver-style
    benchmarks.

    [Not] gates are noiseless and evaluated inline, so they do not advance
    the level and do not count toward widths. *)

type schedule = {
  level : int array;  (** Wave index per node (inputs and constants: 0). *)
  depth : int;  (** Number of waves = critical path in bootstrapped gates. *)
  widths : int array;  (** [widths.(l-1)]: bootstrapped gates in wave [l]. *)
  total_bootstraps : int;
}

val run : Netlist.t -> schedule
(** Levelize a netlist in one topological sweep. *)

val max_width : schedule -> int
(** Widest wave — the peak exploitable parallelism. *)

val average_width : schedule -> float
(** Mean bootstrapped gates per wave ([0.] for gate-free circuits). *)

val serial_fraction : schedule -> float
(** Fraction of waves of width 1 — a proxy for how serial the workload is. *)
