lib/circuit/dot.ml: Bool Buffer Gate List Netlist Printf
