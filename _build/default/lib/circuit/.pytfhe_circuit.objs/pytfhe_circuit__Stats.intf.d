lib/circuit/stats.mli: Format Gate Netlist
