lib/circuit/dot.mli: Netlist
