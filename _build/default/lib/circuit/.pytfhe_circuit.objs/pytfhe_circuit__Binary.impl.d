lib/circuit/binary.ml: Array Buffer Bytes Format Fun Gate Hashtbl Int64 List Netlist Printf
