lib/circuit/netlist.ml: Array Gate Hashtbl List Pytfhe_util
