lib/circuit/binary.mli: Format Gate Netlist
