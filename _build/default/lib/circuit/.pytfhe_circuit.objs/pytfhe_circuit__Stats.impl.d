lib/circuit/stats.ml: Array Format Gate Levelize List Netlist
