lib/circuit/levelize.mli: Netlist
