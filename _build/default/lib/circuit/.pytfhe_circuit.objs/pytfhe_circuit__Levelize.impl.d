lib/circuit/levelize.ml: Array Gate Netlist Pytfhe_util
