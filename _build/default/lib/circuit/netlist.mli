(** The gate-level intermediate representation: a DAG of TFHE gates.

    Nodes are dense integer ids in construction order, so every gate's
    fan-ins have smaller ids than the gate itself — the topological order is
    free.  The store is a struct-of-arrays over unboxed int vectors and
    scales to multi-million-gate neural networks.

    The builder can optionally perform the two construction-time
    optimizations ChiselTorch relies on: constant folding (including
    same-input and double-negation simplification) and structural hashing.
    Baseline framework models disable them to reproduce their gate
    inflation. *)

type t
type id = int

type kind =
  | Input of int  (** Ordinal among the circuit's inputs. *)
  | Const of bool  (** A public constant. *)
  | Gate of Gate.t * id * id  (** [Not] stores its fan-in twice. *)

val create : ?hash_consing:bool -> ?fold_constants:bool -> unit -> t
(** Fresh empty netlist; both optimizations default to [true]. *)

val input : t -> string -> id
(** Declare a primary input. *)

val const : t -> bool -> id
(** The constant node for [true] or [false] (shared per netlist). *)

val gate : t -> Gate.t -> id -> id -> id
(** Add a gate over two existing nodes (subject to the enabled
    construction-time optimizations). *)

val not_ : t -> id -> id
(** Convenience for [gate t Not a a]. *)

val mux : t -> id -> id -> id -> id
(** [mux t s x y] = if s then x else y, lowered onto the 11-gate cell
    library as OR(AND(s,x), ANDNY(s,y)). *)

val mark_output : t -> string -> id -> unit
(** Register a named primary output. *)

val node_count : t -> int
(** Total nodes including inputs and constants. *)

val gate_count : t -> int
(** Gates only (the quantity every PyTFHE experiment reports). *)

val bootstrap_count : t -> int
(** Gates that cost a bootstrapping (everything but [Not]). *)

val input_count : t -> int

val kind : t -> id -> kind
(** Classify a node. Raises [Invalid_argument] on an unknown id. *)

val inputs : t -> (string * id) list
(** Primary inputs in declaration order. *)

val outputs : t -> (string * id) list
(** Primary outputs in declaration order. *)

val iter_gates : t -> (id -> Gate.t -> id -> id -> unit) -> unit
(** Visit every gate in topological (id) order. *)

val eval : t -> bool array -> bool array
(** [eval t ins] evaluates the whole DAG on plaintext bits ([ins] in input
    declaration order) and returns the value of every node. *)

val eval_outputs : t -> bool array -> (string * bool) list
(** Like {!eval} but projected onto the primary outputs. *)
