lib/core/pipeline.mli: Format Pytfhe_chiseltorch Pytfhe_circuit Pytfhe_synth Pytfhe_tfhe Pytfhe_vipbench
