lib/core/ciphertext_file.mli: Pytfhe_tfhe
