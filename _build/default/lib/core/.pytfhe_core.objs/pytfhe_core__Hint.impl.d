lib/core/hint.ml: Array Gates Lwe Pytfhe_tfhe
