lib/core/server.mli: Pipeline Pytfhe_backend Pytfhe_tfhe
