lib/core/pipeline.ml: Bytes Float Format Nn Pytfhe_chiseltorch Pytfhe_circuit Pytfhe_synth Pytfhe_tfhe Pytfhe_vipbench Tensor
