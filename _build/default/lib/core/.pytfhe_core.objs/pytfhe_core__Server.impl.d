lib/core/server.ml: Buffer Cost_model Pipeline Printf Pytfhe_backend Pytfhe_circuit Pytfhe_tfhe Pytfhe_util Sched_cpu Sched_gpu Tfhe_eval
