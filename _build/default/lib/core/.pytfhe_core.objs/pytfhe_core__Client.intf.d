lib/core/client.mli: Gates Lwe Params Pytfhe_chiseltorch Pytfhe_tfhe
