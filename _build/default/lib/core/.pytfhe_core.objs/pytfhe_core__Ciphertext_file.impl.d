lib/core/ciphertext_file.ml: Buffer Pytfhe_tfhe Pytfhe_util
