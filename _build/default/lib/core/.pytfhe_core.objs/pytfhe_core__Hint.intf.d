lib/core/hint.mli: Gates Lwe Pytfhe_tfhe
