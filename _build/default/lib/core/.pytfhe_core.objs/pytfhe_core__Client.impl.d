lib/core/client.ml: Array Bootstrap Buffer Gates Keyswitch Params Pytfhe_chiseltorch Pytfhe_tfhe Pytfhe_util
