(** Homomorphic integers: Cingulata/E3-style encrypted arithmetic evaluated
    *directly* on ciphertexts, gate by gate, with no circuit compilation
    step.

    Each value is a vector of LWE samples (LSB first).  Operations drive the
    bootstrapped gates of {!Pytfhe_tfhe.Gates} immediately — convenient for
    interactive or data-dependent server code; for large fixed computations
    the compiled pipeline is far cheaper to schedule.  All operations need
    only the cloud keyset: the server never sees plaintexts. *)

open Pytfhe_tfhe

type t
(** An encrypted two's-complement integer. *)

val width : t -> int

val of_samples : Lwe.sample array -> t
(** Wrap ciphertext bits (e.g. from {!Client.encrypt_value}); LSB first. *)

val to_samples : t -> Lwe.sample array

val constant : Gates.cloud_keyset -> width:int -> int -> t
(** Noiseless public constant. *)

val resize : Gates.cloud_keyset -> t -> int -> t
(** Sign-extend or truncate. *)

val add : Gates.cloud_keyset -> t -> t -> t
(** Ripple-carry addition; widths must match; wraps. *)

val sub : Gates.cloud_keyset -> t -> t -> t
val neg : Gates.cloud_keyset -> t -> t

val mul : Gates.cloud_keyset -> t -> t -> t
(** Shift-add multiplication truncated to the operand width. *)

val eq : Gates.cloud_keyset -> t -> t -> Lwe.sample
val lt_s : Gates.cloud_keyset -> t -> t -> Lwe.sample
(** Signed comparison. *)

val lt_u : Gates.cloud_keyset -> t -> t -> Lwe.sample

val mux : Gates.cloud_keyset -> Lwe.sample -> t -> t -> t
(** [mux ck s x y] selects [x] when [s] encrypts true. *)

val min_s : Gates.cloud_keyset -> t -> t -> t
val max_s : Gates.cloud_keyset -> t -> t -> t

val relu : Gates.cloud_keyset -> t -> t
(** max(x, 0). *)

val gate_count : unit -> int
(** Bootstrapped gates executed by this module since the program started
    (instrumentation for cost reporting). *)
