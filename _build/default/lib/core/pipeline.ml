module Netlist = Pytfhe_circuit.Netlist
module Stats = Pytfhe_circuit.Stats
module Levelize = Pytfhe_circuit.Levelize
module Binary = Pytfhe_circuit.Binary
module Opt = Pytfhe_synth.Opt
open Pytfhe_chiseltorch

type compiled = {
  prog_name : string;
  netlist : Netlist.t;
  binary : bytes;
  stats : Stats.t;
  schedule : Levelize.schedule;
  opt_report : Opt.report option;
}

let compile ?(optimize = true) ~name net =
  let netlist, opt_report =
    if optimize then
      let optimized, report = Opt.optimize net in
      (optimized, Some report)
    else (net, None)
  in
  {
    prog_name = name;
    netlist;
    binary = Binary.assemble netlist;
    stats = Stats.compute netlist;
    schedule = Levelize.run netlist;
    opt_report;
  }

let compile_model ~name ~dtype ~input_shape model =
  let net = Netlist.create () in
  let x = Tensor.input net "x" dtype input_shape in
  Tensor.output net "y" (Nn.run net model x);
  compile ~name net

let compile_workload (w : Pytfhe_vipbench.Workload.t) =
  compile ~name:w.Pytfhe_vipbench.Workload.name (w.Pytfhe_vipbench.Workload.circuit ())

let pp_summary fmt c =
  Format.fprintf fmt "%s: %d gates (%d bootstrapped), depth %d, %d instructions (%d bytes)@."
    c.prog_name c.stats.Stats.gates c.stats.Stats.bootstraps c.stats.Stats.depth
    (Bytes.length c.binary / 16) (Bytes.length c.binary);
  (match c.opt_report with
  | Some r -> Format.fprintf fmt "  synthesis: %a@." Opt.pp_report r
  | None -> ());
  Format.fprintf fmt "  schedule: %d waves, max width %d, avg width %.1f@." c.schedule.Levelize.depth
    (Levelize.max_width c.schedule)
    (Levelize.average_width c.schedule)

let failure_probability c params =
  let p_gate = Pytfhe_tfhe.Noise.gate_failure_probability params in
  let n = float_of_int c.stats.Stats.bootstraps in
  (* 1 - (1-p)^n, computed stably for tiny p. *)
  -.Float.expm1 (n *. Float.log1p (-.p_gate))

let check_correctness c params =
  let p = failure_probability c params in
  if p <= 2.0 ** -20.0 then `Ok p else `Risky p
