module Wire = Pytfhe_util.Wire

let write path samples =
  let buf = Buffer.create 4096 in
  Wire.write_magic buf "CTXS";
  Wire.write_array buf Pytfhe_tfhe.Lwe.write_sample samples;
  Wire.to_file path buf

let read path =
  let r = Wire.of_file path in
  Wire.read_magic r "CTXS";
  Wire.read_array r Pytfhe_tfhe.Lwe.read_sample
