open Pytfhe_tfhe

type t = Lwe.sample array

let counter = ref 0

let gate_count () = !counter

(* Wrap the gate API with instrumentation. *)
let g2 f ck a b =
  incr counter;
  f ck a b

let xor_g = g2 Gates.xor_gate
let and_g = g2 Gates.and_gate
let or_g = g2 Gates.or_gate
let xnor_g = g2 Gates.xnor_gate

let mux1 ck s x y =
  counter := !counter + 2;
  (* bootsMUX costs two bootstrappings *)
  Gates.mux_gate ck s x y

let width = Array.length
let of_samples samples = Array.copy samples
let to_samples t = Array.copy t

let constant ck ~width v = Array.init width (fun i -> Gates.constant ck ((v asr i) land 1 = 1))

let msb t = t.(width t - 1)

let resize ck t w =
  let current = width t in
  if w <= current then Array.sub t 0 w
  else begin
    ignore ck;
    Array.init w (fun i -> if i < current then t.(i) else msb t)
  end

let full_adder ck a b c =
  let axb = xor_g ck a b in
  let sum = xor_g ck axb c in
  let carry = or_g ck (and_g ck a b) (and_g ck axb c) in
  (sum, carry)

let add_with_carry ck cin a b =
  let w = width a in
  if width b <> w then invalid_arg "Hint: width mismatch";
  let carry = ref cin in
  let sum =
    Array.init w (fun i ->
        let s, c = full_adder ck a.(i) b.(i) !carry in
        carry := c;
        s)
  in
  (sum, !carry)

let add ck a b = fst (add_with_carry ck (Gates.constant ck false) a b)

let sub ck a b =
  let nb = Array.map (Gates.not_gate ck) b in
  fst (add_with_carry ck (Gates.constant ck true) a nb)

let neg ck a = sub ck (constant ck ~width:(width a) 0) a

let mux ck s x y =
  if width x <> width y then invalid_arg "Hint.mux: width mismatch";
  Array.init (width x) (fun i -> mux1 ck s x.(i) y.(i))

let mul ck a b =
  let w = width a in
  if width b <> w then invalid_arg "Hint.mul: width mismatch";
  let zero = constant ck ~width:w 0 in
  let acc = ref zero in
  for i = 0 to w - 1 do
    (* partial product: (a << i) AND b_i, truncated to w bits *)
    let shifted =
      Array.init w (fun j -> if j < i then Gates.constant ck false else a.(j - i))
    in
    let pp = Array.map (fun bit -> and_g ck bit b.(i)) shifted in
    acc := add ck !acc pp
  done;
  !acc

let eq ck a b =
  if width a <> width b then invalid_arg "Hint.eq: width mismatch";
  let bits = Array.init (width a) (fun i -> xnor_g ck a.(i) b.(i)) in
  (* balanced AND reduction *)
  let rec level = function
    | [ single ] -> single
    | items ->
      let rec pair = function
        | x :: y :: rest -> and_g ck x y :: pair rest
        | [ x ] -> [ x ]
        | [] -> []
      in
      level (pair items)
  in
  level (Array.to_list bits)

let lt_with extend ck a b =
  let w = width a + 1 in
  let a' = extend ck a w and b' = extend ck b w in
  msb (sub ck a' b')

let zero_extend ck t w =
  Array.init w (fun i -> if i < width t then t.(i) else Gates.constant ck false)

let lt_u ck a b = lt_with zero_extend ck a b
let lt_s ck a b = lt_with resize ck a b

let min_s ck a b = mux ck (lt_s ck a b) a b
let max_s ck a b = mux ck (lt_s ck a b) b a

let relu ck a = mux ck (msb a) (constant ck ~width:(width a) 0) a
