(** Ciphertext bundles on disk: the client→server request and server→client
    response payloads of the Fig. 1 protocol (arrays of LWE samples,
    ~2.46 KB each at the default parameters). *)

val write : string -> Pytfhe_tfhe.Lwe.sample array -> unit
val read : string -> Pytfhe_tfhe.Lwe.sample array
(** Raises [Pytfhe_util.Wire.Corrupt] on malformed input. *)
