lib/fft/complex_fft.mli:
