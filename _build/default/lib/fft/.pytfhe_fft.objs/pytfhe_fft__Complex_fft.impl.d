lib/fft/complex_fft.ml: Array Float Hashtbl
