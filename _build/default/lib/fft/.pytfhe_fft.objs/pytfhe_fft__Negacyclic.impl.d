lib/fft/negacyclic.ml: Array Complex_fft Float Hashtbl
