lib/fft/negacyclic.mli:
