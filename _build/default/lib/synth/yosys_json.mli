(** Yosys JSON netlist interchange.

    The paper's flow hands the frontend's Verilog to Yosys and consumes a
    gate netlist (Fig. 2, step 2); Yosys's native machine-readable format is
    `write_json`/`read_json`.  [export] renders a netlist in that format
    over the simple-gate cell library ($_AND_, $_XOR_, $_ANDNOT_, …), and
    [import] reads the same subset back — so designs synthesized by a real
    Yosys with `abc -g simple` can be executed on this framework's backends,
    and vice versa. *)

val export : ?module_name:string -> Pytfhe_circuit.Netlist.t -> string
(** Serialize as a Yosys JSON document with one module.  Net numbering
    starts at 2 (Yosys convention); constants appear as the string bits
    ["0"]/["1"]. *)

exception Import_error of string

val import : string -> Pytfhe_circuit.Netlist.t
(** Parse a Yosys JSON document containing exactly one module over the
    simple-gate cell library ($_NOT_, $_AND_, $_NAND_, $_OR_, $_NOR_,
    $_XOR_, $_XNOR_, $_ANDNOT_, $_ORNOT_, $_MUX_, $_BUF_).  Multi-bit ports
    are supported; cells may appear in any order.  Raises {!Import_error}
    (or [Pytfhe_util.Json.Parse_error]) on anything outside the subset. *)
