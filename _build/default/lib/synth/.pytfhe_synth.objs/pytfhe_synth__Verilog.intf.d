lib/synth/verilog.mli: Pytfhe_circuit
