lib/synth/verilog.ml: Buffer Hashtbl List Printf Pytfhe_circuit String
