lib/synth/yosys_json.ml: Float Hashtbl List Option Printf Pytfhe_circuit Pytfhe_util
