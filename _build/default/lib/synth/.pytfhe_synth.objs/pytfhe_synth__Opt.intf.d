lib/synth/opt.mli: Format Pytfhe_circuit
