lib/synth/opt.ml: Array Format List Pytfhe_circuit Pytfhe_util
