lib/synth/yosys_json.mli: Pytfhe_circuit
