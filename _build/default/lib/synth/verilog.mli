(** Structural Verilog interchange.

    In the paper's flow the frontend emits Verilog and Yosys returns a gate
    netlist (Fig. 2, steps 1–2).  This module closes the same loop for this
    repository: [export] renders a netlist as a single combinational module
    of [assign] statements, and [parse] reads that structural subset back
    (one-bit wires; expressions over [~ & | ^] and the constants
    [1'b0]/[1'b1]) — enough to import designs written by hand or by other
    tools in the same style. *)

val export : ?module_name:string -> Pytfhe_circuit.Netlist.t -> string
(** Render a netlist as a synthesizable combinational Verilog module.
    Port names are sanitized identifiers derived from the netlist's
    input/output names; internal wires are [n<id>]. *)

exception Parse_error of { line : int; message : string }

val parse : string -> Pytfhe_circuit.Netlist.t
(** Parse the structural subset back into a netlist (construction-time
    optimizations enabled: parsing acts as a synthesis step).  Raises
    {!Parse_error} on anything outside the subset. *)
