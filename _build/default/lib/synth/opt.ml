module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate

type report = {
  gates_before : int;
  gates_after : int;
  bootstraps_before : int;
  bootstraps_after : int;
}

(* g' such that g' (x, b) = g (¬x, b); the 11-gate library is closed under
   input negation, which is what makes inverter absorption free. *)
let negate_left = function
  | Gate.And -> Gate.Andny
  | Gate.Or -> Gate.Orny
  | Gate.Xor -> Gate.Xnor
  | Gate.Xnor -> Gate.Xor
  | Gate.Nand -> Gate.Oryn
  | Gate.Nor -> Gate.Andyn
  | Gate.Andny -> Gate.And
  | Gate.Andyn -> Gate.Nor
  | Gate.Orny -> Gate.Or
  | Gate.Oryn -> Gate.Nand
  | Gate.Not -> Gate.Not

let negate_right = function
  | Gate.And -> Gate.Andyn
  | Gate.Or -> Gate.Oryn
  | Gate.Xor -> Gate.Xnor
  | Gate.Xnor -> Gate.Xor
  | Gate.Nand -> Gate.Orny
  | Gate.Nor -> Gate.Andny
  | Gate.Andny -> Gate.Nor
  | Gate.Andyn -> Gate.And
  | Gate.Orny -> Gate.Nand
  | Gate.Oryn -> Gate.Or
  | Gate.Not -> Gate.Not

let rebuild ?(hash_consing = true) ?(fold_constants = true) ?(absorb_not = true) ?(dce = true) net =
  let n = Netlist.node_count net in
  (* Backward reachability from the outputs for dead-gate elimination. *)
  let live = Array.make n (not dce) in
  if dce then begin
    List.iter (fun (_, id) -> live.(id) <- true) (Netlist.outputs net);
    for id = n - 1 downto 0 do
      if live.(id) then
        match Netlist.kind net id with
        | Netlist.Gate (_, a, b) ->
          live.(a) <- true;
          live.(b) <- true
        | Netlist.Input _ | Netlist.Const _ -> ()
    done
  end;
  let fresh = Netlist.create ~hash_consing ~fold_constants () in
  let map = Array.make n (-1) in
  let input_names = Array.make n "" in
  List.iter (fun (name, id) -> input_names.(id) <- name) (Netlist.inputs net);
  let not_input id =
    (* If the (new) node is a NOT gate, return what it negates. *)
    match Netlist.kind fresh id with
    | Netlist.Gate (Gate.Not, x, _) -> Some x
    | Netlist.Gate _ | Netlist.Input _ | Netlist.Const _ -> None
  in
  let emit g a b =
    if not absorb_not then Netlist.gate fresh g a b
    else begin
      let g, a =
        match not_input a with
        | Some x when not (Gate.is_unary g) -> (negate_left g, x)
        | Some _ | None -> (g, a)
      in
      let g, b =
        match not_input b with
        | Some x when not (Gate.is_unary g) -> (negate_right g, x)
        | Some _ | None -> (g, b)
      in
      Netlist.gate fresh g a b
    end
  in
  for id = 0 to n - 1 do
    match Netlist.kind net id with
    | Netlist.Input _ ->
      (* Inputs are always preserved to keep the interface stable. *)
      map.(id) <- Netlist.input fresh input_names.(id)
    | Netlist.Const v -> if live.(id) then map.(id) <- Netlist.const fresh v
    | Netlist.Gate (g, a, b) -> if live.(id) then map.(id) <- emit g map.(a) map.(b)
  done;
  List.iter (fun (name, id) -> Netlist.mark_output fresh name map.(id)) (Netlist.outputs net);
  fresh

let optimize net =
  (* Two sweeps: inverter absorption in the first pass can orphan the NOT
     gates it folded away; the second pass removes them. *)
  let optimized = rebuild (rebuild net) in
  ( optimized,
    {
      gates_before = Netlist.gate_count net;
      gates_after = Netlist.gate_count optimized;
      bootstraps_before = Netlist.bootstrap_count net;
      bootstraps_after = Netlist.bootstrap_count optimized;
    } )

let pp_report fmt r =
  let pct before after =
    if before = 0 then 0.0 else 100.0 *. float_of_int (before - after) /. float_of_int before
  in
  Format.fprintf fmt "gates %d -> %d (-%.1f%%), bootstraps %d -> %d (-%.1f%%)" r.gates_before
    r.gates_after
    (pct r.gates_before r.gates_after)
    r.bootstraps_before r.bootstraps_after
    (pct r.bootstraps_before r.bootstraps_after)

let equivalent ?(trials = 256) ?(seed = 0x51AC) a b =
  let n = Netlist.input_count a in
  if Netlist.input_count b <> n then false
  else if List.length (Netlist.outputs a) <> List.length (Netlist.outputs b) then false
  else begin
    let agree ins =
      List.map snd (Netlist.eval_outputs a ins) = List.map snd (Netlist.eval_outputs b ins)
    in
    if n <= 16 then
      let all = ref true in
      for v = 0 to (1 lsl n) - 1 do
        if !all then all := agree (Array.init n (fun i -> (v lsr i) land 1 = 1))
      done;
      !all
    else begin
      let rng = Pytfhe_util.Rng.create ~seed () in
      let all = ref true in
      for _ = 1 to trials do
        if !all then all := agree (Array.init n (fun _ -> Pytfhe_util.Rng.bool rng))
      done;
      !all
    end
  end
