lib/chiseltorch/attention.ml: Array Pytfhe_util Tensor
