lib/chiseltorch/tensor.ml: Array Bus Dtype Printf Pytfhe_circuit Pytfhe_hdl Scalar
