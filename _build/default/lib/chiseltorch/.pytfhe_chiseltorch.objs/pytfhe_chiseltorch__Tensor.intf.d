lib/chiseltorch/tensor.mli: Bus Dtype Netlist Pytfhe_circuit Pytfhe_hdl
