lib/chiseltorch/dtype.mli: Format
