lib/chiseltorch/attention.mli: Pytfhe_circuit Pytfhe_util Tensor
