lib/chiseltorch/nn.ml: Array Dtype Fun List Printf Pytfhe_circuit Scalar Tensor
