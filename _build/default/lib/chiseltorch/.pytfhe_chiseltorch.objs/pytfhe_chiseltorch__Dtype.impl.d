lib/chiseltorch/dtype.ml: Float Format Pytfhe_hdl String
