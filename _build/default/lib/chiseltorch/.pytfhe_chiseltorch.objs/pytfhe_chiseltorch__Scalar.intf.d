lib/chiseltorch/scalar.mli: Bus Dtype Netlist Pytfhe_circuit Pytfhe_hdl
