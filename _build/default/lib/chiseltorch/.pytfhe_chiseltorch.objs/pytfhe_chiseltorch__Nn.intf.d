lib/chiseltorch/nn.mli: Dtype Netlist Pytfhe_circuit Tensor
