lib/chiseltorch/scalar.ml: Arith Bus Dtype Float Float_repr Float_unit Pytfhe_circuit Pytfhe_hdl
