module Float_repr = Pytfhe_hdl.Float_repr

type t = UInt of int | SInt of int | Fixed of { width : int; frac : int } | Float of { e : int; m : int }

let width = function
  | UInt w | SInt w -> w
  | Fixed { width; _ } -> width
  | Float { e; m } -> e + m + 1

let is_signed = function UInt _ -> false | SInt _ | Fixed _ | Float _ -> true

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let mask w v = v land ((1 lsl w) - 1)

let encode t v =
  match t with
  | UInt w ->
    let max_v = (1 lsl w) - 1 in
    clamp 0 max_v (int_of_float (Float.round v))
  | SInt w ->
    let half = 1 lsl (w - 1) in
    mask w (clamp (-half) (half - 1) (int_of_float (Float.round v)))
  | Fixed { width; frac } ->
    let half = 1 lsl (width - 1) in
    let scaled = int_of_float (Float.round (v *. float_of_int (1 lsl frac))) in
    mask width (clamp (-half) (half - 1) scaled)
  | Float { e; m } -> Float_repr.encode ~e ~m v

let decode t bits =
  match t with
  | UInt w -> float_of_int (mask w bits)
  | SInt w ->
    let v = mask w bits in
    float_of_int (if v >= 1 lsl (w - 1) then v - (1 lsl w) else v)
  | Fixed { width; frac } ->
    let v = mask width bits in
    let signed = if v >= 1 lsl (width - 1) then v - (1 lsl width) else v in
    float_of_int signed /. float_of_int (1 lsl frac)
  | Float { e; m } -> Float_repr.decode ~e ~m bits

let resolution = function
  | UInt _ | SInt _ -> 1.0
  | Fixed { frac; _ } -> 1.0 /. float_of_int (1 lsl frac)
  | Float { e = _; m } -> 1.0 /. float_of_int (1 lsl m)

let of_string s =
  let parse_dims prefix constructor =
    let len = String.length prefix in
    if String.length s > len && String.sub s 0 len = prefix then
      match String.split_on_char '.' (String.sub s len (String.length s - len)) with
      | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some a, Some b when a > 0 && b >= 0 -> Some (constructor a b)
        | _, _ -> None)
      | [ a ] -> (
        match int_of_string_opt a with Some a when a > 0 -> Some (constructor a 0) | _ -> None)
      | _ -> None
    else None
  in
  match parse_dims "fixed" (fun w f -> Fixed { width = w; frac = f }) with
  | Some _ as r -> r
  | None -> (
    match parse_dims "float" (fun e m -> Float { e; m }) with
    | Some _ as r -> r
    | None -> (
      match parse_dims "uint" (fun w _ -> UInt w) with
      | Some _ as r -> r
      | None -> parse_dims "sint" (fun w _ -> SInt w)))

let pp fmt = function
  | UInt w -> Format.fprintf fmt "UInt(%d)" w
  | SInt w -> Format.fprintf fmt "SInt(%d)" w
  | Fixed { width; frac } -> Format.fprintf fmt "Fixed(%d,%d)" width frac
  | Float { e; m } -> Format.fprintf fmt "Float(%d,%d)" e m
