(** ChiselTorch data types (paper §IV-B).

    TFHE circuits are bit-level, so data types are not limited to byte or
    word alignment: integers and fixed-point values of arbitrary width, and
    floating point with arbitrary exponent/mantissa split.  [Float (8, 8)]
    is the paper's bfloat16-style example; [Float (5, 11)] a half-precision
    analogue.  Choosing a cheaper type shrinks the generated TFHE program —
    the quantization/performance knob the frontend exposes. *)

type t =
  | UInt of int  (** Unsigned integer of the given bit width. *)
  | SInt of int  (** Two's-complement signed integer. *)
  | Fixed of { width : int; frac : int }
      (** Signed fixed point: [width] total bits, [frac] fraction bits. *)
  | Float of { e : int; m : int }  (** See {!Pytfhe_hdl.Float_repr}. *)

val width : t -> int
(** Bits per element on the wire. *)

val is_signed : t -> bool

val encode : t -> float -> int
(** Quantize a real number to a bit pattern (round to nearest for integer
    and fixed-point types, saturating at the representable range). *)

val decode : t -> int -> float
(** Real value of a bit pattern. *)

val resolution : t -> float
(** Smallest positive increment (integer/fixed types) or the ulp at 1.0
    (float types); tests use it for tolerances. *)

val of_string : string -> t option
(** Parse ["sint8"], ["uint4"], ["fixed8.4"], ["float8.8"]-style names (the
    CLI's dtype flags). *)

val pp : Format.formatter -> t -> unit
