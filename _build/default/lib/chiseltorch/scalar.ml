open Pytfhe_hdl
module Netlist = Pytfhe_circuit.Netlist

let fmt_of = function Dtype.Float { e; m } -> { Float_unit.e; m } | _ -> invalid_arg "fmt_of"

let const net dtype v = Bus.const net ~width:(Dtype.width dtype) (Dtype.encode dtype v)

let add net dtype a b =
  match dtype with
  | Dtype.UInt _ | Dtype.SInt _ | Dtype.Fixed _ -> Arith.add net a b
  | Dtype.Float _ -> Float_unit.add net (fmt_of dtype) a b

let sub net dtype a b =
  match dtype with
  | Dtype.UInt _ | Dtype.SInt _ | Dtype.Fixed _ -> Arith.sub net a b
  | Dtype.Float _ -> Float_unit.sub net (fmt_of dtype) a b

let neg net dtype a =
  match dtype with
  | Dtype.UInt _ | Dtype.SInt _ | Dtype.Fixed _ -> Arith.neg net a
  | Dtype.Float _ -> Float_unit.neg net (fmt_of dtype) a

let mul net dtype a b =
  match dtype with
  | Dtype.UInt w -> Arith.mul_u net ~out_width:w a b
  | Dtype.SInt w -> Arith.mul_s net ~out_width:w a b
  | Dtype.Fixed { width; frac } ->
    let product = Arith.mul_s net ~out_width:(width + frac) a b in
    Bus.slice product ~lo:frac ~hi:(frac + width - 1)
  | Dtype.Float _ -> Float_unit.mul net (fmt_of dtype) a b

let mul_scalar net dtype a c =
  match dtype with
  | Dtype.UInt w ->
    let a' = Bus.resize_u net a w in
    Arith.mul_const_s net ~out_width:w a' (int_of_float (Float.round c))
  | Dtype.SInt w -> Arith.mul_const_s net ~out_width:w a (int_of_float (Float.round c))
  | Dtype.Fixed { width; frac } ->
    let c_fixed = int_of_float (Float.round (c *. float_of_int (1 lsl frac))) in
    let product = Arith.mul_const_s net ~out_width:(width + frac) a c_fixed in
    Bus.slice product ~lo:frac ~hi:(frac + width - 1)
  | Dtype.Float _ -> Float_unit.mul_const net (fmt_of dtype) a c

let recip_q = 8

let div_const net dtype a n =
  if n <= 0 then invalid_arg "Scalar.div_const: divisor must be positive";
  match dtype with
  | Dtype.Fixed _ | Dtype.Float _ -> mul_scalar net dtype a (1.0 /. float_of_int n)
  | Dtype.UInt w ->
    let recip = int_of_float (Float.round (float_of_int (1 lsl recip_q) /. float_of_int n)) in
    let a' = Bus.resize_u net a (w + recip_q) in
    let product = Arith.mul_const_s net ~out_width:(w + recip_q) a' recip in
    Bus.slice product ~lo:recip_q ~hi:(recip_q + w - 1)
  | Dtype.SInt w ->
    let recip = int_of_float (Float.round (float_of_int (1 lsl recip_q) /. float_of_int n)) in
    let product = Arith.mul_const_s net ~out_width:(w + recip_q) a recip in
    Bus.slice product ~lo:recip_q ~hi:(recip_q + w - 1)

let relu net dtype a =
  match dtype with
  | Dtype.UInt _ -> a
  | Dtype.SInt _ | Dtype.Fixed _ ->
    Bus.mux net (Bus.msb a) (Bus.const net ~width:(Bus.width a) 0) a
  | Dtype.Float _ -> Float_unit.relu net (fmt_of dtype) a

let eq_ net dtype a b =
  match dtype with
  | Dtype.UInt _ | Dtype.SInt _ | Dtype.Fixed _ | Dtype.Float _ -> Arith.eq net a b

let ne_ net dtype a b = Netlist.not_ net (eq_ net dtype a b)

let lt net dtype a b =
  match dtype with
  | Dtype.UInt _ -> Arith.lt_u net a b
  | Dtype.SInt _ | Dtype.Fixed _ -> Arith.lt_s net a b
  | Dtype.Float _ -> Float_unit.lt net (fmt_of dtype) a b

let gt net dtype a b = lt net dtype b a
let le net dtype a b = Netlist.not_ net (gt net dtype a b)
let ge net dtype a b = Netlist.not_ net (lt net dtype a b)

let max_ net dtype a b = Bus.mux net (lt net dtype a b) b a
let min_ net dtype a b = Bus.mux net (lt net dtype a b) a b

(* ------------------------------------------------------------------ *)
(* Reference semantics                                                 *)
(* ------------------------------------------------------------------ *)

let mask w v = v land ((1 lsl w) - 1)

let signed w bits =
  let v = mask w bits in
  if v >= 1 lsl (w - 1) then v - (1 lsl w) else v

let ref_add dtype a b =
  match dtype with
  | Dtype.Float { e; m } ->
    Float_repr.encode ~e ~m (Float_repr.decode ~e ~m a +. Float_repr.decode ~e ~m b)
  | Dtype.UInt _ | Dtype.SInt _ | Dtype.Fixed _ -> mask (Dtype.width dtype) (a + b)

let ref_sub dtype a b =
  match dtype with
  | Dtype.Float { e; m } ->
    Float_repr.encode ~e ~m (Float_repr.decode ~e ~m a -. Float_repr.decode ~e ~m b)
  | Dtype.UInt _ | Dtype.SInt _ | Dtype.Fixed _ -> mask (Dtype.width dtype) (a - b)

let ref_neg dtype a =
  match dtype with
  | Dtype.Float { e; m } -> Float_repr.encode ~e ~m (-.Float_repr.decode ~e ~m a)
  | Dtype.UInt _ | Dtype.SInt _ | Dtype.Fixed _ -> mask (Dtype.width dtype) (-a)

let ref_mul dtype a b =
  match dtype with
  | Dtype.UInt w -> mask w (mask w a * mask w b)
  | Dtype.SInt w -> mask w (signed w a * signed w b)
  | Dtype.Fixed { width; frac } -> mask width ((signed width a * signed width b) asr frac)
  | Dtype.Float { e; m } ->
    Float_repr.encode ~e ~m (Float_repr.decode ~e ~m a *. Float_repr.decode ~e ~m b)

let ref_mul_scalar dtype a c =
  match dtype with
  | Dtype.UInt w -> mask w (mask w a * int_of_float (Float.round c))
  | Dtype.SInt w -> mask w (signed w a * int_of_float (Float.round c))
  | Dtype.Fixed { width; frac } ->
    let c_fixed = int_of_float (Float.round (c *. float_of_int (1 lsl frac))) in
    mask width ((signed width a * c_fixed) asr frac)
  | Dtype.Float { e; m } -> Float_repr.encode ~e ~m (Float_repr.decode ~e ~m a *. c)

let ref_relu dtype a =
  match dtype with
  | Dtype.UInt _ -> a
  | Dtype.SInt w -> if signed w a < 0 then 0 else mask w a
  | Dtype.Fixed { width; frac = _ } -> if signed width a < 0 then 0 else mask width a
  | Dtype.Float { e; m } -> if Float_repr.decode ~e ~m a < 0.0 then 0 else a

let ref_div_const dtype a n =
  if n <= 0 then invalid_arg "Scalar.ref_div_const: divisor must be positive";
  match dtype with
  | Dtype.Fixed _ | Dtype.Float _ -> ref_mul_scalar dtype a (1.0 /. float_of_int n)
  | Dtype.UInt w ->
    let recip = int_of_float (Float.round (float_of_int (1 lsl recip_q) /. float_of_int n)) in
    mask w ((mask w a * recip) asr recip_q)
  | Dtype.SInt w ->
    let recip = int_of_float (Float.round (float_of_int (1 lsl recip_q) /. float_of_int n)) in
    mask w ((signed w a * recip) asr recip_q)

let ref_lt dtype a b =
  match dtype with
  | Dtype.UInt w -> mask w a < mask w b
  | Dtype.SInt w -> signed w a < signed w b
  | Dtype.Fixed { width; frac = _ } -> signed width a < signed width b
  | Dtype.Float { e; m } -> Float_repr.decode ~e ~m a < Float_repr.decode ~e ~m b

let ref_max dtype a b = if ref_lt dtype a b then b else a

let div net dtype a b =
  match dtype with
  | Dtype.UInt _ -> fst (Arith.div_u net a b)
  | Dtype.SInt _ -> Arith.div_s net a b
  | Dtype.Fixed { width; frac } ->
    (* (a << frac) / b at width+frac, truncated back. *)
    let wide = width + frac in
    let a_ext = Bus.shift_left net (Bus.resize_s net a wide) frac in
    let b_ext = Bus.resize_s net b wide in
    Bus.slice (Arith.div_s net a_ext b_ext) ~lo:0 ~hi:(width - 1)
  | Dtype.Float _ -> Float_unit.div net (fmt_of dtype) a b

let ref_div dtype a b =
  (* Mirrors the circuit exactly, including wrap-around of |min_int| and the
     all-ones quotient on division by zero. *)
  let int_div w a b =
    let abs_w v = if signed w v < 0 then mask w (-v) else mask w v in
    let aa = abs_w a and ab = abs_w b in
    let q = if ab = 0 then (1 lsl w) - 1 else aa / ab in
    if (signed w a < 0) <> (signed w b < 0) then mask w (-q) else mask w q
  in
  match dtype with
  | Dtype.UInt w ->
    let b = mask w b in
    if b = 0 then (1 lsl w) - 1 else mask w a / b
  | Dtype.SInt w -> int_div w a b
  | Dtype.Fixed { width; frac } ->
    let wide = width + frac in
    let a_ext = mask wide ((signed width a) lsl frac) in
    let b_ext = mask wide (signed width b) in
    mask width (int_div wide a_ext b_ext)
  | Dtype.Float { e; m } ->
    Float_repr.encode ~e ~m (Float_repr.decode ~e ~m a /. Float_repr.decode ~e ~m b)

let clamp net dtype a ~lo ~hi =
  let lo_c = const net dtype lo and hi_c = const net dtype hi in
  min_ net dtype (max_ net dtype a lo_c) hi_c

let ref_min dtype a b = if ref_lt dtype a b then a else b

let ref_clamp dtype a ~lo ~hi =
  let lo_p = Dtype.encode dtype lo and hi_p = Dtype.encode dtype hi in
  ref_min dtype (ref_max dtype a lo_p) hi_p
