(** Dtype-dispatched scalar circuit operations.

    Every tensor operation maps one of these over its elements.  The [ref_*]
    functions give the exact plaintext semantics on bit patterns (wrapping
    two's-complement arithmetic for integer/fixed types); the test suite
    checks the circuits against them bit-for-bit. *)

open Pytfhe_circuit
open Pytfhe_hdl

val const : Netlist.t -> Dtype.t -> float -> Bus.t
val add : Netlist.t -> Dtype.t -> Bus.t -> Bus.t -> Bus.t
val sub : Netlist.t -> Dtype.t -> Bus.t -> Bus.t -> Bus.t
val neg : Netlist.t -> Dtype.t -> Bus.t -> Bus.t
val mul : Netlist.t -> Dtype.t -> Bus.t -> Bus.t -> Bus.t

val mul_scalar : Netlist.t -> Dtype.t -> Bus.t -> float -> Bus.t
(** Multiply by a public constant — the constant-aware path that makes
    ChiselTorch circuits small (weights are public in inference). *)

val relu : Netlist.t -> Dtype.t -> Bus.t -> Bus.t

val div_const : Netlist.t -> Dtype.t -> Bus.t -> int -> Bus.t
(** Divide by a small public positive integer (average pooling).  Fixed and
    float types multiply by the reciprocal; integer types multiply by a
    q8-quantized reciprocal and shift, so results are rounded toward −∞. *)

val eq_ : Netlist.t -> Dtype.t -> Bus.t -> Bus.t -> Netlist.id
val ne_ : Netlist.t -> Dtype.t -> Bus.t -> Bus.t -> Netlist.id
val lt : Netlist.t -> Dtype.t -> Bus.t -> Bus.t -> Netlist.id
val le : Netlist.t -> Dtype.t -> Bus.t -> Bus.t -> Netlist.id
val gt : Netlist.t -> Dtype.t -> Bus.t -> Bus.t -> Netlist.id
val ge : Netlist.t -> Dtype.t -> Bus.t -> Bus.t -> Netlist.id

val max_ : Netlist.t -> Dtype.t -> Bus.t -> Bus.t -> Bus.t
val min_ : Netlist.t -> Dtype.t -> Bus.t -> Bus.t -> Bus.t

(** Reference plaintext semantics on bit patterns. *)

val ref_add : Dtype.t -> int -> int -> int
val ref_sub : Dtype.t -> int -> int -> int
val ref_neg : Dtype.t -> int -> int
val ref_mul : Dtype.t -> int -> int -> int
val ref_mul_scalar : Dtype.t -> int -> float -> int
val ref_relu : Dtype.t -> int -> int
val ref_div_const : Dtype.t -> int -> int -> int
val ref_lt : Dtype.t -> int -> int -> bool
val ref_max : Dtype.t -> int -> int -> int

val div : Netlist.t -> Dtype.t -> Bus.t -> Bus.t -> Bus.t
(** Encrypted/encrypted division (Table I's [/]): truncating integer
    division for [UInt]/[SInt], fixed-point long division for [Fixed],
    Newton-Raphson reciprocal for [Float] (approximate — bit-exactness
    against [ref_div] holds for the integer and fixed dtypes only). *)

val ref_div : Dtype.t -> int -> int -> int

val clamp : Netlist.t -> Dtype.t -> Bus.t -> lo:float -> hi:float -> Bus.t
(** Saturate to a public interval: min(max(x, lo), hi). *)

val ref_clamp : Dtype.t -> int -> lo:float -> hi:float -> int
