lib/frameworks/profile.ml: Arith Array Bus Dtype Float Format List Nn Printf Pytfhe_chiseltorch Pytfhe_circuit Pytfhe_hdl Pytfhe_synth Scalar
