lib/frameworks/profile.mli: Format Pytfhe_chiseltorch Pytfhe_circuit
