module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate
module Opt = Pytfhe_synth.Opt
open Pytfhe_hdl
open Pytfhe_chiseltorch

type const_mult = Csd | Binary | Generic

type t = {
  name : string;
  hash_consing : bool;
  fold_constants : bool;
  run_opt : bool;
  const_mult : const_mult;
  free_wiring : bool;
  data_width : int;
  frac_bits : int;
}

let pytfhe =
  {
    name = "PyTFHE";
    hash_consing = true;
    fold_constants = true;
    run_opt = true;
    const_mult = Csd;
    free_wiring = true;
    data_width = 8;
    frac_bits = 4;
  }

let cingulata =
  {
    name = "Cingulata";
    hash_consing = false;
    fold_constants = true;
    run_opt = false;
    const_mult = Binary;
    free_wiring = true;
    data_width = 8;
    frac_bits = 4;
  }

let e3 =
  {
    name = "E3";
    hash_consing = false;
    fold_constants = false;
    run_opt = false;
    const_mult = Binary;
    free_wiring = true;
    data_width = 8;
    frac_bits = 4;
  }

let transpiler =
  {
    name = "Transpiler";
    hash_consing = false;
    fold_constants = false;
    run_opt = false;
    const_mult = Generic;
    free_wiring = false;
    data_width = 16;
    frac_bits = 4;
  }

let all = [ e3; cingulata; transpiler; pytfhe ]

let ops profile net =
  let w = profile.data_width and f = profile.frac_bits in
  let dtype = Dtype.Fixed { width = w; frac = f } in
  let fixed_mul_const recoding x c =
    let c_fixed = int_of_float (Float.round (c *. float_of_int (1 lsl f))) in
    let product = Arith.mul_const_s net ~recoding ~out_width:(w + f) x c_fixed in
    Bus.slice product ~lo:f ~hi:(f + w - 1)
  in
  let mul_scalar x c =
    match profile.const_mult with
    | Csd -> fixed_mul_const `Csd x c
    | Binary -> fixed_mul_const `Binary x c
    | Generic ->
      (* The constant is materialised as a bus and fed to a full array
         multiplier — the shape an HLS toolchain produces when the weight
         flows through memory. *)
      let c_bus = Scalar.const net dtype c in
      let product = Arith.mul_s net ~out_width:(w + f) x c_bus in
      Bus.slice product ~lo:f ~hi:(f + w - 1)
  in
  let copy x =
    if profile.free_wiring then x
    else Array.map (fun bit -> Netlist.gate net Gate.And bit bit) x
  in
  {
    Nn.o_const = (fun () v -> Scalar.const net dtype v);
    o_add = (fun () a b -> Arith.add net a b);
    o_mul_scalar = (fun () x c -> mul_scalar x c);
    o_relu = (fun () x -> Scalar.relu net dtype x);
    o_max = (fun () a b -> Arith.max_s net a b);
    o_div_const = (fun () x n -> Scalar.div_const net dtype x n);
    o_zero_pattern = Scalar.const net dtype 0.0;
    o_clamp = (fun () x lo hi -> Scalar.clamp net dtype x ~lo ~hi);
    o_copy = (fun () x -> copy x);
  }

let build_model profile model ~input_shape =
  let net = Netlist.create ~hash_consing:profile.hash_consing ~fold_constants:profile.fold_constants () in
  let ops = ops profile net in
  let n = Array.fold_left ( * ) 1 input_shape in
  let data = Array.init n (fun i -> Bus.input net (Printf.sprintf "x.%d" i) profile.data_width) in
  let _, out =
    List.fold_left
      (fun (shape, d) layer -> (Nn.output_shape layer shape, Nn.apply_generic ops () layer shape d))
      (input_shape, data) model
  in
  Array.iteri (fun i bus -> Bus.output net (Printf.sprintf "y.%d" i) bus) out;
  if profile.run_opt then fst (Opt.optimize net) else net

let pp fmt p =
  Format.fprintf fmt "%s: %s%s%s mult=%s wiring=%s width=%d.%d" p.name
    (if p.hash_consing then "cse " else "")
    (if p.fold_constants then "fold " else "")
    (if p.run_opt then "opt " else "")
    (match p.const_mult with Csd -> "csd" | Binary -> "binary" | Generic -> "generic")
    (if p.free_wiring then "free" else "gates")
    p.data_width p.frac_bits
