(** Baseline TFHE-framework models: Google Transpiler, Cingulata, E3.

    The paper compares gate counts (Fig. 14) and runtimes (Fig. 13,
    Table IV) of the same MNIST model compiled by four toolchains, and
    itself estimates baseline runtimes as gate count ÷ single-core
    throughput (footnote 1).  We reproduce that methodology: each baseline
    is a circuit generator with the documented lowering characteristics of
    its framework, run over the *same* layer math as ChiselTorch
    ({!Pytfhe_chiseltorch.Nn.apply_generic}), so gate-count differences come
    only from the lowering:

    - {b PyTFHE/ChiselTorch}: structural hashing, constant folding, CSD
      constant multipliers, free shape wiring, arbitrary bit widths,
      post-synthesis optimization.
    - {b Cingulata}: DSL with constant folding but no sharing; plain binary
      shift-add constant multipliers.
    - {b E3}: hardcoded gate patterns — no folding, no sharing, binary
      constant multipliers.
    - {b Transpiler}: C-native data types (16-bit arithmetic), generic
      array multipliers (weights flow through C arrays the HLS cannot
      specialize), no cross-statement sharing, and real gates emitted for
      the [Flatten] layer (the paper's §V-C observation). *)

type const_mult = Csd | Binary | Generic

type t = {
  name : string;
  hash_consing : bool;
  fold_constants : bool;
  run_opt : bool;  (** Run the synthesis optimization pipeline afterwards. *)
  const_mult : const_mult;
  free_wiring : bool;  (** Shape ops cost zero gates. *)
  data_width : int;
  frac_bits : int;
}

val pytfhe : t
val cingulata : t
val e3 : t
val transpiler : t

val all : t list
(** In the paper's comparison order. *)

val build_model :
  t -> Pytfhe_chiseltorch.Nn.model -> input_shape:int array -> Pytfhe_circuit.Netlist.t
(** Compile a model with this framework's lowering; the circuit interface is
    one input per data bit ([x.<i>[<b>]]) and one output per result bit. *)

val pp : Format.formatter -> t -> unit
