(* The pytfhe command-line driver: compile, inspect, estimate and run TFHE
   programs from the workload registry or from assembled binaries. *)

open Cmdliner
module Pipeline = Pytfhe_core.Pipeline
module Server = Pytfhe_core.Server
module Client = Pytfhe_core.Client
module Suite = Pytfhe_vipbench.Suite
module W = Pytfhe_vipbench.Workload
module Binary = Pytfhe_circuit.Binary
module Stats = Pytfhe_circuit.Stats
module Cost_model = Pytfhe_backend.Cost_model
module Executor = Pytfhe_backend.Executor
module Exec_opts = Pytfhe_backend.Exec_opts
module Service = Pytfhe_service.Service
module Service_client = Pytfhe_service.Service_client
module Trace = Pytfhe_obs.Trace
module Metrics = Pytfhe_obs.Metrics

(* Shared --trace/--metrics plumbing: an enabled sink only when at least
   one export was requested, and the writes afterwards. *)
let sink_for ~trace ~metrics =
  if trace <> None || metrics <> None then Trace.create () else Trace.null

let export_obs obs ~trace ~metrics ~extra =
  (match trace with
  | Some path ->
    Trace.write_chrome obs path;
    Format.printf "wrote Chrome trace %s (open in chrome://tracing or ui.perfetto.dev)@." path
  | None -> ());
  match metrics with
  | Some path ->
    Metrics.write ~extra obs path;
    Format.printf "wrote metrics %s@." path
  | None -> ()

let trace_arg =
  Cmdliner.Arg.(value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace_event JSON of the run here (Perfetto-compatible).")

let metrics_arg =
  Cmdliner.Arg.(value & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write a flat metrics JSON (counters/gauges/span totals) here.")

let workload_conv =
  let parse s =
    match Suite.find s with
    | Some w -> Ok w
    | None ->
      Error (`Msg (Printf.sprintf "unknown workload %S (try `pytfhe list')" s))
  in
  Arg.conv (parse, fun fmt w -> Format.pp_print_string fmt w.W.name)

let platform_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "single" | "single-core" -> Ok Server.Single_core
    | "a5000" -> Ok (Server.Gpu Cost_model.gpu_a5000)
    | "4090" | "rtx4090" -> Ok (Server.Gpu Cost_model.gpu_4090)
    | "cufhe" | "cufhe-a5000" -> Ok (Server.Gpu_cufhe Cost_model.gpu_a5000)
    | s -> (
      match String.split_on_char ':' s with
      | [ "dist"; n ] | [ "distributed"; n ] -> (
        match int_of_string_opt n with
        | Some nodes when nodes > 0 -> Ok (Server.Distributed { nodes })
        | Some _ | None -> Error (`Msg "node count must be a positive integer"))
      | _ -> Error (`Msg (Printf.sprintf "unknown platform %S (single | dist:N | a5000 | 4090 | cufhe)" s)))
  in
  Arg.conv (parse, fun fmt b -> Format.pp_print_string fmt (Server.sim_platform_name b))

let workload_arg =
  Arg.(required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see $(b,pytfhe list)).")

let lut_cover_arg =
  Arg.(value & flag
       & info [ "lut-cover" ]
           ~doc:"Cover gate cones with programmable 2-/3-input LUT cells during synthesis \
                 (one blind rotation per LUT, shared across same-input tables); typically \
                 cuts the bootstrap count well below the classic gate library's.")

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run verbose =
    Format.printf "%-20s %-6s %s@." "NAME" "CLASS" "DESCRIPTION";
    List.iter
      (fun w ->
        let cls =
          match w.W.parallelism with W.Wide -> "wide" | W.Serial -> "serial" | W.Mixed -> "mixed"
        in
        Format.printf "%-20s %-6s %s%s@." w.W.name cls w.W.description
          (if w.W.heavy then "  [heavy]" else "");
        if verbose && not w.W.heavy then begin
          let s = Stats.compute (w.W.circuit ()) in
          Format.printf "  %d gates, depth %d@." s.Stats.gates s.Stats.depth
        end)
      Suite.all
  in
  let verbose = Arg.(value & flag & info [ "stats" ] ~doc:"Also print gate counts (light workloads only).") in
  Cmd.v (Cmd.info "list" ~doc:"List the registered workloads") Term.(const run $ verbose)

let compile_cmd =
  let module Netlist = Pytfhe_circuit.Netlist in
  let run w out no_opt lut_cover stream window =
    let t0 = Unix.gettimeofday () in
    if stream then begin
      if lut_cover then failwith "--stream skips the synthesis phase; it cannot combine with --lut-cover";
      let path = match out with Some p -> p | None -> w.W.name ^ ".pytfhe" in
      (* Streaming wants a builder, not a finished netlist; replaying the
         workload's circuit through [Netlist.instantiate] gives one while
         keeping the registry's [circuit ()] contract unchanged. *)
      let src = w.W.circuit () in
      let builder dst =
        let args =
          Array.of_list
            (List.map (fun (name, _) -> Netlist.input dst name) (Netlist.inputs src))
        in
        let map = Netlist.instantiate dst ~template:src ~args in
        List.iter (fun (name, id) -> Netlist.mark_output dst name map.(id)) (Netlist.outputs src)
      in
      let r = Pipeline.compile_stream_to_file ?window ~name:w.W.name ~path builder in
      Format.printf "streamed %d gates (%d bootstrapped), %d waves, %d bytes to %s in %.2fs@."
        r.Pipeline.gates r.Pipeline.bootstraps r.Pipeline.depth r.Pipeline.bytes_emitted path
        (Unix.gettimeofday () -. t0);
      match window with
      | Some win ->
        Format.printf "CSE window %d: peak %d live entries, %d evicted@." win r.Pipeline.cse_peak
          r.Pipeline.cse_evicted
      | None -> ()
    end
    else begin
      let compiled = Pipeline.compile ~optimize:(not no_opt) ~lut_cover ~name:w.W.name (w.W.circuit ()) in
      Format.printf "%a" Pipeline.pp_summary compiled;
      Format.printf "compiled in %.2fs@." (Unix.gettimeofday () -. t0);
      match out with
      | Some path ->
        Binary.write_file path compiled.Pipeline.binary;
        Format.printf "wrote %s (%d bytes)@." path (Bytes.length compiled.Pipeline.binary)
      | None -> ()
    end
  in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the PyTFHE binary here.") in
  let no_opt = Arg.(value & flag & info [ "no-opt" ] ~doc:"Skip the synthesis optimization passes.") in
  let stream =
    Arg.(value & flag
         & info [ "stream" ]
             ~doc:"Emit the binary incrementally while the circuit is constructed \
                   (bounded-memory path; implies $(b,--no-opt), writes to $(b,-o) or \
                   $(i,WORKLOAD).pytfhe).")
  in
  let window =
    Arg.(value & opt (some int) None
         & info [ "window" ] ~docv:"N"
             ~doc:"With $(b,--stream): bound the construction-time CSE tables to $(docv) \
                   recent entries (unbounded by default).")
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a workload to a PyTFHE binary")
    Term.(const run $ workload_arg $ out $ no_opt $ lut_cover_arg $ stream $ window)

let disasm_cmd =
  let run path limit =
    let bytes = Binary.read_file path in
    let insts = Binary.disassemble bytes in
    let total = List.length insts in
    List.iteri
      (fun i inst -> if i < limit then Format.printf "%6d: %a@." i Binary.pp_instruction inst)
      insts;
    if total > limit then Format.printf "... (%d more instructions)@." (total - limit)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Assembled PyTFHE binary.") in
  let limit = Arg.(value & opt int 64 & info [ "n"; "limit" ] ~doc:"Maximum instructions to print.") in
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble a PyTFHE binary") Term.(const run $ path $ limit)

let stat_cmd =
  let run w lut_cover =
    let compiled = Pipeline.compile ~lut_cover ~name:w.W.name (w.W.circuit ()) in
    Format.printf "%a" Pipeline.pp_summary compiled;
    Format.printf "gate distribution:@.%a" Stats.pp_distribution compiled.Pipeline.stats
  in
  Cmd.v (Cmd.info "stat" ~doc:"Print statistics for a compiled workload")
    Term.(const run $ workload_arg $ lut_cover_arg)

let estimate_cmd =
  let run w backends =
    let compiled = Pipeline.compile ~name:w.W.name (w.W.circuit ()) in
    Format.printf "%s: %d bootstrapped gates@." w.W.name compiled.Pipeline.stats.Stats.bootstraps;
    let backends =
      if backends = [] then
        [ Server.Single_core; Server.Distributed { nodes = 1 }; Server.Distributed { nodes = 4 };
          Server.Gpu_cufhe Cost_model.gpu_a5000; Server.Gpu Cost_model.gpu_a5000;
          Server.Gpu Cost_model.gpu_4090 ]
      else backends
    in
    List.iter
      (fun b ->
        Format.printf "  %-28s %12.2f s  (%.1fx single core)@." (Server.sim_platform_name b)
          (Server.estimate b compiled)
          (Server.speedup_over_single_core b compiled))
      backends
  in
  let backends = Arg.(value & opt_all platform_conv [] & info [ "b"; "backend" ] ~docv:"PLATFORM" ~doc:"Simulated platform to price (repeatable).") in
  Cmd.v (Cmd.info "estimate" ~doc:"Estimate runtimes on the paper's platforms")
    Term.(const run $ workload_arg $ backends)

(* Resolve --backend plus the --workers/--dist-workers aliases into an
   exec_backend.  Without --backend the legacy inference applies:
   --dist-workers selects multiprocess, --workers > 1 multicore. *)
let exec_backend_of ~backend ~workers ~dist_workers =
  match backend with
  | Some `Cpu -> Server.Cpu
  | Some `Par ->
    Server.Multicore { workers = (match workers with Some w -> w | None -> 0) }
  | Some `Dist ->
    let w =
      if dist_workers > 0 then dist_workers
      else match workers with Some w -> w | None -> 2
    in
    Server.Multiprocess { workers = w; config = None }
  | None ->
    if dist_workers > 0 then Server.Multiprocess { workers = dist_workers; config = None }
    else (
      match workers with
      | Some w when w > 1 -> Server.Multicore { workers = w }
      | Some _ | None -> Server.Cpu)

(* Shared --transform plumbing: selects the polynomial-product backend the
   parameter set carries (and hence the keyset wire format). *)
let transform_conv =
  let parse s =
    match Pytfhe_fft.Transform.kind_of_name s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown transform %S (fft | ntt)" s))
  in
  Arg.conv (parse, fun fmt k -> Format.pp_print_string fmt (Pytfhe_fft.Transform.kind_name k))

let transform_arg =
  Arg.(value
       & opt (some transform_conv) None
       & info [ "transform" ] ~docv:"T"
           ~doc:"Polynomial-product backend: $(b,fft) (double-precision complex FFT; the \
                 default) or $(b,ntt) (exact double-prime NTT — bit-reproducible across \
                 machines).")

let apply_transform params = function
  | None -> params
  | Some t -> Pytfhe_tfhe.Params.with_transform params t

let run_cmd =
  let run w seed encrypted backend workers dist_workers batch soa lut_cover transform trace metrics =
    (match workers with Some w when w < 1 -> failwith "--workers must be >= 1" | _ -> ());
    if dist_workers < 0 then failwith "--dist-workers must be >= 1";
    if batch < 0 then failwith "--batch must be >= 1";
    if soa && batch = 0 then failwith "--soa requires --batch";
    let batch = if batch = 0 then None else Some batch in
    let soa = if soa then Some true else None in
    let rng = Pytfhe_util.Rng.create ~seed () in
    if encrypted then begin
      if w.W.heavy then failwith "workload too large for real encrypted execution; use a light one";
      let exec = exec_backend_of ~backend ~workers ~dist_workers in
      let obs = sink_for ~trace ~metrics in
      let params = apply_transform Pytfhe_tfhe.Params.test transform in
      Format.printf "generating keys (test parameters, %s transform)...@."
        (Pytfhe_fft.Transform.kind_name params.Pytfhe_tfhe.Params.transform);
      let client, cloud = Client.keygen ~params ~seed () in
      let compiled = Pipeline.compile ~obs ~lut_cover ~name:w.W.name (w.W.circuit ()) in
      let n = Pytfhe_circuit.Netlist.input_count compiled.Pipeline.netlist in
      let ins = Array.init n (fun _ -> Pytfhe_util.Rng.bool rng) in
      let cts = Client.encrypt_bits client ins in
      Format.printf "evaluating %d gates homomorphically on the %s backend...@."
        compiled.Pipeline.stats.Stats.gates (Server.exec_backend_name exec);
      let outs, stats =
        Server.run ~opts:(Exec_opts.of_flags ~obs ?batch ?soa ()) exec cloud compiled cts
      in
      let extra =
        match stats.Executor.detail with
        | Executor.Cpu_stats _ -> ""
        | Executor.Multicore_stats p ->
          Format.asprintf ", %.2fx parallel (wave-sync ideal %.2fx)"
            p.Pytfhe_backend.Par_eval.achieved_speedup
            p.Pytfhe_backend.Par_eval.ideal_speedup
        | Executor.Multiprocess_stats d ->
          Format.asprintf ", %d requests, %d B out / %d B in, %d worker%s lost"
            d.Pytfhe_backend.Dist_eval.requests_sent
            d.Pytfhe_backend.Dist_eval.bytes_to_workers
            d.Pytfhe_backend.Dist_eval.bytes_from_workers
            d.Pytfhe_backend.Dist_eval.workers_lost
            (if d.Pytfhe_backend.Dist_eval.workers_lost = 1 then "" else "s")
      in
      let bits = Client.decrypt_bits client outs in
      let expected = Pytfhe_backend.Plain_eval.run compiled.Pipeline.netlist ins in
      let ok = List.for_all2 (fun (_, e) g -> e = g) expected (Array.to_list bits) in
      let bootstraps = stats.Executor.bootstraps_executed in
      Format.printf "bootstraps: %d, wall time: %.1fs (%.1f ms/gate%s), outputs %s@."
        bootstraps stats.Executor.wall_time
        (1000.0 *. stats.Executor.wall_time /. float_of_int (max 1 bootstraps))
        extra
        (if ok then "MATCH plaintext reference" else "MISMATCH");
      export_obs obs ~trace ~metrics
        ~extra:
          [
            ("backend", Pytfhe_util.Json.String stats.Executor.backend);
            ("workers", Pytfhe_util.Json.Number (float_of_int stats.Executor.workers));
            ("wall_time_s", Pytfhe_util.Json.Number stats.Executor.wall_time);
          ]
    end
    else begin
      Format.printf "functional verification of %s: %!" w.W.name;
      let ok = w.W.verify rng in
      Format.printf "%s@." (if ok then "PASS" else "FAIL");
      if not ok then exit 1
    end
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let encrypted = Arg.(value & flag & info [ "encrypted" ] ~doc:"Run for real on TFHE ciphertexts (test parameters).") in
  let backend =
    Arg.(value
         & opt (some (enum [ ("cpu", `Cpu); ("par", `Par); ("dist", `Dist) ])) None
         & info [ "backend" ] ~docv:"BACKEND"
             ~doc:"Executor: $(b,cpu) (sequential), $(b,par) (OCaml domains), $(b,dist) \
                   (worker OS processes).  Default: inferred from --workers/--dist-workers.")
  in
  let workers =
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N"
           ~doc:"Evaluate on $(docv) OCaml domains (with --encrypted; 1 = the sequential reference executor).")
  in
  let dist_workers =
    Arg.(value & opt int 0 & info [ "dist-workers" ] ~docv:"N"
           ~doc:"Evaluate on $(docv) worker OS processes (with --encrypted; overrides --workers). \
                 Gate shards and ciphertexts travel over real socketpairs, as in the paper's Ray cluster.")
  in
  let batch =
    Arg.(value & opt int 0 & info [ "batch" ] ~docv:"N"
           ~doc:"Evaluate each wave in batches of $(docv) gates through the key-streaming \
                 bootstrap kernel (with --encrypted; cpu and par backends; bit-exact with \
                 the per-gate path).  Default: per-gate execution.")
  in
  let soa =
    Arg.(value & flag & info [ "soa" ]
           ~doc:"With --batch: run the sub-batches through the struct-of-arrays row kernels \
                 on contiguous ciphertext waves (bit-exact with both the record-batched and \
                 per-gate paths).")
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a workload (functionally, or homomorphically with --encrypted)")
    Term.(const run $ workload_arg $ seed $ encrypted $ backend $ workers $ dist_workers
          $ batch $ soa $ lut_cover_arg $ transform_arg $ trace_arg $ metrics_arg)

let verilog_cmd =
  let run w out =
    let text = Pytfhe_synth.Verilog.export ~module_name:w.W.name (w.W.circuit ()) in
    match out with
    | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text);
      Format.printf "wrote %s (%d bytes)@." path (String.length text)
    | None -> print_string text
  in
  let out = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Write the Verilog here (default: stdout).") in
  Cmd.v (Cmd.info "verilog" ~doc:"Export a workload as structural Verilog") Term.(const run $ workload_arg $ out)

let synth_cmd =
  let run path out =
    let ic = open_in path in
    let source = Fun.protect ~finally:(fun () -> close_in ic) (fun () -> really_input_string ic (in_channel_length ic)) in
    let net =
      if Filename.check_suffix path ".json" then
        try Pytfhe_synth.Yosys_json.import source
        with Pytfhe_synth.Yosys_json.Import_error message -> failwith (path ^ ": " ^ message)
      else
        try Pytfhe_synth.Verilog.parse source
        with Pytfhe_synth.Verilog.Parse_error { line; message } ->
          failwith (Printf.sprintf "%s:%d: %s" path line message)
    in
    let compiled = Pipeline.compile ~name:(Filename.basename path) net in
    Format.printf "%a" Pipeline.pp_summary compiled;
    match out with
    | Some bin ->
      Binary.write_file bin compiled.Pipeline.binary;
      Format.printf "wrote %s@." bin
    | None -> ()
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.v" ~doc:"Structural Verilog source.") in
  let out = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Also assemble a PyTFHE binary.") in
  Cmd.v (Cmd.info "synth" ~doc:"Synthesize a structural Verilog or Yosys-JSON file into a TFHE program") Term.(const run $ path $ out)

let json_cmd =
  let run w out =
    let text = Pytfhe_synth.Yosys_json.export ~module_name:w.W.name (w.W.circuit ()) in
    match out with
    | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text);
      Format.printf "wrote %s (%d bytes)@." path (String.length text)
    | None -> print_string text
  in
  let out = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Write the Yosys JSON here (default: stdout).") in
  Cmd.v (Cmd.info "json" ~doc:"Export a workload as a Yosys JSON netlist") Term.(const run $ workload_arg $ out)

let dot_cmd =
  let run w out =
    let net = w.W.circuit () in
    let text =
      try Pytfhe_circuit.Dot.export ~graph_name:w.W.name net
      with Invalid_argument msg -> failwith (msg ^ " (use a smaller workload)")
    in
    match out with
    | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text);
      Format.printf "wrote %s@." path
    | None -> print_string text
  in
  let out = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Write the DOT graph here (default: stdout).") in
  Cmd.v (Cmd.info "dot" ~doc:"Export a small workload's DAG as Graphviz DOT") Term.(const run $ workload_arg $ out)

(* Load a circuit from any supported on-disk format. *)
let load_design path =
  if Filename.check_suffix path ".json" then
    Pytfhe_synth.Yosys_json.import
      (let ic = open_in path in
       Fun.protect ~finally:(fun () -> close_in ic) (fun () -> really_input_string ic (in_channel_length ic)))
  else if Filename.check_suffix path ".v" then
    Pytfhe_synth.Verilog.parse
      (let ic = open_in path in
       Fun.protect ~finally:(fun () -> close_in ic) (fun () -> really_input_string ic (in_channel_length ic)))
  else Binary.parse (Binary.read_file path)

let equiv_cmd =
  let run a b trials =
    let net_a = load_design a and net_b = load_design b in
    if Pytfhe_synth.Opt.equivalent ~trials net_a net_b then begin
      let how = if Pytfhe_circuit.Netlist.input_count net_a <= 16 then "exhaustively" else Printf.sprintf "on %d random vectors" trials in
      Format.printf "EQUIVALENT (checked %s)@." how
    end
    else begin
      Format.printf "NOT EQUIVALENT@.";
      exit 1
    end
  in
  let a = Arg.(required & pos 0 (some file) None & info [] ~docv:"A" ~doc:"First design (.v, .json, or PyTFHE binary).") in
  let b = Arg.(required & pos 1 (some file) None & info [] ~docv:"B" ~doc:"Second design.") in
  let trials = Arg.(value & opt int 1024 & info [ "trials" ] ~doc:"Random vectors for large circuits.") in
  Cmd.v (Cmd.info "equiv" ~doc:"Check functional equivalence of two designs (any supported format)")
    Term.(const run $ a $ b $ trials)

let vcd_cmd =
  let run w vectors seed out =
    let net = w.W.circuit () in
    let n = Pytfhe_circuit.Netlist.input_count net in
    let rng = Pytfhe_util.Rng.create ~seed () in
    let vecs = List.init vectors (fun _ -> Array.init n (fun _ -> Pytfhe_util.Rng.bool rng)) in
    let text = Pytfhe_backend.Vcd.of_evaluation net vecs in
    match out with
    | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text);
      Format.printf "wrote %s (%d timesteps)@." path vectors
    | None -> print_string text
  in
  let vectors = Arg.(value & opt int 8 & info [ "vectors" ] ~doc:"Number of random input vectors.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"PRNG seed for the vectors.") in
  let out = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Write the VCD here (default: stdout).") in
  Cmd.v (Cmd.info "vcd" ~doc:"Evaluate a workload on random vectors and dump a VCD waveform")
    Term.(const run $ workload_arg $ vectors $ seed $ out)

(* ------------------------------------------------------------------ *)
(* The file-based client/server protocol (Fig. 1): keygen -> encrypt on
   the client; eval on the (untrusted) server; decrypt on the client.    *)
(* ------------------------------------------------------------------ *)

let params_conv =
  let parse = function
    | "test" -> Ok Pytfhe_tfhe.Params.test
    | "default" | "default-128" -> Ok Pytfhe_tfhe.Params.default_128
    | s -> Error (`Msg (Printf.sprintf "unknown parameter set %S (test | default)" s))
  in
  Arg.conv (parse, fun fmt p -> Pytfhe_tfhe.Params.pp fmt p)

let keygen_cmd =
  let run params transform dir seed =
    let params = apply_transform params transform in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    Format.printf "generating keys for %a ...@." Pytfhe_tfhe.Params.pp params;
    let t0 = Unix.gettimeofday () in
    let client, cloud = Client.keygen ~params ~seed () in
    let secret_path = Filename.concat dir "secret.key" in
    let cloud_path = Filename.concat dir "cloud.key" in
    Client.save client secret_path;
    Server.save_cloud_keyset cloud cloud_path;
    Format.printf "wrote %s (keep private) and %s (ship to the server) in %.1fs@." secret_path
      cloud_path (Unix.gettimeofday () -. t0);
    Format.printf "cloud key: %.1f MB on disk@."
      (float_of_int (Unix.stat cloud_path).Unix.st_size /. 1048576.0)
  in
  let dir = Arg.(value & opt string "keys" & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory.") in
  let params = Arg.(value & opt params_conv Pytfhe_tfhe.Params.test & info [ "params" ] ~doc:"Parameter set (test | default).") in
  let seed = Arg.(value & opt int 0xC11E47 & info [ "seed" ] ~doc:"Key generation seed.") in
  Cmd.v (Cmd.info "keygen" ~doc:"Generate a secret/cloud keyset pair")
    Term.(const run $ params $ transform_arg $ dir $ seed)

let bits_of_string s =
  String.to_seq s
  |> Seq.filter_map (function '0' -> Some false | '1' -> Some true | _ -> None)
  |> Array.of_seq

let encrypt_cmd =
  let run secret bits out =
    let client = Client.load secret in
    let plain = bits_of_string bits in
    if Array.length plain = 0 then failwith "--bits must contain at least one 0/1";
    let cts = Client.encrypt_bits client plain in
    Pytfhe_core.Ciphertext_file.write out cts;
    Format.printf "encrypted %d bits -> %s (%d bytes)@." (Array.length plain) out
      (Unix.stat out).Unix.st_size
  in
  let secret = Arg.(required & opt (some file) None & info [ "secret" ] ~docv:"FILE" ~doc:"Secret keyset.") in
  let bits = Arg.(required & opt (some string) None & info [ "bits" ] ~docv:"BITS" ~doc:"Plaintext bits, e.g. 10110 (LSB-first for integer inputs).") in
  let out = Arg.(value & opt string "input.ct" & info [ "o" ] ~docv:"FILE" ~doc:"Ciphertext bundle output.") in
  Cmd.v (Cmd.info "encrypt" ~doc:"Encrypt plaintext bits with the secret key") Term.(const run $ secret $ bits $ out)

let eval_cmd =
  let run cloud program input out stream transform trace metrics =
    let keyset = Server.load_cloud_keyset cloud in
    (match transform with
    | Some t when keyset.Pytfhe_tfhe.Gates.cloud_params.Pytfhe_tfhe.Params.transform <> t ->
      failwith
        (Printf.sprintf "--transform %s does not match the cloud keyset (built with %s)"
           (Pytfhe_fft.Transform.kind_name t)
           (Pytfhe_fft.Transform.kind_name
              keyset.Pytfhe_tfhe.Gates.cloud_params.Pytfhe_tfhe.Params.transform))
    | Some _ | None -> ());
    let cts = Pytfhe_core.Ciphertext_file.read input in
    let obs = sink_for ~trace ~metrics in
    let t0 = Unix.gettimeofday () in
    (* the paper's executor: stream the 128-bit instructions directly *)
    let outs =
      if stream then begin
        (* Pull the program from disk chunk by chunk — the binary is never
           resident, so a program bigger than memory still evaluates. *)
        Format.printf "evaluating %s (streamed) on %d input ciphertexts ...@." program
          (Array.length cts);
        In_channel.with_open_bin program (fun ic ->
            let outs, _ =
              Pytfhe_backend.Stream_exec.run_encrypted_stream
                ~opts:(Exec_opts.of_flags ~obs ()) keyset (Binary.read_source ic) cts
            in
            outs)
      end
      else begin
        let bytes = Binary.read_file program in
        Format.printf "evaluating %d instructions on %d input ciphertexts ...@."
          (Binary.instruction_count bytes) (Array.length cts);
        Pytfhe_backend.Stream_exec.run_encrypted ~opts:(Exec_opts.of_flags ~obs ()) keyset bytes cts
      end
    in
    Pytfhe_core.Ciphertext_file.write out outs;
    Format.printf "done in %.1fs -> %s@." (Unix.gettimeofday () -. t0) out;
    export_obs obs ~trace ~metrics
      ~extra:[ ("backend", Pytfhe_util.Json.String "stream") ]
  in
  let cloud = Arg.(required & opt (some file) None & info [ "cloud" ] ~docv:"FILE" ~doc:"Cloud keyset (no secrets inside).") in
  let program = Arg.(required & opt (some file) None & info [ "program" ] ~docv:"FILE" ~doc:"Assembled PyTFHE binary.") in
  let input = Arg.(required & opt (some file) None & info [ "input" ] ~docv:"FILE" ~doc:"Input ciphertext bundle.") in
  let out = Arg.(value & opt string "output.ct" & info [ "o" ] ~docv:"FILE" ~doc:"Output ciphertext bundle.") in
  let stream =
    Arg.(value & flag
         & info [ "stream" ]
             ~doc:"Pull the program from disk chunk by chunk instead of loading it resident \
                   (pairs with $(b,pytfhe compile --stream); required for binaries larger \
                   than memory).")
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Homomorphically evaluate a PyTFHE binary on a ciphertext bundle (server side)")
    Term.(const run $ cloud $ program $ input $ out $ stream $ transform_arg $ trace_arg $ metrics_arg)

let trace_validate_cmd =
  let run path =
    let text =
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Pytfhe_util.Json.parse text with
    | exception _ ->
      Format.printf "%s: INVALID (not JSON)@." path;
      exit 1
    | json -> (
      match Trace.validate_chrome json with
      | Ok () -> Format.printf "%s: valid Chrome trace@." path
      | Error msg ->
        Format.printf "%s: INVALID (%s)@." path msg;
        exit 1)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Chrome trace_event JSON written by --trace.") in
  Cmd.v
    (Cmd.info "trace-validate"
       ~doc:"Check that a file is a well-formed Chrome trace (spans sorted, non-overlapping per track)")
    Term.(const run $ path)

(* ------------------------------------------------------------------ *)
(* FHE-as-a-service: serve / submit                                    *)
(* ------------------------------------------------------------------ *)

(* Round-trippable executor names shared with Server.exec_backend_name,
   so `pytfhe serve --backend dist:4` prints back exactly "dist:4". *)
let exec_conv =
  let parse s =
    match Server.exec_backend_of_name s with Ok b -> Ok b | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun fmt b -> Format.pp_print_string fmt (Server.exec_backend_name b))

let serve_cmd =
  let run host port backend batch max_active max_queue =
    if batch < 1 then failwith "--batch must be >= 1";
    let config =
      { Service.default_config with Service.host; port; backend; max_active; max_queue }
    in
    let opts = { Service.default_opts with Exec_opts.batch = Some batch } in
    let stats =
      Service.serve ~opts ~config
        ~ready:(fun p ->
          Format.printf "pytfhe service listening on %s:%d (backend %s, batch %d)@." host p
            (Server.exec_backend_name backend)
            batch;
          Format.print_flush ())
        ()
    in
    Format.printf
      "service stopped: %d keysets, %d sessions, %d/%d requests completed/failed, %d launches, batch fill %.2f@."
      stats.Service.keysets_registered stats.Service.sessions_opened
      stats.Service.requests_completed stats.Service.requests_failed
      stats.Service.batch_launches stats.Service.batch_fill
  in
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.") in
  let port = Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (0 picks an ephemeral port, printed on startup).") in
  let backend =
    Arg.(value & opt exec_conv Server.Cpu
         & info [ "backend" ] ~docv:"BACKEND"
             ~doc:"Executor: $(b,cpu) (in-process cross-request batch scheduler), \
                   $(b,par)/$(b,par:N) or $(b,dist)/$(b,dist:N) (pass-through, one request \
                   at a time through that executor).")
  in
  let batch = Arg.(value & opt int 8 & info [ "batch" ] ~docv:"N" ~doc:"Batched-bootstrap capacity of the cross-request scheduler.") in
  let max_active = Arg.(value & opt int 32 & info [ "max-active" ] ~docv:"N" ~doc:"Concurrently executing request bound.") in
  let max_queue = Arg.(value & opt int 256 & info [ "max-queue" ] ~docv:"N" ~doc:"Admission queue bound (excess submissions fail busy).") in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent multi-tenant FHE service (register keysets, submit programs; \
             see docs/service.md)")
    Term.(const run $ host $ port $ backend $ batch $ max_active $ max_queue)

let submit_cmd =
  let run w host port client_id seed count shutdown =
    if count < 1 then failwith "--count must be >= 1";
    if w.W.heavy then failwith "workload too large for real encrypted execution; use a light one";
    let rng = Pytfhe_util.Rng.create ~seed () in
    Format.printf "generating keys (test parameters)...@.";
    let client, cloud = Client.keygen ~params:Pytfhe_tfhe.Params.test ~seed () in
    let client_id = match client_id with Some id -> id | None -> Client.client_id client in
    let compiled = Pipeline.compile ~name:w.W.name (w.W.circuit ()) in
    let n_in = Pytfhe_circuit.Netlist.input_count compiled.Pipeline.netlist in
    let c = Service_client.connect ~host ~port () in
    Fun.protect ~finally:(fun () -> Service_client.close c) @@ fun () ->
    Service_client.register c ~client_id cloud;
    let session = Service_client.open_session c ~client_id Pytfhe_tfhe.Params.test in
    Format.printf "registered %s, session %d; submitting %d x %s (%d gates)...@." client_id
      session count w.W.name compiled.Pipeline.stats.Stats.gates;
    let jobs =
      Array.init count (fun i ->
          let ins = Array.init n_in (fun _ -> Pytfhe_util.Rng.bool rng) in
          let cts = Client.encrypt_bits client ins in
          let req =
            Service_client.submit c ~session
              ~name:(Printf.sprintf "%s#%d" w.W.name i)
              ~program:compiled.Pipeline.binary ~inputs:cts
          in
          (req, ins))
    in
    let ok = ref true in
    Array.iter
      (fun (req, ins) ->
        match Service_client.await c req with
        | Service_client.Done { outputs; queue_delay; exec_wall; bootstraps } ->
          let bits = Client.decrypt_bits client outputs in
          let expected = Pytfhe_backend.Plain_eval.run compiled.Pipeline.netlist ins in
          let m = List.for_all2 (fun (_, e) g -> e = g) expected (Array.to_list bits) in
          if not m then ok := false;
          Format.printf "request %d: %d bootstraps, %.3fs queued + %.3fs exec, outputs %s@."
            req bootstraps queue_delay exec_wall
            (if m then "MATCH plaintext reference" else "MISMATCH")
        | Service_client.Failed { code; message } ->
          ok := false;
          Format.printf "request %d: FAILED (%s: %s)@." req
            (Service.string_of_error_code code)
            message)
      jobs;
    if shutdown then begin
      Format.printf "sending shutdown@.";
      Service_client.shutdown c
    end;
    if not !ok then exit 1
  in
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Service address.") in
  let port = Arg.(required & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc:"Service port.") in
  let client_id =
    Arg.(value & opt (some string) None
         & info [ "client-id" ] ~docv:"ID"
             ~doc:"Tenant identity to register the cloud keyset under (default: a digest of \
                   the generated secret keyset).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed (keys and inputs).") in
  let count = Arg.(value & opt int 1 & info [ "count" ] ~docv:"N" ~doc:"Submit $(docv) independent copies (exercises cross-request batching).") in
  let shutdown = Arg.(value & flag & info [ "shutdown" ] ~doc:"Shut the server down after the replies arrive.") in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Register a keyset with a running service, submit encrypted workload requests and \
             verify the decrypted replies")
    Term.(const run $ workload_arg $ host $ port $ client_id $ seed $ count $ shutdown)

let decrypt_cmd =
  let run secret input =
    let client = Client.load secret in
    let cts = Pytfhe_core.Ciphertext_file.read input in
    let bits = Client.decrypt_bits client cts in
    let s = String.init (Array.length bits) (fun i -> if bits.(i) then '1' else '0') in
    Format.printf "%s@." s
  in
  let secret = Arg.(required & opt (some file) None & info [ "secret" ] ~docv:"FILE" ~doc:"Secret keyset.") in
  let input = Arg.(required & opt (some file) None & info [ "input" ] ~docv:"FILE" ~doc:"Ciphertext bundle.") in
  Cmd.v (Cmd.info "decrypt" ~doc:"Decrypt a ciphertext bundle with the secret key") Term.(const run $ secret $ input)

let () =
  (* In a process spawned by Dist_eval this serves gates and never returns. *)
  Pytfhe_backend.Dist_eval.worker_entry ();
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "pytfhe" ~version:"1.0.0" ~doc:"End-to-end TFHE compilation and execution framework" in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            list_cmd; compile_cmd; disasm_cmd; stat_cmd; estimate_cmd; run_cmd; verilog_cmd; json_cmd; dot_cmd; vcd_cmd; equiv_cmd;
            synth_cmd; keygen_cmd;
            encrypt_cmd; eval_cmd; decrypt_cmd; trace_validate_cmd; serve_cmd; submit_cmd;
          ]))
