module Rng = Pytfhe_util.Rng
module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate
module Binary = Pytfhe_circuit.Binary
module Stats = Pytfhe_circuit.Stats
module Executor = Pytfhe_backend.Executor
open Pytfhe_core
open Pytfhe_chiseltorch

(* A small unoptimized circuit with obvious redundancy. *)
let redundant_circuit () =
  let net = Netlist.create ~hash_consing:false ~fold_constants:false () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let x1 = Netlist.gate net Gate.Xor a b in
  let x2 = Netlist.gate net Gate.Xor a b in
  let _dead = Netlist.gate net Gate.Or a b in
  Netlist.mark_output net "o" (Netlist.gate net Gate.And x1 x2);
  net

let test_pipeline_optimizes () =
  let c = Pipeline.compile ~name:"redundant" (redundant_circuit ()) in
  (* xor shared, and(x,x) folded, dead or removed: one gate remains. *)
  Alcotest.(check int) "one gate after optimization" 1 c.Pipeline.stats.Stats.gates;
  match c.Pipeline.opt_report with
  | Some r ->
    Alcotest.(check int) "report before" 4 r.Pytfhe_synth.Opt.gates_before;
    Alcotest.(check int) "report after" 1 r.Pytfhe_synth.Opt.gates_after
  | None -> Alcotest.fail "expected an optimization report"

let test_pipeline_unoptimized_mode () =
  let c = Pipeline.compile ~optimize:false ~name:"raw" (redundant_circuit ()) in
  Alcotest.(check int) "gates kept" 4 c.Pipeline.stats.Stats.gates;
  Alcotest.(check bool) "no report" true (c.Pipeline.opt_report = None)

let test_pipeline_binary_consistent () =
  let c = Pipeline.compile ~name:"ha" (redundant_circuit ()) in
  let parsed = Binary.parse c.Pipeline.binary in
  List.iter
    (fun (a, b) ->
      Alcotest.(check (list bool)) "binary function"
        (List.map snd (Netlist.eval_outputs c.Pipeline.netlist [| a; b |]))
        (List.map snd (Netlist.eval_outputs parsed [| a; b |])))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_pipeline_compile_model () =
  let model =
    [ Nn.Linear { in_features = 4; out_features = 2; weights = Array.init 8 (fun i -> float_of_int i /. 8.0); bias = None } ]
  in
  let c =
    Pipeline.compile_model ~name:"tiny-linear" ~dtype:(Dtype.Fixed { width = 8; frac = 4 })
      ~input_shape:[| 4 |] model
  in
  Alcotest.(check int) "inputs 4x8 bits" 32 c.Pipeline.stats.Stats.inputs;
  Alcotest.(check int) "outputs 2x8 bits" 16 c.Pipeline.stats.Stats.outputs;
  Alcotest.(check bool) "nonempty" true (c.Pipeline.stats.Stats.gates > 0)

let test_pipeline_compile_workload () =
  match Pytfhe_vipbench.Suite.find "hamming_distance" with
  | None -> Alcotest.fail "workload missing"
  | Some w ->
    let c = Pipeline.compile_workload w in
    Alcotest.(check string) "name" "hamming_distance" c.Pipeline.prog_name;
    Alcotest.(check bool) "schedule computed" true (c.Pipeline.schedule.Pytfhe_circuit.Levelize.depth > 0)


let test_pipeline_failure_probability () =
  let c = Pipeline.compile ~name:"ha" (redundant_circuit ()) in
  let p_default = Pipeline.failure_probability c Pytfhe_tfhe.Params.default_128 in
  Alcotest.(check bool) "tiny for default params" true (p_default < 1e-15 && p_default >= 0.0);
  (match Pipeline.check_correctness c Pytfhe_tfhe.Params.default_128 with
  | `Ok _ -> ()
  | `Risky p -> Alcotest.failf "default params flagged risky: %g" p);
  (* a deliberately broken parameter set must be flagged, and more gates
     must mean more failure *)
  let broken =
    { Pytfhe_tfhe.Params.test with
      Pytfhe_tfhe.Params.name = "broken";
      tlwe = { Pytfhe_tfhe.Params.test.Pytfhe_tfhe.Params.tlwe with Pytfhe_tfhe.Params.tlwe_stdev = 0.05 } }
  in
  (match Pipeline.check_correctness c broken with
  | `Risky p -> Alcotest.(check bool) "broken flagged" true (p > 1e-6)
  | `Ok p -> Alcotest.failf "broken params accepted: %g" p);
  let big = Pipeline.compile_workload (Option.get (Pytfhe_vipbench.Suite.find "nr_solver")) in
  Alcotest.(check bool) "monotone in gate count" true
    (Pipeline.failure_probability big broken >= Pipeline.failure_probability c broken)

(* ------------------------------------------------------------------ *)
(* Client / server (test parameters)                                   *)
(* ------------------------------------------------------------------ *)

let client_keys = lazy (Client.keygen ~params:Pytfhe_tfhe.Params.test ~seed:404 ())

let test_client_bit_roundtrip () =
  let client, _cloud = Lazy.force client_keys in
  List.iter
    (fun b -> Alcotest.(check bool) "bit roundtrip" b (Client.decrypt_bit client (Client.encrypt_bit client b)))
    [ true; false; true ]

let test_client_value_roundtrip () =
  let client, _cloud = Lazy.force client_keys in
  List.iter
    (fun (dtype, v) ->
      let cts = Client.encrypt_value client dtype v in
      Alcotest.(check (float 1e-9)) "value roundtrip" v (Client.decrypt_value client dtype cts))
    [
      (Dtype.UInt 8, 200.0);
      (Dtype.SInt 8, -77.0);
      (Dtype.Fixed { width = 8; frac = 4 }, 3.25);
      (Dtype.Float { e = 5; m = 6 }, -1.5);
    ]

let test_cloud_key_size_reported () =
  let client, _ = Lazy.force client_keys in
  (* Test parameters: just assert it is a sane positive number of bytes. *)
  Alcotest.(check bool) "positive key size" true (Client.cloud_key_bytes client > 1024)

let test_end_to_end_encrypted_add () =
  (* Compile a 4-bit adder with ChiselTorch-level tooling, encrypt two
     values, evaluate on the server, decrypt: the full Fig. 1 flow. *)
  let client, cloud = Lazy.force client_keys in
  let net = Netlist.create () in
  let a = Pytfhe_hdl.Bus.input net "a" 4 in
  let b = Pytfhe_hdl.Bus.input net "b" 4 in
  Pytfhe_hdl.Bus.output net "s" (Pytfhe_hdl.Arith.add net a b);
  let compiled = Pipeline.compile ~name:"add4" net in
  let encode v = Array.init 4 (fun i -> (v asr i) land 1 = 1) in
  List.iter
    (fun (x, y) ->
      let cts = Client.encrypt_bits client (Array.append (encode x) (encode y)) in
      let outs, stats = Server.run Server.Cpu cloud compiled cts in
      let bits = Client.decrypt_bits client outs in
      let v = ref 0 in
      Array.iteri (fun i bit -> if bit then v := !v lor (1 lsl i)) bits;
      Alcotest.(check int) (Printf.sprintf "%d+%d" x y) ((x + y) land 0xF) !v;
      Alcotest.(check bool) "did real bootstrapping" true (stats.Executor.bootstraps_executed > 0);
      Alcotest.(check string) "unified stats name the backend" "cpu" stats.Executor.backend)
    [ (3, 4); (9, 9); (15, 1) ]


let test_evaluate_distributed_matches_sequential () =
  let client, cloud = Lazy.force client_keys in
  let net = Netlist.create () in
  let a = Pytfhe_hdl.Bus.input net "a" 3 in
  let b = Pytfhe_hdl.Bus.input net "b" 3 in
  Pytfhe_hdl.Bus.output net "s" (Pytfhe_hdl.Arith.add net a b);
  let compiled = Pipeline.compile ~name:"add3" net in
  let cts = Client.encrypt_bits client [| true; false; true; false; true; false |] in
  let seq_out, _ = Server.run Server.Cpu cloud compiled cts in
  let outs, stats =
    Server.run (Server.Multiprocess { workers = 2; config = None }) cloud compiled cts
  in
  Alcotest.(check bool) "bit-exact with sequential server path" true (outs = seq_out);
  Alcotest.(check int) "two worker processes" 2 stats.Executor.workers;
  (match stats.Executor.detail with
  | Executor.Multiprocess_stats d ->
    Alcotest.(check int) "detail carries the dist stats" 2 d.Pytfhe_backend.Dist_eval.workers_started
  | _ -> Alcotest.fail "multiprocess run returned non-multiprocess detail");
  (* the deprecated flag-triple wrapper stays bit-exact with ?opts *)
  let wrap_seq, _ = Server.run_legacy Server.Cpu cloud compiled cts in
  let wrap_par, _ =
    Server.run_legacy ~batch:2 (Server.Multicore { workers = 2 }) cloud compiled cts
  in
  Alcotest.(check bool) "deprecated run_legacy agrees" true
    (wrap_seq = seq_out && wrap_par = seq_out);
  Alcotest.(check (array bool)) "decrypts to 5+2=7 (LSB first)" [| true; true; true |]
    (Client.decrypt_bits client outs)

let test_protocol_files () =
  (* The full CLI protocol through the library API: persist keys, encrypt
     to a file, evaluate from the files only, decrypt. *)
  let dir = Filename.temp_file "pytfhe" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let secret_path = Filename.concat dir "secret.key" in
  let cloud_path = Filename.concat dir "cloud.key" in
  let ct_path = Filename.concat dir "in.ct" in
  let out_path = Filename.concat dir "out.ct" in
  let client, cloud = Lazy.force client_keys in
  Client.save client secret_path;
  Server.save_cloud_keyset cloud cloud_path;
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  Netlist.mark_output net "o" (Netlist.gate net Gate.Xor a b);
  let compiled = Pipeline.compile ~name:"xor1" net in
  let client' = Client.load secret_path in
  let cloud' = Server.load_cloud_keyset cloud_path in
  Ciphertext_file.write ct_path (Client.encrypt_bits client' [| true; false |]);
  let outs, _ = Server.run Server.Cpu cloud' compiled (Ciphertext_file.read ct_path) in
  Ciphertext_file.write out_path outs;
  let bits = Client.decrypt_bits client (Ciphertext_file.read out_path) in
  Alcotest.(check (array bool)) "xor through files" [| true |] bits;
  List.iter (fun f -> Sys.remove (Filename.concat dir f)) [ "secret.key"; "cloud.key"; "in.ct"; "out.ct" ];
  Sys.rmdir dir

let test_server_estimates_ordering () =
  (* A wide program: GPU > distributed > single core. *)
  let net = Netlist.create ~hash_consing:false ~fold_constants:false () in
  let ins = Array.init 65 (fun i -> Netlist.input net (Printf.sprintf "i%d" i)) in
  let layer = ref (Array.sub ins 0 64) in
  for _ = 1 to 50 do
    layer := Array.mapi (fun i x -> Netlist.gate net Gate.Xor x ins.((i + 1) mod 65)) !layer
  done;
  Array.iteri (fun i x -> Netlist.mark_output net (Printf.sprintf "o%d" i) x) !layer;
  let c = Pipeline.compile ~optimize:false ~name:"wide" net in
  let single = Server.estimate Server.Single_core c in
  let dist = Server.estimate (Server.Distributed { nodes = 4 }) c in
  let gpu = Server.estimate (Server.Gpu Pytfhe_backend.Cost_model.gpu_a5000) c in
  let cufhe = Server.estimate (Server.Gpu_cufhe Pytfhe_backend.Cost_model.gpu_a5000) c in
  Alcotest.(check bool) "single slowest" true (single > dist);
  Alcotest.(check bool) "gpu fastest" true (gpu < dist);
  Alcotest.(check bool) "cufhe ~ single core scale" true (cufhe > gpu);
  Alcotest.(check bool) "speedup helper consistent" true
    (Float.abs (Server.speedup_over_single_core (Server.Distributed { nodes = 4 }) c -. (single /. dist)) < 1e-9)

let test_backend_names () =
  Alcotest.(check string) "single" "single-core CPU" (Server.sim_platform_name Server.Single_core);
  Alcotest.(check string) "dist" "distributed CPU (4 nodes)"
    (Server.sim_platform_name (Server.Distributed { nodes = 4 }));
  Alcotest.(check bool) "gpu name mentions model" true
    (String.length (Server.sim_platform_name (Server.Gpu Pytfhe_backend.Cost_model.gpu_4090)) > 4);
  (* executor names round-trip through the CLI parser *)
  Alcotest.(check string) "exec cpu" "cpu" (Server.exec_backend_name Server.Cpu);
  Alcotest.(check string) "exec multicore" "par:2"
    (Server.exec_backend_name (Server.Multicore { workers = 2 }));
  Alcotest.(check string) "exec multiprocess" "dist:3"
    (Server.exec_backend_name (Server.Multiprocess { workers = 3; config = None }));
  List.iter
    (fun b ->
      match Server.exec_backend_of_name (Server.exec_backend_name b) with
      | Ok b' ->
        Alcotest.(check string) "name round-trips" (Server.exec_backend_name b)
          (Server.exec_backend_name b')
      | Error e -> Alcotest.fail e)
    [
      Server.Cpu;
      Server.Multicore { workers = 0 };
      Server.Multicore { workers = 4 };
      Server.Multiprocess { workers = 2; config = None };
    ];
  (match Server.exec_backend_of_name "dist" with
  | Ok (Server.Multiprocess { workers = 2; _ }) -> ()
  | _ -> Alcotest.fail "bare dist should parse to 2 workers");
  (match Server.exec_backend_of_name "gpu" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown backend name must be rejected")


(* ------------------------------------------------------------------ *)
(* Homomorphic integers (Hint)                                         *)
(* ------------------------------------------------------------------ *)

let hint_w = 4

let hint_enc client v =
  Hint.of_samples (Client.encrypt_value client (Dtype.SInt hint_w) (float_of_int v))

let hint_dec client h =
  int_of_float (Client.decrypt_value client (Dtype.SInt hint_w) (Hint.to_samples h))

let wrap4 v =
  let m = ((v mod 16) + 16) mod 16 in
  if m >= 8 then m - 16 else m

let test_hint_add_sub_mul () =
  let client, cloud = Lazy.force client_keys in
  List.iter
    (fun (a, b) ->
      let ha = hint_enc client a and hb = hint_enc client b in
      Alcotest.(check int) (Printf.sprintf "%d+%d" a b) (wrap4 (a + b))
        (hint_dec client (Hint.add cloud ha hb));
      Alcotest.(check int) (Printf.sprintf "%d-%d" a b) (wrap4 (a - b))
        (hint_dec client (Hint.sub cloud ha hb));
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (wrap4 (a * b))
        (hint_dec client (Hint.mul cloud ha hb)))
    [ (3, 4); (-2, 5); (7, -8); (-1, -1) ]

let test_hint_compare_and_select () =
  let client, cloud = Lazy.force client_keys in
  List.iter
    (fun (a, b) ->
      let ha = hint_enc client a and hb = hint_enc client b in
      Alcotest.(check bool) "lt_s" (a < b) (Client.decrypt_bit client (Hint.lt_s cloud ha hb));
      Alcotest.(check bool) "eq" (a = b) (Client.decrypt_bit client (Hint.eq cloud ha hb));
      Alcotest.(check int) "max_s" (max a b) (hint_dec client (Hint.max_s cloud ha hb));
      Alcotest.(check int) "relu" (max a 0) (hint_dec client (Hint.relu cloud ha)))
    [ (3, -4); (-5, -2); (6, 6) ]

let test_hint_constants_and_resize () =
  let client, cloud = Lazy.force client_keys in
  let c = Hint.constant cloud ~width:hint_w (-3) in
  Alcotest.(check int) "constant" (-3) (hint_dec client c);
  let wide = Hint.resize cloud c 6 in
  Alcotest.(check int) "sign extension preserves value" (-3)
    (int_of_float (Client.decrypt_value client (Dtype.SInt 6) (Hint.to_samples wide)));
  Alcotest.(check bool) "gate counter advances" true (Hint.gate_count () > 0)

(* ------------------------------------------------------------------ *)
(* Framework baselines                                                 *)
(* ------------------------------------------------------------------ *)

module Profile = Pytfhe_frameworks.Profile

let tiny_model =
  [
    Nn.Conv2d { in_ch = 1; out_ch = 1; kernel = 3; stride = 1; padding = 0;
                weights = Array.init 9 (fun i -> (float_of_int i -. 4.0) /. 8.0); bias = None };
    Nn.Relu;
    Nn.Flatten;
    Nn.Linear { in_features = 16; out_features = 2;
                weights = Array.init 32 (fun i -> (float_of_int (i mod 7) -. 3.0) /. 8.0); bias = None };
  ]

let test_frameworks_agree_functionally () =
  (* All four lowerings of the same model compute the same function on the
     shared 8-bit core (Transpiler runs wider, so compare its low bits). *)
  let rng = Rng.create ~seed:5150 () in
  let nets = List.map (fun p -> (p, Profile.build_model p tiny_model ~input_shape:[| 1; 6; 6 |])) Profile.all in
  let reference_bits p (net : Netlist.t) patterns =
    let w = p.Profile.data_width in
    let ins =
      Array.concat
        (List.map (fun v -> Array.init w (fun i -> (v asr i) land 1 = 1)) (Array.to_list patterns))
    in
    let outs = Netlist.eval_outputs net ins in
    (* group output bits; keep only the low 8 bits of each element *)
    let bits = Array.of_list (List.map snd outs) in
    let elements = Array.length bits / w in
    Array.init elements (fun e ->
        let v = ref 0 in
        for i = 0 to 7 do
          if bits.((e * w) + i) then v := !v lor (1 lsl i)
        done;
        !v)
  in
  for _ = 1 to 3 do
    (* Small magnitudes: the lowerings agree bit-for-bit on the low 8 bits
       only while intermediate ReLU inputs stay within the 8-bit range (the
       16-bit Transpiler does not wrap where the 8-bit DSLs do). *)
    let patterns = Array.init 36 (fun _ -> Rng.int rng 8) in
    (* sign-extend the 8-bit patterns for the 16-bit Transpiler inputs *)
    let results =
      List.map
        (fun (p, net) ->
          let scaled =
            if p.Profile.data_width = 8 then patterns
            else
              Array.map
                (fun v -> if v >= 128 then v lor (((1 lsl (p.Profile.data_width - 8)) - 1) lsl 8) else v)
                patterns
          in
          (p.Profile.name, reference_bits p net scaled))
        nets
    in
    match results with
    | (_, first) :: rest ->
      List.iter
        (fun (name, r) ->
          Alcotest.(check (array int)) (name ^ " matches the shared function") first r)
        rest
    | [] -> Alcotest.fail "no frameworks"
  done

let test_frameworks_gate_count_ordering () =
  let count p = Netlist.bootstrap_count (Profile.build_model p tiny_model ~input_shape:[| 1; 6; 6 |]) in
  let py = count Profile.pytfhe in
  let cin = count Profile.cingulata in
  let e3 = count Profile.e3 in
  let tr = count Profile.transpiler in
  Alcotest.(check bool) "pytfhe smallest" true (py < cin);
  Alcotest.(check bool) "cingulata < e3" true (cin < e3);
  Alcotest.(check bool) "transpiler much larger" true (tr > 5 * py)

(* Must run before anything else: in a spawned worker process this serves
   the gate protocol and never returns. *)
let () = Pytfhe_backend.Dist_eval.worker_entry ()

let () =
  Alcotest.run "core"
    [
      ( "pipeline",
        [
          Alcotest.test_case "optimizes" `Quick test_pipeline_optimizes;
          Alcotest.test_case "unoptimized mode" `Quick test_pipeline_unoptimized_mode;
          Alcotest.test_case "binary consistent" `Quick test_pipeline_binary_consistent;
          Alcotest.test_case "compile model" `Quick test_pipeline_compile_model;
          Alcotest.test_case "compile workload" `Quick test_pipeline_compile_workload;
          Alcotest.test_case "failure probability" `Quick test_pipeline_failure_probability;
        ] );
      ( "client-server",
        [
          Alcotest.test_case "bit roundtrip" `Slow test_client_bit_roundtrip;
          Alcotest.test_case "typed value roundtrip" `Slow test_client_value_roundtrip;
          Alcotest.test_case "cloud key size" `Slow test_cloud_key_size_reported;
          Alcotest.test_case "end-to-end encrypted add" `Slow test_end_to_end_encrypted_add;
          Alcotest.test_case "distributed server path" `Slow
            test_evaluate_distributed_matches_sequential;
          Alcotest.test_case "protocol files" `Slow test_protocol_files;
          Alcotest.test_case "estimate ordering" `Quick test_server_estimates_ordering;
          Alcotest.test_case "backend names" `Quick test_backend_names;
        ] );
      ( "hint",
        [
          Alcotest.test_case "add/sub/mul" `Slow test_hint_add_sub_mul;
          Alcotest.test_case "compare/select" `Slow test_hint_compare_and_select;
          Alcotest.test_case "constants/resize" `Slow test_hint_constants_and_resize;
        ] );
      ( "frameworks",
        [
          Alcotest.test_case "functional agreement" `Quick test_frameworks_agree_functionally;
          Alcotest.test_case "gate-count ordering" `Quick test_frameworks_gate_count_ordering;
        ] );
    ]
