(* Shared circuit generators for the test suite.

   The differential suites (cross-backend, par-eval) all need the same
   three DAG shapes: a wide embarrassingly-parallel layer stack, a serial
   chain, and a seeded random DAG drawing from the full 11-gate cell
   library.  Construction-time optimizations are disabled so the generated
   structure (and therefore the wave schedule) is exactly what the seed
   dictates. *)

module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate
module Rng = Pytfhe_util.Rng

(* [width] parallel gates per level for [depth] levels over [width + 1]
   inputs; every level is one full wave. *)
let wide ~width ~depth =
  let net = Netlist.create ~hash_consing:false ~fold_constants:false () in
  let inputs = Array.init (width + 1) (fun i -> Netlist.input net (Printf.sprintf "i%d" i)) in
  let layer = ref (Array.init width (fun i -> inputs.(i))) in
  for _ = 1 to depth do
    layer :=
      Array.mapi (fun i x -> Netlist.gate net Gate.Xor x inputs.((i + 1) mod (width + 1))) !layer
  done;
  Array.iteri (fun i x -> Netlist.mark_output net (Printf.sprintf "o%d" i) x) !layer;
  net

(* A fully serial chain of [depth] bootstrapped gates: the worst case for
   every parallel backend, and the shape noise-accumulation tests need. *)
let chain ~depth =
  let net = Netlist.create ~hash_consing:false ~fold_constants:false () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let rec go x n = if n = 0 then x else go (Netlist.gate net Gate.Xor x b) (n - 1) in
  Netlist.mark_output net "o" (go a depth);
  net

(* Seeded random DAG: [inputs] primary inputs, one random constant, then
   [gates] gates whose kinds and fan-ins are drawn uniformly (Not reuses
   its single fan-in).  The [outputs] most recent nodes become primary
   outputs, so deep nodes stay live. *)
(* Like {!random}, but the draw also emits programmable LUT cells: arity-1
   reencode cells (classic operand, identity or negated table), and
   arity-2/3 cells whose operands are reencoded on demand to satisfy the
   Netlist invariant that multi-input LUT operands live in lutdom.  Classic
   gates keep drawing from the full pool — including lutdom nodes, which
   executors must view back to classic — and outputs are marked on the most
   recent nodes of either encoding, so the classic-view boundary is
   exercised at operands and outputs alike. *)
let random_lut ?(inputs = 4) ?(gates = 14) ?(outputs = 4) ~seed () =
  let rng = Rng.create ~seed () in
  let net = Netlist.create ~hash_consing:false ~fold_constants:false () in
  let nodes = ref [] in
  for i = 0 to inputs - 1 do
    nodes := Netlist.input net (Printf.sprintf "i%d" i) :: !nodes
  done;
  nodes := Netlist.const net (Rng.bool rng) :: !nodes;
  let pick () = List.nth !nodes (Rng.int rng (List.length !nodes)) in
  (* A lutdom operand for a multi-input cell: an existing LUT node, or a
     fresh reencode over a classic pick.  Reencoding a constant folds back
     to a constant (no lutdom node exists for it), so redraw; the pool
     always holds at least one non-constant input, so this terminates. *)
  let rec lutdom () =
    let x = pick () in
    if Netlist.is_lut net x then x
    else
      let y = Netlist.lut net ~table:0b10 [| x |] in
      if Netlist.is_lut net y then y else lutdom ()
  in
  let kinds = Array.of_list Gate.all in
  for _ = 1 to gates do
    let node =
      match Rng.int rng 4 with
      | 0 | 1 ->
        let g = kinds.(Rng.int rng (Array.length kinds)) in
        let a = pick () in
        let b = if g = Gate.Not then a else pick () in
        Netlist.gate net g a b
      | 2 ->
        (* arity-1 reencode: identity or negation of a classic view *)
        Netlist.lut net ~table:(if Rng.bool rng then 0b10 else 0b01) [| pick () |]
      | _ ->
        let arity = 2 + Rng.int rng 2 in
        let ins = Array.make arity (lutdom ()) in
        for i = 1 to arity - 1 do
          ins.(i) <- lutdom ()
        done;
        (* any truth table, including constant and degenerate ones — the
           builder canonicalises duplicates and respecialises the table *)
        Netlist.lut net ~table:(Rng.int rng (1 lsl (1 lsl arity))) ins
    in
    nodes := node :: !nodes
  done;
  List.iteri
    (fun i id -> if i < outputs then Netlist.mark_output net (Printf.sprintf "o%d" i) id)
    !nodes;
  net

let random ?(inputs = 4) ?(gates = 10) ?(outputs = 3) ~seed () =
  let rng = Rng.create ~seed () in
  let net = Netlist.create ~hash_consing:false ~fold_constants:false () in
  let nodes = ref [] in
  for i = 0 to inputs - 1 do
    nodes := Netlist.input net (Printf.sprintf "i%d" i) :: !nodes
  done;
  nodes := Netlist.const net (Rng.bool rng) :: !nodes;
  let pick () = List.nth !nodes (Rng.int rng (List.length !nodes)) in
  let kinds = Array.of_list Gate.all in
  for _ = 1 to gates do
    let g = kinds.(Rng.int rng (Array.length kinds)) in
    let a = pick () in
    let b = if g = Gate.Not then a else pick () in
    nodes := Netlist.gate net g a b :: !nodes
  done;
  List.iteri
    (fun i id -> if i < outputs then Netlist.mark_output net (Printf.sprintf "o%d" i) id)
    !nodes;
  net
