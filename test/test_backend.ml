module Rng = Pytfhe_util.Rng
module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate
module Levelize = Pytfhe_circuit.Levelize
module Binary = Pytfhe_circuit.Binary
open Pytfhe_backend

(* Synthetic DAG shapes for the scheduler models (shared with test_dist). *)

let wide_netlist = Gen_circuit.wide
let chain_netlist = Gen_circuit.chain

(* ------------------------------------------------------------------ *)
(* Plain evaluation                                                    *)
(* ------------------------------------------------------------------ *)

let test_plain_run_binary_matches () =
  let net = wide_netlist ~width:4 ~depth:3 in
  let bytes = Binary.assemble net in
  let rng = Rng.create ~seed:1 () in
  for _ = 1 to 10 do
    let ins = Array.init 5 (fun _ -> Rng.bool rng) in
    let expected = List.map snd (Plain_eval.run net ins) in
    let got = Array.to_list (Plain_eval.run_binary bytes ins) in
    Alcotest.(check (list bool)) "binary = netlist" expected got
  done

let test_plain_run_named () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  Netlist.mark_output net "o" (Netlist.gate net Gate.And a b);
  let result = Plain_eval.run_named net [ ("b", true); ("a", true) ] in
  Alcotest.(check (list (pair string bool))) "named eval" [ ("o", true) ] result;
  Alcotest.(check bool) "missing input raises" true
    (try
       ignore (Plain_eval.run_named net [ ("a", true) ]);
       false
     with Not_found -> true)


let test_vcd_export () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  Netlist.mark_output net "sum" (Netlist.gate net Gate.Xor a b);
  let vcd =
    Vcd.of_evaluation net [ [| false; false |]; [| true; false |]; [| true; true |]; [| true; true |] ]
  in
  let contains fragment =
    let re = Str.regexp_string fragment in
    try ignore (Str.search_forward re vcd 0); true with Not_found -> false
  in
  Alcotest.(check bool) "header" true (contains "$enddefinitions");
  Alcotest.(check bool) "declares a" true (contains "$var wire 1 ! a $end");
  Alcotest.(check bool) "declares sum" true (contains "$var wire 1 # sum $end");
  Alcotest.(check bool) "timestep 0" true (contains "#0");
  Alcotest.(check bool) "timestep 1" true (contains "#1");
  (* the last vector repeats the previous one: no #3 marker *)
  Alcotest.(check bool) "no redundant timestep" false (contains "#3");
  Alcotest.(check bool) "rejects empty" true
    (try ignore (Vcd.of_evaluation net []); false with Invalid_argument _ -> true)

let test_vcd_identifiers_scale () =
  (* more than 94 signals forces multi-character identifiers *)
  let net = Netlist.create () in
  let inputs = Array.init 100 (fun i -> Netlist.input net (Printf.sprintf "i%d" i)) in
  Netlist.mark_output net "o" (Netlist.gate net Gate.Or inputs.(0) inputs.(99));
  let vcd = Vcd.of_evaluation net [ Array.make 100 false ] in
  Alcotest.(check bool) "renders" true (String.length vcd > 0)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let test_cost_model_constants () =
  let c = Cost_model.paper_cpu in
  Alcotest.(check bool) "gate time ~15ms" true
    (c.Cost_model.gate_time > 0.010 && c.Cost_model.gate_time < 0.020);
  (* the paper's 0.094 % communication share *)
  let comm_share = c.Cost_model.comm_time /. c.Cost_model.gate_time in
  Alcotest.(check bool) "comm below 0.2%" true (comm_share < 0.002);
  Alcotest.(check bool) "fractions are a breakdown" true
    (c.Cost_model.blind_rotation_fraction +. c.Cost_model.key_switch_fraction <= 1.0);
  Alcotest.(check bool) "blind rotation dominates" true
    (c.Cost_model.blind_rotation_fraction > c.Cost_model.key_switch_fraction);
  Alcotest.(check int) "18 workers per node" 18 c.Cost_model.workers_per_node;
  Alcotest.(check bool) "throughput ~67 gates/s" true
    (let t = Cost_model.single_core_throughput c in
     t > 50.0 && t < 100.0)

let test_cost_model_calibration () =
  let c = Cost_model.calibrated_cpu ~measured_gate_time:0.123 in
  Alcotest.(check (float 1e-9)) "gate time replaced" 0.123 c.Cost_model.gate_time;
  Alcotest.(check int) "other fields preserved" 18 c.Cost_model.workers_per_node

let test_gpu_models () =
  Alcotest.(check bool) "4090 has more slots" true
    (Cost_model.gpu_4090.Cost_model.slots > Cost_model.gpu_a5000.Cost_model.slots)

(* ------------------------------------------------------------------ *)
(* Distributed CPU scheduler                                           *)
(* ------------------------------------------------------------------ *)

let cheap_cost = { Cost_model.paper_cpu with Cost_model.startup_time = 0.0 }

let test_sched_cpu_wide_scales () =
  let sched = Levelize.run (wide_netlist ~width:2000 ~depth:20) in
  let r1 = Sched_cpu.simulate { Sched_cpu.nodes = 1; cost = cheap_cost } sched in
  let r4 = Sched_cpu.simulate { Sched_cpu.nodes = 4; cost = cheap_cost } sched in
  Alcotest.(check int) "workers 1 node" 18 r1.Sched_cpu.workers;
  Alcotest.(check int) "workers 4 nodes" 72 r4.Sched_cpu.workers;
  Alcotest.(check bool) "near-ideal on one node" true (r1.Sched_cpu.speedup > 14.0);
  Alcotest.(check bool) "below ideal" true (r1.Sched_cpu.speedup <= 18.0);
  Alcotest.(check bool) "4 nodes beat 1" true (r4.Sched_cpu.speedup > r1.Sched_cpu.speedup);
  Alcotest.(check bool) "4 nodes below ideal (dispatch bound)" true (r4.Sched_cpu.speedup < 72.0)

let test_sched_cpu_serial_does_not_scale () =
  let sched = Levelize.run (chain_netlist ~depth:500) in
  let r = Sched_cpu.simulate { Sched_cpu.nodes = 4; cost = cheap_cost } sched in
  Alcotest.(check bool) "serial chain speedup ~1" true (r.Sched_cpu.speedup < 1.2)

let test_sched_cpu_makespan_decomposition () =
  let sched = Levelize.run (wide_netlist ~width:100 ~depth:5) in
  let r = Sched_cpu.simulate { Sched_cpu.nodes = 1; cost = Cost_model.paper_cpu } sched in
  let total =
    r.Sched_cpu.compute_time +. r.Sched_cpu.dispatch_time +. r.Sched_cpu.sync_time
    +. r.Sched_cpu.startup_time
  in
  Alcotest.(check (float 1e-9)) "makespan decomposes" r.Sched_cpu.makespan total

let test_sched_cpu_run_executes () =
  let net = wide_netlist ~width:8 ~depth:2 in
  let rng = Rng.create ~seed:3 () in
  let ins = Array.init 9 (fun _ -> Rng.bool rng) in
  let outs, result = Sched_cpu.run { Sched_cpu.nodes = 1; cost = cheap_cost } net ins in
  Alcotest.(check (list bool)) "values match plain eval"
    (List.map snd (Plain_eval.run net ins))
    (List.map snd outs);
  Alcotest.(check bool) "simulated time positive" true (result.Sched_cpu.makespan > 0.0)

(* ------------------------------------------------------------------ *)
(* GPU scheduler                                                       *)
(* ------------------------------------------------------------------ *)

let test_gpu_cufhe_is_per_gate () =
  let sched = Levelize.run (wide_netlist ~width:10 ~depth:10) in
  let g = Cost_model.gpu_a5000 in
  let r = Sched_gpu.simulate_cufhe g ~cpu:Cost_model.paper_cpu sched in
  let per_gate =
    g.Cost_model.launch_time +. g.Cost_model.h2d_time +. g.Cost_model.kernel_time
    +. g.Cost_model.d2h_time
  in
  Alcotest.(check (float 1e-9)) "serialized" (100.0 *. per_gate) r.Sched_gpu.makespan

let test_gpu_pytfhe_beats_cufhe_on_wide () =
  let sched = Levelize.run (wide_netlist ~width:1000 ~depth:30) in
  let speedup = Sched_gpu.speedup_over_cufhe Cost_model.gpu_a5000 ~cpu:Cost_model.paper_cpu sched in
  Alcotest.(check bool) (Printf.sprintf "speedup %.1f > 30" speedup) true (speedup > 30.0);
  Alcotest.(check bool) "bounded by slots+overhead" true (speedup < 80.0)

let test_gpu_pytfhe_modest_on_serial () =
  let sched = Levelize.run (chain_netlist ~depth:200) in
  let speedup = Sched_gpu.speedup_over_cufhe Cost_model.gpu_a5000 ~cpu:Cost_model.paper_cpu sched in
  Alcotest.(check bool) "little gain on serial code" true (speedup < 2.0)

let test_gpu_4090_faster_than_a5000 () =
  let sched = Levelize.run (wide_netlist ~width:2000 ~depth:10) in
  let a = Sched_gpu.simulate_pytfhe Cost_model.gpu_a5000 ~cpu:Cost_model.paper_cpu sched in
  let b = Sched_gpu.simulate_pytfhe Cost_model.gpu_4090 ~cpu:Cost_model.paper_cpu sched in
  Alcotest.(check bool) "more SMs, shorter makespan" true
    (b.Sched_gpu.makespan < a.Sched_gpu.makespan)

let test_gpu_timelines () =
  let sched = Levelize.run (wide_netlist ~width:2 ~depth:2) in
  let c = Sched_gpu.simulate_cufhe Cost_model.gpu_a5000 ~cpu:Cost_model.paper_cpu sched in
  Alcotest.(check int) "3 segments per gate" 12 (List.length c.Sched_gpu.timeline);
  let p = Sched_gpu.simulate_pytfhe Cost_model.gpu_a5000 ~cpu:Cost_model.paper_cpu sched in
  Alcotest.(check bool) "pytfhe timeline present" true (List.length p.Sched_gpu.timeline > 0);
  List.iter
    (fun seg ->
      Alcotest.(check bool) "segments well formed" true
        (seg.Sched_gpu.t_end >= seg.Sched_gpu.t_start))
    (c.Sched_gpu.timeline @ p.Sched_gpu.timeline)

let test_gpu_batches_of_splits_oversized_waves () =
  (* Regression: a single wave wider than [max_batch_nodes] used to be
     emitted as one oversized batch, silently violating the memory cap. *)
  let sched = Levelize.run (wide_netlist ~width:25 ~depth:3) in
  let bound = 10 in
  let batches = Sched_gpu.batches_of ~max_batch_nodes:bound sched in
  List.iter
    (fun widths ->
      Alcotest.(check bool) "batch within memory bound" true
        (List.fold_left ( + ) 0 widths <= bound))
    batches;
  Alcotest.(check int) "total nodes preserved" sched.Levelize.total_bootstraps
    (List.fold_left (fun acc ws -> acc + List.fold_left ( + ) 0 ws) 0 batches);
  (* A bound the waves fit under exactly reproduces the greedy packing. *)
  let loose = Sched_gpu.batches_of ~max_batch_nodes:1_000 sched in
  Alcotest.(check int) "wide bound still covers every node" sched.Levelize.total_bootstraps
    (List.fold_left (fun acc ws -> acc + List.fold_left ( + ) 0 ws) 0 loose);
  Alcotest.(check bool) "rejects bound < 1" true
    (try
       ignore (Sched_gpu.batches_of ~max_batch_nodes:0 sched);
       false
     with Invalid_argument _ -> true)

let test_gpu_batching_respects_memory_bound () =
  (* Exaggerate the per-launch overhead so the batching effect dominates:
     fewer, larger CUDA graphs amortize launches. *)
  let gpu = { Cost_model.gpu_a5000 with Cost_model.launch_time = 50e-3; graph_node_time = 0.0 } in
  let sched = Levelize.run (wide_netlist ~width:100 ~depth:10) in
  let small = Sched_gpu.simulate_pytfhe ~max_batch_nodes:100 gpu ~cpu:Cost_model.paper_cpu sched in
  let large = Sched_gpu.simulate_pytfhe ~max_batch_nodes:1_000_000 gpu ~cpu:Cost_model.paper_cpu sched in
  Alcotest.(check bool) "one graph pays one launch" true
    (small.Sched_gpu.makespan > large.Sched_gpu.makespan +. 0.1)


let test_sched_asap_beats_barriers () =
  (* ASAP removes the wave barrier, so it can never be slower than the
     level-synchronous Algorithm 1 on the same DAG (same costs). *)
  let net = wide_netlist ~width:300 ~depth:20 in
  let config = { Sched_cpu.nodes = 1; cost = cheap_cost } in
  let barrier = Sched_cpu.simulate config (Levelize.run net) in
  let asap = Sched_cpu.simulate_asap config net in
  Alcotest.(check bool) "asap <= barrier" true
    (asap.Sched_cpu.makespan <= barrier.Sched_cpu.makespan +. 1e-9);
  Alcotest.(check bool) "same work" true
    (Float.abs (asap.Sched_cpu.single_thread_time -. barrier.Sched_cpu.single_thread_time) < 1e-9)

let test_sched_asap_serial_chain_is_serial () =
  let depth = 100 in
  let net = chain_netlist ~depth in
  let config = { Sched_cpu.nodes = 4; cost = cheap_cost } in
  let r = Sched_cpu.simulate_asap config net in
  (* A chain cannot run faster than depth x gate time. *)
  let lower = float_of_int depth *. cheap_cost.Cost_model.gate_time in
  Alcotest.(check bool) "chain lower bound respected" true (r.Sched_cpu.makespan >= lower)

let test_gpu_batched_sits_between () =
  let net = wide_netlist ~width:500 ~depth:20 in
  let sched = Levelize.run net in
  let g = Cost_model.gpu_a5000 in
  let per_gate = Sched_gpu.simulate_cufhe g ~cpu:Cost_model.paper_cpu sched in
  let batched = Sched_gpu.simulate_cufhe_batched g ~cpu:Cost_model.paper_cpu net in
  let graphs = Sched_gpu.simulate_pytfhe g ~cpu:Cost_model.paper_cpu sched in
  Alcotest.(check bool) "batched beats per-gate" true
    (batched.Sched_gpu.makespan < per_gate.Sched_gpu.makespan);
  Alcotest.(check bool) "graphs beat batched" true
    (graphs.Sched_gpu.makespan < batched.Sched_gpu.makespan)


let test_stream_exec_matches_netlist () =
  let net = wide_netlist ~width:6 ~depth:4 in
  let bytes = Binary.assemble net in
  let rng = Rng.create ~seed:77 () in
  for _ = 1 to 10 do
    let ins = Array.init 7 (fun _ -> Rng.bool rng) in
    let expected = List.map snd (Plain_eval.run net ins) in
    Alcotest.(check (list bool)) "stream = netlist" expected
      (Array.to_list (Stream_exec.run_bits bytes ins))
  done

let test_stream_exec_handles_constants () =
  let net = Netlist.create ~fold_constants:false () in
  let a = Netlist.input net "a" in
  let t = Netlist.const net true in
  Netlist.mark_output net "o" (Netlist.gate net Gate.Xor a t);
  let bytes = Binary.assemble net in
  Alcotest.(check (array bool)) "xor with materialised constant" [| false |]
    (Stream_exec.run_bits bytes [| true |]);
  Alcotest.(check (array bool)) "other polarity" [| true |]
    (Stream_exec.run_bits bytes [| false |])

(* Raw 128-bit instructions with chosen (a, b, tag) fields — lets the
   tests reach decoder paths [Binary.assemble] can never emit. *)
let craft insts =
  let buf = Buffer.create 64 in
  List.iter
    (fun (a, b, tag) ->
      let b64 = Int64.of_int b in
      let lo = Int64.logor (Int64.shift_left b64 4) (Int64.of_int (tag land 0xF)) in
      let hi =
        Int64.logor (Int64.shift_left (Int64.of_int a) 2) (Int64.shift_right_logical b64 60)
      in
      Buffer.add_int64_le buf lo;
      Buffer.add_int64_le buf hi)
    insts;
  Buffer.to_bytes buf

let test_stream_exec_rejects_malformed () =
  let reject label ins bytes =
    Alcotest.(check bool) label true
      (try ignore (Stream_exec.run_bits bytes ins); false with Failure _ -> true)
  in
  let reject0 label bytes = reject label [||] bytes in
  reject0 "empty" (Bytes.create 0);
  reject0 "truncated" (Bytes.create 8);
  (* valid instructions but no header first: craft by assembling then
     swapping the header with the first input *)
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  Netlist.mark_output net "o" a;
  let bytes = Binary.assemble net in
  let swapped = Bytes.copy bytes in
  Bytes.blit bytes 0 swapped 16 16;
  Bytes.blit bytes 16 swapped 0 16;
  reject "header not first" [| true |] swapped;
  (* instruction stream cut mid-instruction: length no longer a multiple
     of the 16-byte instruction size *)
  reject "truncated mid-instruction" [| true |] (Bytes.sub bytes 0 (Bytes.length bytes - 8));
  let all_ones = 0x3FFFFFFFFFFFFFFF in
  (* tag 0xD is not a gate opcode (gates are 1-11), a LUT record (0xC) nor
     a declaration *)
  reject0 "unknown instruction tag" (craft [ (0, 0, 0x0); (1, 2, 0xD) ]);
  (* a gate whose fan-in points past every assigned index *)
  reject "forward gate reference" [| true |]
    (craft [ (0, 1, 0x0); (all_ones, 1, 0xF); (5, 1, 6) ]);
  (* more gates than the header declared *)
  reject "gate count overflow" [| true |]
    (craft [ (0, 0, 0x0); (all_ones, 1, 0xF); (1, 1, 6) ]);
  (* duplicate header mid-stream *)
  reject "duplicate header" [| true |]
    (craft [ (0, 1, 0x0); (all_ones, 1, 0xF); (0, 1, 0x0); (1, 1, 6) ])

(* Structurally corrupt LUT records (tag 0xC).  Every case must surface as
   [Wire.Corrupt] — a graceful rejection of a hostile stream — and never as
   an assertion failure, out-of-bounds access or silent wrong answer.  The
   B-field layout under test: arity in bits 0-1, table in 2-9, second and
   third operands in 10-35 and 36-61. *)
let test_stream_exec_rejects_malformed_lut () =
  let reject_corrupt label ins bytes =
    Alcotest.(check bool) label true
      (try
         ignore (Stream_exec.run_bits bytes ins);
         false
       with Pytfhe_util.Wire.Corrupt _ -> true)
  in
  (* index 0 is the reserved null slot, so the first input lands at 1 *)
  let header_and_input = [ (0, 1, 0x0); (0x3FFFFFFFFFFFFFFF, 1, 0xF) ] in
  let lut b = craft (header_and_input @ [ (1, b, 0xC) ]) in
  (* arity field 0: no such LUT record *)
  reject_corrupt "lut arity 0" [| true |] (lut 0);
  (* arity 1 admits 4 tables; 0b100 needs arity 2 *)
  reject_corrupt "lut table too wide for arity" [| true |] (lut (1 lor (0b100 lsl 2)));
  (* arity 1 must leave both extra operand fields zero *)
  reject_corrupt "lut1 reserved in1 bits set" [| true |]
    (lut (1 lor (0b10 lsl 2) lor (1 lsl 10)));
  reject_corrupt "lut1 reserved in2 bits set" [| true |]
    (lut (1 lor (0b10 lsl 2) lor (1 lsl 36)));
  (* arity 2 must leave the third operand field zero *)
  reject_corrupt "lut2 reserved in2 bits set" [| true |]
    (lut (2 lor (0b0110 lsl 2) lor (1 lsl 36)));
  (* structurally valid lut2, but both operands name the primary input —
     a classic value, not a lutdom one: the executor must refuse rather
     than misinterpret the encoding *)
  reject_corrupt "lut2 operand not lutdom-encoded" [| true |]
    (lut (2 lor (0b0110 lsl 2) lor (1 lsl 10)));
  (* the same invariant through the netlist parser, with two distinct
     classic operands (duplicates would canonicalise to arity 1):
     Binary.parse reports corruption, not Invalid_argument *)
  let two_input_lut2 =
    craft
      [ (0, 1, 0x0); (0x3FFFFFFFFFFFFFFF, 1, 0xF); (0x3FFFFFFFFFFFFFFF, 2, 0xF);
        (1, 2 lor (0b0110 lsl 2) lor (2 lsl 10), 0xC) ]
  in
  reject_corrupt "lut2 over two classic inputs" [| true; false |] two_input_lut2;
  Alcotest.(check bool) "Binary.parse lutdom invariant" true
    (try
       ignore (Pytfhe_circuit.Binary.parse two_input_lut2);
       false
     with Pytfhe_util.Wire.Corrupt _ -> true)

(* ------------------------------------------------------------------ *)
(* Real encrypted execution                                            *)
(* ------------------------------------------------------------------ *)

let keys = lazy (Pytfhe_tfhe.Gates.key_gen (Rng.create ~seed:909 ()) Pytfhe_tfhe.Params.test)

let test_stream_exec_encrypted () =
  let sk, ck = Lazy.force keys in
  let net = wide_netlist ~width:3 ~depth:2 in
  let bytes = Binary.assemble net in
  let rng = Rng.create ~seed:78 () in
  let ins = Array.init 4 (fun _ -> Rng.bool rng) in
  let cts = Array.map (Pytfhe_tfhe.Gates.encrypt_bit rng sk) ins in
  let outs = Stream_exec.run_encrypted ck bytes cts in
  let expected = Stream_exec.run_bits bytes ins in
  Alcotest.(check (array bool)) "encrypted stream execution" expected
    (Array.map (Pytfhe_tfhe.Gates.decrypt_bit sk) outs)


let test_tfhe_eval_full_adder () =
  let sk, ck = Lazy.force keys in
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let cin = Netlist.input net "cin" in
  let axb = Netlist.gate net Gate.Xor a b in
  Netlist.mark_output net "sum" (Netlist.gate net Gate.Xor axb cin);
  let c1 = Netlist.gate net Gate.And a b in
  let c2 = Netlist.gate net Gate.And axb cin in
  Netlist.mark_output net "cout" (Netlist.gate net Gate.Or c1 c2);
  let rng = Rng.create ~seed:31 () in
  List.iter
    (fun (av, bv, cv) ->
      let ins = [| av; bv; cv |] in
      let cts = Array.map (Pytfhe_tfhe.Gates.encrypt_bit rng sk) ins in
      let outs, stats = Tfhe_eval.run ck net cts in
      let decrypted = Array.map (Pytfhe_tfhe.Gates.decrypt_bit sk) outs in
      let expected = Array.of_list (List.map snd (Plain_eval.run net ins)) in
      Alcotest.(check (array bool)) "encrypted = plain" expected decrypted;
      Alcotest.(check int) "bootstraps counted" 5 stats.Tfhe_eval.bootstraps_executed)
    [ (false, false, false); (true, false, true); (true, true, true) ]

let test_tfhe_eval_with_constants_and_not () =
  let sk, ck = Lazy.force keys in
  let net = Netlist.create ~fold_constants:false () in
  let a = Netlist.input net "a" in
  let t = Netlist.const net true in
  let na = Netlist.gate net Gate.Not a a in
  Netlist.mark_output net "o" (Netlist.gate net Gate.And na t);
  let rng = Rng.create ~seed:32 () in
  List.iter
    (fun v ->
      let cts = [| Pytfhe_tfhe.Gates.encrypt_bit rng sk v |] in
      let outs, _ = Tfhe_eval.run ck net cts in
      Alcotest.(check bool) "not through constant and" (not v)
        (Pytfhe_tfhe.Gates.decrypt_bit sk outs.(0)))
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* Parallel encrypted execution (Par_eval)                             *)
(* ------------------------------------------------------------------ *)

let random_netlist seed = Gen_circuit.random ~seed ()

let test_par_eval_matches_sequential =
  QCheck.Test.make ~name:"par_eval 1/2/4 workers bit-exact with tfhe_eval and plain_eval"
    ~count:4
    QCheck.(pair (int_range 0 10_000) (int_range 0 10_000))
    (fun (s1, s2) ->
      let sk, ck = Lazy.force keys in
      let net = random_netlist (1 + s1) in
      let rng = Rng.create ~seed:(1000 + s2) () in
      let ins = Array.init (Netlist.input_count net) (fun _ -> Rng.bool rng) in
      let cts = Array.map (Pytfhe_tfhe.Gates.encrypt_bit rng sk) ins in
      let seq_out, _ = Tfhe_eval.run ck net cts in
      let plain = Array.of_list (List.map snd (Plain_eval.run net ins)) in
      let decrypted = Array.map (Pytfhe_tfhe.Gates.decrypt_bit sk) seq_out in
      if decrypted <> plain then QCheck.Test.fail_report "sequential disagrees with plain_eval";
      List.for_all
        (fun workers ->
          let par_out, st = Par_eval.run ~workers ck net cts in
          par_out = seq_out && st.Par_eval.workers = workers)
        [ 1; 2; 4 ])

let test_par_eval_stats () =
  let sk, ck = Lazy.force keys in
  let net = wide_netlist ~width:4 ~depth:2 in
  let rng = Rng.create ~seed:55 () in
  let ins = Array.init 5 (fun _ -> Rng.bool rng) in
  let cts = Array.map (Pytfhe_tfhe.Gates.encrypt_bit rng sk) ins in
  let seq_out, seq_stats = Tfhe_eval.run ck net cts in
  let outs, st = Par_eval.run ~workers:3 ck net cts in
  Alcotest.(check bool) "ciphertexts identical" true (outs = seq_out);
  Alcotest.(check int) "bootstrap totals agree" seq_stats.Tfhe_eval.bootstraps_executed
    st.Par_eval.bootstraps_executed;
  Alcotest.(check int) "per-domain counts sum to total" st.Par_eval.bootstraps_executed
    (Array.fold_left ( + ) 0 st.Par_eval.per_domain_bootstraps);
  Alcotest.(check int) "one stats entry per domain" 3
    (Array.length st.Par_eval.per_domain_bootstraps);
  let sched = Levelize.run net in
  Alcotest.(check int) "one wave per level" (sched.Levelize.depth + 1)
    (Array.length st.Par_eval.wave_wall);
  Alcotest.(check int) "wave widths cover every bootstrap" st.Par_eval.bootstraps_executed
    (Array.fold_left ( + ) 0 st.Par_eval.wave_width);
  Alcotest.(check (float 1e-9)) "ideal speedup matches the exposed bound"
    (Par_eval.ideal_speedup sched 3) st.Par_eval.ideal_speedup;
  Alcotest.(check bool) "rejects workers < 1" true
    (try ignore (Par_eval.run ~workers:0 ck net cts); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "rejects input arity mismatch" true
    (try ignore (Par_eval.run ~workers:2 ck net (Array.sub cts 0 2)); false
     with Invalid_argument _ -> true)

let test_par_eval_full_adder () =
  let sk, ck = Lazy.force keys in
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let cin = Netlist.input net "cin" in
  let axb = Netlist.gate net Gate.Xor a b in
  Netlist.mark_output net "sum" (Netlist.gate net Gate.Xor axb cin);
  let c1 = Netlist.gate net Gate.And a b in
  let c2 = Netlist.gate net Gate.And axb cin in
  Netlist.mark_output net "cout" (Netlist.gate net Gate.Or c1 c2);
  let rng = Rng.create ~seed:33 () in
  List.iter
    (fun (av, bv, cv) ->
      let ins = [| av; bv; cv |] in
      let cts = Array.map (Pytfhe_tfhe.Gates.encrypt_bit rng sk) ins in
      let outs, stats = Par_eval.run ~workers:4 ck net cts in
      let decrypted = Array.map (Pytfhe_tfhe.Gates.decrypt_bit sk) outs in
      let expected = Array.of_list (List.map snd (Plain_eval.run net ins)) in
      Alcotest.(check (array bool)) "parallel encrypted = plain" expected decrypted;
      Alcotest.(check int) "bootstraps counted" 5 stats.Par_eval.bootstraps_executed)
    [ (false, true, false); (true, true, true) ]

let () =
  Alcotest.run "backend"
    [
      ( "plain",
        [
          Alcotest.test_case "binary matches netlist" `Quick test_plain_run_binary_matches;
          Alcotest.test_case "named eval" `Quick test_plain_run_named;
          Alcotest.test_case "stream executor" `Quick test_stream_exec_matches_netlist;
          Alcotest.test_case "stream constants" `Quick test_stream_exec_handles_constants;
          Alcotest.test_case "stream rejects malformed" `Quick test_stream_exec_rejects_malformed;
          Alcotest.test_case "stream rejects malformed LUT records" `Quick
            test_stream_exec_rejects_malformed_lut;
          Alcotest.test_case "stream encrypted" `Slow test_stream_exec_encrypted;
          Alcotest.test_case "vcd export" `Quick test_vcd_export;
          Alcotest.test_case "vcd identifier scaling" `Quick test_vcd_identifiers_scale;
        ] );
      ( "cost-model",
        [
          Alcotest.test_case "paper constants" `Quick test_cost_model_constants;
          Alcotest.test_case "calibration" `Quick test_cost_model_calibration;
          Alcotest.test_case "gpu models" `Quick test_gpu_models;
        ] );
      ( "sched-cpu",
        [
          Alcotest.test_case "wide circuits scale" `Quick test_sched_cpu_wide_scales;
          Alcotest.test_case "serial circuits do not" `Quick test_sched_cpu_serial_does_not_scale;
          Alcotest.test_case "makespan decomposition" `Quick test_sched_cpu_makespan_decomposition;
          Alcotest.test_case "run executes values" `Quick test_sched_cpu_run_executes;
        ] );
      ( "sched-gpu",
        [
          Alcotest.test_case "cuFHE per-gate cost" `Quick test_gpu_cufhe_is_per_gate;
          Alcotest.test_case "graphs beat per-gate on wide" `Quick test_gpu_pytfhe_beats_cufhe_on_wide;
          Alcotest.test_case "serial stays modest" `Quick test_gpu_pytfhe_modest_on_serial;
          Alcotest.test_case "4090 beats a5000" `Quick test_gpu_4090_faster_than_a5000;
          Alcotest.test_case "timelines" `Quick test_gpu_timelines;
          Alcotest.test_case "memory-bounded batching" `Quick test_gpu_batching_respects_memory_bound;
          Alcotest.test_case "oversized wave split" `Quick test_gpu_batches_of_splits_oversized_waves;
          Alcotest.test_case "asap beats barriers" `Quick test_sched_asap_beats_barriers;
          Alcotest.test_case "asap chain lower bound" `Quick test_sched_asap_serial_chain_is_serial;
          Alcotest.test_case "type-batched cuFHE in between" `Quick test_gpu_batched_sits_between;
        ] );
      ( "tfhe-eval",
        [
          Alcotest.test_case "full adder encrypted" `Slow test_tfhe_eval_full_adder;
          Alcotest.test_case "constants and NOT" `Slow test_tfhe_eval_with_constants_and_not;
        ] );
      ( "par-eval",
        [
          QCheck_alcotest.to_alcotest test_par_eval_matches_sequential;
          Alcotest.test_case "stats invariants" `Slow test_par_eval_stats;
          Alcotest.test_case "full adder on 4 domains" `Slow test_par_eval_full_adder;
        ] );
    ]
