(* The batched key-streaming execution path (Bootstrap.batch_with /
   Keyswitch.apply_batch / Gates.bootstrap_batch and the ?batch knob on the
   executors).

   The contract under test is bit-exactness: the batched kernel reorders the
   *loop nest* (bootstrapping-key entry outermost, batch member innermost)
   but not any per-gate operation sequence, so every batch size must produce
   the very same ciphertexts as the scalar per-gate walk. *)

module Rng = Pytfhe_util.Rng
module Wire = Pytfhe_util.Wire
module Netlist = Pytfhe_circuit.Netlist
module Levelize = Pytfhe_circuit.Levelize
module Params = Pytfhe_tfhe.Params
module Gates = Pytfhe_tfhe.Gates
module Lwe = Pytfhe_tfhe.Lwe
module Lwe_array = Pytfhe_tfhe.Lwe_array
open Pytfhe_backend

let keys = lazy (Gates.key_gen (Rng.create ~seed:909 ()) Params.test)

(* The consolidated execution-options record, built from the old flags. *)
let bopts ?batch ?soa () = Exec_opts.of_flags ?batch ?soa ()

(* ------------------------------------------------------------------ *)
(* Lwe_array storage                                                   *)
(* ------------------------------------------------------------------ *)

(* Uniform canonical torus values: every int32 bit pattern is a legal
   ciphertext word, so storage tests need no crypto. *)
let random_sample rng ~n =
  { Lwe.a = Array.init n (fun _ -> Rng.bits32 rng land 0xFFFFFFFF); b = Rng.bits32 rng land 0xFFFFFFFF }

let random_wave rng ~n len = Array.init len (fun _ -> random_sample rng ~n)

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

let test_lwe_array_roundtrip =
  QCheck.Test.make ~name:"lwe_array of_samples/get/set/to_samples = identity" ~count:50
    QCheck.(triple (int_range 1 17) (int_range 1 9) small_int)
    (fun (n, len, seed) ->
      let rng = Rng.create ~seed:(7000 + seed) () in
      let wave = random_wave rng ~n len in
      let t = Lwe_array.of_samples ~n wave in
      if Lwe_array.length t <> len || Lwe_array.dim t <> n then
        QCheck.Test.fail_report "shape lost";
      if Lwe_array.to_samples t <> wave then QCheck.Test.fail_report "to_samples differs";
      Array.iteri
        (fun r s -> if Lwe_array.get t r <> s then QCheck.Test.fail_report "get differs")
        wave;
      (* Overwrite through set and read back through mask/body. *)
      let s' = random_sample rng ~n in
      let r = Rng.int rng len in
      Lwe_array.set t r s';
      if Lwe_array.get t r <> s' then QCheck.Test.fail_report "set/get differs";
      Array.iteri
        (fun i v -> if Lwe_array.mask t r i <> v then QCheck.Test.fail_report "mask read differs")
        s'.Lwe.a;
      Lwe_array.body t r = s'.Lwe.b)

let test_lwe_array_row_ops =
  QCheck.Test.make ~name:"lwe_array row ops bit-exact with Lwe record ops" ~count:50
    QCheck.(triple (int_range 1 16) small_int (int_range ~-3 3))
    (fun (n, seed, k) ->
      let rng = Rng.create ~seed:(8000 + seed) () in
      let wave = random_wave rng ~n 4 in
      let t = Lwe_array.of_samples ~n wave in
      let dst = Lwe_array.create ~n 4 in
      Lwe_array.add_into ~dst ~drow:0 ~a:t ~arow:0 ~b:t ~brow:1;
      if Lwe_array.get dst 0 <> Lwe.add wave.(0) wave.(1) then
        QCheck.Test.fail_report "add_into differs";
      Lwe_array.sub_into ~dst ~drow:1 ~a:t ~arow:2 ~b:t ~brow:3;
      if Lwe_array.get dst 1 <> Lwe.sub wave.(2) wave.(3) then
        QCheck.Test.fail_report "sub_into differs";
      Lwe_array.scale_into ~dst ~drow:2 k ~src:t ~srow:1;
      if Lwe_array.get dst 2 <> Lwe.scale k wave.(1) then
        QCheck.Test.fail_report "scale_into differs";
      Lwe_array.neg_into ~dst ~drow:3 ~src:t ~srow:0;
      if Lwe_array.get dst 3 <> Lwe.neg wave.(0) then QCheck.Test.fail_report "neg_into differs";
      (* The fused gate combine against the scalar reference, for every plan. *)
      List.for_all
        (fun plan ->
          let reference = Gates.combine ~n plan wave.(0) wave.(1) in
          Lwe_array.combine_into ~dst ~drow:0 ~konst:plan.Gates.plan_const
            ~scale:plan.Gates.plan_scale ~sign_a:plan.Gates.plan_sign_a ~a:t ~arow:0
            ~sign_b:plan.Gates.plan_sign_b ~b:t ~brow:1;
          Lwe_array.get dst 0 = reference)
        [
          Gates.nand_plan;
          Gates.and_plan;
          Gates.or_plan;
          Gates.nor_plan;
          Gates.xor_plan;
          Gates.xnor_plan;
          Gates.andny_plan;
          Gates.oryn_plan;
        ])

let test_lwe_array_aliasing =
  QCheck.Test.make ~name:"lwe_array *_into safe when dst aliases sources" ~count:50
    QCheck.(pair (int_range 1 16) small_int)
    (fun (n, seed) ->
      let rng = Rng.create ~seed:(8100 + seed) () in
      let wave = random_wave rng ~n 3 in
      (* dst row = a row: t.(0) <- t.(0) + t.(1). *)
      let t = Lwe_array.of_samples ~n wave in
      Lwe_array.add_into ~dst:t ~drow:0 ~a:t ~arow:0 ~b:t ~brow:1;
      if Lwe_array.get t 0 <> Lwe.add wave.(0) wave.(1) then
        QCheck.Test.fail_report "add_into onto own source row differs";
      (* dst = both sources: t.(1) <- t.(1) - t.(1) through overlapping
         slices of the same storage. *)
      let s = Lwe_array.slice t ~pos:1 ~len:2 in
      Lwe_array.sub_into ~dst:s ~drow:0 ~a:t ~arow:1 ~b:s ~brow:0;
      if Lwe_array.get t 1 <> Lwe.sub wave.(1) wave.(1) then
        QCheck.Test.fail_report "sub_into through overlapping slices differs";
      (* In-place combine: dst row aliases input a. *)
      let t2 = Lwe_array.of_samples ~n wave in
      let plan = Gates.xor_plan in
      let reference = Gates.combine ~n plan wave.(2) wave.(0) in
      Lwe_array.combine_into ~dst:t2 ~drow:2 ~konst:plan.Gates.plan_const
        ~scale:plan.Gates.plan_scale ~sign_a:plan.Gates.plan_sign_a ~a:t2 ~arow:2
        ~sign_b:plan.Gates.plan_sign_b ~b:t2 ~brow:0;
      Lwe_array.get t2 2 = reference)

let test_lwe_array_slice_blit () =
  let rng = Rng.create ~seed:606 () in
  let n = 5 in
  let wave = random_wave rng ~n 6 in
  let t = Lwe_array.of_samples ~n wave in
  (* Slices are aliasing views in both directions. *)
  let s = Lwe_array.slice t ~pos:2 ~len:3 in
  Alcotest.(check int) "slice length" 3 (Lwe_array.length s);
  Alcotest.(check bool) "slice rows are parent rows" true
    (Lwe_array.get s 0 = wave.(2) && Lwe_array.get s 2 = wave.(4));
  let fresh = random_sample rng ~n in
  Lwe_array.set s 1 fresh;
  Alcotest.(check bool) "write through slice visible in parent" true (Lwe_array.get t 3 = fresh);
  Lwe_array.set_trivial t 2 12345;
  Alcotest.(check bool) "write through parent visible in slice" true
    (Lwe_array.get s 0 = Lwe.trivial ~n 12345);
  (* Whole-row blit. *)
  let dst = Lwe_array.create ~n 4 in
  Lwe_array.blit ~src:t ~src_pos:1 ~dst ~dst_pos:2 ~len:2;
  Alcotest.(check bool) "blit copies rows" true
    (Lwe_array.get dst 2 = Lwe_array.get t 1 && Lwe_array.get dst 3 = Lwe_array.get t 2);
  Alcotest.(check bool) "blit leaves other rows" true (Lwe_array.get dst 0 = Lwe.trivial ~n 0);
  (* Bounds and shape enforcement. *)
  Alcotest.(check bool) "slice pos out of bounds" true
    (raises_invalid (fun () -> Lwe_array.slice t ~pos:5 ~len:2));
  Alcotest.(check bool) "slice negative" true
    (raises_invalid (fun () -> Lwe_array.slice t ~pos:(-1) ~len:1));
  Alcotest.(check bool) "get row out of bounds" true (raises_invalid (fun () -> Lwe_array.get t 6));
  Alcotest.(check bool) "set dimension mismatch" true
    (raises_invalid (fun () -> Lwe_array.set t 0 (random_sample rng ~n:(n + 1))));
  Alcotest.(check bool) "blit dimension mismatch" true
    (raises_invalid (fun () ->
         Lwe_array.blit ~src:t ~src_pos:0 ~dst:(Lwe_array.create ~n:(n + 1) 4) ~dst_pos:0 ~len:1));
  Alcotest.(check bool) "blit range out of bounds" true
    (raises_invalid (fun () -> Lwe_array.blit ~src:t ~src_pos:5 ~dst ~dst_pos:0 ~len:2));
  Alcotest.(check bool) "create rejects n < 1" true
    (raises_invalid (fun () -> Lwe_array.create ~n:0 3))

let test_lwe_array_wire () =
  let rng = Rng.create ~seed:607 () in
  let n = 7 in
  let t = Lwe_array.of_samples ~n (random_wave rng ~n 5) in
  let buf = Buffer.create 256 in
  Lwe_array.write buf t;
  let bytes = Buffer.contents buf in
  let t' = Lwe_array.read (Wire.reader_of_string bytes) in
  Alcotest.(check bool) "roundtrip preserves every row" true
    (Lwe_array.to_samples t' = Lwe_array.to_samples t);
  (* Re-serialization is byte-identical: the format has one encoding. *)
  let buf2 = Buffer.create 256 in
  Lwe_array.write buf2 t';
  Alcotest.(check string) "re-encoding byte-identical" bytes (Buffer.contents buf2);
  (* Truncations at every prefix length must raise Corrupt, never return. *)
  let truncated_rejected =
    List.for_all
      (fun keep ->
        try
          ignore (Lwe_array.read (Wire.reader_of_string (String.sub bytes 0 keep)));
          false
        with Wire.Corrupt _ -> true)
      [ 0; 3; 4; 12; 20; String.length bytes - 1 ]
  in
  Alcotest.(check bool) "every truncation raises Corrupt" true truncated_rejected;
  (* A flipped magic byte must be rejected too. *)
  let corrupt = Bytes.of_string bytes in
  Bytes.set corrupt 0 'X';
  Alcotest.(check bool) "corrupt magic raises" true
    (try
       ignore (Lwe_array.read (Wire.reader_of_string (Bytes.to_string corrupt)));
       false
     with Wire.Corrupt _ -> true)

(* ------------------------------------------------------------------ *)
(* Gate-level batch kernel                                             *)
(* ------------------------------------------------------------------ *)

let test_bootstrap_batch_matches_scalar () =
  let sk, ck = Lazy.force keys in
  let rng = Rng.create ~seed:88 () in
  let ctx = Gates.context ck in
  let bc = Gates.batch_context ck ~cap:4 in
  Alcotest.(check int) "capacity" 4 (Gates.batch_capacity bc);
  let n = ck.Gates.cloud_params.Params.lwe.Params.n in
  let a = Gates.encrypt_bit rng sk true in
  let b = Gates.encrypt_bit rng sk false in
  (* Mixed gate types in one batch: they all share the sign bootstrap. *)
  let plans = [| Gates.and_plan; Gates.xor_plan; Gates.nor_plan |] in
  let combined = Array.map (fun pl -> Gates.combine ~n pl a b) plans in
  let batched = Gates.bootstrap_batch bc combined in
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) "batched element = scalar bootstrap" true
        (batched.(i) = Gates.bootstrap_in ctx c))
    combined;
  let c = Gates.batch_counters bc in
  Alcotest.(check int) "one launch" 1 c.Gates.batch_launches;
  Alcotest.(check int) "three gates batched" 3 c.Gates.batch_gates;
  Alcotest.(check bool) "bsk rows streamed, at most once per key entry" true
    (c.Gates.bsk_rows > 0 && c.Gates.bsk_rows <= n);
  Alcotest.(check bool) "ks blocks streamed" true (c.Gates.ks_blocks > 0);
  Gates.reset_batch_counters bc;
  let c = Gates.batch_counters bc in
  Alcotest.(check int) "counters reset" 0
    (c.Gates.batch_launches + c.Gates.batch_gates + c.Gates.bsk_rows + c.Gates.ks_blocks);
  Alcotest.(check int) "empty batch is a no-op" 0
    (Array.length (Gates.bootstrap_batch bc [||]));
  Alcotest.(check bool) "rejects cap < 1" true
    (try
       ignore (Gates.batch_context ck ~cap:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "rejects oversized batch" true
    (try
       ignore (Gates.bootstrap_batch bc (Array.make 5 a));
       false
     with Invalid_argument _ -> true)

let test_mux_gate_in_matches_mux_gate () =
  let sk, ck = Lazy.force keys in
  let rng = Rng.create ~seed:77 () in
  let ctx = Gates.context ck in
  List.iter
    (fun (s, x, y) ->
      let cs = Gates.encrypt_bit rng sk s in
      let cx = Gates.encrypt_bit rng sk x in
      let cy = Gates.encrypt_bit rng sk y in
      let via_keyset = Gates.mux_gate ck cs cx cy in
      let via_ctx = Gates.mux_gate_in ctx cs cx cy in
      Alcotest.(check bool) "ciphertext bit-exact with mux_gate" true (via_ctx = via_keyset);
      Alcotest.(check bool) "mux truth table"
        (if s then x else y)
        (Gates.decrypt_bit sk via_ctx))
    [ (false, false, true); (false, true, false); (true, true, false); (true, false, true) ]

(* ------------------------------------------------------------------ *)
(* Executor-level bit-exactness                                        *)
(* ------------------------------------------------------------------ *)

let test_batched_matches_scalar =
  QCheck.Test.make
    ~name:"batched cpu/multicore bit-exact with scalar for batch 1/3/8/widest-wave" ~count:4
    QCheck.(pair (int_range 0 10_000) (int_range 0 10_000))
    (fun (s1, s2) ->
      let sk, ck = Lazy.force keys in
      let net = Gen_circuit.random ~seed:(1 + s1) () in
      let rng = Rng.create ~seed:(2000 + s2) () in
      let ins = Array.init (Netlist.input_count net) (fun _ -> Rng.bool rng) in
      let cts = Array.map (Gates.encrypt_bit rng sk) ins in
      let scalar_out, _ = Tfhe_eval.run ck net cts in
      let plain = Array.of_list (List.map snd (Plain_eval.run net ins)) in
      if Array.map (Gates.decrypt_bit sk) scalar_out <> plain then
        QCheck.Test.fail_report "scalar path disagrees with plain_eval";
      let widest = Array.fold_left max 1 (Levelize.run net).Levelize.widths in
      List.for_all
        (fun b ->
          let cpu_out, _ = Tfhe_eval.run ~opts:(bopts ~batch:b ()) ck net cts in
          let par_out, _ = Par_eval.run ~workers:2 ~opts:(bopts ~batch:b ()) ck net cts in
          cpu_out = scalar_out && par_out = scalar_out)
        [ 1; 3; 8; widest ])

let test_non_divisible_wave () =
  let sk, ck = Lazy.force keys in
  (* Waves of 5 gates with batch 3 split 3 + 2 — the short trailing
     sub-batch must stay bit-exact and be counted as its own launch. *)
  let net = Gen_circuit.wide ~width:5 ~depth:2 in
  let rng = Rng.create ~seed:404 () in
  let ins = Array.init 6 (fun _ -> Rng.bool rng) in
  let cts = Array.map (Gates.encrypt_bit rng sk) ins in
  let scalar_out, _ = Tfhe_eval.run ck net cts in
  let outs, st = Tfhe_eval.run ~opts:(bopts ~batch:3 ()) ck net cts in
  Alcotest.(check bool) "ciphertexts identical" true (outs = scalar_out);
  Alcotest.(check (array bool)) "decrypts to plain eval"
    (Array.of_list (List.map snd (Plain_eval.run net ins)))
    (Array.map (Gates.decrypt_bit sk) outs);
  Alcotest.(check int) "batch size recorded" 3 st.Tfhe_eval.batch_size;
  Alcotest.(check int) "two launches per 5-wide wave" 4 st.Tfhe_eval.batch_launches;
  Alcotest.(check bool) "bsk traffic accounted" true (st.Tfhe_eval.bsk_bytes_streamed > 0);
  Alcotest.(check bool) "ks traffic accounted" true (st.Tfhe_eval.ks_bytes_streamed > 0);
  Alcotest.(check bool) "rejects batch < 1" true
    (try
       ignore (Tfhe_eval.run ~opts:(bopts ~batch:0 ()) ck net cts);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "par_eval rejects batch < 1" true
    (try
       ignore (Par_eval.run ~workers:2 ~opts:(bopts ~batch:0 ()) ck net cts);
       false
     with Invalid_argument _ -> true)

let test_key_traffic_drops_with_batch () =
  let sk, ck = Lazy.force keys in
  let net = Gen_circuit.wide ~width:8 ~depth:2 in
  let rng = Rng.create ~seed:405 () in
  let ins = Array.init 9 (fun _ -> Rng.bool rng) in
  let cts = Array.map (Gates.encrypt_bit rng sk) ins in
  let out1, st1 = Tfhe_eval.run ~opts:(bopts ~batch:1 ()) ck net cts in
  let out8, st8 = Tfhe_eval.run ~opts:(bopts ~batch:8 ()) ck net cts in
  Alcotest.(check bool) "batch sizes agree on ciphertexts" true (out1 = out8);
  (* Streaming the key once per 8-gate wave instead of once per gate must
     cut accounted key traffic by far more than 2x. *)
  Alcotest.(check bool) "bsk traffic drops at least 2x" true
    (st1.Tfhe_eval.bsk_bytes_streamed >= 2 * st8.Tfhe_eval.bsk_bytes_streamed);
  Alcotest.(check bool) "ks traffic drops too" true
    (st1.Tfhe_eval.ks_bytes_streamed > st8.Tfhe_eval.ks_bytes_streamed)

(* The ?soa knob: both batched layouts (record staging and flat Lwe_array
   waves) must produce the scalar walk's exact ciphertexts, on both the
   sequential and the multicore executor.  The multiprocess executor's
   array-frame path is covered in test_dist.ml. *)
let test_soa_matches_record =
  QCheck.Test.make ~name:"soa and record batched layouts bit-exact with scalar" ~count:3
    QCheck.(pair (int_range 0 10_000) (int_range 0 10_000))
    (fun (s1, s2) ->
      let sk, ck = Lazy.force keys in
      let net = Gen_circuit.random ~seed:(11 + s1) () in
      let rng = Rng.create ~seed:(3000 + s2) () in
      let ins = Array.init (Netlist.input_count net) (fun _ -> Rng.bool rng) in
      let cts = Array.map (Gates.encrypt_bit rng sk) ins in
      let scalar_out, _ = Tfhe_eval.run ck net cts in
      let widest = Array.fold_left max 1 (Levelize.run net).Levelize.widths in
      List.for_all
        (fun b ->
          let soa_out, _ = Tfhe_eval.run ~opts:(bopts ~batch:b ~soa:true ()) ck net cts in
          let rec_out, _ = Tfhe_eval.run ~opts:(bopts ~batch:b ~soa:false ()) ck net cts in
          let par_soa, _ = Par_eval.run ~workers:2 ~opts:(bopts ~batch:b ~soa:true ()) ck net cts in
          let par_rec, _ = Par_eval.run ~workers:2 ~opts:(bopts ~batch:b ~soa:false ()) ck net cts in
          soa_out = scalar_out && rec_out = scalar_out && par_soa = scalar_out
          && par_rec = scalar_out)
        [ 1; 3; 8; widest ])

let test_executor_batch_knob () =
  let sk, ck = Lazy.force keys in
  let net = Gen_circuit.wide ~width:3 ~depth:2 in
  let rng = Rng.create ~seed:505 () in
  let ins = Array.init 4 (fun _ -> Rng.bool rng) in
  let cts = Array.map (Gates.encrypt_bit rng sk) ins in
  let module Cpu = (val Executor.cpu) in
  let scalar_out, _ = Cpu.run ck net cts in
  let outs, st = Cpu.run ~opts:(bopts ~batch:2 ()) ck net cts in
  Alcotest.(check bool) "executor cpu batched bit-exact" true (outs = scalar_out);
  (match st.Executor.detail with
  | Executor.Cpu_stats s ->
    Alcotest.(check int) "batch size surfaced through detail" 2 s.Tfhe_eval.batch_size
  | _ -> Alcotest.fail "expected cpu stats");
  let module Mc = (val Executor.multicore ~workers:2 ()) in
  let outs, st = Mc.run ~opts:(bopts ~batch:2 ()) ck net cts in
  Alcotest.(check bool) "executor multicore batched bit-exact" true (outs = scalar_out);
  (match st.Executor.detail with
  | Executor.Multicore_stats s ->
    Alcotest.(check int) "multicore batch size surfaced" 2 s.Par_eval.batch_size;
    Alcotest.(check bool) "multicore bsk traffic accounted" true
      (s.Par_eval.bsk_bytes_streamed > 0)
  | _ -> Alcotest.fail "expected multicore stats")

let () =
  Alcotest.run "batch"
    [
      ( "lwe_array",
        [
          QCheck_alcotest.to_alcotest test_lwe_array_roundtrip;
          QCheck_alcotest.to_alcotest test_lwe_array_row_ops;
          QCheck_alcotest.to_alcotest test_lwe_array_aliasing;
          Alcotest.test_case "slice and blit" `Quick test_lwe_array_slice_blit;
          Alcotest.test_case "wire roundtrip and rejection" `Quick test_lwe_array_wire;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "bootstrap_batch = scalar bootstraps" `Slow
            test_bootstrap_batch_matches_scalar;
          Alcotest.test_case "mux_gate_in = mux_gate" `Slow test_mux_gate_in_matches_mux_gate;
        ] );
      ( "executors",
        [
          QCheck_alcotest.to_alcotest test_batched_matches_scalar;
          QCheck_alcotest.to_alcotest test_soa_matches_record;
          Alcotest.test_case "non-divisible wave" `Slow test_non_divisible_wave;
          Alcotest.test_case "key traffic drops with batch" `Slow
            test_key_traffic_drops_with_batch;
          Alcotest.test_case "executor ?batch knob" `Slow test_executor_batch_knob;
        ] );
    ]
