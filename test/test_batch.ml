(* The batched key-streaming execution path (Bootstrap.batch_with /
   Keyswitch.apply_batch / Gates.bootstrap_batch and the ?batch knob on the
   executors).

   The contract under test is bit-exactness: the batched kernel reorders the
   *loop nest* (bootstrapping-key entry outermost, batch member innermost)
   but not any per-gate operation sequence, so every batch size must produce
   the very same ciphertexts as the scalar per-gate walk. *)

module Rng = Pytfhe_util.Rng
module Netlist = Pytfhe_circuit.Netlist
module Levelize = Pytfhe_circuit.Levelize
module Params = Pytfhe_tfhe.Params
module Gates = Pytfhe_tfhe.Gates
open Pytfhe_backend

let keys = lazy (Gates.key_gen (Rng.create ~seed:909 ()) Params.test)

(* ------------------------------------------------------------------ *)
(* Gate-level batch kernel                                             *)
(* ------------------------------------------------------------------ *)

let test_bootstrap_batch_matches_scalar () =
  let sk, ck = Lazy.force keys in
  let rng = Rng.create ~seed:88 () in
  let ctx = Gates.context ck in
  let bc = Gates.batch_context ck ~cap:4 in
  Alcotest.(check int) "capacity" 4 (Gates.batch_capacity bc);
  let n = ck.Gates.cloud_params.Params.lwe.Params.n in
  let a = Gates.encrypt_bit rng sk true in
  let b = Gates.encrypt_bit rng sk false in
  (* Mixed gate types in one batch: they all share the sign bootstrap. *)
  let plans = [| Gates.and_plan; Gates.xor_plan; Gates.nor_plan |] in
  let combined = Array.map (fun pl -> Gates.combine ~n pl a b) plans in
  let batched = Gates.bootstrap_batch bc combined in
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) "batched element = scalar bootstrap" true
        (batched.(i) = Gates.bootstrap_in ctx c))
    combined;
  let c = Gates.batch_counters bc in
  Alcotest.(check int) "one launch" 1 c.Gates.batch_launches;
  Alcotest.(check int) "three gates batched" 3 c.Gates.batch_gates;
  Alcotest.(check bool) "bsk rows streamed, at most once per key entry" true
    (c.Gates.bsk_rows > 0 && c.Gates.bsk_rows <= n);
  Alcotest.(check bool) "ks blocks streamed" true (c.Gates.ks_blocks > 0);
  Gates.reset_batch_counters bc;
  let c = Gates.batch_counters bc in
  Alcotest.(check int) "counters reset" 0
    (c.Gates.batch_launches + c.Gates.batch_gates + c.Gates.bsk_rows + c.Gates.ks_blocks);
  Alcotest.(check int) "empty batch is a no-op" 0
    (Array.length (Gates.bootstrap_batch bc [||]));
  Alcotest.(check bool) "rejects cap < 1" true
    (try
       ignore (Gates.batch_context ck ~cap:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "rejects oversized batch" true
    (try
       ignore (Gates.bootstrap_batch bc (Array.make 5 a));
       false
     with Invalid_argument _ -> true)

let test_mux_gate_in_matches_mux_gate () =
  let sk, ck = Lazy.force keys in
  let rng = Rng.create ~seed:77 () in
  let ctx = Gates.context ck in
  List.iter
    (fun (s, x, y) ->
      let cs = Gates.encrypt_bit rng sk s in
      let cx = Gates.encrypt_bit rng sk x in
      let cy = Gates.encrypt_bit rng sk y in
      let via_keyset = Gates.mux_gate ck cs cx cy in
      let via_ctx = Gates.mux_gate_in ctx cs cx cy in
      Alcotest.(check bool) "ciphertext bit-exact with mux_gate" true (via_ctx = via_keyset);
      Alcotest.(check bool) "mux truth table"
        (if s then x else y)
        (Gates.decrypt_bit sk via_ctx))
    [ (false, false, true); (false, true, false); (true, true, false); (true, false, true) ]

(* ------------------------------------------------------------------ *)
(* Executor-level bit-exactness                                        *)
(* ------------------------------------------------------------------ *)

let test_batched_matches_scalar =
  QCheck.Test.make
    ~name:"batched cpu/multicore bit-exact with scalar for batch 1/3/8/widest-wave" ~count:4
    QCheck.(pair (int_range 0 10_000) (int_range 0 10_000))
    (fun (s1, s2) ->
      let sk, ck = Lazy.force keys in
      let net = Gen_circuit.random ~seed:(1 + s1) () in
      let rng = Rng.create ~seed:(2000 + s2) () in
      let ins = Array.init (Netlist.input_count net) (fun _ -> Rng.bool rng) in
      let cts = Array.map (Gates.encrypt_bit rng sk) ins in
      let scalar_out, _ = Tfhe_eval.run ck net cts in
      let plain = Array.of_list (List.map snd (Plain_eval.run net ins)) in
      if Array.map (Gates.decrypt_bit sk) scalar_out <> plain then
        QCheck.Test.fail_report "scalar path disagrees with plain_eval";
      let widest = Array.fold_left max 1 (Levelize.run net).Levelize.widths in
      List.for_all
        (fun b ->
          let cpu_out, _ = Tfhe_eval.run ~batch:b ck net cts in
          let par_out, _ = Par_eval.run ~workers:2 ~batch:b ck net cts in
          cpu_out = scalar_out && par_out = scalar_out)
        [ 1; 3; 8; widest ])

let test_non_divisible_wave () =
  let sk, ck = Lazy.force keys in
  (* Waves of 5 gates with batch 3 split 3 + 2 — the short trailing
     sub-batch must stay bit-exact and be counted as its own launch. *)
  let net = Gen_circuit.wide ~width:5 ~depth:2 in
  let rng = Rng.create ~seed:404 () in
  let ins = Array.init 6 (fun _ -> Rng.bool rng) in
  let cts = Array.map (Gates.encrypt_bit rng sk) ins in
  let scalar_out, _ = Tfhe_eval.run ck net cts in
  let outs, st = Tfhe_eval.run ~batch:3 ck net cts in
  Alcotest.(check bool) "ciphertexts identical" true (outs = scalar_out);
  Alcotest.(check (array bool)) "decrypts to plain eval"
    (Array.of_list (List.map snd (Plain_eval.run net ins)))
    (Array.map (Gates.decrypt_bit sk) outs);
  Alcotest.(check int) "batch size recorded" 3 st.Tfhe_eval.batch_size;
  Alcotest.(check int) "two launches per 5-wide wave" 4 st.Tfhe_eval.batch_launches;
  Alcotest.(check bool) "bsk traffic accounted" true (st.Tfhe_eval.bsk_bytes_streamed > 0);
  Alcotest.(check bool) "ks traffic accounted" true (st.Tfhe_eval.ks_bytes_streamed > 0);
  Alcotest.(check bool) "rejects batch < 1" true
    (try
       ignore (Tfhe_eval.run ~batch:0 ck net cts);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "par_eval rejects batch < 1" true
    (try
       ignore (Par_eval.run ~workers:2 ~batch:0 ck net cts);
       false
     with Invalid_argument _ -> true)

let test_key_traffic_drops_with_batch () =
  let sk, ck = Lazy.force keys in
  let net = Gen_circuit.wide ~width:8 ~depth:2 in
  let rng = Rng.create ~seed:405 () in
  let ins = Array.init 9 (fun _ -> Rng.bool rng) in
  let cts = Array.map (Gates.encrypt_bit rng sk) ins in
  let out1, st1 = Tfhe_eval.run ~batch:1 ck net cts in
  let out8, st8 = Tfhe_eval.run ~batch:8 ck net cts in
  Alcotest.(check bool) "batch sizes agree on ciphertexts" true (out1 = out8);
  (* Streaming the key once per 8-gate wave instead of once per gate must
     cut accounted key traffic by far more than 2x. *)
  Alcotest.(check bool) "bsk traffic drops at least 2x" true
    (st1.Tfhe_eval.bsk_bytes_streamed >= 2 * st8.Tfhe_eval.bsk_bytes_streamed);
  Alcotest.(check bool) "ks traffic drops too" true
    (st1.Tfhe_eval.ks_bytes_streamed > st8.Tfhe_eval.ks_bytes_streamed)

let test_executor_batch_knob () =
  let sk, ck = Lazy.force keys in
  let net = Gen_circuit.wide ~width:3 ~depth:2 in
  let rng = Rng.create ~seed:505 () in
  let ins = Array.init 4 (fun _ -> Rng.bool rng) in
  let cts = Array.map (Gates.encrypt_bit rng sk) ins in
  let module Cpu = (val Executor.cpu) in
  let scalar_out, _ = Cpu.run ck net cts in
  let outs, st = Cpu.run ~batch:2 ck net cts in
  Alcotest.(check bool) "executor cpu batched bit-exact" true (outs = scalar_out);
  (match st.Executor.detail with
  | Executor.Cpu_stats s ->
    Alcotest.(check int) "batch size surfaced through detail" 2 s.Tfhe_eval.batch_size
  | _ -> Alcotest.fail "expected cpu stats");
  let module Mc = (val Executor.multicore ~workers:2 ()) in
  let outs, st = Mc.run ~batch:2 ck net cts in
  Alcotest.(check bool) "executor multicore batched bit-exact" true (outs = scalar_out);
  (match st.Executor.detail with
  | Executor.Multicore_stats s ->
    Alcotest.(check int) "multicore batch size surfaced" 2 s.Par_eval.batch_size;
    Alcotest.(check bool) "multicore bsk traffic accounted" true
      (s.Par_eval.bsk_bytes_streamed > 0)
  | _ -> Alcotest.fail "expected multicore stats")

let () =
  Alcotest.run "batch"
    [
      ( "kernel",
        [
          Alcotest.test_case "bootstrap_batch = scalar bootstraps" `Slow
            test_bootstrap_batch_matches_scalar;
          Alcotest.test_case "mux_gate_in = mux_gate" `Slow test_mux_gate_in_matches_mux_gate;
        ] );
      ( "executors",
        [
          QCheck_alcotest.to_alcotest test_batched_matches_scalar;
          Alcotest.test_case "non-divisible wave" `Slow test_non_divisible_wave;
          Alcotest.test_case "key traffic drops with batch" `Slow
            test_key_traffic_drops_with_batch;
          Alcotest.test_case "executor ?batch knob" `Slow test_executor_batch_knob;
        ] );
    ]
