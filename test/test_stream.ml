(* Differential suite for the streaming compiler and executors.

   The contract under test: [Pipeline.compile_stream] over the same
   construction is byte-identical to the one-shot unoptimized compile, for
   any CSE window; and every executor's [run_stream] over the emitted
   stream is bit-identical to its [run] over the parsed netlist —
   including LUT-covered circuits — across Cpu/Par/Dist. *)

module Netlist = Pytfhe_circuit.Netlist
module Binary = Pytfhe_circuit.Binary
module Levelize = Pytfhe_circuit.Levelize
module Rng = Pytfhe_util.Rng
module Pipeline = Pytfhe_core.Pipeline
open Pytfhe_backend

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

(* Replay [src] into [dst]: declare the same inputs, instantiate the whole
   DAG once, and mark outputs through the id map.  With [dst]'s
   construction-time optimizations off the replay is node-for-node, so
   the two netlists assemble to the same bytes. *)
let replay src dst =
  let args =
    Array.of_list (List.map (fun (name, _) -> Netlist.input dst name) (Netlist.inputs src))
  in
  let map = Netlist.instantiate dst ~template:src ~args in
  List.iter (fun (name, id) -> Netlist.mark_output dst name map.(id)) (Netlist.outputs src)

let stream_bytes ?window net =
  Pipeline.compile_stream_to_bytes ~hash_consing:false ~fold_constants:false ?window
    ~name:"stream" (replay net)

(* A chunked pull source whose chunk size is deliberately not a multiple
   of the 16-byte instruction size, so instructions straddle chunks. *)
let source_of_bytes ?(chunk = 40) b =
  let pos = ref 0 in
  fun () ->
    if !pos >= Bytes.length b then None
    else begin
      let n = min chunk (Bytes.length b - !pos) in
      let s = Bytes.sub b !pos n in
      pos := !pos + n;
      Some s
    end

(* ------------------------------------------------------------------ *)
(* Streamed bytes vs one-shot compile                                  *)
(* ------------------------------------------------------------------ *)

let check_byte_identity net =
  let reference = Pipeline.compile ~optimize:false ~name:"oneshot" net in
  let unwindowed, report = stream_bytes net in
  if not (Bytes.equal unwindowed reference.Pipeline.binary) then
    QCheck.Test.fail_report "unwindowed stream differs from one-shot binary";
  (* Windowing only bounds the CSE tables; the emitted stream is the
     construction order either way. *)
  let windowed, wreport = stream_bytes ~window:4 net in
  if not (Bytes.equal windowed reference.Pipeline.binary) then
    QCheck.Test.fail_report "windowed stream differs from one-shot binary";
  let sched = reference.Pipeline.schedule in
  report.Pipeline.depth = sched.Levelize.depth
  && report.Pipeline.bootstraps = sched.Levelize.total_bootstraps
  && report.Pipeline.max_width = Levelize.max_width sched
  && report.Pipeline.bytes_emitted = Bytes.length reference.Pipeline.binary
  && wreport.Pipeline.gates = report.Pipeline.gates

let test_stream_bytes_random =
  QCheck.Test.make ~name:"compile_stream byte-identical to one-shot (random DAGs)" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed -> check_byte_identity (Gen_circuit.random ~gates:30 ~seed ()))

let test_stream_bytes_random_lut =
  QCheck.Test.make ~name:"compile_stream byte-identical to one-shot (LUT DAGs)" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed -> check_byte_identity (Gen_circuit.random_lut ~gates:24 ~seed ()))

let test_stream_bytes_shapes () =
  List.iter
    (fun net ->
      Alcotest.(check bool) "byte identity" true (check_byte_identity net))
    [ Gen_circuit.wide ~width:6 ~depth:4; Gen_circuit.chain ~depth:20 ]

let test_stream_header_sentinel () =
  (* The raw stream carries the sentinel header; the buffered variant
     backpatches it. *)
  let net = Gen_circuit.random ~seed:5 () in
  let buf = Buffer.create 256 in
  let report =
    Pipeline.compile_stream ~hash_consing:false ~fold_constants:false ~name:"raw"
      ~sink:(Buffer.add_bytes buf) (replay net)
  in
  let raw = Buffer.to_bytes buf in
  (match Binary.disassemble raw with
  | Binary.Header { gate_total } :: _ ->
    Alcotest.(check int) "sentinel header" Binary.streamed_gate_total gate_total
  | _ -> Alcotest.fail "missing header");
  let patched, _ = stream_bytes net in
  (match Binary.disassemble patched with
  | Binary.Header { gate_total } :: _ -> Alcotest.(check int) "exact header" report.Pipeline.gates gate_total
  | _ -> Alcotest.fail "missing header");
  Alcotest.(check int) "bytes accounted" (Bytes.length raw) report.Pipeline.bytes_emitted

let test_stream_to_file_roundtrip () =
  let net = Gen_circuit.random_lut ~seed:9 () in
  let path = Filename.temp_file "pytfhe_stream" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let report =
        Pipeline.compile_stream_to_file ~hash_consing:false ~fold_constants:false ~name:"file"
          ~path (replay net)
      in
      let bytes = Binary.read_file path in
      let reference = Binary.assemble net in
      Alcotest.(check bool) "file stream = one-shot binary" true (Bytes.equal bytes reference);
      (* and the file ingests through the service path, with the exact
         (backpatched) gate total in its header *)
      ignore (Pipeline.of_binary ~name:"file" bytes);
      match Binary.disassemble bytes with
      | Binary.Header { gate_total } :: _ ->
        Alcotest.(check int) "header backpatched" report.Pipeline.gates gate_total
      | _ -> Alcotest.fail "missing header")

let test_windowed_eviction_reported () =
  (* With CSE enabled and a tiny window on a repetitive circuit, entries
     must actually evict and the peak stay at the bound. *)
  let report =
    Pipeline.compile_stream ~window:8 ~name:"evict"
      ~sink:(fun _ -> ())
      (fun net ->
        let a = Netlist.input net "a" and b = Netlist.input net "b" in
        let x = ref a in
        for _ = 1 to 64 do
          x := Netlist.gate net Pytfhe_circuit.Gate.Xor !x b
        done;
        Netlist.mark_output net "o" !x)
  in
  Alcotest.(check bool) "evictions happened" true (report.Pipeline.cse_evicted > 0);
  Alcotest.(check bool) "peak bounded" true (report.Pipeline.cse_peak <= 8)

let test_of_binary_max_bytes () =
  let net = Gen_circuit.random ~seed:3 () in
  let bytes = Binary.assemble net in
  Alcotest.(check bool) "under the cap parses" true
    (ignore (Pipeline.of_binary ~max_bytes:(Bytes.length bytes) ~name:"ok" bytes);
     true);
  Alcotest.(check bool) "over the cap rejected before parse" true
    (try
       ignore (Pipeline.of_binary ~max_bytes:(Bytes.length bytes - 1) ~name:"big" bytes);
       false
     with Pytfhe_util.Wire.Corrupt _ -> true)

let test_of_binary_source () =
  let net = Gen_circuit.random_lut ~seed:21 () in
  let bytes = Binary.assemble net in
  let c = Pipeline.of_binary_source ~name:"src" (source_of_bytes bytes) in
  Alcotest.(check bool) "source ingest re-assembles identically" true
    (Bytes.equal c.Pipeline.binary bytes);
  Alcotest.(check int) "stats agree with whole-buffer ingest"
    (Netlist.gate_count (Binary.parse bytes))
    (Netlist.gate_count c.Pipeline.netlist)

(* ------------------------------------------------------------------ *)
(* run_stream vs run, across executors                                 *)
(* ------------------------------------------------------------------ *)

let keys = lazy (Pytfhe_tfhe.Gates.key_gen (Rng.create ~seed:909 ()) Pytfhe_tfhe.Params.test)

let encrypted_inputs net seed =
  let sk, _ = Lazy.force keys in
  let rng = Rng.create ~seed () in
  let ins = Array.init (Netlist.input_count net) (fun _ -> Rng.bool rng) in
  (ins, Array.map (Pytfhe_tfhe.Gates.encrypt_bit rng sk) ins)

let check_executor_stream (module E : Executor.S) ?opts ?window net seed =
  let sk, ck = Lazy.force keys in
  let bytes = Binary.assemble net in
  let ins, cts = encrypted_inputs net seed in
  let ref_out, _ = E.run ?opts ck (Binary.parse bytes) cts in
  let stream_out, _ = E.run_stream ?opts ?window ck (source_of_bytes bytes) cts in
  if stream_out <> ref_out then QCheck.Test.fail_report "run_stream ciphertexts differ from run";
  let plain = Stream_exec.run_bits bytes ins in
  Array.for_all2 ( = ) plain (Array.map (Pytfhe_tfhe.Gates.decrypt_bit sk) stream_out)

let test_cpu_stream_matches =
  QCheck.Test.make ~name:"cpu run_stream bit-exact (incl. LUTs, tiny window)" ~count:4
    QCheck.(int_range 0 10_000)
    (fun seed ->
      check_executor_stream Executor.cpu (Gen_circuit.random ~seed ()) seed
      && check_executor_stream Executor.cpu ~window:2 (Gen_circuit.random_lut ~seed ()) seed)

let test_cpu_stream_batched =
  QCheck.Test.make ~name:"cpu run_stream batched bit-exact" ~count:3
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let opts = { Executor.default_opts with Exec_opts.batch = Some 3 } in
      check_executor_stream Executor.cpu ~opts (Gen_circuit.random_lut ~seed ()) seed)

let test_par_stream_matches =
  QCheck.Test.make ~name:"par run_stream bit-exact (2 workers, incl. LUTs)" ~count:3
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let e = Executor.multicore ~workers:2 () in
      check_executor_stream e (Gen_circuit.random ~seed ()) seed
      && check_executor_stream e ~window:3 (Gen_circuit.random_lut ~seed ()) seed)

let test_dist_stream_matches =
  QCheck.Test.make ~name:"dist run_stream bit-exact (2 workers, incl. LUTs)" ~count:2
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let e = Executor.multiprocess ~workers:2 () in
      check_executor_stream e (Gen_circuit.random ~seed ()) seed
      && check_executor_stream e (Gen_circuit.random_lut ~seed ()) seed)

(* ------------------------------------------------------------------ *)
(* Frontend template reuse                                             *)
(* ------------------------------------------------------------------ *)

module Dtype = Pytfhe_chiseltorch.Dtype
module Tensor = Pytfhe_chiseltorch.Tensor
module Nn = Pytfhe_chiseltorch.Nn
module Attention = Pytfhe_chiseltorch.Attention

let eval_outputs net ins =
  List.map snd (Plain_eval.run net ins)

let build_pair build =
  (* the same construction with and without template reuse *)
  let mk reuse =
    let net = Netlist.create () in
    build reuse net;
    net
  in
  (mk false, mk true)

let check_reuse_equivalent build =
  let direct, reused = build_pair build in
  Alcotest.(check int) "same input count" (Netlist.input_count direct)
    (Netlist.input_count reused);
  let rng = Rng.create ~seed:77 () in
  for _ = 1 to 5 do
    let ins = Array.init (Netlist.input_count direct) (fun _ -> Rng.bool rng) in
    Alcotest.(check (list bool)) "reuse = direct" (eval_outputs direct ins) (eval_outputs reused ins)
  done

let dtype = Dtype.Fixed { width = 6; frac = 2 }

let test_matmul_reuse () =
  check_reuse_equivalent (fun reuse net ->
      let a = Tensor.input net "a" dtype [| 2; 3 |] in
      let b = Tensor.input net "b" dtype [| 3; 2 |] in
      Tensor.output net "y" (Tensor.matmul ~reuse net a b))

let test_matmul_const_reuse () =
  check_reuse_equivalent (fun reuse net ->
      let a = Tensor.input net "a" dtype [| 3; 2 |] in
      let w = [| [| 0.5; -1.0; 0.25 |]; [| 1.5; 0.75; -0.5 |] |] in
      Tensor.output net "y" (Tensor.matmul_const ~reuse net a w))

let test_conv_reuse () =
  let rngw = Rng.create ~seed:13 () in
  let weights = Array.init (2 * 1 * 2 * 2) (fun _ -> Rng.float rngw -. 0.5) in
  let bias = Some [| 0.25; -0.5 |] in
  let model =
    [ Nn.Conv2d { in_ch = 1; out_ch = 2; kernel = 2; stride = 1; padding = 1; weights; bias } ]
  in
  check_reuse_equivalent (fun reuse net ->
      let x = Tensor.input net "x" dtype [| 1; 3; 3 |] in
      Tensor.output net "y" (Nn.run ~reuse net model x))

let test_attention_reuse () =
  let cfg = { Attention.seq_len = 2; hidden = 3 } in
  let w = Attention.random_weights (Rng.create ~seed:19 ()) cfg in
  check_reuse_equivalent (fun reuse net ->
      let x = Tensor.input net "x" dtype [| 2; 3 |] in
      Tensor.output net "y" (Attention.build ~reuse net cfg w x))

let () = Dist_eval.worker_entry ()

let () =
  Alcotest.run "stream"
    [
      ( "compile_stream",
        [
          QCheck_alcotest.to_alcotest test_stream_bytes_random;
          QCheck_alcotest.to_alcotest test_stream_bytes_random_lut;
          Alcotest.test_case "wide and chain shapes" `Quick test_stream_bytes_shapes;
          Alcotest.test_case "header sentinel and backpatch" `Quick test_stream_header_sentinel;
          Alcotest.test_case "file roundtrip" `Quick test_stream_to_file_roundtrip;
          Alcotest.test_case "windowed eviction reported" `Quick test_windowed_eviction_reported;
          Alcotest.test_case "of_binary admission cap" `Quick test_of_binary_max_bytes;
          Alcotest.test_case "of_binary_source" `Quick test_of_binary_source;
        ] );
      ( "run_stream",
        [
          QCheck_alcotest.to_alcotest test_cpu_stream_matches;
          QCheck_alcotest.to_alcotest test_cpu_stream_batched;
          QCheck_alcotest.to_alcotest test_par_stream_matches;
          QCheck_alcotest.to_alcotest test_dist_stream_matches;
        ] );
      ( "template reuse",
        [
          Alcotest.test_case "matmul" `Quick test_matmul_reuse;
          Alcotest.test_case "matmul_const" `Quick test_matmul_const_reuse;
          Alcotest.test_case "conv2d" `Quick test_conv_reuse;
          Alcotest.test_case "attention" `Quick test_attention_reuse;
        ] );
    ]
