(* Exhaustive differential suite for the programmable LUT cells.

   Every 2-input (16 tables) and 3-input (256 tables) boolean function goes
   through the LUT cells and is compared against plain evaluation, under
   both transform backends.  The 3-input exhaustive sweep rides the
   multi-value path (one blind rotation serves all 256 tables per input
   combination); the direct lut2/lut3 entry points are exercised
   exhaustively for arity 2 and on a structured sample for arity 3, and
   are checked bit-identical to the multi-value outputs — the fused and
   unfused paths must agree ciphertext-for-ciphertext, which is what lets
   the executors memoize rotations. *)

module Rng = Pytfhe_util.Rng
open Pytfhe_tfhe

let transforms =
  [ ("fft", Pytfhe_fft.Transform.Fft); ("ntt", Pytfhe_fft.Transform.Ntt) ]

let keysets =
  List.map
    (fun (name, tr) ->
      (name, lazy (Gates.key_gen (Rng.create ~seed:4242 ()) (Params.with_transform Params.test tr))))
    transforms

let keys name = Lazy.force (List.assoc name keysets)

let bits_of ~arity m = Array.init arity (fun i -> (m lsr (arity - 1 - i)) land 1 = 1)
let table_bit table m = (table lsr m) land 1 = 1

(* plain reference: bit m of the table, with operand 0 the message MSB *)
let plain_lut ~arity ~table ins =
  let m = Array.fold_left (fun acc b -> (acc * 2) + Bool.to_int b) 0 ins in
  ignore arity;
  table_bit table m

(* ------------------------------------------------------------------ *)
(* Arity 1: all 4 tables (includes the classic→lutdom reencode)        *)
(* ------------------------------------------------------------------ *)

let test_lut1_exhaustive tr () =
  let sk, ck = keys tr in
  let rng = Rng.create ~seed:11 () in
  for table = 0 to 3 do
    List.iter
      (fun v ->
        let c = Gates.encrypt_bit rng sk v in
        let out = Gates.lut1 ck ~table c in
        Alcotest.(check bool)
          (Printf.sprintf "lut1 table=%d v=%b" table v)
          (table_bit table (Bool.to_int v))
          (Gates.decrypt_lut_bit sk out))
      [ false; true ]
  done

(* ------------------------------------------------------------------ *)
(* Arity 2: all 16 functions, direct and multi-value                   *)
(* ------------------------------------------------------------------ *)

let test_lut2_exhaustive tr () =
  let sk, ck = keys tr in
  let rng = Rng.create ~seed:22 () in
  let all16 = Array.init 16 Fun.id in
  for m = 0 to 3 do
    let ins = bits_of ~arity:2 m in
    let ca = Gates.encrypt_lut_bit rng sk ins.(0) in
    let cb = Gates.encrypt_lut_bit rng sk ins.(1) in
    (* one rotation, 16 outputs *)
    let multi = Gates.lut2_multi ck ~tables:all16 ca cb in
    Array.iteri
      (fun table out ->
        Alcotest.(check bool)
          (Printf.sprintf "lut2_multi table=%#x m=%d" table m)
          (plain_lut ~arity:2 ~table ins)
          (Gates.decrypt_lut_bit sk out))
      multi;
    (* every table through the direct entry point too, on the same
       ciphertexts: must agree with plain eval AND be bit-identical to the
       multi-value output (the rotation is deterministic). *)
    for table = 0 to 15 do
      let direct = Gates.lut2 ck ~table ca cb in
      Alcotest.(check bool)
        (Printf.sprintf "lut2 table=%#x m=%d" table m)
        (plain_lut ~arity:2 ~table ins)
        (Gates.decrypt_lut_bit sk direct);
      Alcotest.(check bool)
        (Printf.sprintf "lut2 direct ≡ multi table=%#x m=%d" table m)
        true
        (direct = multi.(table))
    done
  done

(* ------------------------------------------------------------------ *)
(* Arity 3: all 256 functions via multi-value, structured direct sample *)
(* ------------------------------------------------------------------ *)

let lut3_sample_tables =
  (* identically-false/true, single-minterm edges, majority, 3-way parity,
     mux(a;b,c), and a couple of dense irregular tables *)
  [| 0x00; 0xFF; 0x01; 0x80; 0xE8; 0x96; 0xCA; 0x6B; 0xB2; 0x17 |]

let test_lut3_exhaustive tr () =
  let sk, ck = keys tr in
  let rng = Rng.create ~seed:33 () in
  let all256 = Array.init 256 Fun.id in
  for m = 0 to 7 do
    let ins = bits_of ~arity:3 m in
    let ca = Gates.encrypt_lut_bit rng sk ins.(0) in
    let cb = Gates.encrypt_lut_bit rng sk ins.(1) in
    let cc = Gates.encrypt_lut_bit rng sk ins.(2) in
    let multi = Gates.lut3_multi ck ~tables:all256 ca cb cc in
    Array.iteri
      (fun table out ->
        if Gates.decrypt_lut_bit sk out <> plain_lut ~arity:3 ~table ins then
          Alcotest.failf "lut3_multi table=%#x m=%d wrong" table m)
      multi;
    Array.iter
      (fun table ->
        let direct = Gates.lut3 ck ~table ca cb cc in
        Alcotest.(check bool)
          (Printf.sprintf "lut3 table=%#x m=%d" table m)
          (plain_lut ~arity:3 ~table ins)
          (Gates.decrypt_lut_bit sk direct);
        Alcotest.(check bool)
          (Printf.sprintf "lut3 direct ≡ multi table=%#x m=%d" table m)
          true
          (direct = multi.(table)))
      lut3_sample_tables
  done

(* ------------------------------------------------------------------ *)
(* Indicator extraction: the staircase really is one-hot               *)
(* ------------------------------------------------------------------ *)

let test_indicators_one_hot tr () =
  let sk, ck = keys tr in
  let rng = Rng.create ~seed:44 () in
  let ctx = Gates.default_context ck in
  for m = 0 to 7 do
    let ins = bits_of ~arity:3 m in
    let ops = Array.map (fun b -> Gates.encrypt_lut_bit rng sk b) ins in
    let ind = Gates.lut_indicators_in ctx ~arity:3 ops in
    Alcotest.(check int) "8 indicators" 8 (Array.length ind);
    Array.iteri
      (fun j c ->
        let v = Torus.mod_switch_from (Lwe.phase sk.Gates.extracted_key c) ~msize:16 in
        Alcotest.(check int)
          (Printf.sprintf "indicator %d of message %d" j m)
          (if j = m then 1 else 0)
          v)
      ind
  done

(* ------------------------------------------------------------------ *)
(* Encoding bridges and chains                                         *)
(* ------------------------------------------------------------------ *)

let test_lutdom_roundtrip_and_views tr () =
  let sk, ck = keys tr in
  let rng = Rng.create ~seed:55 () in
  List.iter
    (fun v ->
      let l = Gates.encrypt_lut_bit rng sk v in
      Alcotest.(check bool) "lutdom roundtrip" v (Gates.decrypt_lut_bit sk l);
      (* lutdom → classic view is exact and feeds classic machinery *)
      Alcotest.(check bool) "classic view" v (Gates.decrypt_bit sk (Gates.lut_to_classic l));
      (* classic → lutdom costs one bootstrap *)
      let c = Gates.encrypt_bit rng sk v in
      let re = Gates.reencode ck c in
      Alcotest.(check bool) "reencode" v (Gates.decrypt_lut_bit sk re);
      (* round the full loop: classic → lutdom → classic gate input *)
      let back = Gates.lut_to_classic re in
      let other = Gates.encrypt_bit rng sk true in
      Alcotest.(check bool) "view into AND gate" (v && true)
        (Gates.decrypt_bit sk (Gates.and_gate ck back other));
      Alcotest.(check bool) "trivial lutdom constant" v
        (Gates.decrypt_lut_bit sk (Gates.lut_constant ck v)))
    [ false; true ]

let test_lut_chain_noise tr () =
  (* A full-adder chain in lutdom: each stage is one shared-input rotation
     pair (sum = parity 0x96, carry = majority 0xE8) whose carry feeds the
     next stage — 12 stages deep, checking lutdom outputs keep enough
     margin to feed further LUT cells indefinitely. *)
  let sk, ck = keys tr in
  let rng = Rng.create ~seed:66 () in
  let carry = ref (Gates.encrypt_lut_bit rng sk false) in
  let pcarry = ref false in
  for step = 1 to 12 do
    let a = Rng.bool rng and b = Rng.bool rng in
    let ca = Gates.encrypt_lut_bit rng sk a in
    let cb = Gates.encrypt_lut_bit rng sk b in
    let outs = Gates.lut3_multi ck ~tables:[| 0x96; 0xE8 |] ca cb !carry in
    let psum = a <> b <> !pcarry in
    pcarry := Bool.to_int a + Bool.to_int b + Bool.to_int !pcarry >= 2;
    Alcotest.(check bool)
      (Printf.sprintf "step %d sum" step)
      psum
      (Gates.decrypt_lut_bit sk outs.(0));
    Alcotest.(check bool)
      (Printf.sprintf "step %d carry" step)
      !pcarry
      (Gates.decrypt_lut_bit sk outs.(1));
    carry := outs.(1)
  done

(* ------------------------------------------------------------------ *)
(* Batched cells are bit-identical to the scalar cells                 *)
(* ------------------------------------------------------------------ *)

let test_batch_cells_bit_exact tr () =
  let sk, ck = keys tr in
  let rng = Rng.create ~seed:77 () in
  let ctx = Gates.default_context ck in
  let p = ck.Gates.cloud_params in
  let n = p.Params.lwe.n in
  let classic = Gates.encrypt_bit rng sk true in
  let l1 = Gates.encrypt_lut_bit rng sk true in
  let l2 = Gates.encrypt_lut_bit rng sk false in
  let l3 = Gates.encrypt_lut_bit rng sk true in
  let cells =
    [|
      Gates.sign_cell ~table:0b10;
      Gates.Cell_lut { arity = 2; tables = [| 0x6; 0x8; 0xE |] };
      Gates.sign_cell ~table:0b01;
      Gates.Cell_lut { arity = 3; tables = [| 0x96; 0xE8 |] };
      Gates.Cell_lut { arity = 2; tables = [| 0x1 |] };
    |]
  in
  let combined =
    [|
      classic;
      Gates.lut_combine ~n ~arity:2 [| l1; l2 |];
      classic;
      Gates.lut_combine ~n ~arity:3 [| l1; l2; l3 |];
      Gates.lut_combine ~n ~arity:2 [| l3; l1 |];
    |]
  in
  let bc = Gates.batch_context ck ~cap:8 in
  let batched = Gates.bootstrap_batch_cells bc cells combined in
  let scalar =
    [|
      [| Gates.lut1_in ctx ~table:0b10 classic |];
      Array.map (fun table -> Gates.lut2_in ctx ~table l1 l2) [| 0x6; 0x8; 0xE |];
      [| Gates.lut1_in ctx ~table:0b01 classic |];
      Array.map (fun table -> Gates.lut3_in ctx ~table l1 l2 l3) [| 0x96; 0xE8 |];
      [| Gates.lut2_in ctx ~table:0x1 l3 l1 |];
    |]
  in
  Array.iteri
    (fun i cell_outs ->
      Alcotest.(check int) (Printf.sprintf "cell %d output count" i)
        (Array.length scalar.(i)) (Array.length cell_outs);
      Array.iteri
        (fun j out ->
          Alcotest.(check bool)
            (Printf.sprintf "cell %d output %d bit-identical" i j)
            true
            (out = scalar.(i).(j)))
        cell_outs)
    batched;
  (* sanity: the decrypted semantics too *)
  Alcotest.(check bool) "reencode true" true (Gates.decrypt_lut_bit sk batched.(0).(0));
  Alcotest.(check bool) "xor2(1,0)" true (Gates.decrypt_lut_bit sk batched.(1).(0))

(* ------------------------------------------------------------------ *)
(* Noise model: margins priced, default_128 honestly flagged           *)
(* ------------------------------------------------------------------ *)

let test_noise_lut_model () =
  Alcotest.(check (float 1e-12)) "arity-3 margin is 1/32" (1.0 /. 32.0) (Noise.lut_margin ~msize:8);
  Alcotest.(check (float 1e-12)) "arity-2 margin is 1/16" (1.0 /. 16.0) (Noise.lut_margin ~msize:4);
  (* the test parameter set affords LUT cells at every arity *)
  List.iter
    (fun arity ->
      match Noise.check_lut Params.test ~arity with
      | `Ok prob ->
        Alcotest.(check bool)
          (Printf.sprintf "test params arity %d negligible" arity)
          true (prob < 2.0 ** -32.0)
      | `Unsafe prob -> Alcotest.failf "test params arity %d unsafe: %g" arity prob)
    [ 1; 2; 3 ];
  (* the narrow default_128 LWE budget cannot pay for 8 message slots:
     the model must say so rather than pretend *)
  (match Noise.check_lut Params.default_128 ~arity:3 with
  | `Unsafe _ -> ()
  | `Ok prob -> Alcotest.failf "default_128 arity 3 unexpectedly ok: %g" prob);
  (* monotone in arity: more slots, less margin, more failure *)
  let p2 = Noise.lut_failure_probability Params.test ~arity:2 in
  let p3 = Noise.lut_failure_probability Params.test ~arity:3 in
  Alcotest.(check bool) "arity 3 riskier than arity 2" true (p3 >= p2)

let () =
  let cases name case speed =
    List.map
      (fun (tr, _) -> Alcotest.test_case (Printf.sprintf "%s [%s]" name tr) speed (case tr))
      transforms
  in
  Alcotest.run "lut"
    [
      ("lut1", cases "all 4 tables" test_lut1_exhaustive `Slow);
      ("lut2", cases "all 16 functions, direct + multi" test_lut2_exhaustive `Slow);
      ("lut3", cases "all 256 functions via multi-value" test_lut3_exhaustive `Slow);
      ("indicators", cases "staircase is one-hot" test_indicators_one_hot `Slow);
      ("encoding", cases "lutdom bridges" test_lutdom_roundtrip_and_views `Slow);
      ("chains", cases "12-stage lutdom full adder" test_lut_chain_noise `Slow);
      ("batch", cases "batched cells bit-exact" test_batch_cells_bit_exact `Slow);
      ("noise", [ Alcotest.test_case "margins and limits" `Quick test_noise_lut_model ]);
    ]
