(* Observability-layer tests.

   The load-bearing property is that tracing is a pure observer: a traced
   run must be bit-exact with an untraced run on every backend, for any
   netlist (the traced sequential executor even walks the DAG in a
   different — wave — order, so this is a real statement, not a tautology).
   On top of that: the Chrome exporter must emit schema-valid traces whose
   per-track spans never overlap, the metrics aggregator must sum/track
   correctly, events must survive the DTRC wire format, and a worker crash
   mid-wave must still yield a well-formed (truncated) trace. *)

module Rng = Pytfhe_util.Rng
module Json = Pytfhe_util.Json
module Wire = Pytfhe_util.Wire
module Netlist = Pytfhe_circuit.Netlist
module Gates = Pytfhe_tfhe.Gates
module Trace = Pytfhe_obs.Trace
module Metrics = Pytfhe_obs.Metrics
module Executor = Pytfhe_backend.Executor
module Tfhe_eval = Pytfhe_backend.Tfhe_eval
module Dist_eval = Pytfhe_backend.Dist_eval
module Pipeline = Pytfhe_core.Pipeline
module Server = Pytfhe_core.Server

let keys = lazy (Gates.key_gen (Rng.create ~seed:909 ()) Pytfhe_tfhe.Params.test)

let random_bits rng n = Array.init n (fun _ -> Rng.bool rng)

let wave_spans evs =
  List.filter (function Trace.Span { cat = "wave"; _ } -> true | _ -> false) evs

let check_valid what obs =
  match Trace.validate_chrome (Trace.to_chrome obs) with
  | Ok () -> ()
  | Error m -> Alcotest.fail (what ^ ": invalid Chrome trace: " ^ m)

let backends =
  [
    Server.Cpu;
    Server.Multicore { workers = 2 };
    Server.Multiprocess { workers = 2; config = None };
  ]

(* ------------------------------------------------------------------ *)
(* Traced-vs-untraced bit-exactness through the unified Server.run     *)
(* ------------------------------------------------------------------ *)

let test_traced_bit_exact =
  QCheck.Test.make ~name:"traced runs bit-exact with untraced on cpu/par/dist" ~count:2
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let sk, ck = Lazy.force keys in
      let net = Gen_circuit.random ~seed:(1 + seed) () in
      let compiled = Pipeline.compile ~optimize:false ~name:"obs-qcheck" net in
      let rng = Rng.create ~seed:(7000 + seed) () in
      let ins = random_bits rng (Netlist.input_count compiled.Pipeline.netlist) in
      let cts = Array.map (Gates.encrypt_bit rng sk) ins in
      let ref_out, _ = Server.run Server.Cpu ck compiled cts in
      List.for_all
        (fun backend ->
          let untraced, _ = Server.run backend ck compiled cts in
          let obs = Trace.create () in
          let traced, st =
            Server.run ~opts:{ Executor.default_opts with obs } backend ck compiled cts
          in
          let waves = Array.length st.Executor.wave_width in
          let spans = List.length (wave_spans (Trace.events obs)) in
          if untraced <> ref_out then
            QCheck.Test.fail_reportf "untraced %s disagrees with cpu"
              (Server.exec_backend_name backend);
          if traced <> ref_out then
            QCheck.Test.fail_reportf "traced %s disagrees with untraced"
              (Server.exec_backend_name backend);
          if waves = 0 || spans < waves then
            QCheck.Test.fail_reportf "%s: %d wave spans for %d waves"
              (Server.exec_backend_name backend) spans waves;
          (match Trace.validate_chrome (Trace.to_chrome obs) with
          | Ok () -> ()
          | Error m ->
            QCheck.Test.fail_reportf "%s: invalid trace: %s"
              (Server.exec_backend_name backend) m);
          true)
        backends)

(* ------------------------------------------------------------------ *)
(* Exporter golden tests                                               *)
(* ------------------------------------------------------------------ *)

let test_chrome_export () =
  let obs = Trace.create () in
  let tr = Trace.new_track obs ~name:"golden" in
  Trace.span tr ~name:"a" ~t0:0.0 ~t1:0.001;
  Trace.span tr ~cat:"wave" ~name:"b" ~t0:0.002 ~t1:0.003;
  Trace.counter tr ~name:"boots" 2.0;
  Trace.counter tr ~name:"boots" 3.0;
  Trace.gauge tr ~name:"margin" 1.5;
  Trace.instant tr ~name:"tick";
  let json = Trace.to_chrome obs in
  (match Trace.validate_chrome json with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("golden trace rejected: " ^ m));
  let evs = Option.get (Json.to_list (Option.get (Json.member "traceEvents" json))) in
  (* 2 spans + 2 counter samples + 1 gauge + 1 instant + thread metadata *)
  Alcotest.(check bool) "all events exported" true (List.length evs >= 7);
  let phs =
    List.filter_map (fun e -> Option.bind (Json.member "ph" e) Json.to_str) evs
  in
  List.iter
    (fun ph -> Alcotest.(check bool) ("phase " ^ ph ^ " present") true (List.mem ph phs))
    [ "X"; "C"; "i"; "M" ];
  (* serialize/parse round trip survives validation too *)
  match Trace.validate_chrome (Json.parse (Json.to_string json)) with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("reparsed trace rejected: " ^ m)

let mk_span name ts dur =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "X");
      ("ts", Json.Number ts);
      ("dur", Json.Number dur);
      ("pid", Json.Number 1.0);
      ("tid", Json.Number 1.0);
    ]

let expect_invalid what json =
  match Trace.validate_chrome json with
  | Error _ -> ()
  | Ok () -> Alcotest.fail (what ^ ": bad trace accepted")

let test_chrome_validator_rejects () =
  expect_invalid "no traceEvents" (Json.Obj [ ("foo", Json.Number 1.0) ]);
  expect_invalid "overlapping spans on one track"
    (Json.Obj [ ("traceEvents", Json.List [ mk_span "a" 0.0 10.0; mk_span "b" 5.0 10.0 ]) ]);
  expect_invalid "unsorted spans on one track"
    (Json.Obj [ ("traceEvents", Json.List [ mk_span "a" 20.0 5.0; mk_span "b" 0.0 5.0 ]) ]);
  expect_invalid "negative duration"
    (Json.Obj [ ("traceEvents", Json.List [ mk_span "a" 0.0 (-1.0) ]) ]);
  expect_invalid "event missing ph"
    (Json.Obj
       [
         ( "traceEvents",
           Json.List
             [ Json.Obj [ ("name", Json.String "a"); ("ts", Json.Number 0.0);
                          ("pid", Json.Number 1.0); ("tid", Json.Number 1.0) ] ] );
       ]);
  (* the same two spans on DIFFERENT tracks are fine *)
  let b = mk_span "b" 5.0 10.0 in
  let b' =
    match b with
    | Json.Obj fields ->
      Json.Obj (List.map (function "tid", _ -> ("tid", Json.Number 2.0) | f -> f) fields)
    | _ -> assert false
  in
  match
    Trace.validate_chrome
      (Json.Obj [ ("traceEvents", Json.List [ mk_span "a" 0.0 10.0; b' ]) ])
  with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("cross-track overlap wrongly rejected: " ^ m)

(* ------------------------------------------------------------------ *)
(* Metrics aggregation                                                 *)
(* ------------------------------------------------------------------ *)

let test_metrics_aggregation () =
  let obs = Trace.create () in
  let tr = Trace.new_track obs ~name:"m" in
  Trace.counter tr ~name:"bootstraps" 3.0;
  Trace.counter tr ~name:"bootstraps" 4.0;
  Trace.gauge tr ~name:"noise_margin_sigma" 2.0;
  Trace.gauge tr ~name:"noise_margin_sigma" 1.0;
  Trace.span tr ~cat:"wave" ~name:"wave" ~t0:0.0 ~t1:0.5;
  Trace.span tr ~cat:"wave" ~name:"wave" ~t0:0.5 ~t1:0.75;
  let evs = Trace.events obs in
  Alcotest.(check (float 1e-9)) "counters summed" 7.0
    (List.assoc "bootstraps" (Metrics.counters evs));
  let g = List.assoc "noise_margin_sigma" (Metrics.gauges evs) in
  Alcotest.(check int) "gauge count" 2 g.Metrics.count;
  Alcotest.(check (float 1e-9)) "gauge min" 1.0 g.Metrics.min;
  Alcotest.(check (float 1e-9)) "gauge max" 2.0 g.Metrics.max;
  Alcotest.(check (float 1e-9)) "gauge last" 1.0 g.Metrics.last;
  let n, total = List.assoc "wave" (Metrics.span_totals evs) in
  Alcotest.(check int) "span occurrences" 2 n;
  Alcotest.(check (float 1e-9)) "span total seconds" 0.75 total;
  let j = Metrics.to_json ~extra:[ ("backend", Json.String "test") ] obs in
  Alcotest.(check bool) "counters object present" true (Json.member "counters" j <> None);
  Alcotest.(check bool) "gauges object present" true (Json.member "gauges" j <> None);
  Alcotest.(check bool) "spans object present" true (Json.member "spans" j <> None);
  Alcotest.(check (option int)) "nothing dropped" (Some 0)
    (Option.bind (Json.member "dropped_events" j) Json.to_int);
  Alcotest.(check (option string)) "extra merged" (Some "test")
    (Option.bind (Json.member "backend" j) Json.to_str)

(* ------------------------------------------------------------------ *)
(* Disabled sink and wire round trip                                   *)
(* ------------------------------------------------------------------ *)

let test_null_sink () =
  Alcotest.(check bool) "null is disabled" false (Trace.enabled Trace.null);
  let tr = Trace.new_track Trace.null ~name:"x" in
  Trace.span tr ~name:"s" ~t0:0.0 ~t1:1.0;
  Trace.counter tr ~name:"c" 1.0;
  Trace.gauge tr ~name:"g" 1.0;
  Trace.instant tr ~name:"i";
  Trace.drain Trace.null;
  Alcotest.(check int) "no events on null" 0 (List.length (Trace.events Trace.null));
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped Trace.null)

let test_event_wire_roundtrip () =
  let evs =
    [
      Trace.Span { track = 3; name = "s"; cat = "wave"; t0 = 0.25; t1 = 0.5 };
      Trace.Counter { track = 1; name = "c"; t = 0.1; value = 42.0 };
      Trace.Gauge { track = 0; name = "g"; t = 0.2; value = -1.5 };
      Trace.Instant { track = 2; name = "i"; t = 0.3 };
    ]
  in
  let buf = Buffer.create 64 in
  List.iter (Trace.write_event buf) evs;
  let r = Wire.reader_of_string (Buffer.contents buf) in
  let back = List.map (fun _ -> Trace.read_event r) evs in
  Alcotest.(check bool) "events survive the DTRC wire format" true (back = evs);
  Alcotest.(check bool) "garbage tag raises Corrupt" true
    (let bad = Buffer.create 4 in
     Wire.write_u8 bad 0xEE;
     try
       ignore (Trace.read_event (Wire.reader_of_string (Buffer.contents bad)));
       false
     with Wire.Corrupt _ -> true)

(* ------------------------------------------------------------------ *)
(* Compile-phase spans                                                 *)
(* ------------------------------------------------------------------ *)

let test_pipeline_spans () =
  let obs = Trace.create () in
  let _c = Pipeline.compile ~obs ~name:"traced-compile" (Gen_circuit.random ~seed:5 ()) in
  let names =
    List.filter_map
      (function Trace.Span { name; cat = "compile"; _ } -> Some name | _ -> None)
      (Trace.events obs)
  in
  List.iter
    (fun p -> Alcotest.(check bool) ("compile phase " ^ p ^ " has a span") true (List.mem p names))
    [ "optimize"; "assemble"; "stats"; "levelize" ];
  check_valid "compile trace" obs

(* ------------------------------------------------------------------ *)
(* Dist_eval: worker crash mid-wave still yields a well-formed trace    *)
(* ------------------------------------------------------------------ *)

let test_dist_crash_trace () =
  let sk, ck = Lazy.force keys in
  let net = Gen_circuit.wide ~width:6 ~depth:3 in
  let rng = Rng.create ~seed:52 () in
  let ins = random_bits rng 7 in
  let cts = Array.map (Gates.encrypt_bit rng sk) ins in
  let seq_out, _ = Tfhe_eval.run ck net cts in
  let obs = Trace.create () in
  let cfg =
    Dist_eval.config
      ~faults:[ { Dist_eval.victim = 1; after_requests = 2; action = Dist_eval.Crash } ]
      3
  in
  let outs, st = Dist_eval.run ~opts:{ Executor.default_opts with obs } cfg ck net cts in
  Alcotest.(check bool) "bit-exact despite crash" true (outs = seq_out);
  Alcotest.(check int) "one worker lost" 1 st.Dist_eval.workers_lost;
  let evs = Trace.events obs in
  Alcotest.(check bool) "wave spans survived the crash" true (wave_spans evs <> []);
  check_valid "crash-truncated trace" obs

let test_dist_traced_stats () =
  (* Worker-side spans travel back over DTRC frames and land on the
     coordinator's per-worker tracks; coordinator counters cover the wire. *)
  let sk, ck = Lazy.force keys in
  let net = Gen_circuit.wide ~width:4 ~depth:2 in
  let rng = Rng.create ~seed:53 () in
  let ins = random_bits rng 5 in
  let cts = Array.map (Gates.encrypt_bit rng sk) ins in
  let obs = Trace.create () in
  let _, st =
    Dist_eval.run ~opts:{ Executor.default_opts with obs } (Dist_eval.config 2) ck net cts
  in
  let evs = Trace.events obs in
  let shard_spans =
    List.filter (function Trace.Span { cat = "shard"; _ } -> true | _ -> false) evs
  in
  Alcotest.(check int) "worker shard spans shipped back" st.Dist_eval.requests_sent
    (List.length shard_spans);
  let cs = Metrics.counters evs in
  Alcotest.(check bool) "bytes_to_workers counted" true
    (List.assoc_opt "bytes_to_workers" cs <> None);
  Alcotest.(check (float 1.0)) "bootstrap counter matches stats"
    (float_of_int st.Dist_eval.bootstraps_executed)
    (List.assoc "bootstraps" cs);
  check_valid "dist trace" obs

(* Must run before anything else: in a spawned worker process this serves
   the gate protocol and never returns. *)
let () = Dist_eval.worker_entry ()

let () =
  Alcotest.run "obs"
    [
      ( "bit-exact",
        [ QCheck_alcotest.to_alcotest test_traced_bit_exact ] );
      ( "exporter",
        [
          Alcotest.test_case "chrome golden" `Quick test_chrome_export;
          Alcotest.test_case "validator rejects malformed" `Quick test_chrome_validator_rejects;
        ] );
      ( "metrics", [ Alcotest.test_case "aggregation" `Quick test_metrics_aggregation ] );
      ( "sink",
        [
          Alcotest.test_case "null sink is inert" `Quick test_null_sink;
          Alcotest.test_case "event wire roundtrip" `Quick test_event_wire_roundtrip;
        ] );
      ( "pipeline", [ Alcotest.test_case "compile phase spans" `Quick test_pipeline_spans ] );
      ( "dist",
        [
          Alcotest.test_case "traced run ships worker spans" `Slow test_dist_traced_stats;
          Alcotest.test_case "crash mid-wave yields valid trace" `Slow test_dist_crash_trace;
        ] );
    ]
