(* The transform dispatch layer: the exact double-prime NTT against the
   complex FFT.

   Three layers of evidence, mirroring the claims in docs/perf.md:

   - the NTT itself is *exact*: its negacyclic products equal the
     schoolbook reference coefficient for coefficient at gadget-scale
     magnitudes, and the FFT agrees once rounded (its products round to
     exact integers in this range — which is what makes the two gate
     pipelines bit-comparable at all);
   - the gate pipeline is transform-generic: random netlists evaluated
     under FFT parameters and NTT parameters decrypt to identical
     plaintexts on the sequential, domain-parallel and multi-process
     executors (and the raw NTT ciphertexts are bit-exact across those
     executors, like the FFT's);
   - the table caches are precomputed before worker domains exist: a
     parallel run over a warmed cache performs zero table builds. *)

module Rng = Pytfhe_util.Rng
module Wire = Pytfhe_util.Wire
module Netlist = Pytfhe_circuit.Netlist
module Negacyclic = Pytfhe_fft.Negacyclic
module Ntt = Pytfhe_fft.Ntt
module Transform = Pytfhe_fft.Transform
open Pytfhe_tfhe
open Pytfhe_backend

let ntt_test_params = Params.with_transform Params.test Transform.Ntt

let fft_keys = lazy (Gates.key_gen (Rng.create ~seed:909 ()) Params.test)
let ntt_keys = lazy (Gates.key_gen (Rng.create ~seed:909 ()) ntt_test_params)

(* ------------------------------------------------------------------ *)
(* NTT exactness and contracts                                         *)
(* ------------------------------------------------------------------ *)

(* Digits at the gadget bound (±Bg/2) against full-range centred torus
   words, at the production ring size: the NTT must match the schoolbook
   product exactly, not approximately. *)
let test_ntt_polymul_exact_gadget_range () =
  let n = 1024 in
  let rng = Rng.create ~seed:11 () in
  let a = Array.init n (fun _ -> Rng.int rng 64 - 32) in
  let b = Array.init n (fun _ -> Rng.int rng (1 lsl 32) - (1 lsl 31)) in
  Alcotest.(check bool) "ntt == schoolbook at N=1024" true
    (Ntt.polymul a b = Ntt.polymul_naive a b)

let test_ntt_roundtrip () =
  let n = 256 in
  let rng = Rng.create ~seed:12 () in
  let p = Array.init n (fun _ -> Rng.int rng (1 lsl 40) - (1 lsl 39)) in
  Alcotest.(check bool) "backward (forward p) = p" true (Ntt.backward (Ntt.forward p) = p)

(* backward_into runs the inverse in place: the spectrum is scratch
   afterwards.  Pin the contract so a caller reusing a spectrum after the
   inverse fails a test, not a debugging session. *)
let test_ntt_backward_destroys_spectrum () =
  let n = 64 in
  let rng = Rng.create ~seed:13 () in
  let p = Array.init n (fun _ -> Rng.int rng 1000 - 500) in
  let s = Ntt.forward p in
  let v1 = Array.copy s.Ntt.v1 and v2 = Array.copy s.Ntt.v2 in
  let out = Array.make n 0 in
  Ntt.backward_into out s;
  Alcotest.(check bool) "inverse recovers the polynomial" true (out = p);
  Alcotest.(check bool) "spectrum consumed by the inverse" true
    (s.Ntt.v1 <> v1 || s.Ntt.v2 <> v2)

let test_ntt_mul_add_accumulates () =
  let n = 128 in
  let rng = Rng.create ~seed:14 () in
  let a1 = Array.init n (fun _ -> Rng.int rng 64 - 32) in
  let b1 = Array.init n (fun _ -> Rng.int rng (1 lsl 31) - (1 lsl 30)) in
  let a2 = Array.init n (fun _ -> Rng.int rng 64 - 32) in
  let b2 = Array.init n (fun _ -> Rng.int rng (1 lsl 31) - (1 lsl 30)) in
  let acc = Ntt.spectrum_create n in
  Ntt.spectrum_zero acc;
  Ntt.mul_add_into acc (Ntt.forward a1) (Ntt.forward b1);
  Ntt.mul_add_into acc (Ntt.forward a2) (Ntt.forward b2);
  let got = Ntt.backward acc in
  let expected =
    Array.map2 ( + ) (Ntt.polymul_naive a1 b1) (Ntt.polymul_naive a2 b2)
  in
  Alcotest.(check bool) "sum of two products" true (got = expected)

(* In the gadget range the FFT's products round to exact integers, so
   rounding its result must reproduce the NTT's exact one — the property
   the ntt_ok CI gate and every cross-transform comparison stand on. *)
let test_fft_ntt_polymul_agree =
  QCheck.Test.make ~name:"fft rounds to the ntt's exact product" ~count:25
    QCheck.(pair small_nat small_nat)
    (fun (s1, s2) ->
      let n = 256 in
      let rng = Rng.create ~seed:(100 + (1000 * s1) + s2) () in
      let a = Array.init n (fun _ -> Rng.int rng 64 - 32) in
      let b = Array.init n (fun _ -> Rng.int rng (1 lsl 32) - (1 lsl 31)) in
      let exact = Ntt.polymul a b in
      let via_fft =
        Negacyclic.polymul (Array.map float_of_int a) (Array.map float_of_int b)
        |> Array.map (fun x -> Int64.to_int (Int64.of_float (Float.round x)))
      in
      via_fft = exact)

(* ------------------------------------------------------------------ *)
(* Params plumbing                                                     *)
(* ------------------------------------------------------------------ *)

let roundtrip p =
  let buf = Buffer.create 128 in
  Params.write buf p;
  Params.read (Wire.reader_of_string (Buffer.contents buf))

let test_params_transform_roundtrip () =
  Alcotest.(check bool) "fft roundtrips" true (Params.equal (roundtrip Params.test) Params.test);
  Alcotest.(check bool) "ntt roundtrips" true
    (Params.equal (roundtrip ntt_test_params) ntt_test_params);
  Alcotest.(check bool) "transform survives the wire" true
    ((roundtrip ntt_test_params).Params.transform = Transform.Ntt)

let test_params_ntt_validation () =
  (* Identical numeric parameters: fine under FFT, rejected under NTT
     because the worst-case product magnitude exceeds the CRT modulus
     headroom. *)
  let big transform =
    Params.validate
      {
        (Params.with_transform Params.test transform) with
        Params.tlwe = { Params.ring_n = 1 lsl 18; k = 1; tlwe_stdev = 2.0 ** -30.0 };
        tgsw = { Params.l = 2; bg_bit = 16 };
      }
  in
  Alcotest.(check bool) "headroom params valid under fft" true (big Transform.Fft = Ok ());
  Alcotest.(check bool) "headroom params invalid under ntt" true
    (match big Transform.Ntt with Error _ -> true | Ok () -> false);
  let huge_ring transform =
    Params.validate
      {
        (Params.with_transform Params.test transform) with
        Params.tlwe = { Params.ring_n = 1 lsl 21; k = 1; tlwe_stdev = 2.0 ** -30.0 };
      }
  in
  Alcotest.(check bool) "2^21 ring valid under fft" true (huge_ring Transform.Fft = Ok ());
  Alcotest.(check bool) "2^21 ring exceeds ntt 2-adicity" true
    (match huge_ring Transform.Ntt with Error _ -> true | Ok () -> false)

(* A bootstrapping-key row serialized under one transform must be rejected
   when read under parameters selecting the other: the GFFT/GNTT magic is
   the keyset-payload mismatch guard. *)
let test_tgsw_wire_transform_mismatch () =
  let rng = Rng.create ~seed:21 () in
  let key = Tlwe.key_gen rng Params.test in
  let sample kind =
    let p = Params.with_transform Params.test kind in
    Tgsw.to_fft p (Tgsw.encrypt_int rng p key 1)
  in
  let serialized s =
    let buf = Buffer.create 4096 in
    Tgsw.write_fft buf s;
    Buffer.contents buf
  in
  let rejects p blob =
    match Tgsw.read_fft p (Wire.reader_of_string blob) with
    | _ -> false
    | exception Wire.Corrupt _ -> true
  in
  let fft_blob = serialized (sample Transform.Fft) in
  let ntt_blob = serialized (sample Transform.Ntt) in
  Alcotest.(check bool) "fft payload readable under fft params" true
    (not (rejects Params.test fft_blob));
  Alcotest.(check bool) "ntt payload readable under ntt params" true
    (not (rejects ntt_test_params ntt_blob));
  Alcotest.(check bool) "fft payload rejected under ntt params" true
    (rejects ntt_test_params fft_blob);
  Alcotest.(check bool) "ntt payload rejected under fft params" true
    (rejects Params.test ntt_blob)

(* ------------------------------------------------------------------ *)
(* Cross-transform differential over random netlists                   *)
(* ------------------------------------------------------------------ *)

let random_bits rng n = Array.init n (fun _ -> Rng.bool rng)

(* The same random netlist under FFT parameters and NTT parameters must
   decrypt to the same plaintexts — equal to the plain-netlist truth — on
   the sequential, domain-parallel and multi-process executors.  The
   keysets share a seed but not ciphertext bits (different key formats),
   so the comparison is at the plaintext level; within each transform the
   executors must also stay ciphertext-bit-exact with each other. *)
let test_cross_transform_netlists =
  QCheck.Test.make ~name:"fft/ntt netlists decrypt identically on cpu/par/dist" ~count:2
    QCheck.(pair (int_range 0 10_000) (int_range 0 10_000))
    (fun (s1, s2) ->
      let net = Gen_circuit.random ~seed:(3 + s1) () in
      let ins = random_bits (Rng.create ~seed:(4000 + s2) ()) (Netlist.input_count net) in
      let plain = Array.of_list (List.map snd (Plain_eval.run net ins)) in
      let decrypted_under (sk, ck) =
        let rng = Rng.create ~seed:(5000 + s2) () in
        let cts = Array.map (Gates.encrypt_bit rng sk) ins in
        let seq_out, _ = Tfhe_eval.run ck net cts in
        let par_out, _ = Par_eval.run ~workers:2 ck net cts in
        let dist_out, _ = Dist_eval.run (Dist_eval.config 2) ck net cts in
        if par_out <> seq_out then
          QCheck.Test.fail_report "par executor not bit-exact with sequential";
        if dist_out <> seq_out then
          QCheck.Test.fail_report "dist executor not bit-exact with sequential";
        Array.map (Gates.decrypt_bit sk) seq_out
      in
      let fft_bits = decrypted_under (Lazy.force fft_keys) in
      let ntt_bits = decrypted_under (Lazy.force ntt_keys) in
      if fft_bits <> plain then QCheck.Test.fail_report "fft run disagrees with plaintext";
      if ntt_bits <> plain then QCheck.Test.fail_report "ntt run disagrees with plaintext";
      true)

(* ------------------------------------------------------------------ *)
(* Precompute: no table builds once worker domains are running          *)
(* ------------------------------------------------------------------ *)

(* Par_eval precomputes transform tables before spawning its domain pool;
   with the cache warm, a parallel NTT run must perform zero further
   table constructions (Ntt.builds is a monotone build counter, so this
   is a table-initialized check, not a timing heuristic). *)
let test_par_run_builds_no_tables () =
  let sk, ck = Lazy.force ntt_keys in
  let net = Gen_circuit.wide ~width:6 ~depth:2 in
  let rng = Rng.create ~seed:31 () in
  let ins = random_bits rng 7 in
  let cts = Array.map (Gates.encrypt_bit rng sk) ins in
  Params.precompute ck.Gates.cloud_params;
  let ring_n = ck.Gates.cloud_params.Params.tlwe.Params.ring_n in
  Alcotest.(check bool) "ntt tables ready before the run" true (Ntt.tables_ready ring_n);
  let b0 = Ntt.builds () in
  let _, _ = Par_eval.run ~workers:4 ck net cts in
  Alcotest.(check int) "no ntt table builds during the parallel run" b0 (Ntt.builds ());
  Alcotest.(check bool) "fft transform tables also ready" true
    (Transform.tables_ready Transform.Ntt ring_n)

(* Must run before anything else: in a spawned worker process this serves
   the gate protocol and never returns. *)
let () = Dist_eval.worker_entry ()

let () =
  Alcotest.run "transform"
    [
      ( "ntt-core",
        [
          Alcotest.test_case "polymul exact at gadget range" `Quick
            test_ntt_polymul_exact_gadget_range;
          Alcotest.test_case "roundtrip" `Quick test_ntt_roundtrip;
          Alcotest.test_case "backward destroys spectrum" `Quick
            test_ntt_backward_destroys_spectrum;
          Alcotest.test_case "mul_add accumulates" `Quick test_ntt_mul_add_accumulates;
          QCheck_alcotest.to_alcotest test_fft_ntt_polymul_agree;
        ] );
      ( "params",
        [
          Alcotest.test_case "transform wire roundtrip" `Quick test_params_transform_roundtrip;
          Alcotest.test_case "ntt validation" `Quick test_params_ntt_validation;
          Alcotest.test_case "tgsw wire mismatch" `Quick test_tgsw_wire_transform_mismatch;
        ] );
      ( "differential",
        [ QCheck_alcotest.to_alcotest test_cross_transform_netlists ] );
      ( "precompute",
        [ Alcotest.test_case "no mid-flight table builds" `Slow test_par_run_builds_no_tables ] );
    ]
