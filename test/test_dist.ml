(* Differential and fault-injection tests for the multi-process executor.

   The cross-backend suite is the repo's strongest correctness statement:
   five executors with nothing in common above the gate kernel — plain
   netlist walk, streamed binary, sequential encrypted, domain-parallel
   encrypted, and multi-process encrypted — must agree bit-for-bit on
   seeded random DAGs.  The fault suite then breaks the distributed one on
   purpose (real SIGKILL, real truncated frames, real stalls) and checks
   the coordinator recovers without losing bit-exactness. *)

module Rng = Pytfhe_util.Rng
module Netlist = Pytfhe_circuit.Netlist
module Binary = Pytfhe_circuit.Binary
module Gates = Pytfhe_tfhe.Gates
open Pytfhe_backend

let keys = lazy (Gates.key_gen (Rng.create ~seed:909 ()) Pytfhe_tfhe.Params.test)

let random_bits rng n = Array.init n (fun _ -> Rng.bool rng)

let bopts ?batch ?soa () = Exec_opts.of_flags ?batch ?soa ()

(* Sequential encrypted reference plus plaintext truth for [net]/[ins]. *)
let reference ck net cts = fst (Tfhe_eval.run ck net cts)

(* ------------------------------------------------------------------ *)
(* Cross-backend differential suite                                    *)
(* ------------------------------------------------------------------ *)

let test_cross_backend =
  QCheck.Test.make ~name:"cross-backend: plain/stream/tfhe/par/dist bit-exact, workers 1/2/4"
    ~count:3
    QCheck.(pair (int_range 0 10_000) (int_range 0 10_000))
    (fun (s1, s2) ->
      let sk, ck = Lazy.force keys in
      let net = Gen_circuit.random ~seed:(1 + s1) () in
      let rng = Rng.create ~seed:(2000 + s2) () in
      let ins = random_bits rng (Netlist.input_count net) in
      let plain = Array.of_list (List.map snd (Plain_eval.run net ins)) in
      let stream = Stream_exec.run_bits (Binary.assemble net) ins in
      if stream <> plain then QCheck.Test.fail_report "stream_exec disagrees with plain_eval";
      let cts = Array.map (Gates.encrypt_bit rng sk) ins in
      let seq_out = reference ck net cts in
      if Array.map (Gates.decrypt_bit sk) seq_out <> plain then
        QCheck.Test.fail_report "tfhe_eval disagrees with plain_eval";
      List.for_all
        (fun workers ->
          let par_out, _ = Par_eval.run ~workers ck net cts in
          let dist_out, st = Dist_eval.run (Dist_eval.config workers) ck net cts in
          par_out = seq_out && dist_out = seq_out
          && st.Dist_eval.workers_started = workers
          && st.Dist_eval.workers_lost = 0)
        [ 1; 2; 4 ])

(* The LUT analog of the cross-backend suite, doubled: the same seeded
   LUT-bearing DAG is run as generated AND after Opt.lut_cover, and every
   executor — plain walk, streamed binary, sequential encrypted (per-gate,
   batched, SoA), domain-parallel, multi-process — must reproduce the
   original netlist's plaintext truth bit-for-bit on both versions. *)
let test_cross_backend_lut =
  QCheck.Test.make
    ~name:"cross-backend LUT: original and lut_cover-ed bit-exact on all executors" ~count:2
    QCheck.(pair (int_range 0 10_000) (int_range 0 10_000))
    (fun (s1, s2) ->
      let sk, ck = Lazy.force keys in
      let net = Gen_circuit.random_lut ~seed:(1 + s1) () in
      let covered, _ = Pytfhe_synth.Opt.lut_cover net in
      let rng = Rng.create ~seed:(3000 + s2) () in
      let ins = random_bits rng (Netlist.input_count net) in
      let truth = Array.of_list (List.map snd (Plain_eval.run net ins)) in
      List.for_all
        (fun n ->
          let plain = Array.of_list (List.map snd (Plain_eval.run n ins)) in
          if plain <> truth then QCheck.Test.fail_report "lut_cover changed the function";
          let stream = Stream_exec.run_bits (Binary.assemble n) ins in
          if stream <> truth then
            QCheck.Test.fail_report "stream_exec disagrees with plain_eval on a LUT netlist";
          let cts = Array.map (Gates.encrypt_bit rng sk) ins in
          let seq_out = reference ck n cts in
          if Array.map (Gates.decrypt_bit sk) seq_out <> truth then
            QCheck.Test.fail_report "tfhe_eval disagrees with plain_eval on a LUT netlist";
          let batched, _ = Tfhe_eval.run ~opts:(bopts ~batch:3 ()) ck n cts in
          let soa, _ = Tfhe_eval.run ~opts:(bopts ~batch:3 ~soa:true ()) ck n cts in
          if batched <> seq_out || soa <> seq_out then
            QCheck.Test.fail_report "batched/SoA paths disagree on a LUT netlist";
          List.for_all
            (fun workers ->
              let par_out, _ = Par_eval.run ~workers ck n cts in
              let par_soa, _ = Par_eval.run ~workers ~opts:(bopts ~batch:3 ~soa:true ()) ck n cts in
              let dist_out, st = Dist_eval.run (Dist_eval.config workers) ck n cts in
              par_out = seq_out && par_soa = seq_out && dist_out = seq_out
              && st.Dist_eval.workers_lost = 0)
            [ 1; 2; 4 ])
        [ net; covered ])

let test_dist_stats_and_validation () =
  let sk, ck = Lazy.force keys in
  let net = Gen_circuit.wide ~width:4 ~depth:2 in
  let rng = Rng.create ~seed:41 () in
  let ins = random_bits rng 5 in
  let cts = Array.map (Gates.encrypt_bit rng sk) ins in
  let seq_out, seq_stats = Tfhe_eval.run ck net cts in
  let outs, st = Dist_eval.run (Dist_eval.config 2) ck net cts in
  Alcotest.(check bool) "ciphertexts identical" true (outs = seq_out);
  Alcotest.(check int) "bootstrap totals agree" seq_stats.Tfhe_eval.bootstraps_executed
    st.Dist_eval.bootstraps_executed;
  Alcotest.(check int) "two workers forked" 2 st.Dist_eval.workers_started;
  Alcotest.(check bool) "at least one request per wave" true
    (st.Dist_eval.requests_sent >= Array.length st.Dist_eval.wave_wall);
  Alcotest.(check bool) "keyset shipped" true (st.Dist_eval.keyset_bytes > 0);
  Alcotest.(check bool) "bytes flowed both ways" true
    (st.Dist_eval.bytes_to_workers > 0 && st.Dist_eval.bytes_from_workers > 0);
  Alcotest.(check bool) "worker compute time reported" true (st.Dist_eval.compute_time > 0.0);
  Alcotest.(check bool) "rejects workers < 1" true
    (try ignore (Dist_eval.config 0); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "rejects input arity mismatch" true
    (try ignore (Dist_eval.run (Dist_eval.config 2) ck net (Array.sub cts 0 2)); false
     with Invalid_argument _ -> true)

(* Both wire layouts — per-sample DREQ/DREP frames and struct-of-arrays
   DRQ2/DRP2 frames — must produce the sequential executor's exact
   ciphertexts.  Every other test in this file runs the array frames (the
   default), so this is the legacy path's regression test, plus the check
   that the two layouts agree with each other. *)
let test_array_frames_toggle () =
  let sk, ck = Lazy.force keys in
  let net = Gen_circuit.wide ~width:5 ~depth:3 in
  let rng = Rng.create ~seed:51 () in
  let ins = random_bits rng 6 in
  let cts = Array.map (Gates.encrypt_bit rng sk) ins in
  let seq_out = reference ck net cts in
  let arr_out, arr_st = Dist_eval.run (Dist_eval.config ~array_frames:true 2) ck net cts in
  let leg_out, leg_st = Dist_eval.run (Dist_eval.config ~array_frames:false 2) ck net cts in
  Alcotest.(check bool) "array frames bit-exact" true (arr_out = seq_out);
  Alcotest.(check bool) "legacy frames bit-exact" true (leg_out = seq_out);
  Alcotest.(check int) "same bootstrap count" leg_st.Dist_eval.bootstraps_executed
    arr_st.Dist_eval.bootstraps_executed;
  Alcotest.(check bool) "both layouts moved bytes" true
    (arr_st.Dist_eval.bytes_to_workers > 0 && leg_st.Dist_eval.bytes_to_workers > 0)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

(* Every fault scenario runs the same circuit and demands the same
   outputs as the sequential executor; only the stats differ. *)
let run_with_faults ?request_timeout ?max_retries ?backoff ~workers faults =
  let sk, ck = Lazy.force keys in
  let net = Gen_circuit.wide ~width:6 ~depth:3 in
  let rng = Rng.create ~seed:42 () in
  let ins = random_bits rng 7 in
  let cts = Array.map (Gates.encrypt_bit rng sk) ins in
  let seq_out = reference ck net cts in
  let cfg = Dist_eval.config ?request_timeout ?max_retries ?backoff ~faults workers in
  let outs, st = Dist_eval.run cfg ck net cts in
  Alcotest.(check bool) "outputs bit-exact despite fault" true (outs = seq_out);
  st

let test_fault_sigkill_mid_wave () =
  (* Worker 1 SIGKILLs itself while holding its second shard; the shard
     must be reassigned to a survivor and the run must stay bit-exact. *)
  let st =
    run_with_faults ~workers:3
      [ { Dist_eval.victim = 1; after_requests = 2; action = Dist_eval.Crash } ]
  in
  Alcotest.(check int) "one worker lost" 1 st.Dist_eval.workers_lost;
  Alcotest.(check bool) "crashed shard reassigned" true (st.Dist_eval.reassignments >= 1)

let test_fault_flipped_frame () =
  (* A framing-correct reply with a corrupted payload must be rejected and
     re-requested — never decoded into a wrong ciphertext, never a hang. *)
  let st =
    run_with_faults ~workers:2
      [ { Dist_eval.victim = 0; after_requests = 1; action = Dist_eval.Flip_reply } ]
  in
  Alcotest.(check bool) "corrupt frame counted" true (st.Dist_eval.corrupt_frames >= 1);
  Alcotest.(check bool) "shard re-requested" true (st.Dist_eval.retries >= 1);
  Alcotest.(check int) "worker survives a flipped frame" 0 st.Dist_eval.workers_lost

let test_fault_truncated_frame () =
  (* Half a frame then EOF: the coordinator must treat it as a dead
     worker, not block forever waiting for the missing bytes. *)
  let st =
    run_with_faults ~workers:2
      [ { Dist_eval.victim = 1; after_requests = 1; action = Dist_eval.Truncate_reply } ]
  in
  Alcotest.(check int) "truncating worker declared lost" 1 st.Dist_eval.workers_lost;
  Alcotest.(check bool) "its shard reassigned" true (st.Dist_eval.reassignments >= 1)

let test_fault_stall_retries () =
  (* A worker that sleeps past the request timeout but eventually answers:
     the deadline must be extended (retry path), not the worker killed. *)
  let st =
    run_with_faults ~workers:2 ~request_timeout:0.15 ~max_retries:3 ~backoff:2.0
      [ { Dist_eval.victim = 0; after_requests = 1; action = Dist_eval.Stall 0.4 } ]
  in
  Alcotest.(check bool) "timeout extended at least once" true (st.Dist_eval.retries >= 1);
  Alcotest.(check int) "slow worker not declared lost" 0 st.Dist_eval.workers_lost

let test_fault_all_workers_lost () =
  let sk, ck = Lazy.force keys in
  let net = Gen_circuit.wide ~width:2 ~depth:1 in
  let rng = Rng.create ~seed:43 () in
  let cts = Array.map (Gates.encrypt_bit rng sk) (random_bits rng 3) in
  let cfg =
    Dist_eval.config ~faults:[ { Dist_eval.victim = 0; after_requests = 1; action = Dist_eval.Crash } ] 1
  in
  Alcotest.(check bool) "single worker crash raises Failure" true
    (try ignore (Dist_eval.run cfg ck net cts); false with Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* DHEL transform negotiation                                          *)
(* ------------------------------------------------------------------ *)

module Params = Pytfhe_tfhe.Params
module Transform = Pytfhe_fft.Transform
module Wire = Pytfhe_util.Wire

(* A second keyset at the same parameters but with the NTT backend, so the
   mismatch can be pinned in both directions. *)
let ntt_keys =
  lazy
    (Gates.key_gen (Rng.create ~seed:909 ())
       (Params.with_transform Pytfhe_tfhe.Params.test Transform.Ntt))

let hello_for ~transform ck =
  let buf = Buffer.create (1 lsl 16) in
  Gates.write_cloud_keyset buf ck;
  Bytes.to_string
    (Dist_eval.hello_bytes ~index:0 ~transform ~obs:Pytfhe_obs.Trace.null ~faults:[]
       ~keyset_blob:(Buffer.contents buf))

let parses_to ~transform ck =
  let _, _, _, _, ck' =
    Dist_eval.parse_hello (Wire.reader_of_string (hello_for ~transform ck))
  in
  ck'.Gates.cloud_params.Params.transform

let rejects_hello ~transform ck =
  match Dist_eval.parse_hello (Wire.reader_of_string (hello_for ~transform ck)) with
  | _ -> false
  | exception Wire.Corrupt _ -> true

(* A worker must reject a coordinator whose DHEL transform tag disagrees
   with the transform recorded in the shipped keyset's own parameters —
   in both directions — and accept both matched pairings. *)
let test_dhel_transform_negotiation () =
  let _, fft_ck = Lazy.force keys in
  let _, ntt_ck = Lazy.force ntt_keys in
  Alcotest.(check bool) "fft tag + fft keyset parses" true
    (parses_to ~transform:Transform.Fft fft_ck = Transform.Fft);
  Alcotest.(check bool) "ntt tag + ntt keyset parses" true
    (parses_to ~transform:Transform.Ntt ntt_ck = Transform.Ntt);
  Alcotest.(check bool) "ntt tag over fft keyset rejected" true
    (rejects_hello ~transform:Transform.Ntt fft_ck);
  Alcotest.(check bool) "fft tag over ntt keyset rejected" true
    (rejects_hello ~transform:Transform.Fft ntt_ck)

(* End-to-end under the NTT backend: the coordinator tags its own
   transform, workers accept it, and the distributed run stays bit-exact
   with the sequential executor. *)
let test_dist_ntt_end_to_end () =
  let sk, ck = Lazy.force ntt_keys in
  let net = Gen_circuit.wide ~width:4 ~depth:2 in
  let rng = Rng.create ~seed:77 () in
  let ins = random_bits rng 5 in
  let cts = Array.map (Gates.encrypt_bit rng sk) ins in
  let seq_out = reference ck net cts in
  let outs, st = Dist_eval.run (Dist_eval.config 2) ck net cts in
  Alcotest.(check bool) "ntt dist bit-exact with sequential" true (outs = seq_out);
  Alcotest.(check int) "no workers lost" 0 st.Dist_eval.workers_lost

(* Must run before anything else: in a spawned worker process this serves
   the gate protocol and never returns. *)
let () = Dist_eval.worker_entry ()

let () =
  Alcotest.run "dist"
    [
      ( "cross-backend",
        [
          QCheck_alcotest.to_alcotest test_cross_backend;
          QCheck_alcotest.to_alcotest test_cross_backend_lut;
          Alcotest.test_case "stats and validation" `Slow test_dist_stats_and_validation;
          Alcotest.test_case "array-frames toggle" `Slow test_array_frames_toggle;
        ] );
      ( "faults",
        [
          Alcotest.test_case "sigkill mid-wave" `Slow test_fault_sigkill_mid_wave;
          Alcotest.test_case "flipped reply frame" `Slow test_fault_flipped_frame;
          Alcotest.test_case "truncated reply frame" `Slow test_fault_truncated_frame;
          Alcotest.test_case "stalled worker retries" `Slow test_fault_stall_retries;
          Alcotest.test_case "all workers lost" `Slow test_fault_all_workers_lost;
        ] );
      ( "transform",
        [
          Alcotest.test_case "DHEL transform negotiation" `Quick
            test_dhel_transform_negotiation;
          Alcotest.test_case "ntt end to end" `Slow test_dist_ntt_end_to_end;
        ] );
    ]
