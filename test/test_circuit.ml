module Rng = Pytfhe_util.Rng
open Pytfhe_circuit
module Opt = Pytfhe_synth.Opt

(* ------------------------------------------------------------------ *)
(* Gate                                                                *)
(* ------------------------------------------------------------------ *)

let test_gate_codes_roundtrip () =
  List.iter
    (fun g ->
      match Gate.of_code (Gate.to_code g) with
      | Some g' -> Alcotest.(check string) "code roundtrip" (Gate.name g) (Gate.name g')
      | None -> Alcotest.fail "missing code")
    Gate.all;
  Alcotest.(check int) "xor encodes as 0110" 6 (Gate.to_code Gate.Xor);
  Alcotest.(check int) "eleven gate types" 11 (List.length Gate.all)

let test_gate_swap_is_involutive_semantics () =
  List.iter
    (fun g ->
      match Gate.swap g with
      | None -> Alcotest.(check bool) "only NOT lacks a mirror" true (Gate.is_unary g)
      | Some g' ->
        List.iter
          (fun (a, b) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s mirrored" (Gate.name g))
              (Gate.eval g a b) (Gate.eval g' b a))
          [ (false, false); (false, true); (true, false); (true, true) ])
    Gate.all

let test_gate_commutativity_flag () =
  List.iter
    (fun g ->
      if Gate.is_commutative g then
        List.iter
          (fun (a, b) ->
            Alcotest.(check bool) "commutes" (Gate.eval g a b) (Gate.eval g b a))
          [ (false, true); (true, false) ])
    Gate.all

(* ------------------------------------------------------------------ *)
(* Netlist construction and folding                                    *)
(* ------------------------------------------------------------------ *)

let test_netlist_basics () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let x = Netlist.gate net Gate.Xor a b in
  Netlist.mark_output net "x" x;
  Alcotest.(check int) "inputs" 2 (Netlist.input_count net);
  Alcotest.(check int) "gates" 1 (Netlist.gate_count net);
  Alcotest.(check (list (pair string bool)))
    "eval"
    [ ("x", true) ]
    (Netlist.eval_outputs net [| true; false |])

let test_netlist_const_folding () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let t = Netlist.const net true in
  let f = Netlist.const net false in
  (* AND with true is the wire itself. *)
  Alcotest.(check int) "and(a, 1) = a" a (Netlist.gate net Gate.And a t);
  (* AND with false is the false constant. *)
  Alcotest.(check int) "and(a, 0) = 0" f (Netlist.gate net Gate.And a f);
  (* OR with true folds to true. *)
  Alcotest.(check int) "or(a, 1) = 1" t (Netlist.gate net Gate.Or a t);
  (* XOR with false is the wire itself. *)
  Alcotest.(check int) "xor(a, 0) = a" a (Netlist.gate net Gate.Xor a f);
  (* const-const folds fully *)
  Alcotest.(check int) "xor(1, 1) = 0" f (Netlist.gate net Gate.Xor t t);
  Alcotest.(check int) "no gates were emitted" 0 (Netlist.gate_count net)

let test_netlist_same_input_folding () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  Alcotest.(check int) "and(a,a) = a" a (Netlist.gate net Gate.And a a);
  Alcotest.(check int) "or(a,a) = a" a (Netlist.gate net Gate.Or a a);
  let f = Netlist.gate net Gate.Xor a a in
  (match Netlist.kind net f with
  | Netlist.Const false -> ()
  | _ -> Alcotest.fail "xor(a,a) should fold to false");
  let na = Netlist.gate net Gate.Nand a a in
  (match Netlist.kind net na with
  | Netlist.Gate (Gate.Not, x, _) -> Alcotest.(check int) "nand(a,a) = not a" a x
  | _ -> Alcotest.fail "nand(a,a) should fold to a NOT")

let test_netlist_double_negation () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let na = Netlist.not_ net a in
  Alcotest.(check int) "not(not a) = a" a (Netlist.not_ net na)

let test_netlist_xor_with_true_becomes_not () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let t = Netlist.const net true in
  let x = Netlist.gate net Gate.Xor a t in
  match Netlist.kind net x with
  | Netlist.Gate (Gate.Not, y, _) -> Alcotest.(check int) "negates a" a y
  | _ -> Alcotest.fail "xor(a, 1) should be NOT a"

let test_netlist_cse () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let g1 = Netlist.gate net Gate.And a b in
  let g2 = Netlist.gate net Gate.And a b in
  Alcotest.(check int) "identical gates shared" g1 g2;
  let g3 = Netlist.gate net Gate.And b a in
  Alcotest.(check int) "commutative gates shared" g1 g3;
  (* the NY/YN mirrors canonicalise *)
  let m1 = Netlist.gate net Gate.Andny b a in
  let m2 = Netlist.gate net Gate.Andyn a b in
  Alcotest.(check int) "mirror pair shared" m1 m2;
  Alcotest.(check int) "two distinct gates total" 2 (Netlist.gate_count net)

let test_netlist_no_optimizations_mode () =
  let net = Netlist.create ~hash_consing:false ~fold_constants:false () in
  let a = Netlist.input net "a" in
  let t = Netlist.const net true in
  let g1 = Netlist.gate net Gate.And a t in
  let g2 = Netlist.gate net Gate.And a t in
  Alcotest.(check bool) "no folding" true (g1 <> a);
  Alcotest.(check bool) "no sharing" true (g1 <> g2);
  Alcotest.(check int) "both gates emitted" 2 (Netlist.gate_count net)

let test_netlist_mux_truth_table () =
  let net = Netlist.create () in
  let s = Netlist.input net "s" in
  let x = Netlist.input net "x" in
  let y = Netlist.input net "y" in
  Netlist.mark_output net "o" (Netlist.mux net s x y);
  List.iter
    (fun (sv, xv, yv) ->
      let out = List.assoc "o" (Netlist.eval_outputs net [| sv; xv; yv |]) in
      Alcotest.(check bool) "mux" (if sv then xv else yv) out)
    [
      (false, false, true); (false, true, false); (true, false, true); (true, true, false);
      (true, true, true); (false, false, false);
    ]

let test_netlist_rejects_bad_ids () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  Alcotest.check_raises "unknown fan-in" (Invalid_argument "Netlist.gate: unknown fan-in")
    (fun () -> ignore (Netlist.gate net Gate.And a 999))

(* ------------------------------------------------------------------ *)
(* Levelize                                                            *)
(* ------------------------------------------------------------------ *)

let test_levelize_chain () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let g1 = Netlist.gate net Gate.And a b in
  let g2 = Netlist.gate net Gate.Xor g1 b in
  let g3 = Netlist.gate net Gate.Or g2 a in
  Netlist.mark_output net "o" g3;
  let s = Levelize.run net in
  Alcotest.(check int) "depth 3" 3 s.Levelize.depth;
  Alcotest.(check (array int)) "one gate per wave" [| 1; 1; 1 |] s.Levelize.widths;
  Alcotest.(check int) "levels" 1 s.Levelize.level.(g1);
  Alcotest.(check int) "levels" 2 s.Levelize.level.(g2);
  Alcotest.(check int) "levels" 3 s.Levelize.level.(g3)

let test_levelize_parallel () =
  let net = Netlist.create () in
  let ins = Array.init 8 (fun i -> Netlist.input net (Printf.sprintf "i%d" i)) in
  (* A balanced reduction tree: 4 + 2 + 1 gates over 3 levels. *)
  let l1 = Array.init 4 (fun i -> Netlist.gate net Gate.And ins.(2 * i) ins.((2 * i) + 1)) in
  let l2 = Array.init 2 (fun i -> Netlist.gate net Gate.And l1.(2 * i) l1.((2 * i) + 1)) in
  let top = Netlist.gate net Gate.And l2.(0) l2.(1) in
  Netlist.mark_output net "o" top;
  let s = Levelize.run net in
  Alcotest.(check int) "depth" 3 s.Levelize.depth;
  Alcotest.(check (array int)) "widths" [| 4; 2; 1 |] s.Levelize.widths;
  Alcotest.(check int) "max width" 4 (Levelize.max_width s)

let test_levelize_not_is_free () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let g1 = Netlist.gate net Gate.And a b in
  let n1 = Netlist.gate net Gate.Not g1 g1 in
  let g2 = Netlist.gate net Gate.Or n1 a in
  Netlist.mark_output net "o" g2;
  let s = Levelize.run net in
  Alcotest.(check int) "NOT does not advance level" 2 s.Levelize.depth;
  Alcotest.(check int) "not level equals fan-in" s.Levelize.level.(g1) s.Levelize.level.(n1);
  Alcotest.(check int) "two bootstraps" 2 s.Levelize.total_bootstraps

let test_levelize_serial_fraction () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let rec chain x n = if n = 0 then x else chain (Netlist.gate net Gate.Xor x b) (n - 1) in
  Netlist.mark_output net "o" (chain a 10);
  let s = Levelize.run net in
  Alcotest.(check (float 1e-9)) "fully serial" 1.0 (Levelize.serial_fraction s);
  Alcotest.(check (float 1e-9)) "avg width 1" 1.0 (Levelize.average_width s)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_counts () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let x = Netlist.gate net Gate.Xor a b in
  let y = Netlist.gate net Gate.And a b in
  let z = Netlist.gate net Gate.Not x x in
  Netlist.mark_output net "y" y;
  Netlist.mark_output net "z" z;
  let s = Stats.compute net in
  Alcotest.(check int) "gates" 3 s.Stats.gates;
  Alcotest.(check int) "bootstraps exclude NOT" 2 s.Stats.bootstraps;
  Alcotest.(check int) "xor count" 1 (List.assoc Gate.Xor s.Stats.per_gate);
  Alcotest.(check int) "and count" 1 (List.assoc Gate.And s.Stats.per_gate);
  Alcotest.(check int) "not count" 1 (List.assoc Gate.Not s.Stats.per_gate);
  Alcotest.(check int) "outputs" 2 s.Stats.outputs

(* ------------------------------------------------------------------ *)
(* Binary format                                                       *)
(* ------------------------------------------------------------------ *)

let half_adder () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  Netlist.mark_output net "sum" (Netlist.gate net Gate.Xor a b);
  Netlist.mark_output net "carry" (Netlist.gate net Gate.And a b);
  net

let test_binary_half_adder_encoding () =
  (* The paper's Fig. 6: header(2 gates), inputs 1 and 2, XOR(1,2) at index
     3, AND(1,2) at index 4, outputs 3 and 4. *)
  let bytes = Binary.assemble (half_adder ()) in
  Alcotest.(check int) "7 instructions" 7 (Binary.instruction_count bytes);
  match Binary.disassemble bytes with
  | [
   Binary.Header { gate_total = 2 };
   Binary.Input_decl { index = 1 };
   Binary.Input_decl { index = 2 };
   Binary.Gate_inst { gate = Gate.Xor; in0 = 1; in1 = 2 };
   Binary.Gate_inst { gate = Gate.And; in0 = 1; in1 = 2 };
   Binary.Output_decl { index = 3 };
   Binary.Output_decl { index = 4 };
  ] ->
    ()
  | insts ->
    List.iter (Format.printf "%a@." Binary.pp_instruction) insts;
    Alcotest.fail "unexpected instruction stream"

let test_binary_instruction_size () =
  let bytes = Binary.assemble (half_adder ()) in
  Alcotest.(check int) "128 bits per instruction" (7 * 16) (Bytes.length bytes)

let test_binary_roundtrip_function () =
  let net = half_adder () in
  let parsed = Binary.parse (Binary.assemble net) in
  List.iter
    (fun (a, b) ->
      let expected = Netlist.eval_outputs net [| a; b |] in
      let got = Netlist.eval_outputs parsed [| a; b |] in
      Alcotest.(check (list bool)) "same function" (List.map snd expected) (List.map snd got))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_binary_const_materialisation () =
  let net = Netlist.create ~fold_constants:false () in
  let a = Netlist.input net "a" in
  let t = Netlist.const net true in
  let g = Netlist.gate net Gate.And a t in
  Netlist.mark_output net "o" g;
  let parsed = Binary.parse (Binary.assemble net) in
  List.iter
    (fun v ->
      let got = List.assoc "out0" (Netlist.eval_outputs parsed [| v |]) in
      Alcotest.(check bool) "and with materialised true" v got)
    [ true; false ]

let test_binary_rejects_const_without_inputs () =
  let net = Netlist.create ~fold_constants:false () in
  let t = Netlist.const net true in
  Netlist.mark_output net "o" t;
  Alcotest.(check bool) "raises"
    true
    (try
       ignore (Binary.assemble net);
       false
     with Failure _ -> true)

let test_binary_rejects_garbage () =
  Alcotest.(check bool) "truncated stream rejected" true
    (try
       ignore (Binary.disassemble (Bytes.create 15));
       false
     with Failure _ -> true);
  Alcotest.(check bool) "empty stream rejected" true
    (try
       ignore (Binary.disassemble (Bytes.create 0));
       false
     with Failure _ -> true)

(* A random DAG generator shared by the roundtrip and optimizer tests. *)
let random_netlist seed =
  let rng = Rng.create ~seed () in
  let net = Netlist.create ~hash_consing:false ~fold_constants:false () in
  let n_inputs = 2 + Rng.int rng 6 in
  let nodes = ref [] in
  for i = 0 to n_inputs - 1 do
    nodes := Netlist.input net (Printf.sprintf "i%d" i) :: !nodes
  done;
  let n_gates = 5 + Rng.int rng 60 in
  let binary_gates = List.filter (fun g -> not (Gate.is_unary g)) Gate.all in
  let pick l = List.nth l (Rng.int rng (List.length l)) in
  for _ = 1 to n_gates do
    let arr = Array.of_list !nodes in
    let a = arr.(Rng.int rng (Array.length arr)) in
    let b = arr.(Rng.int rng (Array.length arr)) in
    let g = pick binary_gates in
    nodes := Netlist.gate net g a b :: !nodes
  done;
  let arr = Array.of_list !nodes in
  for i = 0 to 2 do
    Netlist.mark_output net (Printf.sprintf "o%d" i) arr.(Rng.int rng (Array.length arr))
  done;
  (net, n_inputs)

let random_bools rng n = Array.init n (fun _ -> Rng.bool rng)

let qcheck_binary_roundtrip =
  QCheck.Test.make ~name:"assemble/parse preserves the function" ~count:40 QCheck.small_nat
    (fun seed ->
      let net, n_inputs = random_netlist seed in
      let parsed = Binary.parse (Binary.assemble net) in
      let rng = Rng.create ~seed:(seed + 999) () in
      List.for_all
        (fun _ ->
          let ins = random_bools rng n_inputs in
          List.map snd (Netlist.eval_outputs net ins)
          = List.map snd (Netlist.eval_outputs parsed ins))
        [ 1; 2; 3; 4; 5 ])

(* ------------------------------------------------------------------ *)
(* Optimizer                                                           *)
(* ------------------------------------------------------------------ *)

let qcheck_optimize_preserves_function =
  QCheck.Test.make ~name:"optimize preserves the function" ~count:60 QCheck.small_nat
    (fun seed ->
      let net, n_inputs = random_netlist seed in
      let optimized, report = Opt.optimize net in
      let rng = Rng.create ~seed:(seed + 4242) () in
      report.Opt.gates_after <= report.Opt.gates_before
      && List.for_all
           (fun _ ->
             let ins = random_bools rng n_inputs in
             List.map snd (Netlist.eval_outputs net ins)
             = List.map snd (Netlist.eval_outputs optimized ins))
           [ 1; 2; 3; 4; 5; 6; 7; 8 ])

let test_opt_removes_dead_gates () =
  let net = Netlist.create ~hash_consing:false ~fold_constants:false () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let live = Netlist.gate net Gate.And a b in
  let _dead = Netlist.gate net Gate.Or a b in
  Netlist.mark_output net "o" live;
  let optimized, _ = Opt.optimize net in
  Alcotest.(check int) "dead gate removed" 1 (Netlist.gate_count optimized)

let test_opt_absorbs_inverters () =
  let net = Netlist.create ~hash_consing:false ~fold_constants:false () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let na = Netlist.gate net Gate.Not a a in
  let g = Netlist.gate net Gate.And na b in
  Netlist.mark_output net "o" g;
  let optimized, _ = Opt.optimize net in
  Alcotest.(check int) "single gate remains" 1 (Netlist.gate_count optimized);
  (match Netlist.outputs optimized with
  | [ (_, id) ] -> (
    match Netlist.kind optimized id with
    | Netlist.Gate (Gate.Andny, _, _) -> ()
    | _ -> Alcotest.fail "expected ANDNY")
  | _ -> Alcotest.fail "one output expected");
  List.iter
    (fun (av, bv) ->
      let expected = (not av) && bv in
      Alcotest.(check bool) "function preserved" expected
        (List.assoc "o" (Netlist.eval_outputs optimized [| av; bv |])))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_opt_cse_merges () =
  let net = Netlist.create ~hash_consing:false ~fold_constants:false () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let g1 = Netlist.gate net Gate.Xor a b in
  let g2 = Netlist.gate net Gate.Xor b a in
  Netlist.mark_output net "o" (Netlist.gate net Gate.And g1 g2);
  let optimized, _ = Opt.optimize net in
  (* AND(x, x) folds to x after CSE, leaving the single shared XOR. *)
  Alcotest.(check int) "xor shared and AND folded" 1 (Netlist.gate_count optimized)

let test_opt_interface_stable () =
  let net, n_inputs = random_netlist 7 in
  let optimized = Opt.rebuild net in
  Alcotest.(check int) "inputs preserved" n_inputs (Netlist.input_count optimized);
  Alcotest.(check (list string))
    "output names preserved"
    (List.map fst (Netlist.outputs net))
    (List.map fst (Netlist.outputs optimized));
  Alcotest.(check (list string))
    "input names preserved"
    (List.map fst (Netlist.inputs net))
    (List.map fst (Netlist.inputs optimized))



let test_equivalence_checker () =
  let ha = half_adder () in
  let optimized = Opt.rebuild ha in
  Alcotest.(check bool) "optimized is equivalent" true (Opt.equivalent ha optimized);
  (* a genuinely different circuit is rejected *)
  let other = Netlist.create () in
  let a = Netlist.input other "a" in
  let b = Netlist.input other "b" in
  Netlist.mark_output other "sum" (Netlist.gate other Gate.Or a b);
  Netlist.mark_output other "carry" (Netlist.gate other Gate.And a b);
  Alcotest.(check bool) "different function rejected" false (Opt.equivalent ha other);
  (* interface mismatches are rejected outright *)
  let narrower = Netlist.create () in
  let x = Netlist.input narrower "x" in
  Netlist.mark_output narrower "o" x;
  Alcotest.(check bool) "interface mismatch" false (Opt.equivalent ha narrower)

let qcheck_optimize_equivalent_via_checker =
  QCheck.Test.make ~name:"optimize passes the equivalence checker" ~count:30 QCheck.small_nat
    (fun seed ->
      let net, _ = random_netlist seed in
      let optimized, _ = Opt.optimize net in
      Opt.equivalent net optimized)

(* ------------------------------------------------------------------ *)
(* Verilog interchange                                                 *)
(* ------------------------------------------------------------------ *)

module Verilog = Pytfhe_synth.Verilog

let test_verilog_export_half_adder () =
  let text = Verilog.export ~module_name:"half_adder" (half_adder ()) in
  Alcotest.(check bool) "has module header" true
    (String.length text > 0 && String.sub text 0 18 = "module half_adder ");
  List.iter
    (fun fragment ->
      Alcotest.(check bool) (fragment ^ " present") true
        (let re = Str.regexp_string fragment in
         try ignore (Str.search_forward re text 0); true with Not_found -> false))
    [ "input wire a"; "input wire b"; "output wire out_sum"; "a ^ b"; "a & b"; "endmodule" ]

let test_verilog_roundtrip_half_adder () =
  let net = half_adder () in
  let parsed = Verilog.parse (Verilog.export net) in
  List.iter
    (fun (a, b) ->
      Alcotest.(check (list bool)) "function preserved"
        (List.map snd (Netlist.eval_outputs net [| a; b |]))
        (List.map snd (Netlist.eval_outputs parsed [| a; b |])))
    [ (false, false); (false, true); (true, false); (true, true) ]

let qcheck_verilog_roundtrip =
  QCheck.Test.make ~name:"verilog export/parse preserves the function" ~count:30 QCheck.small_nat
    (fun seed ->
      let net, n_inputs = random_netlist seed in
      let parsed = Verilog.parse (Verilog.export net) in
      let rng = Rng.create ~seed:(seed + 777) () in
      List.for_all
        (fun _ ->
          let ins = random_bools rng n_inputs in
          List.map snd (Netlist.eval_outputs net ins)
          = List.map snd (Netlist.eval_outputs parsed ins))
        [ 1; 2; 3; 4; 5 ])

let test_verilog_parse_handwritten () =
  let src = {|
    // a handwritten majority-and-parity module
    module maj (input a, input b, input wire c, output maj_o, output par_o);
      wire t1, t2, t3;
      assign t1 = a & b;
      assign t2 = b & c;
      assign t3 = a & c;
      assign maj_o = t1 | t2 | t3;
      assign par_o = a ^ b ^ c;
    endmodule
  |} in
  let net = Verilog.parse src in
  List.iter
    (fun (a, b, c) ->
      let outs = Netlist.eval_outputs net [| a; b; c |] in
      let count = Bool.to_int a + Bool.to_int b + Bool.to_int c in
      Alcotest.(check bool) "majority" (count >= 2) (List.assoc "maj_o" outs);
      Alcotest.(check bool) "parity" (count land 1 = 1) (List.assoc "par_o" outs))
    [ (false, false, false); (true, false, true); (true, true, true); (false, true, false) ]

let test_verilog_precedence () =
  (* ~ binds tighter than &, & tighter than ^, ^ tighter than |. *)
  let src = {|
    module p (input a, input b, input c, output o);
      assign o = a | b & ~c ^ b;
    endmodule
  |} in
  let net = Verilog.parse src in
  List.iter
    (fun (a, b, c) ->
      let expected = a || ((b && not c) <> b) in
      Alcotest.(check bool) "precedence" expected
        (List.assoc "o" (Netlist.eval_outputs net [| a; b; c |])))
    [ (false, true, false); (false, true, true); (true, false, false); (false, false, true) ]

let test_verilog_constants () =
  let src = {|
    module k (input a, output o0, output o1);
      assign o0 = a & 1'b0;
      assign o1 = a | 1'b1;
    endmodule
  |} in
  let net = Verilog.parse src in
  let outs = Netlist.eval_outputs net [| true |] in
  Alcotest.(check bool) "and 0" false (List.assoc "o0" outs);
  Alcotest.(check bool) "or 1" true (List.assoc "o1" outs)

let test_verilog_errors () =
  let bad message src =
    Alcotest.(check bool) message true
      (try ignore (Verilog.parse src); false with Verilog.Parse_error _ -> true)
  in
  bad "undeclared wire" "module m (input a, output o); assign o = zz; endmodule";
  bad "missing semicolon" "module m (input a, output o); assign o = a endmodule";
  bad "undriven output" "module m (input a, output o); endmodule";
  bad "garbage" "this is not verilog at all";
  bad "unexpected char" "module m (input a, output o); assign o = a + a; endmodule"




let qcheck_binary_structure =
  QCheck.Test.make ~name:"binary instruction accounting" ~count:40 QCheck.small_nat (fun seed ->
      let net, _ = random_netlist seed in
      let bytes = Binary.assemble net in
      let header, inputs, gates, outputs =
        List.fold_left
          (fun (h, i, g, o) inst ->
            match inst with
            | Binary.Header _ -> (h + 1, i, g, o)
            | Binary.Input_decl _ -> (h, i + 1, g, o)
            | Binary.Gate_inst _ | Binary.Lut_inst _ -> (h, i, g + 1, o)
            | Binary.Output_decl _ -> (h, i, g, o + 1))
          (0, 0, 0, 0) (Binary.disassemble bytes)
      in
      header = 1
      && inputs = Netlist.input_count net
      && outputs = List.length (Netlist.outputs net)
      && gates >= Netlist.gate_count net (* + possible constant materialisation *)
      && Binary.instruction_count bytes = header + inputs + gates + outputs
      && (match Binary.disassemble bytes with
         | Binary.Header { gate_total } :: _ -> gate_total = gates
         | _ -> false))

let qcheck_levelize_invariants =
  QCheck.Test.make ~name:"levelization respects dependencies" ~count:40 QCheck.small_nat
    (fun seed ->
      let net, _ = random_netlist seed in
      let s = Levelize.run net in
      let ok = ref true in
      Netlist.iter_gates net (fun id g a b ->
          if Gate.is_unary g then begin
            if s.Levelize.level.(id) < s.Levelize.level.(a) then ok := false
          end
          else if
            s.Levelize.level.(id) <= s.Levelize.level.(a)
            || s.Levelize.level.(id) <= s.Levelize.level.(b)
          then ok := false);
      !ok && Array.fold_left ( + ) 0 s.Levelize.widths = s.Levelize.total_bootstraps)

let qcheck_stats_consistency =
  QCheck.Test.make ~name:"stats distribution sums to the gate count" ~count:40 QCheck.small_nat
    (fun seed ->
      let net, _ = random_netlist seed in
      let s = Stats.compute net in
      List.fold_left (fun acc (_, c) -> acc + c) 0 s.Stats.per_gate = s.Stats.gates
      && s.Stats.bootstraps <= s.Stats.gates
      && s.Stats.max_width <= s.Stats.bootstraps)

let qcheck_optimize_fixpoint =
  QCheck.Test.make ~name:"optimization reaches a fixpoint" ~count:30 QCheck.small_nat (fun seed ->
      let net, _ = random_netlist seed in
      let once, _ = Opt.optimize net in
      let twice, _ = Opt.optimize once in
      Netlist.gate_count twice = Netlist.gate_count once)

(* ------------------------------------------------------------------ *)
(* Yosys JSON interchange                                              *)
(* ------------------------------------------------------------------ *)

module Yosys_json = Pytfhe_synth.Yosys_json

let test_yosys_roundtrip_half_adder () =
  let net = half_adder () in
  let parsed = Yosys_json.import (Yosys_json.export net) in
  Alcotest.(check bool) "equivalent" true (Opt.equivalent net parsed)

let qcheck_yosys_roundtrip =
  QCheck.Test.make ~name:"yosys json export/import preserves the function" ~count:30
    QCheck.small_nat (fun seed ->
      let net, _ = random_netlist seed in
      Opt.equivalent net (Yosys_json.import (Yosys_json.export net)))

let test_yosys_import_handwritten () =
  (* The shape a real `yosys -p "synth; abc -g simple; write_json"` emits:
     multi-bit ports, unordered cells, constants, a mux. *)
  let src = {|
    {
      "creator": "Yosys 0.33",
      "modules": {
        "top": {
          "ports": {
            "a": { "direction": "input", "bits": [2, 3] },
            "s": { "direction": "input", "bits": [4] },
            "y": { "direction": "output", "bits": [7, 8] }
          },
          "cells": {
            "mux0": { "type": "$_MUX_",
                      "connections": { "A": [2], "B": [3], "S": [4], "Y": [7] } },
            "x1": { "type": "$_ANDNOT_",
                    "connections": { "A": [3], "B": [5], "Y": [8] } },
            "n0": { "type": "$_NOT_", "connections": { "A": [2], "Y": [5] } }
          }
        }
      }
    }
  |} in
  let net = Yosys_json.import src in
  Alcotest.(check int) "three input bits" 3 (Netlist.input_count net);
  List.iter
    (fun (a0, a1, s) ->
      let outs = Netlist.eval_outputs net [| a0; a1; s |] in
      (* y[0] = mux: S ? B : A = s ? a1 : a0; y[1] = a1 AND NOT (NOT a0) = a1 AND a0 *)
      Alcotest.(check bool) "mux bit" (if s then a1 else a0) (List.assoc "y[0]" outs);
      Alcotest.(check bool) "andnot chain" (a1 && a0) (List.assoc "y[1]" outs))
    [ (false, true, false); (false, true, true); (true, true, true); (true, false, false) ]

let test_yosys_import_errors () =
  let bad message src =
    Alcotest.(check bool) message true
      (try ignore (Yosys_json.import src); false
       with Yosys_json.Import_error _ | Pytfhe_util.Json.Parse_error _ -> true)
  in
  bad "not json" "hello";
  bad "no modules" "{}";
  bad "two modules" {|{"modules": {"a": {"ports": {}}, "b": {"ports": {}}}}|};
  bad "undriven net"
    {|{"modules": {"m": {"ports": {"y": {"direction": "output", "bits": [9]}}, "cells": {}}}}|};
  bad "unsupported cell"
    {|{"modules": {"m": {"ports": {"a": {"direction": "input", "bits": [2]},
       "y": {"direction": "output", "bits": [3]}},
       "cells": {"c": {"type": "$add", "connections": {"A": [2], "Y": [3]}}}}}}|};
  bad "cycle"
    {|{"modules": {"m": {"ports": {"y": {"direction": "output", "bits": [2]}},
       "cells": {"c": {"type": "$_NOT_", "connections": {"A": [2], "Y": [2]}}}}}}|}

let test_dot_export () =
  let text = Dot.export ~graph_name:"ha" (half_adder ()) in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) (fragment ^ " present") true
        (let re = Str.regexp_string fragment in
         try ignore (Str.search_forward re text 0); true with Not_found -> false))
    [ "digraph ha"; "\"xor\""; "\"and\""; "lightblue"; "lightgreen"; "->" ]

let test_dot_export_guards_size () =
  let net = Netlist.create ~hash_consing:false () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  for _ = 1 to 100 do
    ignore (Netlist.gate net Gate.Xor a b)
  done;
  Alcotest.(check bool) "limit enforced" true
    (try ignore (Dot.export ~max_nodes:50 net); false with Invalid_argument _ -> true)

let () =
  Alcotest.run "circuit"
    [
      ( "gate",
        [
          Alcotest.test_case "codes roundtrip" `Quick test_gate_codes_roundtrip;
          Alcotest.test_case "swap mirrors semantics" `Quick test_gate_swap_is_involutive_semantics;
          Alcotest.test_case "commutativity flags" `Quick test_gate_commutativity_flag;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "basics" `Quick test_netlist_basics;
          Alcotest.test_case "constant folding" `Quick test_netlist_const_folding;
          Alcotest.test_case "same-input folding" `Quick test_netlist_same_input_folding;
          Alcotest.test_case "double negation" `Quick test_netlist_double_negation;
          Alcotest.test_case "xor with true" `Quick test_netlist_xor_with_true_becomes_not;
          Alcotest.test_case "structural hashing" `Quick test_netlist_cse;
          Alcotest.test_case "raw mode emits everything" `Quick test_netlist_no_optimizations_mode;
          Alcotest.test_case "mux lowering" `Quick test_netlist_mux_truth_table;
          Alcotest.test_case "rejects bad ids" `Quick test_netlist_rejects_bad_ids;
        ] );
      ( "levelize",
        [
          Alcotest.test_case "chain" `Quick test_levelize_chain;
          Alcotest.test_case "parallel tree" `Quick test_levelize_parallel;
          Alcotest.test_case "NOT is free" `Quick test_levelize_not_is_free;
          Alcotest.test_case "serial fraction" `Quick test_levelize_serial_fraction;
          QCheck_alcotest.to_alcotest qcheck_levelize_invariants;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counts" `Quick test_stats_counts;
          QCheck_alcotest.to_alcotest qcheck_stats_consistency;
        ] );
      ( "binary",
        [
          Alcotest.test_case "half adder (Fig. 6)" `Quick test_binary_half_adder_encoding;
          Alcotest.test_case "128-bit instructions" `Quick test_binary_instruction_size;
          Alcotest.test_case "roundtrip function" `Quick test_binary_roundtrip_function;
          Alcotest.test_case "constants materialise" `Quick test_binary_const_materialisation;
          Alcotest.test_case "constants need an input" `Quick test_binary_rejects_const_without_inputs;
          Alcotest.test_case "rejects garbage" `Quick test_binary_rejects_garbage;
          QCheck_alcotest.to_alcotest qcheck_binary_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_binary_structure;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "export half adder" `Quick test_verilog_export_half_adder;
          Alcotest.test_case "roundtrip half adder" `Quick test_verilog_roundtrip_half_adder;
          QCheck_alcotest.to_alcotest qcheck_verilog_roundtrip;
          Alcotest.test_case "handwritten module" `Quick test_verilog_parse_handwritten;
          Alcotest.test_case "operator precedence" `Quick test_verilog_precedence;
          Alcotest.test_case "constants" `Quick test_verilog_constants;
          Alcotest.test_case "parse errors" `Quick test_verilog_errors;
        ] );
      ( "yosys-json",
        [
          Alcotest.test_case "roundtrip half adder" `Quick test_yosys_roundtrip_half_adder;
          QCheck_alcotest.to_alcotest qcheck_yosys_roundtrip;
          Alcotest.test_case "handwritten import" `Quick test_yosys_import_handwritten;
          Alcotest.test_case "import errors" `Quick test_yosys_import_errors;
        ] );
      ( "dot",
        [
          Alcotest.test_case "export" `Quick test_dot_export;
          Alcotest.test_case "size guard" `Quick test_dot_export_guards_size;
        ] );
      ( "opt",
        [
          QCheck_alcotest.to_alcotest qcheck_optimize_preserves_function;
          Alcotest.test_case "dead gates removed" `Quick test_opt_removes_dead_gates;
          Alcotest.test_case "inverter absorption" `Quick test_opt_absorbs_inverters;
          Alcotest.test_case "cse merges mirrored gates" `Quick test_opt_cse_merges;
          Alcotest.test_case "interface stable" `Quick test_opt_interface_stable;
          Alcotest.test_case "equivalence checker" `Quick test_equivalence_checker;
          QCheck_alcotest.to_alcotest qcheck_optimize_equivalent_via_checker;
          QCheck_alcotest.to_alcotest qcheck_optimize_fixpoint;
        ] );
    ]
