module Rng = Pytfhe_util.Rng
module Complex_fft = Pytfhe_fft.Complex_fft
module Negacyclic = Pytfhe_fft.Negacyclic

let close ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs a +. Float.abs b)

let check_arrays_close name eps expected actual =
  Array.iteri
    (fun i e ->
      if not (close ~eps e actual.(i)) then
        Alcotest.failf "%s: index %d: expected %.9g got %.9g" name i e actual.(i))
    expected

let random_floats rng n scale = Array.init n (fun _ -> (Rng.float rng -. 0.5) *. scale)

let test_fft_matches_naive () =
  let rng = Rng.create ~seed:11 () in
  List.iter
    (fun n ->
      let re = random_floats rng n 2.0 in
      let im = random_floats rng n 2.0 in
      let exp_re, exp_im = Complex_fft.dft_naive ~re ~im ~invert:false in
      let got_re = Array.copy re and got_im = Array.copy im in
      Complex_fft.transform ~re:got_re ~im:got_im ~invert:false;
      check_arrays_close "re" 1e-9 exp_re got_re;
      check_arrays_close "im" 1e-9 exp_im got_im)
    [ 1; 2; 4; 8; 16; 64; 256 ]

let test_fft_roundtrip () =
  let rng = Rng.create ~seed:12 () in
  List.iter
    (fun n ->
      let re = random_floats rng n 100.0 in
      let im = random_floats rng n 100.0 in
      let got_re = Array.copy re and got_im = Array.copy im in
      Complex_fft.transform ~re:got_re ~im:got_im ~invert:false;
      Complex_fft.transform ~re:got_re ~im:got_im ~invert:true;
      check_arrays_close "re roundtrip" 1e-9 re got_re;
      check_arrays_close "im roundtrip" 1e-9 im got_im)
    [ 2; 32; 1024 ]

let test_fft_transform_bitrev_matches () =
  (* [transform_bitrev] expects input already in bit-reversed order and must
     then agree bit-for-bit with [transform] on the natural-order input —
     both run the identical butterfly passes. *)
  let rng = Rng.create ~seed:14 () in
  List.iter
    (fun n ->
      let re = random_floats rng n 10.0 and im = random_floats rng n 10.0 in
      let exp_re = Array.copy re and exp_im = Array.copy im in
      Complex_fft.transform ~re:exp_re ~im:exp_im ~invert:false;
      let rev = Complex_fft.bit_rev n in
      let got_re = Array.make n 0.0 and got_im = Array.make n 0.0 in
      for i = 0 to n - 1 do
        got_re.(rev.(i)) <- re.(i);
        got_im.(rev.(i)) <- im.(i)
      done;
      Complex_fft.transform_bitrev ~re:got_re ~im:got_im ~invert:false;
      Alcotest.(check bool) "re bit-identical" true (exp_re = got_re);
      Alcotest.(check bool) "im bit-identical" true (exp_im = got_im))
    [ 2; 8; 128; 512 ]

let test_fft_linearity () =
  let rng = Rng.create ~seed:13 () in
  let n = 128 in
  let a = random_floats rng n 1.0 and b = random_floats rng n 1.0 in
  let zero = Array.make n 0.0 in
  let fa = Array.copy a and fa_i = Array.copy zero in
  Complex_fft.transform ~re:fa ~im:fa_i ~invert:false;
  let fb = Array.copy b and fb_i = Array.copy zero in
  Complex_fft.transform ~re:fb ~im:fb_i ~invert:false;
  let sum = Array.map2 ( +. ) a b and sum_i = Array.copy zero in
  Complex_fft.transform ~re:sum ~im:sum_i ~invert:false;
  check_arrays_close "linear re" 1e-9 (Array.map2 ( +. ) fa fb) sum;
  check_arrays_close "linear im" 1e-9 (Array.map2 ( +. ) fa_i fb_i) sum_i

let test_fft_rejects_bad_sizes () =
  let bad n =
    Alcotest.check_raises
      (Printf.sprintf "size %d rejected" n)
      (Invalid_argument "Complex_fft.transform: length not a power of two")
      (fun () ->
        Complex_fft.transform ~re:(Array.make n 0.0) ~im:(Array.make n 0.0) ~invert:false)
  in
  List.iter bad [ 3; 5; 6; 7; 100 ]

let test_negacyclic_matches_naive () =
  let rng = Rng.create ~seed:14 () in
  List.iter
    (fun n ->
      let a = Array.init n (fun _ -> float_of_int (Rng.int rng 128 - 64)) in
      let b = Array.init n (fun _ -> float_of_int (Rng.int rng 65536 - 32768)) in
      let expected = Negacyclic.polymul_naive a b in
      let got = Negacyclic.polymul a b in
      check_arrays_close "negacyclic" 1e-6 expected got)
    [ 2; 8; 64; 256 ]

let test_negacyclic_wraparound_sign () =
  (* X^{N-1} · X = X^N = −1 mod X^N+1. *)
  let n = 16 in
  let a = Array.make n 0.0 and b = Array.make n 0.0 in
  a.(n - 1) <- 1.0;
  b.(1) <- 1.0;
  let c = Negacyclic.polymul a b in
  Alcotest.(check bool) "constant coeff is -1" true (close c.(0) (-1.0));
  for i = 1 to n - 1 do
    Alcotest.(check bool) "other coeffs 0" true (close c.(i) 0.0)
  done

let test_negacyclic_exact_on_integers () =
  (* Gadget digits (≤ 64) against 32-bit torus values must be exact. *)
  let rng = Rng.create ~seed:15 () in
  let n = 1024 in
  let a = Array.init n (fun _ -> float_of_int (Rng.int rng 129 - 64)) in
  let b = Array.init n (fun _ -> float_of_int (Rng.int rng 0x40000000 - 0x20000000)) in
  let expected = Negacyclic.polymul_naive a b in
  let got = Negacyclic.polymul a b in
  Array.iteri
    (fun i e ->
      let d = Float.abs (e -. got.(i)) in
      if d > 0.45 then Alcotest.failf "coefficient %d off by %f" i d)
    expected

let test_spectrum_mul_add_accumulates () =
  let rng = Rng.create ~seed:16 () in
  let n = 64 in
  let a = random_floats rng n 4.0 and b = random_floats rng n 4.0 in
  let c = random_floats rng n 4.0 and d = random_floats rng n 4.0 in
  let acc = Negacyclic.spectrum_create n in
  Negacyclic.mul_add_into acc (Negacyclic.forward a) (Negacyclic.forward b);
  Negacyclic.mul_add_into acc (Negacyclic.forward c) (Negacyclic.forward d);
  let got = Array.make n 0.0 in
  Negacyclic.backward_into got acc;
  let expected = Array.map2 ( +. ) (Negacyclic.polymul_naive a b) (Negacyclic.polymul_naive c d) in
  check_arrays_close "fma" 1e-6 expected got

let test_backward_into_is_destructive () =
  (* Pins the documented contract: [backward] preserves its input spectrum,
     [backward_into] runs the inverse transform in place and leaves the
     spectrum as garbage scratch.  Callers that reuse spectra (e.g. a
     batched kernel) must rely on this distinction. *)
  let rng = Rng.create ~seed:17 () in
  let n = 32 in
  let p = random_floats rng n 8.0 in
  let s = Negacyclic.forward p in
  let saved_re = Array.copy s.Negacyclic.s_re and saved_im = Array.copy s.Negacyclic.s_im in
  let via_backward = Negacyclic.backward s in
  Alcotest.(check bool) "backward preserves the spectrum (re)" true
    (s.Negacyclic.s_re = saved_re);
  Alcotest.(check bool) "backward preserves the spectrum (im)" true
    (s.Negacyclic.s_im = saved_im);
  (* The preserved spectrum still inverts correctly a second time. *)
  let again = Negacyclic.backward s in
  Alcotest.(check bool) "second inversion agrees" true (via_backward = again);
  check_arrays_close "backward recovers p" 1e-9 p via_backward;
  let got = Array.make n 0.0 in
  Negacyclic.backward_into got s;
  check_arrays_close "backward_into recovers p" 1e-9 p got;
  Alcotest.(check bool) "backward_into destroys the spectrum" true
    (s.Negacyclic.s_re <> saved_re || s.Negacyclic.s_im <> saved_im)

let qcheck_negacyclic_commutes =
  QCheck.Test.make ~name:"negacyclic product commutes" ~count:50
    QCheck.(pair (list_of_size (Gen.return 32) (int_range (-50) 50))
              (list_of_size (Gen.return 32) (int_range (-50) 50)))
    (fun (la, lb) ->
      let a = Array.of_list (List.map float_of_int la) in
      let b = Array.of_list (List.map float_of_int lb) in
      let ab = Negacyclic.polymul a b in
      let ba = Negacyclic.polymul b a in
      Array.for_all2 (fun x y -> close ~eps:1e-6 x y) ab ba)

let qcheck_negacyclic_distributes =
  QCheck.Test.make ~name:"negacyclic product distributes over +" ~count:50
    QCheck.(triple (list_of_size (Gen.return 16) (int_range (-20) 20))
              (list_of_size (Gen.return 16) (int_range (-20) 20))
              (list_of_size (Gen.return 16) (int_range (-20) 20)))
    (fun (la, lb, lc) ->
      let arr l = Array.of_list (List.map float_of_int l) in
      let a = arr la and b = arr lb and c = arr lc in
      let lhs = Negacyclic.polymul a (Array.map2 ( +. ) b c) in
      let rhs = Array.map2 ( +. ) (Negacyclic.polymul a b) (Negacyclic.polymul a c) in
      Array.for_all2 (fun x y -> close ~eps:1e-6 x y) lhs rhs)


let qcheck_negacyclic_roundtrip =
  QCheck.Test.make ~name:"spectrum forward/backward roundtrip" ~count:100
    QCheck.(pair (int_range 0 3) (list_of_size (Gen.return 64) (float_range (-1000.0) 1000.0)))
    (fun (size_idx, values) ->
      let n = List.nth [ 8; 16; 32; 64 ] size_idx in
      let p = Array.of_list (List.filteri (fun i _ -> i < n) values) in
      let p = if Array.length p = n then p else Array.init n (fun i -> if i < Array.length p then p.(i) else 0.0) in
      let back = Negacyclic.backward (Negacyclic.forward p) in
      Array.for_all2 (fun a b -> close ~eps:1e-9 a b) p back)

let qcheck_negacyclic_linearity =
  QCheck.Test.make ~name:"forward transform is linear" ~count:50
    QCheck.(pair (list_of_size (Gen.return 16) (float_range (-100.0) 100.0))
              (list_of_size (Gen.return 16) (float_range (-100.0) 100.0)))
    (fun (la, lb) ->
      let a = Array.of_list la and b = Array.of_list lb in
      let sum = Array.map2 ( +. ) a b in
      let sa = Negacyclic.forward a and sb = Negacyclic.forward b in
      let ssum = Negacyclic.forward sum in
      let n2 = Array.length ssum.Negacyclic.s_re in
      let ok = ref true in
      for i = 0 to n2 - 1 do
        if not (close ~eps:1e-9 ssum.Negacyclic.s_re.(i) (sa.Negacyclic.s_re.(i) +. sb.Negacyclic.s_re.(i)))
        then ok := false;
        if not (close ~eps:1e-9 ssum.Negacyclic.s_im.(i) (sa.Negacyclic.s_im.(i) +. sb.Negacyclic.s_im.(i)))
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "fft"
    [
      ( "complex",
        [
          Alcotest.test_case "matches naive DFT" `Quick test_fft_matches_naive;
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "bit-reversed entry point" `Quick test_fft_transform_bitrev_matches;
          Alcotest.test_case "linearity" `Quick test_fft_linearity;
          Alcotest.test_case "rejects bad sizes" `Quick test_fft_rejects_bad_sizes;
        ] );
      ( "negacyclic",
        [
          Alcotest.test_case "matches schoolbook" `Quick test_negacyclic_matches_naive;
          Alcotest.test_case "X^N = -1" `Quick test_negacyclic_wraparound_sign;
          Alcotest.test_case "exact on gadget-range integers" `Quick test_negacyclic_exact_on_integers;
          Alcotest.test_case "spectral fused multiply-add" `Quick test_spectrum_mul_add_accumulates;
          Alcotest.test_case "backward_into destroys its spectrum" `Quick
            test_backward_into_is_destructive;
          QCheck_alcotest.to_alcotest qcheck_negacyclic_commutes;
          QCheck_alcotest.to_alcotest qcheck_negacyclic_distributes;
          QCheck_alcotest.to_alcotest qcheck_negacyclic_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_negacyclic_linearity;
        ] );
    ]
