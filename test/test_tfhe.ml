module Rng = Pytfhe_util.Rng
open Pytfhe_tfhe

let params = Params.test

(* One shared keyset: key generation dominates the cost of this suite. *)
let keys = lazy (Gates.key_gen (Rng.create ~seed:1001 ()) params)
let secret () = fst (Lazy.force keys)
let cloud () = snd (Lazy.force keys)

(* ------------------------------------------------------------------ *)
(* Torus arithmetic                                                    *)
(* ------------------------------------------------------------------ *)

let test_torus_roundtrip () =
  List.iter
    (fun d ->
      let t = Torus.of_double d in
      let back = Torus.to_double t in
      let diff = Float.abs (d -. back) in
      let diff = Float.min diff (1.0 -. diff) in
      Alcotest.(check bool) "roundtrip" true (diff < 1e-9))
    [ 0.0; 0.125; -0.125; 0.25; 0.4999; -0.4999; 0.3333 ]

let test_torus_group_laws () =
  let rng = Rng.create ~seed:2 () in
  for _ = 1 to 200 do
    let a = Rng.bits32 rng and b = Rng.bits32 rng in
    Alcotest.(check int) "a+b-b=a" a (Torus.sub (Torus.add a b) b);
    Alcotest.(check int) "a + (-a) = 0" 0 (Torus.add a (Torus.neg a));
    Alcotest.(check int) "commutes" (Torus.add a b) (Torus.add b a)
  done

let test_torus_mod_switch () =
  for msize = 2 to 16 do
    for mu = 0 to msize - 1 do
      let t = Torus.mod_switch_to mu ~msize in
      Alcotest.(check int) "mod switch roundtrip" mu (Torus.mod_switch_from t ~msize)
    done
  done

let test_torus_mod_switch_rounds_noise () =
  let msize = 8 in
  let t = Torus.mod_switch_to 3 ~msize in
  let noisy = Torus.add t (Torus.of_double 0.01) in
  Alcotest.(check int) "small noise rounds away" 3 (Torus.mod_switch_from noisy ~msize);
  Alcotest.(check int) "approx phase recentres" t (Torus.approx_phase noisy ~msize)

let test_torus_mul_int () =
  let eighth = Torus.mod_switch_to 1 ~msize:8 in
  Alcotest.(check int) "2 * 1/8 = 1/4" (Torus.mod_switch_to 1 ~msize:4) (Torus.mul_int 2 eighth);
  Alcotest.(check int) "-1 * t = neg t" (Torus.neg eighth) (Torus.mul_int (-1) eighth);
  Alcotest.(check int) "8 * 1/8 = 0" 0 (Torus.mul_int 8 eighth)

let qcheck_torus_signed_roundtrip =
  QCheck.Test.make ~name:"torus signed representative roundtrips" ~count:1000
    QCheck.(int_range (-0x7FFFFFFF) 0x7FFFFFFF)
    (fun v -> Torus.to_signed (Torus.of_signed v) = v)


let test_params_custom_and_validate () =
  let good =
    Params.custom ~name:"custom" ~n:64 ~lwe_stdev:(2.0 ** -20.0) ~ring_n:256 ~k:1
      ~tlwe_stdev:(2.0 ** -30.0) ~l:3 ~bg_bit:6 ~ks_t:12 ~ks_base_bit:2 ()
  in
  Alcotest.(check bool) "custom validates" true (Params.validate good = Ok ());
  Alcotest.(check bool) "matches shipped test set" true (Params.equal good { Params.test with Params.name = "custom" });
  let rejects label f = Alcotest.(check bool) label true (try ignore (f ()); false with Invalid_argument _ -> true) in
  rejects "non-power-of-two N" (fun () ->
      Params.custom ~name:"bad" ~n:64 ~lwe_stdev:1e-5 ~ring_n:300 ~k:1 ~tlwe_stdev:1e-8 ~l:3
        ~bg_bit:6 ~ks_t:8 ~ks_base_bit:2 ());
  rejects "gadget too wide" (fun () ->
      Params.custom ~name:"bad" ~n:64 ~lwe_stdev:1e-5 ~ring_n:256 ~k:1 ~tlwe_stdev:1e-8 ~l:8
        ~bg_bit:5 ~ks_t:8 ~ks_base_bit:2 ());
  rejects "negative noise" (fun () ->
      Params.custom ~name:"bad" ~n:64 ~lwe_stdev:(-1.0) ~ring_n:256 ~k:1 ~tlwe_stdev:1e-8 ~l:3
        ~bg_bit:6 ~ks_t:8 ~ks_base_bit:2 ())

let test_params_shipped_sets_validate () =
  List.iter
    (fun p ->
      Alcotest.(check bool) (p.Params.name ^ " validates") true (Params.validate p = Ok ()))
    [ Params.test; Params.default_128 ]

(* ------------------------------------------------------------------ *)
(* Polynomials                                                         *)
(* ------------------------------------------------------------------ *)

let random_torus_poly rng n = Array.init n (fun _ -> Rng.bits32 rng)

let test_poly_mul_by_xai_identity () =
  let rng = Rng.create ~seed:3 () in
  let p = random_torus_poly rng 32 in
  Alcotest.(check (array int)) "X^0 is identity" p (Poly.mul_by_xai 0 p)

let test_poly_mul_by_xai_full_turn () =
  let rng = Rng.create ~seed:4 () in
  let n = 32 in
  let p = random_torus_poly rng n in
  (* X^N ≡ −1, X^{2N} ≡ 1 — but exponent 2N is out of domain, so check
     composition: rotating by a then by 2N−a returns the original. *)
  let a = 13 in
  let rotated = Poly.mul_by_xai (2 * n - a) (Poly.mul_by_xai a p) in
  Alcotest.(check (array int)) "X^a then X^{2N-a}" p rotated

let test_poly_mul_by_xai_negation () =
  let rng = Rng.create ~seed:5 () in
  let n = 32 in
  let p = random_torus_poly rng n in
  Alcotest.(check (array int)) "X^N negates" (Poly.neg p) (Poly.mul_by_xai n p)

let test_poly_mul_by_xai_composition () =
  let rng = Rng.create ~seed:6 () in
  let n = 64 in
  let p = random_torus_poly rng n in
  List.iter
    (fun (a, b) ->
      let lhs = Poly.mul_by_xai ((a + b) mod (2 * n)) p in
      let rhs = Poly.mul_by_xai a (Poly.mul_by_xai b p) in
      Alcotest.(check (array int)) "rotation composes" lhs rhs)
    [ (1, 2); (17, 40); (63, 64); (100, 27); (5, 123) ]

let test_poly_mul_xai_minus_one () =
  let rng = Rng.create ~seed:7 () in
  let n = 32 in
  let p = random_torus_poly rng n in
  let a = 9 in
  let expected = Poly.sub (Poly.mul_by_xai a p) p in
  Alcotest.(check (array int)) "(X^a - 1)p" expected (Poly.mul_by_xai_minus_one a p)

let test_poly_fft_mul_matches_naive () =
  let rng = Rng.create ~seed:8 () in
  List.iter
    (fun n ->
      let ip = Array.init n (fun _ -> Rng.int rng 64 - 32) in
      let tp = random_torus_poly rng n in
      let expected = Poly.mul_int_torus_naive ip tp in
      let got = Poly.mul_int_torus ip tp in
      Array.iteri
        (fun i e ->
          if Torus.distance e got.(i) > 1e-7 then
            Alcotest.failf "n=%d coeff %d: naive %d fft %d" n i e got.(i))
        expected)
    [ 16; 64; 256 ]

let test_poly_mul_by_binary () =
  (* Multiplying by the constant polynomial 1 is the identity. *)
  let rng = Rng.create ~seed:9 () in
  let n = 64 in
  let one = Array.make n 0 in
  one.(0) <- 1;
  let tp = random_torus_poly rng n in
  let got = Poly.mul_int_torus one tp in
  Array.iteri
    (fun i e ->
      if Torus.distance e got.(i) > 1e-7 then Alcotest.failf "identity product broke at %d" i)
    tp

(* ------------------------------------------------------------------ *)
(* LWE                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lwe_encrypt_decrypt () =
  let rng = Rng.create ~seed:10 () in
  let key = Lwe.key_gen rng ~n:128 in
  for mu = 0 to 7 do
    let c = Lwe.encrypt rng key ~stdev:1e-7 (Torus.mod_switch_to mu ~msize:8) in
    Alcotest.(check int) "decrypts" mu (Lwe.decrypt key ~msize:8 c)
  done

let test_lwe_homomorphic_add () =
  let rng = Rng.create ~seed:11 () in
  let key = Lwe.key_gen rng ~n:128 in
  let enc mu = Lwe.encrypt rng key ~stdev:1e-8 (Torus.mod_switch_to mu ~msize:16) in
  let c = Lwe.add (enc 3) (enc 5) in
  Alcotest.(check int) "3+5=8" 8 (Lwe.decrypt key ~msize:16 c);
  let d = Lwe.sub (enc 9) (enc 4) in
  Alcotest.(check int) "9-4=5" 5 (Lwe.decrypt key ~msize:16 d)

let test_lwe_trivial_and_neg () =
  let rng = Rng.create ~seed:12 () in
  let key = Lwe.key_gen rng ~n:64 in
  let t = Lwe.trivial ~n:64 (Torus.mod_switch_to 1 ~msize:8) in
  Alcotest.(check int) "trivial decrypts under any key" 1 (Lwe.decrypt key ~msize:8 t);
  let n = Lwe.neg t in
  Alcotest.(check int) "neg" 7 (Lwe.decrypt key ~msize:8 n)

let test_lwe_scale () =
  let rng = Rng.create ~seed:13 () in
  let key = Lwe.key_gen rng ~n:64 in
  let c = Lwe.encrypt rng key ~stdev:1e-9 (Torus.mod_switch_to 1 ~msize:16) in
  Alcotest.(check int) "3 * 1/16" 3 (Lwe.decrypt key ~msize:16 (Lwe.scale 3 c))

let test_lwe_ciphertext_bytes () =
  (* The paper quotes 2.46 KB for a TFHE ciphertext: (630+1)·4 bytes. *)
  Alcotest.(check int) "2.46 KB" 2524 (Lwe.ciphertext_bytes ~n:630)

let test_lwe_noise_magnitude () =
  let rng = Rng.create ~seed:14 () in
  let key = Lwe.key_gen rng ~n:128 in
  let stdev = Params.test.Params.lwe.lwe_stdev in
  let worst = ref 0.0 in
  for _ = 1 to 200 do
    let c = Lwe.encrypt rng key ~stdev Torus.zero in
    let e = Float.abs (Torus.to_double (Lwe.phase key c)) in
    if e > !worst then worst := e
  done;
  Alcotest.(check bool) "noise stays tiny" true (!worst < 16.0 *. stdev)

(* ------------------------------------------------------------------ *)
(* TLWE / TGSW                                                         *)
(* ------------------------------------------------------------------ *)

let test_tlwe_phase_recovers_message () =
  let rng = Rng.create ~seed:15 () in
  let key = Tlwe.key_gen rng params in
  let n = params.Params.tlwe.ring_n in
  let msg = Array.init n (fun i -> Torus.mod_switch_to (i mod 8) ~msize:8) in
  let c = Tlwe.encrypt_poly rng params key msg in
  let ph = Tlwe.phase key c in
  Array.iteri
    (fun i m ->
      if Torus.distance m ph.(i) > 1e-4 then Alcotest.failf "phase off at %d" i)
    msg

let test_tlwe_extract () =
  let rng = Rng.create ~seed:16 () in
  let key = Tlwe.key_gen rng params in
  let n = params.Params.tlwe.ring_n in
  let msg = Array.make n 0 in
  msg.(0) <- Torus.mod_switch_to 1 ~msize:8;
  let c = Tlwe.encrypt_poly rng params key msg in
  let extracted = Tlwe.extract_lwe params c in
  let ekey = Tlwe.extract_key key in
  Alcotest.(check int) "extracted coeff 0" 1 (Lwe.decrypt ekey ~msize:8 extracted)

let test_tlwe_add_sub_roundtrip () =
  let rng = Rng.create ~seed:17 () in
  let key = Tlwe.key_gen rng params in
  let a = Tlwe.zero_sample rng params key in
  let b = Tlwe.encrypt_poly rng params key (Array.make params.Params.tlwe.ring_n 12345678) in
  let c = Tlwe.copy a in
  Tlwe.add_to c b;
  Tlwe.sub_to c b;
  let pa = Tlwe.phase key a and pc = Tlwe.phase key c in
  Array.iteri
    (fun i x ->
      if Torus.distance x pc.(i) > 1e-9 then Alcotest.failf "add/sub not inverse at %d" i)
    pa

let test_tgsw_external_product_zero_one () =
  let rng = Rng.create ~seed:18 () in
  let key = Tlwe.key_gen rng params in
  let ws = Tgsw.workspace_create params in
  let n = params.Params.tlwe.ring_n in
  let msg = Array.init n (fun i -> Torus.mod_switch_to (i mod 4) ~msize:4) in
  let c = Tlwe.encrypt_poly rng params key msg in
  (* m = 1: phases should match the input. *)
  let g1 = Tgsw.to_fft params (Tgsw.encrypt_int rng params key 1) in
  let p1 = Tlwe.phase key (Tgsw.external_product params ws g1 c) in
  Array.iteri
    (fun i m -> if Torus.distance m p1.(i) > 1e-3 then Alcotest.failf "m=1 phase off at %d" i)
    msg;
  (* m = 0: phases should be (near) zero. *)
  let g0 = Tgsw.to_fft params (Tgsw.encrypt_int rng params key 0) in
  let p0 = Tlwe.phase key (Tgsw.external_product params ws g0 c) in
  Array.iteri
    (fun i v -> if Torus.distance 0 v > 1e-3 then Alcotest.failf "m=0 phase not 0 at %d" i)
    p0

let test_tgsw_cmux_selects () =
  let rng = Rng.create ~seed:19 () in
  let key = Tlwe.key_gen rng params in
  let ws = Tgsw.workspace_create params in
  let n = params.Params.tlwe.ring_n in
  let quarter = Torus.mod_switch_to 1 ~msize:4 in
  let d1 = Tlwe.encrypt_poly rng params key (Array.make n quarter) in
  let d0 = Tlwe.encrypt_poly rng params key (Array.make n (Torus.neg quarter)) in
  let check bit expected =
    let g = Tgsw.to_fft params (Tgsw.encrypt_int rng params key bit) in
    let ph = Tlwe.phase key (Tgsw.cmux params ws g d1 d0) in
    if Torus.distance expected ph.(0) > 1e-3 then
      Alcotest.failf "cmux bit=%d selected wrong branch" bit
  in
  check 1 quarter;
  check 0 (Torus.neg quarter)

let test_tgsw_decompose_reconstructs () =
  let rng = Rng.create ~seed:20 () in
  let key = Tlwe.key_gen rng params in
  let c = Tlwe.encrypt_poly rng params key (Array.make params.Params.tlwe.ring_n 0x1234567) in
  let digits = Tgsw.decompose params c in
  let l = params.Params.tgsw.l in
  let bg_bit = params.Params.tgsw.bg_bit in
  let half_bg = 1 lsl (bg_bit - 1) in
  (* Every digit must be in [−Bg/2, Bg/2) and the weighted recombination
     must approximate the original coefficient to within the dropped
     precision. *)
  Array.iter
    (Array.iter (fun d ->
         if d < -half_bg || d >= half_bg then Alcotest.failf "digit %d out of range" d))
    digits;
  let polys = Array.append c.Tlwe.mask [| c.Tlwe.body |] in
  Array.iteri
    (fun comp poly ->
      Array.iteri
        (fun t coeff ->
          let recon = ref 0 in
          for j = 0 to l - 1 do
            let base_pow = 1 lsl (32 - ((j + 1) * bg_bit)) in
            recon := Torus.add !recon (Torus.mul_int digits.((comp * l) + j).(t) base_pow)
          done;
          if Torus.distance coeff !recon > 1.0 /. float_of_int (1 lsl ((l * bg_bit) - 1)) then
            Alcotest.failf "recombination off at comp %d coeff %d" comp t)
        poly)
    polys

(* ------------------------------------------------------------------ *)
(* Bootstrapping, key switching and gates                              *)
(* ------------------------------------------------------------------ *)

let test_keyswitch_preserves_message () =
  let sk = secret () and ck = cloud () in
  let rng = Rng.create ~seed:21 () in
  let mu = Torus.mod_switch_to 1 ~msize:8 in
  let big = Lwe.encrypt rng sk.Gates.extracted_key ~stdev:1e-8 mu in
  let small = Keyswitch.apply ck.Gates.keyswitch_key big in
  Alcotest.(check int) "message survives" 1 (Lwe.decrypt sk.Gates.lwe_key ~msize:8 small)

let test_bootstrap_sign () =
  let sk = secret () and ck = cloud () in
  let rng = Rng.create ~seed:22 () in
  let mu = Params.mu params in
  let check input expected =
    let c = Lwe.encrypt rng sk.Gates.lwe_key ~stdev:params.Params.lwe.lwe_stdev input in
    let boosted = Bootstrap.bootstrap_wo_keyswitch params ck.Gates.bootstrap_key ~mu c in
    let got = Torus.to_double (Lwe.phase sk.Gates.extracted_key boosted) > 0.0 in
    Alcotest.(check bool) "bootstrap sign" expected got
  in
  check (Torus.mod_switch_to 1 ~msize:8) true;
  check (Torus.mod_switch_to 7 ~msize:8) false;
  check (Torus.mod_switch_to 1 ~msize:4) true;
  check (Torus.mod_switch_to 3 ~msize:4) false

let test_bootstrap_reduces_noise () =
  let sk = secret () and ck = cloud () in
  let rng = Rng.create ~seed:23 () in
  let mu = Params.mu params in
  (* Push input noise near the decryption margin, then check the refreshed
     ciphertext is much cleaner than 1/16. *)
  let noisy = Lwe.encrypt rng sk.Gates.lwe_key ~stdev:0.01 mu in
  let refreshed = Bootstrap.bootstrap_wo_keyswitch params ck.Gates.bootstrap_key ~mu noisy in
  let phase = Torus.to_double (Lwe.phase sk.Gates.extracted_key refreshed) in
  Alcotest.(check bool) "refreshed phase near +1/8" true (Float.abs (phase -. 0.125) < 0.02)

let truth_table gate spec () =
  let sk = secret () and ck = cloud () in
  let rng = Rng.create ~seed:24 () in
  List.iter
    (fun (a, b) ->
      let ca = Gates.encrypt_bit rng sk a in
      let cb = Gates.encrypt_bit rng sk b in
      let got = Gates.decrypt_bit sk (gate ck ca cb) in
      Alcotest.(check bool) (Printf.sprintf "(%b,%b)" a b) (spec a b) got)
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_not_gate () =
  let sk = secret () and ck = cloud () in
  let rng = Rng.create ~seed:25 () in
  List.iter
    (fun v ->
      let c = Gates.encrypt_bit rng sk v in
      Alcotest.(check bool) "not" (not v) (Gates.decrypt_bit sk (Gates.not_gate ck c)))
    [ true; false ]

let test_constant_gate () =
  let sk = secret () and ck = cloud () in
  List.iter
    (fun v -> Alcotest.(check bool) "constant" v (Gates.decrypt_bit sk (Gates.constant ck v)))
    [ true; false ]

let test_mux_gate () =
  let sk = secret () and ck = cloud () in
  let rng = Rng.create ~seed:26 () in
  List.iter
    (fun (s, x, y) ->
      let cs = Gates.encrypt_bit rng sk s in
      let cx = Gates.encrypt_bit rng sk x in
      let cy = Gates.encrypt_bit rng sk y in
      let got = Gates.decrypt_bit sk (Gates.mux_gate ck cs cx cy) in
      Alcotest.(check bool)
        (Printf.sprintf "mux(%b,%b,%b)" s x y)
        (if s then x else y)
        got)
    [
      (false, false, false); (false, false, true); (false, true, false); (false, true, true);
      (true, false, false); (true, false, true); (true, true, false); (true, true, true);
    ]

let test_gate_composition () =
  (* A 2-bit half adder on ciphertexts: sum = XOR, carry = AND, composed
     with further gates to check noise behaves across depth. *)
  let sk = secret () and ck = cloud () in
  let rng = Rng.create ~seed:27 () in
  List.iter
    (fun (a, b, c) ->
      let ca = Gates.encrypt_bit rng sk a in
      let cb = Gates.encrypt_bit rng sk b in
      let cc = Gates.encrypt_bit rng sk c in
      let s1 = Gates.xor_gate ck ca cb in
      let c1 = Gates.and_gate ck ca cb in
      let sum = Gates.xor_gate ck s1 cc in
      let c2 = Gates.and_gate ck s1 cc in
      let carry = Gates.or_gate ck c1 c2 in
      let expected_sum = (Bool.to_int a + Bool.to_int b + Bool.to_int c) land 1 = 1 in
      let expected_carry = Bool.to_int a + Bool.to_int b + Bool.to_int c >= 2 in
      Alcotest.(check bool) "full adder sum" expected_sum (Gates.decrypt_bit sk sum);
      Alcotest.(check bool) "full adder carry" expected_carry (Gates.decrypt_bit sk carry))
    [ (false, false, false); (true, false, true); (true, true, true); (false, true, false) ]

let test_gate_output_noise_margin () =
  let sk = secret () and ck = cloud () in
  let rng = Rng.create ~seed:28 () in
  let ca = Gates.encrypt_bit rng sk true in
  let cb = Gates.encrypt_bit rng sk true in
  let out = Gates.and_gate ck ca cb in
  let phase = Torus.to_double (Lwe.phase sk.Gates.lwe_key out) in
  Alcotest.(check bool) "phase within 1/16 of 1/8" true (Float.abs (phase -. 0.125) < 0.0625)


(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

module Wire = Pytfhe_util.Wire

let roundtrip write read v =
  let buf = Buffer.create 1024 in
  write buf v;
  read (Wire.reader_of_string (Buffer.contents buf))

let test_serialize_params () =
  List.iter
    (fun p ->
      let p' = roundtrip Params.write Params.read p in
      Alcotest.(check bool) "params roundtrip" true (Params.equal p p'))
    [ Params.test; Params.default_128 ]

let test_serialize_lwe_sample () =
  let rng = Rng.create ~seed:51 () in
  let key = Lwe.key_gen rng ~n:64 in
  let c = Lwe.encrypt rng key ~stdev:1e-8 (Torus.mod_switch_to 3 ~msize:8) in
  let c' = roundtrip Lwe.write_sample Lwe.read_sample c in
  Alcotest.(check int) "same decryption" 3 (Lwe.decrypt key ~msize:8 c');
  Alcotest.(check (array int)) "mask identical" c.Lwe.a c'.Lwe.a;
  Alcotest.(check int) "body identical" c.Lwe.b c'.Lwe.b

let test_serialize_lwe_key () =
  let rng = Rng.create ~seed:52 () in
  let key = Lwe.key_gen rng ~n:100 in
  let key' = roundtrip Lwe.write_key Lwe.read_key key in
  Alcotest.(check (array int)) "bits" key.Lwe.bits key'.Lwe.bits;
  (* a sample encrypted under the original decrypts under the reloaded key *)
  let c = Lwe.encrypt rng key ~stdev:1e-9 (Torus.mod_switch_to 5 ~msize:8) in
  Alcotest.(check int) "functional" 5 (Lwe.decrypt key' ~msize:8 c)

let test_serialize_keysets_functional () =
  (* Round-trip both keysets and run a real gate with the reloaded pair. *)
  let sk, ck = Lazy.force keys in
  let sk' = roundtrip Gates.write_secret_keyset Gates.read_secret_keyset sk in
  let ck' = roundtrip Gates.write_cloud_keyset Gates.read_cloud_keyset ck in
  let rng = Rng.create ~seed:53 () in
  List.iter
    (fun (a, b) ->
      let ca = Gates.encrypt_bit rng sk' a in
      let cb = Gates.encrypt_bit rng sk' b in
      let out = Gates.xor_gate ck' ca cb in
      Alcotest.(check bool) "gate through reloaded keys" (a <> b) (Gates.decrypt_bit sk' out))
    [ (true, false); (true, true) ]

let test_serialize_rejects_garbage () =
  Alcotest.(check bool) "corrupt keyset rejected" true
    (try
       ignore (Gates.read_cloud_keyset (Wire.reader_of_string "not a keyset at all"));
       false
     with Wire.Corrupt _ -> true)


(* ------------------------------------------------------------------ *)
(* Programmable bootstrapping / LUT                                    *)
(* ------------------------------------------------------------------ *)

let test_lut_identity () =
  let sk = secret () and ck = cloud () in
  let rng = Rng.create ~seed:61 () in
  let msize = 8 in
  for v = 0 to msize - 1 do
    let c = Gates.encrypt_message rng sk ~msize v in
    Alcotest.(check int) "plain roundtrip" v (Gates.decrypt_message sk ~msize c);
    let out = Gates.apply_lut ck ~msize ~table:(Array.init msize Fun.id) c in
    Alcotest.(check int) "identity lut" v (Gates.decrypt_message sk ~msize out)
  done

let test_lut_square () =
  let sk = secret () and ck = cloud () in
  let rng = Rng.create ~seed:62 () in
  let msize = 8 in
  let table = Array.init msize (fun v -> v * v mod msize) in
  for v = 0 to msize - 1 do
    let c = Gates.encrypt_message rng sk ~msize v in
    let out = Gates.apply_lut ck ~msize ~table c in
    Alcotest.(check int) (Printf.sprintf "%d^2 mod 8" v) (v * v mod msize)
      (Gates.decrypt_message sk ~msize out)
  done

let test_lut_relu_like () =
  (* A LUT computing max(v - 4, 0): the kind of non-linear table word-wise
     schemes cannot express (paper §II-C). *)
  let sk = secret () and ck = cloud () in
  let rng = Rng.create ~seed:63 () in
  let msize = 8 in
  let table = Array.init msize (fun v -> max (v - 4) 0) in
  for v = 0 to msize - 1 do
    let c = Gates.encrypt_message rng sk ~msize v in
    let out = Gates.apply_lut ck ~msize ~table c in
    Alcotest.(check int) "relu-like" (max (v - 4) 0) (Gates.decrypt_message sk ~msize out)
  done

let test_lut_composes () =
  (* Two chained programmable bootstraps: noise is refreshed each time. *)
  let sk = secret () and ck = cloud () in
  let rng = Rng.create ~seed:64 () in
  let msize = 4 in
  let double = Array.init msize (fun v -> 2 * v mod msize) in
  let succ_t = Array.init msize (fun v -> (v + 1) mod msize) in
  for v = 0 to msize - 1 do
    let c = Gates.encrypt_message rng sk ~msize v in
    let out = Gates.apply_lut ck ~msize ~table:succ_t (Gates.apply_lut ck ~msize ~table:double c) in
    Alcotest.(check int) "2v+1 mod 4" (((2 * v) + 1) mod msize) (Gates.decrypt_message sk ~msize out)
  done

let test_lut_table_composition () =
  (* The composition law of programmable bootstrapping: applying the
     composed table g∘f in ONE bootstrap must agree with chaining the two
     bootstraps, for every message.  Random non-monotone tables make sure
     the agreement is not an artifact of table shape. *)
  let sk = secret () and ck = cloud () in
  let rng = Rng.create ~seed:65 () in
  let msize = 8 in
  let f = Array.init msize (fun _ -> Rng.int rng msize) in
  let g = Array.init msize (fun _ -> Rng.int rng msize) in
  let gf = Array.init msize (fun v -> g.(f.(v))) in
  for v = 0 to msize - 1 do
    let c = Gates.encrypt_message rng sk ~msize v in
    let chained = Gates.apply_lut ck ~msize ~table:g (Gates.apply_lut ck ~msize ~table:f c) in
    let fused = Gates.apply_lut ck ~msize ~table:gf c in
    Alcotest.(check int)
      (Printf.sprintf "g(f(%d)) chained" v)
      g.(f.(v))
      (Gates.decrypt_message sk ~msize chained);
    Alcotest.(check int)
      (Printf.sprintf "g∘f fused at %d" v)
      g.(f.(v))
      (Gates.decrypt_message sk ~msize fused)
  done

let test_lut_deep_chain_noise () =
  (* The LUT analog of the 60-gate chain regression: each programmable
     bootstrap must output fresh noise, so a long chain of table lookups
     stays decryptable at every step.  A full-cycle permutation visits all
     eight messages, so every table slot (and every rotation distance) is
     exercised along the way. *)
  let sk = secret () and ck = cloud () in
  let rng = Rng.create ~seed:66 () in
  let msize = 8 in
  let perm = [| 3; 6; 1; 4; 0; 7; 2; 5 |] in
  let ct = ref (Gates.encrypt_message rng sk ~msize 5) and pt = ref 5 in
  for step = 1 to 40 do
    ct := Gates.apply_lut ck ~msize ~table:perm !ct;
    pt := perm.(!pt);
    Alcotest.(check int)
      (Printf.sprintf "step %d decrypts correctly" step)
      !pt
      (Gates.decrypt_message sk ~msize !ct)
  done

let test_noise_lut_margins () =
  (* The LUT message-space terms of the noise model.  Margins halve as the
     message space doubles; failure probability grows with arity (more
     slots, tighter margins, noisier combined inputs); the shipped test
     parameters afford all three arities while [default_128] cannot afford
     arity 3 — the documented reason the LUT suites run at [Params.test]. *)
  Alcotest.(check (float 1e-12)) "boolean msize-2 margin is 1/8" 0.125
    (Noise.lut_margin ~msize:2);
  Alcotest.(check (float 1e-12)) "msize-4 margin is 1/16" 0.0625 (Noise.lut_margin ~msize:4);
  Alcotest.(check (float 1e-12)) "msize-8 margin is 1/32" 0.03125 (Noise.lut_margin ~msize:8);
  let p1 = Noise.lut_failure_probability params ~arity:1 in
  let p2 = Noise.lut_failure_probability params ~arity:2 in
  let p3 = Noise.lut_failure_probability params ~arity:3 in
  Alcotest.(check bool) "failure grows with arity" true (p1 <= p2 && p2 <= p3);
  List.iter
    (fun arity ->
      match Noise.check_lut params ~arity with
      | `Ok prob ->
        Alcotest.(check bool)
          (Printf.sprintf "test params afford arity %d" arity)
          true (prob < 2.0 ** -32.0)
      | `Unsafe prob -> Alcotest.failf "test params unsafe at arity %d: %g" arity prob)
    [ 1; 2; 3 ];
  (match Noise.check_lut Params.default_128 ~arity:3 with
  | `Unsafe _ -> ()
  | `Ok prob -> Alcotest.failf "default_128 arity 3 unexpectedly safe: %g" prob);
  (* inputs noisier than the cells they feed: combining weighted lutdom
     operands can only add variance *)
  Alcotest.(check bool) "arity-3 input noisier than arity-2" true
    ((Noise.lut_input params ~arity:3).Noise.variance
    >= (Noise.lut_input params ~arity:2).Noise.variance);
  Alcotest.(check bool) "lut output variance positive" true
    ((Noise.lut_output params ~msize:8).Noise.variance > 0.0)

let test_lut_validates () =
  let ck = cloud () in
  let c = Lwe.trivial ~n:params.Params.lwe.Params.n 0 in
  Alcotest.(check bool) "arity mismatch rejected" true
    (try ignore (Gates.apply_lut ck ~msize:8 ~table:[| 0; 1 |] c); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "msize must divide N" true
    (try ignore (Gates.apply_lut ck ~msize:7 ~table:(Array.make 7 0) c); false
     with Invalid_argument _ -> true)


(* ------------------------------------------------------------------ *)
(* Noise analysis                                                      *)
(* ------------------------------------------------------------------ *)

let test_noise_basic_algebra () =
  let f = Noise.fresh params in
  let two = Noise.add f f in
  Alcotest.(check (float 1e-18)) "variances add" (2.0 *. f.Noise.variance) two.Noise.variance;
  let scaled = Noise.scale 2 f in
  Alcotest.(check (float 1e-18)) "scaling squares" (4.0 *. f.Noise.variance) scaled.Noise.variance;
  Alcotest.(check bool) "mod switch adds" true
    ((Noise.mod_switch params f).Noise.variance > f.Noise.variance)

let test_noise_bootstrap_refreshes () =
  (* Blind-rotation output variance does not depend on the input noise. *)
  let out = Noise.blind_rotation params in
  Alcotest.(check bool) "positive" true (out.Noise.variance > 0.0);
  let gate = Noise.gate_output params in
  Alcotest.(check bool) "key switch adds" true (gate.Noise.variance > out.Noise.variance)

let test_noise_parameter_sets_are_safe () =
  List.iter
    (fun p ->
      match Noise.check p with
      | `Ok prob -> Alcotest.(check bool) (p.Params.name ^ " failure negligible") true (prob < 1e-9)
      | `Unsafe prob -> Alcotest.failf "%s unsafe: %g" p.Params.name prob)
    [ Params.test; Params.default_128 ]

let test_noise_detects_bad_parameters () =
  (* Crank the bootstrapping-key noise until gates must fail. *)
  let bad =
    { Params.test with
      Params.name = "broken";
      tlwe = { Params.test.Params.tlwe with Params.tlwe_stdev = 0.05 } }
  in
  match Noise.check bad with
  | `Unsafe prob -> Alcotest.(check bool) "flagged" true (prob > 1e-6)
  | `Ok _ -> Alcotest.fail "oversized noise should be flagged"

let test_noise_failure_probability_monotone () =
  let b = { Noise.variance = 1e-3 } in
  let p1 = Noise.failure_probability ~margin:0.125 b in
  let p2 = Noise.failure_probability ~margin:0.0625 b in
  Alcotest.(check bool) "smaller margin fails more" true (p2 > p1);
  Alcotest.(check bool) "probabilities in range" true (p1 >= 0.0 && p2 <= 1.0)

let test_noise_prediction_matches_measurement () =
  (* Empirical gate-output noise should be within a small factor of the
     average-case prediction (the offset decomposition adds a bias term the
     variance bound ignores). *)
  let sk = secret () and ck = cloud () in
  let rng = Rng.create ~seed:71 () in
  let n = 40 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let a = Gates.encrypt_bit rng sk true and b = Gates.encrypt_bit rng sk false in
    let out = Gates.and_gate ck a b in
    let err = Torus.to_double (Lwe.phase sk.Gates.lwe_key out) +. 0.125 in
    sum := !sum +. err;
    sumsq := !sumsq +. (err *. err)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  let predicted = (Noise.gate_output params).Noise.variance in
  let ratio = var /. predicted in
  Alcotest.(check bool)
    (Printf.sprintf "measured/predicted variance ratio %.1f within [0.05, 50]" ratio)
    true
    (ratio > 0.05 && ratio < 50.0)

let test_noise_budget_per_transform () =
  (* The NTT computes exactly in Z[X]/(X^N+1) mod 2^32, so its transform-error
     term is zero; the FFT pays a rounding term that grows with the gadget
     magnitude.  Both transforms must keep the shipped parameter sets safe. *)
  List.iter
    (fun p ->
      let fft = Params.with_transform p Pytfhe_fft.Transform.Fft in
      let ntt = Params.with_transform p Pytfhe_fft.Transform.Ntt in
      Alcotest.(check (float 0.0))
        (p.Params.name ^ " ntt transform error is exactly zero")
        0.0 (Noise.transform_error ntt).Noise.variance;
      Alcotest.(check bool)
        (p.Params.name ^ " fft transform error is positive")
        true
        ((Noise.transform_error fft).Noise.variance > 0.0);
      Alcotest.(check bool)
        (p.Params.name ^ " ntt gate output no noisier than fft")
        true
        ((Noise.gate_output ntt).Noise.variance <= (Noise.gate_output fft).Noise.variance);
      List.iter
        (fun q ->
          match Noise.check q with
          | `Ok prob ->
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s failure negligible" p.Params.name
                 (Pytfhe_fft.Transform.kind_name q.Params.transform))
              true (prob < 1e-9)
          | `Unsafe prob ->
            Alcotest.failf "%s/%s unsafe: %g" p.Params.name
              (Pytfhe_fft.Transform.kind_name q.Params.transform)
              prob)
        [ fft; ntt ])
    [ Params.test; Params.default_128 ]


(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)
(* ------------------------------------------------------------------ *)

let test_wrong_key_fails_to_decrypt () =
  let sk, _ = Lazy.force keys in
  let rng = Rng.create ~seed:91 () in
  let other_sk, _ = Gates.key_gen (Rng.create ~seed:9999 ()) params in
  (* Statistically, decrypting 32 fresh bits with the wrong key must get at
     least one wrong (probability of all matching ~ 2^-32-ish). *)
  let mismatches = ref 0 in
  for _ = 1 to 32 do
    let c = Gates.encrypt_bit rng sk true in
    if not (Gates.decrypt_bit other_sk c) then incr mismatches
  done;
  Alcotest.(check bool) "wrong key garbles" true (!mismatches > 0)

let test_tampered_ciphertext_decrypts_wrong () =
  let sk, _ = Lazy.force keys in
  let rng = Rng.create ~seed:92 () in
  let c = Gates.encrypt_bit rng sk true in
  (* Flip the body by half a torus: the phase sign must flip. *)
  let tampered = { c with Lwe.b = Torus.add c.Lwe.b (Torus.mod_switch_to 1 ~msize:2) } in
  Alcotest.(check bool) "tampering flips the phase sign" true
    (Gates.decrypt_bit sk c <> Gates.decrypt_bit sk tampered)

let test_mismatched_input_arity_rejected () =
  let _, ck = Lazy.force keys in
  let short = Lwe.trivial ~n:4 0 in
  Alcotest.(check bool) "keyswitch rejects wrong dimension" true
    (try
       ignore (Keyswitch.apply ck.Gates.keyswitch_key short);
       false
     with Invalid_argument _ | Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* In-place hot path vs allocating reference paths                     *)
(* ------------------------------------------------------------------ *)

let qcheck_mul_by_xai_into_matches =
  QCheck.Test.make ~name:"mul_by_xai_into matches mul_by_xai" ~count:200
    QCheck.(pair small_nat (int_range 0 1_000_000))
    (fun (a, seed) ->
      let n = 64 in
      let a = a mod (2 * n) in
      let rng = Rng.create ~seed () in
      let p = random_torus_poly rng n in
      let dst = Array.make n 123 in
      Poly.mul_by_xai_into dst a p;
      dst = Poly.mul_by_xai a p)

let qcheck_mul_by_xai_minus_one_into_matches =
  QCheck.Test.make ~name:"mul_by_xai_minus_one_into matches sub of rotation" ~count:200
    QCheck.(pair small_nat (int_range 0 1_000_000))
    (fun (a, seed) ->
      let n = 64 in
      let a = a mod (2 * n) in
      let rng = Rng.create ~seed () in
      let p = random_torus_poly rng n in
      let dst = Array.make n 123 in
      Poly.mul_by_xai_minus_one_into dst a p;
      dst = Poly.sub (Poly.mul_by_xai a p) p)

let test_poly_into_rejects_aliasing_and_sizes () =
  let p = Array.make 32 0 in
  let rejects label f =
    Alcotest.(check bool) label true (try f (); false with Invalid_argument _ -> true)
  in
  rejects "mul_by_xai_into aliasing" (fun () -> Poly.mul_by_xai_into p 3 p);
  rejects "mul_by_xai_into size" (fun () -> Poly.mul_by_xai_into (Array.make 16 0) 3 p);
  rejects "mul_by_xai_minus_one_into aliasing" (fun () -> Poly.mul_by_xai_minus_one_into p 3 p);
  rejects "of_floats_into size" (fun () -> Poly.of_floats_into (Array.make 16 0) (Array.make 32 0.0));
  rejects "to_floats_into size" (fun () ->
      Poly.to_floats_into ~centred:true (Array.make 16 0.0) p)

let qcheck_float_conversions_into_match =
  QCheck.Test.make ~name:"of/to_floats_into match allocating versions" ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let n = 64 in
      let rng = Rng.create ~seed () in
      let p = random_torus_poly rng n in
      let f = Array.init n (fun _ -> (Rng.float rng -. 0.5) *. 1e10) in
      let fdst = Array.make n nan in
      Poly.to_floats_into ~centred:true fdst p;
      let ok_to = fdst = Poly.to_floats ~centred:true p in
      let tdst = Array.make n 987 in
      Poly.of_floats_into tdst f;
      let ok_of = tdst = Poly.of_floats f in
      let acc = random_torus_poly rng n in
      let expected = Poly.add acc (Poly.of_floats f) in
      Poly.add_of_floats_to acc f;
      ok_to && ok_of && acc = expected)

let qcheck_external_product_into_matches =
  QCheck.Test.make ~name:"external_product_into/add_into match external_product" ~count:20
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed () in
      let key = Tlwe.key_gen rng params in
      let ws = Tgsw.workspace_create params in
      let n = params.Params.tlwe.ring_n in
      let c = Tlwe.encrypt_poly rng params key (random_torus_poly rng n) in
      let g = Tgsw.to_fft params (Tgsw.encrypt_int rng params key (Rng.int rng 2)) in
      let reference = Tgsw.external_product params ws g c in
      let dst = Tlwe.trivial params (random_torus_poly rng n) in
      Tgsw.external_product_into params ws g c ~dst;
      let acc = Tlwe.encrypt_poly rng params key (random_torus_poly rng n) in
      let expected_acc = Tlwe.copy acc in
      Tlwe.add_to expected_acc reference;
      Tgsw.external_product_add_into params ws g ~src:c ~acc;
      dst = reference && acc = expected_acc)

let qcheck_cmux_rotate_into_matches =
  QCheck.Test.make ~name:"cmux_rotate_into matches cmux of rotation" ~count:20
    QCheck.(pair small_nat (int_range 0 1_000_000))
    (fun (a, seed) ->
      let rng = Rng.create ~seed () in
      let key = Tlwe.key_gen rng params in
      let ws = Tgsw.workspace_create params in
      let n = params.Params.tlwe.ring_n in
      let a = 1 + (a mod ((2 * n) - 1)) in
      let acc = Tlwe.encrypt_poly rng params key (random_torus_poly rng n) in
      let g = Tgsw.to_fft params (Tgsw.encrypt_int rng params key (Rng.int rng 2)) in
      let expected = Tgsw.cmux params ws g (Tlwe.mul_by_xai a acc) acc in
      Tgsw.cmux_rotate_into params ws g a acc;
      acc = expected)

let qcheck_blind_rotate_into_matches_reference =
  QCheck.Test.make ~name:"in-place blind rotation is bit-exact vs reference" ~count:8
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let ck = cloud () in
      let bkey = ck.Gates.bootstrap_key in
      let ws = Tgsw.workspace_create params in
      let rng = Rng.create ~seed () in
      let n = params.Params.tlwe.ring_n in
      let testvect = random_torus_poly rng n in
      let s =
        { Lwe.a = Array.init params.Params.lwe.Params.n (fun _ -> Rng.bits32 rng);
          b = Rng.bits32 rng }
      in
      let reference = Bootstrap.blind_rotate_reference params ws bkey ~testvect s in
      let got = Bootstrap.blind_rotate_with params ws bkey ~testvect s in
      let acc = Tlwe.trivial params (random_torus_poly rng n) in
      Bootstrap.blind_rotate_into params ws bkey ~testvect ~acc s;
      got = reference && acc = reference)

let qcheck_keyswitch_apply_into_matches =
  QCheck.Test.make ~name:"keyswitch apply_into matches apply" ~count:50
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let ck = cloud () in
      let kk = ck.Gates.keyswitch_key in
      let rng = Rng.create ~seed () in
      let s =
        { Lwe.a = Array.init (Params.extracted_n params) (fun _ -> Rng.bits32 rng);
          b = Rng.bits32 rng }
      in
      let reference = Keyswitch.apply kk s in
      let a = Array.make params.Params.lwe.Params.n 555 in
      let b = Keyswitch.apply_into kk s ~a in
      a = reference.Lwe.a && b = reference.Lwe.b)

let test_keyswitch_serialize_identical_apply () =
  (* The flat layout must round-trip through the nested wire format and
     produce bit-identical key switches. *)
  let ck = cloud () in
  let kk = ck.Gates.keyswitch_key in
  let kk' = roundtrip Keyswitch.write Keyswitch.read kk in
  let rng = Rng.create ~seed:95 () in
  for _ = 1 to 10 do
    let s =
      { Lwe.a = Array.init (Params.extracted_n params) (fun _ -> Rng.bits32 rng);
        b = Rng.bits32 rng }
    in
    let x = Keyswitch.apply kk s and y = Keyswitch.apply kk' s in
    Alcotest.(check (array int)) "mask identical" x.Lwe.a y.Lwe.a;
    Alcotest.(check int) "body identical" x.Lwe.b y.Lwe.b
  done

let test_read_fft_rejects_mismatched_params () =
  let rng = Rng.create ~seed:96 () in
  let key = Tlwe.key_gen rng params in
  let g = Tgsw.to_fft params (Tgsw.encrypt_int rng params key 1) in
  let buf = Buffer.create 4096 in
  Tgsw.write_fft buf g;
  let payload = Buffer.contents buf in
  let corrupt label p =
    Alcotest.(check bool) label true
      (try
         ignore (Tgsw.read_fft p (Wire.reader_of_string payload));
         false
       with Wire.Corrupt _ -> true)
  in
  corrupt "wrong ring degree"
    (Params.custom ~name:"other-ring" ~n:64 ~lwe_stdev:(2.0 ** -20.0) ~ring_n:128 ~k:1
       ~tlwe_stdev:(2.0 ** -30.0) ~l:3 ~bg_bit:6 ~ks_t:12 ~ks_base_bit:2 ());
  corrupt "wrong gadget depth"
    (Params.custom ~name:"other-l" ~n:64 ~lwe_stdev:(2.0 ** -20.0) ~ring_n:256 ~k:1
       ~tlwe_stdev:(2.0 ** -30.0) ~l:2 ~bg_bit:6 ~ks_t:12 ~ks_base_bit:2 ());
  (* Matching parameters must still read back. *)
  ignore (Tgsw.read_fft params (Wire.reader_of_string payload))

let test_bootstrap_read_rejects_mismatched_params () =
  let ck = cloud () in
  let buf = Buffer.create 4096 in
  Bootstrap.write buf ck.Gates.bootstrap_key;
  let payload = Buffer.contents buf in
  let other =
    Params.custom ~name:"other-n" ~n:32 ~lwe_stdev:(2.0 ** -20.0) ~ring_n:256 ~k:1
      ~tlwe_stdev:(2.0 ** -30.0) ~l:3 ~bg_bit:6 ~ks_t:12 ~ks_base_bit:2 ()
  in
  Alcotest.(check bool) "wrong LWE dimension rejected" true
    (try
       ignore (Bootstrap.read other (Wire.reader_of_string payload));
       false
     with Wire.Corrupt _ -> true)

let test_keyswitch_read_rejects_tampered_header () =
  let ck = cloud () in
  let buf = Buffer.create 4096 in
  Keyswitch.write buf ck.Gates.keyswitch_key;
  let payload = Bytes.of_string (Buffer.contents buf) in
  (* Byte 4 is the low byte of the serialized decomposition depth (the
     4-byte magic comes first): forcing it to 0xFF makes t·base_bit blow
     past the 31-bit budget, which [read] must flag as corruption. *)
  Bytes.set payload 4 '\xFF';
  Alcotest.(check bool) "tampered header rejected" true
    (try
       ignore (Keyswitch.read (Wire.reader_of_bytes payload));
       false
     with Wire.Corrupt _ -> true)

(* Noise-budget regression: every bootstrapped gate must fully refresh the
   ciphertext, so an arbitrarily deep chain stays decryptable.  60 gates of
   mixed kinds, each consuming the previous output, with the plaintext
   tracked alongside — if a parameter or FFT change erodes the noise
   budget, the failure localizes to the first wrong step. *)
let test_noise_budget_deep_gate_chain () =
  let sk = secret () and ck = cloud () in
  let rng = Rng.create ~seed:60606 () in
  let fresh = Gates.encrypt_bit rng sk true in
  let gates =
    [| ("xor", Gates.xor_gate, ( <> ));
       ("nand", Gates.nand_gate, fun a b -> not (a && b));
       ("or", Gates.or_gate, ( || ));
       ("andyn", Gates.andyn_gate, fun a b -> a && not b) |]
  in
  let ct = ref fresh and pt = ref true in
  for step = 1 to 60 do
    let name, gate, spec = gates.(step mod Array.length gates) in
    let b = Rng.bool rng in
    let cb = Gates.encrypt_bit rng sk b in
    ct := gate ck !ct cb;
    pt := spec !pt b;
    Alcotest.(check bool)
      (Printf.sprintf "step %d (%s) decrypts correctly" step name)
      !pt (Gates.decrypt_bit sk !ct)
  done

let gate_cases =
  [
    ("nand", Gates.nand_gate, fun a b -> not (a && b));
    ("and", Gates.and_gate, ( && ));
    ("or", Gates.or_gate, ( || ));
    ("nor", Gates.nor_gate, fun a b -> not (a || b));
    ("xor", Gates.xor_gate, ( <> ));
    ("xnor", Gates.xnor_gate, ( = ));
    ("andny", Gates.andny_gate, fun a b -> (not a) && b);
    ("andyn", Gates.andyn_gate, fun a b -> a && not b);
    ("orny", Gates.orny_gate, fun a b -> (not a) || b);
    ("oryn", Gates.oryn_gate, fun a b -> a || not b);
  ]

let () =
  let gate_tests =
    List.map
      (fun (name, gate, spec) -> Alcotest.test_case name `Slow (truth_table gate spec))
      gate_cases
  in
  Alcotest.run "tfhe"
    [
      ( "torus",
        [
          Alcotest.test_case "roundtrip" `Quick test_torus_roundtrip;
          Alcotest.test_case "group laws" `Quick test_torus_group_laws;
          Alcotest.test_case "mod switch" `Quick test_torus_mod_switch;
          Alcotest.test_case "mod switch rounds noise" `Quick test_torus_mod_switch_rounds_noise;
          Alcotest.test_case "integer scaling" `Quick test_torus_mul_int;
          QCheck_alcotest.to_alcotest qcheck_torus_signed_roundtrip;
        ] );
      ( "params",
        [
          Alcotest.test_case "custom + validate" `Quick test_params_custom_and_validate;
          Alcotest.test_case "shipped sets validate" `Quick test_params_shipped_sets_validate;
        ] );
      ( "poly",
        [
          Alcotest.test_case "X^0 identity" `Quick test_poly_mul_by_xai_identity;
          Alcotest.test_case "full turn" `Quick test_poly_mul_by_xai_full_turn;
          Alcotest.test_case "X^N negates" `Quick test_poly_mul_by_xai_negation;
          Alcotest.test_case "rotation composes" `Quick test_poly_mul_by_xai_composition;
          Alcotest.test_case "(X^a - 1)p" `Quick test_poly_mul_xai_minus_one;
          Alcotest.test_case "fft mul matches naive" `Quick test_poly_fft_mul_matches_naive;
          Alcotest.test_case "multiply by one" `Quick test_poly_mul_by_binary;
        ] );
      ( "lwe",
        [
          Alcotest.test_case "encrypt/decrypt" `Quick test_lwe_encrypt_decrypt;
          Alcotest.test_case "homomorphic add/sub" `Quick test_lwe_homomorphic_add;
          Alcotest.test_case "trivial and neg" `Quick test_lwe_trivial_and_neg;
          Alcotest.test_case "scale" `Quick test_lwe_scale;
          Alcotest.test_case "ciphertext size (2.46 KB)" `Quick test_lwe_ciphertext_bytes;
          Alcotest.test_case "noise magnitude" `Quick test_lwe_noise_magnitude;
        ] );
      ( "tlwe-tgsw",
        [
          Alcotest.test_case "tlwe phase" `Quick test_tlwe_phase_recovers_message;
          Alcotest.test_case "sample extraction" `Quick test_tlwe_extract;
          Alcotest.test_case "add/sub inverse" `Quick test_tlwe_add_sub_roundtrip;
          Alcotest.test_case "external product m in {0,1}" `Slow test_tgsw_external_product_zero_one;
          Alcotest.test_case "cmux selects" `Slow test_tgsw_cmux_selects;
          Alcotest.test_case "decomposition recombines" `Quick test_tgsw_decompose_reconstructs;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "keyswitch preserves message" `Slow test_keyswitch_preserves_message;
          Alcotest.test_case "bootstrap sign" `Slow test_bootstrap_sign;
          Alcotest.test_case "bootstrap reduces noise" `Slow test_bootstrap_reduces_noise;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "wrong key garbles" `Slow test_wrong_key_fails_to_decrypt;
          Alcotest.test_case "tampered ciphertext" `Slow test_tampered_ciphertext_decrypts_wrong;
          Alcotest.test_case "arity mismatch rejected" `Quick test_mismatched_input_arity_rejected;
          Alcotest.test_case "60-gate chain keeps noise budget" `Slow
            test_noise_budget_deep_gate_chain;
        ] );
      ( "noise",
        [
          Alcotest.test_case "variance algebra" `Quick test_noise_basic_algebra;
          Alcotest.test_case "bootstrap refreshes" `Quick test_noise_bootstrap_refreshes;
          Alcotest.test_case "shipped parameters safe" `Quick test_noise_parameter_sets_are_safe;
          Alcotest.test_case "detects bad parameters" `Quick test_noise_detects_bad_parameters;
          Alcotest.test_case "failure probability monotone" `Quick test_noise_failure_probability_monotone;
          Alcotest.test_case "prediction vs measurement" `Slow test_noise_prediction_matches_measurement;
          Alcotest.test_case "budget holds under both transforms" `Quick
            test_noise_budget_per_transform;
          Alcotest.test_case "lut message-space margins" `Quick test_noise_lut_margins;
        ] );
      ( "lut",
        [
          Alcotest.test_case "identity" `Slow test_lut_identity;
          Alcotest.test_case "square mod 8" `Slow test_lut_square;
          Alcotest.test_case "relu-like table" `Slow test_lut_relu_like;
          Alcotest.test_case "composition refreshes noise" `Slow test_lut_composes;
          Alcotest.test_case "table composition g∘f fuses" `Slow test_lut_table_composition;
          Alcotest.test_case "40-lookup chain keeps noise budget" `Slow
            test_lut_deep_chain_noise;
          Alcotest.test_case "validates arguments" `Quick test_lut_validates;
        ] );
      ( "in-place-hot-path",
        [
          QCheck_alcotest.to_alcotest qcheck_mul_by_xai_into_matches;
          QCheck_alcotest.to_alcotest qcheck_mul_by_xai_minus_one_into_matches;
          Alcotest.test_case "into rejects aliasing/sizes" `Quick
            test_poly_into_rejects_aliasing_and_sizes;
          QCheck_alcotest.to_alcotest qcheck_float_conversions_into_match;
          QCheck_alcotest.to_alcotest qcheck_external_product_into_matches;
          QCheck_alcotest.to_alcotest qcheck_cmux_rotate_into_matches;
          QCheck_alcotest.to_alcotest qcheck_blind_rotate_into_matches_reference;
          QCheck_alcotest.to_alcotest qcheck_keyswitch_apply_into_matches;
          Alcotest.test_case "keyswitch serialize apply-identical" `Quick
            test_keyswitch_serialize_identical_apply;
          Alcotest.test_case "read_fft rejects wrong params" `Quick
            test_read_fft_rejects_mismatched_params;
          Alcotest.test_case "bootstrap read rejects wrong params" `Quick
            test_bootstrap_read_rejects_mismatched_params;
          Alcotest.test_case "keyswitch read rejects tampering" `Quick
            test_keyswitch_read_rejects_tampered_header;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "params" `Quick test_serialize_params;
          Alcotest.test_case "lwe sample" `Quick test_serialize_lwe_sample;
          Alcotest.test_case "lwe key" `Quick test_serialize_lwe_key;
          Alcotest.test_case "keysets functional" `Slow test_serialize_keysets_functional;
          Alcotest.test_case "rejects garbage" `Quick test_serialize_rejects_garbage;
        ] );
      ( "gates",
        gate_tests
        @ [
            Alcotest.test_case "not" `Slow test_not_gate;
            Alcotest.test_case "constant" `Quick test_constant_gate;
            Alcotest.test_case "mux" `Slow test_mux_gate;
            Alcotest.test_case "full adder composition" `Slow test_gate_composition;
            Alcotest.test_case "output noise margin" `Slow test_gate_output_noise_margin;
          ] );
    ]
