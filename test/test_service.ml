(* FHE-as-a-service tests.

   The load-bearing properties: (1) concurrent multi-tenant sessions are
   ciphertext-bit-exact with a per-tenant Server.run of the same program,
   (2) malformed or mismatched handshakes are rejected without killing
   other sessions (payload errors draw an SERR; only envelope corruption
   closes the one offending connection), and (3) evicting a keyset fails
   exactly that tenant's requests, after which the tenant can re-register
   and run again. *)

module Rng = Pytfhe_util.Rng
module Wire = Pytfhe_util.Wire
module Netlist = Pytfhe_circuit.Netlist
module Params = Pytfhe_tfhe.Params
module Transform = Pytfhe_fft.Transform
module Framing = Pytfhe_backend.Framing
module Executor = Pytfhe_backend.Executor
module Plain_eval = Pytfhe_backend.Plain_eval
module Pipeline = Pytfhe_core.Pipeline
module Server = Pytfhe_core.Server
module Client = Pytfhe_core.Client
module Service = Pytfhe_service.Service
module Service_client = Pytfhe_service.Service_client

(* Key generation dominates these tests; share one pair per tenant. *)
let tenant_a = lazy (Client.keygen ~params:Params.test ~seed:71 ())
let tenant_b = lazy (Client.keygen ~params:Params.test ~seed:72 ())

(* Run [f port] against a live server on an ephemeral port, then shut the
   server down and return [(f's result, final server stats)]. *)
let with_server ?(config = Service.default_config) f =
  let port = Atomic.make 0 in
  let d = Domain.spawn (fun () -> Service.serve ~config ~ready:(Atomic.set port) ()) in
  while Atomic.get port = 0 do
    Domain.cpu_relax ()
  done;
  let p = Atomic.get port in
  let shut () =
    try
      let c = Service_client.connect ~port:p () in
      Service_client.shutdown c;
      Service_client.close c
    with _ -> ()
  in
  match f p with
  | result ->
    shut ();
    (result, Domain.join d)
  | exception e ->
    shut ();
    ignore (Domain.join d);
    raise e

let compiled_wide =
  lazy (Pipeline.compile ~optimize:false ~name:"svc-wide" (Gen_circuit.wide ~width:4 ~depth:3))

let submit_compiled c ~session ~name compiled cts =
  Service_client.submit c ~session ~name ~program:compiled.Pipeline.binary ~inputs:cts

let expect_done = function
  | Service_client.Done { outputs; bootstraps; _ } -> (outputs, bootstraps)
  | Service_client.Failed { code; message } ->
    Alcotest.failf "request failed (%s: %s)" (Service.string_of_error_code code) message

(* ------------------------------------------------------------------ *)
(* Concurrent multi-tenant sessions, bit-exact vs per-tenant Server.run *)
(* ------------------------------------------------------------------ *)

let test_multi_tenant_bit_exact () =
  let client_a, cloud_a = Lazy.force tenant_a in
  let client_b, cloud_b = Lazy.force tenant_b in
  let compiled = Lazy.force compiled_wide in
  let n_in = Netlist.input_count compiled.Pipeline.netlist in
  let rng = Rng.create ~seed:4242 () in
  let job client () =
    let ins = Array.init n_in (fun _ -> Rng.bool rng) in
    (ins, Client.encrypt_bits client ins)
  in
  let jobs_a = Array.init 2 (fun _ -> job client_a ()) in
  let jobs_b = Array.init 2 (fun _ -> job client_b ()) in
  let (), stats =
    with_server (fun port ->
        let ca = Service_client.connect ~port () in
        let cb = Service_client.connect ~port () in
        Fun.protect
          ~finally:(fun () ->
            Service_client.close ca;
            Service_client.close cb)
          (fun () ->
            let id_a = Client.client_id client_a and id_b = Client.client_id client_b in
            Service_client.register ca ~client_id:id_a cloud_a;
            Service_client.register cb ~client_id:id_b cloud_b;
            let sa = Service_client.open_session ca ~client_id:id_a Params.test in
            let sb = Service_client.open_session cb ~client_id:id_b Params.test in
            (* Interleave the submissions so both tenants are in flight
               concurrently, then await out of order. *)
            let reqs =
              Array.init 4 (fun i ->
                  let c, s, (_, cts) =
                    if i mod 2 = 0 then (ca, sa, jobs_a.(i / 2)) else (cb, sb, jobs_b.(i / 2))
                  in
                  (c, submit_compiled c ~session:s ~name:(Printf.sprintf "j%d" i) compiled cts))
            in
            Array.iteri
              (fun i (c, req) ->
                let outputs, bootstraps = expect_done (Service_client.await ~timeout:60.0 c req) in
                let client, (ins, cts) =
                  if i mod 2 = 0 then (client_a, jobs_a.(i / 2)) else (client_b, jobs_b.(i / 2))
                in
                let cloud = if i mod 2 = 0 then cloud_a else cloud_b in
                let ref_out, _ = Server.run Server.Cpu cloud compiled cts in
                Alcotest.(check bool)
                  (Printf.sprintf "request %d bit-exact with per-tenant Server.run" i)
                  true
                  (outputs = ref_out);
                Alcotest.(check (array bool))
                  (Printf.sprintf "request %d decrypts to plain eval" i)
                  (Array.of_list
                     (List.map snd (Plain_eval.run compiled.Pipeline.netlist ins)))
                  (Client.decrypt_bits client outputs);
                Alcotest.(check bool) "bootstraps counted" true (bootstraps > 0))
              reqs))
  in
  Alcotest.(check int) "two keysets registered" 2 stats.Service.keysets_registered;
  Alcotest.(check int) "two sessions opened" 2 stats.Service.sessions_opened;
  Alcotest.(check int) "four requests completed" 4 stats.Service.requests_completed;
  Alcotest.(check int) "no failures" 0 stats.Service.requests_failed;
  Alcotest.(check bool) "batched launches happened" true (stats.Service.batch_launches > 0);
  Alcotest.(check int) "per-request latencies sampled" 4 stats.Service.latency.Pytfhe_obs.Quantile.count;
  Alcotest.(check bool) "per-tenant traffic accounted" true
    (Array.length stats.Service.tenants = 2
    && Array.for_all (fun t -> t.Service.bytes_in > 0 && t.Service.bytes_out > 0) stats.Service.tenants)

(* ------------------------------------------------------------------ *)
(* Handshake rejection and failure isolation                           *)
(* ------------------------------------------------------------------ *)

let corrupts f = match f () with _ -> false | exception Wire.Corrupt _ -> true

let test_handshake_rejection () =
  let client_a, cloud_a = Lazy.force tenant_a in
  let compiled = Lazy.force compiled_wide in
  let n_in = Netlist.input_count compiled.Pipeline.netlist in
  let rng = Rng.create ~seed:5151 () in
  let (), stats =
    with_server (fun port ->
        let ca = Service_client.connect ~port () in
        Fun.protect ~finally:(fun () -> Service_client.close ca) @@ fun () ->
        let id_a = Client.client_id client_a in
        Service_client.register ca ~client_id:id_a cloud_a;
        let sa = Service_client.open_session ca ~client_id:id_a Params.test in
        (* Each rejection below is a payload-level error on a throwaway
           connection: the server answers SERR and the error surfaces
           client-side as Wire.Corrupt. *)
        let on_throwaway f =
          let c = Service_client.connect ~port () in
          Fun.protect ~finally:(fun () -> Service_client.close c) (fun () -> f c)
        in
        Alcotest.(check bool) "wrong transform tag rejected" true
          (on_throwaway (fun c ->
               let wrong =
                 match Params.test.Params.transform with
                 | Transform.Fft -> Transform.Ntt
                 | Transform.Ntt -> Transform.Fft
               in
               corrupts (fun () ->
                   Service_client.register ~transform:wrong c ~client_id:"tag-mismatch" cloud_a)));
        Alcotest.(check bool) "unknown client id rejected" true
          (on_throwaway (fun c ->
               corrupts (fun () -> Service_client.open_session c ~client_id:"nobody" Params.test)));
        Alcotest.(check bool) "malformed client id rejected" true
          (on_throwaway (fun c ->
               corrupts (fun () -> Service_client.register c ~client_id:"no spaces!" cloud_a)));
        (* Unknown message magic inside a valid envelope: SERR, and the
           connection survives to serve a well-formed stats call. *)
        on_throwaway (fun c ->
            let buf = Buffer.create 16 in
            Wire.write_magic buf "ZZZZ";
            let payload = Buffer.to_bytes buf in
            let frame = Buffer.create 32 in
            Buffer.add_string frame Framing.frame_magic;
            Buffer.add_int64_le frame (Int64.of_int (Bytes.length payload));
            Buffer.add_bytes frame payload;
            Service_client.send_raw c (Buffer.to_bytes frame);
            Alcotest.(check bool) "unknown magic draws SERR" true
              (corrupts (fun () -> Service_client.stats c));
            Alcotest.(check bool) "connection survives the payload error" true
              (Service.(ignore (Service_client.stats c).backend);
               true));
        (* Envelope corruption: the server closes that connection only. *)
        let cx = Service_client.connect ~port () in
        Service_client.send_raw cx (Bytes.of_string "XXXXXXXXXXXXXXXXXXXX");
        Alcotest.(check bool) "corrupt envelope closes the connection" true
          (match Service_client.stats cx with
          | _ -> false
          | exception Framing.Frame_closed -> true
          | exception Unix.Unix_error _ -> true);
        Service_client.close cx;
        (* The established tenant session kept working through all of it. *)
        let ins = Array.init n_in (fun _ -> Rng.bool rng) in
        let cts = Client.encrypt_bits client_a ins in
        let req = submit_compiled ca ~session:sa ~name:"survivor" compiled cts in
        let outputs, _ = expect_done (Service_client.await ~timeout:60.0 ca req) in
        let ref_out, _ = Server.run Server.Cpu cloud_a compiled cts in
        Alcotest.(check bool) "survivor request bit-exact" true (outputs = ref_out))
  in
  Alcotest.(check int) "one request completed" 1 stats.Service.requests_completed;
  Alcotest.(check int) "rejections admitted no requests" 1 stats.Service.requests_admitted

(* ------------------------------------------------------------------ *)
(* Keyset eviction fails only that tenant                              *)
(* ------------------------------------------------------------------ *)

let test_evict_fails_only_that_tenant () =
  let client_a, cloud_a = Lazy.force tenant_a in
  let client_b, cloud_b = Lazy.force tenant_b in
  (* Tenant A's program is a long serial chain: one ready gate at a time,
     hundreds of scheduler launches, so the eviction lands mid-flight. *)
  let chain = Pipeline.compile ~optimize:false ~name:"svc-chain" (Gen_circuit.chain ~depth:600) in
  let wide = Lazy.force compiled_wide in
  let rng = Rng.create ~seed:6161 () in
  let (), stats =
    with_server (fun port ->
        let ca = Service_client.connect ~port () in
        let cb = Service_client.connect ~port () in
        Fun.protect
          ~finally:(fun () ->
            Service_client.close ca;
            Service_client.close cb)
          (fun () ->
            let id_a = Client.client_id client_a and id_b = Client.client_id client_b in
            Service_client.register ca ~client_id:id_a cloud_a;
            Service_client.register cb ~client_id:id_b cloud_b;
            let sa = Service_client.open_session ca ~client_id:id_a Params.test in
            let sb = Service_client.open_session cb ~client_id:id_b Params.test in
            let ins_a =
              Array.init (Netlist.input_count chain.Pipeline.netlist) (fun _ -> Rng.bool rng)
            in
            let cts_a = Client.encrypt_bits client_a ins_a in
            let ins_b =
              Array.init (Netlist.input_count wide.Pipeline.netlist) (fun _ -> Rng.bool rng)
            in
            let cts_b = Client.encrypt_bits client_b ins_b in
            let req_a = submit_compiled ca ~session:sa ~name:"long-chain" chain cts_a in
            let req_b = submit_compiled cb ~session:sb ~name:"bystander" wide cts_b in
            Alcotest.(check bool) "evict acknowledges a registered keyset" true
              (Service_client.evict ca ~client_id:id_a);
            (match Service_client.await ~timeout:60.0 ca req_a with
            | Service_client.Failed { code = Service.Evicted; _ } -> ()
            | Service_client.Failed { code; message } ->
              Alcotest.failf "wrong failure (%s: %s)" (Service.string_of_error_code code) message
            | Service_client.Done _ -> Alcotest.fail "evicted request completed");
            let outputs_b, _ = expect_done (Service_client.await ~timeout:60.0 cb req_b) in
            Alcotest.(check (array bool)) "bystander tenant unaffected"
              (Array.of_list (List.map snd (Plain_eval.run wide.Pipeline.netlist ins_b)))
              (Client.decrypt_bits client_b outputs_b);
            (* The evicted tenant's session is dead, but re-registering
               brings the tenant back. *)
            Alcotest.(check bool) "stale session rejected" true
              (match submit_compiled ca ~session:sa ~name:"stale" wide cts_b with
              | req -> (
                match Service_client.await ~timeout:60.0 ca req with
                | Service_client.Failed { code = Service.Unknown; _ } -> true
                | _ -> false)
              | exception Wire.Corrupt _ -> true);
            Service_client.register ca ~client_id:id_a cloud_a;
            let sa' = Service_client.open_session ca ~client_id:id_a Params.test in
            let ins' =
              Array.init (Netlist.input_count wide.Pipeline.netlist) (fun _ -> Rng.bool rng)
            in
            let cts' = Client.encrypt_bits client_a ins' in
            let req' = submit_compiled ca ~session:sa' ~name:"reborn" wide cts' in
            let outputs', _ = expect_done (Service_client.await ~timeout:60.0 ca req') in
            Alcotest.(check (array bool)) "re-registered tenant runs again"
              (Array.of_list (List.map snd (Plain_eval.run wide.Pipeline.netlist ins')))
              (Client.decrypt_bits client_a outputs')))
  in
  Alcotest.(check int) "one eviction recorded" 1 stats.Service.keysets_evicted;
  Alcotest.(check bool) "evicted request counted as failed" true
    (stats.Service.requests_failed >= 1)

(* ------------------------------------------------------------------ *)
(* Program-size admission cap                                          *)
(* ------------------------------------------------------------------ *)

let test_program_size_cap () =
  let client_a, cloud_a = Lazy.force tenant_a in
  let compiled = Lazy.force compiled_wide in
  let n_in = Netlist.input_count compiled.Pipeline.netlist in
  let rng = Rng.create ~seed:99 () in
  let ins = Array.init n_in (fun _ -> Rng.bool rng) in
  let cts = Client.encrypt_bits client_a ins in
  (* One byte under the program's size: the submission must be rejected
     before the server decodes a single instruction. *)
  let cap = Bytes.length compiled.Pipeline.binary - 1 in
  let (), stats =
    with_server
      ~config:{ Service.default_config with Service.max_program_bytes = cap }
      (fun port ->
        let c = Service_client.connect ~port () in
        Fun.protect
          ~finally:(fun () -> Service_client.close c)
          (fun () ->
            let id = Client.client_id client_a in
            Service_client.register c ~client_id:id cloud_a;
            let s = Service_client.open_session c ~client_id:id Params.test in
            let req = submit_compiled c ~session:s ~name:"oversized" compiled cts in
            (match Service_client.await ~timeout:60.0 c req with
            | Service_client.Failed { code = Service.Corrupt; message } ->
              Alcotest.(check bool) "error names the admission cap" true
                (try
                   ignore (Str.search_forward (Str.regexp_string "admission cap") message 0);
                   true
                 with Not_found -> false)
            | Service_client.Failed { code; message } ->
              Alcotest.failf "wrong error (%s: %s)" (Service.string_of_error_code code) message
            | Service_client.Done _ -> Alcotest.fail "oversized program accepted")))
  in
  Alcotest.(check int) "nothing executed" 0 stats.Service.requests_completed

(* ------------------------------------------------------------------ *)
(* Stats wire codec                                                    *)
(* ------------------------------------------------------------------ *)

let test_stats_roundtrip () =
  let s =
    {
      Service.backend = "cpu";
      keysets_registered = 3;
      keysets_evicted = 1;
      sessions_opened = 4;
      requests_admitted = 9;
      requests_completed = 7;
      requests_failed = 2;
      batch_launches = 40;
      batched_gates = 90;
      batch_fill = 2.25;
      lut_rotations = 5;
      queue_depth = 1;
      active_requests = 2;
      max_queue_depth = 6;
      latency = Pytfhe_obs.Quantile.summarize [| 0.1; 0.2; 0.3 |];
      tenants = [| { Service.id = "alice"; bytes_in = 100; bytes_out = 50 } |];
    }
  in
  let buf = Buffer.create 256 in
  Service.write_stats buf s;
  let s' = Service.read_stats (Wire.reader_of_string (Buffer.contents buf)) in
  Alcotest.(check bool) "stats survive the wire" true (s = s')

let () =
  Alcotest.run "service"
    [
      ( "service",
        [
          Alcotest.test_case "multi-tenant bit-exact" `Quick test_multi_tenant_bit_exact;
          Alcotest.test_case "handshake rejection" `Quick test_handshake_rejection;
          Alcotest.test_case "evict fails only that tenant" `Quick
            test_evict_fails_only_that_tenant;
          Alcotest.test_case "program-size admission cap" `Quick test_program_size_cap;
          Alcotest.test_case "stats wire roundtrip" `Quick test_stats_roundtrip;
        ] );
    ]
