module Wire = Pytfhe_util.Wire

(* Struct-of-arrays TRLWE accumulator storage for the batched blind
   rotation: [cap] accumulators as one flat torus-word array, row r holding
   its k mask polynomials then its body polynomial back to back (each
   ring_n coefficients).  The batched CMux recurrence keeps one
   bootstrapping-key entry resident while sweeping the batch dimension, so
   the accumulators it touches must be contiguous — this is the TRLWE
   analogue of {!Lwe_array}.

   Unlike {!Lwe_array} the accumulators never cross the wire, so the flat
   storage is a plain [int array] of torus words rather than an int32
   Bigarray: an int32 bigarray element access costs roughly two int-array
   accesses even when it compiles to a raw load (tag/convert ops on every
   read-modify-write), and the rotation loops are memory bound.

   Every op mirrors the record-path code it replaces coefficient for
   coefficient ([Poly.mul_by_xai_into] / [mul_by_xai_minus_one_into] /
   [add_of_floats_to] / [Tlwe.extract_lwe]), and all arithmetic goes
   through [Torus] / [Poly.torus_of_float], so the batched rotation stays
   ciphertext-bit-exact with the scalar walk. *)

type t = { k : int; ring_n : int; cap : int; data : int array }

let create (p : Params.t) ~cap =
  if cap < 1 then invalid_arg "Trlwe_array.create: cap must be >= 1";
  let k = p.tlwe.k and ring_n = p.tlwe.ring_n in
  { k; ring_n; cap; data = Array.make (cap * (k + 1) * ring_n) 0 }

let capacity t = t.cap

let[@inline] comp_off t r c = ((r * (t.k + 1)) + c) * t.ring_n
let[@inline] body_off t r = comp_off t r t.k

let[@inline] check_row t r who =
  if r < 0 || r >= t.cap then invalid_arg (who ^ ": row out of bounds")

let clear_masks t r =
  check_row t r "Trlwe_array.clear_masks";
  Array.fill t.data (comp_off t r 0) (t.k * t.ring_n) 0

(* Local replica of [Poly.torus_of_float]: the float argument and Int64
   intermediates of a cross-module call are boxed on every coefficient
   (the [@inline] does not carry across the module boundary for this body),
   which costs megabytes per bootstrap.  The expression must stay identical
   to [Poly.torus_of_float] — the SoA/record bit-exactness tests pin it. *)
let[@inline] torus_of_float x =
  let r = Float.rem (Float.round x) 4294967296.0 in
  Torus.of_signed (Int64.to_int (Int64.of_float r))

(* body(r) ← X^a · p: the three-branch negacyclic rotation of
   [Poly.mul_by_xai_into], writing into the flat row. *)
let rotate_body_from t r a (p : Poly.torus_poly) =
  check_row t r "Trlwe_array.rotate_body_from";
  let n = t.ring_n in
  if Array.length p <> n then invalid_arg "Trlwe_array.rotate_body_from: size mismatch";
  if a < 0 || a >= 2 * n then
    invalid_arg "Trlwe_array.rotate_body_from: exponent out of [0, 2N)";
  let d = t.data in
  let off = body_off t r in
  if a = 0 then Array.blit p 0 d off n
  else if a < n then begin
    for j = 0 to n - 1 - a do
      Array.unsafe_set d (off + j + a) (Array.unsafe_get p j)
    done;
    for j = n - a to n - 1 do
      Array.unsafe_set d (off + j + a - n) (Torus.neg (Array.unsafe_get p j))
    done
  end
  else begin
    let a' = a - n in
    for j = 0 to n - 1 - a' do
      Array.unsafe_set d (off + j + a') (Torus.neg (Array.unsafe_get p j))
    done;
    for j = n - a' to n - 1 do
      Array.unsafe_set d (off + j + a' - n) (Array.unsafe_get p j)
    done
  end

(* dst ← (X^a − 1) · row: the fused rotation difference of
   [Poly.mul_by_xai_minus_one_into] applied to every component of row [r],
   landing in the record-shaped workspace scratch the external product
   consumes. *)
let rotate_diff_into t ~row a (dst : Tlwe.sample) =
  check_row t row "Trlwe_array.rotate_diff_into";
  let n = t.ring_n in
  if a < 0 || a >= 2 * n then
    invalid_arg "Trlwe_array.rotate_diff_into: exponent out of [0, 2N)";
  let src = t.data in
  for c = 0 to t.k do
    let d = if c < t.k then dst.Tlwe.mask.(c) else dst.Tlwe.body in
    if Array.length d <> n then invalid_arg "Trlwe_array.rotate_diff_into: size mismatch";
    let off = comp_off t row c in
    if a = 0 then Array.fill d 0 n 0
    else if a < n then begin
      for j = 0 to n - 1 - a do
        let tgt = j + a in
        Array.unsafe_set d tgt
          (Torus.sub (Array.unsafe_get src (off + j)) (Array.unsafe_get src (off + tgt)))
      done;
      for j = n - a to n - 1 do
        let tgt = j + a - n in
        Array.unsafe_set d tgt
          (Torus.sub (Torus.neg (Array.unsafe_get src (off + j))) (Array.unsafe_get src (off + tgt)))
      done
    end
    else begin
      let a' = a - n in
      for j = 0 to n - 1 - a' do
        let tgt = j + a' in
        Array.unsafe_set d tgt
          (Torus.sub (Torus.neg (Array.unsafe_get src (off + j))) (Array.unsafe_get src (off + tgt)))
      done;
      for j = n - a' to n - 1 do
        let tgt = j + a' - n in
        Array.unsafe_set d tgt
          (Torus.sub (Array.unsafe_get src (off + j)) (Array.unsafe_get src (off + tgt)))
      done
    end
  done

(* component(row, comp) += round(f): [Poly.add_of_floats_to] against the
   flat row, through the same [Poly.torus_of_float] conversion. *)
let add_floats_to t ~row ~comp (f : float array) =
  check_row t row "Trlwe_array.add_floats_to";
  if comp < 0 || comp > t.k then invalid_arg "Trlwe_array.add_floats_to: component out of range";
  if Array.length f <> t.ring_n then invalid_arg "Trlwe_array.add_floats_to: size mismatch";
  let d = t.data in
  let off = comp_off t row comp in
  for i = 0 to t.ring_n - 1 do
    Array.unsafe_set d (off + i)
      (Torus.add (Array.unsafe_get d (off + i)) (torus_of_float (Array.unsafe_get f i)))
  done

(* component(row, comp) += v mod 2^32: the NTT-path counterpart of
   [add_floats_to] — coefficients arrive as exact signed integers, so the
   reduction is a plain mask with no rounding. *)
let add_ints_to t ~row ~comp (v : int array) =
  check_row t row "Trlwe_array.add_ints_to";
  if comp < 0 || comp > t.k then invalid_arg "Trlwe_array.add_ints_to: component out of range";
  if Array.length v <> t.ring_n then invalid_arg "Trlwe_array.add_ints_to: size mismatch";
  let d = t.data in
  let off = comp_off t row comp in
  for i = 0 to t.ring_n - 1 do
    Array.unsafe_set d (off + i)
      (Torus.add (Array.unsafe_get d (off + i)) (Torus.of_signed (Array.unsafe_get v i)))
  done

(* The extraction destination IS an int32 Bigarray ({!Lwe_array} is the
   wire format).  Spelled as direct annotated primitive applications so the
   stores compile to raw writes — a cross-module call to
   [Lwe_array.unsafe_set32] is never inlined by this compiler, and the
   parameter annotation is what lets the typer pick the int32-specialized
   primitive instead of the generic boxing one. *)
let[@inline] set32 (ba : Wire.i32_buffer) i v = Bigarray.Array1.unsafe_set ba i (Int32.of_int v)

(* Sample extraction, [Tlwe.extract_lwe] row for row: mask coefficient
   (c·N) is poly_c(0), (c·N + j) is −poly_c(N − j); the body is the body
   polynomial's constant coefficient. *)
let extract_row_into t ~row (dst : Lwe_array.t) ~drow =
  check_row t row "Trlwe_array.extract_row_into";
  if dst.Lwe_array.n <> t.k * t.ring_n then
    invalid_arg "Trlwe_array.extract_row_into: destination dimension mismatch";
  if drow < 0 || drow >= dst.Lwe_array.len then
    invalid_arg "Trlwe_array.extract_row_into: destination row out of bounds";
  let n = t.ring_n in
  let src = t.data in
  let doff = drow * dst.Lwe_array.n in
  for c = 0 to t.k - 1 do
    let poff = comp_off t row c in
    set32 dst.Lwe_array.masks (doff + (c * n)) (Array.unsafe_get src poff);
    for j = 1 to n - 1 do
      set32 dst.Lwe_array.masks (doff + (c * n) + j)
        (Torus.neg (Array.unsafe_get src (poff + n - j)))
    done
  done;
  set32 dst.Lwe_array.bodies drow (Array.unsafe_get src (body_off t row))

(* Record conversions for the test suite. *)

let set_row t r (s : Tlwe.sample) =
  check_row t r "Trlwe_array.set_row";
  if Array.length s.Tlwe.mask <> t.k || Array.length s.Tlwe.body <> t.ring_n then
    invalid_arg "Trlwe_array.set_row: shape mismatch";
  for c = 0 to t.k do
    let p = if c < t.k then s.Tlwe.mask.(c) else s.Tlwe.body in
    Array.blit p 0 t.data (comp_off t r c) t.ring_n
  done

let get_row t r =
  check_row t r "Trlwe_array.get_row";
  let poly c = Array.sub t.data (comp_off t r c) t.ring_n in
  { Tlwe.mask = Array.init t.k poly; body = poly t.k }
