module Rng = Pytfhe_util.Rng

type secret_keyset = {
  params : Params.t;
  lwe_key : Lwe.key;
  tlwe_key : Tlwe.key;
  extracted_key : Lwe.key;
}

type cloud_keyset = {
  cloud_params : Params.t;
  bootstrap_key : Bootstrap.key;
  keyswitch_key : Keyswitch.key;
}

let key_gen rng (p : Params.t) =
  let lwe_key = Lwe.key_gen rng ~n:p.lwe.n in
  let tlwe_key = Tlwe.key_gen rng p in
  let extracted_key = Tlwe.extract_key tlwe_key in
  let bootstrap_key = Bootstrap.key_gen rng p ~lwe_key ~tlwe_key in
  let keyswitch_key = Keyswitch.key_gen rng p ~in_key:extracted_key ~out_key:lwe_key in
  ( { params = p; lwe_key; tlwe_key; extracted_key },
    { cloud_params = p; bootstrap_key; keyswitch_key } )

let mu8 sign = Torus.mod_switch_to (if sign then 1 else 7) ~msize:8
let quarter sign = Torus.mod_switch_to (if sign then 1 else 3) ~msize:4

let encrypt_bit rng ks bit =
  Lwe.encrypt rng ks.lwe_key ~stdev:ks.params.lwe.lwe_stdev (mu8 bit)

let decrypt_bit ks c = Lwe.decrypt_bit ks.lwe_key c

let constant ck bit = Lwe.trivial ~n:ck.cloud_params.lwe.n (mu8 bit)

let not_gate _ck c = Lwe.neg c

(* Per-thread evaluation context: the keyset is immutable and shared, the
   bootstrap scratch is private to one domain. *)
type context = { keyset : cloud_keyset; scratch : Bootstrap.context }

let context ck = { keyset = ck; scratch = Bootstrap.context_create ck.cloud_params }
let default_context ck = { keyset = ck; scratch = Bootstrap.default_context ck.bootstrap_key }

let bootstrap_in ctx combined =
  let p = ctx.keyset.cloud_params in
  let extracted =
    Bootstrap.bootstrap_with p ctx.scratch ctx.keyset.bootstrap_key ~mu:(Params.mu p) combined
  in
  Keyswitch.apply ctx.keyset.keyswitch_key extracted

let binary_gate_in ctx ~const ~sign_a ~sign_b a b =
  let n = ctx.keyset.cloud_params.lwe.n in
  let acc = Lwe.trivial ~n const in
  let acc = if sign_a > 0 then Lwe.add acc a else Lwe.sub acc a in
  let acc = if sign_b > 0 then Lwe.add acc b else Lwe.sub acc b in
  bootstrap_in ctx acc

let nand_gate_in ctx a b = binary_gate_in ctx ~const:(mu8 true) ~sign_a:(-1) ~sign_b:(-1) a b
let and_gate_in ctx a b = binary_gate_in ctx ~const:(mu8 false) ~sign_a:1 ~sign_b:1 a b
let or_gate_in ctx a b = binary_gate_in ctx ~const:(mu8 true) ~sign_a:1 ~sign_b:1 a b
let nor_gate_in ctx a b = binary_gate_in ctx ~const:(mu8 false) ~sign_a:(-1) ~sign_b:(-1) a b
let andny_gate_in ctx a b = binary_gate_in ctx ~const:(mu8 false) ~sign_a:(-1) ~sign_b:1 a b
let andyn_gate_in ctx a b = binary_gate_in ctx ~const:(mu8 false) ~sign_a:1 ~sign_b:(-1) a b
let orny_gate_in ctx a b = binary_gate_in ctx ~const:(mu8 true) ~sign_a:(-1) ~sign_b:1 a b
let oryn_gate_in ctx a b = binary_gate_in ctx ~const:(mu8 true) ~sign_a:1 ~sign_b:(-1) a b

let xor_gate_in ctx a b =
  let n = ctx.keyset.cloud_params.lwe.n in
  let acc = Lwe.trivial ~n (quarter true) in
  let acc = Lwe.add acc (Lwe.scale 2 (Lwe.add a b)) in
  bootstrap_in ctx acc

let xnor_gate_in ctx a b =
  let n = ctx.keyset.cloud_params.lwe.n in
  let acc = Lwe.trivial ~n (quarter false) in
  let acc = Lwe.sub acc (Lwe.scale 2 (Lwe.add a b)) in
  bootstrap_in ctx acc

let nand_gate ck a b = nand_gate_in (default_context ck) a b
let and_gate ck a b = and_gate_in (default_context ck) a b
let or_gate ck a b = or_gate_in (default_context ck) a b
let nor_gate ck a b = nor_gate_in (default_context ck) a b
let andny_gate ck a b = andny_gate_in (default_context ck) a b
let andyn_gate ck a b = andyn_gate_in (default_context ck) a b
let orny_gate ck a b = orny_gate_in (default_context ck) a b
let oryn_gate ck a b = oryn_gate_in (default_context ck) a b
let xor_gate ck a b = xor_gate_in (default_context ck) a b
let xnor_gate ck a b = xnor_gate_in (default_context ck) a b

let mux_gate ck s x y =
  let p = ck.cloud_params in
  let n = p.lwe.n in
  let mu = Params.mu p in
  (* u1 = bootstrap(s AND x), u2 = bootstrap(¬s AND y), both under the
     extracted key; their sum plus 1/8 re-encodes the selected bit, and a
     single key switch brings it home. *)
  let and_sx = Lwe.add (Lwe.add (Lwe.trivial ~n (mu8 false)) s) x in
  let u1 = Bootstrap.bootstrap_wo_keyswitch p ck.bootstrap_key ~mu and_sx in
  let andny_sy = Lwe.add (Lwe.sub (Lwe.trivial ~n (mu8 false)) s) y in
  let u2 = Bootstrap.bootstrap_wo_keyswitch p ck.bootstrap_key ~mu andny_sy in
  let extracted_n = Params.extracted_n p in
  let sum = Lwe.add (Lwe.add u1 u2) (Lwe.trivial ~n:extracted_n (mu8 true)) in
  Keyswitch.apply ck.keyswitch_key sum

module Wire = Pytfhe_util.Wire

let write_secret_keyset buf sk =
  Wire.write_magic buf "SKST";
  Params.write buf sk.params;
  Lwe.write_key buf sk.lwe_key;
  Tlwe.write_key buf sk.tlwe_key

let read_secret_keyset r =
  Wire.read_magic r "SKST";
  let params = Params.read r in
  let lwe_key = Lwe.read_key r in
  let tlwe_key = Tlwe.read_key r in
  { params; lwe_key; tlwe_key; extracted_key = Tlwe.extract_key tlwe_key }

let write_cloud_keyset buf ck =
  Wire.write_magic buf "CKST";
  Params.write buf ck.cloud_params;
  Bootstrap.write buf ck.bootstrap_key;
  Keyswitch.write buf ck.keyswitch_key

let read_cloud_keyset r =
  Wire.read_magic r "CKST";
  let cloud_params = Params.read r in
  let bootstrap_key = Bootstrap.read cloud_params r in
  let keyswitch_key = Keyswitch.read r in
  { cloud_params; bootstrap_key; keyswitch_key }

let half_torus_encode ~msize v = Torus.mod_switch_to v ~msize:(2 * msize)

let encrypt_message rng sk ~msize v =
  if v < 0 || v >= msize then invalid_arg "Gates.encrypt_message: message out of range";
  Lwe.encrypt rng sk.lwe_key ~stdev:sk.params.Params.lwe.Params.lwe_stdev
    (half_torus_encode ~msize v)

let decrypt_message sk ~msize c =
  Torus.mod_switch_from (Lwe.phase sk.lwe_key c) ~msize:(2 * msize) mod msize

let apply_lut ck ~msize ~table c =
  if Array.length table <> msize then invalid_arg "Gates.apply_lut: table arity mismatch";
  let p = ck.cloud_params in
  let f mu = half_torus_encode ~msize (((table.(mu) mod msize) + msize) mod msize) in
  let extracted = Bootstrap.programmable p ck.bootstrap_key ~msize f c in
  Keyswitch.apply ck.keyswitch_key extracted
