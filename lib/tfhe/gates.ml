module Rng = Pytfhe_util.Rng

type secret_keyset = {
  params : Params.t;
  lwe_key : Lwe.key;
  tlwe_key : Tlwe.key;
  extracted_key : Lwe.key;
}

type cloud_keyset = {
  cloud_params : Params.t;
  bootstrap_key : Bootstrap.key;
  keyswitch_key : Keyswitch.key;
}

let key_gen rng (p : Params.t) =
  let lwe_key = Lwe.key_gen rng ~n:p.lwe.n in
  let tlwe_key = Tlwe.key_gen rng p in
  let extracted_key = Tlwe.extract_key tlwe_key in
  let bootstrap_key = Bootstrap.key_gen rng p ~lwe_key ~tlwe_key in
  let keyswitch_key = Keyswitch.key_gen rng p ~in_key:extracted_key ~out_key:lwe_key in
  ( { params = p; lwe_key; tlwe_key; extracted_key },
    { cloud_params = p; bootstrap_key; keyswitch_key } )

let mu8 sign = Torus.mod_switch_to (if sign then 1 else 7) ~msize:8
let quarter sign = Torus.mod_switch_to (if sign then 1 else 3) ~msize:4

let encrypt_bit rng ks bit =
  Lwe.encrypt rng ks.lwe_key ~stdev:ks.params.lwe.lwe_stdev (mu8 bit)

let decrypt_bit ks c = Lwe.decrypt_bit ks.lwe_key c

let constant ck bit = Lwe.trivial ~n:ck.cloud_params.lwe.n (mu8 bit)

let not_gate _ck c = Lwe.neg c

(* Per-thread evaluation context: the keyset is immutable and shared, the
   bootstrap scratch is private to one domain. *)
type context = { keyset : cloud_keyset; scratch : Bootstrap.context }

let context ck = { keyset = ck; scratch = Bootstrap.context_create ck.cloud_params }
let default_context ck = { keyset = ck; scratch = Bootstrap.default_context ck.bootstrap_key }

let bootstrap_in ctx combined =
  let p = ctx.keyset.cloud_params in
  let extracted =
    Bootstrap.bootstrap_with p ctx.scratch ctx.keyset.bootstrap_key ~mu:(Params.mu p) combined
  in
  Keyswitch.apply ctx.keyset.keyswitch_key extracted

(* Every two-input gate is a linear phase combination followed by the same
   sign bootstrap (mu = 1/8) and key switch.  The combination is captured as
   a data value so the scalar and batched paths share it: torus arithmetic
   is exact mod 2^32, so building the phase as const ± scale·a ± scale·b is
   bit-identical however the additions are grouped. *)
type combine_plan = {
  plan_const : Torus.t;
  plan_scale : int;
  plan_sign_a : int;
  plan_sign_b : int;
}

let nand_plan = { plan_const = mu8 true; plan_scale = 1; plan_sign_a = -1; plan_sign_b = -1 }
let and_plan = { plan_const = mu8 false; plan_scale = 1; plan_sign_a = 1; plan_sign_b = 1 }
let or_plan = { plan_const = mu8 true; plan_scale = 1; plan_sign_a = 1; plan_sign_b = 1 }
let nor_plan = { plan_const = mu8 false; plan_scale = 1; plan_sign_a = -1; plan_sign_b = -1 }
let andny_plan = { plan_const = mu8 false; plan_scale = 1; plan_sign_a = -1; plan_sign_b = 1 }
let andyn_plan = { plan_const = mu8 false; plan_scale = 1; plan_sign_a = 1; plan_sign_b = -1 }
let orny_plan = { plan_const = mu8 true; plan_scale = 1; plan_sign_a = -1; plan_sign_b = 1 }
let oryn_plan = { plan_const = mu8 true; plan_scale = 1; plan_sign_a = 1; plan_sign_b = -1 }
let xor_plan = { plan_const = quarter true; plan_scale = 2; plan_sign_a = 1; plan_sign_b = 1 }
let xnor_plan = { plan_const = quarter false; plan_scale = 2; plan_sign_a = -1; plan_sign_b = -1 }

let combine ~n plan a b =
  let scaled x = if plan.plan_scale = 1 then x else Lwe.scale plan.plan_scale x in
  let acc = Lwe.trivial ~n plan.plan_const in
  let acc = if plan.plan_sign_a > 0 then Lwe.add acc (scaled a) else Lwe.sub acc (scaled a) in
  if plan.plan_sign_b > 0 then Lwe.add acc (scaled b) else Lwe.sub acc (scaled b)

let binary_gate_in ctx plan a b =
  bootstrap_in ctx (combine ~n:ctx.keyset.cloud_params.lwe.n plan a b)

let nand_gate_in ctx a b = binary_gate_in ctx nand_plan a b
let and_gate_in ctx a b = binary_gate_in ctx and_plan a b
let or_gate_in ctx a b = binary_gate_in ctx or_plan a b
let nor_gate_in ctx a b = binary_gate_in ctx nor_plan a b
let andny_gate_in ctx a b = binary_gate_in ctx andny_plan a b
let andyn_gate_in ctx a b = binary_gate_in ctx andyn_plan a b
let orny_gate_in ctx a b = binary_gate_in ctx orny_plan a b
let oryn_gate_in ctx a b = binary_gate_in ctx oryn_plan a b
let xor_gate_in ctx a b = binary_gate_in ctx xor_plan a b
let xnor_gate_in ctx a b = binary_gate_in ctx xnor_plan a b

let nand_gate ck a b = nand_gate_in (default_context ck) a b
let and_gate ck a b = and_gate_in (default_context ck) a b
let or_gate ck a b = or_gate_in (default_context ck) a b
let nor_gate ck a b = nor_gate_in (default_context ck) a b
let andny_gate ck a b = andny_gate_in (default_context ck) a b
let andyn_gate ck a b = andyn_gate_in (default_context ck) a b
let orny_gate ck a b = orny_gate_in (default_context ck) a b
let oryn_gate ck a b = oryn_gate_in (default_context ck) a b
let xor_gate ck a b = xor_gate_in (default_context ck) a b
let xnor_gate ck a b = xnor_gate_in (default_context ck) a b

let mux_gate_in ctx s x y =
  let p = ctx.keyset.cloud_params in
  let n = p.lwe.n in
  let mu = Params.mu p in
  (* u1 = bootstrap(s AND x), u2 = bootstrap(¬s AND y), both under the
     extracted key; their sum plus 1/8 re-encodes the selected bit, and a
     single key switch brings it home.  Both blind rotations run through the
     context scratch — u1 survives the second rotation because sample
     extraction allocates a fresh ciphertext. *)
  let and_sx = combine ~n and_plan s x in
  let u1 = Bootstrap.bootstrap_with p ctx.scratch ctx.keyset.bootstrap_key ~mu and_sx in
  let andny_sy = combine ~n andny_plan s y in
  let u2 = Bootstrap.bootstrap_with p ctx.scratch ctx.keyset.bootstrap_key ~mu andny_sy in
  let extracted_n = Params.extracted_n p in
  let sum = Lwe.add (Lwe.add u1 u2) (Lwe.trivial ~n:extracted_n (mu8 true)) in
  Keyswitch.apply ctx.keyset.keyswitch_key sum

let mux_gate ck s x y = mux_gate_in (default_context ck) s x y

(* ------------------------------------------------------------------ *)
(* Batched wave execution                                              *)
(* ------------------------------------------------------------------ *)

(* Executor-facing wrapper over the Bootstrap/Keyswitch batch kernels: the
   caller combines the phases of up to [cap] gates (all gate types share the
   mu = 1/8 sign bootstrap, so a batch may mix types) and gets the
   key-switched outputs back in one key-streaming pass per key. *)
type batch_context = {
  bkeyset : cloud_keyset;
  bboot : Bootstrap.batch;
  bextract : Lwe_array.t;  (* cap rows of extracted (k·N) samples *)
  bout : Lwe_array.t;  (* cap rows of key-switched (n) outputs *)
  mutable ks_blocks : int;
  mutable ks_launches : int;
}

let batch_context ck ~cap =
  let p = ck.cloud_params in
  let bboot = Bootstrap.batch_create p ~cap in
  {
    bkeyset = ck;
    bboot;
    bextract = Lwe_array.create ~n:(Params.extracted_n p) cap;
    bout = Lwe_array.create ~n:p.lwe.n cap;
    ks_blocks = 0;
    ks_launches = 0;
  }

let batch_capacity bc = Bootstrap.batch_capacity bc.bboot

let bootstrap_batch bc (combined : Lwe.sample array) =
  let p = bc.bkeyset.cloud_params in
  let extracted = Bootstrap.batch_with p bc.bboot bc.bkeyset.bootstrap_key ~mu:(Params.mu p) combined in
  if Array.length extracted = 0 then [||]
  else begin
    let out, blocks = Keyswitch.apply_batch bc.bkeyset.keyswitch_key extracted in
    bc.ks_blocks <- bc.ks_blocks + blocks;
    bc.ks_launches <- bc.ks_launches + 1;
    out
  end

(* The SoA wave pipeline: combined phase rows in, key-switched output rows
   out, zero per-gate record materialization in between.  The returned
   array is a view into the context's own scratch — valid until the next
   [bootstrap_batch_rows] call on this context, so the caller blits the
   rows it needs before relaunching. *)
let bootstrap_batch_rows bc (src : Lwe_array.t) =
  let count = Lwe_array.length src in
  if count = 0 then Lwe_array.slice bc.bout ~pos:0 ~len:0
  else begin
    if count > batch_capacity bc then
      invalid_arg "Gates.bootstrap_batch_rows: batch larger than the workspace capacity";
    let p = bc.bkeyset.cloud_params in
    let extracted = Lwe_array.slice bc.bextract ~pos:0 ~len:count in
    Bootstrap.batch_rows_into p bc.bboot bc.bkeyset.bootstrap_key ~mu:(Params.mu p) ~src
      ~dst:extracted;
    let out = Lwe_array.slice bc.bout ~pos:0 ~len:count in
    let blocks = Keyswitch.apply_batch_rows_into bc.bkeyset.keyswitch_key ~src:extracted ~dst:out in
    bc.ks_blocks <- bc.ks_blocks + blocks;
    bc.ks_launches <- bc.ks_launches + 1;
    out
  end

let combine_rows_into plan ~a ~arow ~b ~brow ~dst ~drow =
  Lwe_array.combine_into ~dst ~drow ~konst:plan.plan_const ~scale:plan.plan_scale
    ~sign_a:plan.plan_sign_a ~a ~arow ~sign_b:plan.plan_sign_b ~b ~brow

type batch_counters = {
  batch_launches : int;  (** batched bootstrap kernel launches *)
  batch_gates : int;  (** gates processed through those launches *)
  bsk_rows : int;  (** bootstrapping-key entries streamed, unit {!Bootstrap.row_bytes} *)
  ks_blocks : int;  (** key-switch table blocks streamed, unit {!Keyswitch.block_bytes} *)
}

let batch_counters bc =
  let bs = Bootstrap.batch_stats bc.bboot in
  {
    batch_launches = bs.Bootstrap.launches;
    batch_gates = bs.Bootstrap.gates_batched;
    bsk_rows = bs.Bootstrap.bsk_rows_streamed;
    ks_blocks = bc.ks_blocks;
  }

let reset_batch_counters bc =
  Bootstrap.batch_reset_stats bc.bboot;
  bc.ks_blocks <- 0;
  bc.ks_launches <- 0

module Wire = Pytfhe_util.Wire

let write_secret_keyset buf sk =
  Wire.write_magic buf "SKST";
  Params.write buf sk.params;
  Lwe.write_key buf sk.lwe_key;
  Tlwe.write_key buf sk.tlwe_key

let read_secret_keyset r =
  Wire.read_magic r "SKST";
  let params = Params.read r in
  let lwe_key = Lwe.read_key r in
  let tlwe_key = Tlwe.read_key r in
  { params; lwe_key; tlwe_key; extracted_key = Tlwe.extract_key tlwe_key }

let write_cloud_keyset buf ck =
  Wire.write_magic buf "CKST";
  Params.write buf ck.cloud_params;
  Bootstrap.write buf ck.bootstrap_key;
  Keyswitch.write buf ck.keyswitch_key

let read_cloud_keyset r =
  Wire.read_magic r "CKST";
  let cloud_params = Params.read r in
  let bootstrap_key = Bootstrap.read cloud_params r in
  let keyswitch_key = Keyswitch.read r in
  { cloud_params; bootstrap_key; keyswitch_key }

let half_torus_encode ~msize v = Torus.mod_switch_to v ~msize:(2 * msize)

let encrypt_message rng sk ~msize v =
  if v < 0 || v >= msize then invalid_arg "Gates.encrypt_message: message out of range";
  Lwe.encrypt rng sk.lwe_key ~stdev:sk.params.Params.lwe.Params.lwe_stdev
    (half_torus_encode ~msize v)

let decrypt_message sk ~msize c =
  Torus.mod_switch_from (Lwe.phase sk.lwe_key c) ~msize:(2 * msize) mod msize

let apply_lut ck ~msize ~table c =
  if Array.length table <> msize then invalid_arg "Gates.apply_lut: table arity mismatch";
  let p = ck.cloud_params in
  let f mu = half_torus_encode ~msize (((table.(mu) mod msize) + msize) mod msize) in
  let extracted = Bootstrap.programmable p ck.bootstrap_key ~msize f c in
  Keyswitch.apply ck.keyswitch_key extracted

(* ------------------------------------------------------------------ *)
(* Programmable LUT cells (lutdom encoding)                            *)
(* ------------------------------------------------------------------ *)

(* LUT cells carry bits in the "lutdom" encoding b/16 ∈ {0, 1/16} instead of
   the classic ±1/8: three lutdom bits combine as 4a+2b+c into a message
   mod 8 whose phase never leaves the negacyclic half-torus, which is what
   makes an arbitrary 3-input table one blind rotation.  A classic bit
   enters lutdom through an arity-1 cell (one sign bootstrap); a lutdom bit
   converts back to classic for free via [lut_to_classic]. *)

let lut_unit = Bootstrap.lut_amplitude

let encrypt_lut_bit rng sk bit =
  Lwe.encrypt rng sk.lwe_key ~stdev:sk.params.Params.lwe.Params.lwe_stdev
    (if bit then lut_unit else Torus.zero)

let decrypt_lut_bit sk c = Torus.mod_switch_from (Lwe.phase sk.lwe_key c) ~msize:16 = 1

let lut_constant ck bit =
  Lwe.trivial ~n:ck.cloud_params.lwe.n (if bit then lut_unit else Torus.zero)

let lut_to_classic c =
  (* 4·(b/16) − 1/8 = ±1/8: exact, no bootstrap.  Works at any dimension. *)
  let n = Array.length c.Lwe.a in
  Lwe.sub (Lwe.scale 4 c) (Lwe.trivial ~n (Torus.mod_switch_to 1 ~msize:8))

let lut_combine ~n ~arity (ops : Lwe.sample array) =
  (* φ = Σ 2^(2−i)·opsᵢ: operand 0 is the message's MSB.  The weight is
     independent of arity — lutdom carries bits at 1/16, so weight 2^(2−i)
     places message m at m/(2·msize) for every msize = 2^arity, which the
     doubled rotation modulus turns into exactly m slots.  Fixed operand
     order and exact torus adds keep every execution path bit-identical. *)
  if Array.length ops <> arity then invalid_arg "Gates.lut_combine: arity mismatch";
  if arity < 1 || arity > 3 then invalid_arg "Gates.lut_combine: arity out of range";
  let acc = ref (Lwe.trivial ~n Torus.zero) in
  for i = 0 to arity - 1 do
    let w = 1 lsl (2 - i) in
    let scaled = if w = 1 then ops.(i) else Lwe.scale w ops.(i) in
    acc := Lwe.add !acc scaled
  done;
  !acc

(* Arity-1 cells are a sign bootstrap in disguise: the classic input decides
   between table bits t₁ (input true) and t₀, via mu = (t₁−t₀)/32 and a
   post-keyswitch offset (t₁+t₀)/32 — landing exactly on t/16 lutdom. *)
let thirty_second v = Torus.mul_int v (Torus.mod_switch_to 1 ~msize:32)
let lut1_mu ~table = thirty_second (((table lsr 1) land 1) - (table land 1))
let lut1_post ~table = thirty_second (((table lsr 1) land 1) + (table land 1))

let lut_select ~n ~msize ~table ind =
  (* Σ indicators of the table's set bits, ascending message order. *)
  let acc = ref (Lwe.trivial ~n Torus.zero) in
  for m = 0 to msize - 1 do
    if (table lsr m) land 1 = 1 then acc := Lwe.add !acc ind.(m)
  done;
  !acc

let lut_indicators_in ctx ~arity ops =
  let p = ctx.keyset.cloud_params in
  let combined = lut_combine ~n:p.lwe.n ~arity ops in
  Bootstrap.lut_indicators p ctx.scratch ctx.keyset.bootstrap_key ~msize:(1 lsl arity) combined

let lut_select_in ctx ~msize ~table ind =
  let p = ctx.keyset.cloud_params in
  Keyswitch.apply ctx.keyset.keyswitch_key
    (lut_select ~n:(Params.extracted_n p) ~msize ~table ind)

let lut1_in ctx ~table c =
  let p = ctx.keyset.cloud_params in
  let u = Bootstrap.bootstrap_with p ctx.scratch ctx.keyset.bootstrap_key ~mu:(lut1_mu ~table) c in
  Lwe.add (Keyswitch.apply ctx.keyset.keyswitch_key u) (Lwe.trivial ~n:p.lwe.n (lut1_post ~table))

let reencode_in ctx c = lut1_in ctx ~table:0b10 c

let lut2_in ctx ~table a b =
  lut_select_in ctx ~msize:4 ~table (lut_indicators_in ctx ~arity:2 [| a; b |])

let lut3_in ctx ~table a b c =
  lut_select_in ctx ~msize:8 ~table (lut_indicators_in ctx ~arity:3 [| a; b; c |])

let lut2_multi_in ctx ~tables a b =
  let ind = lut_indicators_in ctx ~arity:2 [| a; b |] in
  Array.map (fun table -> lut_select_in ctx ~msize:4 ~table ind) tables

let lut3_multi_in ctx ~tables a b c =
  let ind = lut_indicators_in ctx ~arity:3 [| a; b; c |] in
  Array.map (fun table -> lut_select_in ctx ~msize:8 ~table ind) tables

let lut_cell_in ctx ~arity ~table ops =
  if Array.length ops <> arity then invalid_arg "Gates.lut_cell_in: operand count mismatch";
  match arity with
  | 1 -> lut1_in ctx ~table ops.(0)
  | 2 | 3 -> lut_select_in ctx ~msize:(1 lsl arity) ~table (lut_indicators_in ctx ~arity ops)
  | _ -> invalid_arg "Gates.lut_cell_in: arity must be 1, 2 or 3"

let reencode ck c = reencode_in (default_context ck) c
let lut1 ck ~table c = lut1_in (default_context ck) ~table c
let lut2 ck ~table a b = lut2_in (default_context ck) ~table a b
let lut3 ck ~table a b c = lut3_in (default_context ck) ~table a b c
let lut2_multi ck ~tables a b = lut2_multi_in (default_context ck) ~tables a b
let lut3_multi ck ~tables a b c = lut3_multi_in (default_context ck) ~tables a b c

(* Batched LUT-cell execution: one mixed-job rotation batch (key streamed
   once), selects in the extracted domain, then one flat key-switch batch
   over every output.  Per cell the op sequence matches the scalar [_in]
   path exactly, so outputs are bit-identical to it. *)
type batch_cell =
  | Cell_sign of { mu : Torus.t; post : Torus.t }
  | Cell_lut of { arity : int; tables : int array }

let sign_cell ~table = Cell_sign { mu = lut1_mu ~table; post = lut1_post ~table }

let bootstrap_batch_cells bc (cells : batch_cell array) (combined : Lwe.sample array) =
  let count = Array.length cells in
  if Array.length combined <> count then
    invalid_arg "Gates.bootstrap_batch_cells: cell/sample mismatch";
  if count = 0 then [||]
  else begin
    let p = bc.bkeyset.cloud_params in
    let jobs =
      Array.map
        (function
          | Cell_sign { mu; _ } -> Bootstrap.Job_sign mu
          | Cell_lut { arity; _ } -> Bootstrap.Job_lut (1 lsl arity))
        cells
    in
    let extracted = Bootstrap.batch_jobs p bc.bboot bc.bkeyset.bootstrap_key jobs combined in
    let en = Params.extracted_n p in
    let selected =
      Array.map2
        (fun cell ind ->
          match cell with
          | Cell_sign _ -> [| ind.(0) |]
          | Cell_lut { arity; tables } ->
            let msize = 1 lsl arity in
            Array.map (fun table -> lut_select ~n:en ~msize ~table ind) tables)
        cells extracted
    in
    let flat = Array.concat (Array.to_list selected) in
    let switched =
      if Array.length flat = 0 then [||]
      else begin
        let out, blocks = Keyswitch.apply_batch bc.bkeyset.keyswitch_key flat in
        bc.ks_blocks <- bc.ks_blocks + blocks;
        bc.ks_launches <- bc.ks_launches + 1;
        out
      end
    in
    let n = p.lwe.n in
    let pos = ref 0 in
    Array.map2
      (fun cell sel ->
        let len = Array.length sel in
        let out = Array.sub switched !pos len in
        pos := !pos + len;
        (match cell with
        | Cell_sign { post; _ } -> out.(0) <- Lwe.add out.(0) (Lwe.trivial ~n post)
        | Cell_lut _ -> ());
        out)
      cells selected
  end
