module Wire = Pytfhe_util.Wire

(* Struct-of-arrays LWE ciphertext storage: a wave of [len] samples of
   dimension [n] as one flat int32 Bigarray of masks (row-major, row r at
   offset r·n) plus a flat body vector.  This is the native currency of the
   batched kernels — the interchanged loops sweep the batch dimension at
   unit stride while a bootstrapping/key-switch key row stays resident —
   and of the dist wire, where a whole shard ships as two flat blocks.

   Torus elements are canonical values in [0, 2^32), so the int32 cells
   round-trip exactly: [set32] truncates to 32 bits and [get32] reads them
   back with [land 0xFFFFFFFF].  Every arithmetic op below goes through
   [Torus], so a row op performs the identical operation sequence as the
   corresponding [Lwe.sample] op — the bit-exactness the batched executors
   are tested against. *)

type t = { n : int; len : int; masks : Wire.i32_buffer; bodies : Wire.i32_buffer }

(* In native code both directions are allocation-free: the boxing
   primitives are consumed directly, so the compiler unboxes them. *)
let[@inline] unsafe_get32 (ba : Wire.i32_buffer) i =
  Int32.to_int (Bigarray.Array1.unsafe_get ba i) land 0xFFFFFFFF

let[@inline] unsafe_set32 (ba : Wire.i32_buffer) i v =
  Bigarray.Array1.unsafe_set ba i (Int32.of_int v)

let create ~n len =
  if n < 1 then invalid_arg "Lwe_array.create: dimension must be >= 1";
  if len < 0 then invalid_arg "Lwe_array.create: negative length";
  let masks = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (len * n) in
  let bodies = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout len in
  Bigarray.Array1.fill masks 0l;
  Bigarray.Array1.fill bodies 0l;
  { n; len; masks; bodies }

let length t = t.len
let dim t = t.n

let[@inline] check_row t r who =
  if r < 0 || r >= t.len then invalid_arg (who ^ ": row out of bounds")

(* O(1) non-copying view: the slice aliases the parent's storage, so writes
   through either are visible in both. *)
let slice t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Lwe_array.slice: out of bounds";
  {
    n = t.n;
    len;
    masks = Bigarray.Array1.sub t.masks (pos * t.n) (len * t.n);
    bodies = Bigarray.Array1.sub t.bodies pos len;
  }

let[@inline] mask t r i = unsafe_get32 t.masks ((r * t.n) + i)
let[@inline] body t r = unsafe_get32 t.bodies r

let get t r =
  check_row t r "Lwe_array.get";
  let off = r * t.n in
  { Lwe.a = Array.init t.n (fun i -> unsafe_get32 t.masks (off + i)); b = unsafe_get32 t.bodies r }

let set t r (s : Lwe.sample) =
  check_row t r "Lwe_array.set";
  if Array.length s.Lwe.a <> t.n then invalid_arg "Lwe_array.set: dimension mismatch";
  let off = r * t.n in
  for i = 0 to t.n - 1 do
    unsafe_set32 t.masks (off + i) (Array.unsafe_get s.Lwe.a i)
  done;
  unsafe_set32 t.bodies r s.Lwe.b

let set_trivial t r mu =
  check_row t r "Lwe_array.set_trivial";
  let off = r * t.n in
  for i = 0 to t.n - 1 do
    unsafe_set32 t.masks (off + i) 0
  done;
  unsafe_set32 t.bodies r mu

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  if src.n <> dst.n then invalid_arg "Lwe_array.blit: dimension mismatch";
  if len < 0 || src_pos < 0 || dst_pos < 0 || src_pos + len > src.len || dst_pos + len > dst.len
  then invalid_arg "Lwe_array.blit: out of bounds";
  if len > 0 then begin
    Bigarray.Array1.blit
      (Bigarray.Array1.sub src.masks (src_pos * src.n) (len * src.n))
      (Bigarray.Array1.sub dst.masks (dst_pos * dst.n) (len * dst.n));
    Bigarray.Array1.blit
      (Bigarray.Array1.sub src.bodies src_pos len)
      (Bigarray.Array1.sub dst.bodies dst_pos len)
  end

let of_samples ~n ss =
  let t = create ~n (Array.length ss) in
  Array.iteri (set t) ss;
  t

let to_samples t = Array.init t.len (get t)

(* Row-granular linear combinations.  Every element is read from both
   sources before the destination element is written, so a destination row
   may alias either source row (including through overlapping slices). *)

let check_binop who ~dst ~drow ~a ~arow ~b ~brow =
  if a.n <> dst.n || b.n <> dst.n then invalid_arg (who ^ ": dimension mismatch");
  check_row dst drow who;
  check_row a arow who;
  check_row b brow who

let add_into ~dst ~drow ~a ~arow ~b ~brow =
  check_binop "Lwe_array.add_into" ~dst ~drow ~a ~arow ~b ~brow;
  let n = dst.n in
  let od = drow * n and oa = arow * n and ob = brow * n in
  for i = 0 to n - 1 do
    unsafe_set32 dst.masks (od + i)
      (Torus.add (unsafe_get32 a.masks (oa + i)) (unsafe_get32 b.masks (ob + i)))
  done;
  unsafe_set32 dst.bodies drow (Torus.add (unsafe_get32 a.bodies arow) (unsafe_get32 b.bodies brow))

let sub_into ~dst ~drow ~a ~arow ~b ~brow =
  check_binop "Lwe_array.sub_into" ~dst ~drow ~a ~arow ~b ~brow;
  let n = dst.n in
  let od = drow * n and oa = arow * n and ob = brow * n in
  for i = 0 to n - 1 do
    unsafe_set32 dst.masks (od + i)
      (Torus.sub (unsafe_get32 a.masks (oa + i)) (unsafe_get32 b.masks (ob + i)))
  done;
  unsafe_set32 dst.bodies drow (Torus.sub (unsafe_get32 a.bodies arow) (unsafe_get32 b.bodies brow))

let scale_into ~dst ~drow k ~src ~srow =
  if src.n <> dst.n then invalid_arg "Lwe_array.scale_into: dimension mismatch";
  check_row dst drow "Lwe_array.scale_into";
  check_row src srow "Lwe_array.scale_into";
  let n = dst.n in
  let od = drow * n and os = srow * n in
  for i = 0 to n - 1 do
    unsafe_set32 dst.masks (od + i) (Torus.mul_int k (unsafe_get32 src.masks (os + i)))
  done;
  unsafe_set32 dst.bodies drow (Torus.mul_int k (unsafe_get32 src.bodies srow))

let neg_into ~dst ~drow ~src ~srow =
  if src.n <> dst.n then invalid_arg "Lwe_array.neg_into: dimension mismatch";
  check_row dst drow "Lwe_array.neg_into";
  check_row src srow "Lwe_array.neg_into";
  let n = dst.n in
  let od = drow * n and os = srow * n in
  for i = 0 to n - 1 do
    unsafe_set32 dst.masks (od + i) (Torus.neg (unsafe_get32 src.masks (os + i)))
  done;
  unsafe_set32 dst.bodies drow (Torus.neg (unsafe_get32 src.bodies srow))

(* The fused gate phase combination dst ← konst ± scale·a ± scale·b.  The
   intermediate reductions happen in the same order as the scalar
   [Gates.combine] (trivial constant, then ±scaled a, then ±scaled b), and
   torus arithmetic is exact mod 2^32, so the row is bit-identical to the
   record path whatever the storage layout. *)
let combine_into ~dst ~drow ~konst ~scale ~sign_a ~a ~arow ~sign_b ~b ~brow =
  check_binop "Lwe_array.combine_into" ~dst ~drow ~a ~arow ~b ~brow;
  let n = dst.n in
  let od = drow * n and oa = arow * n and ob = brow * n in
  for i = 0 to n - 1 do
    let sa = Torus.mul_int scale (unsafe_get32 a.masks (oa + i)) in
    let sb = Torus.mul_int scale (unsafe_get32 b.masks (ob + i)) in
    let v = if sign_a > 0 then sa else Torus.neg sa in
    let v = if sign_b > 0 then Torus.add v sb else Torus.sub v sb in
    unsafe_set32 dst.masks (od + i) v
  done;
  let sa = Torus.mul_int scale (unsafe_get32 a.bodies arow) in
  let sb = Torus.mul_int scale (unsafe_get32 b.bodies brow) in
  let v = if sign_a > 0 then Torus.add konst sa else Torus.sub konst sa in
  let v = if sign_b > 0 then Torus.add v sb else Torus.sub v sb in
  unsafe_set32 dst.bodies drow v

(* Wire frame: header (magic, dimension, length) then the two flat i32
   blocks.  Byte-identical ciphertexts round-trip because the canonical
   torus values are exactly the stored 32-bit words. *)

let max_wire_dim = 1 lsl 24
let max_wire_len = 1 lsl 24

let write buf t =
  Wire.write_magic buf "LARR";
  Wire.write_i64 buf t.n;
  Wire.write_i64 buf t.len;
  Wire.write_i32_bigarray buf t.masks;
  Wire.write_i32_bigarray buf t.bodies

let read r =
  Wire.read_magic r "LARR";
  let n = Wire.read_i64 r in
  let len = Wire.read_i64 r in
  if n < 1 || n > max_wire_dim then
    raise (Wire.Corrupt (Printf.sprintf "Lwe_array: implausible dimension %d" n));
  if len < 0 || len > max_wire_len then
    raise (Wire.Corrupt (Printf.sprintf "Lwe_array: implausible length %d" len));
  let t = create ~n len in
  Wire.read_i32_bigarray_into r t.masks;
  Wire.read_i32_bigarray_into r t.bodies;
  t
