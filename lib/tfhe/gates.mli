(** Bootstrapped boolean gates — the TFHE-library-style public API.

    The client holds a {!secret_keyset} (encrypt/decrypt); the server holds
    the {!cloud_keyset} (bootstrapping + key-switching keys) and evaluates
    gates on ciphertexts it cannot read.  Every two-input gate performs one
    bootstrapping; [not_gate] and [constant] are noiseless. *)

type secret_keyset = {
  params : Params.t;
  lwe_key : Lwe.key;
  tlwe_key : Tlwe.key;
  extracted_key : Lwe.key;
}

type cloud_keyset = {
  cloud_params : Params.t;
  bootstrap_key : Bootstrap.key;
  keyswitch_key : Keyswitch.key;
}

val key_gen : Pytfhe_util.Rng.t -> Params.t -> secret_keyset * cloud_keyset
(** Generate the client/server key pair. *)

val encrypt_bit : Pytfhe_util.Rng.t -> secret_keyset -> bool -> Lwe.sample
(** Encrypt a boolean as ±1/8 with fresh noise. *)

val decrypt_bit : secret_keyset -> Lwe.sample -> bool
(** Recover a boolean from a gate output. *)

val constant : cloud_keyset -> bool -> Lwe.sample
(** Noiseless trivial encryption of a public constant. *)

val not_gate : cloud_keyset -> Lwe.sample -> Lwe.sample
(** Negation; noiseless, no bootstrapping. *)

val and_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
val or_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
val xor_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
val nand_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
val nor_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
val xnor_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample

val andny_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
(** [andny a b] = (¬a) ∧ b. *)

val andyn_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
(** [andyn a b] = a ∧ (¬b). *)

val orny_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
(** [orny a b] = (¬a) ∨ b. *)

val oryn_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
(** [oryn a b] = a ∨ (¬b). *)

val mux_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample -> Lwe.sample
(** [mux s x y] = if s then x else y; two bootstrappings and one key
    switch, as in the reference library. *)

(** {2 Per-thread evaluation contexts}

    The [cloud_keyset] variants above route every bootstrapping through the
    scratch buffers embedded in the key — correct sequentially, but a data
    race if several domains evaluate gates at once.  A {!context} carries a
    private copy of that scratch; create one per worker domain and use the
    [_in] variants.  They are bit-exact with the keyset variants. *)

type context

val context : cloud_keyset -> context
(** Fresh private scratch (workspace + test-vector buffer) over a shared
    keyset.  Also precomputes the FFT caches for the ring degree. *)

val default_context : cloud_keyset -> context
(** The scratch embedded in the bootstrapping key — what the plain keyset
    variants use.  Single-threaded use only. *)

val bootstrap_in : context -> Lwe.sample -> Lwe.sample
(** Sign bootstrap + key switch of an already-combined ciphertext. *)

val and_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val or_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val xor_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val nand_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val nor_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val xnor_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val andny_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val andyn_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val orny_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val oryn_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample

val write_secret_keyset : Pytfhe_util.Wire.writer -> secret_keyset -> unit
val read_secret_keyset : Pytfhe_util.Wire.reader -> secret_keyset

val write_cloud_keyset : Pytfhe_util.Wire.writer -> cloud_keyset -> unit
(** The evaluation keys the client ships to the server (bootstrapping key +
    key-switching key + parameters). *)

val read_cloud_keyset : Pytfhe_util.Wire.reader -> cloud_keyset

(** {2 Multi-value messages via programmable bootstrapping}

    Beyond boolean gates, TFHE can carry a small integer μ ∈ [0, msize) in
    the half-torus encoding μ/(2·msize) and apply an arbitrary table lookup
    during a single bootstrapping. *)

val encrypt_message : Pytfhe_util.Rng.t -> secret_keyset -> msize:int -> int -> Lwe.sample
val decrypt_message : secret_keyset -> msize:int -> Lwe.sample -> int

val apply_lut : cloud_keyset -> msize:int -> table:int array -> Lwe.sample -> Lwe.sample
(** [apply_lut ck ~msize ~table c] returns an encryption of
    [table.(μ) mod msize] with fresh noise (one bootstrapping + one key
    switch).  [Array.length table] must equal [msize]. *)
