(** Bootstrapped boolean gates — the TFHE-library-style public API.

    The client holds a {!secret_keyset} (encrypt/decrypt); the server holds
    the {!cloud_keyset} (bootstrapping + key-switching keys) and evaluates
    gates on ciphertexts it cannot read.  Every two-input gate performs one
    bootstrapping; [not_gate] and [constant] are noiseless. *)

type secret_keyset = {
  params : Params.t;
  lwe_key : Lwe.key;
  tlwe_key : Tlwe.key;
  extracted_key : Lwe.key;
}

type cloud_keyset = {
  cloud_params : Params.t;
  bootstrap_key : Bootstrap.key;
  keyswitch_key : Keyswitch.key;
}

val key_gen : Pytfhe_util.Rng.t -> Params.t -> secret_keyset * cloud_keyset
(** Generate the client/server key pair. *)

val encrypt_bit : Pytfhe_util.Rng.t -> secret_keyset -> bool -> Lwe.sample
(** Encrypt a boolean as ±1/8 with fresh noise. *)

val decrypt_bit : secret_keyset -> Lwe.sample -> bool
(** Recover a boolean from a gate output. *)

val constant : cloud_keyset -> bool -> Lwe.sample
(** Noiseless trivial encryption of a public constant. *)

val not_gate : cloud_keyset -> Lwe.sample -> Lwe.sample
(** Negation; noiseless, no bootstrapping. *)

val and_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
val or_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
val xor_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
val nand_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
val nor_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
val xnor_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample

val andny_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
(** [andny a b] = (¬a) ∧ b. *)

val andyn_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
(** [andyn a b] = a ∧ (¬b). *)

val orny_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
(** [orny a b] = (¬a) ∨ b. *)

val oryn_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample
(** [oryn a b] = a ∨ (¬b). *)

val mux_gate : cloud_keyset -> Lwe.sample -> Lwe.sample -> Lwe.sample -> Lwe.sample
(** [mux s x y] = if s then x else y; two bootstrappings and one key
    switch, as in the reference library. *)

(** {2 Gate combine plans}

    Every two-input gate is the same pipeline: a linear phase combination
    (captured by a {!combine_plan}), the sign bootstrap with μ = 1/8, and a
    key switch.  Exposing the combination as data lets the batched executors
    mix gate types in one bootstrap batch.  Torus arithmetic is exact
    mod 2³², so {!combine} is bit-identical to the historical per-gate
    combination code. *)

type combine_plan = {
  plan_const : Torus.t;  (** trivial offset added to the phase *)
  plan_scale : int;  (** input scaling (2 for XOR/XNOR, else 1) *)
  plan_sign_a : int;  (** +1 to add input a, −1 to subtract *)
  plan_sign_b : int;  (** +1 to add input b, −1 to subtract *)
}

val nand_plan : combine_plan
val and_plan : combine_plan
val or_plan : combine_plan
val nor_plan : combine_plan
val andny_plan : combine_plan
val andyn_plan : combine_plan
val orny_plan : combine_plan
val oryn_plan : combine_plan
val xor_plan : combine_plan
val xnor_plan : combine_plan

val combine : n:int -> combine_plan -> Lwe.sample -> Lwe.sample -> Lwe.sample
(** The linear phase combination [const ± scale·a ± scale·b] at LWE
    dimension [n]; feed the result to {!bootstrap_in} (scalar) or
    {!bootstrap_batch} (batched). *)

(** {2 Per-thread evaluation contexts}

    The [cloud_keyset] variants above route every bootstrapping through the
    scratch buffers embedded in the key — correct sequentially, but a data
    race if several domains evaluate gates at once.  A {!context} carries a
    private copy of that scratch; create one per worker domain and use the
    [_in] variants.  They are bit-exact with the keyset variants. *)

type context

val context : cloud_keyset -> context
(** Fresh private scratch (workspace + test-vector buffer) over a shared
    keyset.  Also precomputes the FFT caches for the ring degree. *)

val default_context : cloud_keyset -> context
(** The scratch embedded in the bootstrapping key — what the plain keyset
    variants use.  Single-threaded use only. *)

val bootstrap_in : context -> Lwe.sample -> Lwe.sample
(** Sign bootstrap + key switch of an already-combined ciphertext. *)

val and_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val or_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val xor_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val nand_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val nor_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val xnor_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val andny_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val andyn_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val orny_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample
val oryn_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample

val mux_gate_in : context -> Lwe.sample -> Lwe.sample -> Lwe.sample -> Lwe.sample
(** {!mux_gate} through an explicit context: both blind rotations share the
    context scratch (sample extraction allocates, so the first result
    survives the second rotation), and one key switch finishes.  Bit-exact
    with {!mux_gate}. *)

(** {2 Batched wave execution}

    A {!batch_context} wraps the {!Bootstrap.batch} key-streaming kernel and
    the batched key switch for executor use: combine the phases of up to
    [cap] gates (mixed gate types are fine — they all use the μ = 1/8 sign
    bootstrap), then one {!bootstrap_batch} call streams the bootstrapping
    key and the key-switch table once each for the whole batch.  Outputs are
    ciphertext-bit-exact with the scalar [_in] gates.  Like {!context},
    a batch context is private to one domain. *)

type batch_context

val batch_context : cloud_keyset -> cap:int -> batch_context
(** Batch workspace for up to [cap] ≥ 1 gates per launch. *)

val batch_capacity : batch_context -> int

val bootstrap_batch : batch_context -> Lwe.sample array -> Lwe.sample array
(** Sign-bootstrap + key-switch every already-combined ciphertext of the
    array (length ≤ capacity; a short final batch is fine).  Element [i] is
    bit-identical to [bootstrap_in ctx arr.(i)]. *)

val bootstrap_batch_rows : batch_context -> Lwe_array.t -> Lwe_array.t
(** The struct-of-arrays {!bootstrap_batch}: sign-bootstrap + key-switch
    every row of an already-combined {!Lwe_array} (length ≤ capacity)
    through the row-batched kernels, with no per-gate record
    materialization.  Row [i] of the result is bit-identical to
    [bootstrap_in ctx] of row [i].  The returned array is a slice of the
    context's own output scratch — valid until the next call on this
    context; blit the rows out before relaunching. *)

val combine_rows_into :
  combine_plan ->
  a:Lwe_array.t ->
  arow:int ->
  b:Lwe_array.t ->
  brow:int ->
  dst:Lwe_array.t ->
  drow:int ->
  unit
(** The row form of {!combine}: build a gate's phase combination directly
    into a destination row ({!Lwe_array.combine_into} with the plan's
    constants), bit-identical to the record path. *)

type batch_counters = {
  batch_launches : int;  (** batched bootstrap kernel launches *)
  batch_gates : int;  (** gates processed through those launches *)
  bsk_rows : int;  (** bootstrapping-key entries streamed, unit {!Bootstrap.row_bytes} *)
  ks_blocks : int;  (** key-switch table blocks streamed, unit {!Keyswitch.block_bytes} *)
}

val batch_counters : batch_context -> batch_counters
(** Cumulative key-traffic counters since the last reset — the executors
    drain these at wave barriers into the obs layer. *)

val reset_batch_counters : batch_context -> unit

val write_secret_keyset : Pytfhe_util.Wire.writer -> secret_keyset -> unit
val read_secret_keyset : Pytfhe_util.Wire.reader -> secret_keyset

val write_cloud_keyset : Pytfhe_util.Wire.writer -> cloud_keyset -> unit
(** The evaluation keys the client ships to the server (bootstrapping key +
    key-switching key + parameters). *)

val read_cloud_keyset : Pytfhe_util.Wire.reader -> cloud_keyset

(** {2 Multi-value messages via programmable bootstrapping}

    Beyond boolean gates, TFHE can carry a small integer μ ∈ [0, msize) in
    the half-torus encoding μ/(2·msize) and apply an arbitrary table lookup
    during a single bootstrapping. *)

val encrypt_message : Pytfhe_util.Rng.t -> secret_keyset -> msize:int -> int -> Lwe.sample
val decrypt_message : secret_keyset -> msize:int -> Lwe.sample -> int

val apply_lut : cloud_keyset -> msize:int -> table:int array -> Lwe.sample -> Lwe.sample
(** [apply_lut ck ~msize ~table c] returns an encryption of
    [table.(μ) mod msize] with fresh noise (one bootstrapping + one key
    switch).  [Array.length table] must equal [msize]. *)

(** {2 Programmable LUT cells}

    First-class 1-/2-/3-input boolean LUT cells: any k-input function is one
    blind rotation.  LUT cells carry bits in the {e lutdom} encoding
    b/16 ∈ {0, 1/16} (not the classic ±1/8): 2/3 lutdom bits combine
    linearly as 2a+b / 4a+2b+c into a message mod 4/8 — operand 0 is the
    MSB — and the table, an [arity]-th power-of-two-bit integer whose bit m
    is the output on message m, is applied as a sum of extracted indicator
    slots of one table-independent staircase rotation (multi-value
    bootstrapping: the [_multi] variants reuse one rotation for several
    tables).  A classic bit enters lutdom through an arity-1 cell (one sign
    bootstrap); lutdom converts back to classic for free
    ({!lut_to_classic}). *)

val lut_unit : Torus.t
(** The lutdom unit 1/16 (a true bit's torus value). *)

val encrypt_lut_bit : Pytfhe_util.Rng.t -> secret_keyset -> bool -> Lwe.sample
(** Fresh lutdom encryption of a boolean (0 or 1/16). *)

val decrypt_lut_bit : secret_keyset -> Lwe.sample -> bool
(** Decode a lutdom bit (phase rounds to 1/16 ⇒ true). *)

val lut_constant : cloud_keyset -> bool -> Lwe.sample
(** Noiseless trivial lutdom encryption of a public bit. *)

val lut_to_classic : Lwe.sample -> Lwe.sample
(** Exact lutdom→classic view 4y − 1/8 = ±1/8; no bootstrap, any
    dimension. *)

val lut_combine : n:int -> arity:int -> Lwe.sample array -> Lwe.sample
(** The linear message combination Σ 2^(2−i)·opsᵢ of lutdom operands
    (operand 0 is the MSB) at LWE dimension [n]; feed it to the indicator
    rotation.  The weight 2^(2−i) is independent of arity: lutdom bits sit
    at 1/16, so it lands message m on m/(2·msize) — one rotation slot per
    message step — for msize 2, 4 and 8 alike. *)

val lut1_mu : table:int -> Torus.t
(** Sign-bootstrap target (t₁−t₀)/32 of an arity-1 cell with 2-bit
    [table]. *)

val lut1_post : table:int -> Torus.t
(** Post-key-switch offset (t₁+t₀)/32 of an arity-1 cell. *)

val lut_select : n:int -> msize:int -> table:int -> Lwe.sample array -> Lwe.sample
(** Sum the indicators of the table's set bits (ascending message order) at
    dimension [n]; runs before the key switch. *)

val lut_indicators_in : context -> arity:int -> Lwe.sample array -> Lwe.sample array
(** Combine lutdom operands and run the indicator rotation: element [m]
    encrypts [\[message = m\]/16] under the extracted key. *)

val lut_select_in : context -> msize:int -> table:int -> Lwe.sample array -> Lwe.sample
(** {!lut_select} + key switch: one finished lutdom output per table. *)

val lut1_in : context -> table:int -> Lwe.sample -> Lwe.sample
(** Arity-1 LUT cell: classic input, lutdom output, one sign bootstrap.
    Table 0b10 is the plain classic→lutdom reencode. *)

val reencode_in : context -> Lwe.sample -> Lwe.sample
(** [lut1_in ~table:0b10]: classic bit → lutdom bit. *)

val lut2_in : context -> table:int -> Lwe.sample -> Lwe.sample -> Lwe.sample
val lut3_in : context -> table:int -> Lwe.sample -> Lwe.sample -> Lwe.sample -> Lwe.sample
val lut2_multi_in : context -> tables:int array -> Lwe.sample -> Lwe.sample -> Lwe.sample array

val lut3_multi_in :
  context -> tables:int array -> Lwe.sample -> Lwe.sample -> Lwe.sample -> Lwe.sample array
(** One blind rotation, one output per table (multi-value bootstrapping). *)

val lut_cell_in : context -> arity:int -> table:int -> Lwe.sample array -> Lwe.sample
(** Uniform executor entry: arity-1 cells take a classic operand, arity-2/3
    cells take lutdom operands.  Raises [Invalid_argument] outside
    arity 1–3 or on an operand-count mismatch. *)

val reencode : cloud_keyset -> Lwe.sample -> Lwe.sample
val lut1 : cloud_keyset -> table:int -> Lwe.sample -> Lwe.sample
val lut2 : cloud_keyset -> table:int -> Lwe.sample -> Lwe.sample -> Lwe.sample
val lut3 : cloud_keyset -> table:int -> Lwe.sample -> Lwe.sample -> Lwe.sample -> Lwe.sample
val lut2_multi : cloud_keyset -> tables:int array -> Lwe.sample -> Lwe.sample -> Lwe.sample array

val lut3_multi :
  cloud_keyset -> tables:int array -> Lwe.sample -> Lwe.sample -> Lwe.sample -> Lwe.sample array

(** {3 Batched LUT-cell execution}

    The wave executors batch LUT cells through one mixed-job rotation (key
    streamed once per batch), per-table selects, and one flat key-switch
    batch — bit-identical to the scalar [_in] cells. *)

type batch_cell =
  | Cell_sign of { mu : Torus.t; post : Torus.t }
      (** arity-1 cell: sign bootstrap to ±mu, then add [post] *)
  | Cell_lut of { arity : int; tables : int array }
      (** one indicator rotation, one output per table *)

val sign_cell : table:int -> batch_cell
(** The {!Cell_sign} of an arity-1 cell's 2-bit table. *)

val bootstrap_batch_cells :
  batch_context -> batch_cell array -> Lwe.sample array -> Lwe.sample array array
(** [bootstrap_batch_cells bc cells combined]: element [i] of the result
    holds cell [i]'s outputs (one per table; a single element for
    [Cell_sign]).  [combined.(i)] is the cell's already-combined input —
    the classic operand for [Cell_sign], the {!lut_combine} sum (uncentred)
    for [Cell_lut].  Length ≤ the batch capacity. *)
