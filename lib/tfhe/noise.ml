type budget = { variance : float }

let fresh (p : Params.t) =
  let s = p.lwe.lwe_stdev in
  { variance = s *. s }

let add a b = { variance = a.variance +. b.variance }

let scale k b = { variance = float_of_int (k * k) *. b.variance }

let mod_switch (p : Params.t) b =
  (* Rounding each of the n mask coefficients (scaled by a key bit with
     mean 1/2) plus the body to a multiple of 1/2N adds a uniform error of
     width 1/2N each: variance 1/(12·(2N)²) per rounded coefficient. *)
  let n2 = float_of_int (2 * p.tlwe.ring_n) in
  let per_coeff = 1.0 /. (12.0 *. n2 *. n2) in
  let effective = (float_of_int p.lwe.n /. 2.0) +. 1.0 in
  { variance = b.variance +. (effective *. per_coeff) }

let blind_rotation (p : Params.t) =
  (* Standard CGGI bound: each of the n CMux steps contributes
     (k+1)·l·N·β²·σ_bk² from the TGSW noise plus (1+kN)·ε² from the gadget
     rounding, with β = Bg/2 and ε = Bg^{-l}/2. *)
  let n = float_of_int p.lwe.n in
  let big_n = float_of_int p.tlwe.ring_n in
  let k = float_of_int p.tlwe.k in
  let l = float_of_int p.tgsw.l in
  let beta = float_of_int (Params.bg p) /. 2.0 in
  let eps = 0.5 /. (float_of_int (Params.bg p) ** l) in
  let sigma_bk = p.tlwe.tlwe_stdev in
  let per_step =
    ((k +. 1.0) *. l *. big_n *. beta *. beta *. sigma_bk *. sigma_bk)
    +. ((1.0 +. (k *. big_n)) *. eps *. eps)
  in
  { variance = n *. per_step }

let key_switch (p : Params.t) b =
  (* N_in·t encryptions of noise σ_ks plus the dropped-precision rounding of
     each of the N_in coefficients. *)
  let n_in = float_of_int (Params.extracted_n p) in
  let t = float_of_int p.ks.t in
  let sigma = p.lwe.lwe_stdev in
  let dropped = 2.0 ** float_of_int (-(p.ks.t * p.ks.base_bit)) in
  let rounding = dropped *. dropped /. 12.0 in
  { variance = b.variance +. (n_in *. t *. sigma *. sigma) +. (n_in /. 2.0 *. rounding) }

let transform_error (p : Params.t) =
  (* Numerical error of the polynomial-product backend itself, on top of
     the algebraic CGGI bounds.  The NTT computes every product exactly in
     ℤ[X]/(Xᴺ+1) before the mod-2³² reduction, so it contributes nothing.
     The FFT accumulates rounding at double precision: each external
     product sums (k+1)·l spectra of magnitude ≤ N·β·2³¹ (torus units
     ≤ N·β/2), and the transform pipeline loses ~√(log₂ N) ulps per bin.
     Modelled per output coefficient as δ·2⁻⁵³·√(log₂ N) with
     δ = (k+1)·l·N·β/2, taken as an independent error on each of the n
     CMux steps.  This is conservative but pessimistic by orders of
     magnitude less than the gadget term, so it never flips a verdict —
     its role is to make the FFT/NTT precision difference visible in the
     budget. *)
  match p.transform with
  | Pytfhe_fft.Transform.Ntt -> { variance = 0.0 }
  | Pytfhe_fft.Transform.Fft ->
    let n = float_of_int p.lwe.n in
    let big_n = float_of_int p.tlwe.ring_n in
    let k = float_of_int p.tlwe.k in
    let l = float_of_int p.tgsw.l in
    let beta = float_of_int (Params.bg p) /. 2.0 in
    let delta = (k +. 1.0) *. l *. big_n *. beta /. 2.0 in
    let per_coeff = delta *. (2.0 ** -53.0) *. sqrt (log big_n /. log 2.0) in
    { variance = n *. per_coeff *. per_coeff }

let gate_output p = key_switch p (add (blind_rotation p) (transform_error p))

let worst_gate_input p =
  (* Two gate outputs feed the next gate; XOR-style combinations scale the
     pair by 2 before bootstrapping, and the mod switch adds its rounding. *)
  let out = gate_output p in
  mod_switch p (scale 2 (add out out))

(* Complementary error function, Abramowitz & Stegun 7.1.26 (|err| < 1.5e-7). *)
let erfc x =
  let ax = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. ax)) in
  let poly =
    t
    *. (0.254829592
       +. (t *. (-0.284496736 +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  let r = poly *. exp (-.ax *. ax) in
  if x >= 0.0 then r else 2.0 -. r

let failure_probability ~margin b =
  if b.variance <= 0.0 then 0.0
  else erfc (margin /. (sqrt b.variance *. sqrt 2.0))

let gate_failure_probability p =
  (* Messages sit at ±1/8; the bootstrap decides on the sign, so the margin
     to the decision boundary is 1/8. *)
  failure_probability ~margin:0.125 (worst_gate_input p)

let check p =
  let prob = gate_failure_probability p in
  if prob < 2.0 ** -32.0 then `Ok prob else `Unsafe prob

(* ------------------------------------------------------------------ *)
(* LUT-cell message-space margins                                      *)
(* ------------------------------------------------------------------ *)

let lut_margin ~msize = 1.0 /. float_of_int (4 * msize)

let lut_output p ~msize =
  (* A LUT output is a sum of up to msize indicator slots of one rotated
     accumulator; their errors are at worst fully counted once each, so the
     conservative bound is msize rotation budgets through one key switch.
     (Arity-1 cells are a plain sign bootstrap, msize = 1.) *)
  let rotated = add (blind_rotation p) (transform_error p) in
  key_switch p { variance = float_of_int msize *. rotated.variance }

let lut_input p ~arity =
  (* Worst operand load at the rotation's mod switch: [arity] lutdom
     operands, each pessimistically a full 3-input LUT output, scaled by
     the arity-independent message weights 2^(2−i) of [Gates.lut_combine]. *)
  let out = lut_output p ~msize:8 in
  let w2 = ref 0.0 in
  for i = 0 to arity - 1 do
    let w = float_of_int (1 lsl (2 - i)) in
    w2 := !w2 +. (w *. w)
  done;
  mod_switch p { variance = !w2 *. out.variance }

let lut_failure_probability p ~arity =
  if arity <= 1 then
    (* Reencode: a classic gate output at the ±1/8 sign decision. *)
    failure_probability ~margin:0.125 (mod_switch p (gate_output p))
  else failure_probability ~margin:(lut_margin ~msize:(1 lsl arity)) (lut_input p ~arity)

let check_lut p ~arity =
  let prob = lut_failure_probability p ~arity in
  if prob < 2.0 ** -32.0 then `Ok prob else `Unsafe prob
