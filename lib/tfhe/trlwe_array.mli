(** Struct-of-arrays TRLWE accumulator storage for the batched blind
    rotation.

    [cap] accumulators as one flat torus-word array: row [r] holds its k
    mask polynomials then its body polynomial back to back.  The batched
    CMux recurrence keeps one bootstrapping-key entry resident while
    sweeping the batch dimension, so the accumulators must be contiguous —
    the TRLWE analogue of {!Lwe_array}, used as {!Bootstrap.batch}
    scratch.  Unlike {!Lwe_array} the accumulators never cross the wire,
    so the backing store is a plain [int array] (an int32 bigarray access
    costs roughly two int-array accesses even as a raw load, and the
    rotation loops are memory bound).

    Every op mirrors its record-path counterpart coefficient for
    coefficient and routes arithmetic through {!Torus} /
    {!Poly.torus_of_float}, keeping the batched rotation
    ciphertext-bit-exact with the scalar walk. *)

type t

val create : Params.t -> cap:int -> t
(** Zero-filled storage for [cap ≥ 1] accumulators of the parameter set's
    TRLWE shape. *)

val capacity : t -> int

val clear_masks : t -> int -> unit
(** Zero the k mask polynomials of row [r] (the body is left alone — the
    rotation overwrites it). *)

val rotate_body_from : t -> int -> int -> Poly.torus_poly -> unit
(** [rotate_body_from t r a p]: body of row [r] ← [X^a · p], the negacyclic
    rotation of {!Poly.mul_by_xai_into} ([0 ≤ a < 2N]). *)

val rotate_diff_into : t -> row:int -> int -> Tlwe.sample -> unit
(** [rotate_diff_into t ~row a dst]: [dst ← (X^a − 1) · row], every
    component, into the record-shaped workspace scratch the external
    product consumes — {!Poly.mul_by_xai_minus_one_into} against the flat
    row. *)

val add_floats_to : t -> row:int -> comp:int -> float array -> unit
(** Accumulate the rounded torus values of an FFT result into component
    [comp] (k = the body) of row [row] — {!Poly.add_of_floats_to} against
    the flat row, bit-identical via {!Poly.torus_of_float}. *)

val add_ints_to : t -> row:int -> comp:int -> int array -> unit
(** Accumulate exact signed integer coefficients (the NTT backward output)
    into component [comp] of row [row] modulo 2³² —
    {!Poly.add_of_ints_to} against the flat row. *)

val extract_row_into : t -> row:int -> Lwe_array.t -> drow:int -> unit
(** Sample-extract row [row] into row [drow] of an {!Lwe_array} of
    dimension k·N — {!Tlwe.extract_lwe} without the record detour. *)

val set_row : t -> int -> Tlwe.sample -> unit
(** Store a record accumulator into row [r] (tests). *)

val get_row : t -> int -> Tlwe.sample
(** Materialize row [r] as a record (tests; allocates). *)
