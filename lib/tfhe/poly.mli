(** Polynomials modulo Xᴺ + 1.

    Two flavours share the [int array] representation: torus polynomials
    (coefficients are {!Torus.t}) and integer polynomials (small signed
    coefficients, e.g. gadget digits or binary key polynomials). *)

type torus_poly = int array
(** Coefficients are torus elements, length N. *)

type int_poly = int array
(** Coefficients are small signed integers, length N. *)

val zero : int -> torus_poly
(** The zero polynomial of the given degree bound. *)

val add : torus_poly -> torus_poly -> torus_poly
(** Coefficient-wise torus addition. *)

val add_to : torus_poly -> torus_poly -> unit
(** [add_to dst src] accumulates [src] into [dst] in place. *)

val sub : torus_poly -> torus_poly -> torus_poly
(** Coefficient-wise torus subtraction. *)

val sub_to : torus_poly -> torus_poly -> unit
(** [sub_to dst src] subtracts [src] from [dst] in place. *)

val neg : torus_poly -> torus_poly
(** Coefficient-wise torus negation. *)

val mul_by_xai : int -> torus_poly -> torus_poly
(** [mul_by_xai a p] is [X^a · p] in 𝕋[X]/(Xᴺ+1), with [0 ≤ a < 2N]
    (exponents in [N, 2N) flip signs — the negacyclic wrap used by blind
    rotation).  [a = 0] short-circuits to a plain copy. *)

val mul_by_xai_into : torus_poly -> int -> torus_poly -> unit
(** [mul_by_xai_into dst a p] writes [X^a · p] into [dst].  [dst] must have
    the length of [p] and must not alias it (the rotation reads ahead of its
    writes).  Raises [Invalid_argument] otherwise. *)

val mul_by_xai_minus_one : int -> torus_poly -> torus_poly
(** [(X^a − 1) · p], the CMux rotation difference, same domain for [a]. *)

val mul_by_xai_minus_one_into : torus_poly -> int -> torus_poly -> unit
(** [mul_by_xai_minus_one_into dst a p] writes [(X^a − 1) · p] into [dst] in
    one fused pass (no staging rotation buffer).  Same aliasing and length
    requirements as {!mul_by_xai_into}. *)

val mul_int_torus : int_poly -> torus_poly -> torus_poly
(** Negacyclic product of an integer polynomial with a torus polynomial via
    the FFT path.  Exact as long as coefficients stay within double
    precision (true for gadget digits against 32-bit torus values). *)

val mul_int_torus_naive : int_poly -> torus_poly -> torus_poly
(** Schoolbook reference for {!mul_int_torus} (tests only). *)

val to_floats : centred:bool -> int array -> float array
(** Lift coefficients to floats; [centred] interprets them as torus values
    (centred 32-bit) rather than plain signed integers. *)

val to_floats_into : centred:bool -> float array -> int array -> unit
(** In-place variant of {!to_floats}: fills the first argument.  Lengths
    must match. *)

val torus_of_float : float -> Torus.t
(** Round one real coefficient into a canonical torus element (modulo 2³²)
    — the exact conversion {!of_floats} applies per coefficient, exposed so
    the struct-of-arrays accumulator ({!Trlwe_array}) stays bit-identical
    with the record path.  Marked [@inline]; in native code the float
    argument is unboxed at every call site that consumes it directly. *)

val of_floats : float array -> torus_poly
(** Round real coefficients back into torus elements (modulo 2³²). *)

val of_floats_into : torus_poly -> float array -> unit
(** In-place variant of {!of_floats}: fills the first argument.  Lengths
    must match. *)

val add_of_floats_to : torus_poly -> float array -> unit
(** [add_of_floats_to dst f] accumulates the rounded torus value of every
    coefficient of [f] into [dst] — exactly [add_to dst (of_floats f)]
    without materializing the intermediate polynomial. *)

val of_ints_into : torus_poly -> int array -> unit
(** Reduce exact signed integer coefficients (the NTT backward output)
    modulo 2³² into [dst].  No rounding is involved.  Lengths must
    match. *)

val add_of_ints_to : torus_poly -> int array -> unit
(** [add_of_ints_to dst v] accumulates exact signed integer coefficients
    into [dst] modulo 2³² — the integer counterpart of
    {!add_of_floats_to} for the NTT path. *)
