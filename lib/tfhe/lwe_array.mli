(** Struct-of-arrays LWE ciphertext storage.

    A wave of [len] LWE samples of dimension [n] stored as one flat
    [(int32, c_layout)] Bigarray of masks ([len × n], row-major) plus a flat
    body vector — the layout the batched kernels stream (key row resident,
    batch dimension unit-stride), nufhe's [LweSampleArray] model.  Torus
    elements are canonical 32-bit values, so the int32 cells round-trip
    exactly and every row op below is ciphertext-bit-exact with the
    corresponding {!Lwe.sample} op.

    The record is exposed so the kernels in {!Bootstrap}, {!Keyswitch} and
    {!Trlwe_array} can walk the flat buffers directly; treat the fields as
    read-only outside this library and go through the accessors. *)

type t = {
  n : int;  (** LWE dimension of every row. *)
  len : int;  (** Number of samples. *)
  masks : Pytfhe_util.Wire.i32_buffer;  (** [len · n] words, row [r] at offset [r·n]. *)
  bodies : Pytfhe_util.Wire.i32_buffer;  (** [len] words. *)
}

val create : n:int -> int -> t
(** [create ~n len] allocates a zero-filled array of [len] samples of
    dimension [n ≥ 1].  Raises [Invalid_argument] on a bad shape. *)

val length : t -> int
val dim : t -> int

val slice : t -> pos:int -> len:int -> t
(** O(1) non-copying view of rows [pos, pos+len): the slice aliases the
    parent's storage, so writes through either are visible in both.  Raises
    [Invalid_argument] when the range is out of bounds. *)

val get : t -> int -> Lwe.sample
(** Materialize row [r] as a record (allocates). *)

val set : t -> int -> Lwe.sample -> unit
(** Store a record into row [r].  Raises [Invalid_argument] on a dimension
    mismatch or row out of bounds. *)

val set_trivial : t -> int -> Torus.t -> unit
(** Row [r] ← the noiseless trivial encryption (zero mask, body [mu]). *)

val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit
(** Copy [len] whole rows; two flat Bigarray blits.  Raises
    [Invalid_argument] on dimension mismatch or out-of-bounds ranges. *)

val of_samples : n:int -> Lwe.sample array -> t
val to_samples : t -> Lwe.sample array

val mask : t -> int -> int -> Torus.t
(** [mask t r i] — unchecked hot-path read of mask coefficient [i] of row
    [r]. *)

val body : t -> int -> Torus.t
(** [body t r] — unchecked hot-path read of row [r]'s body. *)

(** {2 Allocation-free row ops}

    All of these read every source element before writing the destination
    element, so the destination row may alias either source row (same row
    of the same array, or overlapping slices). *)

val add_into : dst:t -> drow:int -> a:t -> arow:int -> b:t -> brow:int -> unit
(** [dst.(drow) ← a.(arow) + b.(brow)], the row analogue of {!Lwe.add}. *)

val sub_into : dst:t -> drow:int -> a:t -> arow:int -> b:t -> brow:int -> unit
val scale_into : dst:t -> drow:int -> int -> src:t -> srow:int -> unit
val neg_into : dst:t -> drow:int -> src:t -> srow:int -> unit

val combine_into :
  dst:t ->
  drow:int ->
  konst:Torus.t ->
  scale:int ->
  sign_a:int ->
  a:t ->
  arow:int ->
  sign_b:int ->
  b:t ->
  brow:int ->
  unit
(** The fused gate phase combination
    [dst.(drow) ← konst ± scale·a.(arow) ± scale·b.(brow)], reducing in the
    same order as the scalar {!Gates.combine} so the result row is
    bit-identical to the record path. *)

val unsafe_get32 : Pytfhe_util.Wire.i32_buffer -> int -> Torus.t
(** Unchecked canonical-torus read of one flat cell; allocation-free in
    native code.  For the batched kernels only. *)

val unsafe_set32 : Pytfhe_util.Wire.i32_buffer -> int -> Torus.t -> unit

(** {2 Wire format}

    Magic ["LARR"], dimension, length, then the two flat i32 blocks
    ({!Pytfhe_util.Wire.write_i32_bigarray}) — a whole shard of ciphertexts
    as one bounds-checked blit instead of per-sample framing. *)

val write : Pytfhe_util.Wire.writer -> t -> unit

val read : Pytfhe_util.Wire.reader -> t
(** Raises [Wire.Corrupt] on a bad magic, implausible dimensions, a block
    length that disagrees with the header, or a truncated payload. *)
