module Rng = Pytfhe_util.Rng

type key = {
  ks_t : int;
  base_bit : int;
  out_n : int;
  in_n : int;
  flat : int array;
      (* One contiguous buffer replacing the old in_n × t × base array of
         LWE records: entry (i, j, u) occupies the (out_n + 1)-slot stride at
         ((i·t + j)·base + u)·(out_n+1) — out_n mask coefficients, then the
         body.  The accumulation loop therefore streams one flat array
         instead of chasing three levels of pointers. *)
}

let stride key = key.out_n + 1

let entry_off key i j u = (((i * key.ks_t) + j) * (1 lsl key.base_bit) + u) * stride key

let key_gen rng (p : Params.t) ~in_key ~out_key =
  let ks_t = p.ks.t in
  let base_bit = p.ks.base_bit in
  let base = 1 lsl base_bit in
  let in_n = in_key.Lwe.key_n in
  let out_n = out_key.Lwe.key_n in
  let stdev = p.lwe.lwe_stdev in
  let key = { ks_t; base_bit; out_n; in_n; flat = Array.make (in_n * ks_t * base * (out_n + 1)) 0 } in
  for i = 0 to in_n - 1 do
    for j = 0 to ks_t - 1 do
      for u = 0 to base - 1 do
        (* Encryption of u · s_in[i] / 2^{(j+1)·base_bit}.  The u = 0 entries
           are never read by [apply] (zero digits are skipped) but are
           generated anyway so the RNG stream and the wire format match the
           previous nested layout exactly. *)
        let message =
          Torus.mul_int (u * in_key.Lwe.bits.(i))
            (1 lsl (32 - ((j + 1) * base_bit)) land 0xFFFFFFFF)
        in
        let e = Lwe.encrypt rng out_key ~stdev message in
        let off = entry_off key i j u in
        Array.blit e.Lwe.a 0 key.flat off out_n;
        key.flat.(off + out_n) <- e.Lwe.b
      done
    done
  done;
  key

let apply_into key (s : Lwe.sample) ~a =
  if Array.length s.a <> key.in_n then
    invalid_arg "Keyswitch.apply_into: input dimension mismatch";
  if Array.length a <> key.out_n then
    invalid_arg "Keyswitch.apply_into: output buffer dimension mismatch";
  let base = 1 lsl key.base_bit in
  let prec_offset = 1 lsl (32 - 1 - (key.base_bit * key.ks_t)) in
  let out_n = key.out_n in
  let flat = key.flat in
  Array.fill a 0 out_n 0;
  let acc_b = ref s.b in
  for i = 0 to key.in_n - 1 do
    let ai = (Array.unsafe_get s.a i + prec_offset) land 0xFFFFFFFF in
    for j = 0 to key.ks_t - 1 do
      let aij = (ai lsr (32 - ((j + 1) * key.base_bit))) land (base - 1) in
      if aij <> 0 then begin
        let off = entry_off key i j aij in
        for u = 0 to out_n - 1 do
          Array.unsafe_set a u
            (Torus.sub (Array.unsafe_get a u) (Array.unsafe_get flat (off + u)))
        done;
        acc_b := Torus.sub !acc_b (Array.unsafe_get flat (off + out_n))
      end
    done
  done;
  !acc_b

let apply key (s : Lwe.sample) =
  let a = Array.make key.out_n 0 in
  let b = apply_into key s ~a in
  { Lwe.a; b }

(* Batched key switch by loop interchange: the (i, j) digit blocks of the
   flat table are the outer loops and the batch members the inner one, so
   each base × (out_n+1) block is streamed from memory once per batch
   instead of once per member.  Per member the (i, j) visit order — and
   therefore the exact sequence of torus subtractions — is unchanged from
   [apply_into], so results are bit-identical.  Returns the number of
   (i, j) blocks read (those with at least one nonzero digit in the batch),
   for key-traffic accounting. *)
let apply_batch_into key (ss : Lwe.sample array) ~count ~(a : int array array) ~(b : int array) =
  if count > Array.length ss || count > Array.length a || count > Array.length b then
    invalid_arg "Keyswitch.apply_batch_into: count exceeds buffer lengths";
  let base = 1 lsl key.base_bit in
  let prec_offset = 1 lsl (32 - 1 - (key.base_bit * key.ks_t)) in
  let out_n = key.out_n in
  let flat = key.flat in
  for m = 0 to count - 1 do
    if Array.length ss.(m).Lwe.a <> key.in_n then
      invalid_arg "Keyswitch.apply_batch_into: input dimension mismatch";
    if Array.length a.(m) <> out_n then
      invalid_arg "Keyswitch.apply_batch_into: output buffer dimension mismatch";
    Array.fill a.(m) 0 out_n 0;
    b.(m) <- ss.(m).Lwe.b
  done;
  let blocks = ref 0 in
  for i = 0 to key.in_n - 1 do
    for j = 0 to key.ks_t - 1 do
      let shift = 32 - ((j + 1) * key.base_bit) in
      let touched = ref false in
      for m = 0 to count - 1 do
        let ai = (Array.unsafe_get (Array.unsafe_get ss m).Lwe.a i + prec_offset) land 0xFFFFFFFF in
        let aij = (ai lsr shift) land (base - 1) in
        if aij <> 0 then begin
          touched := true;
          let off = entry_off key i j aij in
          let am = Array.unsafe_get a m in
          for u = 0 to out_n - 1 do
            Array.unsafe_set am u
              (Torus.sub (Array.unsafe_get am u) (Array.unsafe_get flat (off + u)))
          done;
          Array.unsafe_set b m
            (Torus.sub (Array.unsafe_get b m) (Array.unsafe_get flat (off + out_n)))
        end
      done;
      if !touched then incr blocks
    done
  done;
  !blocks

(* The SoA variant of [apply_batch_into]: sources and destinations are rows
   of flat [Lwe_array]s, so while an (i, j) table block stays resident the
   batch sweep touches contiguous rows and each row update is a unit-stride
   run over the destination masks.  The per-member digit visit order is
   unchanged, so every output row is bit-identical to a scalar
   [apply_into]. *)
let apply_batch_rows_into key ~(src : Lwe_array.t) ~(dst : Lwe_array.t) =
  let count = Lwe_array.length src in
  if Lwe_array.dim src <> key.in_n then
    invalid_arg "Keyswitch.apply_batch_rows_into: input dimension mismatch";
  if Lwe_array.dim dst <> key.out_n then
    invalid_arg "Keyswitch.apply_batch_rows_into: output dimension mismatch";
  if Lwe_array.length dst < count then
    invalid_arg "Keyswitch.apply_batch_rows_into: destination shorter than the batch";
  let base = 1 lsl key.base_bit in
  let prec_offset = 1 lsl (32 - 1 - (key.base_bit * key.ks_t)) in
  let out_n = key.out_n in
  let in_n = key.in_n in
  let flat = key.flat in
  let smasks = src.Lwe_array.masks and sbodies = src.Lwe_array.bodies in
  let dmasks = dst.Lwe_array.masks and dbodies = dst.Lwe_array.bodies in
  (* Spelled as direct [Bigarray.Array1] / [Int32] primitive applications:
     those are compiler intrinsics, so every element access compiles to a
     raw load/store even without flambda.  Going through a function (even a
     [@inline] one) leaves a call per element on this compiler, which
     roughly doubles the cost of the memory-bound digit loop. *)
  let[@inline] ld (ba : Pytfhe_util.Wire.i32_buffer) i =
    Int32.to_int (Bigarray.Array1.unsafe_get ba i) land 0xFFFFFFFF
  in
  let[@inline] st (ba : Pytfhe_util.Wire.i32_buffer) i v =
    Bigarray.Array1.unsafe_set ba i (Int32.of_int v)
  in
  (* The digit loop is memory bound, and an int32 bigarray access costs
     roughly two int-array accesses even as a raw load — so stage the
     source phases and the output accumulators in flat int arrays (one
     conversion pass per direction) and run the hot loop entirely on the
     OCaml heap, exactly like the record kernel.  The scratch is a few
     hundred words per batch member, noise next to the table traffic. *)
  let sa = Array.make (count * in_n) 0 in
  let a = Array.make (count * out_n) 0 in
  let b = Array.make count 0 in
  for m = 0 to count - 1 do
    let sm = m * in_n in
    for i = 0 to in_n - 1 do
      Array.unsafe_set sa (sm + i) (ld smasks (sm + i))
    done;
    b.(m) <- ld sbodies m
  done;
  let blocks = ref 0 in
  for i = 0 to in_n - 1 do
    for j = 0 to key.ks_t - 1 do
      let shift = 32 - ((j + 1) * key.base_bit) in
      let touched = ref false in
      for m = 0 to count - 1 do
        let ai = (Array.unsafe_get sa ((m * in_n) + i) + prec_offset) land 0xFFFFFFFF in
        let aij = (ai lsr shift) land (base - 1) in
        if aij <> 0 then begin
          touched := true;
          let off = entry_off key i j aij in
          let dm = m * out_n in
          for u = 0 to out_n - 1 do
            Array.unsafe_set a (dm + u)
              (Torus.sub (Array.unsafe_get a (dm + u)) (Array.unsafe_get flat (off + u)))
          done;
          Array.unsafe_set b m
            (Torus.sub (Array.unsafe_get b m) (Array.unsafe_get flat (off + out_n)))
        end
      done;
      if !touched then incr blocks
    done
  done;
  for m = 0 to count - 1 do
    let dm = m * out_n in
    for u = 0 to out_n - 1 do
      st dmasks (dm + u) (Array.unsafe_get a (dm + u))
    done;
    st dbodies m (Array.unsafe_get b m)
  done;
  !blocks

let apply_batch key (ss : Lwe.sample array) =
  let count = Array.length ss in
  let a = Array.init count (fun _ -> Array.make key.out_n 0) in
  let b = Array.make count 0 in
  let blocks = apply_batch_into key ss ~count ~a ~b in
  (Array.init count (fun m -> { Lwe.a = a.(m); b = b.(m) }), blocks)

let block_bytes key = (1 lsl key.base_bit) * (key.out_n + 1) * 4

let table_bytes key =
  let base = 1 lsl key.base_bit in
  key.in_n * key.ks_t * base * 4 * (key.out_n + 1)

module Wire = Pytfhe_util.Wire

(* The wire format is the pre-flattening one — nested arrays of LWE
   samples — so serialized keys stay compatible across the layout change. *)

let entry_sample key i j u =
  let off = entry_off key i j u in
  { Lwe.a = Array.sub key.flat off key.out_n; b = key.flat.(off + key.out_n) }

let write buf k =
  Wire.write_magic buf "KSWK";
  Wire.write_i64 buf k.ks_t;
  Wire.write_i64 buf k.base_bit;
  Wire.write_i64 buf k.out_n;
  Wire.write_i64 buf k.in_n;
  let base = 1 lsl k.base_bit in
  Wire.write_array buf
    (fun buf i ->
      Wire.write_array buf
        (fun buf j ->
          Wire.write_array buf (fun buf u -> Lwe.write_sample buf (entry_sample k i j u))
            (Array.init base Fun.id))
        (Array.init k.ks_t Fun.id))
    (Array.init k.in_n Fun.id)

let read r =
  Wire.read_magic r "KSWK";
  let ks_t = Wire.read_i64 r in
  let base_bit = Wire.read_i64 r in
  let out_n = Wire.read_i64 r in
  let in_n = Wire.read_i64 r in
  if ks_t <= 0 || base_bit <= 0 || ks_t * base_bit > 31 then
    raise (Wire.Corrupt "key-switch decomposition parameters out of range");
  if out_n <= 0 || in_n <= 0 then raise (Wire.Corrupt "key-switch dimensions out of range");
  let base = 1 lsl base_bit in
  let key = { ks_t; base_bit; out_n; in_n; flat = Array.make (in_n * ks_t * base * (out_n + 1)) 0 } in
  let table =
    Wire.read_array r (fun r -> Wire.read_array r (fun r -> Wire.read_array r Lwe.read_sample))
  in
  if Array.length table <> in_n then raise (Wire.Corrupt "key-switch table size mismatch");
  Array.iteri
    (fun i row ->
      if Array.length row <> ks_t then raise (Wire.Corrupt "key-switch digit count mismatch");
      Array.iteri
        (fun j col ->
          if Array.length col <> base then raise (Wire.Corrupt "key-switch base count mismatch");
          Array.iteri
            (fun u (e : Lwe.sample) ->
              if Array.length e.Lwe.a <> out_n then
                raise (Wire.Corrupt "key-switch entry dimension mismatch");
              let off = entry_off key i j u in
              Array.blit e.Lwe.a 0 key.flat off out_n;
              key.flat.(off + out_n) <- e.Lwe.b)
            col)
        row)
    table;
  key
