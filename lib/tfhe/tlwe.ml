module Rng = Pytfhe_util.Rng

type key = { polys : Poly.int_poly array }
type sample = { mask : Poly.torus_poly array; body : Poly.torus_poly }

let key_gen rng (p : Params.t) =
  let n = p.tlwe.ring_n in
  let poly _ = Array.init n (fun _ -> if Rng.bool rng then 1 else 0) in
  { polys = Array.init p.tlwe.k poly }

let uniform_poly rng n = Array.init n (fun _ -> Rng.bits32 rng)

let key_times_mask key (mask : Poly.torus_poly array) =
  let k = Array.length key.polys in
  let n = Array.length mask.(0) in
  let acc = Poly.zero n in
  for i = 0 to k - 1 do
    Poly.add_to acc (Poly.mul_int_torus key.polys.(i) mask.(i))
  done;
  acc

let encrypt_poly rng (p : Params.t) key msg =
  let n = p.tlwe.ring_n in
  let mask = Array.init p.tlwe.k (fun _ -> uniform_poly rng n) in
  let body = key_times_mask key mask in
  let stdev = p.tlwe.tlwe_stdev in
  let body =
    Array.mapi (fun i dot -> Torus.add_gaussian rng ~stdev (Torus.add dot msg.(i))) body
  in
  { mask; body }

let zero_sample rng p key = encrypt_poly rng p key (Poly.zero p.tlwe.ring_n)

let trivial (p : Params.t) msg =
  { mask = Array.init p.tlwe.k (fun _ -> Poly.zero p.tlwe.ring_n); body = Array.copy msg }

let phase key s = Poly.sub s.body (key_times_mask key s.mask)

let copy s = { mask = Array.map Array.copy s.mask; body = Array.copy s.body }

let add_to dst src =
  Array.iteri (fun i m -> Poly.add_to dst.mask.(i) m) src.mask;
  Poly.add_to dst.body src.body

let sub_to dst src =
  Array.iteri (fun i m -> Poly.sub_to dst.mask.(i) m) src.mask;
  Poly.sub_to dst.body src.body

let mul_by_xai a s =
  { mask = Array.map (Poly.mul_by_xai a) s.mask; body = Poly.mul_by_xai a s.body }

let extract_lwe (p : Params.t) s =
  let n = p.tlwe.ring_n in
  let k = p.tlwe.k in
  let a = Array.make (k * n) 0 in
  for i = 0 to k - 1 do
    let poly = s.mask.(i) in
    a.(i * n) <- poly.(0);
    for j = 1 to n - 1 do
      a.((i * n) + j) <- Torus.neg poly.(n - j)
    done
  done;
  { Lwe.a; b = s.body.(0) }

let extract_lwe_at (p : Params.t) ~pos s =
  let n = p.tlwe.ring_n in
  let k = p.tlwe.k in
  if pos < 0 || pos >= n then invalid_arg "Tlwe.extract_lwe_at: position out of range";
  let a = Array.make (k * n) 0 in
  for i = 0 to k - 1 do
    let poly = s.mask.(i) in
    for j = 0 to pos do
      a.((i * n) + j) <- poly.(pos - j)
    done;
    for j = pos + 1 to n - 1 do
      a.((i * n) + j) <- Torus.neg poly.(n + pos - j)
    done
  done;
  { Lwe.a; b = s.body.(pos) }

let extract_key key =
  let k = Array.length key.polys in
  let n = Array.length key.polys.(0) in
  let bits = Array.make (k * n) 0 in
  for i = 0 to k - 1 do
    Array.blit key.polys.(i) 0 bits (i * n) n
  done;
  { Lwe.key_n = k * n; bits }

module Wire = Pytfhe_util.Wire

let write_key buf k =
  Wire.write_magic buf "RKEY";
  Wire.write_array buf Wire.write_u32_array k.polys

let read_key r =
  Wire.read_magic r "RKEY";
  { polys = Wire.read_array r Wire.read_u32_array }
