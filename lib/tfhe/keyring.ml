module Wire = Pytfhe_util.Wire

type entry = {
  keyset : Gates.cloud_keyset;
  registered_at : float;
  generation : int;
}

type t = {
  table : (string, entry) Hashtbl.t;
  mutable generations : int;  (* Total registrations ever, for generation stamps. *)
}

let create () = { table = Hashtbl.create 16; generations = 0 }

let max_id_len = 64

let validate_id id =
  let ok_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '-' || c = '_' || c = '.'
  in
  if String.length id = 0 || String.length id > max_id_len then
    raise
      (Wire.Corrupt
         (Printf.sprintf "Keyring: client id must be 1..%d chars, got %d" max_id_len
            (String.length id)));
  String.iter
    (fun c ->
      if not (ok_char c) then
        raise (Wire.Corrupt (Printf.sprintf "Keyring: invalid client id character %C" c)))
    id

let register t ~id ~now keyset =
  validate_id id;
  t.generations <- t.generations + 1;
  Hashtbl.replace t.table id
    { keyset; registered_at = now; generation = t.generations }

let find t id = Hashtbl.find_opt t.table id

let keyset t id = Option.map (fun e -> e.keyset) (find t id)

let evict t id =
  if Hashtbl.mem t.table id then begin
    Hashtbl.remove t.table id;
    true
  end
  else false

let mem t id = Hashtbl.mem t.table id
let count t = Hashtbl.length t.table

let ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.table [] |> List.sort String.compare
