module Negacyclic = Pytfhe_fft.Negacyclic

type torus_poly = int array
type int_poly = int array

let zero n = Array.make n 0

let add a b = Array.map2 Torus.add a b

let add_to dst src =
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- Torus.add dst.(i) src.(i)
  done

let sub a b = Array.map2 Torus.sub a b

let sub_to dst src =
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- Torus.sub dst.(i) src.(i)
  done

let neg a = Array.map Torus.neg a

let check_rotation name a n =
  if a < 0 || a >= 2 * n then invalid_arg (name ^ ": exponent out of [0, 2N)")

let mul_by_xai_into dst a p =
  let n = Array.length p in
  check_rotation "Poly.mul_by_xai_into" a n;
  if Array.length dst <> n then invalid_arg "Poly.mul_by_xai_into: size mismatch";
  if dst == p then invalid_arg "Poly.mul_by_xai_into: dst must not alias p";
  if a = 0 then Array.blit p 0 dst 0 n
  else if a < n then begin
    (* Coefficient j of p lands at j + a; wrapping past N flips sign. *)
    for j = 0 to n - 1 - a do
      Array.unsafe_set dst (j + a) (Array.unsafe_get p j)
    done;
    for j = n - a to n - 1 do
      Array.unsafe_set dst (j + a - n) (Torus.neg (Array.unsafe_get p j))
    done
  end
  else begin
    let a' = a - n in
    for j = 0 to n - 1 - a' do
      Array.unsafe_set dst (j + a') (Torus.neg (Array.unsafe_get p j))
    done;
    for j = n - a' to n - 1 do
      Array.unsafe_set dst (j + a' - n) (Array.unsafe_get p j)
    done
  end

let mul_by_xai a p =
  let n = Array.length p in
  check_rotation "Poly.mul_by_xai" a n;
  if a = 0 then Array.copy p
  else begin
    let out = Array.make n 0 in
    mul_by_xai_into out a p;
    out
  end

let mul_by_xai_minus_one_into dst a p =
  let n = Array.length p in
  check_rotation "Poly.mul_by_xai_minus_one_into" a n;
  if Array.length dst <> n then invalid_arg "Poly.mul_by_xai_minus_one_into: size mismatch";
  if dst == p then invalid_arg "Poly.mul_by_xai_minus_one_into: dst must not alias p";
  (* dst_t = (X^a·p)_t − p_t, fused so the rotation needs no staging copy. *)
  if a = 0 then Array.fill dst 0 n 0
  else if a < n then begin
    for j = 0 to n - 1 - a do
      let t = j + a in
      Array.unsafe_set dst t (Torus.sub (Array.unsafe_get p j) (Array.unsafe_get p t))
    done;
    for j = n - a to n - 1 do
      let t = j + a - n in
      Array.unsafe_set dst t (Torus.sub (Torus.neg (Array.unsafe_get p j)) (Array.unsafe_get p t))
    done
  end
  else begin
    let a' = a - n in
    for j = 0 to n - 1 - a' do
      let t = j + a' in
      Array.unsafe_set dst t (Torus.sub (Torus.neg (Array.unsafe_get p j)) (Array.unsafe_get p t))
    done;
    for j = n - a' to n - 1 do
      let t = j + a' - n in
      Array.unsafe_set dst t (Torus.sub (Array.unsafe_get p j) (Array.unsafe_get p t))
    done
  end

let mul_by_xai_minus_one a p =
  let out = Array.make (Array.length p) 0 in
  mul_by_xai_minus_one_into out a p;
  out

let to_floats_into ~centred dst p =
  let n = Array.length p in
  if Array.length dst <> n then invalid_arg "Poly.to_floats_into: size mismatch";
  if centred then
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (float_of_int (Torus.to_signed (Array.unsafe_get p i)))
    done
  else
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (float_of_int (Array.unsafe_get p i))
    done

let to_floats ~centred p =
  let dst = Array.make (Array.length p) 0.0 in
  to_floats_into ~centred dst p;
  dst

(* Inlined into the conversion loops below: as a plain call the float
   argument (and the Int64 intermediates) would be boxed on every
   coefficient — without flambda that is ~2 words x N per polynomial, the
   single largest allocation left in the bootstrapped-gate hot path. *)
let[@inline] torus_of_float x =
  let r = Float.rem (Float.round x) 4294967296.0 in
  Torus.of_signed (Int64.to_int (Int64.of_float r))

let of_floats_into dst f =
  let n = Array.length f in
  if Array.length dst <> n then invalid_arg "Poly.of_floats_into: size mismatch";
  for i = 0 to n - 1 do
    Array.unsafe_set dst i (torus_of_float (Array.unsafe_get f i))
  done

let of_floats f =
  let dst = Array.make (Array.length f) 0 in
  of_floats_into dst f;
  dst

let add_of_floats_to dst f =
  let n = Array.length f in
  if Array.length dst <> n then invalid_arg "Poly.add_of_floats_to: size mismatch";
  for i = 0 to n - 1 do
    Array.unsafe_set dst i
      (Torus.add (Array.unsafe_get dst i) (torus_of_float (Array.unsafe_get f i)))
  done

(* Integer ingestion for the NTT backward pass: coefficients arrive as
   exact signed integers (no rounding step), so reduction modulo 2^32 is
   a plain mask — the path stays float-free end to end. *)

let of_ints_into dst (v : int array) =
  let n = Array.length v in
  if Array.length dst <> n then invalid_arg "Poly.of_ints_into: size mismatch";
  for i = 0 to n - 1 do
    Array.unsafe_set dst i (Torus.of_signed (Array.unsafe_get v i))
  done

let add_of_ints_to dst (v : int array) =
  let n = Array.length v in
  if Array.length dst <> n then invalid_arg "Poly.add_of_ints_to: size mismatch";
  for i = 0 to n - 1 do
    Array.unsafe_set dst i
      (Torus.add (Array.unsafe_get dst i) (Torus.of_signed (Array.unsafe_get v i)))
  done

let mul_int_torus ip tp =
  let a = to_floats ~centred:false ip in
  let b = to_floats ~centred:true tp in
  of_floats (Negacyclic.polymul a b)

let mul_int_torus_naive ip tp =
  let n = Array.length ip in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    if ip.(i) <> 0 then
      for j = 0 to n - 1 do
        let k = i + j in
        let term = Torus.mul_int ip.(i) tp.(j) in
        if k < n then out.(k) <- Torus.add out.(k) term
        else out.(k - n) <- Torus.sub out.(k - n) term
      done
  done;
  out
