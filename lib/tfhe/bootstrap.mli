(** Programmable bootstrapping: blind rotation + sample extraction.

    The bootstrapping key encrypts each bit of the LWE key as a TGSW sample;
    blind rotation then homomorphically rotates a test polynomial by the
    (mod-switched) phase of the input ciphertext, refreshing its noise while
    applying a negacyclic lookup table.

    The hot loop runs the in-place recurrence
    acc ← acc + bskᵢ ⊡ ((X^{āᵢ} − 1)·acc) through workspace-owned scratch
    ({!Tgsw.cmux_rotate_into}), so a steady-state bootstrapped gate
    allocates only its output ciphertext. *)

type key
(** Bootstrapping key: n TGSW encryptions (stored in FFT form) of the LWE
    key bits under the ring key, plus a default evaluation context for
    single-threaded use. *)

type context
(** Per-thread mutable evaluation state: the TGSW workspace, a reusable
    ring-degree test-vector buffer and the blind-rotation accumulator.  The
    key's own {!default_context} serves the sequential executor; a multicore
    executor creates one context per domain so no scratch memory is
    shared. *)

val context_create : Params.t -> context
(** Fresh scratch for one evaluation thread.  Also precomputes the FFT
    caches for the parameter set's ring degree (via
    [Tgsw.workspace_create]). *)

val default_context : key -> context
(** The context embedded in the key — used by the [_wo_keyswitch] wrappers.
    Never hand it to more than one domain at a time. *)

val key_gen : Pytfhe_util.Rng.t -> Params.t -> lwe_key:Lwe.key -> tlwe_key:Tlwe.key -> key

val blind_rotate : Params.t -> key -> testvect:Poly.torus_poly -> Lwe.sample -> Tlwe.sample
(** Rotate [testvect] by X^{−phase·2N} under encryption, using the key's
    default workspace. *)

val blind_rotate_with :
  Params.t -> Tgsw.workspace -> key -> testvect:Poly.torus_poly -> Lwe.sample -> Tlwe.sample
(** Like {!blind_rotate} but with caller-supplied scratch, for concurrent
    evaluation.  Allocates the returned accumulator; the hot path uses
    {!blind_rotate_into}. *)

val blind_rotate_into :
  Params.t ->
  Tgsw.workspace ->
  key ->
  testvect:Poly.torus_poly ->
  acc:Tlwe.sample ->
  Lwe.sample ->
  unit
(** Allocation-free blind rotation: overwrites [acc] (which must have the
    parameter set's shape and not alias workspace scratch) with the rotated
    test vector.  This is the per-gate hot path. *)

val blind_rotate_reference :
  Params.t -> Tgsw.workspace -> key -> testvect:Poly.torus_poly -> Lwe.sample -> Tlwe.sample
(** The pre-optimization CMux chain (allocating a rotated copy, a difference
    and a product per iteration).  Bit-exact with {!blind_rotate_with};
    kept as the regression reference for the property tests and for the
    micro benchmark's words-per-gate comparison. *)

val bootstrap_wo_keyswitch : Params.t -> key -> mu:Torus.t -> Lwe.sample -> Lwe.sample
(** Refresh a ciphertext to an encryption of ±[mu] (sign of the input
    phase) under the *extracted* key of dimension k·N.  Uses the key's
    default context. *)

val bootstrap_with : Params.t -> context -> key -> mu:Torus.t -> Lwe.sample -> Lwe.sample
(** {!bootstrap_wo_keyswitch} through an explicit context: no allocation
    beyond the extracted output ciphertext, and safe to call concurrently
    from several domains as long as each uses its own context. *)

(** {2 Batched bootstrapping (key streaming)}

    A wave of B gates shares one pass over the bootstrapping key: the batched
    blind rotation walks the n TGSW key entries once and applies each entry's
    CMux-rotate step to all B accumulators before moving on, so the
    (tens-of-MB) key is streamed from memory once per batch instead of once
    per gate.  The per-accumulator operation sequence is identical to the
    scalar path, so the results are ciphertext-bit-exact with
    {!bootstrap_with}. *)

type batch
(** A structure-of-arrays batch workspace: one shared TGSW workspace and
    test-vector buffer plus [cap] accumulators.  Like {!context}, it is
    single-threaded state — one per domain. *)

val batch_create : Params.t -> cap:int -> batch
(** Workspace for batches of up to [cap] ≥ 1 gates. *)

val batch_capacity : batch -> int

val batch_with : Params.t -> batch -> key -> mu:Torus.t -> Lwe.sample array -> Lwe.sample array
(** Bootstrap every sample of the array (length ≤ the batch capacity) to
    ±[mu] under the extracted key, streaming the bootstrapping key once for
    the whole batch.  Element [i] of the result is bit-identical to
    [bootstrap_with p ctx key ~mu ss.(i)]. *)

val batch_rows_into :
  Params.t -> batch -> key -> mu:Torus.t -> src:Lwe_array.t -> dst:Lwe_array.t -> unit
(** The struct-of-arrays {!batch_with}: bootstrap every row of [src]
    (dimension n, length ≤ capacity) to ±[mu] under the extracted key,
    writing rows [0, length src) of [dst] (dimension k·N) — no per-gate
    record materialization.  The accumulators live in a flat
    {!Trlwe_array}, so the interchanged inner loop sweeps contiguous
    storage while each bootstrapping-key entry stays resident.  Row [i] of
    [dst] is bit-identical to [bootstrap_with p ctx key ~mu] of row [i] of
    [src].  Raises [Invalid_argument] on shape mismatches. *)

type batch_stats = { bsk_rows_streamed : int; launches : int; gates_batched : int }
(** Cumulative key-traffic accounting since the last reset:
    [bsk_rows_streamed] counts bootstrapping-key entries read from memory
    (each entry is {!row_bytes} wide in FFT form), [launches] counts
    {!batch_with} calls and [gates_batched] the samples they processed. *)

val batch_stats : batch -> batch_stats
val batch_reset_stats : batch -> unit

val row_bytes : Params.t -> int
(** Bytes of one bootstrapping-key entry in evaluation form — FFT:
    (k+1)²·l spectra of N/2 complex bins at 16 bytes each; NTT: the same
    spectra as N u32 residues under each of the two primes — the unit
    [bsk_rows_streamed] is counted in. *)

val key_bytes : Params.t -> int
(** Serialized size of the bootstrapping key at 32 bits per torus element. *)

val write : Pytfhe_util.Wire.writer -> key -> unit

val read : Params.t -> Pytfhe_util.Wire.reader -> key
(** The parameter set recreates the scratch workspace on load and validates
    the key's shape (row/component/spectrum counts and the LWE dimension)
    against it, raising [Wire.Corrupt] on mismatch. *)

val programmable :
  Params.t -> key -> msize:int -> (int -> Torus.t) -> Lwe.sample -> Lwe.sample
(** Programmable bootstrapping (paper §II-B): refresh the ciphertext while
    applying an arbitrary lookup table.  The input must encrypt a message
    μ ∈ [0, msize) in the half-torus encoding μ/(2·msize); the result (under
    the extracted key) carries the torus value [f μ].  [msize] must divide
    the ring degree N. *)

(** {2 Indicator bootstrapping for LUT cells}

    The circuit-level LUT cells all run one {e table-independent} rotation:
    the test vector is a staircase whose top slot carries the lutdom unit
    1/16, and extracting coefficient [(msize−1−m)·N/msize] of the rotated
    accumulator yields an encryption of [\[message = m\]/16].  The table is
    applied afterwards as a plain sum of indicators, so one blind rotation
    serves any number of tables over the same inputs (multi-value
    bootstrapping), and sharing a rotation between nodes with identical
    inputs is pure memoization — bit-identical to rotating per node. *)

val lut_amplitude : Torus.t
(** The lutdom unit 1/16 carried by the staircase's hot slot. *)

val fill_lut_testvect : Params.t -> msize:int -> Poly.torus_poly -> unit
(** Overwrite a ring-degree buffer with the indicator staircase for a
    message space of [msize] (which must divide N). *)

val lut_centre : msize:int -> Lwe.sample -> Lwe.sample
(** Add the in-slot centring 1/(4·msize) to the body — the exact torus op
    both the scalar and batched rotations apply before mod-switching. *)

val lut_extract_indicators : Params.t -> msize:int -> Tlwe.sample -> Lwe.sample array
(** Extract the [msize] indicator slots of a rotated accumulator, indexed
    by message value (element [m] encrypts [\[message = m\]/16]) — under the
    extracted key, before any key switch. *)

val lut_indicators : Params.t -> context -> key -> msize:int -> Lwe.sample -> Lwe.sample array
(** One indicator rotation through a context: centre, rotate the staircase,
    extract all [msize] indicators.  The input phase must carry the
    combined LUT message m/(2·msize). *)

(** {2 Mixed-job batched bootstrapping} *)

type job =
  | Job_sign of Torus.t  (** sign bootstrap to ±mu (classic gates, arity-1 LUT cells) *)
  | Job_lut of int  (** indicator rotation for the given message-space size *)

val batch_jobs : Params.t -> batch -> key -> job array -> Lwe.sample array -> Lwe.sample array array
(** Heterogeneous {!batch_with}: run one blind rotation per member with a
    per-member test vector, streaming the bootstrapping key once for the
    whole batch.  Member [i]'s result is [\[| extracted \|]] for
    [Job_sign mu] (bit-identical to [bootstrap_with ~mu]) and the indicator
    array for [Job_lut msize] (bit-identical to {!lut_indicators}).
    [Job_lut] members must arrive {e uncentred} — the centring is applied
    inside, like {!lut_indicators} does. *)
