(** TGSW samples, gadget decomposition and the external product.

    A TGSW sample encrypts a small integer m as (k+1)·l TRLWE rows
    Z + m·H, where H is the gadget matrix with entries 1/Bgʲ.  The external
    product TGSW ⊡ TRLWE — the engine of the CMux and hence of blind
    rotation — is evaluated in the FFT domain. *)

type sample = { rows : Tlwe.sample array }
(** (k+1)·l TRLWE rows, row i·l+j carrying m/Bg^{j+1} on component i. *)

type fft_sample
(** A TGSW sample with every row polynomial pre-transformed; this is how
    bootstrapping keys are stored. *)

type workspace
(** Pre-allocated scratch buffers so the external product in the hot
    bootstrapping loop performs no large allocations. *)

val encrypt_int : Pytfhe_util.Rng.t -> Params.t -> Tlwe.key -> int -> sample
(** Fresh TGSW encryption of a small integer message. *)

val to_fft : Params.t -> sample -> fft_sample
(** Pre-transform all row polynomials. *)

val decompose : Params.t -> Tlwe.sample -> Poly.int_poly array
(** Signed gadget decomposition of every component into l digits each in
    [−Bg/2, Bg/2). *)

val workspace_create : Params.t -> workspace
(** Fresh scratch buffers for one evaluation thread.  Also precomputes the
    FFT twist/twiddle tables for the parameter set's ring degree, so a
    workspace handed to a worker domain never mutates shared caches. *)

val external_product : Params.t -> workspace -> fft_sample -> Tlwe.sample -> Tlwe.sample
(** [external_product p ws g c] computes g ⊡ c: a TRLWE sample whose phase
    is (approximately) m · phase(c). *)

val cmux : Params.t -> workspace -> fft_sample -> Tlwe.sample -> Tlwe.sample -> Tlwe.sample
(** [cmux p ws g d1 d0] homomorphically selects [d1] when [g] encrypts 1 and
    [d0] when it encrypts 0: d0 + g ⊡ (d1 − d0). *)

val write_fft : Pytfhe_util.Wire.writer -> fft_sample -> unit
(** Bootstrapping-key rows in their frequency-domain form; doubles are
    serialized bit-exactly so roundtrips are lossless. *)

val read_fft : Pytfhe_util.Wire.reader -> fft_sample
