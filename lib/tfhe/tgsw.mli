(** TGSW samples, gadget decomposition and the external product.

    A TGSW sample encrypts a small integer m as (k+1)·l TRLWE rows
    Z + m·H, where H is the gadget matrix with entries 1/Bgʲ.  The external
    product TGSW ⊡ TRLWE — the engine of the CMux and hence of blind
    rotation — is evaluated in the transform domain selected by the
    parameter set: the double-precision complex FFT or the exact
    double-prime NTT ({!Pytfhe_fft.Transform}).  This module is the
    dispatch layer — nothing above it branches on the backend.

    The [_into] entry points below are the bootstrapped-gate hot path: every
    buffer they touch (decomposition digits, transform staging, spectral
    accumulators and the TLWE rotation scratch) is owned by the
    {!workspace}, so a steady-state gate performs no ring-sized
    allocation. *)

type sample = { rows : Tlwe.sample array }
(** (k+1)·l TRLWE rows, row i·l+j carrying m/Bg^{j+1} on component i. *)

type fft_sample = { frows : Pytfhe_fft.Transform.domain array array }
(** A TGSW sample with every row polynomial pre-transformed into the
    parameter set's evaluation domain (FFT spectrum or NTT residues);
    this is how bootstrapping keys are stored. *)

type gadget
(** Precomputed gadget-decomposition constants (offset, Bg/2, digit mask):
    derived once from a parameter set instead of per decomposition call. *)

type workspace
(** Pre-allocated scratch buffers so the external product in the hot
    bootstrapping loop performs no large allocations. *)

val gadget : Params.t -> gadget
(** The decomposition constants of a parameter set. *)

val encrypt_int : Pytfhe_util.Rng.t -> Params.t -> Tlwe.key -> int -> sample
(** Fresh TGSW encryption of a small integer message. *)

val to_fft : Params.t -> sample -> fft_sample
(** Pre-transform all row polynomials with the parameter set's selected
    transform. *)

val decompose : Params.t -> Tlwe.sample -> Poly.int_poly array
(** Signed gadget decomposition of every component into l digits each in
    [−Bg/2, Bg/2).  Allocating wrapper over the same kernel
    {!decompose_into} uses. *)

val decompose_into : Params.t -> workspace -> Tlwe.sample -> unit
(** {!decompose} straight into the workspace digit buffers. *)

val workspace_create : Params.t -> workspace
(** Fresh scratch buffers for one evaluation thread.  Also precomputes the
    selected transform's tables for the parameter set's ring degree, so a
    workspace handed to a worker domain never mutates shared caches. *)

val external_product : Params.t -> workspace -> fft_sample -> Tlwe.sample -> Tlwe.sample
(** [external_product p ws g c] computes g ⊡ c: a TRLWE sample whose phase
    is (approximately) m · phase(c).  Allocates the result; the hot path
    uses {!external_product_into} / {!cmux_rotate_into} instead. *)

val external_product_into :
  Params.t -> workspace -> fft_sample -> Tlwe.sample -> dst:Tlwe.sample -> unit
(** [external_product_into p ws g c ~dst] writes g ⊡ c into [dst] without
    allocating.  [dst] must not alias [c]. *)

val external_product_add_into :
  Params.t -> workspace -> fft_sample -> src:Tlwe.sample -> acc:Tlwe.sample -> unit
(** [external_product_add_into p ws g ~src ~acc] accumulates g ⊡ src into
    [acc] without allocating.  [src] may be workspace scratch; [acc] must
    not alias [src]. *)

val cmux_rotate_into : Params.t -> workspace -> fft_sample -> int -> Tlwe.sample -> unit
(** [cmux_rotate_into p ws g a acc] performs the blind-rotation recurrence
    acc ← acc + g ⊡ ((X^a − 1)·acc) in place — equivalent to
    [cmux p ws g (Tlwe.mul_by_xai a acc) acc] with zero allocation.
    [a] must lie in [0, 2N). *)

val cmux_rotate_row_into :
  Params.t -> workspace -> fft_sample -> int -> Trlwe_array.t -> row:int -> unit
(** {!cmux_rotate_into} with the accumulator living in a flat
    {!Trlwe_array} row — the batched blind rotation's inner step.
    Bit-identical to the record variant: the rotation difference stages
    through the same workspace scratch and the same transform pipeline. *)

val cmux : Params.t -> workspace -> fft_sample -> Tlwe.sample -> Tlwe.sample -> Tlwe.sample
(** [cmux p ws g d1 d0] homomorphically selects [d1] when [g] encrypts 1 and
    [d0] when it encrypts 0: d0 + g ⊡ (d1 − d0). *)

val write_fft : Pytfhe_util.Wire.writer -> fft_sample -> unit
(** Bootstrapping-key rows in their evaluation-domain form, tagged "GFFT"
    (f64 pairs, bit-exact doubles) or "GNTT" (u32 residues per prime)
    according to the value's own domain. *)

val read_fft : Params.t -> Pytfhe_util.Wire.reader -> fft_sample
(** Reads one key row in the format the parameter set's transform selects
    and validates its shape — magic ("GFFT"/"GNTT"), row count (k+1)·l,
    component count k+1, spectrum length (N/2 bins or N residues, with
    NTT residues range-checked per prime) — raising [Wire.Corrupt] on any
    mismatch instead of failing later with an index error.  A payload
    serialized under the other transform fails at the magic check. *)
