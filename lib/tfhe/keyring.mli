(** A registry of cloud keysets keyed by client id — the multi-tenant key
    store of the FHE-as-a-service server.

    The TFHE key-management model (the [SecretKey]/[CloudKey] split): a
    tenant generates both keysets locally, registers only the {e cloud}
    keyset (bootstrapping key + key-switch table + parameters) under its
    client id, and the secret keyset never crosses the wire.  Eviction
    drops the entry; the service layer fails that tenant's in-flight
    requests, nobody else's.

    Not thread-safe: the service owns one registry on its scheduler
    thread. *)

type t

type entry = {
  keyset : Gates.cloud_keyset;
  registered_at : float;  (** Caller-supplied clock at registration. *)
  generation : int;
      (** 1-based registration sequence number across the registry's
          lifetime; a re-registered id gets a fresh generation, letting
          sessions opened against the old keyset be told apart. *)
}

val create : unit -> t

val max_id_len : int
(** 64. *)

val validate_id : string -> unit
(** Client ids are 1..{!max_id_len} chars of [[A-Za-z0-9._-]].  Raises
    {!Pytfhe_util.Wire.Corrupt} otherwise — ids arrive off the wire, and a
    malformed one is a protocol error, not a programming error. *)

val register : t -> id:string -> now:float -> Gates.cloud_keyset -> unit
(** Register (or replace) the keyset under [id].  Validates the id. *)

val find : t -> string -> entry option
val keyset : t -> string -> Gates.cloud_keyset option
val evict : t -> string -> bool
(** [true] if the id was present. *)

val mem : t -> string -> bool
val count : t -> int
val ids : t -> string list
(** Sorted. *)
