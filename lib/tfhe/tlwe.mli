(** TRLWE (ring) samples: LWE over 𝕋[X]/(Xᴺ+1).

    A sample under key s = (s₁…s_k) (binary polynomials) is
    (a₁…a_k, b) with b = Σ aᵢ·sᵢ + μ + e.  The blind-rotation accumulator of
    bootstrapping lives here. *)

type key = { polys : Poly.int_poly array (** k binary polynomials. *) }

type sample = {
  mask : Poly.torus_poly array;  (** The k mask polynomials a₁…a_k. *)
  body : Poly.torus_poly;  (** The body polynomial b. *)
}

val key_gen : Pytfhe_util.Rng.t -> Params.t -> key
(** Sample k uniform binary polynomials of degree < N. *)

val zero_sample : Pytfhe_util.Rng.t -> Params.t -> key -> sample
(** Fresh encryption of the zero polynomial. *)

val encrypt_poly : Pytfhe_util.Rng.t -> Params.t -> key -> Poly.torus_poly -> sample
(** Fresh encryption of a torus polynomial message. *)

val trivial : Params.t -> Poly.torus_poly -> sample
(** Noiseless sample (0,…,0, μ). *)

val phase : key -> sample -> Poly.torus_poly
(** b − Σ aᵢ·sᵢ. *)

val copy : sample -> sample
(** Deep copy (the bootstrapping accumulator is mutated in place). *)

val add_to : sample -> sample -> unit
(** [add_to dst src] accumulates [src] into [dst] component-wise. *)

val sub_to : sample -> sample -> unit
(** [sub_to dst src] subtracts [src] from [dst] component-wise. *)

val mul_by_xai : int -> sample -> sample
(** Rotate every component by X^a (a ∈ [0, 2N)). *)

val extract_lwe : Params.t -> sample -> Lwe.sample
(** Extract the constant coefficient as an LWE sample of dimension k·N. *)

val extract_lwe_at : Params.t -> pos:int -> sample -> Lwe.sample
(** Extract coefficient [pos] ∈ [0, N) as an LWE sample of dimension k·N
    under the same extracted key as {!extract_lwe} (which is the [pos = 0]
    case).  Multi-value bootstrapping reads several slots of one rotated
    accumulator this way. *)

val extract_key : key -> Lwe.key
(** The LWE key matching {!extract_lwe}: the ring key's coefficients. *)

val write_key : Pytfhe_util.Wire.writer -> key -> unit
val read_key : Pytfhe_util.Wire.reader -> key
