(** TFHE parameter sets.

    The [default_128] set reproduces the gate-bootstrapping parameters of the
    reference TFHE library (the set the paper adopts in §II-D, targeting
    λ = 128 bits).  The [test] set is *insecure* but functionally correct and
    about two orders of magnitude faster; the unit-test suite uses it so that
    every bootstrapped gate can be exercised in milliseconds. *)

type lwe = {
  n : int;  (** LWE dimension of the in/out ciphertexts. *)
  lwe_stdev : float;  (** Fresh-encryption noise standard deviation. *)
}

type tlwe = {
  ring_n : int;  (** Polynomial degree N (power of two). *)
  k : int;  (** Number of mask polynomials. *)
  tlwe_stdev : float;  (** Ring encryption noise standard deviation. *)
}

type tgsw = {
  l : int;  (** Gadget decomposition length. *)
  bg_bit : int;  (** log₂ of the gadget base Bg. *)
}

type keyswitch = {
  t : int;  (** Decomposition length of the key switch. *)
  base_bit : int;  (** log₂ of the key-switch base. *)
}

type t = {
  name : string;
  lwe : lwe;
  tlwe : tlwe;
  tgsw : tgsw;
  ks : keyswitch;
  transform : Pytfhe_fft.Transform.kind;
      (** Which polynomial transform the bootstrap runs on: the
          double-precision complex FFT (fast, machine-dependent rounding)
          or the exact double-prime NTT (bit-reproducible). *)
}

val default_128 : t
(** n = 630, N = 1024, k = 1, l = 3, Bg = 2⁷, ks: t = 8, base = 2²,
    σ_lwe = 2⁻¹⁵, σ_bk = 2⁻²⁵ — the TFHE-library defaults at λ = 128. *)

val test : t
(** n = 64, N = 256, l = 3, Bg = 2⁶, low noise.  Fast and functionally
    correct; provides no security whatsoever. *)

val extracted_n : t -> int
(** Dimension k·N of LWE samples extracted from ring ciphertexts. *)

val bg : t -> int
(** The gadget base Bg = 2^bg_bit. *)

val ks_base : t -> int
(** The key-switch base 2^base_bit. *)

val mu : t -> Torus.t
(** The gate-bootstrapping message amplitude 1/8. *)

val with_transform : t -> Pytfhe_fft.Transform.kind -> t
(** The same parameter set running on the other transform backend.
    Combine with {!validate}: the NTT rejects gadget bounds that exceed
    its modulus headroom. *)

val precompute : t -> unit
(** Build the selected transform's tables for this ring degree.  Executors
    call it at startup, before worker domains or processes run transforms
    concurrently — see {!Pytfhe_fft.Transform.precompute}. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering of a parameter set. *)

val write : Pytfhe_util.Wire.writer -> t -> unit
(** Serialize a parameter set (keys and ciphertexts embed one so loads can
    validate compatibility). *)

val read : Pytfhe_util.Wire.reader -> t
(** Raises {!Pytfhe_util.Wire.Corrupt} on malformed input. *)

val equal : t -> t -> bool

val custom :
  ?transform:Pytfhe_fft.Transform.kind ->
  name:string -> n:int -> lwe_stdev:float -> ring_n:int -> k:int -> tlwe_stdev:float ->
  l:int -> bg_bit:int -> ks_t:int -> ks_base_bit:int -> unit -> t
(** Build a custom parameter set ([?transform] defaults to [Fft]); raises
    [Invalid_argument] on structural problems (see {!validate}).  Combine
    with [Noise.check] before use. *)

val validate : t -> (unit, string) result
(** Structural sanity: positive dimensions, power-of-two ring degree,
    decompositions that fit in 32 bits, and — on the NTT backend — gadget
    bounds within the CRT modulus headroom. *)
