module Transform = Pytfhe_fft.Transform

type lwe = { n : int; lwe_stdev : float }
type tlwe = { ring_n : int; k : int; tlwe_stdev : float }
type tgsw = { l : int; bg_bit : int }
type keyswitch = { t : int; base_bit : int }

type t = {
  name : string;
  lwe : lwe;
  tlwe : tlwe;
  tgsw : tgsw;
  ks : keyswitch;
  transform : Transform.kind;
}

let pow2 e = 2.0 ** float_of_int e

let default_128 =
  {
    name = "default-128";
    lwe = { n = 630; lwe_stdev = pow2 (-15) };
    tlwe = { ring_n = 1024; k = 1; tlwe_stdev = pow2 (-25) };
    tgsw = { l = 3; bg_bit = 7 };
    ks = { t = 8; base_bit = 2 };
    transform = Transform.Fft;
  }

let test =
  {
    name = "test-insecure";
    lwe = { n = 64; lwe_stdev = pow2 (-20) };
    tlwe = { ring_n = 256; k = 1; tlwe_stdev = pow2 (-30) };
    tgsw = { l = 3; bg_bit = 6 };
    ks = { t = 12; base_bit = 2 };
    transform = Transform.Fft;
  }

let extracted_n p = p.tlwe.k * p.tlwe.ring_n
let bg p = 1 lsl p.tgsw.bg_bit
let ks_base p = 1 lsl p.ks.base_bit
let mu _ = Torus.mod_switch_to 1 ~msize:8

let with_transform p transform = { p with transform }

let precompute p = Transform.precompute p.transform p.tlwe.ring_n

let pp fmt p =
  Format.fprintf fmt
    "%s: n=%d N=%d k=%d l=%d Bg=2^%d ks(t=%d, base=2^%d) sigma_lwe=%.3g sigma_bk=%.3g transform=%s"
    p.name p.lwe.n p.tlwe.ring_n p.tlwe.k p.tgsw.l p.tgsw.bg_bit p.ks.t p.ks.base_bit
    p.lwe.lwe_stdev p.tlwe.tlwe_stdev
    (Transform.kind_name p.transform)

module Wire = Pytfhe_util.Wire

let write buf p =
  Wire.write_magic buf "TPRM";
  Wire.write_string buf p.name;
  Wire.write_i64 buf p.lwe.n;
  Wire.write_f64 buf p.lwe.lwe_stdev;
  Wire.write_i64 buf p.tlwe.ring_n;
  Wire.write_i64 buf p.tlwe.k;
  Wire.write_f64 buf p.tlwe.tlwe_stdev;
  Wire.write_i64 buf p.tgsw.l;
  Wire.write_i64 buf p.tgsw.bg_bit;
  Wire.write_i64 buf p.ks.t;
  Wire.write_i64 buf p.ks.base_bit;
  Wire.write_u8 buf (Transform.kind_code p.transform)

let read r =
  Wire.read_magic r "TPRM";
  let name = Wire.read_string r in
  let n = Wire.read_i64 r in
  let lwe_stdev = Wire.read_f64 r in
  let ring_n = Wire.read_i64 r in
  let k = Wire.read_i64 r in
  let tlwe_stdev = Wire.read_f64 r in
  let l = Wire.read_i64 r in
  let bg_bit = Wire.read_i64 r in
  let t = Wire.read_i64 r in
  let base_bit = Wire.read_i64 r in
  let transform =
    let code = Wire.read_u8 r in
    match Transform.kind_of_code code with
    | Some k -> k
    | None -> raise (Wire.Corrupt (Printf.sprintf "unknown transform code %d" code))
  in
  {
    name;
    lwe = { n; lwe_stdev };
    tlwe = { ring_n; k; tlwe_stdev };
    tgsw = { l; bg_bit };
    ks = { t; base_bit };
    transform;
  }

let equal a b = a = b

(* Worst-case magnitude of an external-product coefficient in integer
   units: (k+1)·l digit rows, each a degree-N product of digits ≤ Bg/2
   with centred torus words < 2³¹.  The NTT is exact only while this stays
   under half the CRT modulus. *)
let ntt_peak p =
  let rows = float_of_int ((p.tlwe.k + 1) * p.tgsw.l) in
  rows *. float_of_int p.tlwe.ring_n
  *. float_of_int (1 lsl (p.tgsw.bg_bit - 1))
  *. 2147483648.0

let validate p =
  if p.lwe.n <= 0 then Error "n must be positive"
  else if p.tlwe.ring_n <= 0 || p.tlwe.ring_n land (p.tlwe.ring_n - 1) <> 0 then
    Error "ring degree N must be a positive power of two"
  else if p.tlwe.k <= 0 then Error "k must be positive"
  else if p.tgsw.l <= 0 || p.tgsw.bg_bit <= 0 then Error "gadget parameters must be positive"
  else if p.tgsw.l * p.tgsw.bg_bit > 32 then Error "gadget decomposition exceeds 32 bits"
  else if p.ks.t <= 0 || p.ks.base_bit <= 0 then Error "key-switch parameters must be positive"
  else if p.ks.t * p.ks.base_bit > 31 then Error "key-switch decomposition exceeds 31 bits"
  else if p.lwe.lwe_stdev <= 0.0 || p.tlwe.tlwe_stdev <= 0.0 then
    Error "noise standard deviations must be positive"
  else if p.transform = Transform.Ntt && p.tlwe.ring_n > 1 lsl 20 then
    Error "ring degree exceeds the NTT prime 2-adicity (N must be <= 2^20)"
  else if
    p.transform = Transform.Ntt
    && 2.0 *. ntt_peak p >= float_of_int Pytfhe_fft.Ntt.modulus
  then Error "gadget bounds exceed the NTT modulus headroom ((k+1)*l*N*Bg/2*2^31 >= M/2)"
  else Ok ()

let custom ?(transform = Transform.Fft) ~name ~n ~lwe_stdev ~ring_n ~k ~tlwe_stdev ~l ~bg_bit
    ~ks_t ~ks_base_bit () =
  let p =
    {
      name;
      lwe = { n; lwe_stdev };
      tlwe = { ring_n; k; tlwe_stdev };
      tgsw = { l; bg_bit };
      ks = { t = ks_t; base_bit = ks_base_bit };
      transform;
    }
  in
  match validate p with Ok () -> p | Error msg -> invalid_arg ("Params.custom: " ^ msg)
