(** LWE key switching.

    After blind rotation and sample extraction, ciphertexts live under the
    large extracted key (dimension k·N); the key-switch brings them back to
    the small in/out key (dimension n) so gates compose.

    The table is stored as one contiguous flat array (entry (i, j, u) at
    stride out_n+1) rather than nested per-sample records, so the
    accumulation loop streams memory instead of chasing pointers.  The wire
    format is unchanged from the nested layout. *)

type key
(** Key-switching material from an input key to an output key. *)

val key_gen :
  Pytfhe_util.Rng.t -> Params.t -> in_key:Lwe.key -> out_key:Lwe.key -> key
(** Encrypt every input key bit at every decomposition position under the
    output key. *)

val apply : key -> Lwe.sample -> Lwe.sample
(** Re-encrypt a sample from the input key to the output key. *)

val apply_into : key -> Lwe.sample -> a:int array -> Torus.t
(** Allocation-free {!apply}: fills the caller-provided mask buffer [a]
    (length out_n) and returns the body.  Raises [Invalid_argument] when
    the input or the buffer dimension does not match the key. *)

val apply_batch_into :
  key -> Lwe.sample array -> count:int -> a:int array array -> b:int array -> int
(** Batched {!apply_into} over the first [count] samples, by loop
    interchange: the (i, j) digit blocks of the table are the outer loops
    and the batch members the inner one, so each base × (out_n+1) block is
    streamed from memory once per batch instead of once per member.  Per
    member the digit visit order is unchanged, so [a.(m)]/[b.(m)] are
    bit-identical to a scalar [apply_into] on [ss.(m)].  Returns the number
    of blocks actually read (those with a nonzero digit somewhere in the
    batch), in units of {!block_bytes}. *)

val apply_batch_rows_into : key -> src:Lwe_array.t -> dst:Lwe_array.t -> int
(** The struct-of-arrays {!apply_batch_into}: key-switch every row of [src]
    (dimension in_n) into the same-index row of [dst] (dimension out_n,
    length ≥ length of [src]).  Same (i, j)-outer loop interchange — a
    table block streams once per batch — but the batch sweep now touches
    contiguous rows and each row update is a unit-stride run.  Output rows
    are bit-identical to scalar {!apply_into}; returns blocks streamed in
    units of {!block_bytes}.  Raises [Invalid_argument] on shape
    mismatches. *)

val apply_batch : key -> Lwe.sample array -> Lwe.sample array * int
(** Allocating wrapper over {!apply_batch_into}: key-switch the whole array
    and also return the number of table blocks streamed. *)

val block_bytes : key -> int
(** Bytes of one (i, j) digit block of the table — the unit the
    {!apply_batch_into} block count is measured in. *)

val table_bytes : key -> int
(** Serialized size of the key-switch table at 32 bits per torus element;
    part of the public "cloud key" the client ships to the server. *)

val write : Pytfhe_util.Wire.writer -> key -> unit

val read : Pytfhe_util.Wire.reader -> key
(** Validates every dimension of the serialized table (decomposition depth,
    base, entry count and per-entry LWE dimension) and raises
    [Wire.Corrupt] on mismatch instead of failing later with an index
    error. *)
