module Rng = Pytfhe_util.Rng
module Negacyclic = Pytfhe_fft.Negacyclic
module Ntt = Pytfhe_fft.Ntt
module Transform = Pytfhe_fft.Transform

type sample = { rows : Tlwe.sample array }

type fft_sample = { frows : Transform.domain array array }
(* frows.(r).(c): evaluation-domain form (FFT spectrum or NTT residues,
   per the parameter set's transform) of component c (k masks then body)
   of row r. *)

type gadget = {
  g_l : int;
  g_bg_bit : int;
  g_half_bg : int;
  g_mask_bg : int;
  g_offset : int;  (* Σⱼ (Bg/2)·2^{32−j·bg_bit}: recentres digits once, hoisted
                      out of the per-coefficient loop. *)
}

let gadget (p : Params.t) =
  let l = p.tgsw.l in
  let bg_bit = p.tgsw.bg_bit in
  let bg = 1 lsl bg_bit in
  let half_bg = bg / 2 in
  let offset =
    let o = ref 0 in
    for j = 1 to l do
      o := !o + (half_bg lsl (32 - (j * bg_bit)))
    done;
    !o land 0xFFFFFFFF
  in
  { g_l = l; g_bg_bit = bg_bit; g_half_bg = half_bg; g_mask_bg = bg - 1; g_offset = offset }

type workspace = {
  wgadget : gadget;  (* decomposition constants, computed once per workspace *)
  dec : Poly.int_poly array;  (* (k+1)*l decomposition digit polynomials *)
  dec_float : float array;  (* FFT-path staging for the forward transform *)
  dec_domain : Transform.domain;
  acc_domains : Transform.domain array;  (* k+1 accumulators *)
  result_float : float array;  (* FFT backward output *)
  result_int : int array;  (* NTT backward output (exact signed) *)
  rot : Tlwe.sample;  (* (X^a − 1)·acc scratch for the blind-rotation step *)
}

let rows_count (p : Params.t) = (p.tlwe.k + 1) * p.tgsw.l

let encrypt_int rng (p : Params.t) key m =
  let l = p.tgsw.l in
  let bg_bit = p.tgsw.bg_bit in
  let rows =
    Array.init (rows_count p) (fun r ->
        let i = r / l and j = r mod l in
        let z = Tlwe.zero_sample rng p key in
        (* Add m/Bg^{j+1}: the torus element m · 2^{32 − (j+1)·bg_bit}. *)
        let h = Torus.mul_int m (1 lsl (32 - ((j + 1) * bg_bit)) land 0xFFFFFFFF) in
        let target = if i < p.tlwe.k then z.mask.(i) else z.body in
        target.(0) <- Torus.add target.(0) h;
        z)
  in
  { rows }

let to_fft (p : Params.t) s =
  let components (row : Tlwe.sample) =
    let polys = Array.append row.mask [| row.body |] in
    Array.map
      (fun poly -> Transform.forward_signed p.transform (Array.map Torus.to_signed poly))
      polys
  in
  { frows = Array.map components s.rows }

(* The single decomposition kernel both entry points share: digits of
   component [i] land in rows [i*l .. i*l + l − 1] of [dst]. *)
let decompose_component g (dst : Poly.int_poly array) i (poly : Poly.torus_poly) =
  let n = Array.length poly in
  let l = g.g_l in
  let bg_bit = g.g_bg_bit in
  let half_bg = g.g_half_bg in
  let mask_bg = g.g_mask_bg in
  let offset = g.g_offset in
  for t = 0 to n - 1 do
    let v = (Array.unsafe_get poly t + offset) land 0xFFFFFFFF in
    for j = 0 to l - 1 do
      let digit = (v lsr (32 - ((j + 1) * bg_bit))) land mask_bg in
      Array.unsafe_set dst.((i * l) + j) t (digit - half_bg)
    done
  done

let decompose_rows g k (dst : Poly.int_poly array) (c : Tlwe.sample) =
  Array.iteri (decompose_component g dst) c.mask;
  decompose_component g dst k c.body

let decompose (p : Params.t) (c : Tlwe.sample) =
  let n = p.tlwe.ring_n in
  let out = Array.init (rows_count p) (fun _ -> Array.make n 0) in
  decompose_rows (gadget p) p.tlwe.k out c;
  out

let workspace_create (p : Params.t) =
  let n = p.tlwe.ring_n in
  (* Fill the selected transform's tables for this ring degree now, while
     we are still single-threaded: workspaces are per-domain scratch, and
     the transforms they feed must not fault in shared tables
     concurrently. *)
  Transform.precompute p.transform n;
  {
    wgadget = gadget p;
    dec = Array.init (rows_count p) (fun _ -> Array.make n 0);
    dec_float = Array.make n 0.0;
    dec_domain = Transform.create p.transform n;
    acc_domains = Array.init (p.tlwe.k + 1) (fun _ -> Transform.create p.transform n);
    result_float = Array.make n 0.0;
    result_int = Array.make n 0;
    rot = Tlwe.trivial p (Poly.zero n);
  }

(* In-place decomposition into the workspace to avoid per-call allocation. *)
let decompose_into (p : Params.t) ws (c : Tlwe.sample) =
  decompose_rows ws.wgadget p.tlwe.k ws.dec c

(* The dispatch layer proper: the only places the two transform backends
   diverge are the digit-row forward (the FFT stages through floats, the
   NTT consumes the integer digits directly) and the backward landing (the
   FFT rounds floats, the NTT masks exact integers).  The FFT branches are
   byte-identical to the historical code, so FFT-parameter ciphertexts are
   unchanged by this layer. *)

let forward_digits ws (digits : Poly.int_poly) =
  match ws.dec_domain with
  | Transform.Dfft s ->
    let n = Array.length digits in
    for t = 0 to n - 1 do
      ws.dec_float.(t) <- float_of_int (Array.unsafe_get digits t)
    done;
    Negacyclic.forward_into s ws.dec_float
  | Transform.Dntt s -> Ntt.forward_into s digits

(* backward_into destroys the accumulator domain — safe in all three
   landing helpers because [product_spectra] rebuilds every accumulator
   from scratch on the next call (see the contract in negacyclic.mli,
   shared by ntt.mli). *)
let backward_add ws comp (target : Poly.torus_poly) =
  match ws.acc_domains.(comp) with
  | Transform.Dfft s ->
    Negacyclic.backward_into ws.result_float s;
    Poly.add_of_floats_to target ws.result_float
  | Transform.Dntt s ->
    Ntt.backward_into ws.result_int s;
    Poly.add_of_ints_to target ws.result_int

let backward_set ws comp (target : Poly.torus_poly) =
  match ws.acc_domains.(comp) with
  | Transform.Dfft s ->
    Negacyclic.backward_into ws.result_float s;
    Poly.of_floats_into target ws.result_float
  | Transform.Dntt s ->
    Ntt.backward_into ws.result_int s;
    Poly.of_ints_into target ws.result_int

let backward_add_row ws comp (tr : Trlwe_array.t) ~row =
  match ws.acc_domains.(comp) with
  | Transform.Dfft s ->
    Negacyclic.backward_into ws.result_float s;
    Trlwe_array.add_floats_to tr ~row ~comp ws.result_float
  | Transform.Dntt s ->
    Ntt.backward_into ws.result_int s;
    Trlwe_array.add_ints_to tr ~row ~comp ws.result_int

(* Decompose [src], push every digit row through the forward transform and
   accumulate the row × bootstrapping-key products in the evaluation
   domain.  Shared by all external-product entry points; leaves the k+1
   component accumulators in [ws.acc_domains]. *)
let product_spectra (p : Params.t) ws (g : fft_sample) (src : Tlwe.sample) =
  let k = p.tlwe.k in
  decompose_into p ws src;
  Array.iter Transform.zero ws.acc_domains;
  for r = 0 to rows_count p - 1 do
    forward_digits ws ws.dec.(r);
    for comp = 0 to k do
      Transform.mul_add_into ws.acc_domains.(comp) ws.dec_domain g.frows.(r).(comp)
    done
  done

let external_product_add_into (p : Params.t) ws (g : fft_sample) ~src ~(acc : Tlwe.sample) =
  product_spectra p ws g src;
  let k = p.tlwe.k in
  for comp = 0 to k do
    backward_add ws comp (if comp < k then acc.Tlwe.mask.(comp) else acc.Tlwe.body)
  done

let external_product_into (p : Params.t) ws (g : fft_sample) (c : Tlwe.sample)
    ~(dst : Tlwe.sample) =
  product_spectra p ws g c;
  let k = p.tlwe.k in
  for comp = 0 to k do
    backward_set ws comp (if comp < k then dst.Tlwe.mask.(comp) else dst.Tlwe.body)
  done

let external_product (p : Params.t) ws (g : fft_sample) (c : Tlwe.sample) =
  let dst = Tlwe.trivial p (Poly.zero p.tlwe.ring_n) in
  external_product_into p ws g c ~dst;
  dst

let cmux_rotate_into (p : Params.t) ws (g : fft_sample) a (acc : Tlwe.sample) =
  (* acc ← acc + g ⊡ ((X^a − 1)·acc): the CMux between acc and X^a·acc,
     written as the in-place blind-rotation recurrence.  Only workspace
     scratch is touched — no ring-sized allocation. *)
  let rot = ws.rot in
  Array.iteri (fun i m -> Poly.mul_by_xai_minus_one_into rot.Tlwe.mask.(i) a m) acc.Tlwe.mask;
  Poly.mul_by_xai_minus_one_into rot.Tlwe.body a acc.Tlwe.body;
  external_product_add_into p ws g ~src:rot ~acc

let cmux_rotate_row_into (p : Params.t) ws (g : fft_sample) a (tr : Trlwe_array.t) ~row =
  (* The SoA analogue of [cmux_rotate_into]: the accumulator lives in a
     flat [Trlwe_array] row instead of a [Tlwe.sample].  The rotation
     difference still stages through [ws.rot] (the FFT pipeline consumes
     record-shaped polynomials), and the spectral products are byte-for-byte
     the same computation, so the row update is bit-identical to the record
     path. *)
  Trlwe_array.rotate_diff_into tr ~row a ws.rot;
  product_spectra p ws g ws.rot;
  for comp = 0 to p.tlwe.k do
    backward_add_row ws comp tr ~row
  done

let cmux p ws g d1 d0 =
  let diff = Tlwe.copy d1 in
  Tlwe.sub_to diff d0;
  let prod = external_product p ws g diff in
  Tlwe.add_to prod d0;
  prod

module Wire = Pytfhe_util.Wire

(* Two frame formats, selected by the value's own domain on write and by
   the parameter set's transform on read: "GFFT" carries N/2 complex bins
   as f64 pairs, "GNTT" carries N residues per prime as u32 arrays.  A
   keyset whose embedded parameters disagree with its payload (version
   skew, a coordinator on the other backend) therefore fails loudly with
   [Wire.Corrupt] at the magic check instead of decrypting garbage. *)

let write_fft buf s =
  (match s.frows.(0).(0) with
  | Transform.Dfft _ -> Wire.write_magic buf "GFFT"
  | Transform.Dntt _ -> Wire.write_magic buf "GNTT");
  let write_domain buf = function
    | Transform.Dfft (sp : Negacyclic.spectrum) ->
      Wire.write_f64_array buf sp.Negacyclic.s_re;
      Wire.write_f64_array buf sp.Negacyclic.s_im
    | Transform.Dntt (sp : Ntt.spectrum) ->
      Wire.write_u32_array buf sp.Ntt.v1;
      Wire.write_u32_array buf sp.Ntt.v2
  in
  Wire.write_array buf (fun buf row -> Wire.write_array buf write_domain row) s.frows

let read_fft (p : Params.t) r =
  let n = p.tlwe.ring_n in
  let half = n / 2 in
  (match p.transform with
  | Transform.Fft -> Wire.read_magic r "GFFT"
  | Transform.Ntt -> Wire.read_magic r "GNTT");
  let read_domain r =
    match p.transform with
    | Transform.Fft ->
      let s_re = Wire.read_f64_array r in
      let s_im = Wire.read_f64_array r in
      if Array.length s_re <> Array.length s_im then
        raise (Wire.Corrupt "spectrum length mismatch");
      if Array.length s_re <> half then raise (Wire.Corrupt "spectrum does not match ring degree");
      Transform.Dfft { Negacyclic.s_re; s_im }
    | Transform.Ntt ->
      let v1 = Wire.read_u32_array r in
      let v2 = Wire.read_u32_array r in
      if Array.length v1 <> Array.length v2 then
        raise (Wire.Corrupt "NTT residue length mismatch");
      if Array.length v1 <> n then raise (Wire.Corrupt "NTT residues do not match ring degree");
      Array.iter
        (fun x -> if x >= Ntt.p1 then raise (Wire.Corrupt "NTT residue out of range (p1)"))
        v1;
      Array.iter
        (fun x -> if x >= Ntt.p2 then raise (Wire.Corrupt "NTT residue out of range (p2)"))
        v2;
      Transform.Dntt { Ntt.v1; v2 }
  in
  let frows = Wire.read_array r (fun r -> Wire.read_array r read_domain) in
  if Array.length frows <> rows_count p then
    raise (Wire.Corrupt "TGSW row count does not match parameters");
  Array.iter
    (fun row ->
      if Array.length row <> p.tlwe.k + 1 then
        raise (Wire.Corrupt "TGSW component count does not match parameters"))
    frows;
  { frows }
