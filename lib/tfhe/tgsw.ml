module Rng = Pytfhe_util.Rng
module Negacyclic = Pytfhe_fft.Negacyclic

type sample = { rows : Tlwe.sample array }

type fft_sample = { frows : Negacyclic.spectrum array array }
(* frows.(r).(c): spectrum of component c (k masks then body) of row r. *)

type workspace = {
  dec : Poly.int_poly array;  (* (k+1)*l decomposition digit polynomials *)
  dec_float : float array;  (* staging buffer for the forward transform *)
  dec_spectrum : Negacyclic.spectrum;
  acc_spectra : Negacyclic.spectrum array;  (* k+1 accumulators *)
  result_float : float array;
}

let rows_count (p : Params.t) = (p.tlwe.k + 1) * p.tgsw.l

let encrypt_int rng (p : Params.t) key m =
  let l = p.tgsw.l in
  let bg_bit = p.tgsw.bg_bit in
  let rows =
    Array.init (rows_count p) (fun r ->
        let i = r / l and j = r mod l in
        let z = Tlwe.zero_sample rng p key in
        (* Add m/Bg^{j+1}: the torus element m · 2^{32 − (j+1)·bg_bit}. *)
        let h = Torus.mul_int m (1 lsl (32 - ((j + 1) * bg_bit)) land 0xFFFFFFFF) in
        let target = if i < p.tlwe.k then z.mask.(i) else z.body in
        target.(0) <- Torus.add target.(0) h;
        z)
  in
  { rows }

let to_fft (p : Params.t) s =
  let components (row : Tlwe.sample) =
    let polys = Array.append row.mask [| row.body |] in
    Array.map (fun poly -> Negacyclic.forward (Poly.to_floats ~centred:true poly)) polys
  in
  ignore p;
  { frows = Array.map components s.rows }

let decompose (p : Params.t) (c : Tlwe.sample) =
  let n = p.tlwe.ring_n in
  let l = p.tgsw.l in
  let bg_bit = p.tgsw.bg_bit in
  let bg = 1 lsl bg_bit in
  let half_bg = bg / 2 in
  let mask_bg = bg - 1 in
  let offset =
    let o = ref 0 in
    for j = 1 to l do
      o := !o + (half_bg lsl (32 - (j * bg_bit)))
    done;
    !o land 0xFFFFFFFF
  in
  let out = Array.init ((p.tlwe.k + 1) * l) (fun _ -> Array.make n 0) in
  let polys = Array.append c.mask [| c.body |] in
  Array.iteri
    (fun i poly ->
      for t = 0 to n - 1 do
        let v = (poly.(t) + offset) land 0xFFFFFFFF in
        for j = 0 to l - 1 do
          let digit = (v lsr (32 - ((j + 1) * bg_bit))) land mask_bg in
          out.((i * l) + j).(t) <- digit - half_bg
        done
      done)
    polys;
  out

let workspace_create (p : Params.t) =
  let n = p.tlwe.ring_n in
  (* Fill the trigonometric caches for this ring degree now, while we are
     still single-threaded: workspaces are per-domain scratch, and the
     transforms they feed must not fault in shared tables concurrently. *)
  Negacyclic.precompute n;
  {
    dec = Array.init (rows_count p) (fun _ -> Array.make n 0);
    dec_float = Array.make n 0.0;
    dec_spectrum = Negacyclic.spectrum_create n;
    acc_spectra = Array.init (p.tlwe.k + 1) (fun _ -> Negacyclic.spectrum_create n);
    result_float = Array.make n 0.0;
  }

(* In-place decomposition into the workspace to avoid per-call allocation. *)
let decompose_into (p : Params.t) ws (c : Tlwe.sample) =
  let n = p.tlwe.ring_n in
  let l = p.tgsw.l in
  let bg_bit = p.tgsw.bg_bit in
  let bg = 1 lsl bg_bit in
  let half_bg = bg / 2 in
  let mask_bg = bg - 1 in
  let offset =
    let o = ref 0 in
    for j = 1 to l do
      o := !o + (half_bg lsl (32 - (j * bg_bit)))
    done;
    !o land 0xFFFFFFFF
  in
  let decompose_poly i (poly : Poly.torus_poly) =
    for t = 0 to n - 1 do
      let v = (Array.unsafe_get poly t + offset) land 0xFFFFFFFF in
      for j = 0 to l - 1 do
        let digit = (v lsr (32 - ((j + 1) * bg_bit))) land mask_bg in
        Array.unsafe_set ws.dec.((i * l) + j) t (digit - half_bg)
      done
    done
  in
  Array.iteri decompose_poly c.mask;
  decompose_poly p.tlwe.k c.body

let external_product (p : Params.t) ws (g : fft_sample) (c : Tlwe.sample) =
  let n = p.tlwe.ring_n in
  let k = p.tlwe.k in
  decompose_into p ws c;
  Array.iter Negacyclic.spectrum_zero ws.acc_spectra;
  for r = 0 to rows_count p - 1 do
    let digits = ws.dec.(r) in
    for t = 0 to n - 1 do
      ws.dec_float.(t) <- float_of_int (Array.unsafe_get digits t)
    done;
    Negacyclic.forward_into ws.dec_spectrum ws.dec_float;
    for comp = 0 to k do
      Negacyclic.mul_add_into ws.acc_spectra.(comp) ws.dec_spectrum g.frows.(r).(comp)
    done
  done;
  let component comp =
    Negacyclic.backward_into ws.result_float ws.acc_spectra.(comp);
    Poly.of_floats ws.result_float
  in
  {
    Tlwe.mask = Array.init k component;
    body = component k;
  }

let cmux p ws g d1 d0 =
  let diff = Tlwe.copy d1 in
  Tlwe.sub_to diff d0;
  let prod = external_product p ws g diff in
  Tlwe.add_to prod d0;
  prod

module Wire = Pytfhe_util.Wire

let write_fft buf s =
  Wire.write_magic buf "GFFT";
  let write_spectrum buf (sp : Negacyclic.spectrum) =
    Wire.write_f64_array buf sp.Negacyclic.s_re;
    Wire.write_f64_array buf sp.Negacyclic.s_im
  in
  Wire.write_array buf (fun buf row -> Wire.write_array buf write_spectrum row) s.frows

let read_fft r =
  Wire.read_magic r "GFFT";
  let read_spectrum r =
    let s_re = Wire.read_f64_array r in
    let s_im = Wire.read_f64_array r in
    if Array.length s_re <> Array.length s_im then raise (Wire.Corrupt "spectrum length mismatch");
    { Negacyclic.s_re; s_im }
  in
  { frows = Wire.read_array r (fun r -> Wire.read_array r read_spectrum) }
