(** Average-case noise analysis for the CGGI gate-bootstrapping pipeline.

    Tracks predicted phase-error *variance* through the operations a gate
    performs (linear combination → mod switch → blind rotation → sample
    extraction → key switch) using the standard worst-case-independent
    variance bounds of the TFHE paper.  The test suite validates the
    predictions against empirically measured phases of this repository's
    implementation, and [check] is the guard a parameter-set designer uses:
    it reports the per-gate decryption-failure probability. *)

type budget = { variance : float }
(** Phase-error variance (torus units squared). *)

val fresh : Params.t -> budget
(** A fresh client encryption. *)

val add : budget -> budget -> budget
(** Variance of the sum of two independent ciphertexts. *)

val scale : int -> budget -> budget
(** Variance after multiplying the ciphertext by an integer constant. *)

val mod_switch : Params.t -> budget -> budget
(** Variance after switching to the 2N rotation modulus. *)

val blind_rotation : Params.t -> budget
(** Variance of a freshly blind-rotated (and extracted) sample; independent
    of the input noise — this is what "bootstrapping refreshes noise"
    means. *)

val key_switch : Params.t -> budget -> budget
(** Added variance of the key switch back to the small key. *)

val transform_error : Params.t -> budget
(** Numerical error contributed by the polynomial-product backend itself:
    exactly zero for the NTT (products are exact in ℤ[X]/(Xᴺ+1) before the
    mod-2³² reduction), and a small double-precision rounding model for
    the FFT.  Folded into {!gate_output}. *)

val gate_output : Params.t -> budget
(** Predicted variance of any bootstrapped gate's output, including the
    backend's {!transform_error}. *)

val worst_gate_input : Params.t -> budget
(** Worst-case variance at the sign decision of the bootstrap across the
    gate types (XOR doubles the ciphertexts' coefficients, quadrupling the
    variance). *)

val failure_probability : margin:float -> budget -> float
(** Probability that a Gaussian phase error exceeds [margin] in absolute
    value. *)

val gate_failure_probability : Params.t -> float
(** Per-gate probability that the bootstrap reads the wrong sign — the
    end-to-end correctness metric of a parameter set. *)

val check : Params.t -> [ `Ok of float | `Unsafe of float ]
(** [`Ok p] when the per-gate failure probability [p] is below 2⁻³²;
    [`Unsafe p] otherwise. *)

(** {2 LUT-cell message-space margins}

    LUT cells trade margin for expressiveness: an arity-k indicator
    rotation decides among 2ᵏ message slots, so the distance to the nearest
    slot boundary shrinks from the boolean 1/8 to 1/(4·2ᵏ).  These bounds
    say whether a parameter set can afford that — the shipped
    [Params.default_128] cannot at arity 3 ([`Unsafe]), which is why the
    LUT bench and tests run at [Params.test]. *)

val lut_margin : msize:int -> float
(** Half-slot phase margin 1/(4·msize) of an indicator rotation. *)

val lut_output : Params.t -> msize:int -> budget
(** Conservative variance of a LUT-cell output: up to [msize] indicator
    slots summed, through one key switch. *)

val lut_input : Params.t -> arity:int -> budget
(** Worst variance at the rotation's mod switch: [arity] weighted lutdom
    operands, each pessimistically a full 3-input LUT output. *)

val lut_failure_probability : Params.t -> arity:int -> float
(** Per-cell probability that the rotation lands in the wrong message slot
    (arity 1 degrades to the boolean sign decision). *)

val check_lut : Params.t -> arity:int -> [ `Ok of float | `Unsafe of float ]
(** [`Ok p] when the per-cell failure probability is below 2⁻³². *)
