(** Average-case noise analysis for the CGGI gate-bootstrapping pipeline.

    Tracks predicted phase-error *variance* through the operations a gate
    performs (linear combination → mod switch → blind rotation → sample
    extraction → key switch) using the standard worst-case-independent
    variance bounds of the TFHE paper.  The test suite validates the
    predictions against empirically measured phases of this repository's
    implementation, and [check] is the guard a parameter-set designer uses:
    it reports the per-gate decryption-failure probability. *)

type budget = { variance : float }
(** Phase-error variance (torus units squared). *)

val fresh : Params.t -> budget
(** A fresh client encryption. *)

val add : budget -> budget -> budget
(** Variance of the sum of two independent ciphertexts. *)

val scale : int -> budget -> budget
(** Variance after multiplying the ciphertext by an integer constant. *)

val mod_switch : Params.t -> budget -> budget
(** Variance after switching to the 2N rotation modulus. *)

val blind_rotation : Params.t -> budget
(** Variance of a freshly blind-rotated (and extracted) sample; independent
    of the input noise — this is what "bootstrapping refreshes noise"
    means. *)

val key_switch : Params.t -> budget -> budget
(** Added variance of the key switch back to the small key. *)

val transform_error : Params.t -> budget
(** Numerical error contributed by the polynomial-product backend itself:
    exactly zero for the NTT (products are exact in ℤ[X]/(Xᴺ+1) before the
    mod-2³² reduction), and a small double-precision rounding model for
    the FFT.  Folded into {!gate_output}. *)

val gate_output : Params.t -> budget
(** Predicted variance of any bootstrapped gate's output, including the
    backend's {!transform_error}. *)

val worst_gate_input : Params.t -> budget
(** Worst-case variance at the sign decision of the bootstrap across the
    gate types (XOR doubles the ciphertexts' coefficients, quadrupling the
    variance). *)

val failure_probability : margin:float -> budget -> float
(** Probability that a Gaussian phase error exceeds [margin] in absolute
    value. *)

val gate_failure_probability : Params.t -> float
(** Per-gate probability that the bootstrap reads the wrong sign — the
    end-to-end correctness metric of a parameter set. *)

val check : Params.t -> [ `Ok of float | `Unsafe of float ]
(** [`Ok p] when the per-gate failure probability [p] is below 2⁻³²;
    [`Unsafe p] otherwise. *)
