type context = { ws : Tgsw.workspace; testvect : Poly.torus_poly; acc : Tlwe.sample }

let context_create (p : Params.t) =
  let n = p.tlwe.ring_n in
  {
    ws = Tgsw.workspace_create p;
    testvect = Array.make n 0;
    acc = Tlwe.trivial p (Poly.zero n);
  }

type key = { bsk : Tgsw.fft_sample array; ctx : context }

let default_context key = key.ctx

let key_gen rng (p : Params.t) ~lwe_key ~tlwe_key =
  let encrypt_bit b = Tgsw.to_fft p (Tgsw.encrypt_int rng p tlwe_key b) in
  let bsk = Array.map encrypt_bit lwe_key.Lwe.bits in
  { bsk; ctx = context_create p }

(* The allocation-free core: acc is overwritten with the rotation of
   [testvect] by X^{−phase·2N}, then folded through the in-place CMux
   recurrence acc ← acc + bskᵢ ⊡ ((X^{āᵢ} − 1)·acc).  All scratch lives in
   [ws]; a steady-state call allocates nothing. *)
let blind_rotate_into (p : Params.t) ws key ~testvect ~(acc : Tlwe.sample) (s : Lwe.sample) =
  let n = p.tlwe.ring_n in
  let n2 = 2 * n in
  let barb = Torus.mod_switch_from s.b ~msize:n2 in
  Array.iter (fun m -> Array.fill m 0 n 0) acc.Tlwe.mask;
  Poly.mul_by_xai_into acc.Tlwe.body ((n2 - barb) mod n2) testvect;
  for i = 0 to Array.length s.a - 1 do
    let barai = Torus.mod_switch_from s.a.(i) ~msize:n2 in
    if barai <> 0 then Tgsw.cmux_rotate_into p ws key.bsk.(i) barai acc
  done

let blind_rotate_with (p : Params.t) ws key ~testvect (s : Lwe.sample) =
  let acc = Tlwe.trivial p (Poly.zero p.tlwe.ring_n) in
  blind_rotate_into p ws key ~testvect ~acc s;
  acc

let blind_rotate p key ~testvect s = blind_rotate_with p key.ctx.ws key ~testvect s

(* The pre-optimization CMux chain, kept as the reference the property tests
   and the micro benchmark's allocation comparison run against: every
   iteration allocates the rotated accumulator, the difference copy and the
   external-product result. *)
let blind_rotate_reference (p : Params.t) ws key ~testvect (s : Lwe.sample) =
  let n2 = 2 * p.tlwe.ring_n in
  let barb = Torus.mod_switch_from s.b ~msize:n2 in
  let start = Poly.mul_by_xai ((n2 - barb) mod n2) testvect in
  let acc = ref (Tlwe.trivial p start) in
  for i = 0 to Array.length s.a - 1 do
    let barai = Torus.mod_switch_from s.a.(i) ~msize:n2 in
    if barai <> 0 then
      acc := Tgsw.cmux p ws key.bsk.(i) (Tlwe.mul_by_xai barai !acc) !acc
  done;
  !acc

let bootstrap_with p ctx key ~mu s =
  (* The sign test vector is constant per call: refill the per-context
     buffer instead of allocating a ring-degree array on every gate, and
     rotate into the context accumulator. *)
  Array.fill ctx.testvect 0 (Array.length ctx.testvect) mu;
  blind_rotate_into p ctx.ws key ~testvect:ctx.testvect ~acc:ctx.acc s;
  Tlwe.extract_lwe p ctx.acc

let bootstrap_wo_keyswitch p key ~mu s = bootstrap_with p key.ctx key ~mu s

let key_bytes (p : Params.t) =
  let rows = (p.tlwe.k + 1) * p.tgsw.l in
  p.lwe.n * rows * (p.tlwe.k + 1) * p.tlwe.ring_n * 4

module Wire = Pytfhe_util.Wire

let write buf k =
  Wire.write_magic buf "BSKY";
  Wire.write_array buf Tgsw.write_fft k.bsk

let read p r =
  Wire.read_magic r "BSKY";
  let bsk = Wire.read_array r (fun r -> Tgsw.read_fft p r) in
  if Array.length bsk <> p.Params.lwe.Params.n then
    raise (Wire.Corrupt "bootstrapping key length does not match LWE dimension");
  { bsk; ctx = context_create p }

let programmable (p : Params.t) key ~msize f s =
  let n = p.Params.tlwe.ring_n in
  if msize <= 0 || n mod msize <> 0 then
    invalid_arg "Bootstrap.programmable: msize must divide the ring degree";
  let slot = n / msize in
  let testvect = Array.init n (fun j -> f (j / slot)) in
  (* Centre the phase inside its slot so symmetric noise cannot push it
     across a slot boundary. *)
  let centred = { s with Lwe.b = Torus.add s.Lwe.b (Torus.mod_switch_to 1 ~msize:(4 * msize)) } in
  let rotated = blind_rotate p key ~testvect centred in
  Tlwe.extract_lwe p rotated
