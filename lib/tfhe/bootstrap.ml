type context = { ws : Tgsw.workspace; testvect : Poly.torus_poly; acc : Tlwe.sample }

let context_create (p : Params.t) =
  let n = p.tlwe.ring_n in
  {
    ws = Tgsw.workspace_create p;
    testvect = Array.make n 0;
    acc = Tlwe.trivial p (Poly.zero n);
  }

type key = { bsk : Tgsw.fft_sample array; ctx : context }

let default_context key = key.ctx

let key_gen rng (p : Params.t) ~lwe_key ~tlwe_key =
  let encrypt_bit b = Tgsw.to_fft p (Tgsw.encrypt_int rng p tlwe_key b) in
  let bsk = Array.map encrypt_bit lwe_key.Lwe.bits in
  { bsk; ctx = context_create p }

(* The allocation-free core: acc is overwritten with the rotation of
   [testvect] by X^{−phase·2N}, then folded through the in-place CMux
   recurrence acc ← acc + bskᵢ ⊡ ((X^{āᵢ} − 1)·acc).  All scratch lives in
   [ws]; a steady-state call allocates nothing. *)
let blind_rotate_into (p : Params.t) ws key ~testvect ~(acc : Tlwe.sample) (s : Lwe.sample) =
  let n = p.tlwe.ring_n in
  let n2 = 2 * n in
  let barb = Torus.mod_switch_from s.b ~msize:n2 in
  Array.iter (fun m -> Array.fill m 0 n 0) acc.Tlwe.mask;
  Poly.mul_by_xai_into acc.Tlwe.body ((n2 - barb) mod n2) testvect;
  for i = 0 to Array.length s.a - 1 do
    let barai = Torus.mod_switch_from s.a.(i) ~msize:n2 in
    if barai <> 0 then Tgsw.cmux_rotate_into p ws key.bsk.(i) barai acc
  done

let blind_rotate_with (p : Params.t) ws key ~testvect (s : Lwe.sample) =
  let acc = Tlwe.trivial p (Poly.zero p.tlwe.ring_n) in
  blind_rotate_into p ws key ~testvect ~acc s;
  acc

let blind_rotate p key ~testvect s = blind_rotate_with p key.ctx.ws key ~testvect s

(* The pre-optimization CMux chain, kept as the reference the property tests
   and the micro benchmark's allocation comparison run against: every
   iteration allocates the rotated accumulator, the difference copy and the
   external-product result. *)
let blind_rotate_reference (p : Params.t) ws key ~testvect (s : Lwe.sample) =
  let n2 = 2 * p.tlwe.ring_n in
  let barb = Torus.mod_switch_from s.b ~msize:n2 in
  let start = Poly.mul_by_xai ((n2 - barb) mod n2) testvect in
  let acc = ref (Tlwe.trivial p start) in
  for i = 0 to Array.length s.a - 1 do
    let barai = Torus.mod_switch_from s.a.(i) ~msize:n2 in
    if barai <> 0 then
      acc := Tgsw.cmux p ws key.bsk.(i) (Tlwe.mul_by_xai barai !acc) !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Batched blind rotation (key streaming)                              *)
(* ------------------------------------------------------------------ *)

(* A wave of B gates shares one pass over the bootstrapping key: the outer
   loop walks the n TGSW entries once and the inner loop applies each
   entry's CMux-rotate step to all B accumulators, so the key is streamed
   from memory once per batch instead of once per gate.  Per accumulator
   the operation sequence (entries 0..n−1, ascending, with the same rotation
   amounts) is identical to the scalar {!blind_rotate_into}, and every
   [Tgsw.cmux_rotate_into] call fully overwrites its workspace scratch, so
   the batched path is ciphertext-bit-exact with the scalar one. *)
type batch = {
  bcap : int;
  bws : Tgsw.workspace;
  btestvect : Poly.torus_poly;
  baccs : Tlwe.sample array;
  taccs : Trlwe_array.t;  (* flat SoA accumulators for the row-batched path *)
  (* Key-traffic accounting, drained by the executors' obs counters. *)
  mutable bsk_rows_streamed : int;
  mutable launches : int;
  mutable gates_batched : int;
}

let batch_create (p : Params.t) ~cap =
  if cap < 1 then invalid_arg "Bootstrap.batch_create: cap must be >= 1";
  let n = p.tlwe.ring_n in
  {
    bcap = cap;
    bws = Tgsw.workspace_create p;
    btestvect = Array.make n 0;
    baccs = Array.init cap (fun _ -> Tlwe.trivial p (Poly.zero n));
    taccs = Trlwe_array.create p ~cap;
    bsk_rows_streamed = 0;
    launches = 0;
    gates_batched = 0;
  }

let batch_capacity (bt : batch) = bt.bcap

type batch_stats = { bsk_rows_streamed : int; launches : int; gates_batched : int }

let batch_stats (bt : batch) : batch_stats =
  {
    bsk_rows_streamed = bt.bsk_rows_streamed;
    launches = bt.launches;
    gates_batched = bt.gates_batched;
  }

let batch_reset_stats (bt : batch) =
  bt.bsk_rows_streamed <- 0;
  bt.launches <- 0;
  bt.gates_batched <- 0

let row_bytes (p : Params.t) =
  (* One bootstrapping-key entry in evaluation form: (k+1)·l TGSW rows of
     (k+1) component spectra — FFT: N/2 complex bins at two 8-byte floats;
     NTT: N residues under each of the two ~30-bit primes at 4 bytes. *)
  let rows = (p.tlwe.k + 1) * p.tgsw.l in
  match p.transform with
  | Pytfhe_fft.Transform.Fft -> rows * (p.tlwe.k + 1) * (p.tlwe.ring_n / 2) * 16
  | Pytfhe_fft.Transform.Ntt -> rows * (p.tlwe.k + 1) * p.tlwe.ring_n * 8

(* The loop interchange: key entry i is read once for the whole batch.
   Shared between the uniform-test-vector batch and the mixed-job batch —
   per accumulator the CMux sequence is identical to the scalar walk. *)
let batch_cmux_sweep (p : Params.t) (bt : batch) key (ss : Lwe.sample array) ~count =
  let n2 = 2 * p.tlwe.ring_n in
  for i = 0 to Array.length key.bsk - 1 do
    let touched = ref false in
    for b = 0 to count - 1 do
      let barai = Torus.mod_switch_from ss.(b).Lwe.a.(i) ~msize:n2 in
      if barai <> 0 then begin
        touched := true;
        Tgsw.cmux_rotate_into p bt.bws key.bsk.(i) barai bt.baccs.(b)
      end
    done;
    if !touched then bt.bsk_rows_streamed <- bt.bsk_rows_streamed + 1
  done

let blind_rotate_batch_into (p : Params.t) (bt : batch) key ~testvect (ss : Lwe.sample array)
    ~count =
  let n = p.tlwe.ring_n in
  let n2 = 2 * n in
  for b = 0 to count - 1 do
    let acc = bt.baccs.(b) in
    let barb = Torus.mod_switch_from ss.(b).Lwe.b ~msize:n2 in
    Array.iter (fun m -> Array.fill m 0 n 0) acc.Tlwe.mask;
    Poly.mul_by_xai_into acc.Tlwe.body ((n2 - barb) mod n2) testvect
  done;
  batch_cmux_sweep p bt key ss ~count

let batch_with p bt key ~mu (ss : Lwe.sample array) =
  let count = Array.length ss in
  if count = 0 then [||]
  else begin
    if count > bt.bcap then
      invalid_arg "Bootstrap.batch_with: batch larger than the workspace capacity";
    Array.fill bt.btestvect 0 (Array.length bt.btestvect) mu;
    blind_rotate_batch_into p bt key ~testvect:bt.btestvect ss ~count;
    bt.launches <- bt.launches + 1;
    bt.gates_batched <- bt.gates_batched + count;
    Array.init count (fun b -> Tlwe.extract_lwe p bt.baccs.(b))
  end

(* The SoA variant of the batched rotation: the accumulators are rows of
   one flat [Trlwe_array], so the interchanged inner loop sweeps contiguous
   storage while key entry i stays resident.  The per-row operation
   sequence (rotation amounts, CMux order, float conversions) is identical
   to [blind_rotate_batch_into] — and therefore to the scalar walk. *)
let blind_rotate_batch_rows (p : Params.t) (bt : batch) key ~testvect (src : Lwe_array.t) ~count
    =
  let n = p.tlwe.ring_n in
  let n2 = 2 * n in
  for b = 0 to count - 1 do
    Trlwe_array.clear_masks bt.taccs b;
    let barb = Torus.mod_switch_from (Lwe_array.body src b) ~msize:n2 in
    Trlwe_array.rotate_body_from bt.taccs b ((n2 - barb) mod n2) testvect
  done;
  for i = 0 to Array.length key.bsk - 1 do
    let touched = ref false in
    for b = 0 to count - 1 do
      let barai = Torus.mod_switch_from (Lwe_array.mask src b i) ~msize:n2 in
      if barai <> 0 then begin
        touched := true;
        Tgsw.cmux_rotate_row_into p bt.bws key.bsk.(i) barai bt.taccs ~row:b
      end
    done;
    if !touched then bt.bsk_rows_streamed <- bt.bsk_rows_streamed + 1
  done

let batch_rows_into p bt key ~mu ~(src : Lwe_array.t) ~(dst : Lwe_array.t) =
  let count = Lwe_array.length src in
  if count > 0 then begin
    if count > bt.bcap then
      invalid_arg "Bootstrap.batch_rows_into: batch larger than the workspace capacity";
    if Lwe_array.dim src <> Array.length key.bsk then
      invalid_arg "Bootstrap.batch_rows_into: input dimension does not match the key";
    if Lwe_array.dim dst <> p.Params.tlwe.k * p.Params.tlwe.ring_n then
      invalid_arg "Bootstrap.batch_rows_into: destination dimension is not the extracted one";
    if Lwe_array.length dst < count then
      invalid_arg "Bootstrap.batch_rows_into: destination shorter than the batch";
    Array.fill bt.btestvect 0 (Array.length bt.btestvect) mu;
    blind_rotate_batch_rows p bt key ~testvect:bt.btestvect src ~count;
    bt.launches <- bt.launches + 1;
    bt.gates_batched <- bt.gates_batched + count;
    for b = 0 to count - 1 do
      Trlwe_array.extract_row_into bt.taccs ~row:b dst ~drow:b
    done
  end

let bootstrap_with p ctx key ~mu s =
  (* The sign test vector is constant per call: refill the per-context
     buffer instead of allocating a ring-degree array on every gate, and
     rotate into the context accumulator. *)
  Array.fill ctx.testvect 0 (Array.length ctx.testvect) mu;
  blind_rotate_into p ctx.ws key ~testvect:ctx.testvect ~acc:ctx.acc s;
  Tlwe.extract_lwe p ctx.acc

let bootstrap_wo_keyswitch p key ~mu s = bootstrap_with p key.ctx key ~mu s

let key_bytes (p : Params.t) =
  let rows = (p.tlwe.k + 1) * p.tgsw.l in
  p.lwe.n * rows * (p.tlwe.k + 1) * p.tlwe.ring_n * 4

module Wire = Pytfhe_util.Wire

let write buf k =
  Wire.write_magic buf "BSKY";
  Wire.write_array buf Tgsw.write_fft k.bsk

let read p r =
  Wire.read_magic r "BSKY";
  let bsk = Wire.read_array r (fun r -> Tgsw.read_fft p r) in
  if Array.length bsk <> p.Params.lwe.Params.n then
    raise (Wire.Corrupt "bootstrapping key length does not match LWE dimension");
  { bsk; ctx = context_create p }

let programmable (p : Params.t) key ~msize f s =
  let n = p.Params.tlwe.ring_n in
  if msize <= 0 || n mod msize <> 0 then
    invalid_arg "Bootstrap.programmable: msize must divide the ring degree";
  let slot = n / msize in
  let testvect = Array.init n (fun j -> f (j / slot)) in
  (* Centre the phase inside its slot so symmetric noise cannot push it
     across a slot boundary. *)
  let centred = { s with Lwe.b = Torus.add s.Lwe.b (Torus.mod_switch_to 1 ~msize:(4 * msize)) } in
  let rotated = blind_rotate p key ~testvect centred in
  Tlwe.extract_lwe p rotated

(* ------------------------------------------------------------------ *)
(* Indicator bootstrapping for LUT cells                               *)
(* ------------------------------------------------------------------ *)

(* Every 2-/3-input LUT cell runs the same table-independent rotation: the
   test vector is a staircase whose top slot carries 1/16 (the lutdom unit)
   and the table is applied afterwards, as a sum of extracted indicator
   slots.  Extracting coefficient k·slot of the rotated accumulator yields
   an encryption of [m = msize−1−k]/16: writing u = m + k, the read lands
   on slot u for u ≤ msize−1 (positive sign, only u = msize−1 is hot) and
   on slot u − msize with a negacyclic sign flip otherwise — where the
   staircase is 0 because u − msize ≤ msize−2.  One blind rotation thus
   serves any number of tables over the same inputs (multi-value
   bootstrapping), and fusing nodes that share inputs is pure memoization:
   the rotation is deterministic, so fused and unfused execution are
   bit-identical. *)

let lut_amplitude = Torus.mod_switch_to 1 ~msize:16

let fill_lut_testvect (p : Params.t) ~msize tv =
  let n = p.Params.tlwe.ring_n in
  if msize <= 0 || n mod msize <> 0 then
    invalid_arg "Bootstrap.fill_lut_testvect: msize must divide the ring degree";
  let slot = n / msize in
  Array.fill tv 0 ((msize - 1) * slot) 0;
  Array.fill tv ((msize - 1) * slot) slot lut_amplitude

(* The same in-slot centring as {!programmable}, applied to the body so the
   scalar and batched paths build bit-identical rotation inputs. *)
let lut_centre ~msize (s : Lwe.sample) =
  { s with Lwe.b = Torus.add s.Lwe.b (Torus.mod_switch_to 1 ~msize:(4 * msize)) }

let lut_extract_indicators (p : Params.t) ~msize acc =
  let slot = p.Params.tlwe.ring_n / msize in
  (* Index by message value m: indicator m sits at slot (msize−1−m)·slot. *)
  Array.init msize (fun m -> Tlwe.extract_lwe_at p ~pos:((msize - 1 - m) * slot) acc)

let lut_indicators (p : Params.t) ctx key ~msize s =
  fill_lut_testvect p ~msize ctx.testvect;
  blind_rotate_into p ctx.ws key ~testvect:ctx.testvect ~acc:ctx.acc (lut_centre ~msize s);
  lut_extract_indicators p ~msize ctx.acc

(* ------------------------------------------------------------------ *)
(* Mixed-job batched bootstrapping                                     *)
(* ------------------------------------------------------------------ *)

(* A wave can mix sign bootstraps (classic gates and arity-1 LUT cells,
   each with its own ±mu) with indicator rotations (LUT cells); the key is
   still streamed once for the whole batch.  Per member the operation
   sequence is identical to the scalar path, so results stay bit-exact. *)

type job = Job_sign of Torus.t | Job_lut of int  (** message-space size *)

let batch_jobs (p : Params.t) (bt : batch) key (jobs : job array) (ss : Lwe.sample array) =
  let count = Array.length ss in
  if Array.length jobs <> count then invalid_arg "Bootstrap.batch_jobs: job/sample mismatch";
  if count = 0 then [||]
  else begin
    if count > bt.bcap then
      invalid_arg "Bootstrap.batch_jobs: batch larger than the workspace capacity";
    let n = p.tlwe.ring_n in
    let n2 = 2 * n in
    for b = 0 to count - 1 do
      let acc = bt.baccs.(b) in
      Array.iter (fun m -> Array.fill m 0 n 0) acc.Tlwe.mask;
      let body =
        match jobs.(b) with
        | Job_sign mu ->
          Array.fill bt.btestvect 0 n mu;
          ss.(b).Lwe.b
        | Job_lut msize ->
          fill_lut_testvect p ~msize bt.btestvect;
          Torus.add ss.(b).Lwe.b (Torus.mod_switch_to 1 ~msize:(4 * msize))
      in
      let barb = Torus.mod_switch_from body ~msize:n2 in
      Poly.mul_by_xai_into acc.Tlwe.body ((n2 - barb) mod n2) bt.btestvect
    done;
    batch_cmux_sweep p bt key ss ~count;
    bt.launches <- bt.launches + 1;
    bt.gates_batched <- bt.gates_batched + count;
    Array.init count (fun b ->
        match jobs.(b) with
        | Job_sign _ -> [| Tlwe.extract_lwe p bt.baccs.(b) |]
        | Job_lut msize -> lut_extract_indicators p ~msize bt.baccs.(b))
  end
