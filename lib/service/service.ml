(* The FHE-as-a-service server: a persistent TCP endpoint that holds many
   tenants' cloud keysets and executes their submitted programs, packing
   independent ready gates from concurrent requests that share a keyset
   into the same batched bootstrap launch.

   Design notes:

   - One thread, one select loop.  Admission, frame parsing, scheduling
     and execution all happen on the scheduler thread: a bootstrap launch
     is the unit of progress, and the loop re-polls every socket between
     launches, so newly arrived requests join the packing frontier at the
     next launch boundary (latency granularity = one launch).
   - The key-management model is the TFHE SecretKey/CloudKey split: SREG
     registers a *cloud* keyset under a client id (the secret keyset never
     crosses the wire), SSES opens a session whose params + transform tag
     must match the registered keyset, SREQ executes under a session.
   - Cross-request packing is per tenant: ciphertexts under different
     keys can never share a launch.  Within a tenant the scheduler takes
     ready gates from requests in admission order until the batch
     capacity is filled; per gate the combine → bootstrap → key-switch
     sequence is identical to Tfhe_eval's batched walk, so replies are
     ciphertext-bit-exact with a per-tenant Server.run.
   - Failure isolation: a frame whose payload fails validation draws an
     SERR on that connection and nothing else; a connection dying takes
     its own sessions and in-flight requests with it; evicting a keyset
     fails exactly that tenant's in-flight requests. *)

module Wire = Pytfhe_util.Wire
module Trace = Pytfhe_obs.Trace
module Quantile = Pytfhe_obs.Quantile
module Netlist = Pytfhe_circuit.Netlist
module Gate = Pytfhe_circuit.Gate
module Levelize = Pytfhe_circuit.Levelize
module Framing = Pytfhe_backend.Framing
module Dist_eval = Pytfhe_backend.Dist_eval
module Tfhe_eval = Pytfhe_backend.Tfhe_eval
module Executor = Pytfhe_backend.Executor
module Exec_opts = Pytfhe_backend.Exec_opts
module Exec_obs = Pytfhe_backend.Exec_obs
module Server = Pytfhe_core.Server
module Pipeline = Pytfhe_core.Pipeline
open Pytfhe_tfhe

(* ------------------------------------------------------------------ *)
(* Protocol vocabulary                                                 *)
(* ------------------------------------------------------------------ *)

type error_code = Corrupt | Unknown | Evicted | Busy | Mismatch | Internal

let int_of_error_code = function
  | Corrupt -> 1
  | Unknown -> 2
  | Evicted -> 3
  | Busy -> 4
  | Mismatch -> 5
  | Internal -> 6

let error_code_of_int = function
  | 1 -> Corrupt
  | 2 -> Unknown
  | 3 -> Evicted
  | 4 -> Busy
  | 5 -> Mismatch
  | 6 -> Internal
  | v -> raise (Wire.Corrupt (Printf.sprintf "Service: unknown error code %d" v))

let string_of_error_code = function
  | Corrupt -> "corrupt"
  | Unknown -> "unknown"
  | Evicted -> "evicted"
  | Busy -> "busy"
  | Mismatch -> "mismatch"
  | Internal -> "internal"

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

type tenant_traffic = { id : string; bytes_in : int; bytes_out : int }

type stats = {
  backend : string;
  keysets_registered : int;
  keysets_evicted : int;
  sessions_opened : int;
  requests_admitted : int;
  requests_completed : int;
  requests_failed : int;
  batch_launches : int;
  batched_gates : int;
  batch_fill : float;
  lut_rotations : int;
  queue_depth : int;
  active_requests : int;
  max_queue_depth : int;
  latency : Quantile.summary;
  tenants : tenant_traffic array;
}

let write_stats buf s =
  Wire.write_string buf s.backend;
  Wire.write_i64 buf s.keysets_registered;
  Wire.write_i64 buf s.keysets_evicted;
  Wire.write_i64 buf s.sessions_opened;
  Wire.write_i64 buf s.requests_admitted;
  Wire.write_i64 buf s.requests_completed;
  Wire.write_i64 buf s.requests_failed;
  Wire.write_i64 buf s.batch_launches;
  Wire.write_i64 buf s.batched_gates;
  Wire.write_f64 buf s.batch_fill;
  Wire.write_i64 buf s.lut_rotations;
  Wire.write_i64 buf s.queue_depth;
  Wire.write_i64 buf s.active_requests;
  Wire.write_i64 buf s.max_queue_depth;
  Wire.write_i64 buf s.latency.Quantile.count;
  Wire.write_f64 buf s.latency.Quantile.mean;
  Wire.write_f64 buf s.latency.Quantile.p50;
  Wire.write_f64 buf s.latency.Quantile.p90;
  Wire.write_f64 buf s.latency.Quantile.p99;
  Wire.write_f64 buf s.latency.Quantile.max;
  Wire.write_array buf
    (fun buf t ->
      Wire.write_string buf t.id;
      Wire.write_i64 buf t.bytes_in;
      Wire.write_i64 buf t.bytes_out)
    s.tenants

let read_stats r =
  let backend = Wire.read_string r in
  let keysets_registered = Wire.read_i64 r in
  let keysets_evicted = Wire.read_i64 r in
  let sessions_opened = Wire.read_i64 r in
  let requests_admitted = Wire.read_i64 r in
  let requests_completed = Wire.read_i64 r in
  let requests_failed = Wire.read_i64 r in
  let batch_launches = Wire.read_i64 r in
  let batched_gates = Wire.read_i64 r in
  let batch_fill = Wire.read_f64 r in
  let lut_rotations = Wire.read_i64 r in
  let queue_depth = Wire.read_i64 r in
  let active_requests = Wire.read_i64 r in
  let max_queue_depth = Wire.read_i64 r in
  let count = Wire.read_i64 r in
  let mean = Wire.read_f64 r in
  let p50 = Wire.read_f64 r in
  let p90 = Wire.read_f64 r in
  let p99 = Wire.read_f64 r in
  let max = Wire.read_f64 r in
  let tenants =
    Wire.read_array r (fun r ->
        let id = Wire.read_string r in
        let bytes_in = Wire.read_i64 r in
        let bytes_out = Wire.read_i64 r in
        { id; bytes_in; bytes_out })
  in
  {
    backend;
    keysets_registered;
    keysets_evicted;
    sessions_opened;
    requests_admitted;
    requests_completed;
    requests_failed;
    batch_launches;
    batched_gates;
    batch_fill;
    lut_rotations;
    queue_depth;
    active_requests;
    max_queue_depth;
    latency = { Quantile.count; mean; p50; p90; p99; max };
    tenants;
  }

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  host : string;
  port : int;
  backlog : int;
  max_active : int;
  max_queue : int;
  max_program_bytes : int;
  backend : Server.exec_backend;
  idle_timeout : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    backlog = 16;
    max_active = 32;
    max_queue = 256;
    max_program_bytes = 1 lsl 26;
    backend = Server.Cpu;
    idle_timeout = 0.05;
  }

let default_opts = { Executor.default_opts with Exec_opts.batch = Some 8 }

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  hdr : Bytes.t;
  mutable hdr_got : int;
  mutable payload : Bytes.t;
  mutable payload_got : int;
  mutable expecting : int;  (* -1 = reading header *)
  mutable alive : bool;
}

type session = { s_client : string; s_generation : int; s_conn : conn }

type request = {
  rq_id : int;
  rq_conn : conn;
  rq_client : string;
  rq_generation : int;
  rq_compiled : Pipeline.compiled;
  rq_waves : Levelize.wave array;
  rq_values : Lwe.sample option array;
  rq_inputs : Lwe.sample array;
  mutable rq_wave : int;
  mutable rq_classic : Netlist.id list;  (* unexecuted classic gates of the current wave *)
  rq_submitted : float;
  mutable rq_started : float;
  mutable rq_bootstraps : int;
  mutable rq_done : bool;
}

type tenant = {
  t_ck : Gates.cloud_keyset;
  t_n : int;
  t_cap : int;
  t_bc : Gates.batch_context;
  t_staging : Lwe_array.t;
}

type state = {
  cfg : config;
  opts : Executor.opts;
  cap : int;
  ring : Keyring.t;
  sessions : (int, session) Hashtbl.t;
  tenants : (string * int, tenant) Hashtbl.t;  (* (client, generation) *)
  traffic : (string, int ref * int ref) Hashtbl.t;  (* client -> in, out *)
  mutable conns : conn list;
  mutable active : request list;  (* admission order *)
  queue : request Queue.t;
  mutable running : bool;
  mutable next_session : int;
  (* counters *)
  mutable c_registered : int;
  mutable c_evicted : int;
  mutable c_sessions : int;
  mutable c_admitted : int;
  mutable c_completed : int;
  mutable c_failed : int;
  mutable c_launches : int;
  mutable c_gates : int;
  mutable c_lut_rotations : int;
  mutable c_max_queue : int;
  mutable latencies : float list;
  tr : Trace.track;
}

let traffic_of st id =
  match Hashtbl.find_opt st.traffic id with
  | Some t -> t
  | None ->
    let t = (ref 0, ref 0) in
    Hashtbl.replace st.traffic id t;
    t

let count_in st id bytes =
  let i, _ = traffic_of st id in
  i := !i + bytes

let count_out st id bytes =
  let _, o = traffic_of st id in
  o := !o + bytes

let snapshot st =
  {
    backend = Server.exec_backend_name st.cfg.backend;
    keysets_registered = st.c_registered;
    keysets_evicted = st.c_evicted;
    sessions_opened = st.c_sessions;
    requests_admitted = st.c_admitted;
    requests_completed = st.c_completed;
    requests_failed = st.c_failed;
    batch_launches = st.c_launches;
    batched_gates = st.c_gates;
    batch_fill =
      (if st.c_launches > 0 then float_of_int st.c_gates /. float_of_int st.c_launches
       else 0.0);
    lut_rotations = st.c_lut_rotations;
    queue_depth = Queue.length st.queue;
    active_requests = List.length st.active;
    max_queue_depth = st.c_max_queue;
    latency = Quantile.summarize (Array.of_list st.latencies);
    tenants =
      Hashtbl.fold
        (fun id (i, o) acc -> { id; bytes_in = !i; bytes_out = !o } :: acc)
        st.traffic []
      |> List.sort (fun a b -> String.compare a.id b.id)
      |> Array.of_list;
  }

(* ------------------------------------------------------------------ *)
(* Frame sending                                                       *)
(* ------------------------------------------------------------------ *)

let send_frame st conn ?tenant payload =
  if conn.alive then begin
    match Framing.write_frame conn.fd payload with
    | n -> ( match tenant with Some id -> count_out st id n | None -> ())
    | exception (Framing.Frame_closed | Unix.Unix_error _) -> conn.alive <- false
  end

let send_ack st conn ?tenant ~value info =
  let buf = Buffer.create 64 in
  Wire.write_magic buf "SACK";
  Wire.write_i64 buf value;
  Wire.write_string buf info;
  send_frame st conn ?tenant (Buffer.to_bytes buf)

let send_err st conn ?tenant ~req code message =
  let buf = Buffer.create 128 in
  Wire.write_magic buf "SERR";
  Wire.write_i64 buf req;
  Wire.write_u8 buf (int_of_error_code code);
  Wire.write_string buf message;
  send_frame st conn ?tenant (Buffer.to_bytes buf)

(* ------------------------------------------------------------------ *)
(* Request lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

let tenant_state st client generation ck =
  let key = (client, generation) in
  match Hashtbl.find_opt st.tenants key with
  | Some t -> t
  | None ->
    let p = ck.Gates.cloud_params in
    Params.precompute p;
    let n = p.Params.lwe.Params.n in
    let cap = st.cap in
    let t =
      {
        t_ck = ck;
        t_n = n;
        t_cap = cap;
        t_bc = Gates.batch_context ck ~cap;
        t_staging = Lwe_array.create ~n cap;
      }
    in
    Hashtbl.replace st.tenants key t;
    t

let classic_view rq id = Tfhe_eval.classic_view rq.rq_compiled.Pipeline.netlist rq.rq_values id

let finish st rq =
  let net = rq.rq_compiled.Pipeline.netlist in
  let outputs =
    Netlist.outputs net |> List.map (fun (_, id) -> classic_view rq id) |> Array.of_list
  in
  let now = Unix.gettimeofday () in
  rq.rq_done <- true;
  st.c_completed <- st.c_completed + 1;
  st.latencies <- (now -. rq.rq_submitted) :: st.latencies;
  let buf = Buffer.create 4096 in
  Wire.write_magic buf "SREP";
  Wire.write_i64 buf rq.rq_id;
  Wire.write_f64 buf (rq.rq_started -. rq.rq_submitted);
  Wire.write_f64 buf (now -. rq.rq_started);
  Wire.write_i64 buf rq.rq_bootstraps;
  Wire.write_array buf Lwe.write_sample outputs;
  send_frame st rq.rq_conn ~tenant:rq.rq_client (Buffer.to_bytes buf)

let fail_request st rq code message =
  if not rq.rq_done then begin
    rq.rq_done <- true;
    st.c_failed <- st.c_failed + 1;
    if rq.rq_conn.alive then
      send_err st rq.rq_conn ~tenant:rq.rq_client ~req:rq.rq_id code message
  end

(* Load the current wave: run its LUT cells immediately (per-request,
   batched through the tenant's context) and expose its classic gates to
   the cross-request packing frontier. *)
let load_wave st t rq =
  let net = rq.rq_compiled.Pipeline.netlist in
  let wave = rq.rq_waves.(rq.rq_wave) in
  let classic, luts = Tfhe_eval.partition_wave net wave.Levelize.parallel in
  if Array.length luts > 0 then begin
    let rots =
      Tfhe_eval.run_lut_cells net
        ~get:(fun id -> Option.get rq.rq_values.(id))
        ~set:(fun id v -> rq.rq_values.(id) <- Some v)
        t.t_bc ~batch:t.t_cap ~n:t.t_n
        (Tfhe_eval.build_lut_cells net luts)
    in
    rq.rq_bootstraps <- rq.rq_bootstraps + rots;
    st.c_lut_rotations <- st.c_lut_rotations + rots
  end;
  rq.rq_classic <- Array.to_list classic

(* Called whenever the current wave's classic gates are exhausted: run the
   wave's inline NOTs, move on, and keep going through waves that carry no
   classic gates (pure-LUT or pure-NOT waves execute right here). *)
let rec advance st t rq =
  let net = rq.rq_compiled.Pipeline.netlist in
  Array.iter
    (fun id ->
      match Netlist.kind net id with
      | Netlist.Gate (g, a, _) when Gate.is_unary g ->
        rq.rq_values.(id) <- Some (Lwe.neg (classic_view rq a))
      | _ -> assert false)
    rq.rq_waves.(rq.rq_wave).Levelize.inline;
  rq.rq_wave <- rq.rq_wave + 1;
  if rq.rq_wave >= Array.length rq.rq_waves then finish st rq
  else begin
    load_wave st t rq;
    if rq.rq_classic = [] then advance st t rq
  end

let admit st rq =
  st.c_admitted <- st.c_admitted + 1;
  rq.rq_started <- Unix.gettimeofday ();
  match Keyring.find st.ring rq.rq_client with
  | None -> fail_request st rq Evicted "keyset evicted before admission"
  | Some e when e.Keyring.generation <> rq.rq_generation ->
    fail_request st rq Unknown "keyset re-registered; reopen the session"
  | Some e -> (
    let net = rq.rq_compiled.Pipeline.netlist in
    let input_list = Netlist.inputs net in
    List.iteri (fun i (_, id) -> rq.rq_values.(id) <- Some rq.rq_inputs.(i)) input_list;
    match st.cfg.backend with
    | Server.Cpu ->
      let t = tenant_state st rq.rq_client rq.rq_generation e.Keyring.keyset in
      for id = 0 to Netlist.node_count net - 1 do
        match Netlist.kind net id with
        | Netlist.Const b -> rq.rq_values.(id) <- Some (Gates.constant t.t_ck b)
        | _ -> ()
      done;
      st.active <- st.active @ [ rq ];
      if Array.length rq.rq_waves = 0 then finish st rq
      else begin
        rq.rq_wave <- 0;
        load_wave st t rq;
        if rq.rq_classic = [] then advance st t rq
      end
    | backend -> (
      (* Pass-through mode: no cross-request packing; each request runs
         whole through the selected executor, in admission order. *)
      try
        let outputs, es =
          Server.run ~opts:st.opts backend e.Keyring.keyset rq.rq_compiled rq.rq_inputs
        in
        rq.rq_bootstraps <- es.Executor.bootstraps_executed;
        rq.rq_done <- true;
        st.c_completed <- st.c_completed + 1;
        let now = Unix.gettimeofday () in
        st.latencies <- (now -. rq.rq_submitted) :: st.latencies;
        let buf = Buffer.create 4096 in
        Wire.write_magic buf "SREP";
        Wire.write_i64 buf rq.rq_id;
        Wire.write_f64 buf (rq.rq_started -. rq.rq_submitted);
        Wire.write_f64 buf (now -. rq.rq_started);
        Wire.write_i64 buf rq.rq_bootstraps;
        Wire.write_array buf Lwe.write_sample outputs;
        send_frame st rq.rq_conn ~tenant:rq.rq_client (Buffer.to_bytes buf)
      with Failure msg | Invalid_argument msg -> fail_request st rq Internal msg))

let prune_active st = st.active <- List.filter (fun rq -> not rq.rq_done) st.active

let admit_waiting st =
  while (not (Queue.is_empty st.queue)) && List.length st.active < st.cfg.max_active do
    admit st (Queue.pop st.queue)
  done;
  prune_active st

(* One batched bootstrap launch: pick the tenant owning the oldest ready
   request, fill up to [cap] ready gates from that tenant's requests in
   admission order, execute them as one launch, then advance every request
   whose wave drained. *)
let launch_one st =
  let ready rq = (not rq.rq_done) && rq.rq_classic <> [] in
  match List.find_opt ready st.active with
  | None -> false
  | Some first ->
    let client = first.rq_client and generation = first.rq_generation in
    let t =
      match Hashtbl.find_opt st.tenants (client, generation) with
      | Some t -> t
      | None -> assert false (* pinned at admission *)
    in
    let jobs = ref [] and budget = ref st.cap in
    List.iter
      (fun rq ->
        if ready rq && rq.rq_client = client && rq.rq_generation = generation then
          while !budget > 0 && rq.rq_classic <> [] do
            (match rq.rq_classic with
            | id :: rest ->
              jobs := (rq, id) :: !jobs;
              rq.rq_classic <- rest
            | [] -> assert false);
            decr budget
          done)
      st.active;
    let jobs = Array.of_list (List.rev !jobs) in
    let len = Array.length jobs in
    let combined =
      Array.map
        (fun (rq, id) ->
          match Netlist.kind rq.rq_compiled.Pipeline.netlist id with
          | Netlist.Gate (g, a, b) ->
            Gates.combine ~n:t.t_n (Tfhe_eval.plan_of g) (classic_view rq a)
              (classic_view rq b)
          | _ -> assert false)
        jobs
    in
    let outs =
      if st.opts.Exec_opts.soa then begin
        Array.iteri (fun i s -> Lwe_array.set t.t_staging i s) combined;
        let rows = Gates.bootstrap_batch_rows t.t_bc (Lwe_array.slice t.t_staging ~pos:0 ~len) in
        Array.init len (Lwe_array.get rows)
      end
      else Gates.bootstrap_batch t.t_bc combined
    in
    Array.iteri
      (fun i (rq, id) ->
        rq.rq_values.(id) <- Some outs.(i);
        rq.rq_bootstraps <- rq.rq_bootstraps + 1)
      jobs;
    st.c_launches <- st.c_launches + 1;
    st.c_gates <- st.c_gates + len;
    (* Advance each distinct request that drained its wave. *)
    Array.iter
      (fun (rq, _) -> if (not rq.rq_done) && rq.rq_classic = [] then advance st t rq)
      jobs;
    prune_active st;
    if Trace.enabled st.opts.Exec_opts.obs then begin
      Exec_obs.service_counters st.tr
        ~queue_depth:(Queue.length st.queue)
        ~active:(List.length st.active) ~launches:1 ~gates:len ~cap:st.cap;
      Trace.drain st.opts.Exec_opts.obs
    end;
    true

(* ------------------------------------------------------------------ *)
(* Frame handling                                                      *)
(* ------------------------------------------------------------------ *)

let close_conn st conn =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    (* Sessions die with their connection. *)
    let dead =
      Hashtbl.fold
        (fun sid s acc -> if s.s_conn == conn then sid :: acc else acc)
        st.sessions []
    in
    List.iter (Hashtbl.remove st.sessions) dead;
    (* In-flight requests from this connection have nowhere to reply. *)
    List.iter
      (fun rq ->
        if rq.rq_conn == conn && not rq.rq_done then begin
          rq.rq_done <- true;
          st.c_failed <- st.c_failed + 1
        end)
      st.active;
    Queue.iter
      (fun rq ->
        if rq.rq_conn == conn && not rq.rq_done then begin
          rq.rq_done <- true;
          st.c_failed <- st.c_failed + 1
        end)
      st.queue;
    prune_active st
  end

let evict_client st conn id =
  Keyring.validate_id id;
  let existed = Keyring.evict st.ring id in
  if existed then begin
    st.c_evicted <- st.c_evicted + 1;
    (* Drop every cached generation of the tenant's execution state. *)
    let stale =
      Hashtbl.fold
        (fun (c, g) _ acc -> if c = id then (c, g) :: acc else acc)
        st.tenants []
    in
    List.iter (Hashtbl.remove st.tenants) stale;
    (* Fail exactly this tenant's in-flight and queued requests. *)
    List.iter
      (fun rq -> if rq.rq_client = id then fail_request st rq Evicted "keyset evicted")
      st.active;
    Queue.iter
      (fun rq -> if rq.rq_client = id then fail_request st rq Evicted "keyset evicted")
      st.queue;
    prune_active st;
    let drained = Queue.fold (fun acc rq -> if rq.rq_done then acc else rq :: acc) [] st.queue in
    Queue.clear st.queue;
    List.iter (fun rq -> Queue.push rq st.queue) (List.rev drained);
    (* Sessions bound to the evicted keyset become invalid. *)
    let dead =
      Hashtbl.fold
        (fun sid s acc -> if s.s_client = id then sid :: acc else acc)
        st.sessions []
    in
    List.iter (Hashtbl.remove st.sessions) dead
  end;
  send_ack st conn ~tenant:id ~value:(if existed then 1 else 0)
    (if existed then "evicted" else "not registered")

let handle_frame st conn payload =
  let size = 12 + String.length payload in
  if String.length payload < 4 then raise (Wire.Corrupt "Service: short payload");
  let magic = String.sub payload 0 4 in
  let r = Wire.reader_of_string payload in
  match magic with
  | "SREG" ->
    Wire.read_magic r "SREG";
    let id = Wire.read_string r in
    Keyring.validate_id id;
    count_in st id size;
    let hello = Wire.read_string r in
    (* Reuse the DHEL handshake parser: it validates the transform tag
       against the keyset's own parameters and raises Wire.Corrupt on
       mismatch — a registration must fail loudly, not mis-evaluate. *)
    let _, _, _, _, ck = Dist_eval.parse_hello (Wire.reader_of_string hello) in
    Keyring.register st.ring ~id ~now:(Unix.gettimeofday ()) ck;
    st.c_registered <- st.c_registered + 1;
    send_ack st conn ~tenant:id ~value:0 "registered"
  | "SSES" ->
    Wire.read_magic r "SSES";
    let id = Wire.read_string r in
    Keyring.validate_id id;
    count_in st id size;
    let params = Params.read r in
    let code = Wire.read_u8 r in
    let transform =
      match Pytfhe_fft.Transform.kind_of_code code with
      | Some k -> k
      | None -> raise (Wire.Corrupt (Printf.sprintf "Service: unknown transform code %d" code))
    in
    (match Keyring.find st.ring id with
    | None -> send_err st conn ~tenant:id ~req:0 Unknown ("unknown client id " ^ id)
    | Some e ->
      let ck_params = e.Keyring.keyset.Gates.cloud_params in
      if transform <> ck_params.Params.transform then
        send_err st conn ~tenant:id ~req:0 Mismatch
          "transform tag does not match the registered keyset"
      else if not (Params.equal params ck_params) then
        send_err st conn ~tenant:id ~req:0 Mismatch
          "parameter set does not match the registered keyset"
      else begin
        let sid = st.next_session in
        st.next_session <- st.next_session + 1;
        st.c_sessions <- st.c_sessions + 1;
        Hashtbl.replace st.sessions sid
          { s_client = id; s_generation = e.Keyring.generation; s_conn = conn };
        send_ack st conn ~tenant:id ~value:sid "session open"
      end)
  | "SREQ" -> (
    Wire.read_magic r "SREQ";
    let sid = Wire.read_i64 r in
    let req = Wire.read_i64 r in
    match Hashtbl.find_opt st.sessions sid with
    | None -> send_err st conn ~req Unknown (Printf.sprintf "unknown session %d" sid)
    | Some s -> (
      count_in st s.s_client size;
      try
        let name = Wire.read_string r in
        let program = Wire.read_string r in
        let inputs = Wire.read_array r Lwe.read_sample in
        let compiled =
          Pipeline.of_binary ~max_bytes:st.cfg.max_program_bytes ~name (Bytes.of_string program)
        in
        let net = compiled.Pipeline.netlist in
        if List.length (Netlist.inputs net) <> Array.length inputs then
          raise
            (Wire.Corrupt
               (Printf.sprintf "Service: program %s expects %d inputs, got %d" name
                  (List.length (Netlist.inputs net))
                  (Array.length inputs)));
        if Queue.length st.queue >= st.cfg.max_queue then
          send_err st conn ~tenant:s.s_client ~req Busy "admission queue full"
        else begin
          let rq =
            {
              rq_id = req;
              rq_conn = conn;
              rq_client = s.s_client;
              rq_generation = s.s_generation;
              rq_compiled = compiled;
              rq_waves = Levelize.waves compiled.Pipeline.schedule net;
              rq_values = Array.make (Netlist.node_count net) None;
              rq_inputs = inputs;
              rq_wave = 0;
              rq_classic = [];
              rq_submitted = Unix.gettimeofday ();
              rq_started = 0.0;
              rq_bootstraps = 0;
              rq_done = false;
            }
          in
          Queue.push rq st.queue;
          st.c_max_queue <- Int.max st.c_max_queue (Queue.length st.queue)
        end
      with
      | Wire.Corrupt msg -> send_err st conn ~tenant:s.s_client ~req Corrupt msg
      | Failure msg -> send_err st conn ~tenant:s.s_client ~req Corrupt msg))
  | "SEVI" ->
    Wire.read_magic r "SEVI";
    let id = Wire.read_string r in
    count_in st id size;
    evict_client st conn id
  | "SSTA" ->
    Wire.read_magic r "SSTA";
    let buf = Buffer.create 512 in
    Wire.write_magic buf "SSTR";
    write_stats buf (snapshot st);
    send_frame st conn (Buffer.to_bytes buf)
  | "SBYE" ->
    send_ack st conn ~value:0 "bye";
    close_conn st conn
  | "SHUT" ->
    send_ack st conn ~value:0 "shutting down";
    st.running <- false
  | m -> raise (Wire.Corrupt ("Service: unknown message magic " ^ m))

(* A protocol error inside a frame draws an SERR and leaves the
   connection (and every other session) running; only envelope-level
   corruption kills the connection, because the byte stream can no longer
   be trusted to re-synchronize. *)
let handle_frame_safe st conn payload =
  try handle_frame st conn payload with
  | Wire.Corrupt msg -> send_err st conn ~req:0 Corrupt msg
  | Invalid_argument msg | Failure msg -> send_err st conn ~req:0 Internal msg

let ingest st conn buf n =
  let pos = ref 0 in
  while !pos < n && conn.alive do
    if conn.expecting < 0 then begin
      let take = Int.min (12 - conn.hdr_got) (n - !pos) in
      Bytes.blit buf !pos conn.hdr conn.hdr_got take;
      conn.hdr_got <- conn.hdr_got + take;
      pos := !pos + take;
      if conn.hdr_got = 12 then
        if Bytes.sub_string conn.hdr 0 4 <> Framing.frame_magic then close_conn st conn
        else begin
          let len = Int64.to_int (Bytes.get_int64_le conn.hdr 4) in
          if len < 0 || len > Framing.max_frame then close_conn st conn
          else begin
            conn.expecting <- len;
            conn.payload <- Bytes.create len;
            conn.payload_got <- 0
          end
        end
    end
    else begin
      let take = Int.min (conn.expecting - conn.payload_got) (n - !pos) in
      Bytes.blit buf !pos conn.payload conn.payload_got take;
      conn.payload_got <- conn.payload_got + take;
      pos := !pos + take;
      if conn.payload_got = conn.expecting then begin
        let payload = Bytes.unsafe_to_string conn.payload in
        conn.expecting <- -1;
        conn.hdr_got <- 0;
        conn.payload <- Bytes.empty;
        handle_frame_safe st conn payload
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* The select loop                                                     *)
(* ------------------------------------------------------------------ *)

let serve ?opts ?(config = default_config) ?(ready = fun _ -> ()) () =
  let opts =
    match opts with
    | Some o -> o
    | None -> ( match config.backend with Server.Cpu -> default_opts | _ -> Executor.default_opts)
  in
  (match config.backend with
  | Server.Multiprocess _ -> Exec_opts.check_scalar_only ~who:"Service.serve" opts
  | _ -> ());
  let cap = match opts.Exec_opts.batch with Some b when b >= 1 -> b | _ -> 1 in
  (* A tenant hanging up while a reply is in flight must surface as EPIPE
     on that connection, not kill the server process.  Left installed on
     return: in-process peers (tests, benches) may still be flushing
     goodbyes when the loop exits, and restoring the default disposition
     under them would turn that race into a SIGPIPE death. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
  Unix.listen listen_fd config.backlog;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let st =
    {
      cfg = config;
      opts;
      cap;
      ring = Keyring.create ();
      sessions = Hashtbl.create 16;
      tenants = Hashtbl.create 16;
      traffic = Hashtbl.create 16;
      conns = [];
      active = [];
      queue = Queue.create ();
      running = true;
      next_session = 1;
      c_registered = 0;
      c_evicted = 0;
      c_sessions = 0;
      c_admitted = 0;
      c_completed = 0;
      c_failed = 0;
      c_launches = 0;
      c_gates = 0;
      c_lut_rotations = 0;
      c_max_queue = 0;
      latencies = [];
      tr = Trace.new_track opts.Exec_opts.obs ~name:"service";
    }
  in
  ready port;
  let rbuf = Bytes.create 65536 in
  let have_work () = st.active <> [] || not (Queue.is_empty st.queue) in
  let have_ready () = List.exists (fun rq -> rq.rq_classic <> []) st.active in
  while st.running || have_work () do
    (* 1. Poll sockets.  Zero timeout while compute is pending so arriving
       requests can join the next launch; block briefly when idle. *)
    if st.running then begin
      let timeout = if have_work () then 0.0 else config.idle_timeout in
      st.conns <- List.filter (fun c -> c.alive) st.conns;
      let fds = listen_fd :: List.map (fun c -> c.fd) st.conns in
      let readable, _, _ =
        try Unix.select fds [] [] timeout with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          if fd = listen_fd then begin
            match Unix.accept listen_fd with
            | cfd, _ ->
              (try Unix.setsockopt cfd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
              let conn =
                {
                  fd = cfd;
                  hdr = Bytes.create 12;
                  hdr_got = 0;
                  payload = Bytes.empty;
                  payload_got = 0;
                  expecting = -1;
                  alive = true;
                }
              in
              st.conns <- st.conns @ [ conn ]
            | exception Unix.Unix_error _ -> ()
          end
          else
            match List.find_opt (fun c -> c.fd = fd && c.alive) st.conns with
            | None -> ()
            | Some conn -> (
              match Unix.read conn.fd rbuf 0 (Bytes.length rbuf) with
              | 0 -> close_conn st conn
              | n -> ingest st conn rbuf n
              | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                close_conn st conn
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
        readable
    end;
    (* 2. Admit waiting requests up to the active-set bound. *)
    admit_waiting st;
    (* 3. One batched launch of packed ready gates. *)
    if have_ready () then ignore (launch_one st)
  done;
  (* Emit per-tenant traffic before the sink is drained for the last time. *)
  if Trace.enabled opts.Exec_opts.obs then begin
    Hashtbl.iter
      (fun id (i, o) -> Exec_obs.tenant_bytes st.tr ~id ~bytes_in:!i ~bytes_out:!o)
      st.traffic;
    Trace.drain opts.Exec_opts.obs
  end;
  List.iter (fun c -> if c.alive then close_conn st c) st.conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  snapshot st
