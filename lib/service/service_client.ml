(* Client-side bindings for the service protocol.  Small and synchronous:
   every call sends one frame; [await] reads frames until the wanted
   request id's reply appears, stashing out-of-order replies (the server
   completes requests in scheduler order, not submission order). *)

module Wire = Pytfhe_util.Wire
module Framing = Pytfhe_backend.Framing
module Dist_eval = Pytfhe_backend.Dist_eval
open Pytfhe_tfhe

type outcome =
  | Done of {
      outputs : Lwe.sample array;
      queue_delay : float;
      exec_wall : float;
      bootstraps : int;
    }
  | Failed of { code : Service.error_code; message : string }

type t = {
  fd : Unix.file_descr;
  mutable next_req : int;
  completed : (int, outcome) Hashtbl.t;
  mutable closed : bool;
}

let connect ?(host = "127.0.0.1") ~port () =
  (* A server hanging up mid-conversation must surface as EPIPE (caught
     around every send) rather than kill the client process. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  { fd; next_req = 1; completed = Hashtbl.create 8; closed = false }

let send t payload = ignore (Framing.write_frame t.fd payload)

let send_raw t bytes = Framing.write_all t.fd bytes 0 (Bytes.length bytes)

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try
       let buf = Buffer.create 8 in
       Wire.write_magic buf "SBYE";
       send t (Buffer.to_bytes buf)
     with Framing.Frame_closed | Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* Connection-scope errors (req id 0) surface as exceptions: protocol
   mistakes as Wire.Corrupt, operational failures as Failure. *)
let conn_error code message =
  match code with
  | Service.Corrupt | Service.Unknown | Service.Mismatch -> raise (Wire.Corrupt message)
  | Service.Evicted | Service.Busy | Service.Internal ->
    failwith (Service.string_of_error_code code ^ ": " ^ message)

let read_reply_frame ?deadline t =
  let payload = Framing.read_frame ?deadline t.fd in
  if String.length payload < 4 then raise (Wire.Corrupt "Service_client: short payload");
  (String.sub payload 0 4, payload)

(* Stash a request-scoped frame (SREP or request-level SERR) in the
   completed table; connection-scope SERR raises; anything else is a
   protocol violation. *)
let stash t magic r =
  match magic with
  | "SREP" ->
    Wire.read_magic r "SREP";
    let req = Wire.read_i64 r in
    let queue_delay = Wire.read_f64 r in
    let exec_wall = Wire.read_f64 r in
    let bootstraps = Wire.read_i64 r in
    let outputs = Wire.read_array r Lwe.read_sample in
    Hashtbl.replace t.completed req (Done { outputs; queue_delay; exec_wall; bootstraps })
  | "SERR" ->
    Wire.read_magic r "SERR";
    let req = Wire.read_i64 r in
    let code = Service.error_code_of_int (Wire.read_u8 r) in
    let message = Wire.read_string r in
    if req = 0 then conn_error code message
    else Hashtbl.replace t.completed req (Failed { code; message })
  | m -> raise (Wire.Corrupt ("Service_client: unexpected reply magic " ^ m))

(* Pump frames until a frame of [want]'s magic arrives; request-scoped
   frames read along the way are stashed. *)
let rec rpc ?deadline t want =
  let magic, payload = read_reply_frame ?deadline t in
  let r = Wire.reader_of_string payload in
  if magic = want then r
  else begin
    stash t magic r;
    rpc ?deadline t want
  end

let rpc_ack ?deadline t =
  let r = rpc ?deadline t "SACK" in
  Wire.read_magic r "SACK";
  let value = Wire.read_i64 r in
  let info = Wire.read_string r in
  (value, info)

let register ?transform t ~client_id ck =
  let transform =
    match transform with
    | Some k -> k
    | None -> ck.Gates.cloud_params.Params.transform
  in
  let blob =
    let buf = Buffer.create 65536 in
    Gates.write_cloud_keyset buf ck;
    Buffer.contents buf
  in
  let hello =
    Dist_eval.hello_bytes ~index:0 ~transform ~obs:Pytfhe_obs.Trace.null ~faults:[]
      ~keyset_blob:blob
  in
  let buf = Buffer.create (Bytes.length hello + 128) in
  Wire.write_magic buf "SREG";
  Wire.write_string buf client_id;
  Wire.write_string buf (Bytes.to_string hello);
  send t (Buffer.to_bytes buf);
  ignore (rpc_ack t)

let open_session ?transform t ~client_id params =
  let transform = match transform with Some k -> k | None -> params.Params.transform in
  let buf = Buffer.create 256 in
  Wire.write_magic buf "SSES";
  Wire.write_string buf client_id;
  Params.write buf params;
  Wire.write_u8 buf (Pytfhe_fft.Transform.kind_code transform);
  send t (Buffer.to_bytes buf);
  let sid, _ = rpc_ack t in
  sid

let submit t ~session ~name ~program ~inputs =
  let req = t.next_req in
  t.next_req <- req + 1;
  let buf = Buffer.create (Bytes.length program + 4096) in
  Wire.write_magic buf "SREQ";
  Wire.write_i64 buf session;
  Wire.write_i64 buf req;
  Wire.write_string buf name;
  Wire.write_string buf (Bytes.to_string program);
  Wire.write_array buf Lwe.write_sample inputs;
  send t (Buffer.to_bytes buf);
  req

let await ?timeout t req =
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
  let rec loop () =
    match Hashtbl.find_opt t.completed req with
    | Some outcome ->
      Hashtbl.remove t.completed req;
      outcome
    | None ->
      let magic, payload = read_reply_frame ?deadline t in
      stash t magic (Wire.reader_of_string payload);
      loop ()
  in
  loop ()

let evict t ~client_id =
  let buf = Buffer.create 64 in
  Wire.write_magic buf "SEVI";
  Wire.write_string buf client_id;
  send t (Buffer.to_bytes buf);
  let value, _ = rpc_ack t in
  value = 1

let stats t =
  let buf = Buffer.create 8 in
  Wire.write_magic buf "SSTA";
  send t (Buffer.to_bytes buf);
  let r = rpc t "SSTR" in
  Wire.read_magic r "SSTR";
  Service.read_stats r

let shutdown t =
  let buf = Buffer.create 8 in
  Wire.write_magic buf "SHUT";
  send t (Buffer.to_bytes buf);
  ignore (rpc_ack t)
