(** Synchronous client bindings for the {!Service} protocol.

    The tenant-side workflow: {!connect}, {!register} the cloud keyset
    under a client id (once — it persists across connections until
    {!evict}), {!open_session} to pin params + transform, then
    {!submit}/{!await} programs.  The server may complete requests in
    scheduler order, not submission order; {!await} stashes out-of-order
    replies so any interleaving of submits and awaits works. *)

type t

type outcome =
  | Done of {
      outputs : Pytfhe_tfhe.Lwe.sample array;
      queue_delay : float;  (** Seconds spent in the admission queue. *)
      exec_wall : float;  (** Seconds from admission to reply. *)
      bootstraps : int;  (** Bootstraps/rotations spent on this request. *)
    }
  | Failed of { code : Service.error_code; message : string }

val connect : ?host:string -> port:int -> unit -> t
val close : t -> unit
(** Best-effort [SBYE], then close the socket.  Idempotent. *)

val register :
  ?transform:Pytfhe_fft.Transform.kind ->
  t ->
  client_id:string ->
  Pytfhe_tfhe.Gates.cloud_keyset ->
  unit
(** Register (or replace) the {e cloud} keyset under [client_id].
    [transform] defaults to the keyset's own tag; passing a different one
    reproduces a coordinator/worker transform mismatch, which the server
    rejects at the door (the connection-scope error surfaces here as
    {!Pytfhe_util.Wire.Corrupt}). *)

val open_session :
  ?transform:Pytfhe_fft.Transform.kind ->
  t ->
  client_id:string ->
  Pytfhe_tfhe.Params.t ->
  int
(** Negotiate a session: the server checks [client_id] is registered and
    that params + transform tag match the registered keyset, and returns
    a session id.  Mismatches surface as {!Pytfhe_util.Wire.Corrupt}. *)

val submit :
  t -> session:int -> name:string -> program:bytes -> inputs:Pytfhe_tfhe.Lwe.sample array -> int
(** Enqueue a PyTFHE binary with encrypted inputs (by declaration order);
    returns the request id to {!await} on.  Fire-and-forget: admission
    errors arrive as a [Failed] outcome. *)

val await : ?timeout:float -> t -> int -> outcome
(** Block until request [id]'s reply (or failure) arrives.  [timeout] is
    seconds from now; expiry raises
    {!Pytfhe_backend.Framing.Frame_timeout}. *)

val evict : t -> client_id:string -> bool
(** Ask the server to drop the keyset; [true] if it was registered.  The
    server fails that tenant's queued and in-flight requests with
    [Evicted] and invalidates its sessions. *)

val stats : t -> Service.stats
val shutdown : t -> unit
(** Send [SHUT]: the server stops accepting input, drains in-flight work
    and returns from {!Service.serve}. *)

val send_raw : t -> Bytes.t -> unit
(** Write raw bytes to the socket, bypassing the framing layer — the hook
    protocol tests use to deliver corrupt envelopes, truncated frames and
    malformed payloads. *)
