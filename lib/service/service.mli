(** FHE-as-a-service: a persistent multi-tenant evaluation server.

    One TCP endpoint (the shared [PTFD] framing of {!Pytfhe_backend.Framing})
    holds many tenants' {e cloud} keysets — registered by client id through
    the same [DHEL] handshake blob the distributed executor uses, so the
    transform tag is validated against the keyset at the door; secret keys
    never cross the wire — and executes submitted programs (PyTFHE binaries)
    against them.

    The scheduler is the point of the exercise: independent ready gates from
    {e concurrent requests sharing a keyset} are packed into the same
    batched/SoA bootstrap launch, so a stream of narrow circuits (the worst
    case for per-request batching: a serial chain exposes one ready gate at
    a time) still fills the batch kernel.  On serial-chain workloads a batch
    fill above 1.0 is only reachable by cross-request packing — the service
    bench asserts exactly that.

    Failure semantics: a malformed payload draws an [SERR] on its own
    connection and nothing else dies; envelope corruption (bad frame magic
    or implausible length) closes only that connection; evicting a keyset
    fails only that tenant's queued and in-flight requests.  Replies are
    ciphertext-bit-exact with a per-tenant {!Pytfhe_core.Server.run} of the
    same program.

    The wire protocol, scheduler policy and key-management model are
    documented in [docs/service.md]. *)

(** {1 Protocol vocabulary} *)

type error_code =
  | Corrupt  (** Malformed payload (maps to {!Pytfhe_util.Wire.Corrupt}). *)
  | Unknown  (** Unknown client id, session or stale keyset generation. *)
  | Evicted  (** The request's keyset was evicted. *)
  | Busy  (** Admission queue full. *)
  | Mismatch  (** Handshake params/transform disagree with the keyset. *)
  | Internal  (** Execution failure. *)

val int_of_error_code : error_code -> int
val error_code_of_int : int -> error_code
(** Raises {!Pytfhe_util.Wire.Corrupt} on an unknown code. *)

val string_of_error_code : error_code -> string

(** {1 Server statistics} *)

type tenant_traffic = { id : string; bytes_in : int; bytes_out : int }

type stats = {
  backend : string;  (** Round-trippable executor name ([cpu], [par:N], …). *)
  keysets_registered : int;
  keysets_evicted : int;
  sessions_opened : int;
  requests_admitted : int;
  requests_completed : int;
  requests_failed : int;
  batch_launches : int;  (** Cross-request bootstrap launches. *)
  batched_gates : int;  (** Classic gates executed through those launches. *)
  batch_fill : float;
      (** [batched_gates / batch_launches] — mean gates per launch.  On
          serial-chain workloads, a value above 1.0 proves cross-request
          packing. *)
  lut_rotations : int;  (** Blind rotations spent on LUT cells. *)
  queue_depth : int;  (** Admission queue length at snapshot time. *)
  active_requests : int;
  max_queue_depth : int;  (** High-water mark over the server's lifetime. *)
  latency : Pytfhe_obs.Quantile.summary;  (** Submit-to-reply seconds. *)
  tenants : tenant_traffic array;  (** Per-tenant wire bytes, sorted by id. *)
}

val write_stats : Pytfhe_util.Wire.writer -> stats -> unit
val read_stats : Pytfhe_util.Wire.reader -> stats

(** {1 Configuration} *)

type config = {
  host : string;  (** Default ["127.0.0.1"]. *)
  port : int;  (** 0 picks an ephemeral port (reported via [ready]). *)
  backlog : int;
  max_active : int;  (** Bound on concurrently-executing requests. *)
  max_queue : int;  (** Admission queue bound; excess draws [Busy]. *)
  max_program_bytes : int;
      (** Largest program binary accepted in an [SREQ] (default 64 MiB).
          An oversized submission draws [Corrupt] {e before} the server
          decodes a single instruction of it
          ({!Pytfhe_core.Pipeline.of_binary}'s [max_bytes] check) — size
          is the one property admission control can judge without paying
          for a parse. *)
  backend : Pytfhe_core.Server.exec_backend;
      (** {!Pytfhe_core.Server.Cpu} (default) runs the cross-request
          packing scheduler in-process.  [Multicore]/[Multiprocess] are
          pass-through modes: each request runs whole through that
          executor in admission order — no cross-request packing, useful
          to put the service endpoint in front of the other backends. *)
  idle_timeout : float;  (** Socket-poll timeout when no work is pending. *)
}

val default_config : config

val default_opts : Pytfhe_backend.Executor.opts
(** {!Pytfhe_backend.Executor.default_opts} with [batch = Some 8] — the
    packing scheduler wants a batch capacity.  Used when [serve] is given
    no [opts] and the backend is [Cpu]. *)

(** {1 The server} *)

val serve :
  ?opts:Pytfhe_backend.Executor.opts ->
  ?config:config ->
  ?ready:(int -> unit) ->
  unit ->
  stats
(** Run the server until a [SHUT] frame arrives, then drain remaining work
    and return final statistics.  [ready] is called with the bound port
    once the socket is listening (the hook a test or bench uses to learn
    an ephemeral port before connecting).  [opts.batch] sets the packing
    capacity; [opts.soa] selects rows-in/rows-out staging through
    {!Pytfhe_tfhe.Lwe_array}; [opts.obs] receives
    [service_queue_depth]/[service_batch_fill]/per-tenant byte counters.

    Raises [Invalid_argument] when [config.backend] is [Multiprocess] and
    [opts] asks for batch or a non-default layout — the distributed
    executor batches worker-side, and silently dropping the knobs would
    misreport what ran. *)
