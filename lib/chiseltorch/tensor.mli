(** Tensors of encrypted scalars — the data model of the ChiselTorch API.

    A tensor is a shape plus one bus per element (row-major).  All the
    primitive tensor operations of the paper's Table I are provided:
    [matmul], [dot], the comparison family, [view]/[reshape]/[transpose]/
    [pad] (free wiring — zero gates), [sum]/[prod], [argmax]/[argmin],
    element-wise arithmetic, and [max]/[min] reductions. *)

open Pytfhe_circuit
open Pytfhe_hdl

type t = private { dtype : Dtype.t; shape : int array; data : Bus.t array }

val create : Dtype.t -> int array -> Bus.t array -> t
(** Wrap existing buses; validates widths and element count. *)

val dtype : t -> Dtype.t
val shape : t -> int array
val numel : t -> int

val input : Netlist.t -> string -> Dtype.t -> int array -> t
(** Declare an encrypted input tensor. *)

val of_consts : Netlist.t -> Dtype.t -> int array -> float array -> t
(** Quantize public values (weights) into the circuit. *)

val output : Netlist.t -> string -> t -> unit
(** Mark every element as a primary output ([name.<flat-index>]). *)

val get : t -> int array -> Bus.t
(** Element at a multi-dimensional index. *)

val get_flat : t -> int -> Bus.t

val reshape : t -> int array -> t
(** Free: same data, new shape (element count must match). *)

val flatten : t -> t
(** Free: collapse to 1-D. *)

val transpose : t -> t
(** Free wiring for a 2-D tensor: swap the axes. *)

val pad2d : Netlist.t -> t -> int -> float -> t
(** Pad the two trailing axes by [k] on each side with a constant. *)

val map : Netlist.t -> (Netlist.t -> Dtype.t -> Bus.t -> Bus.t) -> t -> t
val map2 : Netlist.t -> (Netlist.t -> Dtype.t -> Bus.t -> Bus.t -> Bus.t) -> t -> t -> t

val add : Netlist.t -> t -> t -> t
val sub : Netlist.t -> t -> t -> t
val mul : Netlist.t -> t -> t -> t
val neg : Netlist.t -> t -> t
val relu : Netlist.t -> t -> t
val mul_scalar : Netlist.t -> t -> float -> t

val eq_t : Netlist.t -> t -> t -> t
(** Element-wise comparison; result dtype UInt(1). *)

val lt_t : Netlist.t -> t -> t -> t
val le_t : Netlist.t -> t -> t -> t
val gt_t : Netlist.t -> t -> t -> t
val ge_t : Netlist.t -> t -> t -> t

val sum : Netlist.t -> t -> t
(** Scalar (shape [||]) tensor: balanced-tree reduction. *)

val prod : Netlist.t -> t -> t
val max_t : Netlist.t -> t -> t
val min_t : Netlist.t -> t -> t

val argmax : Netlist.t -> t -> t
(** Index of the maximum (first on ties), as a UInt of minimal width. *)

val argmin : Netlist.t -> t -> t

val dot : Netlist.t -> t -> t -> t
(** Inner product of two 1-D tensors. *)

val matmul : ?reuse:bool -> Netlist.t -> t -> t -> t
(** 2-D × 2-D matrix product.  With [~reuse:true] the k-element dot
    product is built once as a {!template} and instantiated per output
    element — same circuit function, but the scalar lowering runs once
    and the sharing survives a windowed (streaming) netlist whose CSE
    tables evict. *)

val matmul_const : ?reuse:bool -> Netlist.t -> t -> float array array -> t
(** Multiply by a public weight matrix (rows × cols, applied on the right):
    uses constant multipliers.  [~reuse:true] builds one template per
    weight column and replays it for every input row. *)

(** {2 Shape-aware template reuse}

    Tensor programs repeat the same sub-circuit with different operands —
    a conv kernel window at every spatial position, a matmul dot product
    at every output element.  A [template] captures that sub-circuit once
    in a scratch netlist; {!instance} replays it per operand tuple
    through {!Pytfhe_circuit.Netlist.instantiate}, so the destination's
    construction-time optimizations still apply (constant arguments fold
    through the whole instance). *)

type template

val template : arity:int -> width:int -> (Netlist.t -> Bus.t array -> Bus.t) -> template
(** [template ~arity ~width body] hands [body] a fresh netlist with
    [arity] input buses of [width] bits and records the bus it returns. *)

val instance : Netlist.t -> template -> Bus.t array -> Bus.t
(** Replay the template over concrete argument buses (same arity and
    widths as the template's inputs).  Raises [Invalid_argument] on an
    arity/width mismatch. *)

val div : Netlist.t -> t -> t -> t
(** Element-wise encrypted division (see {!Scalar.div} for semantics). *)
