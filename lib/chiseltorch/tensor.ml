open Pytfhe_hdl
module Netlist = Pytfhe_circuit.Netlist

type t = { dtype : Dtype.t; shape : int array; data : Bus.t array }

let numel_of_shape shape = Array.fold_left ( * ) 1 shape

let create dtype shape data =
  let n = numel_of_shape shape in
  if Array.length data <> n then invalid_arg "Tensor.create: element count mismatch";
  let w = Dtype.width dtype in
  Array.iter (fun b -> if Bus.width b <> w then invalid_arg "Tensor.create: bus width mismatch") data;
  { dtype; shape; data }

let dtype t = t.dtype
let shape t = t.shape
let numel t = Array.length t.data

let input net name dtype shape =
  let n = numel_of_shape shape in
  let w = Dtype.width dtype in
  let data = Array.init n (fun i -> Bus.input net (Printf.sprintf "%s.%d" name i) w) in
  { dtype; shape; data }

let of_consts net dtype shape values =
  let n = numel_of_shape shape in
  if Array.length values <> n then invalid_arg "Tensor.of_consts: element count mismatch";
  let data = Array.map (fun v -> Scalar.const net dtype v) values in
  { dtype; shape; data }

let output net name t =
  Array.iteri (fun i bus -> Bus.output net (Printf.sprintf "%s.%d" name i) bus) t.data

let flat_index shape idx =
  if Array.length idx <> Array.length shape then invalid_arg "Tensor: rank mismatch";
  let flat = ref 0 in
  Array.iteri
    (fun d i ->
      if i < 0 || i >= shape.(d) then invalid_arg "Tensor: index out of bounds";
      flat := (!flat * shape.(d)) + i)
    idx;
  !flat

let get t idx = t.data.(flat_index t.shape idx)
let get_flat t i = t.data.(i)

let reshape t shape =
  if numel_of_shape shape <> numel t then invalid_arg "Tensor.reshape: element count mismatch";
  { t with shape }

let flatten t = reshape t [| numel t |]

let transpose t =
  match t.shape with
  | [| r; c |] ->
    let data = Array.init (r * c) (fun i -> t.data.(((i mod r) * c) + (i / r))) in
    { t with shape = [| c; r |]; data }
  | _ -> invalid_arg "Tensor.transpose: 2-D tensors only"

let pad2d net t k v =
  let rank = Array.length t.shape in
  if rank < 2 then invalid_arg "Tensor.pad2d: rank must be at least 2";
  let h = t.shape.(rank - 2) and w = t.shape.(rank - 1) in
  let outer = numel t / (h * w) in
  let h' = h + (2 * k) and w' = w + (2 * k) in
  let fill = Scalar.const net t.dtype v in
  let data =
    Array.init (outer * h' * w') (fun flat ->
        let o = flat / (h' * w') in
        let rem = flat mod (h' * w') in
        let i = (rem / w') - k and j = (rem mod w') - k in
        if i < 0 || i >= h || j < 0 || j >= w then fill
        else t.data.((o * h * w) + (i * w) + j))
  in
  let shape = Array.copy t.shape in
  shape.(rank - 2) <- h';
  shape.(rank - 1) <- w';
  { t with shape; data }

let map net f t = { t with data = Array.map (fun b -> f net t.dtype b) t.data }

let map2 net f a b =
  if a.shape <> b.shape then invalid_arg "Tensor: shape mismatch";
  if a.dtype <> b.dtype then invalid_arg "Tensor: dtype mismatch";
  { a with data = Array.map2 (fun x y -> f net a.dtype x y) a.data b.data }

let add net = map2 net Scalar.add
let sub net = map2 net Scalar.sub
let mul net = map2 net Scalar.mul
let neg net = map net Scalar.neg
let relu net = map net Scalar.relu
let mul_scalar net t c = map net (fun net dtype b -> Scalar.mul_scalar net dtype b c) t

let compare_op op net a b =
  if a.shape <> b.shape then invalid_arg "Tensor: shape mismatch";
  let data = Array.map2 (fun x y -> [| op net a.dtype x y |]) a.data b.data in
  { dtype = Dtype.UInt 1; shape = a.shape; data }

let eq_t net = compare_op Scalar.eq_ net
let lt_t net = compare_op Scalar.lt net
let le_t net = compare_op Scalar.le net
let gt_t net = compare_op Scalar.gt net
let ge_t net = compare_op Scalar.ge net

let reduce op net t =
  if numel t = 0 then invalid_arg "Tensor.reduce: empty tensor";
  (* Balanced tree keeps the circuit depth logarithmic. *)
  let rec level = function
    | [ single ] -> single
    | items ->
      let rec pair = function
        | a :: b :: rest -> op net t.dtype a b :: pair rest
        | [ a ] -> [ a ]
        | [] -> []
      in
      level (pair items)
  in
  { t with shape = [||]; data = [| level (Array.to_list t.data) |] }

let sum net = reduce Scalar.add net
let prod net = reduce Scalar.mul net
let max_t net = reduce Scalar.max_ net
let min_t net = reduce Scalar.min_ net

let index_width n =
  let rec go w = if 1 lsl w >= n then w else go (w + 1) in
  go 1

let arg_select better net t =
  let n = numel t in
  if n = 0 then invalid_arg "Tensor.argmax: empty tensor";
  let iw = index_width n in
  let best_val = ref t.data.(0) in
  let best_idx = ref (Bus.const net ~width:iw 0) in
  for i = 1 to n - 1 do
    let candidate = t.data.(i) in
    let take = better net t.dtype !best_val candidate in
    best_val := Bus.mux net take candidate !best_val;
    best_idx := Bus.mux net take (Bus.const net ~width:iw i) !best_idx
  done;
  { dtype = Dtype.UInt iw; shape = [||]; data = [| !best_idx |] }

(* Strict comparison keeps the first occurrence on ties, matching
   [torch.argmax]'s documented tie-breaking for 1-D inputs. *)
let argmax net t = arg_select Scalar.lt net t
let argmin net t = arg_select Scalar.gt net t

let dot net a b =
  match (a.shape, b.shape) with
  | [| n |], [| m |] when n = m -> sum net (mul net a b)
  | _ -> invalid_arg "Tensor.dot: 1-D tensors of equal length"

(* ------------------------------------------------------------------ *)
(* Shape-aware template reuse                                          *)
(* ------------------------------------------------------------------ *)

(* A sub-circuit built once over fresh inputs in a scratch netlist and
   replayed per argument tuple via [Netlist.instantiate].  The repeated
   shapes of tensor programs — a conv kernel window, a matmul dot product
   — are identical sub-circuits differing only in their operands, so the
   scalar lowering (carry chains, constant-multiplier decomposition)
   runs once instead of once per instance, and a windowed (streaming)
   netlist never depends on its CSE tables to recover the sharing. *)
type template = { t_net : Netlist.t; t_out : Bus.t }

let template ~arity ~width body =
  let t_net = Netlist.create () in
  let ins = Array.init arity (fun i -> Bus.input t_net (Printf.sprintf "t.%d" i) width) in
  { t_net; t_out = body t_net ins }

let instance net tpl args =
  let flat = Array.concat (Array.to_list args) in
  let map = Netlist.instantiate net ~template:tpl.t_net ~args:flat in
  Array.map (fun b -> map.(b)) tpl.t_out

let matmul ?(reuse = false) net a b =
  match (a.shape, b.shape) with
  | [| n; k |], [| k'; m |] when k = k' ->
    let row i = Array.init k (fun x -> a.data.((i * k) + x)) in
    let col j = Array.init k (fun x -> b.data.((x * m) + j)) in
    let data =
      if reuse then begin
        (* The dot product of two k-vectors is the same sub-circuit at
           every (i, j) — one template, n*m instances. *)
        let tpl =
          template ~arity:(2 * k) ~width:(Dtype.width a.dtype) (fun tnet ins ->
              let products = Array.init k (fun x -> Scalar.mul tnet a.dtype ins.(x) ins.(k + x)) in
              (reduce Scalar.add tnet { a with shape = [| k |]; data = products }).data.(0))
        in
        Array.init (n * m) (fun flat ->
            let i = flat / m and j = flat mod m in
            instance net tpl (Array.append (row i) (col j)))
      end
      else
        Array.init (n * m) (fun flat ->
            let i = flat / m and j = flat mod m in
            let products = Array.map2 (fun x y -> Scalar.mul net a.dtype x y) (row i) (col j) in
            (reduce Scalar.add net { a with shape = [| k |]; data = products }).data.(0))
    in
    { a with shape = [| n; m |]; data }
  | _ -> invalid_arg "Tensor.matmul: inner dimensions must agree"

let matmul_const ?(reuse = false) net a weights =
  match a.shape with
  | [| n; k |] ->
    let rows = Array.length weights in
    if rows <> k then invalid_arg "Tensor.matmul_const: inner dimensions must agree";
    let m = Array.length weights.(0) in
    let data =
      if reuse then begin
        (* A weight column is shared by every input row — one template
           per column, n instances each. *)
        let tpls =
          Array.init m (fun j ->
              template ~arity:k ~width:(Dtype.width a.dtype) (fun tnet ins ->
                  let products =
                    Array.init k (fun x -> Scalar.mul_scalar tnet a.dtype ins.(x) weights.(x).(j))
                  in
                  (reduce Scalar.add tnet { a with shape = [| k |]; data = products }).data.(0)))
        in
        Array.init (n * m) (fun flat ->
            let i = flat / m and j = flat mod m in
            instance net tpls.(j) (Array.init k (fun x -> a.data.((i * k) + x))))
      end
      else
        Array.init (n * m) (fun flat ->
            let i = flat / m and j = flat mod m in
            let products =
              Array.init k (fun x -> Scalar.mul_scalar net a.dtype a.data.((i * k) + x) weights.(x).(j))
            in
            (reduce Scalar.add net { a with shape = [| k |]; data = products }).data.(0))
    in
    { a with shape = [| n; m |]; data }
  | _ -> invalid_arg "Tensor.matmul_const: 2-D tensor expected"

let div net = map2 net Scalar.div
