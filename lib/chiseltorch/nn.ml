module Netlist = Pytfhe_circuit.Netlist

type layer =
  | Conv1d of { in_ch : int; out_ch : int; kernel : int; stride : int; weights : float array; bias : float array option }
  | Conv2d of { in_ch : int; out_ch : int; kernel : int; stride : int; padding : int; weights : float array; bias : float array option }
  | Linear of { in_features : int; out_features : int; weights : float array; bias : float array option }
  | Relu
  | Hardtanh
  | Hardsigmoid
  | MaxPool1d of { kernel : int; stride : int }
  | AvgPool1d of { kernel : int; stride : int }
  | MaxPool2d of { kernel : int; stride : int }
  | AvgPool2d of { kernel : int; stride : int }
  | BatchNorm1d of { gamma : float array; beta : float array; mean : float array; var : float array; eps : float }
  | BatchNorm2d of { gamma : float array; beta : float array; mean : float array; var : float array; eps : float }
  | Flatten

type model = layer list

let layer_name = function
  | Conv1d _ -> "Conv1d"
  | Conv2d _ -> "Conv2d"
  | Linear _ -> "Linear"
  | Relu -> "ReLU"
  | Hardtanh -> "Hardtanh"
  | Hardsigmoid -> "Hardsigmoid"
  | MaxPool1d _ -> "MaxPool1d"
  | AvgPool1d _ -> "AvgPool1d"
  | MaxPool2d _ -> "MaxPool2d"
  | AvgPool2d _ -> "AvgPool2d"
  | BatchNorm1d _ -> "BatchNorm1d"
  | BatchNorm2d _ -> "BatchNorm2d"
  | Flatten -> "Flatten"

let conv_out size kernel stride padding = ((size + (2 * padding) - kernel) / stride) + 1

let output_shape layer shape =
  let fail () =
    invalid_arg (Printf.sprintf "Nn.%s: unsupported input rank %d" (layer_name layer) (Array.length shape))
  in
  match (layer, shape) with
  | Conv1d { in_ch; out_ch; kernel; stride; _ }, [| c; l |] when c = in_ch ->
    [| out_ch; conv_out l kernel stride 0 |]
  | Conv2d { in_ch; out_ch; kernel; stride; padding; _ }, [| c; h; w |] when c = in_ch ->
    [| out_ch; conv_out h kernel stride padding; conv_out w kernel stride padding |]
  | Linear { in_features; out_features; _ }, [| n |] when n = in_features -> [| out_features |]
  | (Relu | Hardtanh | Hardsigmoid), s -> s
  | MaxPool1d { kernel; stride }, [| c; l |] | AvgPool1d { kernel; stride }, [| c; l |] ->
    [| c; conv_out l kernel stride 0 |]
  | MaxPool2d { kernel; stride }, [| c; h; w |] | AvgPool2d { kernel; stride }, [| c; h; w |] ->
    [| c; conv_out h kernel stride 0; conv_out w kernel stride 0 |]
  | BatchNorm1d { gamma; _ }, [| c; _ |] when Array.length gamma = c -> shape
  | BatchNorm2d { gamma; _ }, [| c; _; _ |] when Array.length gamma = c -> shape
  | Flatten, s when Array.length s >= 1 -> [| Array.fold_left ( * ) 1 s |]
  | (Conv1d _ | Conv2d _ | Linear _ | MaxPool1d _ | AvgPool1d _ | MaxPool2d _ | AvgPool2d _
    | BatchNorm1d _ | BatchNorm2d _ | Flatten), _ ->
    fail ()

let model_output_shape model shape = List.fold_left (fun s l -> output_shape l s) shape model

(* Per-channel affine scale/shift used by batch norm at inference time. *)
let batch_norm_coeffs ~gamma ~beta ~mean ~var ~eps c =
  let a = gamma.(c) /. sqrt (var.(c) +. eps) in
  let b = beta.(c) -. (a *. mean.(c)) in
  (a, b)

(* ------------------------------------------------------------------ *)
(* Circuit instantiation                                               *)
(* ------------------------------------------------------------------ *)

(* Both the circuit and the reference interpreter are written against this
   tiny algebra, which guarantees they perform the same operations in the
   same order. *)
type ('v, 'ctx) ops = {
  o_const : 'ctx -> float -> 'v;
  o_add : 'ctx -> 'v -> 'v -> 'v;
  o_mul_scalar : 'ctx -> 'v -> float -> 'v;
  o_relu : 'ctx -> 'v -> 'v;
  o_max : 'ctx -> 'v -> 'v -> 'v;
  o_div_const : 'ctx -> 'v -> int -> 'v;
  o_zero_pattern : 'v;  (* padding value (encoded zero) *)
  o_clamp : 'ctx -> 'v -> float -> float -> 'v;  (* saturate to a public interval *)
  o_copy : 'ctx -> 'v -> 'v;  (* identity for free wiring; buffer gates otherwise *)
}

let numel shape = Array.fold_left ( * ) 1 shape

let apply_generic (type v ctx) (ops : (v, ctx) ops) (ctx : ctx) layer (shape : int array)
    (data : v array) : v array =
  let out_shape = output_shape layer shape in
  match layer with
  | Relu -> Array.map (ops.o_relu ctx) data
  | Hardtanh -> Array.map (fun v -> ops.o_clamp ctx v (-1.0) 1.0) data
  | Hardsigmoid ->
    Array.map
      (fun v ->
        ops.o_clamp ctx (ops.o_add ctx (ops.o_mul_scalar ctx v (1.0 /. 6.0)) (ops.o_const ctx 0.5)) 0.0 1.0)
      data
  | Flatten -> Array.map (ops.o_copy ctx) data
  | Conv1d { in_ch; kernel; stride; weights; bias; out_ch } ->
    let l = shape.(1) in
    let out_l = out_shape.(1) in
    Array.init (out_ch * out_l) (fun flat ->
        let o = flat / out_l and i = flat mod out_l in
        let init = ops.o_const ctx (match bias with Some b -> b.(o) | None -> 0.0) in
        let acc = ref init in
        for c = 0 to in_ch - 1 do
          for d = 0 to kernel - 1 do
            let x = data.((c * l) + (i * stride) + d) in
            let w = weights.((o * in_ch * kernel) + (c * kernel) + d) in
            acc := ops.o_add ctx !acc (ops.o_mul_scalar ctx x w)
          done
        done;
        !acc)
  | Conv2d { in_ch; kernel; stride; padding; weights; bias; out_ch = _ } ->
    let h = shape.(1) + (2 * padding) and w = shape.(2) + (2 * padding) in
    let padded =
      if padding = 0 then data
      else
        Array.init (in_ch * h * w) (fun flat ->
            let c = flat / (h * w) in
            let rem = flat mod (h * w) in
            let i = (rem / w) - padding and j = (rem mod w) - padding in
            if i < 0 || i >= shape.(1) || j < 0 || j >= shape.(2) then ops.o_zero_pattern
            else data.((c * shape.(1) * shape.(2)) + (i * shape.(2)) + j))
    in
    let out_h = out_shape.(1) and out_w = out_shape.(2) in
    Array.init (out_shape.(0) * out_h * out_w) (fun flat ->
        let o = flat / (out_h * out_w) in
        let rem = flat mod (out_h * out_w) in
        let i = rem / out_w and j = rem mod out_w in
        let init = ops.o_const ctx (match bias with Some b -> b.(o) | None -> 0.0) in
        let acc = ref init in
        for c = 0 to in_ch - 1 do
          for di = 0 to kernel - 1 do
            for dj = 0 to kernel - 1 do
              let x = padded.((c * h * w) + (((i * stride) + di) * w) + (j * stride) + dj) in
              let wt = weights.((o * in_ch * kernel * kernel) + (c * kernel * kernel) + (di * kernel) + dj) in
              acc := ops.o_add ctx !acc (ops.o_mul_scalar ctx x wt)
            done
          done
        done;
        !acc)
  | Linear { in_features; out_features; weights; bias } ->
    Array.init out_features (fun o ->
        let init = ops.o_const ctx (match bias with Some b -> b.(o) | None -> 0.0) in
        let acc = ref init in
        for i = 0 to in_features - 1 do
          acc := ops.o_add ctx !acc (ops.o_mul_scalar ctx data.(i) weights.((o * in_features) + i))
        done;
        !acc)
  | MaxPool1d { kernel; stride } | AvgPool1d { kernel; stride } ->
    let c_n = shape.(0) and l = shape.(1) in
    let out_l = out_shape.(1) in
    let is_max = match layer with MaxPool1d _ -> true | _ -> false in
    Array.init (c_n * out_l) (fun flat ->
        let c = flat / out_l and i = flat mod out_l in
        let window = List.init kernel (fun d -> data.((c * l) + (i * stride) + d)) in
        match window with
        | first :: rest ->
          let combined =
            List.fold_left (fun acc v -> if is_max then ops.o_max ctx acc v else ops.o_add ctx acc v) first rest
          in
          if is_max then combined else ops.o_div_const ctx combined kernel
        | [] -> assert false)
  | MaxPool2d { kernel; stride } | AvgPool2d { kernel; stride } ->
    let c_n = shape.(0) and h = shape.(1) and w = shape.(2) in
    let out_h = out_shape.(1) and out_w = out_shape.(2) in
    let is_max = match layer with MaxPool2d _ -> true | _ -> false in
    Array.init (c_n * out_h * out_w) (fun flat ->
        let c = flat / (out_h * out_w) in
        let rem = flat mod (out_h * out_w) in
        let i = rem / out_w and j = rem mod out_w in
        let window =
          List.concat_map
            (fun di ->
              List.init kernel (fun dj ->
                  data.((c * h * w) + (((i * stride) + di) * w) + (j * stride) + dj)))
            (List.init kernel Fun.id)
        in
        match window with
        | first :: rest ->
          let combined =
            List.fold_left (fun acc v -> if is_max then ops.o_max ctx acc v else ops.o_add ctx acc v) first rest
          in
          if is_max then combined else ops.o_div_const ctx combined (kernel * kernel)
        | [] -> assert false)
  | BatchNorm1d { gamma; beta; mean; var; eps } ->
    let l = shape.(1) in
    Array.mapi
      (fun flat x ->
        let c = flat / l in
        let a, b = batch_norm_coeffs ~gamma ~beta ~mean ~var ~eps c in
        ops.o_add ctx (ops.o_mul_scalar ctx x a) (ops.o_const ctx b))
      data
  | BatchNorm2d { gamma; beta; mean; var; eps } ->
    let hw = shape.(1) * shape.(2) in
    Array.mapi
      (fun flat x ->
        let c = flat / hw in
        let a, b = batch_norm_coeffs ~gamma ~beta ~mean ~var ~eps c in
        ops.o_add ctx (ops.o_mul_scalar ctx x a) (ops.o_const ctx b))
      data

let circuit_ops dtype =
  {
    o_const = (fun net v -> Scalar.const net dtype v);
    o_add = (fun net a b -> Scalar.add net dtype a b);
    o_mul_scalar = (fun net a c -> Scalar.mul_scalar net dtype a c);
    o_relu = (fun net a -> Scalar.relu net dtype a);
    o_max = (fun net a b -> Scalar.max_ net dtype a b);
    o_div_const = (fun net a n -> Scalar.div_const net dtype a n);
    o_zero_pattern = [||];
    o_clamp = (fun net v lo hi -> Scalar.clamp net dtype v ~lo ~hi);
    o_copy = (fun _ v -> v);
  }

let apply_direct net layer x =
  let dtype = Tensor.dtype x in
  let ops = { (circuit_ops dtype) with o_zero_pattern = Scalar.const net dtype 0.0 } in
  let data = Array.init (Tensor.numel x) (Tensor.get_flat x) in
  let out = apply_generic ops net layer (Tensor.shape x) data in
  Tensor.create dtype (output_shape layer (Tensor.shape x)) out

(* Template-reuse lowering for the convolutions: an output channel's
   kernel weights are shared across every spatial position, so the
   window dot product is built once per channel ({!Tensor.template}) and
   replayed per position, instead of re-derived out_h*out_w times.  The
   accumulation order matches [apply_generic] exactly, so results are
   bit-identical to the direct lowering. *)
let apply_conv_reuse net layer x =
  let dtype = Tensor.dtype x in
  let wbits = Dtype.width dtype in
  let shape = Tensor.shape x in
  let out_shape = output_shape layer shape in
  let data = Array.init (Tensor.numel x) (Tensor.get_flat x) in
  let bias_of bias o = match bias with Some b -> b.(o) | None -> 0.0 in
  match layer with
  | Conv1d { in_ch; kernel; stride; weights; bias; out_ch } ->
    let l = shape.(1) in
    let out_l = out_shape.(1) in
    let tpls =
      Array.init out_ch (fun o ->
          Tensor.template ~arity:(in_ch * kernel) ~width:wbits (fun tnet ins ->
              let acc = ref (Scalar.const tnet dtype (bias_of bias o)) in
              for c = 0 to in_ch - 1 do
                for d = 0 to kernel - 1 do
                  let w = weights.((o * in_ch * kernel) + (c * kernel) + d) in
                  acc :=
                    Scalar.add tnet dtype !acc (Scalar.mul_scalar tnet dtype ins.((c * kernel) + d) w)
                done
              done;
              !acc))
    in
    let out =
      Array.init (out_ch * out_l) (fun flat ->
          let o = flat / out_l and i = flat mod out_l in
          let window =
            Array.init (in_ch * kernel) (fun ci ->
                let c = ci / kernel and d = ci mod kernel in
                data.((c * l) + (i * stride) + d))
          in
          Tensor.instance net tpls.(o) window)
    in
    Tensor.create dtype out_shape out
  | Conv2d { in_ch; kernel; stride; padding; weights; bias; out_ch } ->
    let h = shape.(1) + (2 * padding) and w = shape.(2) + (2 * padding) in
    let padded =
      if padding = 0 then data
      else begin
        let zero = Scalar.const net dtype 0.0 in
        Array.init (in_ch * h * w) (fun flat ->
            let c = flat / (h * w) in
            let rem = flat mod (h * w) in
            let i = (rem / w) - padding and j = (rem mod w) - padding in
            if i < 0 || i >= shape.(1) || j < 0 || j >= shape.(2) then zero
            else data.((c * shape.(1) * shape.(2)) + (i * shape.(2)) + j))
      end
    in
    let out_h = out_shape.(1) and out_w = out_shape.(2) in
    let tpls =
      Array.init out_ch (fun o ->
          Tensor.template ~arity:(in_ch * kernel * kernel) ~width:wbits (fun tnet ins ->
              let acc = ref (Scalar.const tnet dtype (bias_of bias o)) in
              for c = 0 to in_ch - 1 do
                for di = 0 to kernel - 1 do
                  for dj = 0 to kernel - 1 do
                    let wt =
                      weights.((o * in_ch * kernel * kernel) + (c * kernel * kernel) + (di * kernel) + dj)
                    in
                    acc :=
                      Scalar.add tnet dtype !acc
                        (Scalar.mul_scalar tnet dtype ins.((c * kernel * kernel) + (di * kernel) + dj) wt)
                  done
                done
              done;
              !acc))
    in
    let out =
      Array.init (out_ch * out_h * out_w) (fun flat ->
          let o = flat / (out_h * out_w) in
          let rem = flat mod (out_h * out_w) in
          let i = rem / out_w and j = rem mod out_w in
          let window =
            Array.init (in_ch * kernel * kernel) (fun ci ->
                let c = ci / (kernel * kernel) in
                let crem = ci mod (kernel * kernel) in
                let di = crem / kernel and dj = crem mod kernel in
                padded.((c * h * w) + (((i * stride) + di) * w) + (j * stride) + dj))
          in
          Tensor.instance net tpls.(o) window)
    in
    Tensor.create dtype out_shape out
  | _ -> invalid_arg "Nn.apply_conv_reuse: convolution layers only"

let apply ?(reuse = false) net layer x =
  match layer with
  | (Conv1d _ | Conv2d _) when reuse -> apply_conv_reuse net layer x
  | _ -> apply_direct net layer x

let run ?reuse net model x = List.fold_left (fun acc layer -> apply ?reuse net layer acc) x model

let reference_ops dtype =
  {
    o_const = (fun () v -> Dtype.encode dtype v);
    o_add = (fun () a b -> Scalar.ref_add dtype a b);
    o_mul_scalar = (fun () a c -> Scalar.ref_mul_scalar dtype a c);
    o_relu = (fun () a -> Scalar.ref_relu dtype a);
    o_max = (fun () a b -> Scalar.ref_max dtype a b);
    o_div_const = (fun () a n -> Scalar.ref_div_const dtype a n);
    o_zero_pattern = 0;
    o_clamp = (fun () v lo hi -> Scalar.ref_clamp dtype v ~lo ~hi);
    o_copy = (fun () v -> v);
  }

let reference model dtype shape input =
  if Array.length input <> numel shape then invalid_arg "Nn.reference: input size mismatch";
  let ops = { (reference_ops dtype) with o_zero_pattern = Dtype.encode dtype 0.0 } in
  let _, out =
    List.fold_left
      (fun (s, d) layer -> (output_shape layer s, apply_generic ops () layer s d))
      (shape, input) model
  in
  out
