(** Self-attention built from ChiselTorch tensor primitives — the paper's
    demonstration that non-native layers compose from [reshape]/[matmul]
    (§V-A: Attention_S with hidden size 32, Attention_L with 64).

    Substitution note: softmax requires exponentials and a data-dependent
    divide, which have no practical gate-level realisation; following the
    common FHE practice the score normalisation is replaced by a scaled
    ReLU.  The layer shape, the Q/K/V projections, the score matrix and the
    value aggregation — i.e. everything that determines the circuit's size
    and structure — are unchanged. *)

type config = {
  seq_len : int;  (** Number of tokens. *)
  hidden : int;  (** Hidden dimension (Attention_S: 32, Attention_L: 64). *)
}

type weights = {
  wq : float array array;  (** hidden × hidden *)
  wk : float array array;
  wv : float array array;
}

val random_weights : Pytfhe_util.Rng.t -> config -> weights
(** Synthetic projection matrices (the evaluation is shape-driven; see
    DESIGN.md on the data substitution). *)

val build : ?reuse:bool -> Pytfhe_circuit.Netlist.t -> config -> weights -> Tensor.t -> Tensor.t
(** [build net cfg w x] applies one self-attention layer to the
    [seq_len × hidden] input tensor.  With [~reuse:true] the projections
    and score/value matmuls go through {!Tensor.template} reuse — the
    per-column and dot-product sub-circuits are built once and
    instantiated per row/element (see {!Tensor.matmul}). *)
