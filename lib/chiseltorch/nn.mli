(** PyTorch-compatible neural-network layers (paper Table I / Fig. 4).

    A model is a sequence of layers applied to an input tensor; weights are
    public (server-side inference) and folded into the circuit as constants,
    which is what lets the frontend emit constant-aware multipliers.

    [reference] is a bit-exact plaintext interpreter for the same model —
    the test suite compiles a model to gates, evaluates both on the same
    quantized input, and compares. *)

open Pytfhe_circuit

type layer =
  | Conv1d of { in_ch : int; out_ch : int; kernel : int; stride : int; weights : float array; bias : float array option }
  | Conv2d of { in_ch : int; out_ch : int; kernel : int; stride : int; padding : int; weights : float array; bias : float array option }
  | Linear of { in_features : int; out_features : int; weights : float array; bias : float array option }
  | Relu
  | Hardtanh  (** clamp(x, −1, 1) — the piecewise-linear tanh used in FHE practice. *)
  | Hardsigmoid  (** clamp(x/6 + 1/2, 0, 1). *)
  | MaxPool1d of { kernel : int; stride : int }
  | AvgPool1d of { kernel : int; stride : int }
  | MaxPool2d of { kernel : int; stride : int }
  | AvgPool2d of { kernel : int; stride : int }
  | BatchNorm1d of { gamma : float array; beta : float array; mean : float array; var : float array; eps : float }
  | BatchNorm2d of { gamma : float array; beta : float array; mean : float array; var : float array; eps : float }
  | Flatten

type model = layer list
(** nn.Sequential. *)

val layer_name : layer -> string

val output_shape : layer -> int array -> int array
(** Shape after applying one layer; raises [Invalid_argument] on a shape the
    layer cannot accept. *)

val model_output_shape : model -> int array -> int array

type ('v, 'ctx) ops = {
  o_const : 'ctx -> float -> 'v;
  o_add : 'ctx -> 'v -> 'v -> 'v;
  o_mul_scalar : 'ctx -> 'v -> float -> 'v;
  o_relu : 'ctx -> 'v -> 'v;
  o_max : 'ctx -> 'v -> 'v -> 'v;
  o_div_const : 'ctx -> 'v -> int -> 'v;
  o_zero_pattern : 'v;
  o_clamp : 'ctx -> 'v -> float -> float -> 'v;
      (** [o_clamp ctx v lo hi] saturates to the public interval [lo, hi]
          (the Hardtanh/Hardsigmoid building block). *)
  o_copy : 'ctx -> 'v -> 'v;
      (** Applied to every element of shape-only layers ([Flatten]).  The
          ChiselTorch lowering uses the identity (free wiring); the
          Transpiler baseline emits buffer gates here, reproducing the
          paper's "gates for the Flatten layer" observation. *)
}
(** The value algebra the layer math is written against.  Instantiating it
    with circuit scalars yields the compiler; with plaintext bit patterns,
    the reference interpreter; the baseline framework models instantiate it
    with their own (less optimizing) lowerings. *)

val apply_generic : ('v, 'ctx) ops -> 'ctx -> layer -> int array -> 'v array -> 'v array
(** One layer over an arbitrary value algebra. *)

val apply : ?reuse:bool -> Netlist.t -> layer -> Tensor.t -> Tensor.t
(** Instantiate the layer's circuit.  With [~reuse:true] (default
    [false]) the convolutions build each output channel's window dot
    product once as a {!Tensor.template} and replay it per spatial
    position — bit-identical results, with the scalar lowering run
    [out_ch] times instead of [out_ch * positions] times, and sharing
    that survives a windowed (streaming) netlist.  Other layers ignore
    the flag. *)

val run : ?reuse:bool -> Netlist.t -> model -> Tensor.t -> Tensor.t
(** Instantiate a whole model ([reuse] as in {!apply}). *)

val reference : model -> Dtype.t -> int array -> int array -> int array
(** [reference model dtype shape input_patterns] evaluates the model on
    plaintext bit patterns with the exact wrap/quantization semantics of the
    generated circuit (integer and fixed-point dtypes are bit-exact; float
    dtypes agree up to rounding of intermediate results). *)
