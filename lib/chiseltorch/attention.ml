module Rng = Pytfhe_util.Rng

type config = { seq_len : int; hidden : int }
type weights = { wq : float array array; wk : float array array; wv : float array array }

let random_weights rng cfg =
  let scale = 1.0 /. sqrt (float_of_int cfg.hidden) in
  let matrix () =
    Array.init cfg.hidden (fun _ ->
        Array.init cfg.hidden (fun _ -> (Rng.float rng -. 0.5) *. 2.0 *. scale))
  in
  { wq = matrix (); wk = matrix (); wv = matrix () }

let build ?(reuse = false) net cfg w x =
  if Tensor.shape x <> [| cfg.seq_len; cfg.hidden |] then
    invalid_arg "Attention.build: input must be seq_len x hidden";
  let q = Tensor.matmul_const ~reuse net x w.wq in
  let k = Tensor.matmul_const ~reuse net x w.wk in
  let v = Tensor.matmul_const ~reuse net x w.wv in
  (* Scores = Q·Kᵀ / √d, then the ReLU normalisation standing in for
     softmax (see the interface documentation). *)
  let scores = Tensor.matmul ~reuse net q (Tensor.transpose k) in
  let scaled = Tensor.mul_scalar net scores (1.0 /. sqrt (float_of_int cfg.hidden)) in
  let attn = Tensor.relu net scaled in
  Tensor.matmul ~reuse net attn v
