open Pytfhe_util

type gauge_stats = { count : int; min : float; max : float; last : float }

let by_name fold events =
  let tbl = Hashtbl.create 16 in
  List.iter (fun e -> fold tbl e) events;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters events =
  by_name
    (fun tbl e ->
      match e with
      | Trace.Counter { name; value; _ } ->
          let cur = try Hashtbl.find tbl name with Not_found -> 0. in
          Hashtbl.replace tbl name (cur +. value)
      | _ -> ())
    events

let gauges events =
  by_name
    (fun tbl e ->
      match e with
      | Trace.Gauge { name; value; _ } ->
          let st =
            try Hashtbl.find tbl name
            with Not_found ->
              { count = 0; min = infinity; max = neg_infinity; last = nan }
          in
          Hashtbl.replace tbl name
            {
              count = st.count + 1;
              min = Float.min st.min value;
              max = Float.max st.max value;
              last = value;
            }
      | _ -> ())
    events

let span_totals events =
  by_name
    (fun tbl e ->
      match e with
      | Trace.Span { name; t0; t1; _ } ->
          let n, total = try Hashtbl.find tbl name with Not_found -> (0, 0.) in
          Hashtbl.replace tbl name (n + 1, total +. max 0. (t1 -. t0))
      | _ -> ())
    events

let to_json ?(extra = []) sink =
  let events = Trace.events sink in
  let counters =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Number v)) (counters events))
  in
  let gauges =
    Json.Obj
      (List.map
         (fun (k, g) ->
           ( k,
             Json.Obj
               [
                 ("count", Json.Number (float_of_int g.count));
                 ("min", Json.Number g.min);
                 ("max", Json.Number g.max);
                 ("last", Json.Number g.last);
               ] ))
         (gauges events))
  in
  let spans =
    Json.Obj
      (List.map
         (fun (k, (n, total)) ->
           ( k,
             Json.Obj
               [
                 ("count", Json.Number (float_of_int n));
                 ("total_s", Json.Number total);
               ] ))
         (span_totals events))
  in
  Json.Obj
    ([
       ("counters", counters);
       ("gauges", gauges);
       ("spans", spans);
       ("dropped_events", Json.Number (float_of_int (Trace.dropped sink)));
     ]
    @ extra)

let write ?extra sink path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string ~indent:true (to_json ?extra sink)))
