open Pytfhe_util

type event =
  | Span of { track : int; name : string; cat : string; t0 : float; t1 : float }
  | Counter of { track : int; name : string; t : float; value : float }
  | Gauge of { track : int; name : string; t : float; value : float }
  | Instant of { track : int; name : string; t : float }

(* One single-writer bounded buffer.  The owner appends with no locks;
   the coordinator reads it only at a barrier where the owner is
   quiescent (drain) — the barrier handshake is the happens-before
   edge, exactly as for the Par_eval values array. *)
type track_state = {
  tid : int;
  buf : event array;
  mutable len : int;
  mutable tdropped : int;
}

type track = No_track | Track of track_state

type sink = {
  enabled : bool;
  epoch_at : float;
  capacity : int;
  mu : Mutex.t;
  mutable tracks : track_state list;
  mutable names : (int * string) list;
  mutable next_id : int;
  mutable drained : event list; (* newest first *)
}

let dummy = Instant { track = 0; name = ""; t = 0. }

let null =
  {
    enabled = false;
    epoch_at = 0.;
    capacity = 0;
    mu = Mutex.create ();
    tracks = [];
    names = [];
    next_id = 0;
    drained = [];
  }

let create ?(capacity = 65536) ?epoch () =
  let epoch_at =
    match epoch with Some e -> e | None -> Unix.gettimeofday ()
  in
  {
    enabled = true;
    epoch_at;
    capacity = max 16 capacity;
    mu = Mutex.create ();
    tracks = [];
    names = [];
    next_id = 0;
    drained = [];
  }

let enabled s = s.enabled
let epoch s = s.epoch_at
let now s = Unix.gettimeofday () -. s.epoch_at

let locked s f =
  Mutex.lock s.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mu) f

let fresh_id s ~name =
  locked s (fun () ->
      let id = s.next_id in
      s.next_id <- id + 1;
      s.names <- (id, name) :: s.names;
      id)

let new_track s ~name =
  if not s.enabled then No_track
  else
    let id = fresh_id s ~name in
    let st = { tid = id; buf = Array.make s.capacity dummy; len = 0; tdropped = 0 } in
    locked s (fun () -> s.tracks <- st :: s.tracks);
    Track st

let external_track s ~name = if not s.enabled then 0 else fresh_id s ~name

let append st e =
  if st.len < Array.length st.buf then begin
    st.buf.(st.len) <- e;
    st.len <- st.len + 1
  end
  else st.tdropped <- st.tdropped + 1

let span ?(cat = "exec") tr ~name ~t0 ~t1 =
  match tr with
  | No_track -> ()
  | Track st -> append st (Span { track = st.tid; name; cat; t0; t1 })

let stamp () = Unix.gettimeofday ()

let counter tr ~name value =
  match tr with
  | No_track -> ()
  | Track st ->
      append st (Counter { track = st.tid; name; t = stamp (); value })

let gauge tr ~name value =
  match tr with
  | No_track -> ()
  | Track st -> append st (Gauge { track = st.tid; name; t = stamp (); value })

let instant tr ~name =
  match tr with
  | No_track -> ()
  | Track st -> append st (Instant { track = st.tid; name; t = stamp () })

(* Probe sites stamp absolute time (one syscall, no sink lookup); the
   drain rebases onto the sink's epoch so exports and injected worker
   events share one clock. *)
let rebase epoch_at e =
  match e with
  | Span _ -> e (* span t0/t1 come from [now], already epoch-relative *)
  | Counter c -> Counter { c with t = c.t -. epoch_at }
  | Gauge g -> Gauge { g with t = g.t -. epoch_at }
  | Instant i -> Instant { i with t = i.t -. epoch_at }

let drain s =
  if s.enabled then
    locked s (fun () ->
        List.iter
          (fun st ->
            for i = 0 to st.len - 1 do
              s.drained <- rebase s.epoch_at st.buf.(i) :: s.drained
            done;
            st.len <- 0)
          s.tracks)

let ts_of = function
  | Span { t0; _ } -> t0
  | Counter { t; _ } | Gauge { t; _ } | Instant { t; _ } -> t

let sorted_events s =
  List.stable_sort (fun a b -> compare (ts_of a) (ts_of b)) (List.rev s.drained)

let events s =
  if not s.enabled then []
  else begin
    drain s;
    locked s (fun () -> sorted_events s)
  end

let flush s =
  if not s.enabled then []
  else begin
    drain s;
    locked s (fun () ->
        let es = sorted_events s in
        s.drained <- [];
        es)
  end

let retrack track = function
  | Span sp -> Span { sp with track }
  | Counter c -> Counter { c with track }
  | Gauge g -> Gauge { g with track }
  | Instant i -> Instant { i with track }

let inject s ~track es =
  if s.enabled then
    locked s (fun () ->
        List.iter (fun e -> s.drained <- retrack track e :: s.drained) es)

let dropped s =
  locked s (fun () ->
      List.fold_left (fun acc st -> acc + st.tdropped) 0 s.tracks)

(* {2 Wire} *)

let write_event w e =
  match e with
  | Span { track; name; cat; t0; t1 } ->
      Wire.write_u8 w 0;
      Wire.write_i64 w track;
      Wire.write_string w name;
      Wire.write_string w cat;
      Wire.write_f64 w t0;
      Wire.write_f64 w t1
  | Counter { track; name; t; value } ->
      Wire.write_u8 w 1;
      Wire.write_i64 w track;
      Wire.write_string w name;
      Wire.write_f64 w t;
      Wire.write_f64 w value
  | Gauge { track; name; t; value } ->
      Wire.write_u8 w 2;
      Wire.write_i64 w track;
      Wire.write_string w name;
      Wire.write_f64 w t;
      Wire.write_f64 w value
  | Instant { track; name; t } ->
      Wire.write_u8 w 3;
      Wire.write_i64 w track;
      Wire.write_string w name;
      Wire.write_f64 w t

let read_event r =
  match Wire.read_u8 r with
  | 0 ->
      let track = Wire.read_i64 r in
      let name = Wire.read_string r in
      let cat = Wire.read_string r in
      let t0 = Wire.read_f64 r in
      let t1 = Wire.read_f64 r in
      Span { track; name; cat; t0; t1 }
  | 1 ->
      let track = Wire.read_i64 r in
      let name = Wire.read_string r in
      let t = Wire.read_f64 r in
      let value = Wire.read_f64 r in
      Counter { track; name; t; value }
  | 2 ->
      let track = Wire.read_i64 r in
      let name = Wire.read_string r in
      let t = Wire.read_f64 r in
      let value = Wire.read_f64 r in
      Gauge { track; name; t; value }
  | 3 ->
      let track = Wire.read_i64 r in
      let name = Wire.read_string r in
      let t = Wire.read_f64 r in
      Instant { track; name; t }
  | tag -> raise (Wire.Corrupt (Printf.sprintf "trace event tag %d" tag))

(* {2 Chrome trace_event export} *)

let us t = Json.Number (t *. 1e6)

let to_chrome s =
  let es = events s in
  let names = locked s (fun () -> List.rev s.names) in
  let meta =
    List.map
      (fun (tid, tname) ->
        Json.Obj
          [
            ("name", Json.String "thread_name");
            ("ph", Json.String "M");
            ("ts", Json.Number 0.);
            ("pid", Json.Number 1.);
            ("tid", Json.Number (float_of_int tid));
            ("args", Json.Obj [ ("name", Json.String tname) ]);
          ])
      names
  in
  (* Counters are increments at the probe site; the Chrome exporter turns
     them into running totals per (track, name) series. *)
  let totals = Hashtbl.create 16 in
  let body =
    List.map
      (fun e ->
        match e with
        | Span { track; name; cat; t0; t1 } ->
            Json.Obj
              [
                ("name", Json.String name);
                ("cat", Json.String cat);
                ("ph", Json.String "X");
                ("ts", us t0);
                ("dur", us (max 0. (t1 -. t0)));
                ("pid", Json.Number 1.);
                ("tid", Json.Number (float_of_int track));
              ]
        | Counter { track; name; t; value } ->
            let key = (track, name) in
            let total =
              value +. (try Hashtbl.find totals key with Not_found -> 0.)
            in
            Hashtbl.replace totals key total;
            Json.Obj
              [
                ("name", Json.String name);
                ("ph", Json.String "C");
                ("ts", us t);
                ("pid", Json.Number 1.);
                ("tid", Json.Number (float_of_int track));
                ("args", Json.Obj [ ("value", Json.Number total) ]);
              ]
        | Gauge { track; name; t; value } ->
            Json.Obj
              [
                ("name", Json.String name);
                ("ph", Json.String "C");
                ("ts", us t);
                ("pid", Json.Number 1.);
                ("tid", Json.Number (float_of_int track));
                ("args", Json.Obj [ ("value", Json.Number value) ]);
              ]
        | Instant { track; name; t } ->
            Json.Obj
              [
                ("name", Json.String name);
                ("ph", Json.String "i");
                ("ts", us t);
                ("pid", Json.Number 1.);
                ("tid", Json.Number (float_of_int track));
                ("s", Json.String "t");
              ])
      es
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ body));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_chrome s path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string ~indent:true (to_chrome s)))

(* {2 Validation} *)

let validate_chrome json =
  let ( let* ) = Result.bind in
  let* evs =
    match Json.member "traceEvents" json with
    | Some (Json.List l) -> Ok l
    | Some _ -> Error "traceEvents is not a list"
    | None -> Error "missing traceEvents"
  in
  let num field ev =
    match Json.member field ev with
    | Some (Json.Number f) -> Ok f
    | _ -> Error (Printf.sprintf "event missing numeric %S" field)
  in
  let str field ev =
    match Json.member field ev with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "event missing string %S" field)
  in
  (* per-tid list of complete spans, emission order *)
  let spans = Hashtbl.create 16 in
  let check_one ev =
    match ev with
    | Json.Obj _ ->
        let* _name = str "name" ev in
        let* ph = str "ph" ev in
        let* _ts = num "ts" ev in
        let* _pid = num "pid" ev in
        let* tid = num "tid" ev in
        if ph = "X" then
          let* ts = num "ts" ev in
          let* dur = num "dur" ev in
          if dur < 0. then Error "complete event with negative dur"
          else begin
            let prev = try Hashtbl.find spans tid with Not_found -> [] in
            Hashtbl.replace spans tid ((ts, dur) :: prev);
            Ok ()
          end
        else Ok ()
    | _ -> Error "traceEvents member is not an object"
  in
  let* () =
    List.fold_left
      (fun acc ev -> Result.bind acc (fun () -> check_one ev))
      (Ok ()) evs
  in
  (* Per track: spans must be monotonic and non-overlapping.  Half a
     microsecond of slack absorbs float rounding through the µs
     conversion. *)
  let eps = 0.5 in
  Hashtbl.fold
    (fun tid l acc ->
      let* () = acc in
      let rec go = function
        | (ts0, d0) :: ((ts1, _) :: _ as rest) ->
            if ts1 +. eps < ts0 then
              Error
                (Printf.sprintf "unsorted spans on tid %g: %g after %g" tid ts1
                   ts0)
            else if ts1 +. eps < ts0 +. d0 then
              Error
                (Printf.sprintf
                   "overlapping spans on tid %g: [%g,%g] then start %g" tid ts0
                   (ts0 +. d0) ts1)
            else go rest
        | _ -> Ok ()
      in
      go (List.rev l))
    spans (Ok ())
