type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let empty_summary =
  { count = 0; mean = nan; p50 = nan; p90 = nan; p99 = nan; max = nan }

(* Nearest-rank on a sorted copy: exact, O(n log n), fine for the sample
   counts a bench or a service stats frame deals in.  q is clamped to
   [0, 1]; the empty array yields nan (JSON-exported as null downstream,
   "p99 finite" gates catch it). *)
let of_samples samples ~q =
  let n = Array.length samples in
  if n = 0 then nan
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(Int.max 0 (Int.min (n - 1) (rank - 1)))
  end

let summarize samples =
  let n = Array.length samples in
  if n = 0 then empty_summary
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let at q =
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      sorted.(Int.max 0 (Int.min (n - 1) (rank - 1)))
    in
    {
      count = n;
      mean = Array.fold_left ( +. ) 0.0 sorted /. float_of_int n;
      p50 = at 0.5;
      p90 = at 0.9;
      p99 = at 0.99;
      max = sorted.(n - 1);
    }
  end

let summary_json s =
  let open Pytfhe_util.Json in
  let num v = if Float.is_nan v then Null else Number v in
  Obj
    [
      ("count", Number (float_of_int s.count));
      ("mean", num s.mean);
      ("p50", num s.p50);
      ("p90", num s.p90);
      ("p99", num s.p99);
      ("max", num s.max);
    ]
