(** Low-overhead tracing/metrics sink for every execution backend.

    The observability layer the evaluation (paper Figs. 7–10) needs: span,
    counter and gauge probes scattered through the executors, collected in
    per-track ring buffers and exported as a Chrome [trace_event] JSON
    (open in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto})
    or aggregated into a flat metrics JSON (see {!Metrics}).

    Concurrency model: one {e track} is owned by exactly one writer (the
    coordinating thread, a worker domain, a worker process).  Writers
    append to their own ring buffer with no locks; the coordinator calls
    {!drain} at wave barriers — where every other writer is quiescent, so
    the pool's barrier handshake is the happens-before edge — to move
    events into the global list.  Track registration and drains take a
    mutex; probes never do.

    Cost model: a disabled sink ({!null}, or any probe behind
    [if Trace.enabled sink]) costs one load of an immutable boolean.  The
    [obs] bench experiment measures the end-to-end overhead of the
    disabled probes on the micro gate benchmark and records it in
    [BENCH_obs_overhead.json]. *)

type event =
  | Span of { track : int; name : string; cat : string; t0 : float; t1 : float }
      (** A completed interval, [epoch]-relative seconds. *)
  | Counter of { track : int; name : string; t : float; value : float }
      (** A monotonic increment (the exporter accumulates running totals). *)
  | Gauge of { track : int; name : string; t : float; value : float }
      (** A sampled absolute value. *)
  | Instant of { track : int; name : string; t : float }

type sink
type track

val null : sink
(** The disabled sink: every probe is a no-op behind one flag load. *)

val create : ?capacity:int -> ?epoch:float -> unit -> sink
(** An enabled sink.  [capacity] (default 65536) bounds each track's ring
    buffer between drains; overflowing events are dropped and counted.
    [epoch] (default: now, as [Unix.gettimeofday]) is the absolute time
    all probe timestamps are relative to — a distributed worker passes the
    coordinator's epoch (shipped in the hello frame) so both sides emit
    directly comparable timestamps off the shared machine clock. *)

val epoch : sink -> float
(** The absolute [Unix.gettimeofday] origin of this sink's timestamps. *)

val enabled : sink -> bool
(** One load of an immutable field — the guard for every probe site. *)

val now : sink -> float
(** Seconds since the sink's epoch (what all probe timestamps use). *)

val new_track : sink -> name:string -> track
(** Register a writer-owned track (takes the registration mutex; call at
    setup time, never on the hot path).  On {!null} returns a dummy track
    whose probes are no-ops. *)

val external_track : sink -> name:string -> int
(** Reserve a track id for events produced elsewhere (a worker process)
    and later merged with {!inject}. *)

val span : ?cat:string -> track -> name:string -> t0:float -> t1:float -> unit
val counter : track -> name:string -> float -> unit
val gauge : track -> name:string -> float -> unit
val instant : track -> name:string -> unit

val drain : sink -> unit
(** Move every track's buffered events into the sink's global list.  Only
    the coordinator may call this, and only when all other writers are at
    a barrier. *)

val flush : sink -> event list
(** {!drain}, then return {e and clear} all accumulated events in
    chronological order — how a worker process hands its events to the
    coordinator. *)

val events : sink -> event list
(** {!drain}, then return (without clearing) all events, chronological. *)

val inject : sink -> track:int -> event list -> unit
(** Merge externally collected events (re-stamped onto [track]).  The
    timestamps are kept as-is: both sides of the socket share the machine
    clock, and worker sinks are created against the coordinator's epoch
    offset shipped in the hello frame (see {!Pytfhe_backend.Dist_eval}). *)

val dropped : sink -> int
(** Events lost to ring-buffer overflow across all tracks. *)

val write_event : Pytfhe_util.Wire.writer -> event -> unit
val read_event : Pytfhe_util.Wire.reader -> event
(** Wire (de)serialization for the [DTRC] frame. *)

(** {2 Chrome trace export} *)

val to_chrome : sink -> Pytfhe_util.Json.t
(** The [trace_event] JSON object ({["traceEvents"]} array of [X]/[C]/[i]
    events plus [M] thread-name metadata, timestamps in microseconds). *)

val write_chrome : sink -> string -> unit
(** Serialize {!to_chrome} to a file. *)

val validate_chrome : Pytfhe_util.Json.t -> (unit, string) result
(** Schema check used by the exporter golden tests, the CLI
    [trace-validate] command and CI: a [traceEvents] list whose members
    carry [name]/[ph]/[ts]/[pid]/[tid], complete events carry a
    non-negative [dur], and per track the complete spans are monotonic and
    non-overlapping. *)
