(** Exact sample quantiles for latency reporting.

    The service layer and the bench harness both summarize per-request
    latencies as p50/p90/p99; this is the one shared implementation
    (nearest-rank on a sorted copy — exact, no sketching), so the numbers
    in a [SSTA] stats frame and in [BENCH_service.json] mean the same
    thing. *)

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val empty_summary : summary
(** [count = 0], every statistic [nan]. *)

val of_samples : float array -> q:float -> float
(** Nearest-rank quantile ([q] clamped to [0, 1]); [nan] on the empty
    array.  Does not mutate its argument. *)

val summarize : float array -> summary

val summary_json : summary -> Pytfhe_util.Json.t
(** [{"count": n, "mean": ..., "p50": ..., "p90": ..., "p99": ...,
    "max": ...}]; [nan] statistics render as [null]. *)
