(** Flat metrics export: aggregate everything a {!Trace.sink} collected
    into one JSON object — counter totals (bootstraps, key switches,
    FFTs, allocation words, bytes on the wire, retries, heartbeat
    misses), gauge statistics (noise margins), and per-span-name time
    totals — plus whatever backend-specific extras the caller supplies. *)

type gauge_stats = { count : int; min : float; max : float; last : float }

val counters : Trace.event list -> (string * float) list
(** Counter totals summed by name, name-sorted. *)

val gauges : Trace.event list -> (string * gauge_stats) list
(** Gauge statistics by name, name-sorted. *)

val span_totals : Trace.event list -> (string * (int * float)) list
(** Per span name: (occurrences, total seconds), name-sorted. *)

val to_json :
  ?extra:(string * Pytfhe_util.Json.t) list ->
  Trace.sink ->
  Pytfhe_util.Json.t
(** The metrics object: [{"counters": {...}, "gauges": {...},
    "spans": {...}, "dropped_events": n, ...extra}]. *)

val write :
  ?extra:(string * Pytfhe_util.Json.t) list -> Trace.sink -> string -> unit
(** Serialize {!to_json} to a file. *)
