(** Streaming execution of PyTFHE binaries.

    The paper's executor never builds a graph structure: the sequential
    index "naming" of Fig. 5 lets it scan the 128-bit instruction stream
    once, keeping a value table indexed by gate number (§IV-C's "fast TFHE
    program DAG traversal").  This module is that executor, for both
    plaintext bits and real ciphertexts — unlike {!Plain_eval.run_binary},
    no netlist is materialised, so memory is one value per instruction. *)

type 'v ops = {
  v_gate : Pytfhe_circuit.Gate.t -> 'v -> 'v -> 'v;
  v_input : int -> 'v;  (** Fetch input [i] (in input-instruction order). *)
  v_lut : arity:int -> table:int -> 'v array -> 'v;
      (** Evaluate one programmable LUT cell.  Arity-1 cells receive a
          classic operand; arity-2/3 cells receive lutdom operands.  The
          result is lutdom-encoded. *)
  v_lut_view : 'v -> 'v;  (** The free lutdom → classic view. *)
}

val run : ?opts:Exec_opts.t -> 'v ops -> bytes -> 'v array
(** Execute an assembled binary over any value domain; returns the outputs
    in output-instruction order.  Raises [Failure] on malformed streams
    (bad magic sizes, forward references, missing header) and
    [Pytfhe_util.Wire.Corrupt] on structurally corrupt LUT records — a
    multi-input cell whose operand is not lutdom-encoded (the per-record
    field checks already live in the {!Pytfhe_circuit.Binary} decoder).
    With an enabled [opts.obs] sink, emits one span for the whole pass plus
    the instruction-mix counters on a ["stream"] track.  The stream walk is
    inherently scalar: [opts.batch]/non-default [opts.soa] raise
    [Invalid_argument] rather than being silently dropped. *)

val run_bits : bytes -> bool array -> bool array
(** Plaintext-bit instantiation. *)

val run_encrypted :
  ?opts:Exec_opts.t ->
  Pytfhe_tfhe.Gates.cloud_keyset -> bytes -> Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array
(** Homomorphic instantiation: each gate instruction triggers one
    bootstrapped-gate evaluation.  Traced runs add key-switch/FFT counters
    and the noise gauges on a ["stream-crypto"] track.  Same
    [Invalid_argument] contract as {!run} for the batch/soa knobs. *)

val run_legacy : ?obs:Pytfhe_obs.Trace.sink -> 'v ops -> bytes -> 'v array
(** @deprecated The pre-{!Exec_opts} signature, kept for one release. *)

val run_encrypted_legacy :
  ?obs:Pytfhe_obs.Trace.sink ->
  Pytfhe_tfhe.Gates.cloud_keyset -> bytes -> Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array
(** @deprecated The pre-{!Exec_opts} signature, kept for one release. *)
