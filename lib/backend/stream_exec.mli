(** Streaming execution of PyTFHE binaries.

    The paper's executor never builds a graph structure: the sequential
    index "naming" of Fig. 5 lets it scan the 128-bit instruction stream
    once, keeping a value table indexed by gate number (§IV-C's "fast TFHE
    program DAG traversal").  This module is that executor, for both
    plaintext bits and real ciphertexts — unlike {!Plain_eval.run_binary},
    no netlist is materialised, so memory is one value per instruction. *)

type 'v ops = {
  v_gate : Pytfhe_circuit.Gate.t -> 'v -> 'v -> 'v;
  v_input : int -> 'v;  (** Fetch input [i] (in input-instruction order). *)
  v_lut : arity:int -> table:int -> 'v array -> 'v;
      (** Evaluate one programmable LUT cell.  Arity-1 cells receive a
          classic operand; arity-2/3 cells receive lutdom operands.  The
          result is lutdom-encoded. *)
  v_lut_view : 'v -> 'v;  (** The free lutdom → classic view. *)
}

val run : ?opts:Exec_opts.t -> 'v ops -> bytes -> 'v array
(** Execute an assembled binary over any value domain; returns the outputs
    in output-instruction order.  Raises [Failure] on malformed streams
    (bad magic sizes, forward references, missing header) and
    [Pytfhe_util.Wire.Corrupt] on structurally corrupt LUT records — a
    multi-input cell whose operand is not lutdom-encoded (the per-record
    field checks already live in the {!Pytfhe_circuit.Binary} decoder).
    With an enabled [opts.obs] sink, emits one span for the whole pass plus
    the instruction-mix counters on a ["stream"] track.  The stream walk is
    inherently scalar: [opts.batch]/non-default [opts.soa] raise
    [Invalid_argument] rather than being silently dropped. *)

val run_bits : bytes -> bool array -> bool array
(** Plaintext-bit instantiation. *)

val run_encrypted :
  ?opts:Exec_opts.t ->
  Pytfhe_tfhe.Gates.cloud_keyset -> bytes -> Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array
(** Homomorphic instantiation: each gate instruction triggers one
    bootstrapped-gate evaluation.  Traced runs add key-switch/FFT counters
    and the noise gauges on a ["stream-crypto"] track.  Same
    [Invalid_argument] contract as {!run} for the batch/soa knobs. *)

val run_source :
  ?obs:Pytfhe_obs.Trace.sink -> 'v ops -> (unit -> bytes option) -> 'v array
(** Like {!run}, pulling the binary from a chunked source
    ({!Pytfhe_circuit.Binary.iter_source}) instead of a resident byte
    buffer — the executor for streamed compilations, where the binary is
    produced wave by wave and never materialised.  Headers carrying
    {!Pytfhe_circuit.Binary.streamed_gate_total} skip the gate-budget
    check. *)

(** {1 Segmented wave driver}

    The streaming counterpart of the levelized executors.  Instructions are
    consumed as they arrive; bootstrapped gates and LUT cells are queued by
    wave (level = 1 + max operand level within the current segment) and
    handed to a backend callback one wave at a time, so batching and
    parallel backends see the same wave structure a materialised netlist
    would give them — without the netlist.  When the queued bootstrap count
    reaches [window] the segment flushes level by level, bounding peak
    queued work.  NOT gates are evaluated inline (immediately when their
    operand is computed, after the producing wave otherwise), matching
    {!Pytfhe_circuit.Levelize.waves} semantics. *)

type 'v task =
  | T_gate of { gate : Pytfhe_circuit.Gate.t; a : 'v; b : 'v }
      (** One bootstrapped binary gate; operands are classic views, already
          resolved. *)
  | T_lut of { arity : int; table : int; operands : 'v array; ins : int array }
      (** One LUT cell; arity-1 operands are classic views, arity-2/3 are
          raw lutdom values.  [ins] are the stream indices of the operands —
          tasks of one wave sharing the same [ins] may share blind
          rotations. *)

type wave_stats = {
  segments_run : int;
  waves_run : int;
  bootstraps_run : int;
  nots_run : int;
  wave_widths : int array;  (** Tasks per executed wave, in order. *)
  wave_wall : float array;  (** Wall seconds per executed wave. *)
}

val run_waves :
  ?obs:Pytfhe_obs.Trace.sink ->
  ?window:int ->
  run_wave:('v task array -> 'v array) ->
  'v ops ->
  (unit -> bytes option) ->
  'v array * wave_stats
(** Execute a streamed binary wave by wave.  [run_wave] must return one
    result per task, in task order.  [ops.v_gate] is only consulted for
    inline NOT gates and [ops.v_lut] never — bootstrapped work goes through
    [run_wave].  Default [window] is 32768 queued bootstraps per segment.
    Error contract matches {!run}. *)

(** Rotation units of one wave's LUT tasks, for encrypted wave runners:
    one [C_sign] per arity-1 cell, one [C_group] per distinct multi-input
    operand tuple (lists reversed, aligned).  [idx]/[idxs] are task
    positions in the wave. *)
type stream_cell =
  | C_sign of { idx : int; table : int; operand : Pytfhe_tfhe.Lwe.sample }
  | C_group of {
      mutable idxs : int list;
      mutable tables : int list;
      arity : int;
      raws : Pytfhe_tfhe.Lwe.sample array;
    }

val stream_lut_cells :
  Pytfhe_tfhe.Lwe.sample task array -> int list -> stream_cell array
(** Group the LUT tasks at the given positions (in order) into rotation
    units, first-appearance order — the streaming counterpart of
    {!Tfhe_eval.build_lut_cells}. *)

val run_encrypted_stream :
  ?opts:Exec_opts.t ->
  ?window:int ->
  Pytfhe_tfhe.Gates.cloud_keyset ->
  (unit -> bytes option) ->
  Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array * Tfhe_eval.stats
(** Single-process encrypted execution of a streamed binary through
    {!run_waves}: scalar per-wave when [opts.batch] is unset, through the
    key-streaming batch kernel otherwise (LUT cells grouped by operand
    tuple for rotation sharing, as in {!Tfhe_eval}).  Outputs are
    ciphertext-bit-exact with {!Tfhe_eval.run} over the materialised
    netlist.  [opts.soa] is ignored — the wave driver's value table is
    per-slot by construction. *)

val run_legacy : ?obs:Pytfhe_obs.Trace.sink -> 'v ops -> bytes -> 'v array
(** @deprecated The pre-{!Exec_opts} signature, kept for one release. *)

val run_encrypted_legacy :
  ?obs:Pytfhe_obs.Trace.sink ->
  Pytfhe_tfhe.Gates.cloud_keyset -> bytes -> Pytfhe_tfhe.Lwe.sample array ->
  Pytfhe_tfhe.Lwe.sample array
(** @deprecated The pre-{!Exec_opts} signature, kept for one release. *)
