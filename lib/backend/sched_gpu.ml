module Levelize = Pytfhe_circuit.Levelize

type timeline_segment = { label : string; t_start : float; t_end : float }

type result = {
  gpu : Cost_model.gpu;
  policy : string;
  makespan : float;
  speedup_vs_single_core : float;
  timeline : timeline_segment list;
}

let timeline_gate_limit = 8

let simulate_cufhe (gpu : Cost_model.gpu) ~(cpu : Cost_model.cpu) sched =
  let n = sched.Levelize.total_bootstraps in
  let per_gate = gpu.launch_time +. gpu.h2d_time +. gpu.kernel_time +. gpu.d2h_time in
  let makespan = float_of_int n *. per_gate in
  let timeline =
    if n > timeline_gate_limit then []
    else
      List.concat_map
        (fun i ->
          let base = float_of_int i *. per_gate in
          [
            { label = "H2D"; t_start = base; t_end = base +. gpu.h2d_time };
            {
              label = "Kernel";
              t_start = base +. gpu.h2d_time;
              t_end = base +. gpu.h2d_time +. gpu.kernel_time;
            };
            {
              label = "D2H";
              t_start = base +. gpu.h2d_time +. gpu.kernel_time;
              t_end = per_gate +. base;
            };
          ])
        (List.init n Fun.id)
  in
  let single = float_of_int n *. cpu.gate_time in
  {
    gpu;
    policy = "cuFHE per-gate";
    makespan;
    speedup_vs_single_core = (if makespan > 0.0 then single /. makespan else 0.0);
    timeline;
  }

(* Pack waves greedily into CUDA-Graph batches bounded by GPU memory.  A
   single wave wider than the bound is split across several batches (the
   gates of one wave are mutually independent, so a split preserves the
   schedule's dependencies) — previously such a wave was emitted as one
   oversized batch, silently violating the memory cap. *)
let batches_of ~max_batch_nodes sched =
  if max_batch_nodes < 1 then invalid_arg "Sched_gpu.batches_of: max_batch_nodes must be >= 1";
  let batches = ref [] and current = ref [] and current_nodes = ref 0 in
  let flush () =
    if !current <> [] then begin
      batches := List.rev !current :: !batches;
      current := [];
      current_nodes := 0
    end
  in
  Array.iter
    (fun width ->
      if width > 0 then
        if width > max_batch_nodes then begin
          (* Oversized wave: flush, then emit full-capacity slices; the
             remainder keeps packing with the following waves. *)
          flush ();
          let remaining = ref width in
          while !remaining > max_batch_nodes do
            batches := [ max_batch_nodes ] :: !batches;
            remaining := !remaining - max_batch_nodes
          done;
          if !remaining > 0 then begin
            current := [ !remaining ];
            current_nodes := !remaining
          end
        end
        else begin
          if !current_nodes > 0 && !current_nodes + width > max_batch_nodes then flush ();
          current := width :: !current;
          current_nodes := !current_nodes + width
        end)
    sched.Levelize.widths;
  flush ();
  List.rev !batches

let simulate_pytfhe ?(max_batch_nodes = 200_000) (gpu : Cost_model.gpu) ~(cpu : Cost_model.cpu)
    sched =
  let batches = batches_of ~max_batch_nodes sched in
  let exec_time widths =
    gpu.launch_time
    +. List.fold_left
         (fun acc width -> acc +. (float_of_int ((width + gpu.slots - 1) / gpu.slots) *. gpu.kernel_time))
         0.0 widths
  in
  let build_time widths =
    float_of_int (List.fold_left ( + ) 0 widths) *. gpu.graph_node_time
  in
  let timeline = ref [] in
  let emit label t_start t_end = timeline := { label; t_start; t_end } :: !timeline in
  (* The input copy and the first graph construction are exposed; afterwards
     batch b+1 is built on the CPU while batch b executes on the GPU. *)
  let t = ref gpu.h2d_time in
  emit "H2D" 0.0 !t;
  (match batches with
  | [] -> ()
  | first :: _ ->
    let b0 = build_time first in
    emit "Graph build" !t (!t +. b0);
    t := !t +. b0);
  let rec execute = function
    | [] -> ()
    | widths :: rest ->
      let e = exec_time widths in
      emit "Kernel (graph)" !t (!t +. e);
      (match rest with
      | next :: _ ->
        let b = build_time next in
        emit "Graph build (overlapped)" !t (!t +. b);
        t := !t +. Float.max e b
      | [] -> t := !t +. e);
      execute rest
  in
  execute batches;
  emit "D2H" !t (!t +. gpu.d2h_time);
  t := !t +. gpu.d2h_time;
  let n = sched.Levelize.total_bootstraps in
  let single = float_of_int n *. cpu.gate_time in
  {
    gpu;
    policy = "PyTFHE CUDA graphs";
    makespan = !t;
    speedup_vs_single_core = (if !t > 0.0 then single /. !t else 0.0);
    timeline = (if n > 4 * timeline_gate_limit then [] else List.rev !timeline);
  }

let speedup_over_cufhe gpu ~cpu sched =
  let baseline = simulate_cufhe gpu ~cpu sched in
  let ours = simulate_pytfhe gpu ~cpu sched in
  if ours.makespan > 0.0 then baseline.makespan /. ours.makespan else 0.0

let pp_result fmt r =
  Format.fprintf fmt "%s on %s: makespan=%.3fs (%.1fx single core)" r.policy
    r.gpu.Cost_model.gpu_name r.makespan r.speedup_vs_single_core

let simulate_cufhe_batched (gpu : Cost_model.gpu) ~(cpu : Cost_model.cpu) net =
  let sched = Levelize.run net in
  (* Count gates per (wave, type): each group is one synchronous batch. *)
  let groups : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  Pytfhe_circuit.Netlist.iter_gates net (fun id g _ _ ->
      if not (Pytfhe_circuit.Gate.is_unary g) then begin
        let key = (sched.Levelize.level.(id), Pytfhe_circuit.Gate.to_code g) in
        Hashtbl.replace groups key (1 + Option.value ~default:0 (Hashtbl.find_opt groups key))
      end);
  let makespan = ref 0.0 in
  Hashtbl.iter
    (fun _ count ->
      let kernels = (count + gpu.slots - 1) / gpu.slots in
      makespan :=
        !makespan +. gpu.launch_time
        +. (float_of_int count *. (gpu.h2d_time +. gpu.d2h_time))
        +. (float_of_int kernels *. gpu.kernel_time))
    groups;
  let single = float_of_int sched.Levelize.total_bootstraps *. cpu.gate_time in
  {
    gpu;
    policy = "cuFHE same-type batches";
    makespan = !makespan;
    speedup_vs_single_core = (if !makespan > 0.0 then single /. !makespan else 0.0);
    timeline = [];
  }
