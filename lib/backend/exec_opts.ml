type t = {
  obs : Pytfhe_obs.Trace.sink;
  batch : int option;
  soa : bool;
}

let default = { obs = Pytfhe_obs.Trace.null; batch = None; soa = true }

let of_flags ?(obs = Pytfhe_obs.Trace.null) ?batch ?(soa = default.soa) () =
  { obs; batch; soa }

let check_scalar_only ~who t =
  if t.batch <> None || t.soa <> default.soa then
    invalid_arg
      (who
     ^ ": the batch/soa execution knobs are not supported by this backend \
        (batching is worker-side for the multiprocess executor — use \
        config.array_frames — and meaningless for the instruction-stream \
        executor)")
