(** Length-prefixed [PTFD] framing over Unix file descriptors.

    The one wire envelope every socket protocol in the tree shares: the
    multiprocess executor's coordinator/worker channels ({!Dist_eval}) and
    the FHE-as-a-service server ([Pytfhe_service]).  A frame is the 4-byte
    magic ["PTFD"], an 8-byte little-endian payload length, then the
    payload; the payload itself conventionally starts with a 4-char
    message magic read through {!Pytfhe_util.Wire}. *)

val frame_magic : string
(** ["PTFD"]. *)

val max_frame : int
(** Upper bound on a payload length (1 GiB); longer announcements are
    rejected as corrupt before any allocation. *)

exception Frame_closed
(** The peer hung up (EOF or EPIPE), possibly mid-frame. *)

exception Frame_timeout
(** The deadline passed with the peer stalled mid-frame. *)

val write_all : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** Write exactly [len] bytes, retrying short writes; raises
    {!Frame_closed} if the peer is gone. *)

val read_exact : deadline:float -> Unix.file_descr -> Bytes.t -> int -> int -> unit
(** Read exactly [len] bytes before [deadline] (absolute seconds;
    [infinity] blocks), or raise {!Frame_timeout} / {!Frame_closed}. *)

val write_frame : Unix.file_descr -> Bytes.t -> int
(** Frame and send a payload; returns the bytes put on the wire
    (12 + payload length). *)

val read_frame : ?deadline:float -> Unix.file_descr -> string
(** Receive one frame's payload.  Raises {!Pytfhe_util.Wire.Corrupt} on a
    bad magic or an implausible length, {!Frame_timeout} past the
    deadline, {!Frame_closed} on EOF. *)
