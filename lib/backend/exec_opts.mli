(** Consolidated execution options.

    Every executor used to thread the same three optional arguments —
    [?obs ?batch ?soa] — through its [run] function, and every layer above
    (the server, the CLI, the bench harness) had to repeat them.  This
    record is the one value that replaces the triple; {!Executor}
    re-exports it as [Executor.opts] so callers outside the backend
    library never need to name this module.

    The record lives below {!Executor} in the dependency order on purpose:
    {!Tfhe_eval}, {!Par_eval}, {!Dist_eval} and {!Stream_exec} accept it
    natively without depending on the first-class-module layer. *)

type t = {
  obs : Pytfhe_obs.Trace.sink;
      (** Tracing sink; {!Pytfhe_obs.Trace.null} disables all probes. *)
  batch : int option;
      (** [Some b] routes batching-capable executors through the
          key-streaming batched kernel in sub-batches of at most [b]
          gates; [None] is the scalar per-gate path. *)
  soa : bool;
      (** On a batched run, keep values in struct-of-arrays
          {!Pytfhe_tfhe.Lwe_array}s and use the row kernels (the default);
          [false] selects the record-per-gate batched walk.  Ignored
          without [batch]. *)
}

val default : t
(** [{ obs = Trace.null; batch = None; soa = true }] — the historical
    defaults of every executor's optional arguments. *)

val of_flags :
  ?obs:Pytfhe_obs.Trace.sink -> ?batch:int -> ?soa:bool -> unit -> t
(** Build an options record from the legacy flag triple (what the
    deprecated [run_legacy] wrappers do). *)

val check_scalar_only : who:string -> t -> unit
(** Raise [Invalid_argument] if [t] asks for batch or a non-default SoA
    layout — for backends where those knobs cannot apply and silently
    dropping them would mislead (the multiprocess and instruction-stream
    executors). *)
