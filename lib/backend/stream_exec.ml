module Binary = Pytfhe_circuit.Binary
module Gate = Pytfhe_circuit.Gate
module Wire = Pytfhe_util.Wire
module Trace = Pytfhe_obs.Trace

type 'v ops = {
  v_gate : Gate.t -> 'v -> 'v -> 'v;
  v_input : int -> 'v;
  v_lut : arity:int -> table:int -> 'v array -> 'v;
  v_lut_view : 'v -> 'v;
}

let run_insts ?(obs = Trace.null) ops iter_insts =
  (* One pass over the instruction stream; the value table is indexed by
     the sequential gate numbering, so lookups are array reads.  The table
     grows geometrically: the header only declares the gate count, not the
     input count.  Each slot carries the value plus its encoding: LUT cells
     produce lutdom-encoded values, which classic consumers (gates,
     arity-1 LUT cells, outputs) read through [v_lut_view]. *)
  let traced = Trace.enabled obs in
  let t_start = Trace.now obs in
  let table = ref [||] in
  let next = ref 1 in
  let input_ordinal = ref 0 in
  let gate_total = ref (-1) in
  let seen_gates = ref 0 in
  let unary_gates = ref 0 in
  let lut_cells = ref 0 in
  let first = ref true in
  let outputs = ref [] in
  let output_count = ref 0 in
  let ensure index =
    if Array.length !table <= index then begin
      let bigger = Array.make (max (2 * Array.length !table) (index + 16)) None in
      Array.blit !table 0 bigger 0 (Array.length !table);
      table := bigger
    end
  in
  let fetch index =
    if index < 1 || index >= !next then failwith "Stream_exec: reference to an unassigned index";
    match !table.(index) with
    | Some cell -> cell
    | None -> failwith "Stream_exec: reference to an unassigned index"
  in
  let fetch_classic index =
    let v, is_lut = fetch index in
    if is_lut then ops.v_lut_view v else v
  in
  (* A streamed binary's header carries the sentinel instead of a count;
     the gate-budget check only applies to exact headers. *)
  let over_budget () =
    !gate_total <> Binary.streamed_gate_total && !seen_gates > !gate_total
  in
  iter_insts (fun inst ->
      match inst with
      | Binary.Header { gate_total = g } ->
        if not !first then failwith "Stream_exec: duplicate header";
        first := false;
        gate_total := g
      | Binary.Input_decl { index } ->
        if !gate_total < 0 then failwith "Stream_exec: missing header instruction";
        if index <> !next then failwith "Stream_exec: non-sequential input index";
        ensure index;
        !table.(index) <- Some (ops.v_input !input_ordinal, false);
        incr input_ordinal;
        incr next
      | Binary.Gate_inst { gate; in0; in1 } ->
        if !gate_total < 0 then failwith "Stream_exec: missing header instruction";
        incr seen_gates;
        if Gate.is_unary gate then incr unary_gates;
        if over_budget () then
          failwith "Stream_exec: more gates than the header declared";
        ensure !next;
        !table.(!next) <- Some (ops.v_gate gate (fetch_classic in0) (fetch_classic in1), false);
        incr next
      | Binary.Lut_inst { table = tbl; ins } ->
        if !gate_total < 0 then failwith "Stream_exec: missing header instruction";
        incr seen_gates;
        incr lut_cells;
        if over_budget () then
          failwith "Stream_exec: more gates than the header declared";
        let arity = Array.length ins in
        (* The decoder already bounds arity and table; what only the value
           stream can check is the operand encoding: a multi-input cell
           whose operand is not itself a LUT cell would blind-rotate a
           classic ciphertext as if it were lutdom — structurally corrupt,
           rejected before any value is computed.  Arity-1 cells take the
           classic view of whatever they are fed. *)
        let operands =
          if arity = 1 then [| fetch_classic ins.(0) |]
          else
            Array.map
              (fun idx ->
                let v, is_lut = fetch idx in
                if not is_lut then
                  raise
                    (Wire.Corrupt
                       (Printf.sprintf
                          "Stream_exec: lut%d operand %d is not lutdom-encoded" arity idx));
                v)
              ins
        in
        ensure !next;
        !table.(!next) <- Some (ops.v_lut ~arity ~table:tbl operands, true);
        incr next
      | Binary.Output_decl { index } ->
        incr output_count;
        outputs := fetch_classic index :: !outputs);
  if !gate_total < 0 then failwith "Stream_exec: missing header instruction";
  if traced then begin
    (* The stream has no wave structure — the whole single pass is one
       span, with the instruction mix as counters. *)
    let tr = Trace.new_track obs ~name:"stream" in
    Trace.span tr ~cat:"run" ~name:"stream_exec" ~t0:t_start ~t1:(Trace.now obs);
    Trace.counter tr ~name:"instructions"
      (float_of_int (1 + !input_ordinal + !seen_gates + !output_count));
    Trace.counter tr ~name:"inputs" (float_of_int !input_ordinal);
    Trace.counter tr ~name:"bootstraps" (float_of_int (!seen_gates - !unary_gates));
    Trace.counter tr ~name:"nots" (float_of_int !unary_gates);
    Trace.counter tr ~name:"luts" (float_of_int !lut_cells);
    Trace.counter tr ~name:"outputs" (float_of_int !output_count);
    Trace.drain obs
  end;
  Array.of_list (List.rev !outputs)

let run_legacy ?obs ops bytes = run_insts ?obs ops (Binary.iter bytes)
let run_source ?obs ops read = run_insts ?obs ops (Binary.iter_source read)

(* --- Segmented wave driver ------------------------------------------------

   The streaming counterpart of the levelized executors: instructions are
   consumed as they arrive, but bootstrapped work is queued by wave (level =
   1 + max operand level within the current segment) and handed to a backend
   [run_wave] callback one wave at a time, so batching/parallel backends see
   the same wave structure a materialised netlist would give them.  Once the
   queued bootstrap count reaches [window], the segment is flushed level by
   level — peak queued work stays bounded no matter how large the stream is.

   NOT gates are noiseless: one whose operand is already computed is
   evaluated inline immediately; one that reads a still-pending wave is
   queued after that wave's parallel phase, in arrival order, exactly like
   [Levelize.waves]. *)

type pending =
  | P_gate of { gate : Gate.t; in0 : int; in1 : int; dst : int }
  | P_lut of { table : int; ins : int array; dst : int }

type 'v task =
  | T_gate of { gate : Gate.t; a : 'v; b : 'v }
  | T_lut of { arity : int; table : int; operands : 'v array; ins : int array }

type wave_stats = {
  segments_run : int;
  waves_run : int;
  bootstraps_run : int;
  nots_run : int;
  wave_widths : int array;
  wave_wall : float array;
}

let run_waves ?(obs = Trace.null) ?(window = 1 lsl 15) ~run_wave ops read =
  if window < 1 then invalid_arg "Stream_exec.run_waves: window must be positive";
  let t_start = Trace.now obs in
  (* Slot table: value (None while pending), lutdom flag, segment level
     (-1 unassigned, 0 computed, >0 pending in the current segment). *)
  let cap = ref 16 in
  let values = ref (Array.make !cap None) in
  let is_lut = ref (Array.make !cap false) in
  let levels = ref (Array.make !cap (-1)) in
  let ensure index =
    if index >= !cap then begin
      let bigger = max (2 * !cap) (index + 16) in
      let v = Array.make bigger None and l = Array.make bigger false
      and lv = Array.make bigger (-1) in
      Array.blit !values 0 v 0 !cap;
      Array.blit !is_lut 0 l 0 !cap;
      Array.blit !levels 0 lv 0 !cap;
      values := v;
      is_lut := l;
      levels := lv;
      cap := bigger
    end
  in
  let next = ref 1 in
  let input_ordinal = ref 0 in
  let gate_total = ref (-1) in
  let seen_gates = ref 0 in
  let first = ref true in
  let outputs = ref [] in
  let level_of index =
    if index < 1 || index >= !next || !levels.(index) < 0 then
      failwith "Stream_exec: reference to an unassigned index";
    !levels.(index)
  in
  let classic index =
    match !values.(index) with
    | Some v -> if !is_lut.(index) then ops.v_lut_view v else v
    | None -> failwith "Stream_exec: reference to an unassigned index"
  in
  let raw index =
    match !values.(index) with
    | Some v -> v
    | None -> failwith "Stream_exec: reference to an unassigned index"
  in
  (* Segment queues, one parallel + one inline list per level (index l-1),
     built in reverse arrival order. *)
  let seg_par = ref (Array.make 8 []) in
  let seg_inl = ref (Array.make 8 []) in
  let seg_depth = ref 0 in
  let seg_boots = ref 0 in
  let seg_ensure l =
    if l > Array.length !seg_par then begin
      let bigger = max (2 * Array.length !seg_par) l in
      let p = Array.make bigger [] and i = Array.make bigger [] in
      Array.blit !seg_par 0 p 0 (Array.length !seg_par);
      Array.blit !seg_inl 0 i 0 (Array.length !seg_inl);
      seg_par := p;
      seg_inl := i
    end
  in
  let segments = ref 0 in
  let waves = ref 0 in
  let boots = ref 0 in
  let nots = ref 0 in
  let widths = ref [] in
  let walls = ref [] in
  let task_of = function
    | P_gate { gate; in0; in1; _ } -> T_gate { gate; a = classic in0; b = classic in1 }
    | P_lut { table; ins; _ } ->
      let arity = Array.length ins in
      let operands =
        if arity = 1 then [| classic ins.(0) |] else Array.map raw ins
      in
      T_lut { arity; table; operands; ins }
  in
  let dst_of = function P_gate { dst; _ } -> dst | P_lut { dst; _ } -> dst in
  let flush () =
    if !seg_depth > 0 then begin
      incr segments;
      for l = 1 to !seg_depth do
        let par = List.rev !seg_par.(l - 1) and inl = List.rev !seg_inl.(l - 1) in
        !seg_par.(l - 1) <- [];
        !seg_inl.(l - 1) <- [];
        if par <> [] then begin
          incr waves;
          let t0 = Unix.gettimeofday () in
          let tasks = Array.of_list (List.map task_of par) in
          let results = run_wave tasks in
          if Array.length results <> Array.length tasks then
            failwith "Stream_exec: wave runner returned the wrong number of results";
          List.iteri
            (fun i p ->
              let dst = dst_of p in
              !values.(dst) <- Some results.(i);
              !levels.(dst) <- 0)
            par;
          boots := !boots + Array.length tasks;
          widths := Array.length tasks :: !widths;
          walls := (Unix.gettimeofday () -. t0) :: !walls
        end;
        List.iter
          (fun (in0, dst) ->
            let v = classic in0 in
            !values.(dst) <- Some (ops.v_gate Gate.Not v v);
            !levels.(dst) <- 0;
            incr nots)
          inl
      done;
      seg_depth := 0;
      seg_boots := 0
    end
  in
  let require_header () =
    if !gate_total < 0 then failwith "Stream_exec: missing header instruction"
  in
  let count_gate () =
    incr seen_gates;
    if !gate_total <> Binary.streamed_gate_total && !seen_gates > !gate_total then
      failwith "Stream_exec: more gates than the header declared"
  in
  let queue_parallel l p =
    seg_ensure l;
    !seg_par.(l - 1) <- p :: !seg_par.(l - 1);
    if l > !seg_depth then seg_depth := l;
    incr seg_boots;
    !levels.(!next) <- l;
    incr next;
    if !seg_boots >= window then flush ()
  in
  Binary.iter_source read (fun inst ->
      match inst with
      | Binary.Header { gate_total = g } ->
        if not !first then failwith "Stream_exec: duplicate header";
        first := false;
        gate_total := g
      | Binary.Input_decl { index } ->
        require_header ();
        if index <> !next then failwith "Stream_exec: non-sequential input index";
        ensure index;
        !values.(index) <- Some (ops.v_input !input_ordinal);
        !levels.(index) <- 0;
        incr input_ordinal;
        incr next
      | Binary.Gate_inst { gate; in0; in1 } ->
        require_header ();
        count_gate ();
        ensure !next;
        if Gate.is_unary gate then begin
          let base = level_of in0 in
          if base = 0 then begin
            let v = classic in0 in
            !values.(!next) <- Some (ops.v_gate gate v v);
            !levels.(!next) <- 0;
            incr nots;
            incr next
          end
          else begin
            seg_ensure base;
            !seg_inl.(base - 1) <- (in0, !next) :: !seg_inl.(base - 1);
            !levels.(!next) <- base;
            incr next
          end
        end
        else begin
          let la = level_of in0 and lb = level_of in1 in
          queue_parallel (1 + max la lb) (P_gate { gate; in0; in1; dst = !next })
        end
      | Binary.Lut_inst { table; ins } ->
        require_header ();
        count_gate ();
        ensure !next;
        let arity = Array.length ins in
        let base = ref 0 in
        Array.iter
          (fun idx ->
            let l = level_of idx in
            if arity > 1 && not !is_lut.(idx) then
              raise
                (Wire.Corrupt
                   (Printf.sprintf
                      "Stream_exec: lut%d operand %d is not lutdom-encoded" arity idx));
            if l > !base then base := l)
          ins;
        !is_lut.(!next) <- true;
        queue_parallel (1 + !base) (P_lut { table; ins; dst = !next })
      | Binary.Output_decl { index } ->
        require_header ();
        ignore (level_of index);
        outputs := index :: !outputs);
  if !gate_total < 0 then failwith "Stream_exec: missing header instruction";
  flush ();
  let result = Array.of_list (List.rev_map classic !outputs) in
  let stats =
    {
      segments_run = !segments;
      waves_run = !waves;
      bootstraps_run = !boots;
      nots_run = !nots;
      wave_widths = Array.of_list (List.rev !widths);
      wave_wall = Array.of_list (List.rev !walls);
    }
  in
  if Trace.enabled obs then begin
    let tr = Trace.new_track obs ~name:"stream-waves" in
    Trace.span tr ~cat:"run" ~name:"stream_waves" ~t0:t_start ~t1:(Trace.now obs);
    Trace.counter tr ~name:"segments" (float_of_int stats.segments_run);
    Trace.counter tr ~name:"waves" (float_of_int stats.waves_run);
    Trace.counter tr ~name:"bootstraps" (float_of_int stats.bootstraps_run);
    Trace.counter tr ~name:"nots" (float_of_int stats.nots_run);
    Trace.drain obs
  end;
  (result, stats)

(* Plaintext LUT cell: lutdom and classic coincide (a bit is a bit), so the
   view is the identity.  The message index m is the MSB-first operand
   word, matching [Netlist.eval] and [Gates.lut2]/[lut3]. *)
let plain_lut ~arity:_ ~table ops =
  let m = Array.fold_left (fun acc b -> (acc lsl 1) lor Bool.to_int b) 0 ops in
  (table lsr m) land 1 = 1

let run_bits bytes ins =
  let ops =
    {
      v_gate = Gate.eval;
      v_input = (fun i -> ins.(i));
      v_lut = plain_lut;
      v_lut_view = Fun.id;
    }
  in
  run_legacy ops bytes

let run_encrypted_legacy ?(obs = Trace.null) cloud bytes cts =
  let ctx = Pytfhe_tfhe.Gates.context cloud in
  let ops =
    {
      v_gate = (fun g a b -> Tfhe_eval.gate_of g cloud a b);
      v_input = (fun i -> cts.(i));
      v_lut = (fun ~arity ~table ops -> Pytfhe_tfhe.Gates.lut_cell_in ctx ~arity ~table ops);
      v_lut_view = Pytfhe_tfhe.Gates.lut_to_classic;
    }
  in
  if not (Trace.enabled obs) then run_legacy ops bytes
  else begin
    (* Crypto-cost probes ride on a wrapper so the untraced closure stays
       allocation-identical to before. *)
    let boots = ref 0 in
    let counted =
      { ops with
        v_gate =
          (fun g a b ->
            if not (Gate.is_unary g) then incr boots;
            ops.v_gate g a b);
        v_lut =
          (fun ~arity ~table operands ->
            incr boots;
            ops.v_lut ~arity ~table operands);
      }
    in
    let result = run_legacy ~obs counted bytes in
    let params = cloud.Pytfhe_tfhe.Gates.cloud_params in
    let tr = Trace.new_track obs ~name:"stream-crypto" in
    Exec_obs.noise_gauges tr params;
    Trace.counter tr ~name:"key_switches" (float_of_int !boots);
    Trace.counter tr ~name:"ffts"
      (float_of_int (!boots * Exec_obs.ffts_per_bootstrap params));
    Trace.drain obs;
    result
  end

let run ?(opts = Exec_opts.default) ops bytes =
  Exec_opts.check_scalar_only ~who:"Stream_exec.run" opts;
  run_legacy ~obs:opts.Exec_opts.obs ops bytes

let run_encrypted ?(opts = Exec_opts.default) cloud bytes cts =
  Exec_opts.check_scalar_only ~who:"Stream_exec.run_encrypted" opts;
  run_encrypted_legacy ~obs:opts.Exec_opts.obs cloud bytes cts

(* --- Encrypted streaming through the wave driver --------------------------

   Single-process encrypted execution of a streamed binary: bootstrapped
   work arrives as resolved-operand tasks one wave at a time, so no netlist
   is ever materialised.  Per gate/cell the operation sequence matches the
   [Tfhe_eval] netlist walks (combine → bootstrap → key switch, indicator
   rotations shared within a wave), so outputs are ciphertext-bit-exact
   with them — rotation sharing does not cross wave boundaries here, which
   cannot change values because indicator rotations are deterministic. *)

module Gates = Pytfhe_tfhe.Gates
module Lwe = Pytfhe_tfhe.Lwe
module Params = Pytfhe_tfhe.Params

type stream_cell =
  | C_sign of { idx : int; table : int; operand : Lwe.sample }
  | C_group of {
      mutable idxs : int list;  (* reversed *)
      mutable tables : int list;  (* reversed, aligned with idxs *)
      arity : int;
      raws : Lwe.sample array;
    }

(* Group a wave's LUT tasks by operand tuple, first-appearance order, like
   [Tfhe_eval.build_lut_cells] does over netlist ids. *)
let stream_lut_cells tasks lut_idx =
  let ds = ref [] in
  let groups = Hashtbl.create 16 in
  List.iter
    (fun i ->
      match tasks.(i) with
      | T_lut { arity = 1; table; operands; _ } ->
        ds := C_sign { idx = i; table; operand = operands.(0) } :: !ds
      | T_lut { arity; table; operands; ins } -> (
        let key = Tfhe_eval.lut_key ins in
        match Hashtbl.find_opt groups key with
        | Some (C_group g) ->
          g.idxs <- i :: g.idxs;
          g.tables <- table :: g.tables
        | Some (C_sign _) -> assert false
        | None ->
          let g = C_group { idxs = [ i ]; tables = [ table ]; arity; raws = operands } in
          Hashtbl.add groups key g;
          ds := g :: !ds)
      | T_gate _ -> assert false)
    lut_idx;
  Array.of_list (List.rev !ds)

let stream_runner_scalar ctx tasks =
  let rotations = Hashtbl.create 16 in
  Array.map
    (function
      | T_gate { gate; a; b } -> Tfhe_eval.apply_gate ctx gate a b
      | T_lut { arity = 1; table; operands; _ } -> Gates.lut1_in ctx ~table operands.(0)
      | T_lut { arity; table; operands; ins } ->
        let key = Tfhe_eval.lut_key ins in
        let ind =
          match Hashtbl.find_opt rotations key with
          | Some ind -> ind
          | None ->
            let ind = Gates.lut_indicators_in ctx ~arity operands in
            Hashtbl.add rotations key ind;
            ind
        in
        Gates.lut_select_in ctx ~msize:(1 lsl arity) ~table ind)
    tasks

let stream_runner_batched bc ~batch ~n tasks =
  let total = Array.length tasks in
  let out = Array.make total None in
  let gate_idx = ref [] and lut_idx = ref [] in
  Array.iteri
    (fun i t ->
      match t with
      | T_gate _ -> gate_idx := i :: !gate_idx
      | T_lut _ -> lut_idx := i :: !lut_idx)
    tasks;
  let gates = Array.of_list (List.rev !gate_idx) in
  let cwidth = Array.length gates in
  let pos = ref 0 in
  while !pos < cwidth do
    let len = min batch (cwidth - !pos) in
    let base = !pos in
    let combined =
      Array.init len (fun i ->
          match tasks.(gates.(base + i)) with
          | T_gate { gate; a; b } -> Gates.combine ~n (Tfhe_eval.plan_of gate) a b
          | T_lut _ -> assert false)
    in
    let outs = Gates.bootstrap_batch bc combined in
    for i = 0 to len - 1 do
      out.(gates.(base + i)) <- Some outs.(i)
    done;
    pos := !pos + len
  done;
  let cells = stream_lut_cells tasks (List.rev !lut_idx) in
  let ncells = Array.length cells in
  let pos = ref 0 in
  while !pos < ncells do
    let len = min batch (ncells - !pos) in
    let chunk = Array.sub cells !pos len in
    let kinds =
      Array.map
        (function
          | C_sign { table; _ } -> Gates.sign_cell ~table
          | C_group g ->
            Gates.Cell_lut { arity = g.arity; tables = Array.of_list (List.rev g.tables) })
        chunk
    in
    let combined =
      Array.map
        (function
          | C_sign { operand; _ } -> operand
          | C_group g -> Gates.lut_combine ~n ~arity:g.arity g.raws)
        chunk
    in
    let outs = Gates.bootstrap_batch_cells bc kinds combined in
    Array.iteri
      (fun j d ->
        match d with
        | C_sign { idx; _ } -> out.(idx) <- Some outs.(j).(0)
        | C_group g -> List.iteri (fun k i -> out.(i) <- Some outs.(j).(k)) (List.rev g.idxs))
      chunk;
    pos := !pos + len
  done;
  Array.map (function Some v -> v | None -> assert false) out

let encrypted_stream_ops ctx inputs ~who =
  {
    v_gate = (fun g a b -> Tfhe_eval.apply_gate ctx g a b);
    v_input =
      (fun i ->
        if i >= Array.length inputs then
          invalid_arg (who ^ ": wrong number of inputs for the stream")
        else inputs.(i));
    (* The wave driver routes bootstrapped cells through [run_wave]; this
       is only a safety net should that contract ever loosen. *)
    v_lut = (fun ~arity ~table ops -> Gates.lut_cell_in ctx ~arity ~table ops);
    v_lut_view = Gates.lut_to_classic;
  }

let run_encrypted_stream ?(opts = Exec_opts.default) ?window cloud read cts =
  let start = Unix.gettimeofday () in
  let obs = opts.Exec_opts.obs in
  let p = cloud.Gates.cloud_params in
  let ctx = Gates.context cloud in
  let ops = encrypted_stream_ops ctx cts ~who:"Stream_exec.run_encrypted_stream" in
  let bc_counters = ref None in
  let run_wave =
    match opts.Exec_opts.batch with
    | None -> stream_runner_scalar ctx
    | Some b ->
      if b < 1 then invalid_arg "Stream_exec.run_encrypted_stream: batch must be >= 1";
      let bc = Gates.batch_context cloud ~cap:b in
      bc_counters := Some (fun () -> Gates.batch_counters bc);
      stream_runner_batched bc ~batch:b ~n:p.Params.lwe.Params.n
  in
  let outputs, ws = run_waves ~obs ?window ~run_wave ops read in
  let batch_size = match opts.Exec_opts.batch with Some b -> b | None -> 0 in
  let launches, bsk, ks =
    match !bc_counters with
    | None -> (0, 0, 0)
    | Some counters ->
      let c = counters () in
      ( c.Gates.batch_launches,
        c.Gates.bsk_rows * Exec_obs.bsk_row_bytes p,
        c.Gates.ks_blocks * Exec_obs.ks_block_bytes p )
  in
  ( outputs,
    {
      Tfhe_eval.bootstraps_executed = ws.bootstraps_run;
      nots_executed = ws.nots_run;
      wall_time = Unix.gettimeofday () -. start;
      wave_wall = ws.wave_wall;
      wave_width = ws.wave_widths;
      batch_size;
      batch_launches = launches;
      bsk_bytes_streamed = bsk;
      ks_bytes_streamed = ks;
    } )
