module Binary = Pytfhe_circuit.Binary
module Gate = Pytfhe_circuit.Gate
module Wire = Pytfhe_util.Wire
module Trace = Pytfhe_obs.Trace

type 'v ops = {
  v_gate : Gate.t -> 'v -> 'v -> 'v;
  v_input : int -> 'v;
  v_lut : arity:int -> table:int -> 'v array -> 'v;
  v_lut_view : 'v -> 'v;
}

let run_legacy ?(obs = Trace.null) ops bytes =
  (* One pass over the instruction stream; the value table is indexed by
     the sequential gate numbering, so lookups are array reads.  The table
     grows geometrically: the header only declares the gate count, not the
     input count.  Each slot carries the value plus its encoding: LUT cells
     produce lutdom-encoded values, which classic consumers (gates,
     arity-1 LUT cells, outputs) read through [v_lut_view]. *)
  let traced = Trace.enabled obs in
  let t_start = Trace.now obs in
  let table = ref [||] in
  let next = ref 1 in
  let input_ordinal = ref 0 in
  let gate_total = ref (-1) in
  let seen_gates = ref 0 in
  let unary_gates = ref 0 in
  let lut_cells = ref 0 in
  let first = ref true in
  let outputs = ref [] in
  let output_count = ref 0 in
  let ensure index =
    if Array.length !table <= index then begin
      let bigger = Array.make (max (2 * Array.length !table) (index + 16)) None in
      Array.blit !table 0 bigger 0 (Array.length !table);
      table := bigger
    end
  in
  let fetch index =
    if index < 1 || index >= !next then failwith "Stream_exec: reference to an unassigned index";
    match !table.(index) with
    | Some cell -> cell
    | None -> failwith "Stream_exec: reference to an unassigned index"
  in
  let fetch_classic index =
    let v, is_lut = fetch index in
    if is_lut then ops.v_lut_view v else v
  in
  Binary.iter bytes (fun inst ->
      match inst with
      | Binary.Header { gate_total = g } ->
        if not !first then failwith "Stream_exec: duplicate header";
        first := false;
        gate_total := g
      | Binary.Input_decl { index } ->
        if !gate_total < 0 then failwith "Stream_exec: missing header instruction";
        if index <> !next then failwith "Stream_exec: non-sequential input index";
        ensure index;
        !table.(index) <- Some (ops.v_input !input_ordinal, false);
        incr input_ordinal;
        incr next
      | Binary.Gate_inst { gate; in0; in1 } ->
        if !gate_total < 0 then failwith "Stream_exec: missing header instruction";
        incr seen_gates;
        if Gate.is_unary gate then incr unary_gates;
        if !seen_gates > !gate_total then
          failwith "Stream_exec: more gates than the header declared";
        ensure !next;
        !table.(!next) <- Some (ops.v_gate gate (fetch_classic in0) (fetch_classic in1), false);
        incr next
      | Binary.Lut_inst { table = tbl; ins } ->
        if !gate_total < 0 then failwith "Stream_exec: missing header instruction";
        incr seen_gates;
        incr lut_cells;
        if !seen_gates > !gate_total then
          failwith "Stream_exec: more gates than the header declared";
        let arity = Array.length ins in
        (* The decoder already bounds arity and table; what only the value
           stream can check is the operand encoding: a multi-input cell
           whose operand is not itself a LUT cell would blind-rotate a
           classic ciphertext as if it were lutdom — structurally corrupt,
           rejected before any value is computed.  Arity-1 cells take the
           classic view of whatever they are fed. *)
        let operands =
          if arity = 1 then [| fetch_classic ins.(0) |]
          else
            Array.map
              (fun idx ->
                let v, is_lut = fetch idx in
                if not is_lut then
                  raise
                    (Wire.Corrupt
                       (Printf.sprintf
                          "Stream_exec: lut%d operand %d is not lutdom-encoded" arity idx));
                v)
              ins
        in
        ensure !next;
        !table.(!next) <- Some (ops.v_lut ~arity ~table:tbl operands, true);
        incr next
      | Binary.Output_decl { index } ->
        incr output_count;
        outputs := fetch_classic index :: !outputs);
  if !gate_total < 0 then failwith "Stream_exec: missing header instruction";
  if traced then begin
    (* The stream has no wave structure — the whole single pass is one
       span, with the instruction mix as counters. *)
    let tr = Trace.new_track obs ~name:"stream" in
    Trace.span tr ~cat:"run" ~name:"stream_exec" ~t0:t_start ~t1:(Trace.now obs);
    Trace.counter tr ~name:"instructions"
      (float_of_int (1 + !input_ordinal + !seen_gates + !output_count));
    Trace.counter tr ~name:"inputs" (float_of_int !input_ordinal);
    Trace.counter tr ~name:"bootstraps" (float_of_int (!seen_gates - !unary_gates));
    Trace.counter tr ~name:"nots" (float_of_int !unary_gates);
    Trace.counter tr ~name:"luts" (float_of_int !lut_cells);
    Trace.counter tr ~name:"outputs" (float_of_int !output_count);
    Trace.drain obs
  end;
  Array.of_list (List.rev !outputs)

(* Plaintext LUT cell: lutdom and classic coincide (a bit is a bit), so the
   view is the identity.  The message index m is the MSB-first operand
   word, matching [Netlist.eval] and [Gates.lut2]/[lut3]. *)
let plain_lut ~arity:_ ~table ops =
  let m = Array.fold_left (fun acc b -> (acc lsl 1) lor Bool.to_int b) 0 ops in
  (table lsr m) land 1 = 1

let run_bits bytes ins =
  let ops =
    {
      v_gate = Gate.eval;
      v_input = (fun i -> ins.(i));
      v_lut = plain_lut;
      v_lut_view = Fun.id;
    }
  in
  run_legacy ops bytes

let run_encrypted_legacy ?(obs = Trace.null) cloud bytes cts =
  let ctx = Pytfhe_tfhe.Gates.context cloud in
  let ops =
    {
      v_gate = (fun g a b -> Tfhe_eval.gate_of g cloud a b);
      v_input = (fun i -> cts.(i));
      v_lut = (fun ~arity ~table ops -> Pytfhe_tfhe.Gates.lut_cell_in ctx ~arity ~table ops);
      v_lut_view = Pytfhe_tfhe.Gates.lut_to_classic;
    }
  in
  if not (Trace.enabled obs) then run_legacy ops bytes
  else begin
    (* Crypto-cost probes ride on a wrapper so the untraced closure stays
       allocation-identical to before. *)
    let boots = ref 0 in
    let counted =
      { ops with
        v_gate =
          (fun g a b ->
            if not (Gate.is_unary g) then incr boots;
            ops.v_gate g a b);
        v_lut =
          (fun ~arity ~table operands ->
            incr boots;
            ops.v_lut ~arity ~table operands);
      }
    in
    let result = run_legacy ~obs counted bytes in
    let params = cloud.Pytfhe_tfhe.Gates.cloud_params in
    let tr = Trace.new_track obs ~name:"stream-crypto" in
    Exec_obs.noise_gauges tr params;
    Trace.counter tr ~name:"key_switches" (float_of_int !boots);
    Trace.counter tr ~name:"ffts"
      (float_of_int (!boots * Exec_obs.ffts_per_bootstrap params));
    Trace.drain obs;
    result
  end

let run ?(opts = Exec_opts.default) ops bytes =
  Exec_opts.check_scalar_only ~who:"Stream_exec.run" opts;
  run_legacy ~obs:opts.Exec_opts.obs ops bytes

let run_encrypted ?(opts = Exec_opts.default) cloud bytes cts =
  Exec_opts.check_scalar_only ~who:"Stream_exec.run_encrypted" opts;
  run_encrypted_legacy ~obs:opts.Exec_opts.obs cloud bytes cts
